package uldma_test

// cmd/benchdiff's CI regression gate (-fatal-threshold), pinned at the
// tool level: exit 1 when a model leaf moves past the ceiling, exit 0
// when all movement stays under it or only Host* (host-clock) leaves
// moved — those measure the machine running the diff, not the model,
// and stay exempt from every fatal path.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// writeSnapshot drops a minimal benchdiff-shaped JSON document.
func writeSnapshot(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBenchdiffFatalThreshold(t *testing.T) {
	dir := buildTools(t)
	tmp := t.TempDir()
	base := writeSnapshot(t, tmp, "base.json",
		`{"Table1":[{"Method":"Kernel-level DMA","MeanPs":1000}],"HostNs":100}`)
	cases := []struct {
		name     string
		current  string
		args     []string
		wantExit int
		want     string // substring of combined output
	}{
		{
			// +10% on a model leaf with a 5% ceiling: the regression
			// verdict, exit 1 (distinct from exit-2 usage failures).
			name:     "model-regression-fails",
			current:  `{"Table1":[{"Method":"Kernel-level DMA","MeanPs":1100}],"HostNs":100}`,
			args:     []string{"-fatal-threshold", "5"},
			wantExit: 1,
			want:     "regression threshold exceeded",
		},
		{
			// The same +10% under a 20% ceiling passes.
			name:     "under-threshold-passes",
			current:  `{"Table1":[{"Method":"Kernel-level DMA","MeanPs":1100}],"HostNs":100}`,
			args:     []string{"-fatal-threshold", "20"},
			wantExit: 0,
			want:     "1 flagged",
		},
		{
			// Host* leaves move with the machine running the diff; even
			// a 10x swing must never trip the gate.
			name:     "host-leaves-exempt",
			current:  `{"Table1":[{"Method":"Kernel-level DMA","MeanPs":1000}],"HostNs":1000}`,
			args:     []string{"-fatal-threshold", "0"},
			wantExit: 0,
			want:     "host clock",
		},
		{
			// Default (-1) keeps the historical non-fatal behaviour.
			name:     "off-by-default",
			current:  `{"Table1":[{"Method":"Kernel-level DMA","MeanPs":1100}],"HostNs":100}`,
			args:     nil,
			wantExit: 0,
			want:     "1 flagged",
		},
		{
			// Added leaves are deliberate surface growth, never fatal.
			name:     "added-leaves-not-fatal",
			current:  `{"Table1":[{"Method":"Kernel-level DMA","MeanPs":1000}],"Steer":[{"Name":"breakeven","Probed":6}],"HostNs":100}`,
			args:     []string{"-fatal-threshold", "0"},
			wantExit: 0,
			want:     "(added)",
		},
	}
	for i, tc := range cases {
		tc, i := tc, i
		t.Run(tc.name, func(t *testing.T) {
			cur := writeSnapshot(t, tmp, tc.name+".json", tc.current)
			args := append(append([]string{}, tc.args...), base, cur)
			var out bytes.Buffer
			cmd := exec.Command(filepath.Join(dir, "benchdiff"), args...)
			cmd.Stdout, cmd.Stderr = &out, &out
			err := cmd.Run()
			exit := 0
			if ee, ok := err.(*exec.ExitError); ok {
				exit = ee.ExitCode()
			} else if err != nil {
				t.Fatalf("case %d: %v\n%s", i, err, out.String())
			}
			if exit != tc.wantExit {
				t.Fatalf("benchdiff %v exited %d, want %d\n%s", args, exit, tc.wantExit, out.String())
			}
			if !bytes.Contains(out.Bytes(), []byte(tc.want)) {
				t.Fatalf("benchdiff %v output lacks %q:\n%s", args, tc.want, out.String())
			}
		})
	}
}
