GO ?= go

.PHONY: all build vet test race bench ci baseline baseline-fault baseline-scale baseline-ring baseline-iommu baseline-steer shardparity ringparity iommuparity steerparity golden trace-golden statslint benchdiff profile

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The simulator's concurrency contract: one goroutine per simulated
# world, parallelism only BETWEEN worlds (internal/par). The race
# detector run backs that contract — every parity test drives the
# experiment runner (internal/exp) under -race, and the root-level
# golden/smoke tests (TestGolden, TestSmoke) pin every tool's rendered
# bytes, so `ci` catches output drift as well as races.
race:
	$(GO) test -race ./...

# Deliberately regenerate testdata/golden from the current tools after
# an intentional output change. Diffs show up in review; CI fails on
# unintentional drift.
golden:
	$(GO) test -run TestGolden -update .

# Regenerate the pinned Perfetto trace_event documents (-trace-out /
# faultsim -replay). The traced scenarios are serial and simulated-
# deterministic, so these are byte-level goldens like the text ones.
trace-golden:
	$(GO) test -run TestTraceGolden -update .

# The observability plane's structural lint: new metric storage must be
# obs cells (internal/obs), never a fresh ad-hoc *Stats struct. The
# script allowlists the pre-obs compat structs.
statslint:
	sh scripts/statslint.sh

bench:
	$(GO) test -bench . -benchmem -run XXX ./internal/sim ./internal/vm ./internal/bus ./internal/machine ./...

# The sharded engine's determinism contract, run under the race
# detector: the same world must produce an identical fingerprint and
# observation for every shard count and worker count — for the abstract
# RPC world AND the hosted-machine world (full machine.Machine per
# node, real protocol initiation, fault planes, snapshot/restore).
# `race` covers these too via ./...; the named target keeps the
# contract visible and lets CI fail fast on the one invariant the whole
# PR hangs off.
shardparity:
	$(GO) test -race -run 'TestShardEquivalence|TestShardSnapshotRestore|TestScaleShardParity|TestScaleMachineShardParity|TestScaleMachineFaultParity|TestScaleMachineSnapshotRestore' ./internal/net ./internal/exp

# The descriptor-ring contracts, run under the race detector: amortized
# initiation falls monotonically with depth (2x floor at depth 32),
# depth/churn measurements are rerun-deterministic, a mid-batch fleet
# snapshot rewinds byte-identically, the doorbell->walk->completion hot
# path stays at 0 allocs/op, and the adaptive per-shard-pair lookahead
# matches the single-shard reference at every shard x worker layout.
ringparity:
	$(GO) test -race -run 'TestRingDepthAmortizes|TestRingDepthDeterministic|TestRingChurnPolicies|TestRingSnapshotFidelity|TestRingDoorbellZeroAllocs|TestAdaptiveShardParity|TestAdaptiveUniformMatchesGlobal' ./internal/core ./internal/dma ./internal/net

# The virtual-address plane's contracts, run under the race detector:
# a world snapshotted with a transfer PARKED mid-fault rewinds and
# replays byte-identically (machine level and bare engine), Table 1's
# ordering survives IOMMU-translated initiation, the three recovery
# policies diverge under oversubscription yet replay exactly, the
# vasweep/paging grids are worker-count invariant, and the warm VA
# translate path stays at 0 allocs/op.
iommuparity:
	$(GO) test -race -run 'TestVAMidFaultSnapshotFidelity|TestVAParkedSnapshotRestore|TestVATranslateZeroAllocs|TestVATable1Ordering|TestPagingBenchPoliciesDiverge|TestVASweepParity|TestPagingParity' ./internal/core ./internal/dma ./internal/exp

# The steered loop's contracts, run under the race detector: the live
# obs feed costs 0 simulated time and 0 allocations (byte-identical
# PagingResult and world fingerprint with an observer attached), the
# trace ring serves a streaming reader a consistent prefix across
# wraparound, and the steered searches land on the exhaustive grids'
# exact answers while probing strictly fewer cells — byte-identically
# at every worker count.
steerparity:
	$(GO) test -race -run 'TestSteerBreakEvenMatchesExhaustive|TestSteerWorkerParity|TestSteerPagingDominated|TestSteerZoomDeterministic|TestSteerOSLatConverges|TestSteerDecisionTrace|TestLiveFeedZeroDelta|TestLiveFeedVeto|TestLiveWatchZeroAllocs|TestTraceReader|TestSnapshotAt|TestWatchZeroAllocs|TestReaderFromNowSkipsHistory' ./internal/exp ./internal/core ./internal/obs

ci: build vet statslint shardparity ringparity iommuparity steerparity race benchdiff

# Regenerate the perf-trajectory snapshot (raw simulated picoseconds;
# byte-identical for any -procs value).
baseline:
	$(GO) run ./cmd/dmabench -json -sweep -breakeven -trend -comparators -metrics > BENCH_baseline.json

# Regenerate the fault-injection snapshot (faultsweep goodput/latency
# grid, link-down recovery, model-checked delivery search) in raw
# simulated picoseconds. Compare historical snapshots with
# `go run ./cmd/benchdiff old.json new.json` — rows that exist on only
# one side are reported as added/removed, never as failures.
baseline-fault:
	$(GO) run ./cmd/faultsim -json > BENCH_fault.json

# Regenerate the scale snapshot: the 1000-node NOW (>= 10^6 link
# deliveries) timed at shards {1,4,8}, then the hosted-machine world —
# full machines, per-protocol ladder — at a size the machine path
# sustains. The Scale/ScaleMachine sections are exact simulated time;
# the Bench sections' Host* leaves (wall ns, host events/sec, core
# count) measure THIS machine and are the one deliberately
# non-reproducible part of any snapshot — cmd/benchdiff prints them
# informationally and never flags them.
baseline-scale:
	$(GO) run ./cmd/clustersim -scale -bench -json -nodes 1000 -arrival 55000 -ms 10 > BENCH_scale.json
	$(GO) run ./cmd/clustersim -scale -bench -json -protocol all -nodes 256 -arrival 5000 -ms 2 > BENCH_scalemachine.json

# Regenerate the descriptor-ring snapshot: the ringdepth sweep (per-
# transfer initiation cost and goodput per protocol at depths 1..64,
# against the unbatched baseline) and the ringchurn oversubscription
# grid (contexts x processes x arbitration policy). Exact simulated
# time; cmd/benchdiff treats first-appearance leaves as added.
baseline-ring:
	$(GO) run ./cmd/dmabench -json -ring -ringchurn > BENCH_ring.json

# Regenerate the virtual-address DMA snapshot: Table 1 measured through
# the IOMMU against the physical shadow window, the IOTLB hit-rate
# sweep, and the paging recovery-policy grid. Exact simulated time plus
# hex world fingerprints; cmd/benchdiff treats first-appearance leaves
# as added, never as failures.
baseline-iommu:
	$(GO) run ./cmd/dmabench -json -va -paging > BENCH_iommu.json

# Regenerate the steered-sweep snapshot: per search, the probed-vs-grid
# cell counts, decision tallies and the verdicts (crossover sizes,
# surviving recovery policy, p99 knee bracket, converged iteration
# count). The probed counts are part of the contract: a steered search
# probing as many cells as its grid is a regression benchdiff will
# show.
baseline-steer:
	$(GO) run ./cmd/dmabench -json -steer > BENCH_steer.json

# Compare the current model's simulated-time numbers against the
# committed baseline snapshot. Every value is exact simulated time, so
# any delta is a behavioural change. Non-fatal in ci by design: the
# report shows up in the log, and intentional model changes land with a
# `make baseline` refresh in the same commit.
benchdiff:
	-$(GO) run ./cmd/benchdiff

# Host-CPU and allocation profiles of the heaviest tool. Every cmd/
# tool takes the same -cpuprofile/-memprofile flags (see
# internal/exp/profile.go); inspect with `go tool pprof`.
profile:
	$(GO) run ./cmd/report -procs 1 -cpuprofile report.cpu.prof -memprofile report.mem.prof > /dev/null
	@echo "wrote report.cpu.prof and report.mem.prof; try: go tool pprof -top report.cpu.prof"
