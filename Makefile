GO ?= go

.PHONY: all build vet test race bench ci baseline

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The simulator's concurrency contract: one goroutine per simulated
# world, parallelism only BETWEEN worlds (internal/par). The race
# detector run backs that contract — every parity test drives the
# parallel sweep/exploration drivers under -race.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run XXX ./internal/sim ./internal/vm ./internal/bus ./internal/machine ./...

ci: build vet race

# Regenerate the perf-trajectory snapshot (raw simulated picoseconds;
# byte-identical for any -procs value).
baseline:
	$(GO) run ./cmd/dmabench -json -sweep -breakeven -trend -comparators > BENCH_baseline.json
