GO ?= go

.PHONY: all build vet test race bench ci baseline golden

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The simulator's concurrency contract: one goroutine per simulated
# world, parallelism only BETWEEN worlds (internal/par). The race
# detector run backs that contract — every parity test drives the
# experiment runner (internal/exp) under -race, and the root-level
# golden/smoke tests (TestGolden, TestSmoke) pin every tool's rendered
# bytes, so `ci` catches output drift as well as races.
race:
	$(GO) test -race ./...

# Deliberately regenerate testdata/golden from the current tools after
# an intentional output change. Diffs show up in review; CI fails on
# unintentional drift.
golden:
	$(GO) test -run TestGolden -update .

bench:
	$(GO) test -bench . -benchmem -run XXX ./internal/sim ./internal/vm ./internal/bus ./internal/machine ./...

ci: build vet race

# Regenerate the perf-trajectory snapshot (raw simulated picoseconds;
# byte-identical for any -procs value).
baseline:
	$(GO) run ./cmd/dmabench -json -sweep -breakeven -trend -comparators > BENCH_baseline.json
