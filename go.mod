module uldma

go 1.22
