package uldma_test

// The benchmark harness regenerates every quantitative artifact in the
// paper's evaluation:
//
//	BenchmarkTable1/*            Table 1  (DMA initiation time per method)
//	BenchmarkComparators/*       the SHRIMP/FLASH/PAL comparators on the
//	                             same model (not in Table 1)
//	BenchmarkFigure5Attack       Figure 5 (3-access hijack) per schedule
//	BenchmarkFigure6Attack       Figure 6 (4-access deception) per schedule
//	BenchmarkFigure8Defense      Figure 8 (5-access survives the attack)
//	BenchmarkNullSyscall         §2.2 lmbench empty-syscall claim (X1)
//	BenchmarkBusSweep/*          §3.4 faster-bus projection (X4)
//	BenchmarkAtomic/*            §3.5 user vs kernel atomic ops (X5)
//	BenchmarkContention/*        §3.2 register-context supply ablation
//	BenchmarkBarriers/*          §3.4 memory-barrier cost ablation (X3)
//	BenchmarkEngineVariant/*     §3.2 register contexts vs pair-matching
//	BenchmarkMsgChannel/*        msg library end-to-end throughput
//	BenchmarkCollectives/*       barrier / all-reduce latency vs ranks
//	BenchmarkNOWMessage/*        §1 motivating NOW message latency
//
// Every benchmark reports the SIMULATED time per operation as the
// "sim-us/op" metric — that is the number comparable to the paper; the
// ns/op column is merely how fast the host simulates.

import (
	"fmt"
	"testing"

	"uldma/internal/coll"
	userdma "uldma/internal/core"
	"uldma/internal/dma"
	"uldma/internal/kernel"
	"uldma/internal/machine"
	"uldma/internal/msg"
	"uldma/internal/net"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/vm"
)

// benchInitiation runs b.N initiations of method on cfg and reports the
// mean simulated initiation time.
func benchInitiation(b *testing.B, method userdma.Method, cfg machine.Config) {
	b.Helper()
	res, err := userdma.MeasureMethod(method, cfg, b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.Mean.Microseconds(), "sim-us/op")
	if res.PaperMean != 0 {
		b.ReportMetric(res.PaperMean.Microseconds(), "paper-us/op")
	}
}

// BenchmarkTable1 regenerates Table 1 row by row.
func BenchmarkTable1(b *testing.B) {
	for _, method := range userdma.Methods() {
		method := method
		b.Run(method.Name(), func(b *testing.B) {
			benchInitiation(b, method, userdma.ConfigFor(method))
		})
	}
}

// BenchmarkComparators measures the prior-work schemes and the PAL
// method on the same machine model.
func BenchmarkComparators(b *testing.B) {
	comparators := []userdma.Method{
		userdma.PALCode{},
		userdma.SHRIMP1{},
		userdma.SHRIMP2{WithKernelMod: true},
		userdma.FLASH{},
	}
	for _, method := range comparators {
		method := method
		b.Run(method.Name(), func(b *testing.B) {
			benchInitiation(b, method, userdma.ConfigFor(method))
		})
	}
}

// BenchmarkFigure5Attack replays the Figure 5 hijack schedule.
func BenchmarkFigure5Attack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o, err := userdma.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		if !o.Hijacked {
			b.Fatal("hijack did not reproduce")
		}
	}
}

// BenchmarkFigure6Attack replays the Figure 6 deception schedule.
func BenchmarkFigure6Attack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o, err := userdma.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		if !o.Misinformed || o.Hijacked {
			b.Fatal("deception did not reproduce")
		}
	}
}

// BenchmarkFigure8Defense replays the attack schedule against the safe
// 5-access sequence.
func BenchmarkFigure8Defense(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o, err := userdma.Figure8Replay()
		if err != nil {
			b.Fatal(err)
		}
		if o.Hijacked || o.Misinformed {
			b.Fatalf("defense failed: %v", o)
		}
	}
}

// BenchmarkNullSyscall validates the §2.2 premise (X1): empty syscall in
// 1,000-5,000 CPU cycles.
func BenchmarkNullSyscall(b *testing.B) {
	cfg := machine.Alpha3000TC(dma.ModePaired, 0)
	m, err := machine.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var mean sim.Time
	p := m.NewProcess("bench", func(c *proc.Context) error {
		start := m.Clock.Now()
		for i := 0; i < b.N; i++ {
			if _, err := c.Syscall(kernel.SysNull); err != nil {
				return err
			}
		}
		mean = (m.Clock.Now() - start) / sim.Time(b.N)
		return nil
	})
	if err := m.Run(proc.NewRoundRobin(1<<20), 1<<62); err != nil {
		b.Fatal(err)
	}
	if p.Err() != nil {
		b.Fatal(p.Err())
	}
	b.ReportMetric(mean.Microseconds(), "sim-us/op")
	b.ReportMetric(float64(cfg.CPU.Freq.CyclesIn(mean)), "sim-cycles/op")
}

// BenchmarkBusSweep is experiment X4: Table 1 across bus generations.
func BenchmarkBusSweep(b *testing.B) {
	type busCase struct {
		name string
		freq sim.Hz
	}
	buses := []busCase{
		{"TurboChannel-12.5MHz", 12_500_000},
		{"PCI-33MHz", 33 * sim.MHz},
		{"PCI-66MHz", 66 * sim.MHz},
	}
	for _, bus := range buses {
		for _, method := range userdma.Methods() {
			method := method
			cfg := userdma.ConfigFor(method)
			if bus.freq != 12_500_000 {
				cfg = machine.PCI(method.EngineMode(), method.SeqLen(), bus.freq)
			}
			b.Run(bus.name+"/"+method.Name(), func(b *testing.B) {
				benchInitiation(b, method, cfg)
			})
		}
	}
}

// BenchmarkAtomic is experiment X5: user-level vs kernel-initiated
// atomic operations.
func BenchmarkAtomic(b *testing.B) {
	run := func(b *testing.B, viaKernel bool) {
		m := machine.MustNew(machine.Alpha3000TC(dma.ModeExtended, 0))
		const cellVA = vm.VAddr(0x50000)
		var mean sim.Time
		p := m.NewProcess("bench", func(c *proc.Context) error {
			if _, err := userdma.FetchAdd(c, cellVA, 0); err != nil { // warm TLB
				return err
			}
			start := m.Clock.Now()
			for i := 0; i < b.N; i++ {
				var err error
				if viaKernel {
					_, err = userdma.KernelFetchAdd(c, cellVA, 1)
				} else {
					_, err = userdma.FetchAdd(c, cellVA, 1)
				}
				if err != nil {
					return err
				}
			}
			mean = (m.Clock.Now() - start) / sim.Time(b.N)
			return nil
		})
		if _, err := m.Kernel.AllocPage(p.AddressSpace(), cellVA, vm.Read|vm.Write); err != nil {
			b.Fatal(err)
		}
		if err := userdma.SetupAtomics(m, p, cellVA); err != nil {
			b.Fatal(err)
		}
		if err := m.Run(proc.NewRoundRobin(1<<20), 1<<62); err != nil {
			b.Fatal(err)
		}
		if p.Err() != nil {
			b.Fatal(p.Err())
		}
		b.ReportMetric(mean.Microseconds(), "sim-us/op")
	}
	b.Run("fetch_and_add/user-level", func(b *testing.B) { run(b, false) })
	b.Run("fetch_and_add/via-kernel", func(b *testing.B) { run(b, true) })
}

// BenchmarkContention ablates the register-context supply (§3.2): mean
// initiation across processes when some must fall back to the kernel.
func BenchmarkContention(b *testing.B) {
	for _, procs := range []int{2, 4, 6, 8} {
		procs := procs
		b.Run(fmt.Sprintf("extended-4ctx/%dprocs", procs), func(b *testing.B) {
			iters := b.N
			if iters > 2000 {
				iters = 2000
			}
			res, err := userdma.ContextContention(userdma.ExtShadow{}, procs, iters)
			if err != nil {
				b.Fatal(err)
			}
			var total sim.Time
			n := 0
			fallbacks := 0
			for _, r := range res {
				total += r.Mean * sim.Time(r.Iterations)
				n += r.Iterations
				if r.PaperMean == 0 && len(r.Method) > len("Ext. Shadow Addressing") {
					fallbacks++
				}
			}
			b.ReportMetric(sim.Time(int64(total)/int64(n)).Microseconds(), "sim-us/op")
			b.ReportMetric(float64(fallbacks), "kernel-fallbacks")
		})
	}
}

// BenchmarkBarriers is experiment X3's cost side: the 5-access sequence
// with and without §3.4 memory barriers on the (device-ordered) preset
// bus, quantifying what the barriers cost when the hardware does not
// strictly need them.
func BenchmarkBarriers(b *testing.B) {
	for _, barriers := range []bool{true, false} {
		barriers := barriers
		name := "with-MB"
		if !barriers {
			name = "without-MB"
		}
		b.Run(name, func(b *testing.B) {
			method := userdma.RepeatedPassing{Len: 5, Barriers: barriers}
			benchInitiation(b, method, userdma.ConfigFor(method))
		})
	}
}

// BenchmarkEngineVariant compares the two §3.2 engine designs: register
// contexts vs the cheaper pair-matching hardware (which pays retries
// under interleaving but identical best-case instruction count).
func BenchmarkEngineVariant(b *testing.B) {
	variants := []userdma.Method{
		userdma.ExtShadow{},
		userdma.ExtShadow{NoContexts: true},
	}
	for _, method := range variants {
		method := method
		b.Run(method.Name(), func(b *testing.B) {
			benchInitiation(b, method, userdma.ConfigFor(method))
		})
	}
}

// BenchmarkMsgChannel measures the msg library's end-to-end throughput:
// messages streamed through a 2-node channel, everything user level.
func BenchmarkMsgChannel(b *testing.B) {
	for _, payload := range []int{64, 512} {
		payload := payload
		b.Run(fmt.Sprintf("payload-%dB", payload), func(b *testing.B) {
			iters := b.N
			if iters > 500 {
				iters = 500
			}
			perMsg, err := msgStream(iters, payload)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(perMsg.Microseconds(), "sim-us/msg")
		})
	}
}

func msgStream(count, payload int) (sim.Time, error) {
	method := userdma.ExtShadow{}
	cluster, err := net.NewCluster(2, userdma.ConfigFor(method), net.Gigabit())
	if err != nil {
		return 0, err
	}
	n0, n1 := cluster.Nodes[0], cluster.Nodes[1]
	var tx *msg.Sender
	var rx *msg.Receiver
	data := make([]byte, payload)
	sender := n0.NewProcess("tx", func(c *proc.Context) error {
		for i := 0; i < count; i++ {
			if err := tx.Send(c, data); err != nil {
				return err
			}
		}
		return nil
	})
	receiver := n1.NewProcess("rx", func(c *proc.Context) error {
		buf := make([]byte, payload)
		for i := 0; i < count; i++ {
			if _, err := rx.Recv(c, buf); err != nil {
				return err
			}
		}
		return nil
	})
	h, err := method.Attach(n0, sender)
	if err != nil {
		return 0, err
	}
	tx, rx, err = msg.NewChannel(n0, sender, h, n1, receiver, 1, msg.Config{})
	if err != nil {
		return 0, err
	}
	start := cluster.Clock.Now()
	if err := cluster.RunRoundRobin(8, 1<<62); err != nil {
		return 0, err
	}
	if sender.Err() != nil {
		return 0, sender.Err()
	}
	if receiver.Err() != nil {
		return 0, receiver.Err()
	}
	return (cluster.Clock.Now() - start) / sim.Time(count), nil
}

// BenchmarkCompletionWait compares the CPU cost of waiting for a large
// DMA: user-level polling vs sleeping until the completion interrupt
// (SysDMAWait). The sim-cpu-us metric is what the waiter burned.
func BenchmarkCompletionWait(b *testing.B) {
	run := func(b *testing.B, blocking bool) {
		iters := b.N
		if iters > 50 {
			iters = 50
		}
		var totalCPU sim.Time
		for i := 0; i < iters; i++ {
			method := userdma.ExtShadow{}
			m := userdma.Machine(method)
			var h *userdma.Handle
			p := m.NewProcess("waiter", func(c *proc.Context) error {
				st, err := h.DMA(c, 0x100000, 0x200000, 65536)
				if err != nil {
					return err
				}
				if st == dma.StatusFailure {
					return fmt.Errorf("refused")
				}
				if blocking {
					return h.WaitBlocking(c)
				}
				return h.Wait(c, 1_000_000)
			})
			var err error
			if h, err = method.Attach(m, p); err != nil {
				b.Fatal(err)
			}
			if _, err := m.SetupPages(p, 0x100000, 8, vm.Read|vm.Write); err != nil {
				b.Fatal(err)
			}
			if _, err := m.SetupPages(p, 0x200000, 8, vm.Read|vm.Write); err != nil {
				b.Fatal(err)
			}
			if err := m.Run(proc.NewRoundRobin(1<<20), 1<<62); err != nil {
				b.Fatal(err)
			}
			if p.Err() != nil {
				b.Fatal(p.Err())
			}
			totalCPU += p.CPUTime()
		}
		b.ReportMetric((totalCPU / sim.Time(iters)).Microseconds(), "sim-cpu-us/wait")
	}
	b.Run("polling", func(b *testing.B) { run(b, false) })
	b.Run("blocking", func(b *testing.B) { run(b, true) })
}

// BenchmarkCollectives measures barrier and all-reduce latency on the
// coll library (user-level remote atomics + remote writes) across
// cluster sizes.
func BenchmarkCollectives(b *testing.B) {
	for _, ranks := range []int{2, 4, 8} {
		for _, op := range []string{"barrier", "allreduce"} {
			ranks, op := ranks, op
			b.Run(fmt.Sprintf("%s/%dranks", op, ranks), func(b *testing.B) {
				iters := b.N
				if iters > 200 {
					iters = 200
				}
				perOp, err := collectiveLatency(ranks, op, iters)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(perOp.Microseconds(), "sim-us/op")
			})
		}
	}
}

func collectiveLatency(ranks int, op string, iters int) (sim.Time, error) {
	cluster, err := net.NewCluster(ranks, userdma.ConfigFor(userdma.ExtShadow{}), net.Gigabit())
	if err != nil {
		return 0, err
	}
	var comms []*coll.Comm
	procs := make([]*proc.Process, ranks)
	for i := 0; i < ranks; i++ {
		i := i
		procs[i] = cluster.Nodes[i].NewProcess(fmt.Sprintf("r%d", i), func(c *proc.Context) error {
			for k := 0; k < iters; k++ {
				switch op {
				case "barrier":
					if err := comms[i].Barrier(c); err != nil {
						return err
					}
				default:
					if _, err := comms[i].AllReduceSum(c, 1); err != nil {
						return err
					}
				}
			}
			return nil
		})
	}
	if comms, err = coll.New(cluster, procs); err != nil {
		return 0, err
	}
	start := cluster.Clock.Now()
	if err := cluster.RunRoundRobin(4, 1<<62); err != nil {
		return 0, err
	}
	for _, p := range procs {
		if p.Err() != nil {
			return 0, p.Err()
		}
	}
	return (cluster.Clock.Now() - start) / sim.Time(iters), nil
}

// BenchmarkNOWMessage measures one-way NOW message latency (payload DMA
// + doorbell + receiver poll) per initiation method — the §1 motivating
// workload.
func BenchmarkNOWMessage(b *testing.B) {
	methods := []userdma.Method{userdma.KernelLevel{}, userdma.ExtShadow{}}
	for _, method := range methods {
		method := method
		b.Run(method.Name(), func(b *testing.B) {
			var total sim.Time
			iters := b.N
			if iters > 200 {
				iters = 200 // each iteration builds a 2-node cluster
			}
			for i := 0; i < iters; i++ {
				lat, err := nowMessageOnce(method)
				if err != nil {
					b.Fatal(err)
				}
				total += lat
			}
			b.ReportMetric((total / sim.Time(iters)).Microseconds(), "sim-us/msg")
		})
	}
}

func nowMessageOnce(method userdma.Method) (sim.Time, error) {
	cluster, err := net.NewCluster(2, userdma.ConfigFor(method), net.Gigabit())
	if err != nil {
		return 0, err
	}
	n0, n1 := cluster.Nodes[0], cluster.Nodes[1]
	const (
		srcVA   = vm.VAddr(0x10000)
		remVA   = vm.VAddr(0x20000)
		boxVA   = vm.VAddr(0x30000)
		mailbox = phys.Addr(0x80000)
		bell    = 8184
	)
	var h *userdma.Handle
	var arrival sim.Time
	sender := n0.NewProcess("s", func(c *proc.Context) error {
		st, err := h.DMA(c, srcVA, remVA, 512)
		if err != nil {
			return err
		}
		if st == dma.StatusFailure {
			return fmt.Errorf("refused")
		}
		if err := h.Wait(c, 1_000_000); err != nil {
			return err
		}
		if err := c.Store(remVA+bell, phys.Size64, 1); err != nil {
			return err
		}
		return c.MB()
	})
	receiver := n1.NewProcess("r", func(c *proc.Context) error {
		for {
			v, err := c.Load(boxVA+bell, phys.Size64)
			if err != nil {
				return err
			}
			if v != 0 {
				arrival = n1.Clock.Now()
				return nil
			}
			c.Spin(500)
		}
	})
	if h, err = method.Attach(n0, sender); err != nil {
		return 0, err
	}
	if _, err := n0.SetupPages(sender, srcVA, 1, vm.Read|vm.Write); err != nil {
		return 0, err
	}
	if err := n0.Kernel.MapRemote(sender, remVA, 1, mailbox); err != nil {
		return 0, err
	}
	if err := n0.Kernel.MapShadow(sender, remVA); err != nil {
		return 0, err
	}
	if err := n1.Kernel.MapFrame(receiver.AddressSpace(), boxVA, mailbox, vm.Read); err != nil {
		return 0, err
	}
	if err := cluster.RunRoundRobin(8, 1<<62); err != nil {
		return 0, err
	}
	if sender.Err() != nil {
		return 0, sender.Err()
	}
	if receiver.Err() != nil {
		return 0, receiver.Err()
	}
	return arrival, nil
}
