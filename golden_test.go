package uldma_test

// Golden-file and smoke tests for the cmd/ tools. The goldens under
// testdata/golden were pinned from the tools BEFORE the experiment-
// engine refactor; every rendered byte is part of the tools' contract,
// for any -procs value. Regenerate deliberately with:
//
//	make golden     (= go test -run TestGolden -update .)

import (
	"bytes"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden from current tool output")

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// buildTools compiles every cmd/ binary once per test process.
func buildTools(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "uldma-tools-*")
		if buildErr != nil {
			return
		}
		for _, tool := range []string{"dmabench", "report", "oslat", "clustersim", "attacksim", "faultsim", "benchdiff"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(buildDir, tool), "./cmd/"+tool)
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = err
				buildDir = string(out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building tools: %v\n%s", buildErr, buildDir)
	}
	return buildDir
}

func runTool(t *testing.T, dir, tool string, args ...string) []byte {
	t.Helper()
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(filepath.Join(dir, tool), args...)
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\n%s", tool, args, err, stderr.String())
	}
	return stdout.Bytes()
}

// runToolErr runs a tool expected to FAIL, returning its exit code and
// stderr. A clean exit is itself a test failure.
func runToolErr(t *testing.T, dir, tool string, args ...string) (int, string) {
	t.Helper()
	var stderr bytes.Buffer
	cmd := exec.Command(filepath.Join(dir, tool), args...)
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		t.Fatalf("%s %v: expected a non-zero exit", tool, args)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("%s %v: %v", tool, args, err)
	}
	return ee.ExitCode(), stderr.String()
}

// goldenCases is the pinned (tool, flags) -> file matrix. The flags
// deliberately use non-default counts so regeneration stays cheap.
var goldenCases = []struct {
	file string
	tool string
	args []string
}{
	{"dmabench_default.txt", "dmabench", []string{"-iters", "120"}},
	{"dmabench_sweep.txt", "dmabench", []string{"-iters", "60", "-sweep"}},
	{"dmabench_breakeven.txt", "dmabench", []string{"-iters", "60", "-breakeven"}},
	{"dmabench_trend.txt", "dmabench", []string{"-iters", "30", "-trend"}},
	{"dmabench_all.json", "dmabench", []string{"-iters", "60", "-json", "-sweep", "-breakeven", "-trend", "-comparators", "-contention"}},
	// The descriptor-ring surfaces: batched-initiation depth sweep and
	// register-context churn, text + JSON, plus the report's markdown
	// rendering. Both are opt-in flags, so the pre-ring goldens above
	// stay byte-identical.
	{"dmabench_ring.txt", "dmabench", []string{"-iters", "60", "-ring", "-ringchurn"}},
	{"dmabench_ring.json", "dmabench", []string{"-iters", "60", "-json", "-ring", "-ringchurn"}},
	{"report_ring.md", "report", []string{"-iters", "60", "-seeds", "2", "-ring"}},
	// The virtual-address plane: Table 1 through the IOMMU + the IOTLB
	// hit-rate sweep (-va) and the paging recovery-policy grid
	// (-paging), text + JSON, plus the report's markdown rendering.
	// All opt-in, so the earlier goldens stay byte-identical.
	{"dmabench_va.txt", "dmabench", []string{"-iters", "60", "-va", "-paging"}},
	{"dmabench_va.json", "dmabench", []string{"-iters", "60", "-json", "-va", "-paging"}},
	{"report_va.md", "report", []string{"-iters", "60", "-seeds", "2", "-va"}},
	// The steered sweeps: adaptive policies replacing the exhaustive
	// grids, text + JSON + markdown, plus the -only registry subset.
	// All opt-in, so the earlier goldens stay byte-identical.
	{"dmabench_steer.txt", "dmabench", []string{"-iters", "60", "-steer"}},
	{"dmabench_steer.json", "dmabench", []string{"-iters", "60", "-json", "-steer"}},
	{"report_steer.md", "report", []string{"-iters", "60", "-seeds", "2", "-steer"}},
	{"report_only.md", "report", []string{"-iters", "60", "-only", "table1,breakeven,oslat"}},
	{"oslat_steer.txt", "oslat", []string{"-steer"}},
	{"report.md", "report", []string{"-iters", "100", "-seeds", "8"}},
	{"report.json", "report", []string{"-iters", "100", "-json"}},
	{"oslat.txt", "oslat", []string{"-iters", "1000"}},
	{"faultsim.txt", "faultsim", []string{"-msgs", "8", "-seeds", "2", "-depth", "3"}},
	{"faultsim.json", "faultsim", []string{"-msgs", "8", "-seeds", "2", "-depth", "3", "-json"}},
	// The default sharded-NOW world. For -scale, the -procs re-run below
	// varies the INTRA-world shard worker count — the bytes must still
	// match, which pins the parallel engine's determinism contract at the
	// tool level.
	{"clustersim_scale.txt", "clustersim", []string{"-scale"}},
	// The hosted-machine world: full machines on the sharded engine, one
	// world per initiation protocol. Small on purpose — the -procs re-run
	// pins the machine path's determinism at the tool level too.
	{"clustersim_scalemachine.txt", "clustersim",
		[]string{"-scale", "-protocol", "all", "-nodes", "16", "-arrival", "10000", "-ms", "1"}},
}

// TestGolden pins the rendered output of every tool: text, markdown and
// JSON must be byte-identical to the pre-refactor goldens, at more than
// one worker count.
func TestGolden(t *testing.T) {
	dir := buildTools(t)
	for _, tc := range goldenCases {
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			path := filepath.Join("testdata", "golden", tc.file)
			got := runTool(t, dir, tc.tool, tc.args...)
			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run make golden): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s %v drifted from %s (run make golden to accept)", tc.tool, tc.args, path)
			}
			// The parallel runner's contract: same bytes for any -procs.
			for _, procs := range []string{"1", "3"} {
				again := runTool(t, dir, tc.tool, append(tc.args, "-procs", procs)...)
				if !bytes.Equal(again, want) {
					t.Fatalf("%s %v -procs %s diverged from the golden", tc.tool, tc.args, procs)
				}
			}
		})
	}
}

// TestSmoke exercises every binary end to end with tiny workloads,
// including the new -list and -json frontends.
func TestSmoke(t *testing.T) {
	dir := buildTools(t)
	cases := []struct {
		name string
		tool string
		args []string
		want string // substring the output must contain
	}{
		{"dmabench", "dmabench", []string{"-iters", "5"}, "Table 1"},
		{"dmabench-list", "dmabench", []string{"-list"}, "bussweep"},
		{"dmabench-trace", "dmabench", []string{"-iters", "5", "-trace"}, "bus transactions"},
		{"dmabench-va", "dmabench", []string{"-iters", "5", "-va", "-tlb", "4"}, "IOTLB hit rate"},
		{"dmabench-paging", "dmabench", []string{"-iters", "5", "-paging"}, "Device paging"},
		{"dmabench-va-json", "dmabench", []string{"-iters", "5", "-json", "-va", "-paging", "-procs", "2"}, "\"Paging\""},
		{"dmabench-steer", "dmabench", []string{"-iters", "30", "-steer", "-procs", "2"}, "Steered sweeps"},
		{"dmabench-steer-json", "dmabench", []string{"-iters", "30", "-json", "-steer", "-procs", "2"}, "\"Steer\""},
		{"dmabench-list-va", "dmabench", []string{"-list"}, "vasweep"},
		{"report", "report", []string{"-iters", "10", "-seeds", "2"}, "## F5/F6/F8"},
		{"report-va", "report", []string{"-iters", "10", "-seeds", "2", "-va"}, "Device paging"},
		{"report-list", "report", []string{"-list"}, "breakeven"},
		{"report-json", "report", []string{"-iters", "10", "-json"}, "\"BusSweep\""},
		{"oslat", "oslat", []string{"-iters", "200"}, "WITHIN BAND"},
		{"oslat-steer", "oslat", []string{"-steer", "-procs", "2"}, "converged at"},
		{"report-only", "report", []string{"-iters", "10", "-only", "oslat"}, "null syscall"},
		{"report-steer", "report", []string{"-iters", "10", "-seeds", "2", "-steer"}, "Online steering"},
		{"oslat-json", "oslat", []string{"-iters", "200", "-json", "-procs", "2"}, "\"CPUCycles\""},
		{"oslat-list", "oslat", []string{"-list"}, "oslat"},
		{"clustersim", "clustersim", []string{"-msgs", "4"}, "init share"},
		{"clustersim-json", "clustersim", []string{"-msgs", "4", "-json", "-procs", "2"}, "\"LatencyPs\""},
		{"clustersim-hist", "clustersim", []string{"-msgs", "4", "-hist", "-gigabit=false"}, "latency distribution"},
		{"attacksim", "attacksim", []string{"-slots", "2", "-seeds", "3"}, "exhaustive search"},
		{"attacksim-list", "attacksim", []string{"-list"}, "campaign"},
		{"faultsim", "faultsim", []string{"-msgs", "4", "-seeds", "2", "-depth", "2"}, "Reliable channel under loss"},
		{"faultsim-list", "faultsim", []string{"-list"}, "faultsweep"},
		{"faultsim-json", "faultsim", []string{"-msgs", "4", "-seeds", "2", "-depth", "2", "-json", "-procs", "2"}, "\"Sweep\""},
		{"clustersim-scale", "clustersim", []string{"-scale", "-nodes", "16", "-shards", "2", "-ms", "1"}, "goodput"},
		{"clustersim-scale-json", "clustersim", []string{"-scale", "-json", "-nodes", "16", "-shards", "2", "-ms", "1", "-procs", "2"}, "\"Shards\""},
		{"clustersim-scale-bench", "clustersim", []string{"-scale", "-bench", "-nodes", "16", "-shards", "2", "-ms", "1"}, "\"HostCPUs\""},
		{"clustersim-scalemachine", "clustersim", []string{"-scale", "-protocol", "extshadow", "-nodes", "8", "-shards", "2", "-ms", "1"}, "Machines at cluster scale"},
		{"clustersim-scalemachine-json", "clustersim", []string{"-scale", "-protocol", "extshadow", "-nodes", "8", "-shards", "2", "-ms", "1", "-json", "-procs", "2"}, "\"MachineDigest\""},
		{"clustersim-scalemachine-bench", "clustersim", []string{"-scale", "-protocol", "kernel", "-nodes", "8", "-shards", "2", "-ms", "1", "-bench"}, "\"BenchMachine\""},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			out := runTool(t, dir, tc.tool, tc.args...)
			if !bytes.Contains(out, []byte(tc.want)) {
				t.Fatalf("%s %v output lacks %q:\n%s", tc.tool, tc.args, tc.want, out)
			}
		})
	}
}

// TestVAFlagRejection pins dmabench's virtual-address flag validation:
// an invalid combination must die with exit status 2 and a flag-level
// message before any simulation spins up, matching the -scale
// precedent above.
func TestVAFlagRejection(t *testing.T) {
	dir := buildTools(t)
	cases := []struct {
		name string
		args []string
		want string // substring the stderr diagnostic must contain
	}{
		{"tlb-without-va", []string{"-tlb", "4"}, "needs -va"},
		{"negative-tlb", []string{"-va", "-tlb", "-1"}, "-tlb -1"},
		{"zero-iters", []string{"-va", "-iters", "0"}, "-iters 0"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			code, stderr := runToolErr(t, dir, "dmabench", tc.args...)
			if code != 2 {
				t.Fatalf("dmabench %v exited %d, want 2\n%s", tc.args, code, stderr)
			}
			if !bytes.Contains([]byte(stderr), []byte(tc.want)) {
				t.Fatalf("dmabench %v stderr lacks %q:\n%s", tc.args, tc.want, stderr)
			}
		})
	}
}

// TestReportOnlyRejection pins report's -only validation: an unknown
// experiment name must die with exit status 2 and the list of valid
// names BEFORE any experiment runs, matching the -va and -scale
// flag-validation precedents.
func TestReportOnlyRejection(t *testing.T) {
	dir := buildTools(t)
	cases := []struct {
		name string
		args []string
		want string // substring the stderr diagnostic must contain
	}{
		{"unknown-name", []string{"-only", "nosuch"}, `unknown experiment "nosuch"`},
		{"unknown-among-valid", []string{"-only", "table1,bogus"}, `unknown experiment "bogus"`},
		{"lists-valid-names", []string{"-only", "nope"}, "valid: breakeven"},
		{"empty-list", []string{"-only", ","}, "no experiment names"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			code, stderr := runToolErr(t, dir, "report", tc.args...)
			if code != 2 {
				t.Fatalf("report %v exited %d, want 2\n%s", tc.args, code, stderr)
			}
			if !bytes.Contains([]byte(stderr), []byte(tc.want)) {
				t.Fatalf("report %v stderr lacks %q:\n%s", tc.args, tc.want, stderr)
			}
		})
	}
}

// TestScaleFlagRejection pins the -scale frontend's failure paths: a
// nonsense world must die with exit status 2 and a flag-level message,
// before any simulation spins up.
func TestScaleFlagRejection(t *testing.T) {
	dir := buildTools(t)
	cases := []struct {
		name string
		args []string
		want string // substring the stderr diagnostic must contain
	}{
		{"shards-above-nodes", []string{"-scale", "-nodes", "8", "-shards", "9"}, "-shards 9 exceeds -nodes 8"},
		{"zero-arrival", []string{"-scale", "-arrival", "0"}, "-arrival 0"},
		{"negative-arrival", []string{"-scale", "-arrival", "-5"}, "-arrival -5"},
		{"one-node", []string{"-scale", "-nodes", "1"}, "at least 2 nodes"},
		{"zero-shards", []string{"-scale", "-shards", "0"}, "-shards 0"},
		{"zero-tenants", []string{"-scale", "-tenants", "0"}, "-tenants 0"},
		{"zero-window", []string{"-scale", "-ms", "0"}, "-ms 0"},
		{"unknown-protocol", []string{"-scale", "-protocol", "bogus"}, `-protocol "bogus"`},
		{"protocol-without-scale", []string{"-protocol", "extshadow"}, "needs -scale"},
		{"protocol-nodes-ceiling", []string{"-scale", "-protocol", "extshadow", "-nodes", "2049"}, "at most 2048 nodes"},
		{"protocol-tiny-request", []string{"-scale", "-protocol", "kernel", "-bytes", "4"}, "8-byte RPC tag"},
		{"protocol-huge-request", []string{"-scale", "-protocol", "kernel", "-bytes", "9000"}, "landing page"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			code, stderr := runToolErr(t, dir, "clustersim", tc.args...)
			if code != 2 {
				t.Fatalf("clustersim %v exited %d, want 2\n%s", tc.args, code, stderr)
			}
			if !bytes.Contains([]byte(stderr), []byte(tc.want)) {
				t.Fatalf("clustersim %v stderr lacks %q:\n%s", tc.args, tc.want, stderr)
			}
		})
	}
}
