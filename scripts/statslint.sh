#!/bin/sh
# statslint: the unified observability plane (internal/obs) is the only
# place new metric storage may be declared. Every counter on a hot path
# lives in an obs.Counter/obs.Gauge cell and is registered with the
# machine's registry; the *Stats structs below predate obs and survive
# only as compatibility accessors / snapshot wire formats. A NEW *Stats
# struct outside internal/obs means a component grew private counter
# storage instead of obs cells — this script fails `make ci` when that
# happens. To bless an intentional addition, extend the allowlist here
# (and say why in the commit).
set -eu
cd "$(dirname "$0")/.."

allow=$(cat <<'EOF'
internal/bus/bus.go:Stats
internal/bus/writebuffer.go:WBStats
internal/coll/retry.go:ResilientStats
internal/cpu/cpu.go:Stats
internal/dma/engine.go:Stats
internal/kernel/kernel.go:Stats
internal/msg/msg.go:Stats
internal/msg/reliable.go:RStats
internal/net/net.go:FabricStats
internal/phys/phys.go:Stats
internal/proc/proc.go:Stats
internal/vm/tlb.go:TLBStats
EOF
)

found=$(grep -rn 'type [A-Za-z0-9_]*Stats struct' --include='*.go' internal cmd \
    | grep -v '_test\.go:' \
    | grep -v '^internal/obs/' \
    | sed -E 's|^([^:]+):[0-9]+:[[:space:]]*type ([A-Za-z0-9_]*Stats) struct.*|\1:\2|' \
    | sort)

if [ "$found" != "$allow" ]; then
    echo "statslint: the set of *Stats structs outside internal/obs changed." >&2
    echo "statslint: new metric storage belongs in obs cells (internal/obs), not ad-hoc structs." >&2
    echo "--- allowlisted" >&2
    echo "$allow" >&2
    echo "--- found" >&2
    echo "$found" >&2
    exit 1
fi
echo "statslint: ok (${allow:+$(echo "$allow" | wc -l | tr -d ' ')} compat Stats structs, none new)"
