package uldma_test

// TestTraceGolden pins the Perfetto trace_event documents the tools
// export through -trace-out. The traced scenarios are serial and
// simulated-deterministic, so the documents are part of the tools'
// byte-level contract exactly like the text and JSON goldens:
//
//	make trace-golden     (= go test -run TestTraceGolden -update .)
//
// Three documents are pinned: dmabench's default scenario (one Table-1
// initiation world per method, four process rows), faultsim's -replay
// of faultsearch seed 1 (the cluster-wide view of the reliable channel
// surviving its seeded fault plan), and dmabench's -steer scenario
// (the steered suite's decision track — the search itself on a
// timeline).

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

var traceGoldenCases = []struct {
	file string
	tool string
	args []string // -trace-out FILE is appended
}{
	{"dmabench_trace.json", "dmabench", []string{"-iters", "5"}},
	{"faultsim_replay.json", "faultsim", []string{"-replay", "1"}},
	// The steered suite's decision track: with -steer, -trace-out
	// exports the search itself (probe/split/abort/accept instants on
	// the CatSteer category) instead of the initiation worlds.
	{"dmabench_steer_trace.json", "dmabench", []string{"-iters", "30", "-steer"}},
}

func TestTraceGolden(t *testing.T) {
	dir := buildTools(t)
	for _, tc := range traceGoldenCases {
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			render := func(extra ...string) []byte {
				out := filepath.Join(t.TempDir(), "trace.json")
				args := append(append([]string{}, tc.args...), extra...)
				args = append(args, "-trace-out", out)
				runTool(t, dir, tc.tool, args...)
				data, err := os.ReadFile(out)
				if err != nil {
					t.Fatalf("%s %v wrote no trace: %v", tc.tool, args, err)
				}
				return data
			}
			got := render()
			path := filepath.Join("testdata", "golden", tc.file)
			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run make trace-golden): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s %v trace drifted from %s (run make trace-golden to accept)", tc.tool, tc.args, path)
			}
			// The traced scenarios are serial: the document must not
			// depend on the worker count.
			if again := render("-procs", "3"); !bytes.Equal(again, want) {
				t.Fatalf("%s %v -procs 3 trace diverged from the golden", tc.tool, tc.args)
			}
		})
	}
}
