package uldma_test

// Full-stack integration soaks: many processes, mixed initiation
// methods, random preemption, canary pages — the whole machine under
// sustained legal load, with end-state invariants checked from outside
// the simulation.

import (
	"bytes"
	"fmt"
	"testing"

	userdma "uldma/internal/core"
	"uldma/internal/dma"
	"uldma/internal/msg"
	"uldma/internal/net"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/vm"
)

// TestSoakMixedMethodsSingleNode runs four processes (extended-shadow
// contexts for the first hardware supply, kernel path beyond) each
// performing dozens of DMAs and atomics between their own pages under
// seeded random preemption. Invariants:
//
//   - every process finishes cleanly;
//   - every engine transfer stays within the union of legitimately
//     mapped pages (no stray physical traffic);
//   - canary pages owned by a bystander are bit-identical afterwards;
//   - each process's final payload arrives intact;
//   - per-process atomic counters are exact.
func TestSoakMixedMethodsSingleNode(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			soakSingleNode(t, seed)
		})
	}
}

func soakSingleNode(t *testing.T, seed uint64) {
	t.Helper()
	method := userdma.ExtShadow{}
	m := userdma.Machine(method)
	pageSize := m.Cfg.PageSize

	const nProcs = 4
	const opsPerProc = 25
	type worker struct {
		h         *userdma.Handle
		srcVA     vm.VAddr
		dstVA     vm.VAddr
		cellVA    vm.VAddr
		srcFrame  phys.Addr
		dstFrame  phys.Addr
		cellFrame phys.Addr
		pattern   byte
		adds      uint64
	}
	workers := make([]*worker, nProcs)
	legalFrames := map[phys.Addr]bool{}

	for i := 0; i < nProcs; i++ {
		w := &worker{
			srcVA:   vm.VAddr(0x100000),
			dstVA:   vm.VAddr(0x200000),
			cellVA:  vm.VAddr(0x300000),
			pattern: byte(0x30 + i),
		}
		workers[i] = w
		rng := sim.NewRand(seed*1000 + uint64(i))
		p := m.NewProcess(fmt.Sprintf("w%d", i), func(c *proc.Context) error {
			for op := 0; op < opsPerProc; op++ {
				switch rng.Intn(3) {
				case 0: // user-level DMA, random offset/size inside the pages
					off := vm.VAddr(rng.Intn(64) * 16)
					size := uint64(rng.Intn(96) + 8)
					st, err := w.h.DMA(c, w.srcVA+off, w.dstVA+off, size)
					if err != nil {
						return err
					}
					if st == dma.StatusFailure {
						return fmt.Errorf("op %d refused", op)
					}
				case 1: // user-level atomic
					if _, err := userdma.FetchAdd(c, w.cellVA, 1); err != nil {
						return err
					}
					w.adds++
				default: // kernel-path DMA for contrast
					st, err := c.Syscall(1 /* kernel.SysDMA */, uint64(w.srcVA), uint64(w.dstVA), 64)
					if err != nil {
						return err
					}
					if st == dma.StatusFailure {
						return fmt.Errorf("kernel op %d refused", op)
					}
				}
			}
			// Final, verifiable payload: whole source page to the
			// destination page, then wait for it from user level.
			st, err := w.h.DMA(c, w.srcVA, w.dstVA, pageSize)
			if err != nil {
				return err
			}
			if st == dma.StatusFailure {
				return fmt.Errorf("final DMA refused")
			}
			return w.h.Wait(c, 1_000_000)
		})
		h, err := method.Attach(m, p)
		if err != nil {
			t.Fatal(err)
		}
		w.h = h
		frames, err := m.SetupPages(p, w.srcVA, 1, vm.Read|vm.Write)
		if err != nil {
			t.Fatal(err)
		}
		w.srcFrame = frames[0]
		frames, err = m.SetupPages(p, w.dstVA, 1, vm.Read|vm.Write)
		if err != nil {
			t.Fatal(err)
		}
		w.dstFrame = frames[0]
		cellFrames, err := m.SetupPages(p, w.cellVA, 1, vm.Read|vm.Write)
		if err != nil {
			t.Fatal(err)
		}
		w.cellFrame = cellFrames[0]
		if err := userdma.SetupAtomics(m, p, w.cellVA); err != nil {
			t.Fatal(err)
		}
		legalFrames[w.srcFrame] = true
		legalFrames[w.dstFrame] = true
		legalFrames[w.cellFrame] = true
		m.Mem.Fill(w.srcFrame, int(pageSize), w.pattern)
	}

	// Bystander canaries: mapped, shadowed, never used.
	bystander := m.NewProcess("bystander", func(c *proc.Context) error { return nil })
	canary, err := m.Kernel.AllocPage(bystander.AddressSpace(), 0x100000, vm.Read|vm.Write)
	if err != nil {
		t.Fatal(err)
	}
	canaryImage := bytes.Repeat([]byte{0xCA, 0xFE}, int(pageSize)/2)
	if err := m.Mem.WriteBytes(canary, canaryImage); err != nil {
		t.Fatal(err)
	}

	if err := m.Run(proc.NewRandom(seed), 1<<62); err != nil {
		t.Fatal(err)
	}
	for _, p := range m.Runner.Processes() {
		if p.Err() != nil {
			t.Fatalf("%s: %v", p.Name(), p.Err())
		}
	}
	m.Settle()

	// Engine self-check: internal bookkeeping consistent after the run.
	if err := m.Engine.CheckInvariants(m.Clock.Now()); err != nil {
		t.Fatal(err)
	}
	// Invariant: no transfer outside the legal page set.
	ps := phys.Addr(pageSize)
	for _, tr := range m.Engine.Transfers() {
		if !legalFrames[tr.Src&^(ps-1)] || !legalFrames[tr.Dst&^(ps-1)] {
			t.Fatalf("stray transfer %v -> %v", tr.Src, tr.Dst)
		}
	}
	// Invariant: canaries untouched.
	got, err := m.Mem.ReadBytes(canary, int(pageSize))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, canaryImage) {
		t.Fatal("canary page modified")
	}
	// Invariant: final payloads intact, atomics exact.
	for i, w := range workers {
		dst, err := m.Mem.ReadBytes(w.dstFrame, int(pageSize))
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range dst {
			if b != w.pattern {
				t.Fatalf("worker %d: destination corrupted (byte %#x, want %#x)", i, b, w.pattern)
			}
		}
		v, err := m.Mem.Read(w.cellFrame, phys.Size64)
		if err != nil {
			t.Fatal(err)
		}
		if v != w.adds {
			t.Fatalf("worker %d: counter %d, want %d", i, v, w.adds)
		}
	}
}

// TestSoakRepeatedPassingMultiprogrammed: three processes all use the
// 5-access repeated-passing protocol concurrently under random
// preemption. Attempts collide at the engine's single FSM and retry;
// in the end every process has moved its payload, and every transfer
// matches a legitimate (src, dst) pair.
func TestSoakRepeatedPassingMultiprogrammed(t *testing.T) {
	// NOTE on scheduling granularity: the engine's sequence FSM is a
	// shared resource, so concurrent repeated-passing users reset each
	// other's progress. Under instruction-level preemption that means
	// livelock; with realistic quanta (a sequence fits comfortably in
	// one) progress is guaranteed and interleaving still happens at
	// quantum boundaries mid-retry. The sweep varies the quantum.
	for seed := uint64(1); seed <= 4; seed++ {
		method := userdma.RepeatedPassing{Len: 5, Barriers: true, MaxRetries: 512}
		m := userdma.Machine(method)
		pageSize := m.Cfg.PageSize
		type job struct {
			h          *userdma.Handle
			srcF, dstF phys.Addr
			pattern    byte
			moved      int
		}
		const nProcs, dmasEach = 3, 6
		jobs := make([]*job, nProcs)
		legal := map[[2]phys.Addr]bool{}
		for i := 0; i < nProcs; i++ {
			j := &job{pattern: byte(0x50 + i)}
			jobs[i] = j
			p := m.NewProcess(fmt.Sprintf("rep%d", i), func(c *proc.Context) error {
				for k := 0; k < dmasEach; k++ {
					st, err := j.h.DMA(c, 0x100000, 0x200000, 128)
					if err != nil {
						return fmt.Errorf("dma %d: %w", k, err)
					}
					if st == dma.StatusFailure {
						return fmt.Errorf("dma %d refused", k)
					}
					j.moved++
				}
				return nil
			})
			h, err := method.Attach(m, p)
			if err != nil {
				t.Fatal(err)
			}
			j.h = h
			frames, err := m.SetupPages(p, 0x100000, 1, vm.Read|vm.Write)
			if err != nil {
				t.Fatal(err)
			}
			j.srcF = frames[0]
			frames, err = m.SetupPages(p, 0x200000, 1, vm.Read|vm.Write)
			if err != nil {
				t.Fatal(err)
			}
			j.dstF = frames[0]
			legal[[2]phys.Addr{j.srcF, j.dstF}] = true
			m.Mem.Fill(j.srcF, 128, j.pattern)
		}
		if err := m.Run(proc.NewRoundRobin(8+int(seed)), 1<<62); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, p := range m.Runner.Processes() {
			if p.Err() != nil {
				t.Fatalf("seed %d: %s: %v", seed, p.Name(), p.Err())
			}
		}
		m.Settle()
		if err := m.Engine.CheckInvariants(m.Clock.Now()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ps := phys.Addr(pageSize)
		for _, tr := range m.Engine.Transfers() {
			if !legal[[2]phys.Addr{tr.Src &^ (ps - 1), tr.Dst &^ (ps - 1)}] {
				t.Fatalf("seed %d: misdirected transfer %v->%v", seed, tr.Src, tr.Dst)
			}
		}
		for i, j := range jobs {
			b, _ := m.Mem.Read(j.dstF, phys.Size8)
			if byte(b) != j.pattern {
				t.Fatalf("seed %d: proc %d payload corrupted", seed, i)
			}
		}
	}
}

// TestDeterminism: the same seeded scenario replays bit-for-bit — final
// clock, transfer log, and statistics all identical. This property is
// what makes every experiment in the repository reproducible.
func TestDeterminism(t *testing.T) {
	type fingerprint struct {
		clock     sim.Time
		transfers string
		started   uint64
		switches  uint64
	}
	run := func() fingerprint {
		method := userdma.KeyBased{}
		m := userdma.Machine(method)
		type job struct{ h *userdma.Handle }
		for i := 0; i < 3; i++ {
			j := &job{}
			p := m.NewProcess(fmt.Sprintf("p%d", i), func(c *proc.Context) error {
				for k := 0; k < 8; k++ {
					if _, err := j.h.DMA(c, 0x100000, 0x200000, uint64(16+k*8)); err != nil {
						return err
					}
				}
				return nil
			})
			h, err := method.Attach(m, p)
			if err != nil {
				t.Fatal(err)
			}
			j.h = h
			if _, err := m.SetupPages(p, 0x100000, 1, vm.Read|vm.Write); err != nil {
				t.Fatal(err)
			}
			if _, err := m.SetupPages(p, 0x200000, 1, vm.Read|vm.Write); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Run(proc.NewRandom(0xfeed), 1<<62); err != nil {
			t.Fatal(err)
		}
		m.Settle()
		var log string
		for _, tr := range m.Engine.Transfers() {
			log += fmt.Sprintf("%v>%v#%d@%v;", tr.Src, tr.Dst, tr.Size, tr.Start)
		}
		return fingerprint{
			clock:     m.Clock.Now(),
			transfers: log,
			started:   m.Engine.Stats().Started,
			switches:  m.Runner.Stats().Switches,
		}
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("replay diverged:\n%+v\n%+v", a, b)
	}
}

// TestSoakClusterCombined drives msg channels and remote atomics at the
// same time on a 3-node cluster: node 0 streams messages to node 1
// while node 2 and node 1 bump a shared counter in node 1's memory.
func TestSoakClusterCombined(t *testing.T) {
	method := userdma.ExtShadow{}
	cluster := net.MustNewCluster(3, userdma.ConfigFor(method), net.Gigabit())
	n0, n1, n2 := cluster.Nodes[0], cluster.Nodes[1], cluster.Nodes[2]

	const msgs = 12
	const addsPerProc = 20
	const cellOff = phys.Addr(0x300000)
	const cellVA = vm.VAddr(0x50000)

	var tx *msg.Sender
	var rx *msg.Receiver
	sender := n0.NewProcess("tx", func(c *proc.Context) error {
		for i := 0; i < msgs; i++ {
			if err := tx.Send(c, []byte(fmt.Sprintf("payload-%02d", i))); err != nil {
				return err
			}
		}
		return nil
	})
	var received int
	receiver := n1.NewProcess("rx", func(c *proc.Context) error {
		buf := make([]byte, 64)
		for i := 0; i < msgs; i++ {
			n, err := rx.Recv(c, buf)
			if err != nil {
				return err
			}
			if string(buf[:n]) != fmt.Sprintf("payload-%02d", i) {
				return fmt.Errorf("message %d corrupted: %q", i, buf[:n])
			}
			received++
		}
		return nil
	})
	// Local adder on node 1 and remote adder on node 2.
	adderLocal := n1.NewProcess("adder-local", func(c *proc.Context) error {
		for i := 0; i < addsPerProc; i++ {
			if _, err := userdma.FetchAdd(c, cellVA, 1); err != nil {
				return err
			}
		}
		return nil
	})
	adderRemote := n2.NewProcess("adder-remote", func(c *proc.Context) error {
		for i := 0; i < addsPerProc; i++ {
			if _, err := userdma.FetchAdd(c, cellVA, 1); err != nil {
				return err
			}
		}
		return nil
	})

	h, err := method.Attach(n0, sender)
	if err != nil {
		t.Fatal(err)
	}
	if tx, rx, err = msg.NewChannel(n0, sender, h, n1, receiver, 1, msg.Config{Slots: 4, SlotPayload: 64}); err != nil {
		t.Fatal(err)
	}
	if err := n1.Kernel.MapFrame(adderLocal.AddressSpace(), cellVA, cellOff, vm.Read|vm.Write); err != nil {
		t.Fatal(err)
	}
	if err := userdma.SetupAtomics(n1, adderLocal, cellVA); err != nil {
		t.Fatal(err)
	}
	if err := n2.Kernel.MapRemote(adderRemote, cellVA, 1, cellOff); err != nil {
		t.Fatal(err)
	}
	if err := userdma.SetupAtomics(n2, adderRemote, cellVA); err != nil {
		t.Fatal(err)
	}

	if err := cluster.RunRoundRobin(4, 1<<62); err != nil {
		t.Fatal(err)
	}
	for _, m := range cluster.Nodes {
		for _, p := range m.Runner.Processes() {
			if p.Err() != nil {
				t.Fatalf("node %d %s: %v", m.NodeID, p.Name(), p.Err())
			}
		}
	}
	cluster.Settle()

	if received != msgs {
		t.Fatalf("received %d/%d messages", received, msgs)
	}
	v, err := n1.Mem.Read(cellOff, phys.Size64)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2*addsPerProc {
		t.Fatalf("shared counter = %d, want %d", v, 2*addsPerProc)
	}
	// Nothing in steady state crossed a kernel.
	for _, m := range cluster.Nodes {
		if m.Kernel.Stats().Syscalls != 0 {
			t.Fatalf("node %d made %d syscalls", m.NodeID, m.Kernel.Stats().Syscalls)
		}
	}
}
