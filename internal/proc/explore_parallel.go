package proc

import (
	"errors"
	"fmt"
	"sync/atomic"

	"uldma/internal/par"
)

// Parallel exploration.
//
// Explore's schedule tree is embarrassingly parallel: every node replays
// its prefix on a *fresh* world, so two subtrees share no state at all.
// ExploreParallel shards the tree by schedule prefix — it expands the
// root into a frontier of prefixes in DFS order, explores each prefix's
// subtree on a bounded worker pool, and then merges the per-subtree
// results *in frontier order*, reconstructing exactly the state the
// serial explorer would have had when it reached each subtree.
//
// The merge is what makes the parallel result bit-for-bit identical to
// the serial one:
//
//   - Schedules counts compose by summation in DFS order.
//   - The surviving counterexample is the one in the earliest subtree —
//     i.e. the first in serial DFS order — regardless of which worker
//     found its own counterexample first on the wall clock.
//   - The budget check happens at every node entry in the serial
//     explorer, so the budget error fires exactly when the cumulative
//     schedule count reaches maxSchedules while nodes remain. The merge
//     recomputes that point from per-subtree counts.
//
// Workers never publish partial state; each returns a subtreeResult and
// the single merge goroutine assembles the answer. The simulated worlds
// themselves stay single-goroutine — parallelism exists only *between*
// worlds (see internal/par).

// subtreeResult is one worker's summary of a fully- or partially-
// explored subtree.
type subtreeResult struct {
	schedules int   // complete schedules executed in this subtree
	cex       []int // first counterexample in subtree DFS order, or nil
	cexErr    error
	ierr      error // infrastructure error (factory/replay/run), or nil
	ierrAt    int   // schedules completed in-subtree before ierr
	capped    bool  // stopped by the local schedule budget
}

// Sentinel errors used to unwind the worker DFS and to signal the pool.
var (
	errSubtreeCapped  = errors.New("proc: subtree budget cap")
	errSubtreeAborted = errors.New("proc: subtree aborted")
	errSubtreeFound   = errors.New("proc: subtree finding") // pool-level sentinel
)

// frontierItem is one shard of the schedule tree: the subtree rooted at
// prefix. Items are generated and kept in serial DFS order.
type frontierItem struct {
	prefix []int
	leaf   bool  // the prefix is already a complete schedule
	err    error // infrastructure error discovered while expanding here
}

// ExploreParallel is Explore with the subtree work fanned out across
// workers goroutines. It returns a bit-for-bit identical ExploreResult
// (same Schedules count, same Counterexample, same error — including
// the budget-exhaustion error) for any worker count, provided factory
// is deterministic. workers <= 1 runs the serial explorer unchanged;
// workers <= 0 selects runtime.GOMAXPROCS(0).
//
// factory must be safe to call from multiple goroutines concurrently:
// each call must build a completely independent world (the exploration
// contract already requires worlds to share no mutable state).
func ExploreParallel(factory WorldFactory, maxDepth, maxSchedules, workers int) (ExploreResult, error) {
	workers = par.Workers(workers)
	if workers <= 1 {
		return Explore(factory, maxDepth, maxSchedules)
	}
	if maxSchedules <= 0 {
		maxSchedules = 1 << 20
	}

	// Phase 1: expand the frontier serially, in DFS order, until there
	// are enough independent subtrees to keep the pool busy. Interior
	// nodes expanded here are exactly the nodes the serial explorer
	// would have replayed on its way down; leaves stay in the frontier
	// and are re-run by workers (worlds are disposable and cheap).
	items := expandFrontier(factory, maxDepth, workers*4)

	// Phase 2: explore each subtree independently. results[i] is only
	// written by job i; stopAfter carries the lowest item index with a
	// terminal finding so later subtrees can abort early (their results
	// can no longer influence the merge).
	results := make([]subtreeResult, len(items))
	var stopAfter atomic.Int64
	stopAfter.Store(int64(len(items)))
	lower := func(i int) {
		for {
			cur := stopAfter.Load()
			if int64(i) >= cur || stopAfter.CompareAndSwap(cur, int64(i)) {
				return
			}
		}
	}
	poolErr := par.Do(len(items), workers, func(i int) error {
		if items[i].err != nil {
			// Expansion already failed here; the merge reports it.
			lower(i)
			return errSubtreeFound
		}
		abort := func() bool { return int64(i) > stopAfter.Load() }
		results[i] = exploreSubtree(factory, items[i].prefix, maxDepth, maxSchedules, abort)
		r := &results[i]
		if r.cex != nil || r.ierr != nil || r.capped {
			lower(i)
			return errSubtreeFound
		}
		return nil
	})
	if poolErr != nil && !errors.Is(poolErr, errSubtreeFound) {
		return ExploreResult{}, poolErr
	}

	// Phase 3: deterministic merge in frontier (= serial DFS) order.
	return mergeSubtrees(items, results, maxSchedules)
}

// expandFrontier grows the root prefix into at least target subtree
// roots (when the tree is wide enough), preserving serial DFS order.
// Expansion stops early at an infrastructure error: items after the
// failing node can never affect the merged result and are dropped.
func expandFrontier(factory WorldFactory, maxDepth, target int) []frontierItem {
	items := []frontierItem{{prefix: nil}}
	for len(items) < target {
		out := make([]frontierItem, 0, len(items)*2)
		grew := false
		for k, it := range items {
			if it.leaf || it.err != nil || len(out)+len(items)-k >= target {
				// Done expanding, or already enough items: keep the
				// rest as-is (order preserved).
				out = append(out, items[k:]...)
				break
			}
			w, err := factory()
			if err != nil {
				out = append(out, frontierItem{prefix: it.prefix, err: err})
				items = out
				return items // later items can never matter
			}
			alive, err := replay(w.Runner, it.prefix)
			if err != nil {
				w.Runner.Shutdown()
				out = append(out, frontierItem{prefix: it.prefix, err: err})
				items = out
				return items
			}
			if len(alive) == 0 || len(it.prefix) >= maxDepth {
				w.Runner.Shutdown()
				out = append(out, frontierItem{prefix: it.prefix, leaf: true})
				continue
			}
			w.Runner.Shutdown()
			for _, idx := range alive {
				child := append(append([]int(nil), it.prefix...), idx)
				out = append(out, frontierItem{prefix: child})
			}
			grew = true
		}
		items = out
		if !grew {
			break // every item is a leaf: the tree is this narrow
		}
	}
	return items
}

// exploreSubtree runs the serial DFS over the subtree rooted at root,
// with a local schedule budget of cap (the global budget is always an
// upper bound on what any one subtree may contribute). abort is polled
// at every node entry; an aborted subtree's result is never read.
func exploreSubtree(factory WorldFactory, root []int, maxDepth, cap int, abort func() bool) subtreeResult {
	var r subtreeResult
	var dfs func(prefix []int) (bool, error)
	dfs = func(prefix []int) (bool, error) {
		if abort() {
			return false, errSubtreeAborted
		}
		// Mirrors the serial explorer: budget first, then world build.
		if r.schedules >= cap {
			return false, errSubtreeCapped
		}
		w, err := factory()
		if err != nil {
			return false, err
		}
		alive, err := replay(w.Runner, prefix)
		if err != nil {
			w.Runner.Shutdown()
			return false, err
		}
		if len(alive) == 0 || len(prefix) >= maxDepth {
			if err := w.Runner.Run(w.finish(), 1<<62); err != nil {
				return false, err
			}
			r.schedules++
			if err := w.Check(); err != nil {
				r.cex = append([]int(nil), prefix...)
				r.cexErr = err
				return true, nil
			}
			return false, nil
		}
		w.Runner.Shutdown()
		for _, idx := range alive {
			next := append(append([]int(nil), prefix...), idx)
			found, err := dfs(next)
			if err != nil || found {
				return found, err
			}
		}
		return false, nil
	}
	_, err := dfs(root)
	switch {
	case err == nil || errors.Is(err, errSubtreeAborted):
		// Clean completion, or moot: nothing more to record.
	case errors.Is(err, errSubtreeCapped):
		r.capped = true
	default:
		r.ierr = err
		r.ierrAt = r.schedules
	}
	return r
}

// mergeSubtrees folds per-subtree results in DFS order, reconstructing
// the serial explorer's Schedules counter, counterexample choice, and
// budget-error firing point exactly.
func mergeSubtrees(items []frontierItem, results []subtreeResult, maxSchedules int) (ExploreResult, error) {
	budgetErr := func() (ExploreResult, error) {
		return ExploreResult{Schedules: maxSchedules},
			fmt.Errorf("proc: exploration budget (%d schedules) exhausted", maxSchedules)
	}
	cum := 0
	for i := range items {
		// The serial explorer checks the budget on entry to every node;
		// each remaining subtree has at least one node.
		if maxSchedules-cum <= 0 {
			return budgetErr()
		}
		remaining := maxSchedules - cum
		if err := items[i].err; err != nil {
			// Expansion failed at this node before any of its leaves
			// ran — serially, the error surfaces here with cum
			// schedules completed.
			return ExploreResult{Schedules: cum}, err
		}
		sub := &results[i]
		switch {
		case sub.ierr != nil:
			if sub.ierrAt >= remaining {
				// The serial run would have exhausted the budget at a
				// node entered before the failing one.
				return budgetErr()
			}
			return ExploreResult{Schedules: cum + sub.ierrAt}, sub.ierr
		case sub.cex != nil:
			if sub.schedules > remaining {
				// The counterexample leaf lies beyond the budget: the
				// node-entry budget check fires first serially.
				return budgetErr()
			}
			return ExploreResult{
				Schedules:         cum + sub.schedules,
				Counterexample:    sub.cex,
				CounterexampleErr: sub.cexErr,
			}, nil
		case sub.capped:
			// The subtree alone holds >= maxSchedules schedules plus at
			// least one more node; the budget fires within it.
			return budgetErr()
		default:
			if sub.schedules > remaining {
				return budgetErr()
			}
			cum += sub.schedules
		}
	}
	return ExploreResult{Schedules: cum}, nil
}
