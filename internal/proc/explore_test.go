package proc

import (
	"fmt"
	"strings"
	"testing"

	"uldma/internal/bus"
	"uldma/internal/cpu"
	"uldma/internal/phys"
	"uldma/internal/sim"
	"uldma/internal/vm"
)

// exploreFixture builds a tiny two-process world around a shared memory
// cell, for exercising the explorer itself.
func exploreFactory(t *testing.T, guarded bool) WorldFactory {
	t.Helper()
	return func() (*World, error) {
		clock := sim.NewClock()
		mem := phys.New(1 << 16)
		b := bus.New(clock, 12_500_000, bus.CostConfig{StoreCycles: 6, LoadRequestCycles: 4, LoadReplyCycles: 3})
		wb := bus.NewWriteBuffer(b, 8, true)
		c := cpu.New(cpu.Config{Freq: 150 * sim.MHz, IssueCycles: 1, CacheHitCycles: 2, TLBEntries: 8},
			clock, sim.NewEventQueue(), mem, b, wb)
		r := NewRunner(c, RunnerConfig{})
		// Both processes share one frame read-write.
		mkAS := func(asid int) *vm.AddressSpace {
			as := vm.NewAddressSpace(asid, 8192)
			as.Map(0x10000, 0x8000, vm.Read|vm.Write)
			return as
		}
		// A racy (or guarded) increment: load, spin, store.
		body := func(ctx *Context) error {
			if guarded {
				// "Guarded" here means atomic via a single Swap-free
				// trick: reread-and-verify loop (still only our own
				// primitives, enough for the explorer test).
				for {
					v, err := ctx.Load(0x10000, phys.Size64)
					if err != nil {
						return err
					}
					if err := ctx.Store(0x10000, phys.Size64, v+1); err != nil {
						return err
					}
					// Verify nobody raced us between load and store.
					chk, err := ctx.Load(0x10000, phys.Size64)
					if err != nil {
						return err
					}
					if chk >= 2 { // both increments (or ours on top of theirs) landed
						return nil
					}
					if chk == v+1 {
						return nil
					}
				}
			}
			v, err := ctx.Load(0x10000, phys.Size64)
			if err != nil {
				return err
			}
			ctx.Spin(5)
			return ctx.Store(0x10000, phys.Size64, v+1)
		}
		r.Spawn("p1", mkAS(1), body)
		r.Spawn("p2", mkAS(2), body)
		return &World{
			Runner: r,
			Check: func() error {
				v, err := mem.Read(0x8000, phys.Size64)
				if err != nil {
					return err
				}
				if v != 2 {
					return fmt.Errorf("counter = %d, want 2", v)
				}
				return nil
			},
		}, nil
	}
}

// TestExploreFindsLostUpdate: the classic unguarded read-modify-write
// race MUST have a losing interleaving, and the explorer must find it.
func TestExploreFindsLostUpdate(t *testing.T) {
	res, err := Explore(exploreFactory(t, false), 6, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample == nil {
		t.Fatalf("no lost-update interleaving found in %d schedules", res.Schedules)
	}
	if !strings.Contains(res.CounterexampleErr.Error(), "counter = 1") {
		t.Fatalf("counterexample error = %v", res.CounterexampleErr)
	}
	if res.Schedules == 0 {
		t.Fatal("no schedules executed")
	}
}

// TestExploreBudget: exploration respects its schedule budget.
func TestExploreBudget(t *testing.T) {
	_, err := Explore(exploreFactory(t, false), 6, 1)
	if err == nil || !strings.Contains(err.Error(), "budget") {
		// Budget 1 may find the counterexample first (schedule 1 is
		// the all-p1-first order, which is race-free), so the error is
		// expected here.
		t.Fatalf("budget not enforced: %v", err)
	}
}

// TestExploreAllPassWhenSerial: depth 0 means the fallback round-robin
// runs everything in spawn order — race-free, one schedule, no
// counterexample.
func TestExploreAllPassWhenSerial(t *testing.T) {
	res, err := Explore(exploreFactory(t, false), 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedules != 1 || res.Counterexample != nil {
		t.Fatalf("serial exploration: %+v", res)
	}
}

// TestExploreCountsSchedules: for two 3-slot straight-line processes
// explored to full depth, every leaf is a distinct merge. Process
// bodies here are 2 instructions + 1 completion grant each.
func TestExploreCountsSchedules(t *testing.T) {
	factory := func() (*World, error) {
		clock := sim.NewClock()
		mem := phys.New(1 << 16)
		b := bus.New(clock, 12_500_000, bus.CostConfig{StoreCycles: 6, LoadRequestCycles: 4, LoadReplyCycles: 3})
		wb := bus.NewWriteBuffer(b, 8, true)
		c := cpu.New(cpu.Config{Freq: 150 * sim.MHz, IssueCycles: 1, CacheHitCycles: 2, TLBEntries: 8},
			clock, sim.NewEventQueue(), mem, b, wb)
		r := NewRunner(c, RunnerConfig{})
		as := vm.NewAddressSpace(1, 8192)
		body := func(ctx *Context) error {
			ctx.Spin(1)
			ctx.Spin(1)
			return nil
		}
		r.Spawn("a", as, body)
		r.Spawn("b", vm.NewAddressSpace(2, 8192), body)
		return &World{Runner: r, Check: func() error { return nil }}, nil
	}
	res, err := Explore(factory, 12, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	// Each process occupies 3 slots (2 instructions + completion):
	// C(6,3) = 20 distinct merges.
	if res.Schedules != 20 {
		t.Fatalf("schedules = %d, want 20 = C(6,3)", res.Schedules)
	}
}
