package proc

import "uldma/internal/sim"

// Policy picks the process to receive the next instruction slot.
// runnable is never empty; current may be nil (first slot) or Done.
// The runnable slice is the scheduler's reusable scratch buffer:
// implementations must not retain it across calls.
type Policy interface {
	Next(runnable []*Process, current *Process) *Process
}

// RoundRobin grants each process Quantum consecutive slots, then moves
// to the next — a classic preemptive time-slice scheduler scaled down
// to instruction granularity.
type RoundRobin struct {
	Quantum int
	used    int
}

// NewRoundRobin returns a round-robin policy; quantum <= 0 means one
// slot per turn.
func NewRoundRobin(quantum int) *RoundRobin {
	if quantum <= 0 {
		quantum = 1
	}
	return &RoundRobin{Quantum: quantum}
}

// Next implements Policy.
func (rr *RoundRobin) Next(runnable []*Process, current *Process) *Process {
	if current != nil && current.State() != Done && rr.used < rr.Quantum {
		for _, p := range runnable {
			if p == current {
				rr.used++
				return current
			}
		}
	}
	rr.used = 1
	// Advance past current in spawn order.
	if current != nil {
		for i, p := range runnable {
			if p.PID() > current.PID() {
				return runnable[i]
			}
		}
	}
	return runnable[0]
}

// Random preempts uniformly at random every slot, driven by a seeded
// generator: the adversarial-interleaving property tests replay a seed
// to reproduce any failure.
type Random struct {
	rng *sim.Rand
}

// NewRandom returns a seeded random policy.
func NewRandom(seed uint64) *Random { return &Random{rng: sim.NewRand(seed)} }

// Next implements Policy.
func (r *Random) Next(runnable []*Process, _ *Process) *Process {
	return runnable[r.rng.Intn(len(runnable))]
}

// Scripted replays an explicit schedule: entry i names the process that
// receives slot i. It is how the Figure 5/6/8 interleavings are forced.
// When the script is exhausted (or names a finished/unknown PID), it
// falls back to the first runnable process so that every process can
// run to completion.
type Scripted struct {
	Order []PID
	pos   int
}

// NewScripted builds a scripted policy from a PID sequence.
func NewScripted(order ...PID) *Scripted { return &Scripted{Order: order} }

// Next implements Policy.
func (s *Scripted) Next(runnable []*Process, _ *Process) *Process {
	for s.pos < len(s.Order) {
		want := s.Order[s.pos]
		s.pos++
		for _, p := range runnable {
			if p.PID() == want {
				return p
			}
		}
		// Named process finished or absent: consume the entry and
		// continue with the rest of the script.
	}
	return runnable[0]
}

// Exhausted reports whether the script has been fully consumed.
func (s *Scripted) Exhausted() bool { return s.pos >= len(s.Order) }
