package proc

// World snapshot/restore support (see internal/machine). A runner can
// only be snapshotted quiescent: every spawned process Done, so no
// guest goroutine is live and no slot token is outstanding. Done
// Process records are immutable from then on, which lets the snapshot,
// the origin runner and any number of restored clones share them by
// pointer — their address spaces included, under the contract that
// nobody remaps a pre-snapshot process's pages after the snapshot.

import (
	"fmt"

	"uldma/internal/vm"
)

// RunnerSnapshot captures a Runner's scheduling state. See
// Runner.Snapshot.
type RunnerSnapshot struct {
	procs     []*Process // the (all-Done) process list at snapshot time
	spaces    []*vm.ASSnapshot
	nextPID   PID
	current   *Process
	hooks     int // switch-hook chain length at snapshot time
	exitHooks int
	ctr       counters
}

// Snapshot captures the process list, PID counter, scheduling counters
// and hook-chain lengths. It fails unless every process is Done: a live
// guest goroutine cannot be captured.
func (r *Runner) Snapshot() (*RunnerSnapshot, error) {
	for _, p := range r.procs {
		if p.state != Done {
			return nil, fmt.Errorf("proc: cannot snapshot: process %q (pid %d) not done", p.name, p.pid)
		}
	}
	s := &RunnerSnapshot{
		procs:     append([]*Process(nil), r.procs...),
		spaces:    make([]*vm.ASSnapshot, len(r.procs)),
		nextPID:   r.nextPID,
		current:   r.current,
		hooks:     len(r.hooks),
		exitHooks: len(r.exitHooks),
		ctr:       r.ctr,
	}
	for i, p := range r.procs {
		if p.as != nil {
			s.spaces[i] = p.as.Snapshot()
		}
	}
	return s, nil
}

// Restore rewinds this runner (the snapshot's origin) in place:
// processes spawned after the snapshot are discarded (they must be
// Done), the hook chains are truncated to their snapshot lengths, and
// the snapshot-era processes' address spaces are rewound. Must not be
// used while clones restored from the same snapshot are running — the
// address-space rewind would race with their page-table reads; clones
// instead rely on the post-snapshot immutability of those spaces.
func (r *Runner) Restore(s *RunnerSnapshot) error {
	if len(s.procs) > len(r.procs) {
		return fmt.Errorf("proc: restore: snapshot has %d processes, runner has %d", len(s.procs), len(r.procs))
	}
	for i, p := range s.procs {
		if r.procs[i] != p {
			return fmt.Errorf("proc: restore: process %d diverged from the snapshot (not the origin runner?)", i)
		}
	}
	for _, p := range r.procs[len(s.procs):] {
		if p.state != Done {
			return fmt.Errorf("proc: restore: post-snapshot process %q (pid %d) not done", p.name, p.pid)
		}
	}
	for i, p := range s.procs {
		if s.spaces[i] != nil {
			if err := p.as.Restore(s.spaces[i]); err != nil {
				return err
			}
		}
	}
	for i := len(s.procs); i < len(r.procs); i++ {
		r.procs[i] = nil
	}
	r.procs = r.procs[:len(s.procs)]
	if s.hooks > len(r.hooks) || s.exitHooks > len(r.exitHooks) {
		return fmt.Errorf("proc: restore: hook chains shrank since the snapshot")
	}
	r.hooks = r.hooks[:s.hooks]
	r.exitHooks = r.exitHooks[:s.exitHooks]
	r.nextPID = s.nextPID
	r.current = s.current
	r.ctr = s.ctr
	return nil
}

// Adopt wires the snapshot's process list into a freshly built runner
// (a clone of the snapshot's origin machine). The Done processes are
// shared by pointer — they are immutable — and the hook chains must
// already have been rebuilt to their snapshot lengths by re-running the
// same setup calls (the kernel re-enables its hooks on the clone), so
// the chain lengths are verified, not restored.
func (r *Runner) Adopt(s *RunnerSnapshot) error {
	if len(r.procs) != 0 {
		return fmt.Errorf("proc: adopt: runner already has %d processes", len(r.procs))
	}
	if len(r.hooks) != s.hooks || len(r.exitHooks) != s.exitHooks {
		return fmt.Errorf("proc: adopt: clone has %d/%d hooks, snapshot had %d/%d — custom hooks cannot be cloned",
			len(r.hooks), len(r.exitHooks), s.hooks, s.exitHooks)
	}
	r.procs = append(r.procs, s.procs...)
	r.nextPID = s.nextPID
	r.current = s.current
	r.ctr = s.ctr
	return nil
}
