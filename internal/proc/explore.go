package proc

import "fmt"

// Exploration: bounded model checking of scheduler interleavings.
//
// The races this repository studies live in windows of at most a few
// instructions, so exhaustively enumerating every schedule of two short
// guest programs is tractable — and much stronger than sampling. The
// explorer builds a fresh world per schedule (simulations are cheap and
// deterministic), extends the schedule one decision at a time, and
// prunes branches that name finished processes.

// World is one disposable universe for exploration: a runner plus a
// check to run after the schedule completes.
type World struct {
	// Runner schedules the world's processes.
	Runner *Runner
	// Check inspects the final state; returning an error marks the
	// schedule as a counterexample.
	Check func() error
	// Finish, if non-nil, schedules the world once the explicit
	// decisions are exhausted. The default is round-robin with an
	// effectively infinite quantum — first-spawned-runs-to-block —
	// which suits short straight-line guests. Worlds whose processes
	// POLL each other (spin loops that never block) must supply a
	// small-quantum policy here, or the first spinner starves the rest.
	// Each factory call builds a fresh world, so the policy instance is
	// private to one schedule.
	Finish Policy
}

// finish returns the world's finishing policy.
func (w *World) finish() Policy {
	if w.Finish != nil {
		return w.Finish
	}
	return NewRoundRobin(1 << 20)
}

// WorldFactory builds a fresh, identical world. It must create the same
// processes in the same order each time (the explorer addresses them by
// spawn index).
type WorldFactory func() (*World, error)

// ExploreResult summarizes an exploration.
type ExploreResult struct {
	// Schedules is how many complete schedules were executed.
	Schedules int
	// Counterexample is the first failing schedule (spawn-index per
	// slot), nil if every schedule passed.
	Counterexample []int
	// CounterexampleErr is Check's error for the counterexample.
	CounterexampleErr error
}

// Explore runs every schedule of the factory's processes up to maxDepth
// explicit decisions (after which the remaining slots run first-spawned
// -first). Exploration stops at the first counterexample.
//
// The schedule alphabet at each step is the set of runnable processes;
// a prefix is extended depth-first. Each probe replays its prefix on a
// fresh world, so guest programs may branch on loaded values — the tree
// is re-discovered run by run.
func Explore(factory WorldFactory, maxDepth int, maxSchedules int) (ExploreResult, error) {
	res := ExploreResult{}
	if maxSchedules <= 0 {
		maxSchedules = 1 << 20
	}
	var dfs func(prefix []int) (bool, error)
	dfs = func(prefix []int) (bool, error) {
		if res.Schedules >= maxSchedules {
			return false, fmt.Errorf("proc: exploration budget (%d schedules) exhausted", maxSchedules)
		}
		// Replay the prefix on a fresh world to discover the frontier.
		w, err := factory()
		if err != nil {
			return false, err
		}
		alive, err := replay(w.Runner, prefix)
		if err != nil {
			return false, err
		}
		if len(alive) == 0 || len(prefix) >= maxDepth {
			// Finish deterministically and check.
			if err := w.Runner.Run(w.finish(), 1<<62); err != nil {
				return false, err
			}
			res.Schedules++
			if err := w.Check(); err != nil {
				res.Counterexample = append([]int(nil), prefix...)
				res.CounterexampleErr = err
				return true, nil
			}
			return false, nil
		}
		// This world only served to discover the frontier; tear its
		// guest goroutines down before branching.
		w.Runner.Shutdown()
		for _, idx := range alive {
			next := append(append([]int(nil), prefix...), idx)
			found, err := dfs(next)
			if err != nil || found {
				return found, err
			}
		}
		return false, nil
	}
	_, err := dfs(nil)
	return res, err
}

// replay grants the prefix's slots (by spawn index) and returns the
// spawn indices still runnable afterwards.
func replay(r *Runner, prefix []int) ([]int, error) {
	for step, idx := range prefix {
		procs := r.Processes()
		if idx < 0 || idx >= len(procs) {
			return nil, fmt.Errorf("proc: replay step %d: index %d out of range", step, idx)
		}
		p := procs[idx]
		if p.State() == Done {
			// A shorter-than-expected program: the branch vanished; the
			// caller treats this prefix as covered by its parent.
			continue
		}
		r.Step(p)
	}
	var alive []int
	for i, p := range r.Processes() {
		if p.State() != Done {
			alive = append(alive, i)
		}
	}
	return alive, nil
}
