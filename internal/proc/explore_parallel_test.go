package proc

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"uldma/internal/bus"
	"uldma/internal/cpu"
	"uldma/internal/phys"
	"uldma/internal/sim"
	"uldma/internal/vm"
)

// straightLineFactory: two 3-slot straight-line processes, a full tree
// of C(6,3) = 20 schedules with no counterexample.
func straightLineFactory() (*World, error) {
	clock := sim.NewClock()
	mem := phys.New(1 << 16)
	b := bus.New(clock, 12_500_000, bus.CostConfig{StoreCycles: 6, LoadRequestCycles: 4, LoadReplyCycles: 3})
	wb := bus.NewWriteBuffer(b, 8, true)
	c := cpu.New(cpu.Config{Freq: 150 * sim.MHz, IssueCycles: 1, CacheHitCycles: 2, TLBEntries: 8},
		clock, sim.NewEventQueue(), mem, b, wb)
	r := NewRunner(c, RunnerConfig{})
	body := func(ctx *Context) error {
		ctx.Spin(1)
		ctx.Spin(1)
		return nil
	}
	r.Spawn("a", vm.NewAddressSpace(1, 8192), body)
	r.Spawn("b", vm.NewAddressSpace(2, 8192), body)
	return &World{Runner: r, Check: func() error { return nil }}, nil
}

// assertSameExplore compares a serial and a parallel exploration result
// bit for bit, including error presence and text.
func assertSameExplore(t *testing.T, label string, sr ExploreResult, serr error, pr ExploreResult, perr error) {
	t.Helper()
	if (serr == nil) != (perr == nil) {
		t.Fatalf("%s: serial err=%v parallel err=%v", label, serr, perr)
	}
	if serr != nil && serr.Error() != perr.Error() {
		t.Fatalf("%s: error text differs:\n  serial:   %v\n  parallel: %v", label, serr, perr)
	}
	if sr.Schedules != pr.Schedules {
		t.Fatalf("%s: schedules %d (serial) != %d (parallel)", label, sr.Schedules, pr.Schedules)
	}
	if !reflect.DeepEqual(sr.Counterexample, pr.Counterexample) {
		t.Fatalf("%s: counterexample %v (serial) != %v (parallel)", label, sr.Counterexample, pr.Counterexample)
	}
	se, pe := sr.CounterexampleErr, pr.CounterexampleErr
	if (se == nil) != (pe == nil) || (se != nil && se.Error() != pe.Error()) {
		t.Fatalf("%s: counterexample err %v (serial) != %v (parallel)", label, se, pe)
	}
}

// TestExploreParallelParityCleanTree: a full clean tree merges to the
// identical schedule count for every worker count.
func TestExploreParallelParityCleanTree(t *testing.T) {
	sr, serr := Explore(straightLineFactory, 12, 10_000)
	for _, w := range []int{2, 3, 4, 8} {
		pr, perr := ExploreParallel(straightLineFactory, 12, 10_000, w)
		assertSameExplore(t, fmt.Sprintf("clean/workers=%d", w), sr, serr, pr, perr)
	}
	if sr.Schedules != 20 {
		t.Fatalf("schedules = %d, want 20", sr.Schedules)
	}
}

// TestExploreParallelParityCounterexample: the lost-update race must
// yield the SAME first counterexample (in DFS order) and the same
// schedule count at which it was found, for every worker count — even
// though a later worker may find its own counterexample first on the
// wall clock.
func TestExploreParallelParityCounterexample(t *testing.T) {
	factory := exploreFactory(t, false)
	sr, serr := Explore(factory, 6, 10_000)
	if serr != nil || sr.Counterexample == nil {
		t.Fatalf("serial baseline: res=%+v err=%v", sr, serr)
	}
	for _, w := range []int{2, 3, 4, 8} {
		pr, perr := ExploreParallel(factory, 6, 10_000, w)
		assertSameExplore(t, fmt.Sprintf("cex/workers=%d", w), sr, serr, pr, perr)
	}
}

// TestExploreParallelParityBudget: budget exhaustion fires at the same
// point with the same error text regardless of worker count.
func TestExploreParallelParityBudget(t *testing.T) {
	for _, budget := range []int{1, 3, 7, 19, 20} {
		sr, serr := Explore(straightLineFactory, 12, budget)
		for _, w := range []int{2, 4} {
			pr, perr := ExploreParallel(straightLineFactory, 12, budget, w)
			assertSameExplore(t, fmt.Sprintf("budget=%d/workers=%d", budget, w), sr, serr, pr, perr)
		}
	}
}

// TestExploreParallelParityDepthZero: the degenerate one-schedule tree.
func TestExploreParallelParityDepthZero(t *testing.T) {
	sr, serr := Explore(straightLineFactory, 0, 100)
	pr, perr := ExploreParallel(straightLineFactory, 0, 100, 4)
	assertSameExplore(t, "depth0", sr, serr, pr, perr)
	if sr.Schedules != 1 {
		t.Fatalf("schedules = %d, want 1", sr.Schedules)
	}
}

// TestExploreParallelFactoryError: a failing factory surfaces the same
// error from the parallel path.
func TestExploreParallelFactoryError(t *testing.T) {
	boom := errors.New("factory boom")
	factory := func() (*World, error) { return nil, boom }
	_, serr := Explore(factory, 4, 100)
	_, perr := ExploreParallel(factory, 4, 100, 4)
	if !errors.Is(serr, boom) {
		t.Fatalf("serial err = %v", serr)
	}
	if !errors.Is(perr, boom) {
		t.Fatalf("parallel err = %v", perr)
	}
}

// TestExploreParallelWorkersOne: workers <= 1 is exactly the serial
// explorer (delegation, not reimplementation).
func TestExploreParallelWorkersOne(t *testing.T) {
	sr, serr := Explore(straightLineFactory, 12, 10_000)
	pr, perr := ExploreParallel(straightLineFactory, 12, 10_000, 1)
	assertSameExplore(t, "workers=1", sr, serr, pr, perr)
}
