package proc

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"uldma/internal/bus"
	"uldma/internal/cpu"
	"uldma/internal/phys"
	"uldma/internal/sim"
	"uldma/internal/vm"
)

const (
	pageSize = 8192
	ramPage  = phys.Addr(0x40000)
)

type fixture struct {
	r     *Runner
	clock *sim.Clock
	mem   *phys.Memory
}

func newFixture(t *testing.T, cfg RunnerConfig) *fixture {
	t.Helper()
	clock := sim.NewClock()
	mem := phys.New(1 << 20)
	b := bus.New(clock, 12_500_000, bus.CostConfig{StoreCycles: 6, LoadRequestCycles: 4, LoadReplyCycles: 4})
	wb := bus.NewWriteBuffer(b, 8, true)
	c := cpu.New(cpu.Config{Freq: 150 * sim.MHz, IssueCycles: 1, CacheHitCycles: 2, TLBEntries: 16}, clock, sim.NewEventQueue(), mem, b, wb)
	return &fixture{r: NewRunner(c, cfg), clock: clock, mem: mem}
}

func (f *fixture) space(t *testing.T, asid int, frame phys.Addr) *vm.AddressSpace {
	t.Helper()
	as := vm.NewAddressSpace(asid, pageSize)
	if err := as.Map(0x10000, frame, vm.Read|vm.Write); err != nil {
		t.Fatal(err)
	}
	return as
}

func TestSingleProcessRuns(t *testing.T) {
	f := newFixture(t, RunnerConfig{})
	as := f.space(t, 1, ramPage)
	var loaded uint64
	p := f.r.Spawn("solo", as, func(ctx *Context) error {
		if err := ctx.Store(0x10000, phys.Size64, 42); err != nil {
			return err
		}
		v, err := ctx.Load(0x10000, phys.Size64)
		loaded = v
		return err
	})
	if err := f.r.Run(NewRoundRobin(4), 1000); err != nil {
		t.Fatal(err)
	}
	if p.State() != Done || p.Err() != nil {
		t.Fatalf("state=%v err=%v", p.State(), p.Err())
	}
	if loaded != 42 {
		t.Fatalf("loaded = %d", loaded)
	}
	if p.Instructions() != 2 {
		t.Fatalf("instructions = %d", p.Instructions())
	}
	if p.Name() != "solo" || p.PID() != 1 || p.AddressSpace() != as {
		t.Fatal("process accessors wrong")
	}
}

func TestGuestErrorRecorded(t *testing.T) {
	f := newFixture(t, RunnerConfig{})
	boom := errors.New("boom")
	p := f.r.Spawn("bad", f.space(t, 1, ramPage), func(ctx *Context) error {
		ctx.Spin(1)
		return boom
	})
	if err := f.r.Run(NewRoundRobin(1), 100); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(p.Err(), boom) {
		t.Fatalf("Err() = %v", p.Err())
	}
}

func TestRoundRobinInterleaving(t *testing.T) {
	f := newFixture(t, RunnerConfig{})
	var order []string
	mk := func(name string) Body {
		return func(ctx *Context) error {
			for i := 0; i < 3; i++ {
				ctx.Spin(1)
				order = append(order, name)
			}
			return nil
		}
	}
	f.r.Spawn("A", f.space(t, 1, ramPage), mk("A"))
	f.r.Spawn("B", f.space(t, 2, ramPage+pageSize), mk("B"))
	if err := f.r.Run(NewRoundRobin(1), 100); err != nil {
		t.Fatal(err)
	}
	want := "A B A B A B"
	if got := strings.Join(order, " "); got != want {
		t.Fatalf("quantum-1 order = %q, want %q", got, want)
	}
}

func TestRoundRobinQuantum(t *testing.T) {
	f := newFixture(t, RunnerConfig{})
	var order []string
	mk := func(name string) Body {
		return func(ctx *Context) error {
			for i := 0; i < 4; i++ {
				ctx.Spin(1)
				order = append(order, name)
			}
			return nil
		}
	}
	f.r.Spawn("A", f.space(t, 1, ramPage), mk("A"))
	f.r.Spawn("B", f.space(t, 2, ramPage+pageSize), mk("B"))
	if err := f.r.Run(NewRoundRobin(2), 100); err != nil {
		t.Fatal(err)
	}
	want := "A A B B A A B B"
	if got := strings.Join(order, " "); got != want {
		t.Fatalf("quantum-2 order = %q, want %q", got, want)
	}
}

func TestScriptedSchedule(t *testing.T) {
	f := newFixture(t, RunnerConfig{})
	var order []string
	mk := func(name string, n int) Body {
		return func(ctx *Context) error {
			for i := 0; i < n; i++ {
				ctx.Spin(1)
				order = append(order, name)
			}
			return nil
		}
	}
	a := f.r.Spawn("A", f.space(t, 1, ramPage), mk("A", 3))
	b := f.r.Spawn("B", f.space(t, 2, ramPage+pageSize), mk("B", 2))
	script := NewScripted(a.PID(), b.PID(), b.PID(), a.PID(), a.PID())
	if err := f.r.Run(script, 100); err != nil {
		t.Fatal(err)
	}
	want := "A B B A A"
	if got := strings.Join(order, " "); got != want {
		t.Fatalf("scripted order = %q, want %q", got, want)
	}
	if !script.Exhausted() {
		t.Fatal("script not exhausted")
	}
}

func TestScriptedFallbackAfterExhaustion(t *testing.T) {
	f := newFixture(t, RunnerConfig{})
	n := 0
	f.r.Spawn("A", f.space(t, 1, ramPage), func(ctx *Context) error {
		for i := 0; i < 5; i++ {
			ctx.Spin(1)
			n++
		}
		return nil
	})
	// Script shorter than the program: remaining slots fall back.
	if err := f.r.Run(NewScripted(1, 1), 100); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("process ran %d/5 steps", n)
	}
}

func TestScriptedSkipsFinished(t *testing.T) {
	f := newFixture(t, RunnerConfig{})
	a := f.r.Spawn("A", f.space(t, 1, ramPage), func(ctx *Context) error {
		ctx.Spin(1)
		return nil
	})
	ran := false
	b := f.r.Spawn("B", f.space(t, 2, ramPage+pageSize), func(ctx *Context) error {
		ctx.Spin(1)
		ran = true
		return nil
	})
	// A finishes after 2 slots (1 instr + completion grant); later A
	// entries must be skipped, B still runs.
	if err := f.r.Run(NewScripted(a.PID(), a.PID(), a.PID(), a.PID(), b.PID()), 100); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("B never ran")
	}
}

func TestRandomPolicyDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) string {
		f := newFixture(t, RunnerConfig{})
		var order []string
		mk := func(name string) Body {
			return func(ctx *Context) error {
				for i := 0; i < 5; i++ {
					ctx.Spin(1)
					order = append(order, name)
				}
				return nil
			}
		}
		f.r.Spawn("A", f.space(t, 1, ramPage), mk("A"))
		f.r.Spawn("B", f.space(t, 2, ramPage+pageSize), mk("B"))
		if err := f.r.Run(NewRandom(seed), 1000); err != nil {
			t.Fatal(err)
		}
		return strings.Join(order, "")
	}
	if run(7) != run(7) {
		t.Fatal("same seed produced different schedules")
	}
	if run(7) == run(8) && run(9) == run(7) {
		t.Fatal("different seeds all produced identical schedules")
	}
}

func TestContextSwitchCostAndHooks(t *testing.T) {
	f := newFixture(t, RunnerConfig{SwitchCycles: 600})
	var hookLog []string
	f.r.AddSwitchHook(func(from, to *Process) {
		fromName := "<none>"
		if from != nil {
			fromName = from.Name()
		}
		hookLog = append(hookLog, fromName+"->"+to.Name())
	})
	mk := func() Body {
		return func(ctx *Context) error {
			ctx.Spin(1)
			ctx.Spin(1)
			return nil
		}
	}
	f.r.Spawn("A", f.space(t, 1, ramPage), mk())
	f.r.Spawn("B", f.space(t, 2, ramPage+pageSize), mk())
	if err := f.r.Run(NewRoundRobin(1), 100); err != nil {
		t.Fatal(err)
	}
	s := f.r.Stats()
	if s.Switches == 0 || s.SwitchTime == 0 {
		t.Fatalf("stats = %+v", s)
	}
	if len(hookLog) != int(s.Switches) {
		t.Fatalf("hook ran %d times for %d switches", len(hookLog), s.Switches)
	}
	if hookLog[0] != "<none>->A" || hookLog[1] != "A->B" {
		t.Fatalf("hook log = %v", hookLog)
	}
}

func TestTLBFlushOnSwitchOption(t *testing.T) {
	f := newFixture(t, RunnerConfig{FlushTLBOnSwitch: true})
	as := f.space(t, 1, ramPage)
	f.r.Spawn("A", as, func(ctx *Context) error {
		ctx.Load(0x10000, phys.Size64)
		ctx.Load(0x10000, phys.Size64)
		return nil
	})
	f.r.Spawn("B", f.space(t, 2, ramPage+pageSize), func(ctx *Context) error {
		ctx.Load(0x10000, phys.Size64)
		ctx.Load(0x10000, phys.Size64)
		return nil
	})
	if err := f.r.Run(NewRoundRobin(1), 100); err != nil {
		t.Fatal(err)
	}
	// Alternating single-instruction quanta with flushes: every load
	// misses.
	if misses := f.r.CPU().TLB().Stats().Misses; misses != 4 {
		t.Fatalf("TLB misses = %d, want 4 (flush per switch)", misses)
	}
}

func TestSyscallRunsUninterrupted(t *testing.T) {
	f := newFixture(t, RunnerConfig{})
	handler := &recordingSyscalls{cpu: f.r.CPU()}
	f.r.SetSyscallHandler(handler)
	var observed []string
	f.r.Spawn("A", f.space(t, 1, ramPage), func(ctx *Context) error {
		v, err := ctx.Syscall(7, 10, 20)
		if err != nil {
			return err
		}
		observed = append(observed, fmt.Sprintf("A:ret=%d", v))
		return nil
	})
	f.r.Spawn("B", f.space(t, 2, ramPage+pageSize), func(ctx *Context) error {
		ctx.Spin(1)
		observed = append(observed, "B")
		return nil
	})
	// Quantum 1 would interleave B between any two preemptible points of
	// A — but the syscall is one slot, so the handler's internal steps
	// never interleave with B.
	if err := f.r.Run(NewRoundRobin(1), 100); err != nil {
		t.Fatal(err)
	}
	if handler.sawMode != cpu.Kernel {
		t.Fatalf("handler ran in %v mode", handler.sawMode)
	}
	if f.r.CPU().Mode() != cpu.User {
		t.Fatal("mode not restored after syscall")
	}
	if handler.num != 7 || len(handler.args) != 2 || handler.args[0] != 10 {
		t.Fatalf("handler saw num=%d args=%v", handler.num, handler.args)
	}
	if len(observed) != 2 || observed[0] != "A:ret=30" {
		t.Fatalf("observed = %v", observed)
	}
}

type recordingSyscalls struct {
	cpu     *cpu.CPU
	num     int
	args    []uint64
	sawMode cpu.Mode
}

func (h *recordingSyscalls) Syscall(p *Process, num int, args []uint64) (uint64, error) {
	h.num, h.args = num, args
	h.sawMode = h.cpu.Mode()
	h.cpu.Spin(100) // kernel work happens inside the slot
	sum := uint64(0)
	for _, a := range args {
		sum += a
	}
	return sum, nil
}

func TestSyscallWithoutHandler(t *testing.T) {
	f := newFixture(t, RunnerConfig{})
	var got error
	f.r.Spawn("A", f.space(t, 1, ramPage), func(ctx *Context) error {
		_, got = ctx.Syscall(1)
		return nil
	})
	if err := f.r.Run(NewRoundRobin(1), 100); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("syscall without handler succeeded")
	}
}

func TestPALCall(t *testing.T) {
	f := newFixture(t, RunnerConfig{PALCallCycles: 30})
	f.r.InstallPAL("user_level_dma", func(p *Process, args []uint64) (uint64, error) {
		if f.r.CPU().Mode() != cpu.PAL {
			return 0, errors.New("not in PAL mode")
		}
		return args[0] * 2, nil
	})
	var ret uint64
	var err error
	f.r.Spawn("A", f.space(t, 1, ramPage), func(ctx *Context) error {
		ret, err = ctx.PALCall("user_level_dma", 21)
		return err
	})
	start := f.clock.Now()
	if e := f.r.Run(NewRoundRobin(1), 100); e != nil {
		t.Fatal(e)
	}
	if err != nil || ret != 42 {
		t.Fatalf("PAL ret=%d err=%v", ret, err)
	}
	if f.r.CPU().Mode() != cpu.User {
		t.Fatal("mode not restored after PAL call")
	}
	if f.clock.Now()-start < (150 * sim.MHz).Cycles(30) {
		t.Fatal("PAL dispatch overhead not charged")
	}
}

func TestPALCallUnknown(t *testing.T) {
	f := newFixture(t, RunnerConfig{})
	var got error
	f.r.Spawn("A", f.space(t, 1, ramPage), func(ctx *Context) error {
		_, got = ctx.PALCall("nope")
		return nil
	})
	if err := f.r.Run(NewRoundRobin(1), 100); err != nil {
		t.Fatal(err)
	}
	if got == nil || !strings.Contains(got.Error(), "not installed") {
		t.Fatalf("unknown PAL call: %v", got)
	}
}

func TestSlotBudgetAndShutdown(t *testing.T) {
	f := newFixture(t, RunnerConfig{})
	f.r.Spawn("loop", f.space(t, 1, ramPage), func(ctx *Context) error {
		for {
			ctx.Spin(1)
		}
	})
	err := f.r.Run(NewRoundRobin(1), 50)
	if !errors.Is(err, ErrSlotBudget) {
		t.Fatalf("err = %v, want slot budget", err)
	}
	f.r.Shutdown() // must not hang; guest goroutine unwinds
	if f.r.Processes()[0].State() != Done {
		t.Fatal("shutdown did not mark process done")
	}
}

func TestStepDrivesSingleSlots(t *testing.T) {
	f := newFixture(t, RunnerConfig{})
	var order []string
	mk := func(name string) Body {
		return func(ctx *Context) error {
			ctx.Spin(1)
			order = append(order, name+"1")
			ctx.Spin(1)
			order = append(order, name+"2")
			return nil
		}
	}
	a := f.r.Spawn("A", f.space(t, 1, ramPage), mk("A"))
	b := f.r.Spawn("B", f.space(t, 2, ramPage+pageSize), mk("B"))
	f.r.Step(a)
	f.r.Step(b)
	f.r.Step(b)
	f.r.Step(a)
	want := "A1 B1 B2 A2"
	if got := strings.Join(order, " "); got != want {
		t.Fatalf("stepped order = %q, want %q", got, want)
	}
	// Finish both (completion grants).
	f.r.Step(a)
	f.r.Step(b)
	if a.State() != Done || b.State() != Done {
		t.Fatal("processes not done after completion grants")
	}
}

func TestStepDonePanics(t *testing.T) {
	f := newFixture(t, RunnerConfig{})
	a := f.r.Spawn("A", f.space(t, 1, ramPage), func(ctx *Context) error { return nil })
	f.r.Step(a) // preamble token (instruction-free body)
	f.r.Step(a) // completion grant
	defer func() {
		if recover() == nil {
			t.Fatal("Step on done process did not panic")
		}
	}()
	f.r.Step(a)
}

// blockingSyscalls blocks the caller for a fixed duration on syscall 0.
type blockingSyscalls struct {
	c   *cpu.CPU
	dur sim.Time
}

func (h *blockingSyscalls) Syscall(p *Process, num int, args []uint64) (uint64, error) {
	p.BlockUntil(h.c.Clock().Now() + h.dur)
	return 0, nil
}

// TestBlockingFreesCPU: while one process sleeps in a syscall, the
// other runs; the sleeper resumes after its wakeup time with the CPU
// time billed to the process that actually ran.
func TestBlockingFreesCPU(t *testing.T) {
	f := newFixture(t, RunnerConfig{})
	f.r.SetSyscallHandler(&blockingSyscalls{c: f.r.CPU(), dur: 100 * sim.Microsecond})
	var wokeAt, workerDone sim.Time
	sleeper := f.r.Spawn("sleeper", f.space(t, 1, ramPage), func(ctx *Context) error {
		if _, err := ctx.Syscall(0); err != nil {
			return err
		}
		wokeAt = f.clock.Now()
		return nil
	})
	worker := f.r.Spawn("worker", f.space(t, 2, ramPage+pageSize), func(ctx *Context) error {
		for i := 0; i < 20; i++ {
			ctx.Spin(100)
		}
		workerDone = f.clock.Now()
		return nil
	})
	if err := f.r.Run(NewRoundRobin(1), 10_000); err != nil {
		t.Fatal(err)
	}
	if sleeper.Err() != nil || worker.Err() != nil {
		t.Fatalf("sleeper=%v worker=%v", sleeper.Err(), worker.Err())
	}
	if wokeAt < 100*sim.Microsecond {
		t.Fatalf("sleeper woke at %v, before its wakeup time", wokeAt)
	}
	// The worker's 2000 cycles (~13µs) fit entirely inside the sleep.
	if workerDone >= wokeAt {
		t.Fatalf("worker finished at %v, after the sleeper woke (%v) — CPU not freed", workerDone, wokeAt)
	}
	if worker.CPUTime() == 0 {
		t.Fatal("worker billed no CPU time")
	}
}

// TestAllBlockedAdvancesIdleTime: with every process asleep, the
// scheduler advances the clock to the wakeup instead of deadlocking.
func TestAllBlockedAdvancesIdleTime(t *testing.T) {
	f := newFixture(t, RunnerConfig{})
	f.r.SetSyscallHandler(&blockingSyscalls{c: f.r.CPU(), dur: 250 * sim.Microsecond})
	p := f.r.Spawn("solo", f.space(t, 1, ramPage), func(ctx *Context) error {
		_, err := ctx.Syscall(0)
		return err
	})
	if err := f.r.Run(NewRoundRobin(1), 1000); err != nil {
		t.Fatal(err)
	}
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
	if f.clock.Now() < 250*sim.Microsecond {
		t.Fatalf("clock at %v; idle advance missing", f.clock.Now())
	}
}

// TestEventsFireDuringIdleAdvance: due events run while the scheduler
// idles toward a wakeup.
func TestEventsFireDuringIdleAdvance(t *testing.T) {
	f := newFixture(t, RunnerConfig{})
	f.r.SetSyscallHandler(&blockingSyscalls{c: f.r.CPU(), dur: 300 * sim.Microsecond})
	fired := false
	f.r.CPU().Events().Schedule(150*sim.Microsecond, func(sim.Time) { fired = true })
	f.r.Spawn("solo", f.space(t, 1, ramPage), func(ctx *Context) error {
		_, err := ctx.Syscall(0)
		return err
	})
	if err := f.r.Run(NewRoundRobin(1), 1000); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event due during idle advance never fired")
	}
}

// TestEventBlockAndWake: a process blocked with sim.Never wakes when an
// event calls Wake — the interrupt-driven path.
func TestEventBlockAndWake(t *testing.T) {
	f := newFixture(t, RunnerConfig{})
	handler := &neverBlockSyscalls{}
	f.r.SetSyscallHandler(handler)
	var wokeAt sim.Time
	p := f.r.Spawn("waiter", f.space(t, 1, ramPage), func(ctx *Context) error {
		if _, err := ctx.Syscall(0); err != nil {
			return err
		}
		wokeAt = f.clock.Now()
		return nil
	})
	// The "device interrupt": an event at 80µs wakes the process with a
	// 5µs dispatch overhead.
	f.r.CPU().Events().Schedule(80*sim.Microsecond, func(now sim.Time) {
		p.Wake(now + 5*sim.Microsecond)
	})
	if err := f.r.Run(NewRoundRobin(1), 1000); err != nil {
		t.Fatal(err)
	}
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
	if wokeAt < 85*sim.Microsecond {
		t.Fatalf("woke at %v, want >= 85µs", wokeAt)
	}
	// Waking an unblocked process is a no-op.
	p2 := f.r.Spawn("done-soon", f.space(t, 2, ramPage+pageSize), func(ctx *Context) error {
		ctx.Spin(1)
		return nil
	})
	if err := f.r.Run(NewRoundRobin(1), 100); err != nil {
		t.Fatal(err)
	}
	p2.Wake(0)
}

type neverBlockSyscalls struct{}

func (neverBlockSyscalls) Syscall(p *Process, num int, args []uint64) (uint64, error) {
	p.BlockUntil(sim.Never)
	return 0, nil
}

// TestDeadlockDetected: everyone blocked forever, nothing pending — the
// scheduler reports ErrDeadlock instead of hanging.
func TestDeadlockDetected(t *testing.T) {
	f := newFixture(t, RunnerConfig{})
	f.r.SetSyscallHandler(&neverBlockSyscalls{})
	f.r.Spawn("stuck", f.space(t, 1, ramPage), func(ctx *Context) error {
		_, err := ctx.Syscall(0)
		return err
	})
	err := f.r.Run(NewRoundRobin(1), 1000)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock", err)
	}
	f.r.Shutdown()
}

// TestStepBlockedPanics: manual stepping refuses blocked processes.
func TestStepBlockedPanics(t *testing.T) {
	f := newFixture(t, RunnerConfig{})
	f.r.SetSyscallHandler(&blockingSyscalls{c: f.r.CPU(), dur: sim.Millisecond})
	p := f.r.Spawn("solo", f.space(t, 1, ramPage), func(ctx *Context) error {
		_, err := ctx.Syscall(0)
		return err
	})
	f.r.Step(p) // the syscall slot: handler blocks the process
	defer func() {
		if recover() == nil {
			t.Fatal("Step on blocked process did not panic")
		}
		f.r.Shutdown()
	}()
	f.r.Step(p)
}

func TestCPUTimeAccounting(t *testing.T) {
	f := newFixture(t, RunnerConfig{SwitchCycles: 600})
	heavy := f.r.Spawn("heavy", f.space(t, 1, ramPage), func(ctx *Context) error {
		for i := 0; i < 10; i++ {
			ctx.Spin(1000)
		}
		return nil
	})
	light := f.r.Spawn("light", f.space(t, 2, ramPage+pageSize), func(ctx *Context) error {
		ctx.Spin(10)
		return nil
	})
	if err := f.r.Run(NewRoundRobin(2), 1000); err != nil {
		t.Fatal(err)
	}
	if heavy.CPUTime() <= light.CPUTime() {
		t.Fatalf("heavy %v <= light %v", heavy.CPUTime(), light.CPUTime())
	}
	// Total per-process time is bounded by wall time (switch costs are
	// not billed to processes).
	if heavy.CPUTime()+light.CPUTime() > f.clock.Now() {
		t.Fatalf("billed %v+%v exceeds wall %v",
			heavy.CPUTime(), light.CPUTime(), f.clock.Now())
	}
	if heavy.CPUTime() < (150 * sim.MHz).Cycles(10_000) {
		t.Fatalf("heavy billed only %v", heavy.CPUTime())
	}
}

func TestExitHookRuns(t *testing.T) {
	f := newFixture(t, RunnerConfig{})
	var exited []string
	f.r.AddExitHook(func(p *Process) { exited = append(exited, p.Name()) })
	f.r.Spawn("a", f.space(t, 1, ramPage), func(ctx *Context) error {
		ctx.Spin(1)
		return nil
	})
	f.r.Spawn("b", f.space(t, 2, ramPage+pageSize), func(ctx *Context) error {
		ctx.Spin(1)
		ctx.Spin(1)
		return nil
	})
	if err := f.r.Run(NewRoundRobin(1), 100); err != nil {
		t.Fatal(err)
	}
	if len(exited) != 2 || exited[0] != "a" || exited[1] != "b" {
		t.Fatalf("exit hooks ran as %v", exited)
	}
}

func TestFaultingGuestSurfacesError(t *testing.T) {
	f := newFixture(t, RunnerConfig{})
	p := f.r.Spawn("A", f.space(t, 1, ramPage), func(ctx *Context) error {
		_, err := ctx.Load(0xdead0000, phys.Size64) // unmapped
		return err
	})
	if err := f.r.Run(NewRoundRobin(1), 100); err != nil {
		t.Fatal(err)
	}
	var fault *vm.Fault
	if !errors.As(p.Err(), &fault) {
		t.Fatalf("process error = %v", p.Err())
	}
}
