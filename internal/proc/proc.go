// Package proc models preemptive multiprogramming — the source of every
// race the paper is about — as deterministic coroutines.
//
// Guest code is ordinary Go (a Body function) issuing simulated
// instructions through a Context. Every instruction boundary is a
// scheduling decision: the Runner grants one instruction slot at a time,
// and a pluggable Policy decides which process gets it. Because exactly
// one goroutine ever runs between grant and report, execution is fully
// deterministic; a recorded schedule replays bit-for-bit.
//
// Three policies cover the experiments:
//
//   - RoundRobin: a quantum scheduler, for throughput-style runs;
//   - Random: seeded random preemption, for the property tests that
//     hunt for argument-mixing interleavings;
//   - Scripted: an explicit PID-per-slot schedule, used to force the
//     exact adversarial interleavings of Figures 5, 6 and 8.
//
// Syscalls and PAL calls occupy a single slot and run to completion
// inside it — that is precisely the "executes uninterrupted" property
// the kernel path and the PAL-code scheme (§2.7) rely on.
package proc

import (
	"errors"
	"fmt"

	"uldma/internal/cpu"
	"uldma/internal/obs"
	"uldma/internal/phys"
	"uldma/internal/sim"
	"uldma/internal/vm"
)

// PID identifies a process.
type PID int

// State is a process lifecycle state.
type State uint8

// Process states.
const (
	Ready State = iota
	Done
)

// Body is the guest program: it runs as a coroutine and issues
// simulated instructions through ctx. Returning ends the process; a
// returned error is recorded as the process's exit status.
type Body func(ctx *Context) error

// Process is one simulated process.
type Process struct {
	pid   PID
	name  string
	as    *vm.AddressSpace
	body  Body
	state State
	err   error

	slot    chan bool // scheduler -> process: true = run one slot, false = die
	holding bool      // guest holds the token between an op and its next boundary
	fresh   bool      // token granted but no instruction consumed yet (preamble)
	instrs  uint64
	cpuTime sim.Time // simulated time consumed in this process's slots

	// blockedUntil deschedules the process until the given simulated
	// time (kernel sleep on an event, e.g. a DMA-completion interrupt).
	blockedUntil sim.Time
}

// BlockUntil marks the process not-runnable until simulated time t.
// Kernel code calls it from inside a syscall (the classic "sleep until
// the device interrupt"); the scheduler skips the process and advances
// idle time if nothing else is runnable. Pass sim.Never to sleep until
// an explicit Wake (event-based blocking); the scheduler then relies on
// pending events to make progress.
func (p *Process) BlockUntil(t sim.Time) { p.blockedUntil = t }

// Wake clears an event-based block no earlier than time t (the caller —
// an interrupt-delivery path — includes its dispatch overhead in t).
// Waking an unblocked process is a no-op.
func (p *Process) Wake(t sim.Time) {
	if p.blockedUntil > t {
		p.blockedUntil = t
	}
}

// BlockedUntil returns the wakeup time (zero when runnable).
func (p *Process) BlockedUntil() sim.Time { return p.blockedUntil }

// PID returns the process id.
func (p *Process) PID() PID { return p.pid }

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// AddressSpace returns the process's page table.
func (p *Process) AddressSpace() *vm.AddressSpace { return p.as }

// State returns the lifecycle state.
func (p *Process) State() State { return p.state }

// Err returns the exit status (nil if still running or exited cleanly).
func (p *Process) Err() error { return p.err }

// Instructions returns how many instruction slots the process consumed.
func (p *Process) Instructions() uint64 { return p.instrs }

// CPUTime returns the simulated time consumed while this process held
// the CPU (scheduler accounting; context-switch costs are not billed to
// either side).
func (p *Process) CPUTime() sim.Time { return p.cpuTime }

// SwitchHook is called on every context switch. The SHRIMP-2 and FLASH
// comparators are implemented as hooks — they are exactly the kernel
// modifications the paper's own methods avoid needing.
type SwitchHook func(from, to *Process)

// SyscallHandler dispatches a trap. It runs in kernel mode within the
// calling process's slot, uninterrupted.
type SyscallHandler interface {
	Syscall(p *Process, num int, args []uint64) (uint64, error)
}

// PALFunc is an installed PAL routine: it executes uninterrupted in PAL
// mode within the caller's slot (§2.7). Only the kernel (super-user)
// installs PAL functions; any process may then invoke them.
type PALFunc func(p *Process, args []uint64) (uint64, error)

// report is what a process sends back after consuming a slot.
type report struct {
	p        *Process
	finished bool
	err      error
}

// Stats counts scheduler activity. It is a read-only view assembled
// from the obs counter cells on demand (the thin compatibility
// accessor over the unified metrics plane).
type Stats struct {
	Slots      uint64 // instruction slots granted
	Switches   uint64 // context switches performed
	SwitchTime sim.Time
}

// counters is the live metric storage: typed obs cells, registered
// with the machine's registry at construction and captured by value in
// snapshots so scheduler accounting rewinds with the world.
type counters struct {
	slots      obs.Counter
	switches   obs.Counter
	switchTime obs.Gauge // simulated picoseconds spent switching
}

// Runner owns the processes of one machine and schedules them onto its
// CPU.
type Runner struct {
	cpu         *cpu.CPU
	switchCost  int64 // CPU cycles per context switch
	palCost     int64 // CPU cycles of CALL_PAL dispatch overhead
	flushOnSwch bool  // flush TLB at switch (non-ASN configurations)

	hooks     []SwitchHook
	exitHooks []ExitHook
	syscalls  SyscallHandler
	pal       map[string]PALFunc

	procs   []*Process
	nextPID PID
	current *Process
	reports chan report
	ctr     counters
	scratch []*Process // reused by runnable(); policies must not retain it

	// tr is the obs trace spine (nil = tracing disabled, the zero-cost
	// fast path); node is the cluster node id stamped on events.
	tr   *obs.Trace
	node int32
}

// RunnerConfig sets scheduling costs.
type RunnerConfig struct {
	// SwitchCycles is the CPU cost of a context switch (register save/
	// restore, scheduler work). The Alpha preset uses ~600 cycles.
	SwitchCycles int64
	// PALCallCycles is the CALL_PAL entry/exit overhead.
	PALCallCycles int64
	// FlushTLBOnSwitch models hardware without address-space numbers.
	FlushTLBOnSwitch bool
}

// NewRunner creates an empty runner on c.
func NewRunner(c *cpu.CPU, cfg RunnerConfig) *Runner {
	return &Runner{
		cpu:         c,
		switchCost:  cfg.SwitchCycles,
		palCost:     cfg.PALCallCycles,
		flushOnSwch: cfg.FlushTLBOnSwitch,
		pal:         make(map[string]PALFunc),
		reports:     make(chan report),
		nextPID:     1,
	}
}

// CPU returns the processor the runner schedules onto.
func (r *Runner) CPU() *cpu.CPU { return r.cpu }

// Stats returns a snapshot of the counters.
func (r *Runner) Stats() Stats {
	return Stats{
		Slots:      r.ctr.slots.Value(),
		Switches:   r.ctr.switches.Value(),
		SwitchTime: sim.Time(r.ctr.switchTime.Value()),
	}
}

// RegisterMetrics publishes the scheduler's counters in a registry.
func (r *Runner) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterCounter("proc.slots", &r.ctr.slots)
	reg.RegisterCounter("proc.switches", &r.ctr.switches)
	reg.RegisterGauge("proc.switch_time_ps", &r.ctr.switchTime)
}

// SetTracer attaches (or, with nil, detaches) the obs trace spine.
// Context switches are emitted as CatSched instants stamped with node.
func (r *Runner) SetTracer(t *obs.Trace, node int32) {
	r.tr = t
	r.node = node
}

// AddSwitchHook appends a context-switch hook. In this model, adding a
// hook IS "modifying the operating system kernel" — the paper's methods
// never call this.
func (r *Runner) AddSwitchHook(h SwitchHook) { r.hooks = append(r.hooks, h) }

// ExitHook runs when a process finishes — ordinary process-teardown
// kernel work (resource reclamation), NOT a context-switch-path change.
type ExitHook func(p *Process)

// AddExitHook appends a process-exit hook.
func (r *Runner) AddExitHook(h ExitHook) { r.exitHooks = append(r.exitHooks, h) }

// SetSyscallHandler installs the kernel's trap dispatcher.
func (r *Runner) SetSyscallHandler(h SyscallHandler) { r.syscalls = h }

// InstallPAL registers a PAL routine under name. Conceptually a
// super-user operation performed once at boot.
func (r *Runner) InstallPAL(name string, fn PALFunc) { r.pal[name] = fn }

// Current returns the running process (nil before the first slot).
func (r *Runner) Current() *Process { return r.current }

// Processes returns all spawned processes.
func (r *Runner) Processes() []*Process { return r.procs }

// Spawn creates a process executing body in address space as. The
// coroutine starts immediately but blocks until its first slot.
func (r *Runner) Spawn(name string, as *vm.AddressSpace, body Body) *Process {
	p := &Process{
		pid:  r.nextPID,
		name: name,
		as:   as,
		body: body,
		slot: make(chan bool),
	}
	r.nextPID++
	r.procs = append(r.procs, p)
	go func() {
		defer func() {
			if e := recover(); e != nil {
				if _, ok := e.(killed); ok {
					return // Shutdown tore us down; no report expected
				}
				panic(e)
			}
		}()
		// Even the body's preamble (Go code before its first simulated
		// instruction) must not run concurrently with the scheduler or
		// with machine setup, so the goroutine blocks for its first
		// token before calling body at all. The first instruction then
		// consumes this same token (p.fresh), keeping slot accounting
		// one-grant-per-instruction.
		if !<-p.slot {
			return
		}
		p.holding, p.fresh = true, true
		ctx := &Context{p: p, r: r}
		err := body(ctx)
		// Release the slot of the last instruction (the body kept the
		// token while running its trailing Go code), then wait for one
		// more grant to report completion, so the scheduler is always
		// the one consuming our reports.
		if p.holding {
			p.holding = false
			r.reports <- report{p: p}
		}
		if !<-p.slot {
			return
		}
		r.reports <- report{p: p, finished: true, err: err}
	}()
	return p
}

// killed is the panic payload used to unwind guest goroutines at
// Shutdown.
type killed struct{}

// ErrSlotBudget is returned by Run when the slot budget is exhausted
// before every process finished — usually a guest livelock.
var ErrSlotBudget = errors.New("proc: slot budget exhausted before all processes finished")

// ErrDeadlock is returned by Run when every live process is blocked
// forever (event-based blocks) and no event is pending to wake any of
// them — a guest or kernel bug.
var ErrDeadlock = errors.New("proc: deadlock — all processes blocked forever with no pending events")

// Run schedules until every process is Done or maxSlots instruction
// slots have been granted (a safety net against guest livelock; pass a
// generous number). It returns ErrSlotBudget if the budget ran out.
// When every live process is blocked, the scheduler advances idle time
// to the earliest wakeup (firing due events along the way), like an
// idle loop waiting for the next interrupt.
func (r *Runner) Run(policy Policy, maxSlots uint64) error {
	for granted := uint64(0); ; {
		runnable := r.runnable()
		if len(runnable) == 0 {
			progressed, err := r.advanceIdle()
			if err != nil {
				return err
			}
			if !progressed {
				return nil
			}
			continue
		}
		if granted >= maxSlots {
			return fmt.Errorf("%w (%d slots, %d processes unfinished)",
				ErrSlotBudget, maxSlots, len(runnable))
		}
		granted++
		p := policy.Next(runnable, r.current)
		if p == nil || p.state == Done {
			p = runnable[0]
		}
		r.dispatch(p)
	}
}

// advanceIdle moves the clock toward the next thing that can make a
// blocked process runnable: the earliest timed wakeup or the next
// pending event (whose effect may Wake an event-blocked process). It
// reports false when nothing is blocked (everything is Done), and
// ErrDeadlock when processes are blocked forever with no event pending.
func (r *Runner) advanceIdle() (bool, error) {
	wake, ok := r.EarliestWakeup()
	if !ok {
		return false, nil
	}
	clock := r.cpu.Clock()
	ev := r.cpu.Events()
	next := wake
	if ev != nil && ev.NextAt() < next {
		next = ev.NextAt()
	}
	if next == sim.Never {
		return false, ErrDeadlock
	}
	clock.AdvanceTo(next)
	if ev != nil {
		ev.RunUntil(clock.Now())
	}
	return true, nil
}

// EarliestWakeup returns the soonest wakeup time among blocked live
// processes (ok is false when none are blocked). Cluster schedulers use
// it to advance a shared clock when every node idles.
func (r *Runner) EarliestWakeup() (sim.Time, bool) {
	now := r.cpu.Clock().Now()
	earliest := sim.Never
	found := false
	for _, p := range r.procs {
		if p.state != Done && p.blockedUntil > now {
			if p.blockedUntil < earliest {
				earliest = p.blockedUntil
			}
			found = true
		}
	}
	return earliest, found
}

// StepPolicy grants one slot to whichever process the policy picks.
// It reports false (and does nothing) when no process is runnable.
// Cluster schedulers use it to interleave several machines' runners on
// a shared clock.
func (r *Runner) StepPolicy(policy Policy) bool {
	runnable := r.runnable()
	if len(runnable) == 0 {
		return false
	}
	p := policy.Next(runnable, r.current)
	if p == nil || p.state == Done {
		p = runnable[0]
	}
	r.dispatch(p)
	return true
}

// Step grants exactly one slot to process p (which must not be Done or
// blocked). Attack harnesses use it to drive hand-built interleavings.
func (r *Runner) Step(p *Process) {
	if p.state == Done {
		panic(fmt.Sprintf("proc: Step(%s): process already done", p.name))
	}
	if p.blockedUntil > r.cpu.Clock().Now() {
		panic(fmt.Sprintf("proc: Step(%s): process blocked until %v", p.name, p.blockedUntil))
	}
	r.dispatch(p)
}

func (r *Runner) dispatch(p *Process) {
	if r.current != p {
		r.contextSwitch(r.current, p)
	}
	r.ctr.slots.Inc()
	before := r.cpu.Clock().Now()
	p.slot <- true
	rep := <-r.reports
	rep.p.cpuTime += r.cpu.Clock().Now() - before
	if rep.finished {
		rep.p.state = Done
		rep.p.err = rep.err
		for _, h := range r.exitHooks {
			h(rep.p)
		}
	}
}

// runnable returns the currently dispatchable processes. The returned
// slice is the runner's reusable scratch buffer — valid only until the
// next runnable() call (this is the scheduler's per-slot hot path; a
// fresh slice per slot dominated the cluster loop's allocations).
func (r *Runner) runnable() []*Process {
	now := r.cpu.Clock().Now()
	out := r.scratch[:0]
	for _, p := range r.procs {
		if p.state != Done && p.blockedUntil <= now {
			out = append(out, p)
		}
	}
	r.scratch = out
	return out
}

// contextSwitch charges the switch cost and runs the hook chain. The
// write buffer drains first: real kernel entry paths are full of
// barriers, so posted user stores always reach their device before any
// switch hook (SHRIMP-2's abort would otherwise miss a half-initiation
// still sitting in the buffer).
func (r *Runner) contextSwitch(from, to *Process) {
	r.ctr.switches.Inc()
	before := r.cpu.Clock().Now()
	if err := r.cpu.WriteBuffer().Drain(); err != nil {
		// A store that faults at drain time would machine-check; in the
		// model we surface it by panicking, since it means a test wired
		// an unmappable address.
		panic(fmt.Sprintf("proc: write-buffer drain at context switch: %v", err))
	}
	r.cpu.Spin(r.switchCost)
	if r.flushOnSwch {
		r.cpu.TLB().Flush()
	}
	for _, h := range r.hooks {
		h(from, to)
	}
	r.ctr.switchTime.Add(int64(r.cpu.Clock().Now() - before))
	if r.tr != nil {
		fromPID, toPID := PID(0), to.pid
		if from != nil {
			fromPID = from.pid
		}
		r.tr.Instant(r.cpu.Clock().Now(), obs.CatSched, "ctxswitch", r.node, int32(toPID),
			uint64(fromPID), uint64(toPID), 0)
	}
	r.current = to
}

// Shutdown tears down any still-blocked guest goroutines. Call it when
// abandoning a run (e.g. after ErrSlotBudget); it is a no-op for
// processes that finished.
func (r *Runner) Shutdown() {
	for _, p := range r.procs {
		if p.state != Done {
			p.state = Done
			p.slot <- false
		}
	}
}

// --- guest-visible context ---

// Context is the handle guest code uses to execute instructions. It
// implements isa.Executor. Every method is one instruction slot (one
// preemption point); Syscall and PALCall run their entire privileged
// body inside that single slot.
//
// Token discipline: a process acquires the token at the start of an
// instruction and keeps it until it reaches its NEXT instruction
// boundary (or its body returns). The Go code a guest runs between two
// instructions therefore executes while the scheduler is still blocked,
// so guest logic, scheduler, and other guests are strictly serialized —
// the simulation is deterministic and race-free by construction.
type Context struct {
	p *Process
	r *Runner
}

// Process returns the process this context belongs to.
func (c *Context) Process() *Process { return c.p }

// begin acquires the token for one instruction: a freshly granted token
// (covering the body's preamble) is consumed directly; otherwise the
// previous slot is released and the next grant awaited. Panics with
// killed on shutdown.
func (c *Context) begin() {
	if c.p.holding && c.p.fresh {
		c.p.fresh = false
		c.p.instrs++
		return
	}
	if c.p.holding {
		c.p.holding = false
		c.r.reports <- report{p: c.p}
	}
	if !<-c.p.slot {
		panic(killed{})
	}
	c.p.holding = true
	c.p.instrs++
}

// Load issues a user-mode load.
func (c *Context) Load(va vm.VAddr, size phys.AccessSize) (uint64, error) {
	c.begin()
	return c.r.cpu.Load(c.p.as, va, size)
}

// Store issues a user-mode store.
func (c *Context) Store(va vm.VAddr, size phys.AccessSize, val uint64) error {
	c.begin()
	return c.r.cpu.Store(c.p.as, va, size, val)
}

// MB issues a memory barrier.
func (c *Context) MB() error {
	c.begin()
	return c.r.cpu.MB()
}

// Swap issues an atomic exchange (one slot; atomic by construction).
func (c *Context) Swap(va vm.VAddr, size phys.AccessSize, val uint64) (uint64, error) {
	c.begin()
	return c.r.cpu.Swap(c.p.as, va, size, val)
}

// Spin consumes one slot of pure computation (n CPU cycles).
func (c *Context) Spin(n int64) {
	c.begin()
	c.r.cpu.Spin(n)
}

// Syscall traps into the kernel. The handler runs in kernel mode and
// cannot be preempted — the whole trap occupies one slot, like the real
// uninterruptible kernel path of Figure 1.
func (c *Context) Syscall(num int, args ...uint64) (uint64, error) {
	c.begin()
	if c.r.syscalls == nil {
		return 0, errors.New("proc: no syscall handler installed")
	}
	prev := c.r.cpu.Mode()
	c.r.cpu.SetMode(cpu.Kernel)
	v, err := c.r.syscalls.Syscall(c.p, num, args)
	c.r.cpu.SetMode(prev)
	if bu := c.p.blockedUntil; bu > c.r.cpu.Clock().Now() {
		// The handler put us to sleep (e.g. waiting for a completion
		// interrupt): give the CPU back; the scheduler re-grants at or
		// after the wakeup time, and that grant also covers the code
		// following the syscall (a fresh token).
		c.p.holding = false
		c.r.reports <- report{p: c.p}
		if !<-c.p.slot {
			panic(killed{})
		}
		c.p.holding, c.p.fresh = true, true
		c.p.blockedUntil = 0
	}
	return v, err
}

// PALCall invokes an installed PAL routine: unprivileged entry,
// uninterrupted execution (§2.7). The dispatch overhead is charged, the
// routine runs in PAL mode, and the whole call occupies one slot.
func (c *Context) PALCall(name string, args ...uint64) (uint64, error) {
	c.begin()
	fn, ok := c.r.pal[name]
	if !ok {
		return 0, fmt.Errorf("proc: PAL function %q not installed", name)
	}
	c.r.cpu.Spin(c.r.palCost)
	prev := c.r.cpu.Mode()
	c.r.cpu.SetMode(cpu.PAL)
	v, err := fn(c.p, args)
	c.r.cpu.SetMode(prev)
	return v, err
}
