package stats

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"uldma/internal/sim"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.StdDev() != 0 {
		t.Fatal("empty sample should be all zeros")
	}
	for _, v := range []sim.Time{10, 20, 30, 40} {
		s.Add(v)
	}
	if s.N() != 4 || s.Mean() != 25 || s.Min() != 10 || s.Max() != 40 {
		t.Fatalf("mean=%v min=%v max=%v", s.Mean(), s.Min(), s.Max())
	}
	// Population stddev of {10,20,30,40} = sqrt(125) ≈ 11.18.
	if sd := s.StdDev(); sd < 11 || sd > 12 {
		t.Fatalf("stddev = %v", sd)
	}
}

func TestPercentile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(sim.Time(i))
	}
	cases := []struct {
		p    float64
		want sim.Time
	}{{0, 1}, {50, 50}, {99, 99}, {100, 100}, {-5, 1}, {200, 100}}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	var empty Sample
	if empty.Percentile(50) != 0 {
		t.Fatal("empty percentile")
	}
}

// Property: Min <= Percentile(p) <= Max and Percentile is monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	err := quick.Check(func(raw []uint16, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			s.Add(sim.Time(v))
		}
		a, b := float64(aRaw%101), float64(bRaw%101)
		if a > b {
			a, b = b, a
		}
		pa, pb := s.Percentile(a), s.Percentile(b)
		return s.Min() <= pa && pa <= pb && pb <= s.Max()
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	var s Sample
	if !strings.Contains(s.Histogram(5), "no samples") {
		t.Fatal("empty histogram")
	}
	s.Add(7)
	s.Add(7)
	if got := s.Histogram(5); !strings.Contains(got, "x2") {
		t.Fatalf("degenerate histogram: %q", got)
	}
	for i := 1; i <= 100; i++ {
		s.Add(sim.Time(i))
	}
	out := s.Histogram(4)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("histogram lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "#") {
		t.Fatalf("no bars:\n%s", out)
	}
	// Total counted equals total samples.
	total := 0
	for _, l := range lines {
		var a, b string
		var c int
		if _, err := fmt.Sscanf(strings.TrimSpace(l), "%s %d", &a, &c); err != nil {
			// Fallback: count via fields (bar may be absent).
			f := strings.Fields(l)
			if len(f) >= 2 {
				fmt.Sscanf(f[1], "%d", &c)
			}
		}
		_ = b
		total += c
	}
	if total != 102 {
		t.Fatalf("histogram counted %d samples, want 102\n%s", total, out)
	}
	if s.Histogram(0) == "" {
		t.Fatal("default bucket count")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("DMA algorithm", "paper", "measured")
	tb.AddRow("Kernel-level DMA", "18.6µs", "18.59µs")
	tb.AddRow("Ext. Shadow Addressing", "1.1µs", "1.05µs")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "DMA algorithm") || !strings.Contains(lines[1], "---") {
		t.Fatalf("header/separator malformed:\n%s", out)
	}
	// Columns aligned: "paper" column starts at the same offset in all rows.
	idx0 := strings.Index(lines[2], "18.6µs")
	idx1 := strings.Index(lines[3], "1.1µs")
	if idx0 != idx1 {
		t.Fatalf("column misaligned:\n%s", out)
	}
}

func TestRatioAndDelta(t *testing.T) {
	if Ratio(20, 10) != "2.0x" {
		t.Fatalf("Ratio = %s", Ratio(20, 10))
	}
	if Ratio(1, 0) != "inf" {
		t.Fatal("zero denominator")
	}
	if DeltaPercent(110, 100) != "+10.0%" {
		t.Fatalf("DeltaPercent = %s", DeltaPercent(110, 100))
	}
	if DeltaPercent(90, 100) != "-10.0%" {
		t.Fatalf("DeltaPercent = %s", DeltaPercent(90, 100))
	}
	if DeltaPercent(1, 0) != "n/a" {
		t.Fatal("zero reference")
	}
}

// TestPercentileSmallN pins the nearest-rank edge cases the cached-sort
// path must preserve: empty, singleton and pair samples.
func TestPercentileSmallN(t *testing.T) {
	var s Sample
	if got := s.Percentile(50); got != 0 {
		t.Fatalf("n=0: p50 = %v, want 0", got)
	}
	s.Add(7)
	for _, p := range []float64{0, 50, 100} {
		if got := s.Percentile(p); got != 7 {
			t.Fatalf("n=1: p%v = %v, want 7", p, got)
		}
	}
	s.Add(3) // unsorted insertion: cache must re-sort after Add
	if got := s.Percentile(0); got != 3 {
		t.Fatalf("n=2: p0 = %v, want 3", got)
	}
	if got := s.Percentile(50); got != 3 {
		t.Fatalf("n=2: p50 (nearest-rank) = %v, want 3", got)
	}
	if got := s.Percentile(100); got != 7 {
		t.Fatalf("n=2: p100 = %v, want 7", got)
	}
}

// TestPercentileCacheInvalidation verifies that Add after a Percentile
// call invalidates the cached order, and that repeated calls on an
// unchanged sample reuse it (no per-call sort copy).
func TestPercentileCacheInvalidation(t *testing.T) {
	var s Sample
	for _, v := range []sim.Time{50, 10, 40} {
		s.Add(v)
	}
	if got := s.Percentile(100); got != 50 {
		t.Fatalf("p100 = %v, want 50", got)
	}
	if s.sorted == nil {
		t.Fatal("cache not populated by Percentile")
	}
	// A new maximum must be visible to the next call.
	s.Add(99)
	if s.sorted != nil {
		t.Fatal("Add did not invalidate the cache")
	}
	if got := s.Percentile(100); got != 99 {
		t.Fatalf("p100 after Add = %v, want 99", got)
	}
	// Unchanged sample: repeated percentiles allocate nothing.
	allocs := testing.AllocsPerRun(20, func() {
		s.Percentile(50)
		s.Percentile(90)
	})
	if allocs != 0 {
		t.Fatalf("cached percentiles: %v allocs/op, want 0", allocs)
	}
}
