// Package stats provides the small measurement and reporting helpers
// the experiment harnesses share: sample accumulation with summary
// statistics, and fixed-width table rendering for paper-vs-measured
// reports.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"uldma/internal/sim"
)

// Sample accumulates simulated-time observations.
type Sample struct {
	values []sim.Time
	// sorted caches the ascending order of values across repeated
	// Percentile calls (renderers ask for several percentiles of the
	// same finished sample — min/p50/p90/max per table row — and
	// re-sorting a copy per call dominated Sample's cost). Add
	// invalidates it.
	sorted []sim.Time
}

// Add records one observation and invalidates the cached sort order.
func (s *Sample) Add(v sim.Time) {
	s.values = append(s.values, v)
	s.sorted = nil
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean (0 when empty).
func (s *Sample) Mean() sim.Time {
	if len(s.values) == 0 {
		return 0
	}
	var sum sim.Time
	for _, v := range s.values {
		sum += v
	}
	return sum / sim.Time(len(s.values))
}

// Min returns the smallest observation (0 when empty).
func (s *Sample) Min() sim.Time {
	if len(s.values) == 0 {
		return 0
	}
	min := s.values[0]
	for _, v := range s.values[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest observation (0 when empty).
func (s *Sample) Max() sim.Time {
	if len(s.values) == 0 {
		return 0
	}
	max := s.values[0]
	for _, v := range s.values[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// Percentile returns the p-th percentile (0 <= p <= 100) by
// nearest-rank. The sorted order is computed once and cached until the
// next Add, so asking one sample for several percentiles sorts once.
func (s *Sample) Percentile(p float64) sim.Time {
	if len(s.values) == 0 {
		return 0
	}
	sorted := s.sorted
	if sorted == nil {
		sorted = append([]sim.Time(nil), s.values...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		s.sorted = sorted
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// StdDev returns the population standard deviation in picoseconds.
func (s *Sample) StdDev() sim.Time {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	mean := float64(s.Mean())
	var ss float64
	for _, v := range s.values {
		d := float64(v) - mean
		ss += d * d
	}
	return sim.Time(math.Sqrt(ss / float64(n)))
}

// Histogram renders the sample's distribution as an ASCII bar chart
// with n equal-width buckets between min and max. Empty samples render
// as a note.
func (s *Sample) Histogram(n int) string {
	if len(s.values) == 0 {
		return "(no samples)\n"
	}
	if n < 1 {
		n = 10
	}
	lo, hi := s.Min(), s.Max()
	if lo == hi {
		return fmt.Sprintf("%v x%d\n", lo, len(s.values))
	}
	counts := make([]int, n)
	width := (hi - lo) / sim.Time(n)
	if width == 0 {
		width = 1
	}
	maxCount := 0
	for _, v := range s.values {
		b := int((v - lo) / width)
		if b >= n {
			b = n - 1
		}
		counts[b]++
		if counts[b] > maxCount {
			maxCount = counts[b]
		}
	}
	var b strings.Builder
	for i, c := range counts {
		bar := 0
		if maxCount > 0 {
			bar = c * 40 / maxCount
		}
		fmt.Fprintf(&b, "%10v..%-10v %5d %s\n",
			lo+sim.Time(i)*width, lo+sim.Time(i+1)*width, c, strings.Repeat("#", bar))
	}
	return b.String()
}

// Table renders fixed-width ASCII tables in the style the tools print.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table { return &Table{headers: headers} }

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len([]rune(h))
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - len([]rune(c)); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Ratio formats a/b as "N.Nx" (or "inf" for zero b) — used in speedup
// columns.
func Ratio(a, b sim.Time) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(a)/float64(b))
}

// DeltaPercent formats the relative difference of measured vs reference
// as a signed percentage.
func DeltaPercent(measured, reference sim.Time) string {
	if reference == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(float64(measured)-float64(reference))/float64(reference))
}
