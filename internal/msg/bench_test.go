package msg

// Host-speed pins for the reliable sender's retransmit timer (ROADMAP
// "host-speed pass" item): the arm/reset state machine runs on EVERY
// Send/Flush wait iteration of every reliable channel in every fault
// sweep, so it must not allocate. The benchmark exercises the full
// credit -> expiry -> backoff -> re-arm cycle; the test asserts the
// 0 allocs/op pin the benchmark reports.

import (
	"testing"

	"uldma/internal/sim"
)

// benchSender builds a bare RSender with only the timer-relevant state
// populated — the timer machinery touches nothing else.
func benchSender() *RSender {
	cfg := ReliableConfig{}
	cfg.fill()
	return &RSender{cfg: cfg}
}

// pumpTimer drives one full timer cycle at time now: fold in a credit
// word, fire a backoff round if the deadline passed, re-arm on a new
// first unacked message. Mirrors the call pattern of pump + Send.
func pumpTimer(s *RSender, credited uint64, now sim.Time) {
	s.noteCredit(credited, now)
	if s.timerExpired(now) {
		s.backoffTimer(now)
	}
	if s.sent-s.credited == 1 {
		s.armTimer(now)
	}
}

func BenchmarkRSenderTimerPump(b *testing.B) {
	s := benchSender()
	s.sent = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now := sim.Time(i) * sim.Microsecond
		// Alternate stall (credit stuck, timer expires and backs off)
		// with progress (credit advances, timer re-arms).
		if i%4 == 3 {
			s.sent++
			pumpTimer(s, s.sent-1, now)
		} else {
			pumpTimer(s, s.credited, now)
		}
	}
}

func TestRSenderTimerPumpZeroAlloc(t *testing.T) {
	s := benchSender()
	s.sent = 1
	var now sim.Time
	var i int
	allocs := testing.AllocsPerRun(1000, func() {
		now += sim.Microsecond
		i++
		if i%4 == 3 {
			s.sent++
			pumpTimer(s, s.sent-1, now)
		} else {
			pumpTimer(s, s.credited, now)
		}
	})
	if allocs != 0 {
		t.Fatalf("retransmit timer pump allocates %.1f allocs/op, pinned at 0", allocs)
	}
}

// The timer state machine itself must behave: arm, expire, back off
// with the cap, reset on credit.
func TestRetransmitTimerMachine(t *testing.T) {
	s := benchSender()
	s.sent = 1
	s.armTimer(0)
	if s.rto != s.cfg.RTO || s.deadline != s.cfg.RTO || s.tries != 0 {
		t.Fatalf("armTimer: rto=%v deadline=%v tries=%d", s.rto, s.deadline, s.tries)
	}
	if s.timerExpired(s.deadline - 1) {
		t.Fatal("timer expired before its deadline")
	}
	if !s.timerExpired(s.deadline) {
		t.Fatal("timer not expired at its deadline")
	}
	// Backoff doubles up to the cap.
	for i := 0; i < 20; i++ {
		s.backoffTimer(s.deadline)
	}
	if s.rto != s.cfg.MaxRTO {
		t.Fatalf("rto=%v after sustained backoff, want cap %v", s.rto, s.cfg.MaxRTO)
	}
	// A stale (non-advancing) credit must not reset the backoff...
	rto := s.rto
	s.noteCredit(0, s.deadline)
	if s.rto != rto {
		t.Fatal("stale credit reset the backoff")
	}
	// ...but forward progress re-arms from scratch.
	s.noteCredit(1, s.deadline)
	if s.rto != s.cfg.RTO || s.credited != 1 {
		t.Fatalf("credit advance: rto=%v credited=%d, want fresh RTO and 1", s.rto, s.credited)
	}
	if s.timerExpired(s.deadline) {
		t.Fatal("timer expired with nothing in flight")
	}
}
