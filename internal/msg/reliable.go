// Reliable transport: the base channel hardened against a faulty
// fabric (internal/fault). The base protocol assumes the link delivers
// every remote write, in order, exactly once; under loss, duplication
// or reordering it wedges. The reliable channel keeps the paper's
// constraint — ZERO kernel crossings on either side in the steady
// state; credits and acknowledgements stay single-word remote writes —
// and adds, entirely in user mode:
//
//   - a 24-byte slot header [seq | len | csum]: csum binds the sequence
//     number, length and payload bytes, so a receiver can tell "this
//     slot holds message n, complete" from any partial or stale
//     interleaving a faulty link can produce (a commit word that
//     overtook its payload, a late duplicate landing over a reused
//     slot, a stale length);
//   - sender retransmit timers in SIMULATED time with exponential
//     backoff: the cumulative credit word doubles as the ack; when it
//     stalls past the timeout the sender go-back-N retransmits every
//     unacked message from its staging mirror (one staging slot per
//     ring slot, so payloads survive until acknowledged);
//   - receiver-side duplicate/out-of-order rejection: only a
//     checksum-valid slot holding exactly the next expected sequence is
//     consumed, everything else is ignored and retransmission repairs
//     it;
//   - credit-loss recovery: the receiver re-writes its cumulative
//     credit word whenever the channel makes no progress for
//     RecreditAfter — credits are idempotent, so a lost ack costs one
//     timeout, never a deadlock.
//
// Every run is deterministic: timeouts are read off the world's
// simulated clock, so a (plan, seed) pair replays the exact
// retransmission schedule (TestReliableUnderSeededFaultPlans).

package msg

import (
	"fmt"

	userdma "uldma/internal/core"
	"uldma/internal/dma"
	"uldma/internal/machine"
	"uldma/internal/obs"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/vm"
)

// rheaderBytes is the reliable slot header: seq (8) + len (8) + csum (8).
const rheaderBytes = 24

// ReliableConfig sizes a reliable channel and its recovery timers. All
// timers are simulated time.
type ReliableConfig struct {
	Config
	// RTO is the initial retransmit timeout (default 200 µs).
	RTO sim.Time
	// MaxRTO caps the exponential backoff (default 3.2 ms).
	MaxRTO sim.Time
	// MaxRetries is the number of retransmit rounds before the sender
	// gives up (default 30).
	MaxRetries int
	// RecreditAfter is how long the receiver waits without progress
	// before re-writing its cumulative credit word (default 1 ms).
	RecreditAfter sim.Time
	// GiveUp bounds a receiver's wait for one message (default 1 s).
	GiveUp sim.Time
}

func (c *ReliableConfig) fill() {
	c.Config.fill()
	if c.RTO == 0 {
		c.RTO = 200 * sim.Microsecond
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 3200 * sim.Microsecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 30
	}
	if c.RecreditAfter == 0 {
		c.RecreditAfter = sim.Millisecond
	}
	if c.GiveUp == 0 {
		c.GiveUp = sim.Second
	}
}

// rstride is the 64-byte-aligned reliable slot footprint.
func (c ReliableConfig) rstride() int {
	s := rheaderBytes + c.SlotPayload
	return (s + slotAlign - 1) &^ (slotAlign - 1)
}

func (c ReliableConfig) validate() error {
	if c.Slots < 1 || c.SlotPayload < 8 {
		return fmt.Errorf("msg: reliable config %+v out of range", c.Config)
	}
	if c.SlotPayload%8 != 0 {
		return fmt.Errorf("msg: SlotPayload %d must be a multiple of 8", c.SlotPayload)
	}
	if c.Index < 0 || c.Index > maxIndex {
		return fmt.Errorf("msg: channel index %d out of range 0..%d", c.Index, maxIndex)
	}
	if uint64(c.Slots*c.rstride()) > uint64(indexStride) {
		return fmt.Errorf("msg: reliable ring of %d x %dB slots exceeds the per-channel window", c.Slots, c.SlotPayload)
	}
	return nil
}

// ringPages is how many pages the ring (and the staging mirror, which
// has the same footprint) occupies.
func (c ReliableConfig) ringPages(pageSize uint64) int {
	total := uint64(c.Slots * c.rstride())
	return int((total + pageSize - 1) / pageSize)
}

// RStats counts reliable-endpoint activity.
type RStats struct {
	Messages    uint64
	Bytes       uint64
	FlowStalls  uint64 // sender waits on a full ring
	Timeouts    uint64 // sender retransmit rounds fired
	Retransmits uint64 // individual messages retransmitted
	CsumRejects uint64 // receiver saw the right seq over wrong bytes
	Recredits   uint64 // receiver re-wrote its credit word
}

// RSender is the reliable sending endpoint. Use it only from its own
// process's guest code.
type RSender struct {
	cfg      ReliableConfig
	va       vaSet
	h        *userdma.Handle
	clock    *sim.Clock
	sent     uint64
	credited uint64
	lens     []uint64
	csums    []uint64
	rto      sim.Time
	deadline sim.Time
	tries    int
	stats    RStats
	sm       *machine.Machine // for the trace spine (sm.Tracer, read per event)
}

// RReceiver is the reliable receiving endpoint.
type RReceiver struct {
	cfg      ReliableConfig
	va       vaSet
	clock    *sim.Clock
	consumed uint64
	stats    RStats
	rm       *machine.Machine // for the trace spine (rm.Tracer, read per event)
}

// Stats returns a snapshot of the sender's counters.
func (s *RSender) Stats() RStats { return s.stats }

// Stats returns a snapshot of the receiver's counters.
func (r *RReceiver) Stats() RStats { return r.stats }

// MaxPayload returns the largest message the channel accepts.
func (s *RSender) MaxPayload() int { return s.cfg.SlotPayload }

// Sent and Credited expose the sender's ring bookkeeping (tests and
// experiments read them host-side).
func (s *RSender) Sent() uint64     { return s.sent }
func (s *RSender) Credited() uint64 { return s.credited }

// Consumed returns how many messages the receiver has delivered.
func (r *RReceiver) Consumed() uint64 { return r.consumed }

// NewReliableChannel wires a unidirectional reliable channel from
// senderProc (on sm) to receiverProc (on rm, cluster node rxNode). The
// setup-time kernel work mirrors NewChannel, with one difference: the
// sender's staging area is a full ring MIRROR (one staging slot per
// ring slot) so unacknowledged payloads survive for retransmission.
func NewReliableChannel(sm *machine.Machine, senderProc *proc.Process, h *userdma.Handle,
	rm *machine.Machine, receiverProc *proc.Process, rxNode int, cfg ReliableConfig) (*RSender, *RReceiver, error) {

	cfg.fill()
	pageSize := sm.Cfg.PageSize
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	if h == nil {
		return nil, nil, fmt.Errorf("msg: nil DMA handle")
	}
	va := basesFor(cfg.Index)
	pages := cfg.ringPages(pageSize)

	// Receiver side: mailbox ring pages (local, readable).
	rk := rm.Kernel
	var mailboxFrames []phys.Addr
	for i := 0; i < pages; i++ {
		mbVA := va.mailboxR + vm.VAddr(uint64(i)*pageSize)
		frame, err := rk.AllocPage(receiverProc.AddressSpace(), mbVA, vm.Read|vm.Write)
		if err != nil {
			return nil, nil, fmt.Errorf("msg: mailbox page %d: %w", i, err)
		}
		mailboxFrames = append(mailboxFrames, frame)
	}
	for i := 1; i < pages; i++ {
		if mailboxFrames[i] != mailboxFrames[i-1]+phys.Addr(pageSize) {
			return nil, nil, fmt.Errorf("msg: mailbox frames not contiguous")
		}
	}

	// Sender side: staging mirror pages + shadows, credit page, remote
	// window onto the mailbox + shadows.
	sk := sm.Kernel
	var stagingFrames []phys.Addr
	for i := 0; i < pages; i++ {
		stVA := va.staging + vm.VAddr(uint64(i)*pageSize)
		frame, err := sk.AllocPage(senderProc.AddressSpace(), stVA, vm.Read|vm.Write)
		if err != nil {
			return nil, nil, fmt.Errorf("msg: staging page %d: %w", i, err)
		}
		if err := sk.MapShadow(senderProc, stVA); err != nil {
			return nil, nil, err
		}
		stagingFrames = append(stagingFrames, frame)
	}
	for i := 1; i < pages; i++ {
		if stagingFrames[i] != stagingFrames[i-1]+phys.Addr(pageSize) {
			return nil, nil, fmt.Errorf("msg: staging frames not contiguous")
		}
	}
	creditFrame, err := sk.AllocPage(senderProc.AddressSpace(), va.credit, vm.Read|vm.Write)
	if err != nil {
		return nil, nil, fmt.Errorf("msg: credit page: %w", err)
	}
	for i := 0; i < pages; i++ {
		wVA := va.mailboxW + vm.VAddr(uint64(i)*pageSize)
		if err := sk.MapRemote(senderProc, wVA, rxNode, mailboxFrames[i]); err != nil {
			return nil, nil, fmt.Errorf("msg: mailbox window: %w", err)
		}
		if err := sk.MapShadow(senderProc, wVA); err != nil {
			return nil, nil, err
		}
	}

	// Receiver's window onto the sender's credit word.
	if err := rk.MapRemote(receiverProc, va.creditW, sm.NodeID, creditFrame); err != nil {
		return nil, nil, fmt.Errorf("msg: credit window: %w", err)
	}

	s := &RSender{
		cfg: cfg, va: va, h: h, clock: sm.Clock, sm: sm,
		lens:  make([]uint64, cfg.Slots),
		csums: make([]uint64, cfg.Slots),
	}
	r := &RReceiver{cfg: cfg, va: va, clock: rm.Clock, rm: rm}
	return s, r, nil
}

// mix64 is the SplitMix64 finalizer — the checksum's mixing function.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// checksum binds a message's sequence number, length and payload bytes.
// Sender and receiver compute it over the same byte view, so any stale
// or partial slot contents mismatch.
func checksum(seq uint64, data []byte) uint64 {
	h := mix64(seq ^ 0x9e3779b97f4a7c15)
	for off := 0; off < len(data); off += 8 {
		var w uint64
		for b := 0; b < 8 && off+b < len(data); b++ {
			w |= uint64(data[off+b]) << (8 * b)
		}
		h = mix64(h ^ w ^ uint64(off)*0x2545f4914f6cdd1d)
	}
	return mix64(h ^ uint64(len(data)))
}

// The retransmit timer is a tiny pure state machine over (credited,
// sent, rto, deadline, tries) — split out of pump so the arm/reset
// path is directly benchmarkable: it runs on EVERY Send/Flush wait
// iteration of every reliable channel, so it must stay at 0 allocs/op
// (BenchmarkRSenderTimerPump asserts the pin).

// armTimer starts a fresh retransmit timer: first unacked message in
// flight, initial RTO, no rounds burned.
func (s *RSender) armTimer(now sim.Time) {
	s.tries = 0
	s.rto = s.cfg.RTO
	s.deadline = now + s.rto
}

// noteCredit folds a newly read credit word into the timer state.
// Monotonic: a reordered stale credit must not regress the ack. Any
// forward progress re-arms the timer from scratch.
func (s *RSender) noteCredit(credited uint64, now sim.Time) {
	if credited > s.credited {
		s.credited = credited
		s.armTimer(now)
	}
}

// timerExpired reports whether the retransmit deadline has passed with
// messages still unacknowledged.
func (s *RSender) timerExpired(now sim.Time) bool {
	return s.credited < s.sent && now >= s.deadline
}

// backoffTimer doubles the timeout after a retransmit round, capped at
// MaxRTO, and re-arms the deadline.
func (s *RSender) backoffTimer(now sim.Time) {
	s.rto *= 2
	if s.rto > s.cfg.MaxRTO {
		s.rto = s.cfg.MaxRTO
	}
	s.deadline = now + s.rto
}

// pump runs the sender's ack/timer machinery: it polls the credit word
// (the cumulative ack), and when the retransmit deadline passes with
// messages still unacknowledged it go-back-N retransmits them and
// doubles the timeout. Called from every Send/Flush wait iteration —
// all user-mode instructions plus a host-free clock read.
func (s *RSender) pump(c *proc.Context) error {
	credited, err := c.Load(s.va.credit, phys.Size64)
	if err != nil {
		return err
	}
	s.noteCredit(credited, s.clock.Now())
	if !s.timerExpired(s.clock.Now()) {
		return nil // all acked, or the deadline is still in the future
	}
	s.tries++
	if s.tries > s.cfg.MaxRetries {
		return fmt.Errorf("msg: reliable sender gave up after %d retransmit rounds (seq %d..%d unacked)",
			s.cfg.MaxRetries, s.credited+1, s.sent)
	}
	s.stats.Timeouts++
	if tr := s.sm.Tracer; tr != nil {
		tr.Instant(s.clock.Now(), obs.CatMsg, "timeout",
			int32(s.sm.NodeID), -1, s.credited+1, s.sent, uint64(s.tries))
	}
	for seq := s.credited + 1; seq <= s.sent; seq++ {
		if err := s.transmit(c, seq); err != nil {
			return err
		}
		s.stats.Retransmits++
		if tr := s.sm.Tracer; tr != nil {
			tr.Instant(s.clock.Now(), obs.CatMsg, "retransmit",
				int32(s.sm.NodeID), -1, seq, 0, 0)
		}
	}
	s.backoffTimer(s.clock.Now())
	return nil
}

// transmit (re)sends one message from the staging mirror: payload by
// user-level DMA, then csum, len and finally seq — the commit word —
// by single-word remote writes.
func (s *RSender) transmit(c *proc.Context, seq uint64) error {
	slot := (seq - 1) % uint64(s.cfg.Slots)
	stride := vm.VAddr(s.cfg.rstride())
	srcVA := s.va.staging + vm.VAddr(slot)*stride
	slotVA := s.va.mailboxW + vm.VAddr(slot)*stride
	length := s.lens[slot]
	if length > 0 {
		st, err := s.h.DMA(c, srcVA, slotVA+rheaderBytes, length)
		if err != nil {
			return err
		}
		if st == dma.StatusFailure {
			return fmt.Errorf("msg: payload DMA refused")
		}
		// The commit word must not overtake the payload on a healthy
		// link: wait for the DMA to drain before writing headers. (On a
		// faulty link the checksum catches whatever arrives anyway.)
		if err := s.h.Wait(c, 1_000_000); err != nil {
			return err
		}
	}
	if err := c.Store(slotVA+16, phys.Size64, s.csums[slot]); err != nil {
		return err
	}
	if err := c.Store(slotVA+8, phys.Size64, length); err != nil {
		return err
	}
	if err := c.Store(slotVA, phys.Size64, seq); err != nil {
		return err
	}
	return c.MB()
}

// Send transmits data (len <= MaxPayload): it stages the payload in the
// slot's staging-mirror cell (where it survives until acknowledged),
// transmits, and arms the retransmit timer. It blocks — polling, while
// pumping the timer machinery — when the ring is full. Entirely user
// mode; zero kernel crossings.
func (s *RSender) Send(c *proc.Context, data []byte) error {
	if len(data) > s.cfg.SlotPayload {
		return fmt.Errorf("msg: message of %d bytes exceeds slot payload %d", len(data), s.cfg.SlotPayload)
	}
	// Flow control: wait for a free slot, keeping retransmissions going.
	for {
		if err := s.pump(c); err != nil {
			return err
		}
		if s.sent-s.credited < uint64(s.cfg.Slots) {
			break
		}
		s.stats.FlowStalls++
		c.Spin(500)
	}

	seq := s.sent + 1
	slot := s.sent % uint64(s.cfg.Slots)
	base := s.va.staging + vm.VAddr(slot)*vm.VAddr(s.cfg.rstride())
	for off := 0; off < len(data); off += 8 {
		var word uint64
		for b := 0; b < 8 && off+b < len(data); b++ {
			word |= uint64(data[off+b]) << (8 * b)
		}
		if err := c.Store(base+vm.VAddr(off), phys.Size64, word); err != nil {
			return err
		}
	}
	s.lens[slot] = uint64(len(data))
	s.csums[slot] = checksum(seq, data)
	if err := s.transmit(c, seq); err != nil {
		return err
	}
	s.sent++
	if s.sent-s.credited == 1 {
		// First unacked message: arm a fresh timer.
		s.armTimer(s.clock.Now())
	}
	s.stats.Messages++
	s.stats.Bytes += uint64(len(data))
	return nil
}

// Flush blocks until every sent message has been acknowledged, pumping
// retransmissions. Call it before tearing the channel down.
func (s *RSender) Flush(c *proc.Context) error {
	for s.credited < s.sent {
		if err := s.pump(c); err != nil {
			return err
		}
		if s.credited >= s.sent {
			return nil
		}
		c.Spin(500)
	}
	return nil
}

// Linger keeps the receive side alive for d of simulated time after
// the last Recv, re-writing the cumulative credit every RecreditAfter
// — the TIME_WAIT analogue. The final ack is the one word the protocol
// cannot confirm; if the fabric drops it, the sender's Flush spins on
// retransmissions that nobody answers. A lingering receiver answers
// them: credits are idempotent, so repeating the last one is always
// safe. Pick d comfortably above the sender's worst-case backoff
// (MaxRTO); with a zero-fault plan d = 0 is fine.
func (r *RReceiver) Linger(c *proc.Context, d sim.Time) error {
	end := r.clock.Now() + d
	next := r.clock.Now() + r.cfg.RecreditAfter
	for r.clock.Now() < end {
		if r.clock.Now() >= next {
			if err := c.Store(r.va.creditW, phys.Size64, r.consumed); err != nil {
				return err
			}
			if err := c.MB(); err != nil {
				return err
			}
			r.stats.Recredits++
			if tr := r.rm.Tracer; tr != nil {
				tr.Instant(r.clock.Now(), obs.CatMsg, "recredit",
					int32(r.rm.NodeID), -1, r.consumed, 0, 0)
			}
			next = r.clock.Now() + r.cfg.RecreditAfter
		}
		c.Spin(2000)
	}
	return nil
}

// Recv blocks (polling) until the next in-sequence, checksum-valid
// message arrives, copies it into buf (which must hold MaxPayload
// bytes), credits the sender, and returns the length. Duplicates,
// stale slot contents and partial interleavings are ignored — the
// sender's retransmissions repair them. If the channel makes no
// progress for RecreditAfter the receiver re-writes its cumulative
// credit word (a lost credit is the one ack the protocol cannot
// otherwise recover). Entirely user mode.
func (r *RReceiver) Recv(c *proc.Context, buf []byte) (int, error) {
	if len(buf) < r.cfg.SlotPayload {
		return 0, fmt.Errorf("msg: reliable Recv needs a %dB buffer, got %d", r.cfg.SlotPayload, len(buf))
	}
	slot := r.consumed % uint64(r.cfg.Slots)
	slotVA := r.va.mailboxR + vm.VAddr(slot)*vm.VAddr(r.cfg.rstride())
	want := r.consumed + 1
	start := r.clock.Now()
	lastProgress := start
	for {
		seq, err := c.Load(slotVA, phys.Size64)
		if err != nil {
			return 0, err
		}
		if seq == want {
			length, err := c.Load(slotVA+8, phys.Size64)
			if err != nil {
				return 0, err
			}
			if length <= uint64(r.cfg.SlotPayload) {
				csum, err := c.Load(slotVA+16, phys.Size64)
				if err != nil {
					return 0, err
				}
				for off := 0; off < int(length); off += 8 {
					word, err := c.Load(slotVA+rheaderBytes+vm.VAddr(off), phys.Size64)
					if err != nil {
						return 0, err
					}
					for b := 0; b < 8 && off+b < int(length); b++ {
						buf[off+b] = byte(word >> (8 * b))
					}
				}
				if checksum(want, buf[:length]) == csum {
					r.consumed++
					r.stats.Messages++
					r.stats.Bytes += length
					// Ack: cumulative credit by single remote write.
					if err := c.Store(r.va.creditW, phys.Size64, r.consumed); err != nil {
						return 0, err
					}
					if err := c.MB(); err != nil {
						return 0, err
					}
					return int(length), nil
				}
				// Right seq over wrong bytes: a commit word that beat
				// its payload, or a late duplicate over a reused slot.
				// Ignore; retransmission repairs it.
				r.stats.CsumRejects++
			}
		} else if seq > want {
			// Slot seq values can only be want - k*Slots (stale) or want:
			// the sender cannot reuse the slot for want+Slots before our
			// own credit for want. Anything else is a protocol bug.
			return 0, fmt.Errorf("msg: slot %d holds impossible seq %d (want %d)", slot, seq, want)
		}
		now := r.clock.Now()
		if now-start > r.cfg.GiveUp {
			return 0, fmt.Errorf("msg: reliable receiver gave up waiting %v for seq %d", r.cfg.GiveUp, want)
		}
		if now-lastProgress >= r.cfg.RecreditAfter {
			// Credit-loss recovery: re-write the cumulative credit word.
			// Idempotent — it only ever carries the same monotonic count.
			if err := c.Store(r.va.creditW, phys.Size64, r.consumed); err != nil {
				return 0, err
			}
			if err := c.MB(); err != nil {
				return 0, err
			}
			r.stats.Recredits++
			if tr := r.rm.Tracer; tr != nil {
				tr.Instant(r.clock.Now(), obs.CatMsg, "recredit",
					int32(r.rm.NodeID), -1, r.consumed, 0, 0)
			}
			lastProgress = now
		}
		c.Spin(500)
	}
}