// Package msg is a user-level message-passing library built entirely on
// the paper's primitives: payloads travel by user-level DMA, headers
// and flow-control credits by single-word remote writes. After setup,
// a running channel performs ZERO kernel crossings on either side —
// the end-to-end demonstration of what user-level DMA buys a Network of
// Workstations (the Hamlyn / Telegraphos style of sender-based
// communication the paper cites).
//
// Protocol (one-directional channel):
//
//   - The receiver owns a mailbox ring of Slots slots in its local
//     memory. Each slot is [seq | len | payload…], 64-byte aligned.
//   - The sender stages a message in a local page, DMAs the payload
//     into the next slot's payload area, waits for the DMA to drain,
//     then remote-writes len and finally seq (the commit word). The
//     fabric is FIFO per destination, so a visible seq implies the
//     payload landed.
//   - The receiver polls the expected slot's seq, copies the payload
//     out, and remote-writes its cumulative consumed count into the
//     sender's credit word. The sender blocks when the ring is full
//     (sent − credited == Slots).
//
// Every access is an ordinary user-mode instruction; protection comes
// from the kernel-established mappings (sender: write-only window onto
// the receiver's mailbox; receiver: write-only window onto the sender's
// credit word).
package msg

import (
	"fmt"

	userdma "uldma/internal/core"
	"uldma/internal/dma"
	"uldma/internal/kernel"
	"uldma/internal/machine"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/vm"
)

// Virtual-address layout inside the two processes. The library owns
// these conventions the way a real one would own its mmap'ed regions;
// each channel Index gets its own 64 KiB-spaced set of bases so one
// process can hold several endpoints.
const (
	vaStagingBase  = vm.VAddr(0x0060_0000) // sender: payload staging page
	vaCreditBase   = vm.VAddr(0x0061_0000) // sender: local credit word page
	vaMailboxWBase = vm.VAddr(0x0068_0000) // sender: remote window onto the mailbox
	vaMailboxRBase = vm.VAddr(0x0070_0000) // receiver: local mailbox pages
	vaCreditWBase  = vm.VAddr(0x0078_0000) // receiver: remote window onto the credit word
	indexStride    = vm.VAddr(0x0001_0000) // per-Index spacing (8 pages)
	maxIndex       = 7
	headerBytes    = 16 // seq (8) + len (8)
	slotAlign      = 64
)

// vaSet holds one channel's virtual bases.
type vaSet struct {
	staging  vm.VAddr
	credit   vm.VAddr
	mailboxW vm.VAddr
	mailboxR vm.VAddr
	creditW  vm.VAddr
}

func basesFor(index int) vaSet {
	off := vm.VAddr(index) * indexStride
	return vaSet{
		staging:  vaStagingBase + off,
		credit:   vaCreditBase + off,
		mailboxW: vaMailboxWBase + off,
		mailboxR: vaMailboxRBase + off,
		creditW:  vaCreditWBase + off,
	}
}

// Config sizes a channel.
type Config struct {
	// Slots is the ring depth (default 8).
	Slots int
	// SlotPayload is the max message size in bytes (default 960; the
	// whole ring must fit the mailbox pages).
	SlotPayload int
	// Index distinguishes multiple channels touching the same process
	// (0-7): each index owns a disjoint slice of the library's virtual
	// layout on both endpoints.
	Index int
}

func (c *Config) fill() {
	if c.Slots == 0 {
		c.Slots = 8
	}
	if c.SlotPayload == 0 {
		c.SlotPayload = 960
	}
}

// stride is the 64-byte-aligned slot footprint.
func (c Config) stride() int {
	s := headerBytes + c.SlotPayload
	return (s + slotAlign - 1) &^ (slotAlign - 1)
}

func (c Config) validate(pageSize uint64) error {
	if c.Slots < 1 || c.SlotPayload < 8 {
		return fmt.Errorf("msg: config %+v out of range", c)
	}
	if c.SlotPayload%8 != 0 {
		return fmt.Errorf("msg: SlotPayload %d must be a multiple of 8", c.SlotPayload)
	}
	if c.Index < 0 || c.Index > maxIndex {
		return fmt.Errorf("msg: channel index %d out of range 0..%d", c.Index, maxIndex)
	}
	if uint64(c.Slots*c.stride()) > uint64(indexStride) {
		return fmt.Errorf("msg: ring of %d x %dB slots exceeds the per-channel window", c.Slots, c.SlotPayload)
	}
	if uint64(c.SlotPayload) > pageSize-headerBytes {
		return fmt.Errorf("msg: SlotPayload %d exceeds a staging page", c.SlotPayload)
	}
	return nil
}

// mailboxPages is how many pages the ring occupies.
func (c Config) mailboxPages(pageSize uint64) int {
	total := uint64(c.Slots * c.stride())
	return int((total + pageSize - 1) / pageSize)
}

// Sender is the sending endpoint. Use it only from its own process's
// guest code.
type Sender struct {
	cfg   Config
	va    vaSet
	h     *userdma.Handle
	sent  uint64
	stats Stats
}

// Receiver is the receiving endpoint.
type Receiver struct {
	cfg      Config
	va       vaSet
	consumed uint64
	stats    Stats
}

// Stats counts endpoint activity.
type Stats struct {
	Messages   uint64
	Bytes      uint64
	FlowStalls uint64 // sender waits on a full ring
}

// Stats returns a snapshot of the sender's counters.
func (s *Sender) Stats() Stats { return s.stats }

// Stats returns a snapshot of the receiver's counters.
func (r *Receiver) Stats() Stats { return r.stats }

// NewChannel wires a unidirectional channel from senderProc (on sender
// machine sm) to receiverProc (on rm, cluster node rxNode). It performs
// all the setup-time kernel work on both nodes: mailbox and credit
// allocation, remote windows, shadow aliases. h is the sender's DMA
// handle; because Send waits for payload completion before committing
// the header, the handle's method must support user-level status
// polling (extended-shadow, key-based, or kernel-level — not repeated
// passing or the paired schemes).
func NewChannel(sm *machine.Machine, senderProc *proc.Process, h *userdma.Handle,
	rm *machine.Machine, receiverProc *proc.Process, rxNode int, cfg Config) (*Sender, *Receiver, error) {

	cfg.fill()
	pageSize := sm.Cfg.PageSize
	if err := cfg.validate(pageSize); err != nil {
		return nil, nil, err
	}
	if h == nil {
		return nil, nil, fmt.Errorf("msg: nil DMA handle")
	}
	va := basesFor(cfg.Index)

	// Receiver side: mailbox pages (local, readable) + remote window to
	// the sender's credit word.
	mbPages := cfg.mailboxPages(pageSize)
	rk := rm.Kernel
	var mailboxFrames []phys.Addr
	for i := 0; i < mbPages; i++ {
		mbVA := va.mailboxR + vm.VAddr(uint64(i)*pageSize)
		frame, err := rk.AllocPage(receiverProc.AddressSpace(), mbVA, vm.Read|vm.Write)
		if err != nil {
			return nil, nil, fmt.Errorf("msg: mailbox page %d: %w", i, err)
		}
		mailboxFrames = append(mailboxFrames, frame)
	}
	for i := 1; i < mbPages; i++ {
		if mailboxFrames[i] != mailboxFrames[i-1]+phys.Addr(pageSize) {
			return nil, nil, fmt.Errorf("msg: mailbox frames not contiguous")
		}
	}

	// Sender side: staging page + shadow, credit page (local, readable),
	// remote window onto the mailbox + shadow.
	sk := sm.Kernel
	if _, err := sk.AllocPage(senderProc.AddressSpace(), va.staging, vm.Read|vm.Write); err != nil {
		return nil, nil, fmt.Errorf("msg: staging page: %w", err)
	}
	if err := sk.MapShadow(senderProc, va.staging); err != nil {
		return nil, nil, err
	}
	creditFrame, err := sk.AllocPage(senderProc.AddressSpace(), va.credit, vm.Read|vm.Write)
	if err != nil {
		return nil, nil, fmt.Errorf("msg: credit page: %w", err)
	}
	for i := 0; i < mbPages; i++ {
		wVA := va.mailboxW + vm.VAddr(uint64(i)*pageSize)
		if err := sk.MapRemote(senderProc, wVA, rxNode, mailboxFrames[i]); err != nil {
			return nil, nil, fmt.Errorf("msg: mailbox window: %w", err)
		}
		if err := sk.MapShadow(senderProc, wVA); err != nil {
			return nil, nil, err
		}
	}

	// Receiver's window onto the sender's credit word.
	if err := rk.MapRemote(receiverProc, va.creditW, sm.NodeID, creditFrame); err != nil {
		return nil, nil, fmt.Errorf("msg: credit window: %w", err)
	}

	s := &Sender{cfg: cfg, va: va, h: h}
	r := &Receiver{cfg: cfg, va: va}
	return s, r, nil
}

// MaxPayload returns the largest message the channel accepts.
func (s *Sender) MaxPayload() int { return s.cfg.SlotPayload }

// Send transmits data (len <= MaxPayload) and blocks until the payload
// has left the node. It runs entirely in user mode.
func (s *Sender) Send(c *proc.Context, data []byte) error {
	if len(data) > s.cfg.SlotPayload {
		return fmt.Errorf("msg: message of %d bytes exceeds slot payload %d", len(data), s.cfg.SlotPayload)
	}
	// Flow control: wait for a free slot.
	for {
		credited, err := c.Load(s.va.credit, phys.Size64)
		if err != nil {
			return err
		}
		if s.sent-credited < uint64(s.cfg.Slots) {
			break
		}
		s.stats.FlowStalls++
		c.Spin(500)
	}
	return s.sendBody(c, data)
}

// SendBlocking is Send with the flow-control spin replaced by a kernel
// sleep: when the ring is full, the sender traps SysWaitWrite on its
// credit page and sleeps until the receiver's next credit write lands
// (the NIC receive interrupt wakes it). Exactly one wakeup per credit
// write, no event-queue busy-looping — the send side of the poll-vs-
// interrupt trade (one trap per stall instead of a busy CPU).
func (s *Sender) SendBlocking(c *proc.Context, data []byte) error {
	if len(data) > s.cfg.SlotPayload {
		return fmt.Errorf("msg: message of %d bytes exceeds slot payload %d", len(data), s.cfg.SlotPayload)
	}
	for {
		credited, err := c.Load(s.va.credit, phys.Size64)
		if err != nil {
			return err
		}
		if s.sent-credited < uint64(s.cfg.Slots) {
			break
		}
		s.stats.FlowStalls++
		// Sleep until a credit word lands. A spurious wakeup (nothing
		// freed) just loops back into the trap.
		if _, err := c.Syscall(kernel.SysWaitWrite, uint64(s.va.credit)); err != nil {
			return err
		}
	}
	return s.sendBody(c, data)
}

// sendBody stages, DMAs and commits one message — the shared tail of
// Send and SendBlocking. The instruction sequence is exactly the
// pre-split Send tail, so timing-pinned experiments are unaffected.
func (s *Sender) sendBody(c *proc.Context, data []byte) error {
	// Stage the payload (word stores into the local staging page).
	for off := 0; off < len(data); off += 8 {
		var word uint64
		for b := 0; b < 8 && off+b < len(data); b++ {
			word |= uint64(data[off+b]) << (8 * b)
		}
		if err := c.Store(s.va.staging+vm.VAddr(off), phys.Size64, word); err != nil {
			return err
		}
	}

	slot := s.sent % uint64(s.cfg.Slots)
	slotVA := s.va.mailboxW + vm.VAddr(slot)*vm.VAddr(s.cfg.stride())
	if len(data) > 0 {
		// Payload by user-level DMA into the slot's payload area.
		st, err := s.h.DMA(c, s.va.staging, slotVA+headerBytes, uint64(len(data)))
		if err != nil {
			return err
		}
		if st == dma.StatusFailure {
			return fmt.Errorf("msg: payload DMA refused")
		}
		// The commit word must not overtake the payload: the DMA is
		// asynchronous, so wait for it to drain before writing headers.
		if err := s.h.Wait(c, 1_000_000); err != nil {
			return err
		}
	}
	// Header: len first, then seq as the commit word.
	if err := c.Store(slotVA+8, phys.Size64, uint64(len(data))); err != nil {
		return err
	}
	if err := c.Store(slotVA, phys.Size64, s.sent+1); err != nil {
		return err
	}
	if err := c.MB(); err != nil {
		return err
	}
	s.sent++
	s.stats.Messages++
	s.stats.Bytes += uint64(len(data))
	return nil
}

// TryRecv checks for a pending message without blocking: it returns
// (0, false, nil) when the next slot has not been committed yet. One
// slot-header load; use it to multiplex several channels in one loop.
func (r *Receiver) TryRecv(c *proc.Context, buf []byte) (int, bool, error) {
	slot := r.consumed % uint64(r.cfg.Slots)
	slotVA := r.va.mailboxR + vm.VAddr(slot)*vm.VAddr(r.cfg.stride())
	seq, err := c.Load(slotVA, phys.Size64)
	if err != nil {
		return 0, false, err
	}
	if seq != r.consumed+1 {
		if seq > r.consumed+1 {
			return 0, false, fmt.Errorf("msg: slot %d skipped to seq %d (want %d)", slot, seq, r.consumed+1)
		}
		return 0, false, nil
	}
	n, err := r.Recv(c, buf) // the header is committed; this cannot block
	return n, err == nil, err
}

// RecvBlocking is Recv without the spin: when the mailbox is empty, the
// process sleeps in the kernel until the NIC's receive interrupt for
// the mailbox page fires (SysWaitWrite), then re-checks. One trap per
// sleep instead of a busy CPU — the receive side of the poll-vs-
// interrupt trade.
func (r *Receiver) RecvBlocking(c *proc.Context, buf []byte) (int, error) {
	slot := r.consumed % uint64(r.cfg.Slots)
	slotVA := r.va.mailboxR + vm.VAddr(slot)*vm.VAddr(r.cfg.stride())
	for {
		n, ok, err := r.TryRecv(c, buf)
		if err != nil {
			return 0, err
		}
		if ok {
			return n, nil
		}
		// Sleep until something lands in the mailbox page. Spurious
		// wakeups (a different slot, a header half) just loop.
		if _, err := c.Syscall(kernel.SysWaitWrite, uint64(slotVA)); err != nil {
			return 0, err
		}
	}
}

// Recv blocks (polling) until the next message arrives, copies it into
// buf, returns its length, and returns a flow-control credit to the
// sender. It runs entirely in user mode.
func (r *Receiver) Recv(c *proc.Context, buf []byte) (int, error) {
	slot := r.consumed % uint64(r.cfg.Slots)
	slotVA := r.va.mailboxR + vm.VAddr(slot)*vm.VAddr(r.cfg.stride())
	want := r.consumed + 1
	for {
		seq, err := c.Load(slotVA, phys.Size64)
		if err != nil {
			return 0, err
		}
		if seq == want {
			break
		}
		if seq > want {
			return 0, fmt.Errorf("msg: slot %d skipped to seq %d (want %d)", slot, seq, want)
		}
		c.Spin(500)
	}
	length, err := c.Load(slotVA+8, phys.Size64)
	if err != nil {
		return 0, err
	}
	if int(length) > r.cfg.SlotPayload {
		return 0, fmt.Errorf("msg: corrupt header: length %d", length)
	}
	if int(length) > len(buf) {
		return 0, fmt.Errorf("msg: message of %d bytes exceeds buffer %d", length, len(buf))
	}
	for off := 0; off < int(length); off += 8 {
		word, err := c.Load(slotVA+headerBytes+vm.VAddr(off), phys.Size64)
		if err != nil {
			return 0, err
		}
		for b := 0; b < 8 && off+b < int(length); b++ {
			buf[off+b] = byte(word >> (8 * b))
		}
	}
	r.consumed++
	r.stats.Messages++
	r.stats.Bytes += length
	// Return the credit (single remote write; ordering vs later slots
	// does not matter — credits only ever increase).
	if err := c.Store(r.va.creditW, phys.Size64, r.consumed); err != nil {
		return 0, err
	}
	if err := c.MB(); err != nil {
		return 0, err
	}
	return int(length), nil
}
