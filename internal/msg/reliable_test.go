package msg

import (
	"bytes"
	"fmt"
	"testing"

	userdma "uldma/internal/core"
	"uldma/internal/fault"
	"uldma/internal/net"
	"uldma/internal/proc"
	"uldma/internal/sim"
)

// reliableWorld builds a 2-node cluster with one reliable channel from
// node 0 to node 1, optionally behind a fault plan.
type reliableWorld struct {
	cluster *net.Cluster
	sender  *proc.Process
	recver  *proc.Process
	tx      *RSender
	rx      *RReceiver

	sendBody func(c *proc.Context, tx *RSender) error
	recvBody func(c *proc.Context, rx *RReceiver) error
}

func newReliableWorld(t *testing.T, cfg ReliableConfig, plan fault.Plan, seed uint64) *reliableWorld {
	t.Helper()
	method := userdma.ExtShadow{}
	cluster, err := net.NewCluster(2, userdma.ConfigFor(method), net.Gigabit())
	if err != nil {
		t.Fatal(err)
	}
	cluster.Fabric.SetFaultPlane(fault.New(plan, seed))
	w := &reliableWorld{cluster: cluster}
	n0, n1 := cluster.Nodes[0], cluster.Nodes[1]
	w.sender = n0.NewProcess("tx", func(c *proc.Context) error { return w.sendBody(c, w.tx) })
	w.recver = n1.NewProcess("rx", func(c *proc.Context) error { return w.recvBody(c, w.rx) })
	h, err := method.Attach(n0, w.sender)
	if err != nil {
		t.Fatal(err)
	}
	w.tx, w.rx, err = NewReliableChannel(n0, w.sender, h, n1, w.recver, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func (w *reliableWorld) run(t *testing.T) {
	t.Helper()
	if err := w.cluster.RunRoundRobin(8, 1<<62); err != nil {
		t.Fatal(err)
	}
	if w.sender.Err() != nil {
		t.Fatalf("sender: %v", w.sender.Err())
	}
	if w.recver.Err() != nil {
		t.Fatalf("receiver: %v", w.recver.Err())
	}
}

func rmsg(i int) []byte {
	return []byte(fmt.Sprintf("reliable-%03d:%x", i, i*0x9e37))
}

// TestReliableNoFaults: on a perfect fabric the reliable channel is
// just the base protocol plus a checksum — every message lands once,
// in order, with no retransmissions and zero kernel crossings.
func TestReliableNoFaults(t *testing.T) {
	w := newReliableWorld(t, ReliableConfig{Config: Config{Slots: 4, SlotPayload: 64}}, fault.Plan{}, 1)
	const total = 16
	w.sendBody = func(c *proc.Context, tx *RSender) error {
		for i := 0; i < total; i++ {
			if err := tx.Send(c, rmsg(i)); err != nil {
				return err
			}
		}
		return tx.Flush(c)
	}
	var received [][]byte
	w.recvBody = func(c *proc.Context, rx *RReceiver) error {
		buf := make([]byte, 64)
		for i := 0; i < total; i++ {
			n, err := rx.Recv(c, buf)
			if err != nil {
				return err
			}
			received = append(received, append([]byte(nil), buf[:n]...))
		}
		return nil
	}
	w.run(t)
	if len(received) != total {
		t.Fatalf("received %d messages", len(received))
	}
	for i, gotMsg := range received {
		if !bytes.Equal(gotMsg, rmsg(i)) {
			t.Fatalf("message %d = %q, want %q", i, gotMsg, rmsg(i))
		}
	}
	if st := w.tx.Stats(); st.Retransmits != 0 || st.Timeouts != 0 {
		t.Fatalf("fault-free run retransmitted: %+v", st)
	}
	if w.cluster.Nodes[0].Kernel.Stats().Syscalls != 0 ||
		w.cluster.Nodes[1].Kernel.Stats().Syscalls != 0 {
		t.Fatal("reliable channel crossed into a kernel")
	}
	if got := w.cluster.Fabric.Stats(); got.FaultDropped != 0 || got.Duplicated != 0 || got.Reordered != 0 {
		t.Fatalf("zero plan perturbed the fabric: %+v", got)
	}
}

// runReliableExchange pushes total messages through a faulty channel
// and returns what arrived. Any guest error is returned with the seed
// so the caller can print a replay line.
func runReliableExchange(t *testing.T, plan fault.Plan, seed uint64, cfg ReliableConfig, total int) ([][]byte, *reliableWorld, error) {
	t.Helper()
	w := newReliableWorld(t, cfg, plan, seed)
	w.sendBody = func(c *proc.Context, tx *RSender) error {
		for i := 0; i < total; i++ {
			if err := tx.Send(c, rmsg(i)); err != nil {
				return err
			}
		}
		return tx.Flush(c)
	}
	var received [][]byte
	w.recvBody = func(c *proc.Context, rx *RReceiver) error {
		buf := make([]byte, cfg.SlotPayload)
		for i := 0; i < total; i++ {
			n, err := rx.Recv(c, buf)
			if err != nil {
				return err
			}
			received = append(received, append([]byte(nil), buf[:n]...))
		}
		// Answer any final retransmissions (lost last ack).
		return rx.Linger(c, 20*sim.Millisecond)
	}
	if err := w.cluster.RunRoundRobin(8, 1<<62); err != nil {
		return received, w, err
	}
	if w.sender.Err() != nil {
		return received, w, fmt.Errorf("sender: %w", w.sender.Err())
	}
	if w.recver.Err() != nil {
		return received, w, fmt.Errorf("receiver: %w", w.recver.Err())
	}
	return received, w, nil
}

// TestReliableUnderSeededFaultPlans is the property test the subsystem
// answers to: for a range of seeds, drive the reliable ring through a
// seeded random fault plan mixing drop, duplication, reordering and
// jitter, and assert EXACTLY-ONCE, IN-ORDER delivery of every payload.
// A failing seed is printed in replayable form.
func TestReliableUnderSeededFaultPlans(t *testing.T) {
	const total = 24
	cfg := ReliableConfig{Config: Config{Slots: 4, SlotPayload: 64}}
	for seed := uint64(1); seed <= 12; seed++ {
		// Derive the plan itself from the seed, so one integer names the
		// whole scenario.
		prng := sim.NewRand(seed * 0x0123_4567_89ab_cdef)
		plan := fault.Plan{Default: fault.LinkFaults{
			Drop:      0.05 + float64(prng.Intn(20))/100, // 5%..24%
			Dup:       float64(prng.Intn(15)) / 100,      // 0%..14%
			Reorder:   float64(prng.Intn(20)) / 100,      // 0%..19%
			ReorderBy: 20 * sim.Microsecond,
			Jitter:    sim.Time(prng.Intn(5)) * sim.Microsecond,
		}}
		received, w, err := runReliableExchange(t, plan, seed, cfg, total)
		replay := fmt.Sprintf("replay: seed=%d plan=%+v", seed, plan.Default)
		if err != nil {
			t.Fatalf("%s\nexchange failed: %v", replay, err)
		}
		if len(received) != total {
			t.Fatalf("%s\ndelivered %d of %d messages", replay, len(received), total)
		}
		for i, gotMsg := range received {
			if !bytes.Equal(gotMsg, rmsg(i)) {
				t.Fatalf("%s\nmessage %d = %q, want %q (duplicate or reordered delivery)",
					replay, i, gotMsg, rmsg(i))
			}
		}
		if w.cluster.Nodes[0].Kernel.Stats().Syscalls != 0 ||
			w.cluster.Nodes[1].Kernel.Stats().Syscalls != 0 {
			t.Fatalf("%s\nrecovery crossed into a kernel", replay)
		}
	}
}

// TestReliableScriptedCommitDrop reproduces a targeted worst case: the
// fault plane drops exactly the commit word of one mid-stream message
// (found by counting remote writes per message: payload DMA + csum +
// len + seq = 4 fabric messages each on this configuration).
func TestReliableScriptedCommitDrop(t *testing.T) {
	const total = 6
	// Message i occupies deliveries 4i+1..4i+4 on link 0→1; the commit
	// word of message 3 (0-based 2) is delivery 12.
	plan := fault.Plan{Scripts: []fault.Script{{Src: 0, Dst: 1, Nth: 12}}}
	cfg := ReliableConfig{Config: Config{Slots: 4, SlotPayload: 64}}
	received, w, err := runReliableExchange(t, plan, 7, cfg, total)
	if err != nil {
		t.Fatal(err)
	}
	if len(received) != total {
		t.Fatalf("delivered %d of %d", len(received), total)
	}
	for i, gotMsg := range received {
		if !bytes.Equal(gotMsg, rmsg(i)) {
			t.Fatalf("message %d = %q", i, gotMsg)
		}
	}
	if st := w.tx.Stats(); st.Retransmits == 0 || st.Timeouts == 0 {
		t.Fatalf("scripted drop did not force a retransmission: %+v", st)
	}
	if got := w.cluster.Fabric.Stats().FaultDropped; got != 1 {
		t.Fatalf("FaultDropped = %d, want exactly the scripted message", got)
	}
}

// TestReliableCreditLossRecovery drops heavily on the REVERSE link
// (receiver→sender), so data always arrives but acks vanish: the
// receiver's periodic re-credit must keep the sender moving.
func TestReliableCreditLossRecovery(t *testing.T) {
	plan := fault.Plan{Links: map[fault.Link]fault.LinkFaults{
		{Src: 1, Dst: 0}: {Drop: 0.7},
	}}
	cfg := ReliableConfig{Config: Config{Slots: 2, SlotPayload: 64}}
	const total = 10
	received, w, err := runReliableExchange(t, plan, 3, cfg, total)
	if err != nil {
		t.Fatal(err)
	}
	if len(received) != total {
		t.Fatalf("delivered %d of %d", len(received), total)
	}
	if w.rx.Stats().Recredits == 0 {
		t.Fatalf("no re-credits under 70%% ack loss: rx=%+v tx=%+v", w.rx.Stats(), w.tx.Stats())
	}
}

// TestReliableLinkDownWindow: the forward link goes dark mid-stream;
// every message sent into the outage is retransmitted after it and the
// stream completes.
func TestReliableLinkDownWindow(t *testing.T) {
	plan := fault.Plan{Links: map[fault.Link]fault.LinkFaults{
		{Src: 0, Dst: 1}: {Down: []fault.Window{{From: 50 * sim.Microsecond, Until: 600 * sim.Microsecond}}},
	}}
	cfg := ReliableConfig{Config: Config{Slots: 4, SlotPayload: 64}}
	const total = 12
	received, w, err := runReliableExchange(t, plan, 5, cfg, total)
	if err != nil {
		t.Fatal(err)
	}
	if len(received) != total {
		t.Fatalf("delivered %d of %d", len(received), total)
	}
	for i, gotMsg := range received {
		if !bytes.Equal(gotMsg, rmsg(i)) {
			t.Fatalf("message %d = %q", i, gotMsg)
		}
	}
	if w.cluster.Fabric.Stats().FaultDropped == 0 {
		t.Fatal("nothing was sent into the outage window")
	}
	if w.tx.Stats().Retransmits == 0 {
		t.Fatal("outage did not force retransmission")
	}
}

// TestReliableSenderGivesUp: a permanently dark link must surface as a
// bounded error, not a hang.
func TestReliableSenderGivesUp(t *testing.T) {
	plan := fault.Plan{Links: map[fault.Link]fault.LinkFaults{
		{Src: 0, Dst: 1}: {Down: []fault.Window{{From: 0, Until: sim.Never}}},
	}}
	cfg := ReliableConfig{
		Config:     Config{Slots: 2, SlotPayload: 64},
		MaxRetries: 4,
	}
	w := newReliableWorld(t, cfg, plan, 9)
	var sendErr error
	w.sendBody = func(c *proc.Context, tx *RSender) error {
		if err := tx.Send(c, rmsg(0)); err != nil {
			return err
		}
		sendErr = tx.Flush(c)
		return nil // swallow: the give-up is the expected outcome
	}
	w.recvBody = func(c *proc.Context, rx *RReceiver) error {
		// The receiver never sees anything; just outwait the sender.
		return rx.Linger(c, 60*sim.Millisecond)
	}
	w.run(t)
	if sendErr == nil {
		t.Fatal("sender did not give up on a dead link")
	}
	if w.tx.Stats().Timeouts != 4 {
		t.Fatalf("timeouts = %d, want MaxRetries rounds", w.tx.Stats().Timeouts)
	}
}

func TestReliableConfigValidation(t *testing.T) {
	method := userdma.ExtShadow{}
	cluster, err := net.NewCluster(2, userdma.ConfigFor(method), net.Gigabit())
	if err != nil {
		t.Fatal(err)
	}
	n0, n1 := cluster.Nodes[0], cluster.Nodes[1]
	tx := n0.NewProcess("tx", func(c *proc.Context) error { return nil })
	rx := n1.NewProcess("rx", func(c *proc.Context) error { return nil })
	h, err := method.Attach(n0, tx)
	if err != nil {
		t.Fatal(err)
	}
	bad := []ReliableConfig{
		{Config: Config{Slots: -1, SlotPayload: 64}},
		{Config: Config{Slots: 4, SlotPayload: 7}},
		{Config: Config{Index: 99}},
		{Config: Config{Slots: 128, SlotPayload: 960}}, // ring exceeds window
	}
	for _, cfg := range bad {
		if _, _, err := NewReliableChannel(n0, tx, h, n1, rx, 1, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg.Config)
		}
	}
	if _, _, err := NewReliableChannel(n0, tx, nil, n1, rx, 1, ReliableConfig{}); err == nil {
		t.Error("nil handle accepted")
	}
	cluster.RunRoundRobin(1, 100)
}

func TestChecksumProperties(t *testing.T) {
	a := []byte("the quick brown fox")
	if checksum(1, a) == checksum(2, a) {
		t.Fatal("checksum ignores seq")
	}
	if checksum(1, a) != checksum(1, append([]byte(nil), a...)) {
		t.Fatal("checksum not deterministic")
	}
	b := append([]byte(nil), a...)
	b[len(b)-1] ^= 1
	if checksum(1, a) == checksum(1, b) {
		t.Fatal("checksum ignores payload bytes")
	}
	if checksum(1, a) == checksum(1, a[:len(a)-1]) {
		t.Fatal("checksum ignores length")
	}
	if checksum(1, nil) == checksum(2, nil) {
		t.Fatal("zero-length checksum ignores seq")
	}
}

func TestReliableStride(t *testing.T) {
	c := ReliableConfig{Config: Config{Slots: 8, SlotPayload: 960}}
	if c.rstride() != 1024 {
		t.Fatalf("rstride = %d", c.rstride()) // 24+960 rounds to 1024
	}
	if c.ringPages(8192) != 1 {
		t.Fatalf("ring pages = %d", c.ringPages(8192))
	}
	c = ReliableConfig{Config: Config{Slots: 8, SlotPayload: 8}}
	if c.rstride() != 64 {
		t.Fatalf("min rstride = %d", c.rstride())
	}
}