package msg

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	userdma "uldma/internal/core"
	"uldma/internal/machine"
	"uldma/internal/net"
	"uldma/internal/proc"
)

// channelWorld builds a 2-node cluster with one sender and one receiver
// process wired by a channel. Bodies are set after construction via the
// returned setters.
type channelWorld struct {
	cluster *net.Cluster
	sender  *proc.Process
	recver  *proc.Process
	tx      *Sender
	rx      *Receiver

	sendBody func(c *proc.Context, tx *Sender) error
	recvBody func(c *proc.Context, rx *Receiver) error
}

func newChannelWorld(t *testing.T, cfg Config) *channelWorld {
	t.Helper()
	method := userdma.ExtShadow{}
	cluster, err := net.NewCluster(2, userdma.ConfigFor(method), net.Gigabit())
	if err != nil {
		t.Fatal(err)
	}
	w := &channelWorld{cluster: cluster}
	n0, n1 := cluster.Nodes[0], cluster.Nodes[1]
	w.sender = n0.NewProcess("tx", func(c *proc.Context) error { return w.sendBody(c, w.tx) })
	w.recver = n1.NewProcess("rx", func(c *proc.Context) error { return w.recvBody(c, w.rx) })
	h, err := method.Attach(n0, w.sender)
	if err != nil {
		t.Fatal(err)
	}
	w.tx, w.rx, err = NewChannel(n0, w.sender, h, n1, w.recver, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func (w *channelWorld) run(t *testing.T) {
	t.Helper()
	if err := w.cluster.RunRoundRobin(8, 1<<62); err != nil {
		t.Fatal(err)
	}
	if w.sender.Err() != nil {
		t.Fatalf("sender: %v", w.sender.Err())
	}
	if w.recver.Err() != nil {
		t.Fatalf("receiver: %v", w.recver.Err())
	}
}

func TestSingleMessage(t *testing.T) {
	w := newChannelWorld(t, Config{})
	payload := []byte("user-level DMA without kernel modification")
	var got []byte
	w.sendBody = func(c *proc.Context, tx *Sender) error {
		return tx.Send(c, payload)
	}
	w.recvBody = func(c *proc.Context, rx *Receiver) error {
		buf := make([]byte, rx.cfg.SlotPayload)
		n, err := rx.Recv(c, buf)
		if err != nil {
			return err
		}
		got = append([]byte(nil), buf[:n]...)
		return nil
	}
	w.run(t)
	if !bytes.Equal(got, payload) {
		t.Fatalf("received %q, want %q", got, payload)
	}
	if w.tx.Stats().Messages != 1 || w.rx.Stats().Messages != 1 {
		t.Fatalf("stats tx=%+v rx=%+v", w.tx.Stats(), w.rx.Stats())
	}
}

// TestManyMessagesWrapAndFlowControl pushes 4x the ring depth through
// the channel with distinct contents, forcing slot reuse and sender
// stalls.
func TestManyMessagesWrapAndFlowControl(t *testing.T) {
	w := newChannelWorld(t, Config{Slots: 4, SlotPayload: 64})
	const total = 16
	mk := func(i int) []byte {
		return []byte(fmt.Sprintf("message-%02d:%s", i, strings.Repeat("x", i)))
	}
	w.sendBody = func(c *proc.Context, tx *Sender) error {
		for i := 0; i < total; i++ {
			if err := tx.Send(c, mk(i)); err != nil {
				return fmt.Errorf("send %d: %w", i, err)
			}
		}
		return nil
	}
	var received [][]byte
	w.recvBody = func(c *proc.Context, rx *Receiver) error {
		for i := 0; i < total; i++ {
			buf := make([]byte, 64)
			n, err := rx.Recv(c, buf)
			if err != nil {
				return fmt.Errorf("recv %d: %w", i, err)
			}
			received = append(received, append([]byte(nil), buf[:n]...))
		}
		return nil
	}
	w.run(t)
	for i, gotMsg := range received {
		if !bytes.Equal(gotMsg, mk(i)) {
			t.Fatalf("message %d = %q, want %q", i, gotMsg, mk(i))
		}
	}
	// With a slow receiver relative to ring depth, the sender stalled at
	// least once — flow control engaged rather than overwriting.
	if w.tx.Stats().FlowStalls == 0 {
		t.Log("note: no flow stalls observed (receiver kept up)")
	}
	if w.cluster.Nodes[0].Kernel.Stats().Syscalls != 0 ||
		w.cluster.Nodes[1].Kernel.Stats().Syscalls != 0 {
		t.Fatal("channel crossed into a kernel")
	}
}

func TestEmptyAndFullSlotMessages(t *testing.T) {
	w := newChannelWorld(t, Config{Slots: 2, SlotPayload: 64})
	full := bytes.Repeat([]byte{0xe7}, 64)
	var lens []int
	w.sendBody = func(c *proc.Context, tx *Sender) error {
		if err := tx.Send(c, nil); err != nil { // zero-length message
			return err
		}
		return tx.Send(c, full)
	}
	w.recvBody = func(c *proc.Context, rx *Receiver) error {
		for i := 0; i < 2; i++ {
			buf := make([]byte, 64)
			n, err := rx.Recv(c, buf)
			if err != nil {
				return err
			}
			lens = append(lens, n)
			if n == 64 && !bytes.Equal(buf, full) {
				return fmt.Errorf("full-slot payload corrupted")
			}
		}
		return nil
	}
	w.run(t)
	if len(lens) != 2 || lens[0] != 0 || lens[1] != 64 {
		t.Fatalf("lengths = %v", lens)
	}
}

func TestSendValidation(t *testing.T) {
	w := newChannelWorld(t, Config{Slots: 2, SlotPayload: 32})
	var sendErr error
	w.sendBody = func(c *proc.Context, tx *Sender) error {
		sendErr = tx.Send(c, make([]byte, 33)) // too big
		return nil
	}
	w.recvBody = func(c *proc.Context, rx *Receiver) error { return nil }
	w.run(t)
	if sendErr == nil || !strings.Contains(sendErr.Error(), "exceeds slot payload") {
		t.Fatalf("oversized send: %v", sendErr)
	}
	if w.tx.MaxPayload() != 32 {
		t.Fatalf("MaxPayload = %d", w.tx.MaxPayload())
	}
}

func TestRecvBufferTooSmall(t *testing.T) {
	w := newChannelWorld(t, Config{Slots: 2, SlotPayload: 64})
	var recvErr error
	w.sendBody = func(c *proc.Context, tx *Sender) error {
		return tx.Send(c, make([]byte, 48))
	}
	w.recvBody = func(c *proc.Context, rx *Receiver) error {
		_, recvErr = rx.Recv(c, make([]byte, 16))
		return nil
	}
	w.run(t)
	if recvErr == nil || !strings.Contains(recvErr.Error(), "exceeds buffer") {
		t.Fatalf("small buffer recv: %v", recvErr)
	}
}

func TestConfigValidation(t *testing.T) {
	method := userdma.ExtShadow{}
	cluster, err := net.NewCluster(2, userdma.ConfigFor(method), net.Gigabit())
	if err != nil {
		t.Fatal(err)
	}
	n0, n1 := cluster.Nodes[0], cluster.Nodes[1]
	tx := n0.NewProcess("tx", func(c *proc.Context) error { return nil })
	rx := n1.NewProcess("rx", func(c *proc.Context) error { return nil })
	h, err := method.Attach(n0, tx)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Slots: -1, SlotPayload: 64},
		{Slots: 4, SlotPayload: 7},    // not a multiple of 8
		{Slots: 4, SlotPayload: 8192}, // exceeds a staging page
	}
	for _, cfg := range bad {
		if _, _, err := NewChannel(n0, tx, h, n1, rx, 1, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, _, err := NewChannel(n0, tx, nil, n1, rx, 1, Config{}); err == nil {
		t.Error("nil handle accepted")
	}
	// Drain the idle processes.
	cluster.RunRoundRobin(1, 100)
}

// TestBidirectional runs two channels in opposite directions at once:
// a request/response exchange entirely at user level.
func TestBidirectional(t *testing.T) {
	method := userdma.ExtShadow{}
	cluster, err := net.NewCluster(2, userdma.ConfigFor(method), net.Gigabit())
	if err != nil {
		t.Fatal(err)
	}
	n0, n1 := cluster.Nodes[0], cluster.Nodes[1]

	var clientTx *Sender
	var clientRx *Receiver
	var serverTx *Sender
	var serverRx *Receiver
	var reply []byte

	client := n0.NewProcess("client", func(c *proc.Context) error {
		if err := clientTx.Send(c, []byte("ping")); err != nil {
			return err
		}
		buf := make([]byte, 64)
		n, err := clientRx.Recv(c, buf)
		if err != nil {
			return err
		}
		reply = append([]byte(nil), buf[:n]...)
		return nil
	})
	server := n1.NewProcess("server", func(c *proc.Context) error {
		buf := make([]byte, 64)
		n, err := serverRx.Recv(c, buf)
		if err != nil {
			return err
		}
		return serverTx.Send(c, append([]byte("pong:"), buf[:n]...))
	})

	hClient, err := method.Attach(n0, client)
	if err != nil {
		t.Fatal(err)
	}
	hServer, err := method.Attach(n1, server)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Slots: 2, SlotPayload: 64}
	clientTx, serverRx, err = NewChannel(n0, client, hClient, n1, server, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	serverTx, clientRx, err = NewChannel(n1, server, hServer, n0, client, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.RunRoundRobin(8, 1<<62); err != nil {
		t.Fatal(err)
	}
	if client.Err() != nil || server.Err() != nil {
		t.Fatalf("client=%v server=%v", client.Err(), server.Err())
	}
	if string(reply) != "pong:ping" {
		t.Fatalf("reply = %q", reply)
	}
	_ = machine.MaxNodes // keep machine import for the doc reference below
}

func TestTryRecv(t *testing.T) {
	w := newChannelWorld(t, Config{Slots: 2, SlotPayload: 64})
	var early bool
	var earlyChecked bool
	var gotLen int
	w.sendBody = func(c *proc.Context, tx *Sender) error {
		// Give the receiver time to poll emptily first.
		for i := 0; i < 5; i++ {
			c.Spin(2000)
		}
		return tx.Send(c, []byte("late message"))
	}
	w.recvBody = func(c *proc.Context, rx *Receiver) error {
		buf := make([]byte, 64)
		// First poll happens before anything was sent.
		n, ok, err := rx.TryRecv(c, buf)
		if err != nil {
			return err
		}
		early, earlyChecked = ok, true
		_ = n
		for {
			n, ok, err := rx.TryRecv(c, buf)
			if err != nil {
				return err
			}
			if ok {
				gotLen = n
				return nil
			}
			c.Spin(1000)
		}
	}
	w.run(t)
	if !earlyChecked || early {
		t.Fatal("first TryRecv should have found nothing")
	}
	if gotLen != len("late message") {
		t.Fatalf("TryRecv length = %d", gotLen)
	}
}

// TestRecvBlocking: the receiver sleeps in the kernel while the mailbox
// is empty (one trap, no spinning), wakes on the NIC receive interrupt,
// and still gets every message in order.
func TestRecvBlocking(t *testing.T) {
	w := newChannelWorld(t, Config{Slots: 2, SlotPayload: 64})
	const total = 5
	w.sendBody = func(c *proc.Context, tx *Sender) error {
		for i := 0; i < total; i++ {
			// Spread sends out so the receiver actually sleeps between
			// messages.
			for k := 0; k < 10; k++ {
				c.Spin(2000)
			}
			if err := tx.Send(c, []byte(fmt.Sprintf("blocked-%d", i))); err != nil {
				return err
			}
		}
		return nil
	}
	var got []string
	w.recvBody = func(c *proc.Context, rx *Receiver) error {
		buf := make([]byte, 64)
		for i := 0; i < total; i++ {
			n, err := rx.RecvBlocking(c, buf)
			if err != nil {
				return err
			}
			got = append(got, string(buf[:n]))
		}
		return nil
	}
	w.run(t)
	for i, s := range got {
		if s != fmt.Sprintf("blocked-%d", i) {
			t.Fatalf("message %d = %q", i, s)
		}
	}
	// The receiver trapped at most once per message plus a few spurious
	// wakeups — nothing like a poll loop.
	traps := w.cluster.Nodes[1].Kernel.Stats().Syscalls
	if traps == 0 {
		t.Fatal("receiver never slept — blocking path not exercised")
	}
	if traps > 4*total {
		t.Fatalf("receiver trapped %d times for %d messages", traps, total)
	}
	// The blocked receiver burned far less CPU than the wall time it
	// covered.
	if cpu := w.recver.CPUTime(); cpu*2 > w.cluster.Clock.Now() {
		t.Fatalf("receiver CPU %v vs wall %v — did it spin?", cpu, w.cluster.Clock.Now())
	}
}

// TestMultipleChannelsPerProcess: a router process holds two sender
// endpoints (distinct indices) to two different receivers at once.
func TestMultipleChannelsPerProcess(t *testing.T) {
	method := userdma.ExtShadow{}
	cluster, err := net.NewCluster(3, userdma.ConfigFor(method), net.Gigabit())
	if err != nil {
		t.Fatal(err)
	}
	n0, n1, n2 := cluster.Nodes[0], cluster.Nodes[1], cluster.Nodes[2]

	var tx1, tx2 *Sender
	var rx1, rx2 *Receiver
	router := n0.NewProcess("router", func(c *proc.Context) error {
		if err := tx1.Send(c, []byte("to-node-1")); err != nil {
			return err
		}
		return tx2.Send(c, []byte("to-node-2"))
	})
	var got1, got2 string
	sink1 := n1.NewProcess("sink1", func(c *proc.Context) error {
		buf := make([]byte, 64)
		n, err := rx1.Recv(c, buf)
		got1 = string(buf[:n])
		return err
	})
	sink2 := n2.NewProcess("sink2", func(c *proc.Context) error {
		buf := make([]byte, 64)
		n, err := rx2.Recv(c, buf)
		got2 = string(buf[:n])
		return err
	})
	h, err := method.Attach(n0, router)
	if err != nil {
		t.Fatal(err)
	}
	if tx1, rx1, err = NewChannel(n0, router, h, n1, sink1, 1, Config{Index: 0, Slots: 2, SlotPayload: 64}); err != nil {
		t.Fatal(err)
	}
	if tx2, rx2, err = NewChannel(n0, router, h, n2, sink2, 2, Config{Index: 1, Slots: 2, SlotPayload: 64}); err != nil {
		t.Fatal(err)
	}
	if err := cluster.RunRoundRobin(8, 1<<62); err != nil {
		t.Fatal(err)
	}
	for _, p := range []*proc.Process{router, sink1, sink2} {
		if p.Err() != nil {
			t.Fatalf("%s: %v", p.Name(), p.Err())
		}
	}
	if got1 != "to-node-1" || got2 != "to-node-2" {
		t.Fatalf("got1=%q got2=%q", got1, got2)
	}
}

func TestChannelIndexValidation(t *testing.T) {
	method := userdma.ExtShadow{}
	cluster, err := net.NewCluster(2, userdma.ConfigFor(method), net.Gigabit())
	if err != nil {
		t.Fatal(err)
	}
	n0, n1 := cluster.Nodes[0], cluster.Nodes[1]
	tx := n0.NewProcess("tx", func(c *proc.Context) error { return nil })
	rx := n1.NewProcess("rx", func(c *proc.Context) error { return nil })
	h, err := method.Attach(n0, tx)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewChannel(n0, tx, h, n1, rx, 1, Config{Index: 99}); err == nil {
		t.Fatal("index 99 accepted")
	}
	// A ring too large for the per-channel window.
	if _, _, err := NewChannel(n0, tx, h, n1, rx, 1, Config{Slots: 128, SlotPayload: 960}); err == nil {
		t.Fatal("oversized ring accepted")
	}
	cluster.RunRoundRobin(1, 100)
}

func TestConfigStride(t *testing.T) {
	c := Config{Slots: 8, SlotPayload: 960}
	if c.stride() != 1024 {
		t.Fatalf("stride = %d", c.stride())
	}
	c = Config{Slots: 8, SlotPayload: 8}
	if c.stride() != 64 {
		t.Fatalf("min stride = %d", c.stride())
	}
	if c.mailboxPages(8192) != 1 {
		t.Fatalf("mailbox pages = %d", c.mailboxPages(8192))
	}
	c = Config{Slots: 16, SlotPayload: 960}
	if c.mailboxPages(8192) != 2 {
		t.Fatalf("two-page mailbox = %d", c.mailboxPages(8192))
	}
}
