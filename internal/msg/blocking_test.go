package msg

import (
	"bytes"
	"fmt"
	"runtime"
	"runtime/debug"
	"testing"

	"uldma/internal/proc"
)

// TestSendBlockingWakesOncePerCredit pins the sender-side blocking
// bookkeeping: with a ring kept full by a slow receiver, a sender
// inside SendBlocking traps at most once per credit write (the wakeup
// IS the credit's receive interrupt — there is nothing else to wake
// on), instead of busy-looping the event queue.
func TestSendBlockingWakesOncePerCredit(t *testing.T) {
	w := newChannelWorld(t, Config{Slots: 2, SlotPayload: 64})
	const total = 10
	w.sendBody = func(c *proc.Context, tx *Sender) error {
		for i := 0; i < total; i++ {
			if err := tx.SendBlocking(c, []byte(fmt.Sprintf("blk-%02d", i))); err != nil {
				return err
			}
		}
		return nil
	}
	var got []string
	w.recvBody = func(c *proc.Context, rx *Receiver) error {
		buf := make([]byte, 64)
		for i := 0; i < total; i++ {
			// Drag our feet so the ring fills and the sender must block.
			for k := 0; k < 20; k++ {
				c.Spin(2000)
			}
			n, err := rx.Recv(c, buf)
			if err != nil {
				return err
			}
			got = append(got, string(buf[:n]))
		}
		return nil
	}
	w.run(t)
	for i, s := range got {
		if s != fmt.Sprintf("blk-%02d", i) {
			t.Fatalf("message %d = %q", i, s)
		}
	}
	stalls := w.tx.Stats().FlowStalls
	traps := w.cluster.Nodes[0].Kernel.Stats().Syscalls
	if stalls == 0 || traps == 0 {
		t.Fatalf("ring never filled (stalls=%d traps=%d) — blocking path not exercised", stalls, traps)
	}
	// Exactly one trap per stall iteration, and each wakeup is caused by
	// a credit write: the receiver wrote `total` credits, so the sender
	// cannot have woken more often than that.
	if traps != stalls {
		t.Fatalf("traps=%d stalls=%d — SendBlocking slept a different number of times than it stalled", traps, stalls)
	}
	if traps > total {
		t.Fatalf("traps=%d for %d credit writes — more than one wakeup per credit", traps, total)
	}
	// A blocked sender burns (almost) no CPU relative to the wall time
	// it covered — the opposite of a poll loop.
	if cpu := w.sender.CPUTime(); cpu*2 > w.cluster.Clock.Now() {
		t.Fatalf("sender CPU %v vs wall %v — did it spin?", cpu, w.cluster.Clock.Now())
	}
}

// mallocsForStream runs a fresh channel world pushing `total` messages
// and returns the host allocations the run performed.
func mallocsForStream(t *testing.T, total int) uint64 {
	t.Helper()
	w := newChannelWorld(t, Config{Slots: 4, SlotPayload: 64})
	// The engine's transfer log is a debugging aid that grows one record
	// per send; high-rate channels turn it off, which is part of the
	// allocation-free steady-state contract this test pins.
	for _, m := range w.cluster.Nodes {
		m.Engine.SetLogging(false)
	}
	payload := bytes.Repeat([]byte{0xab}, 64)
	w.sendBody = func(c *proc.Context, tx *Sender) error {
		for i := 0; i < total; i++ {
			if err := tx.Send(c, payload); err != nil {
				return err
			}
		}
		return nil
	}
	w.recvBody = func(c *proc.Context, rx *Receiver) error {
		buf := make([]byte, 64)
		for i := 0; i < total; i++ {
			if _, err := rx.Recv(c, buf); err != nil {
				return err
			}
		}
		return nil
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	w.run(t)
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestSendSteadyStateZeroAllocs asserts the steady-state send path is
// allocation-free on the host: the MARGINAL allocations per extra
// message — comparing a short stream against a 4x longer one on
// identical worlds, so setup and warmup cancel — must be ~0. (The send
// path is guest code interleaved across goroutines, so
// testing.AllocsPerRun cannot frame it; the world-level delta can.)
func TestSendSteadyStateZeroAllocs(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const small, big = 16, 64
	a := mallocsForStream(t, small)
	b := mallocsForStream(t, big)
	extra := int64(b) - int64(a)
	perMsg := float64(extra) / float64(big-small)
	if perMsg > 0.5 {
		t.Fatalf("steady-state send path allocates: %d extra mallocs over %d extra messages (%.2f/msg, want 0)",
			extra, big-small, perMsg)
	}
}