package msg_test

import (
	"fmt"
	"log"

	userdma "uldma/internal/core"
	"uldma/internal/msg"
	"uldma/internal/net"
	"uldma/internal/proc"
)

// Example wires a channel between two workstations and moves one
// message: payload by user-level DMA, commit and credit by remote
// writes — no kernel crossing after setup.
func Example() {
	method := userdma.ExtShadow{}
	cluster := net.MustNewCluster(2, userdma.ConfigFor(method), net.Gigabit())
	n0, n1 := cluster.Nodes[0], cluster.Nodes[1]

	var tx *msg.Sender
	var rx *msg.Receiver
	sender := n0.NewProcess("sender", func(c *proc.Context) error {
		return tx.Send(c, []byte("hello, workstation 1"))
	})
	receiver := n1.NewProcess("receiver", func(c *proc.Context) error {
		buf := make([]byte, 64)
		n, err := rx.Recv(c, buf)
		if err != nil {
			return err
		}
		fmt.Printf("received %q\n", buf[:n])
		return nil
	})

	h, err := method.Attach(n0, sender)
	if err != nil {
		log.Fatal(err)
	}
	if tx, rx, err = msg.NewChannel(n0, sender, h, n1, receiver, 1, msg.Config{}); err != nil {
		log.Fatal(err)
	}
	if err := cluster.RunRoundRobin(8, 1_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel crossings: %d + %d\n",
		n0.Kernel.Stats().Syscalls, n1.Kernel.Stats().Syscalls)
	// Output:
	// received "hello, workstation 1"
	// kernel crossings: 0 + 0
}
