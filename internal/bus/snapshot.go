package bus

// World snapshot/restore support (see internal/machine). The bus itself
// is mostly structural — address map, cost table, clock wiring — so a
// snapshot captures only the mutable run state: traffic counters and
// the outstanding DMA bus-mastering windows. The write buffer
// additionally captures its queued entries and its load-ordering mode
// (which methods toggle per-experiment after construction).

import "fmt"

// BusSnapshot captures a Bus's mutable state. See Bus.Snapshot.
type BusSnapshot struct {
	ctr        counters
	dmaWindows []stealWindow
}

// Snapshot captures the traffic counters and pending DMA windows.
func (b *Bus) Snapshot() *BusSnapshot {
	wins := make([]stealWindow, len(b.dmaWindows))
	copy(wins, b.dmaWindows)
	return &BusSnapshot{ctr: b.ctr, dmaWindows: wins}
}

// Restore rewinds the counters and DMA windows to the snapshot. Window
// times are absolute simulated instants, so this must be paired with a
// clock restore taken at the same moment.
func (b *Bus) Restore(s *BusSnapshot) {
	b.ctr = s.ctr
	b.dmaWindows = b.dmaWindows[:0]
	b.dmaWindows = append(b.dmaWindows, s.dmaWindows...)
}

// WBSnapshot captures a WriteBuffer's mutable state. See
// WriteBuffer.Snapshot.
type WBSnapshot struct {
	capacity   int
	strictLoad bool
	entries    []wbEntry
	stats      WBStats
}

// Snapshot captures the queued stores, counters and load-ordering mode.
func (w *WriteBuffer) Snapshot() *WBSnapshot {
	entries := make([]wbEntry, len(w.entries))
	copy(entries, w.entries)
	return &WBSnapshot{capacity: w.capacity, strictLoad: w.strictLoad, entries: entries, stats: w.stats}
}

// Restore rewinds the buffer to the snapshot. The snapshot must come
// from a buffer of the same capacity.
func (w *WriteBuffer) Restore(s *WBSnapshot) error {
	if s.capacity != w.capacity {
		return fmt.Errorf("bus: restore: snapshot from a %d-entry write buffer, buffer has %d", s.capacity, w.capacity)
	}
	w.strictLoad = s.strictLoad
	w.entries = w.entries[:0]
	w.entries = append(w.entries, s.entries...)
	w.stats = s.stats
	return nil
}
