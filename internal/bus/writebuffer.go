package bus

import (
	"uldma/internal/phys"
	"uldma/internal/sim"
)

// WriteBuffer models the CPU's posted-write buffer in front of the I/O
// bus. It is the hardware the paper's footnote 6 warns about:
//
//	"Some hardware devices (e.g. write buffers) may attempt to collapse
//	 successive read/write operations to the same address. In these
//	 cases appropriate memory barrier commands should be used to ensure
//	 that all issued instructions will reach the DMA engine."
//
// Two behaviours matter for the protocols:
//
//  1. Coalescing: a second store to an address already buffered merges
//     into the existing entry — the device sees ONE transaction. This
//     silently breaks "repeated passing of arguments", which depends on
//     the engine observing every repeated access.
//  2. Load forwarding: a load that hits a buffered store is serviced
//     from the buffer without any bus transaction, so the device never
//     sees the repeated load either.
//
// The MB (memory barrier) instruction drains the buffer, restoring the
// one-access-per-instruction property the protocols need. Experiment X3
// demonstrates both failure modes and the fix.
//
// Timing simplification: drains are synchronous — the CPU that forces an
// ordering point (load miss, MB, buffer full) pays the queued bus time
// right there. Since every initiation sequence ends with a status load,
// total initiation time equals the sum of its transaction times, which
// is how the paper's board behaved for back-to-back initiations to fresh
// addresses.
type WriteBuffer struct {
	bus        *Bus
	capacity   int
	coalesce   bool
	strictLoad bool // load misses drain the buffer (device-ordered)
	entries    []wbEntry
	stats      WBStats
}

type wbEntry struct {
	addr phys.Addr
	size phys.AccessSize
	val  uint64
}

// WBStats counts write-buffer activity.
type WBStats struct {
	Enqueued     uint64 // stores accepted into the buffer
	Coalesced    uint64 // stores merged into an existing entry
	LoadForwards uint64 // loads serviced from the buffer
	Drains       uint64 // drain operations (MB, load miss, overflow)
	DrainedOps   uint64 // individual stores pushed to the bus by drains
}

// NewWriteBuffer creates a buffer of the given entry capacity in front of
// b. coalesce selects whether same-address stores merge (real hardware:
// yes; set false for the ablation in experiment X3).
func NewWriteBuffer(b *Bus, capacity int, coalesce bool) *WriteBuffer {
	if capacity < 1 {
		panic("bus: write buffer capacity must be >= 1")
	}
	return &WriteBuffer{
		bus: b, capacity: capacity, coalesce: coalesce, strictLoad: true,
		// The buffer never holds more than capacity entries, so one
		// allocation covers the buffer's whole lifetime: drains shrink
		// the slice but keep the backing array (see Drain).
		entries: make([]wbEntry, 0, capacity),
	}
}

// SetDrainOnLoadMiss selects the buffer's load-ordering behaviour.
// true (the default) models a device-ordered bus like TurboChannel: a
// load miss first drains every posted store, so device accesses arrive
// in program order even without barriers. false models an aggressively
// weakly-ordered machine: loads bypass posted stores, and ONLY an
// explicit MB establishes order — the environment the paper's §3.4
// memory-barrier remark is about (ablation X3).
func (w *WriteBuffer) SetDrainOnLoadMiss(on bool) { w.strictLoad = on }

// Stats returns a snapshot of the counters.
func (w *WriteBuffer) Stats() WBStats { return w.stats }

// ResetStats zeroes the counters.
func (w *WriteBuffer) ResetStats() { w.stats = WBStats{} }

// Pending reports the number of buffered stores.
func (w *WriteBuffer) Pending() int { return len(w.entries) }

// Store posts an uncached write. The issuing CPU is charged only the
// cheap enqueue (modelled by the caller as an instruction-issue cost);
// bus time is paid when the entry drains. If the buffer is full it is
// drained first.
func (w *WriteBuffer) Store(clock *sim.Clock, enqueueCost sim.Time, addr phys.Addr, size phys.AccessSize, val uint64) error {
	clock.Advance(enqueueCost)
	// Fast path: an empty buffer (the common case — most initiation
	// sequences drain between stores) skips the coalesce scan and goes
	// straight to the append, which never allocates (capacity is
	// preallocated and preserved across drains).
	if w.coalesce && len(w.entries) > 0 {
		for i := range w.entries {
			if w.entries[i].addr == addr && w.entries[i].size == size {
				w.entries[i].val = val
				w.stats.Coalesced++
				return nil
			}
		}
	}
	if len(w.entries) >= w.capacity {
		if err := w.Drain(); err != nil {
			return err
		}
	}
	w.entries = append(w.entries, wbEntry{addr: addr, size: size, val: val})
	w.stats.Enqueued++
	return nil
}

// Load performs an uncached read with buffer semantics: a hit on a
// buffered store is forwarded without touching the bus (the collapse
// hazard); a miss drains the buffer (uncached ordering) and then issues
// the bus read.
func (w *WriteBuffer) Load(addr phys.Addr, size phys.AccessSize) (uint64, error) {
	if len(w.entries) == 0 {
		// Fast path: nothing posted — no forwarding possible, nothing
		// to drain; issue the bus read directly.
		return w.bus.Load(addr, size)
	}
	if w.coalesce {
		// Newest matching entry wins (program order).
		for i := len(w.entries) - 1; i >= 0; i-- {
			if w.entries[i].addr == addr && w.entries[i].size == size {
				w.stats.LoadForwards++
				return w.entries[i].val, nil
			}
		}
	}
	if w.strictLoad {
		if err := w.Drain(); err != nil {
			return 0, err
		}
	}
	return w.bus.Load(addr, size)
}

// RMW performs an atomic read-modify-write: buffered stores drain first
// (atomics are ordering points on every real machine), then the locked
// transaction issues.
func (w *WriteBuffer) RMW(addr phys.Addr, size phys.AccessSize, val uint64) (uint64, error) {
	if err := w.Drain(); err != nil {
		return 0, err
	}
	return w.bus.RMW(addr, size, val)
}

// Drain pushes every buffered store onto the bus in FIFO order. This is
// the effect of the MB instruction, and also runs implicitly before any
// load miss. The first store error aborts the drain; remaining entries
// stay queued.
func (w *WriteBuffer) Drain() error {
	if len(w.entries) == 0 {
		return nil
	}
	w.stats.Drains++
	for i := range w.entries {
		e := &w.entries[i]
		if err := w.bus.Store(e.addr, e.size, e.val); err != nil {
			// Keep the not-yet-pushed tail queued, compacted to the
			// front of the same backing array.
			n := copy(w.entries, w.entries[i:])
			w.entries = w.entries[:n]
			return err
		}
		w.stats.DrainedOps++
	}
	// Empty the buffer but keep the backing array: the next Store
	// appends without allocating.
	w.entries = w.entries[:0]
	return nil
}
