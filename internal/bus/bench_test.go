package bus

import (
	"testing"

	"uldma/internal/phys"
	"uldma/internal/sim"
)

// benchDev is a no-op device: the benchmarks measure the buffer and bus
// bookkeeping, not device behaviour.
type benchDev struct{ val uint64 }

func (d *benchDev) Name() string { return "bench" }
func (d *benchDev) Load(_ sim.Time, _ phys.Addr, _ phys.AccessSize) (uint64, int64, error) {
	return d.val, 0, nil
}
func (d *benchDev) Store(_ sim.Time, _ phys.Addr, _ phys.AccessSize, val uint64) (int64, error) {
	d.val = val
	return 0, nil
}

func benchBuffer(b *testing.B, coalesce bool) *WriteBuffer {
	b.Helper()
	clock := sim.NewClock()
	bus := New(clock, tcFreq, tcCost)
	if err := bus.Map(&benchDev{}, 0x1000, 0x1000); err != nil {
		b.Fatal(err)
	}
	return NewWriteBuffer(bus, 8, coalesce)
}

// BenchmarkWriteBufferStoreDrain is the initiation-sequence hot loop:
// post a handful of stores, then drain (the MB before the status load).
// The buffer preallocates its entries once, so the loop must be
// alloc-free.
func BenchmarkWriteBufferStoreDrain(b *testing.B) {
	clock := sim.NewClock()
	bus := New(clock, tcFreq, tcCost)
	if err := bus.Map(&benchDev{}, 0x1000, 0x1000); err != nil {
		b.Fatal(err)
	}
	w := NewWriteBuffer(bus, 8, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 4; k++ {
			if err := w.Store(clock, 80, phys.Addr(0x1000+8*k), phys.Size64, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Drain(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteBufferStoreCoalesce hammers one address so every store
// after the first merges into the buffered entry.
func BenchmarkWriteBufferStoreCoalesce(b *testing.B) {
	clock := sim.NewClock()
	bus := New(clock, tcFreq, tcCost)
	if err := bus.Map(&benchDev{}, 0x1000, 0x1000); err != nil {
		b.Fatal(err)
	}
	w := NewWriteBuffer(bus, 8, true)
	if err := w.Store(clock, 80, 0x1000, phys.Size64, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Store(clock, 80, 0x1000, phys.Size64, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteBufferLoadEmpty is the status-poll fast path: nothing
// posted, so the load must go straight to the bus without scanning or
// draining.
func BenchmarkWriteBufferLoadEmpty(b *testing.B) {
	w := benchBuffer(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Load(0x1000, phys.Size64); err != nil {
			b.Fatal(err)
		}
	}
}
