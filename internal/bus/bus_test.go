package bus

import (
	"errors"
	"strings"
	"testing"

	"uldma/internal/phys"
	"uldma/internal/sim"
)

// fakeDev is a scriptable bus target recording every access.
type fakeDev struct {
	name   string
	extra  int64
	regs   map[phys.Addr]uint64
	log    []string
	stores []uint64
	fail   error
}

func newFakeDev(name string, extra int64) *fakeDev {
	return &fakeDev{name: name, extra: extra, regs: map[phys.Addr]uint64{}}
}

func (d *fakeDev) Name() string { return d.name }

func (d *fakeDev) Load(_ sim.Time, addr phys.Addr, _ phys.AccessSize) (uint64, int64, error) {
	d.log = append(d.log, "L")
	if d.fail != nil {
		return 0, d.extra, d.fail
	}
	return d.regs[addr], d.extra, nil
}

func (d *fakeDev) Store(_ sim.Time, addr phys.Addr, _ phys.AccessSize, val uint64) (int64, error) {
	d.log = append(d.log, "S")
	if d.fail != nil {
		return d.extra, d.fail
	}
	d.regs[addr] = val
	d.stores = append(d.stores, val)
	return d.extra, nil
}

// tcCost is the TurboChannel-like cost table used throughout the tests:
// store 6 cycles, load 4+4 cycles, 80ns bus cycle.
var tcCost = CostConfig{StoreCycles: 6, LoadRequestCycles: 4, LoadReplyCycles: 4}

const tcFreq = sim.Hz(12_500_000)

func newTestBus() (*Bus, *sim.Clock) {
	clock := sim.NewClock()
	return New(clock, tcFreq, tcCost), clock
}

func TestMapAndDecode(t *testing.T) {
	b, _ := newTestBus()
	d1 := newFakeDev("nic", 0)
	d2 := newFakeDev("fb", 0)
	if err := b.Map(d1, 0x1000, 0x1000); err != nil {
		t.Fatal(err)
	}
	if err := b.Map(d2, 0x4000, 0x100); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		addr phys.Addr
		want string
		ok   bool
	}{
		{0x0fff, "", false},
		{0x1000, "nic", true},
		{0x1fff, "nic", true},
		{0x2000, "", false},
		{0x4000, "fb", true},
		{0x40ff, "fb", true},
		{0x4100, "", false},
	}
	for _, c := range cases {
		dev, ok := b.DeviceAt(c.addr)
		if ok != c.ok {
			t.Errorf("DeviceAt(%v) ok = %v, want %v", c.addr, ok, c.ok)
			continue
		}
		if ok && dev.Name() != c.want {
			t.Errorf("DeviceAt(%v) = %q, want %q", c.addr, dev.Name(), c.want)
		}
		if b.IsDevice(c.addr) != c.ok {
			t.Errorf("IsDevice(%v) = %v, want %v", c.addr, !c.ok, c.ok)
		}
	}
}

func TestMapRejectsOverlapAndDegenerate(t *testing.T) {
	b, _ := newTestBus()
	if err := b.Map(newFakeDev("a", 0), 0x1000, 0x1000); err != nil {
		t.Fatal(err)
	}
	if err := b.Map(newFakeDev("b", 0), 0x1800, 0x1000); err == nil {
		t.Fatal("overlapping Map accepted")
	}
	if err := b.Map(newFakeDev("c", 0), 0x0, 0x1001); err == nil {
		t.Fatal("overlap from below accepted")
	}
	if err := b.Map(newFakeDev("d", 0), 0x9000, 0); err == nil {
		t.Fatal("empty window accepted")
	}
	if err := b.Map(newFakeDev("e", 0), ^phys.Addr(0)-1, 16); err == nil {
		t.Fatal("wrapping window accepted")
	}
	// Adjacent windows are fine.
	if err := b.Map(newFakeDev("f", 0), 0x2000, 0x100); err != nil {
		t.Fatalf("adjacent window rejected: %v", err)
	}
}

func TestTransactionTiming(t *testing.T) {
	b, clock := newTestBus()
	d := newFakeDev("nic", 0)
	if err := b.Map(d, 0x1000, 0x1000); err != nil {
		t.Fatal(err)
	}
	if err := b.Store(0x1000, phys.Size64, 42); err != nil {
		t.Fatal(err)
	}
	if got, want := clock.Now(), tcFreq.Cycles(6); got != want {
		t.Fatalf("store cost %v, want %v (6 bus cycles)", got, want)
	}
	start := clock.Now()
	v, err := b.Load(0x1000, phys.Size64)
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Fatalf("load = %d, want 42", v)
	}
	if got, want := clock.Now()-start, tcFreq.Cycles(8); got != want {
		t.Fatalf("load cost %v, want %v (8 bus cycles)", got, want)
	}
}

func TestDeviceExtraCycles(t *testing.T) {
	b, clock := newTestBus()
	d := newFakeDev("nic", 2) // e.g. key check: +2 bus cycles
	if err := b.Map(d, 0x1000, 0x1000); err != nil {
		t.Fatal(err)
	}
	if err := b.Store(0x1000, phys.Size64, 1); err != nil {
		t.Fatal(err)
	}
	if got, want := clock.Now(), tcFreq.Cycles(6+2); got != want {
		t.Fatalf("store with extra cost %v, want %v", got, want)
	}
	start := clock.Now()
	if _, err := b.Load(0x1000, phys.Size64); err != nil {
		t.Fatal(err)
	}
	if got, want := clock.Now()-start, tcFreq.Cycles(8+2); got != want {
		t.Fatalf("load with extra cost %v, want %v", got, want)
	}
}

func TestUnmappedAccessErrors(t *testing.T) {
	b, _ := newTestBus()
	if err := b.Store(0x9999, phys.Size64, 0); err == nil ||
		!strings.Contains(err.Error(), "no device") {
		t.Fatalf("unmapped store: %v", err)
	}
	if _, err := b.Load(0x9999, phys.Size64); err == nil {
		t.Fatal("unmapped load succeeded")
	}
	if b.Stats().Errors != 2 {
		t.Fatalf("error counter = %d, want 2", b.Stats().Errors)
	}
}

func TestDeviceErrorPropagates(t *testing.T) {
	b, _ := newTestBus()
	d := newFakeDev("nic", 0)
	d.fail = errors.New("device wedged")
	if err := b.Map(d, 0x1000, 0x1000); err != nil {
		t.Fatal(err)
	}
	if err := b.Store(0x1000, phys.Size64, 1); err == nil {
		t.Fatal("device store error swallowed")
	}
	if _, err := b.Load(0x1000, phys.Size64); err == nil {
		t.Fatal("device load error swallowed")
	}
}

func TestStatsAndTrace(t *testing.T) {
	b, _ := newTestBus()
	d := newFakeDev("nic", 0)
	if err := b.Map(d, 0x1000, 0x1000); err != nil {
		t.Fatal(err)
	}
	var traced []string
	b.SetTrace(func(op string, addr phys.Addr, size phys.AccessSize, val uint64) {
		traced = append(traced, op)
	})
	b.Store(0x1000, phys.Size64, 1)
	b.Store(0x1008, phys.Size64, 2)
	b.Load(0x1000, phys.Size64)
	s := b.Stats()
	if s.Stores != 2 || s.Loads != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.BusyCycles != 2*6+8 {
		t.Fatalf("busy cycles = %d, want 20", s.BusyCycles)
	}
	if len(traced) != 3 || traced[0] != "store" || traced[2] != "load" {
		t.Fatalf("trace = %v", traced)
	}
	b.ResetStats()
	if b.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not zero")
	}
}

func TestDMACycleStealing(t *testing.T) {
	b, clock := newTestBus()
	d := newFakeDev("nic", 0)
	if err := b.Map(d, 0x1000, 0x1000); err != nil {
		t.Fatal(err)
	}
	// A DMA masters the bus from 1µs to 5µs.
	b.ReserveDMA(1*sim.Microsecond, 5*sim.Microsecond)
	// Before the window: normal cost (6 cycles).
	start := clock.Now()
	b.Store(0x1000, phys.Size64, 1)
	if got := clock.Now() - start; got != tcFreq.Cycles(6) {
		t.Fatalf("pre-window store cost %v", got)
	}
	// Inside the window: doubled.
	clock.AdvanceTo(2 * sim.Microsecond)
	start = clock.Now()
	b.Store(0x1008, phys.Size64, 1)
	if got := clock.Now() - start; got != tcFreq.Cycles(12) {
		t.Fatalf("contended store cost %v, want doubled", got)
	}
	if b.Stats().StolenCycles != 6 {
		t.Fatalf("stolen cycles = %d", b.Stats().StolenCycles)
	}
	// After the window: normal again, and the window is pruned.
	clock.AdvanceTo(6 * sim.Microsecond)
	start = clock.Now()
	b.Store(0x1010, phys.Size64, 1)
	if got := clock.Now() - start; got != tcFreq.Cycles(6) {
		t.Fatalf("post-window store cost %v", got)
	}
	// Degenerate windows are ignored.
	b.ReserveDMA(10, 10)
	b.ReserveDMA(10, 5)
	start = clock.Now()
	b.Store(0x1018, phys.Size64, 1)
	if got := clock.Now() - start; got != tcFreq.Cycles(6) {
		t.Fatalf("store after degenerate windows cost %v", got)
	}
}

// rmwDev extends fakeDev with exchange semantics.
type rmwDev struct{ *fakeDev }

func (d *rmwDev) RMW(_ sim.Time, addr phys.Addr, _ phys.AccessSize, val uint64) (uint64, int64, error) {
	d.log = append(d.log, "X")
	old := d.regs[addr]
	d.regs[addr] = val
	return old, d.extra, nil
}

func TestRMWTransaction(t *testing.T) {
	clock := sim.NewClock()
	cost := tcCost
	cost.RMWExtraCycles = 2
	b := New(clock, tcFreq, cost)
	d := &rmwDev{newFakeDev("nic", 0)}
	if err := b.Map(d, 0x1000, 0x1000); err != nil {
		t.Fatal(err)
	}
	d.regs[0x1000] = 111
	old, err := b.RMW(0x1000, phys.Size64, 222)
	if err != nil || old != 111 {
		t.Fatalf("RMW old = %d err %v, want 111", old, err)
	}
	if d.regs[0x1000] != 222 {
		t.Fatalf("RMW did not apply: reg = %d", d.regs[0x1000])
	}
	// Cost: load round trip (8) + RMW extra (2).
	if got, want := clock.Now(), tcFreq.Cycles(10); got != want {
		t.Fatalf("RMW cost %v, want %v", got, want)
	}
	if b.Stats().RMWs != 1 {
		t.Fatalf("RMW counter = %d", b.Stats().RMWs)
	}
}

func TestRMWUnsupportedDevice(t *testing.T) {
	b, _ := newTestBus()
	if err := b.Map(newFakeDev("plain", 0), 0x1000, 0x100); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RMW(0x1000, phys.Size64, 1); err == nil ||
		!strings.Contains(err.Error(), "does not support atomic") {
		t.Fatalf("RMW on plain device: %v", err)
	}
	if _, err := b.RMW(0x9000, phys.Size64, 1); err == nil {
		t.Fatal("RMW on unmapped address succeeded")
	}
}

func TestWriteBufferRMWDrainsFirst(t *testing.T) {
	b, clock := newTestBus()
	d := &rmwDev{newFakeDev("nic", 0)}
	if err := b.Map(d, 0x1000, 0x1000); err != nil {
		t.Fatal(err)
	}
	wb := NewWriteBuffer(b, 8, true)
	wb.Store(clock, 0, 0x1000, phys.Size64, 5)
	old, err := wb.RMW(0x1008, phys.Size64, 9)
	if err != nil || old != 0 {
		t.Fatalf("wb RMW: old=%d err=%v", old, err)
	}
	if len(d.log) != 2 || d.log[0] != "S" || d.log[1] != "X" {
		t.Fatalf("device order = %v, want [S X]", d.log)
	}
}

// --- write buffer ---

func newWBFixture(t *testing.T, coalesce bool) (*WriteBuffer, *fakeDev, *sim.Clock) {
	t.Helper()
	b, clock := newTestBus()
	d := newFakeDev("nic", 0)
	if err := b.Map(d, 0x1000, 0x1000); err != nil {
		t.Fatal(err)
	}
	return NewWriteBuffer(b, 8, coalesce), d, clock
}

func TestWriteBufferCoalescesSameAddress(t *testing.T) {
	wb, d, clock := newWBFixture(t, true)
	// Two stores to the SAME address: the device must see only one
	// transaction — this is the footnote-6 hazard that breaks the
	// repeated-passing protocol without barriers.
	wb.Store(clock, 0, 0x1000, phys.Size64, 111)
	wb.Store(clock, 0, 0x1000, phys.Size64, 222)
	if wb.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (coalesced)", wb.Pending())
	}
	if err := wb.Drain(); err != nil {
		t.Fatal(err)
	}
	if len(d.stores) != 1 || d.stores[0] != 222 {
		t.Fatalf("device saw stores %v, want [222]", d.stores)
	}
	if wb.Stats().Coalesced != 1 {
		t.Fatalf("coalesced counter = %d, want 1", wb.Stats().Coalesced)
	}
}

func TestWriteBufferBarrierDefeatsCoalescing(t *testing.T) {
	wb, d, clock := newWBFixture(t, true)
	wb.Store(clock, 0, 0x1000, phys.Size64, 111)
	if err := wb.Drain(); err != nil { // MB between the two stores
		t.Fatal(err)
	}
	wb.Store(clock, 0, 0x1000, phys.Size64, 222)
	if err := wb.Drain(); err != nil {
		t.Fatal(err)
	}
	if len(d.stores) != 2 {
		t.Fatalf("device saw %d stores, want 2 (MB defeats coalescing)", len(d.stores))
	}
}

func TestWriteBufferLoadForwarding(t *testing.T) {
	wb, d, clock := newWBFixture(t, true)
	d.regs[0x1000] = 999 // device register differs from buffered value
	wb.Store(clock, 0, 0x1000, phys.Size64, 5)
	v, err := wb.Load(0x1000, phys.Size64)
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Fatalf("forwarded load = %d, want buffered 5", v)
	}
	if len(d.log) != 0 {
		t.Fatalf("device saw %v during forwarded load; repeated LOAD never reached the engine", d.log)
	}
	if wb.Stats().LoadForwards != 1 {
		t.Fatalf("forward counter = %d", wb.Stats().LoadForwards)
	}
}

func TestWriteBufferLoadMissDrainsFirst(t *testing.T) {
	wb, d, clock := newWBFixture(t, true)
	d.regs[0x1080] = 77
	wb.Store(clock, 0, 0x1000, phys.Size64, 1)
	wb.Store(clock, 0, 0x1008, phys.Size64, 2)
	v, err := wb.Load(0x1080, phys.Size64)
	if err != nil {
		t.Fatal(err)
	}
	if v != 77 {
		t.Fatalf("load = %d, want 77", v)
	}
	// Device must have seen S,S (drain, FIFO) then L.
	want := []string{"S", "S", "L"}
	if len(d.log) != 3 || d.log[0] != want[0] || d.log[1] != want[1] || d.log[2] != want[2] {
		t.Fatalf("device access order = %v, want %v", d.log, want)
	}
	if wb.Pending() != 0 {
		t.Fatal("buffer not empty after load-miss drain")
	}
}

func TestWriteBufferTimingDeferred(t *testing.T) {
	wb, _, clock := newWBFixture(t, true)
	issue := sim.Time(7 * sim.Nanosecond)
	wb.Store(clock, issue, 0x1000, phys.Size64, 1)
	if clock.Now() != issue {
		t.Fatalf("posted store cost %v, want just the %v enqueue", clock.Now(), issue)
	}
	start := clock.Now()
	if err := wb.Drain(); err != nil {
		t.Fatal(err)
	}
	if got, want := clock.Now()-start, tcFreq.Cycles(6); got != want {
		t.Fatalf("drain cost %v, want %v", got, want)
	}
}

func TestWriteBufferOverflowDrains(t *testing.T) {
	b, clock := newTestBus()
	d := newFakeDev("nic", 0)
	if err := b.Map(d, 0x1000, 0x1000); err != nil {
		t.Fatal(err)
	}
	wb := NewWriteBuffer(b, 2, true)
	wb.Store(clock, 0, 0x1000, phys.Size64, 1)
	wb.Store(clock, 0, 0x1008, phys.Size64, 2)
	wb.Store(clock, 0, 0x1010, phys.Size64, 3) // overflow: first two drain
	if len(d.stores) != 2 || wb.Pending() != 1 {
		t.Fatalf("after overflow: device saw %v, pending %d; want 2 drained + 1 pending",
			d.stores, wb.Pending())
	}
}

func TestWriteBufferNoCoalesceMode(t *testing.T) {
	wb, d, clock := newWBFixture(t, false)
	wb.Store(clock, 0, 0x1000, phys.Size64, 1)
	wb.Store(clock, 0, 0x1000, phys.Size64, 2)
	if wb.Pending() != 2 {
		t.Fatalf("no-coalesce mode merged entries: pending = %d", wb.Pending())
	}
	// Loads must not forward in no-coalesce (strict-ordering) mode.
	d.regs[0x1000] = 0
	if _, err := wb.Load(0x1000, phys.Size64); err != nil {
		t.Fatal(err)
	}
	if d.log[len(d.log)-1] != "L" {
		t.Fatal("strict mode load did not reach device")
	}
}

func TestWriteBufferWeakOrderingBypass(t *testing.T) {
	// Ablation X3: with DrainOnLoadMiss off, a load overtakes posted
	// stores — the device sees L before S, which is exactly what breaks
	// the repeated-passing sequence without barriers.
	wb, d, clock := newWBFixture(t, true)
	wb.SetDrainOnLoadMiss(false)
	wb.Store(clock, 0, 0x1000, phys.Size64, 1)
	if _, err := wb.Load(0x1080, phys.Size64); err != nil {
		t.Fatal(err)
	}
	if len(d.log) != 1 || d.log[0] != "L" {
		t.Fatalf("device order = %v, want load bypassing the posted store", d.log)
	}
	if wb.Pending() != 1 {
		t.Fatal("posted store drained despite weak ordering")
	}
	// MB still establishes order.
	if err := wb.Drain(); err != nil {
		t.Fatal(err)
	}
	if len(d.log) != 2 || d.log[1] != "S" {
		t.Fatalf("device order after MB = %v", d.log)
	}
}

func TestWriteBufferDrainErrorKeepsRemainder(t *testing.T) {
	b, clock := newTestBus()
	d := newFakeDev("nic", 0)
	if err := b.Map(d, 0x1000, 0x100); err != nil {
		t.Fatal(err)
	}
	wb := NewWriteBuffer(b, 8, true)
	wb.Store(clock, 0, 0x9000, phys.Size64, 1) // unmapped: drain will fail
	wb.Store(clock, 0, 0x1000, phys.Size64, 2)
	if err := wb.Drain(); err == nil {
		t.Fatal("drain of unmapped store succeeded")
	}
	if wb.Pending() != 2 {
		t.Fatalf("failed drain consumed entries: pending = %d, want 2", wb.Pending())
	}
}

// TestWriteBufferMatchesReferenceModel checks the buffer against an
// independent specification under random store/load/drain streams: the
// device must observe, in order, exactly the non-coalesced stores, and
// every load must return the newest value by program order.
func TestWriteBufferMatchesReferenceModel(t *testing.T) {
	addrs := []phys.Addr{0x1000, 0x1008, 0x1010}
	for seed := uint64(1); seed <= 50; seed++ {
		rng := sim.NewRand(seed)
		b, clock := newTestBus()
		d := newFakeDev("nic", 0)
		if err := b.Map(d, 0x1000, 0x1000); err != nil {
			t.Fatal(err)
		}
		wb := NewWriteBuffer(b, 4, true)

		// Reference: the program-order value of every address, plus the
		// queue of (addr, val) pairs the device must eventually see.
		progOrder := map[phys.Addr]uint64{}
		devSeen := map[phys.Addr]uint64{} // what has drained so far
		val := uint64(1)
		for step := 0; step < 60; step++ {
			addr := addrs[rng.Intn(len(addrs))]
			switch rng.Intn(3) {
			case 0: // store
				val++
				if err := wb.Store(clock, 0, addr, phys.Size64, val); err != nil {
					t.Fatal(err)
				}
				progOrder[addr] = val
			case 1: // load: must observe program order regardless of drains
				got, err := wb.Load(addr, phys.Size64)
				if err != nil {
					t.Fatal(err)
				}
				if got != progOrder[addr] {
					t.Fatalf("seed %d step %d: load %v = %d, program order says %d",
						seed, step, addr, got, progOrder[addr])
				}
			default: // barrier
				if err := wb.Drain(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := wb.Drain(); err != nil {
			t.Fatal(err)
		}
		// After the final drain the device agrees with program order.
		for a, want := range progOrder {
			if d.regs[a] != want {
				t.Fatalf("seed %d: device %v = %d, want %d", seed, a, d.regs[a], want)
			}
		}
		_ = devSeen
	}
}

func TestWriteBufferCapacityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 did not panic")
		}
	}()
	b, _ := newTestBus()
	NewWriteBuffer(b, 0, true)
}

func TestNewBusNilClockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil clock did not panic")
		}
	}()
	New(nil, tcFreq, tcCost)
}
