// Package bus models the workstation's I/O bus (TurboChannel in the
// paper's prototype; PCI in the paper's outlook) plus the CPU-side write
// buffer that sits in front of it.
//
// Everything the paper measures is, at bottom, a handful of *uncached bus
// transactions*: user-level DMA initiation is 2-5 loads/stores that cross
// this bus into the network interface's shadow-address window. The bus
// therefore carries the timing model: each transaction costs a fixed
// number of bus cycles (stores are cheaper than loads, which must wait
// for the reply), and devices may add per-access latency (e.g. the DMA
// engine's key check).
package bus

import (
	"fmt"
	"sort"

	"uldma/internal/obs"
	"uldma/internal/phys"
	"uldma/internal/sim"
)

// Device is a bus target occupying a physical address window. The DMA
// engine, its shadow-address window, and its register-context pages are
// all Devices.
//
// Load and Store are invoked after the bus has charged its own
// transaction cycles; the returned extraCycles are additional *bus*
// cycles of device-side processing charged on top (0 for most accesses).
type Device interface {
	// Name identifies the device in traces and errors.
	Name() string
	// Load services a read of size bytes at absolute physical address
	// addr (guaranteed to be inside the device's mapped window).
	Load(now sim.Time, addr phys.Addr, size phys.AccessSize) (val uint64, extraCycles int64, err error)
	// Store services a write.
	Store(now sim.Time, addr phys.Addr, size phys.AccessSize, val uint64) (extraCycles int64, err error)
}

// RMWDevice is implemented by devices that support atomic
// read-modify-write bus transactions (the network interface's
// compare-and-exchange / atomic-operation unit). A device that does not
// implement it rejects RMW accesses.
type RMWDevice interface {
	Device
	// RMW atomically applies val at addr and returns the previous value
	// (exact semantics are device-defined: the DMA engine decodes an
	// operation from the address). Atomicity is inherent: the bus
	// arbiter holds the bus for the whole transaction.
	RMW(now sim.Time, addr phys.Addr, size phys.AccessSize, val uint64) (old uint64, extraCycles int64, err error)
}

// CostConfig gives the bus-cycle cost of each transaction type. The
// defaults in the machine presets are calibrated so the Alpha 3000/300 +
// 12.5 MHz TurboChannel model lands on the paper's Table 1.
type CostConfig struct {
	// StoreCycles is the total bus occupancy of a write transaction
	// (address + data phase). Writes are posted: the CPU does not wait
	// for a device acknowledgement.
	StoreCycles int64
	// LoadRequestCycles is the address phase of a read.
	LoadRequestCycles int64
	// LoadReplyCycles is the data-return phase of a read. The issuing
	// CPU stalls for request + device extra + reply.
	LoadReplyCycles int64
	// RMWExtraCycles is charged on top of a full load round trip for an
	// atomic read-modify-write (the bus is held locked while the device
	// applies the operation).
	RMWExtraCycles int64
}

// Stats counts bus traffic for utilization reports. It is a read-only
// view assembled from the obs counter cells on demand (the thin
// compatibility accessor over the unified metrics plane).
type Stats struct {
	Loads        uint64
	Stores       uint64
	RMWs         uint64
	BusyCycles   int64 // total bus cycles consumed by transactions
	StolenCycles int64 // extra cycles paid to DMA contention
	Errors       uint64
}

// counters is the live metric storage: typed obs cells, registered
// with the machine's registry at construction and captured by value in
// snapshots so bus counters rewind with the world.
type counters struct {
	loads        obs.Counter
	stores       obs.Counter
	rmws         obs.Counter
	busyCycles   obs.Gauge
	stolenCycles obs.Gauge
	errors       obs.Counter
}

// Error describes a failed bus transaction.
type Error struct {
	Op   string
	Addr phys.Addr
	Why  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("bus: %s at %v: %s", e.Op, e.Addr, e.Why)
}

type mapping struct {
	base phys.Addr
	size uint64
	dev  Device
}

// Bus is the I/O bus: an address decoder plus the transaction cost model.
// All uncached CPU accesses and all write-buffer drains pass through it.
// The bus advances the shared simulation clock by the cost of every
// transaction it carries.
type Bus struct {
	clock    *sim.Clock
	freq     sim.Hz
	cost     CostConfig
	mappings []mapping // sorted by base
	ctr      counters
	trace    func(op string, addr phys.Addr, size phys.AccessSize, val uint64)

	// tr is the obs trace spine (nil = tracing disabled, the zero-cost
	// fast path); node is the cluster node id stamped on events.
	tr   *obs.Trace
	node int32

	// DMA cycle stealing: while a bus-mastering transfer is active
	// (reserved by the engine), CPU transactions get every other cycle,
	// i.e. their bus time doubles. Windows are pruned as they expire.
	dmaWindows []stealWindow
}

type stealWindow struct{ start, end sim.Time }

// New creates a bus in the given clock domain.
func New(clock *sim.Clock, freq sim.Hz, cost CostConfig) *Bus {
	if clock == nil {
		panic("bus: nil clock")
	}
	return &Bus{clock: clock, freq: freq, cost: cost}
}

// Freq returns the bus clock frequency.
func (b *Bus) Freq() sim.Hz { return b.freq }

// Cost returns the transaction cost table.
func (b *Bus) Cost() CostConfig { return b.cost }

// Stats returns a snapshot of the traffic counters.
func (b *Bus) Stats() Stats {
	return Stats{
		Loads:        b.ctr.loads.Value(),
		Stores:       b.ctr.stores.Value(),
		RMWs:         b.ctr.rmws.Value(),
		BusyCycles:   b.ctr.busyCycles.Value(),
		StolenCycles: b.ctr.stolenCycles.Value(),
		Errors:       b.ctr.errors.Value(),
	}
}

// ResetStats zeroes the traffic counters.
func (b *Bus) ResetStats() { b.ctr = counters{} }

// RegisterMetrics publishes the bus's counters in a registry.
func (b *Bus) RegisterMetrics(r *obs.Registry) {
	r.RegisterCounter("bus.loads", &b.ctr.loads)
	r.RegisterCounter("bus.stores", &b.ctr.stores)
	r.RegisterCounter("bus.rmws", &b.ctr.rmws)
	r.RegisterGauge("bus.busy_cycles", &b.ctr.busyCycles)
	r.RegisterGauge("bus.stolen_cycles", &b.ctr.stolenCycles)
	r.RegisterCounter("bus.errors", &b.ctr.errors)
}

// SetTracer attaches (or, with nil, detaches) the obs trace spine.
// Every successful transaction is emitted as a CatBus instant, and
// every DMA bus-mastering window as a CatDMA span, stamped with node.
// Independent of the legacy SetTrace hook, which tests and the
// internal/trace adapter keep using.
func (b *Bus) SetTracer(t *obs.Trace, node int32) {
	b.tr = t
	b.node = node
}

// SetTrace installs a hook called for every transaction (nil to disable).
// Used by the trace tooling and by protocol-level tests that assert on
// the exact access stream a method generates.
func (b *Bus) SetTrace(fn func(op string, addr phys.Addr, size phys.AccessSize, val uint64)) {
	b.trace = fn
}

// Map attaches dev at the window [base, base+size). Windows must not
// overlap.
func (b *Bus) Map(dev Device, base phys.Addr, size uint64) error {
	if size == 0 {
		return &Error{Op: "map", Addr: base, Why: "empty window"}
	}
	end := uint64(base) + size
	if end < uint64(base) {
		return &Error{Op: "map", Addr: base, Why: "window wraps address space"}
	}
	for _, m := range b.mappings {
		mEnd := uint64(m.base) + m.size
		if uint64(base) < mEnd && end > uint64(m.base) {
			return &Error{Op: "map", Addr: base,
				Why: fmt.Sprintf("window overlaps device %q at %v", m.dev.Name(), m.base)}
		}
	}
	b.mappings = append(b.mappings, mapping{base: base, size: size, dev: dev})
	sort.Slice(b.mappings, func(i, j int) bool { return b.mappings[i].base < b.mappings[j].base })
	return nil
}

// DeviceAt returns the device mapped at addr, if any. The CPU uses this
// to classify a physical address as an uncached device access versus a
// plain memory access.
func (b *Bus) DeviceAt(addr phys.Addr) (Device, bool) {
	i := sort.Search(len(b.mappings), func(i int) bool {
		return uint64(b.mappings[i].base)+b.mappings[i].size > uint64(addr)
	})
	if i < len(b.mappings) && addr >= b.mappings[i].base {
		return b.mappings[i].dev, true
	}
	return nil, false
}

// IsDevice reports whether addr decodes to a mapped device window.
func (b *Bus) IsDevice(addr phys.Addr) bool {
	_, ok := b.DeviceAt(addr)
	return ok
}

// ReserveDMA marks [start, end) as a window in which a DMA transfer
// masters the bus. CPU transactions starting inside such a window pay
// double bus time (the engine takes alternate cycles). The machine
// wires the DMA engine to call this for every local transfer.
func (b *Bus) ReserveDMA(start, end sim.Time) {
	if end <= start {
		return
	}
	if b.tr != nil {
		b.tr.Span(start, end-start, obs.CatDMA, "bus-master", b.node, -1, uint64(start), uint64(end), 0)
	}
	b.dmaWindows = append(b.dmaWindows, stealWindow{start: start, end: end})
}

// contended reports whether a transaction starting now contends with a
// bus-mastering DMA, pruning expired windows as a side effect.
func (b *Bus) contended(now sim.Time) bool {
	live := b.dmaWindows[:0]
	hit := false
	for _, w := range b.dmaWindows {
		if w.end <= now {
			continue
		}
		live = append(live, w)
		if w.start <= now {
			hit = true
		}
	}
	b.dmaWindows = live
	return hit
}

func (b *Bus) charge(cycles int64) {
	if b.contended(b.clock.Now()) {
		b.ctr.stolenCycles.Add(cycles)
		cycles *= 2
	}
	b.ctr.busyCycles.Add(cycles)
	b.clock.Advance(b.freq.Cycles(cycles))
}

// Load performs an uncached read transaction. The clock is advanced by
// the full round trip (request + device latency + reply) before Load
// returns, modelling the CPU stall on an uncached load.
func (b *Bus) Load(addr phys.Addr, size phys.AccessSize) (uint64, error) {
	dev, ok := b.DeviceAt(addr)
	if !ok {
		b.ctr.errors.Inc()
		return 0, &Error{Op: "load", Addr: addr, Why: "no device decodes this address"}
	}
	b.ctr.loads.Inc()
	b.charge(b.cost.LoadRequestCycles)
	val, extra, err := dev.Load(b.clock.Now(), addr, size)
	if extra > 0 {
		b.charge(extra)
	}
	b.charge(b.cost.LoadReplyCycles)
	if err != nil {
		b.ctr.errors.Inc()
		return 0, err
	}
	if b.trace != nil {
		b.trace("load", addr, size, val)
	}
	if b.tr != nil {
		b.tr.Instant(b.clock.Now(), obs.CatBus, "load", b.node, -1, uint64(addr), uint64(size), val)
	}
	return val, nil
}

// Store performs an uncached write transaction. Writes are posted, but
// the bus is still occupied for StoreCycles, and on a single-master
// system the issuing CPU (or its draining write buffer) pays that time.
func (b *Bus) Store(addr phys.Addr, size phys.AccessSize, val uint64) error {
	dev, ok := b.DeviceAt(addr)
	if !ok {
		b.ctr.errors.Inc()
		return &Error{Op: "store", Addr: addr, Why: "no device decodes this address"}
	}
	b.ctr.stores.Inc()
	b.charge(b.cost.StoreCycles)
	extra, err := dev.Store(b.clock.Now(), addr, size, val)
	if extra > 0 {
		b.charge(extra)
	}
	if err != nil {
		b.ctr.errors.Inc()
		return err
	}
	if b.trace != nil {
		b.trace("store", addr, size, val)
	}
	if b.tr != nil {
		b.tr.Instant(b.clock.Now(), obs.CatBus, "store", b.node, -1, uint64(addr), uint64(size), val)
	}
	return nil
}

// RMW performs an atomic read-modify-write transaction: a locked load
// round trip plus RMWExtraCycles. The target device must implement
// RMWDevice.
func (b *Bus) RMW(addr phys.Addr, size phys.AccessSize, val uint64) (uint64, error) {
	dev, ok := b.DeviceAt(addr)
	if !ok {
		b.ctr.errors.Inc()
		return 0, &Error{Op: "rmw", Addr: addr, Why: "no device decodes this address"}
	}
	rdev, ok := dev.(RMWDevice)
	if !ok {
		b.ctr.errors.Inc()
		return 0, &Error{Op: "rmw", Addr: addr,
			Why: fmt.Sprintf("device %q does not support atomic transactions", dev.Name())}
	}
	b.ctr.rmws.Inc()
	b.charge(b.cost.LoadRequestCycles)
	old, extra, err := rdev.RMW(b.clock.Now(), addr, size, val)
	if extra > 0 {
		b.charge(extra)
	}
	b.charge(b.cost.LoadReplyCycles + b.cost.RMWExtraCycles)
	if err != nil {
		b.ctr.errors.Inc()
		return 0, err
	}
	if b.trace != nil {
		b.trace("rmw", addr, size, val)
	}
	if b.tr != nil {
		b.tr.Instant(b.clock.Now(), obs.CatBus, "rmw", b.node, -1, uint64(addr), uint64(size), val)
	}
	return old, nil
}
