package machine

// Property tests for world snapshot/restore: a restored or cloned
// world must be observationally indistinguishable from a freshly built
// one — same guest results, same simulated timestamps, same machine
// fingerprint — and snapshots must be immune to post-snapshot writes
// (copy-on-write isolation). `make ci` runs these under -race, which
// also pins the contract that clones of one snapshot share pages
// safely across goroutines.

import (
	"testing"

	"uldma/internal/dma"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/vm"
)

// snapshotPresets is every machine preset the harness builds worlds
// from, in the paired-DMA shape the kernel workload needs.
func snapshotPresets() []struct {
	name string
	cfg  Config
} {
	return []struct {
		name string
		cfg  Config
	}{
		{"Alpha3000TC", Alpha3000TC(dma.ModePaired, 0)},
		{"PCI33", PCI(dma.ModePaired, 0, 33 * sim.MHz)},
		{"Workstation1994", Workstation1994(dma.ModePaired, 0)},
		{"Workstation2000", Workstation2000(dma.ModePaired, 0)},
	}
}

// dmaWorkload spawns a process that fills a source page and traps into
// the kernel for a DMA, then returns the syscall status and the
// settled clock. Identical worlds must produce identical pairs.
func dmaWorkload(t *testing.T, m *Machine) (uint64, sim.Time) {
	t.Helper()
	const srcVA, dstVA = vm.VAddr(0x10000), vm.VAddr(0x20000)
	var status uint64
	p := m.NewProcess("w", func(ctx *proc.Context) error {
		for i := 0; i < 4; i++ {
			if err := ctx.Store(srcVA+vm.VAddr(8*i), phys.Size64, uint64(0x2222*(i+1))); err != nil {
				return err
			}
		}
		st, err := ctx.Syscall(1 /* kernel.SysDMA */, uint64(srcVA), uint64(dstVA), 64)
		status = st
		return err
	})
	if _, err := m.Kernel.AllocPage(p.AddressSpace(), srcVA, vm.Read|vm.Write); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Kernel.AllocPage(p.AddressSpace(), dstVA, vm.Read|vm.Write); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(proc.NewRoundRobin(64), 100_000); err != nil {
		t.Fatal(err)
	}
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
	m.Settle()
	return status, m.Clock.Now()
}

// TestSnapshotRestoreEquivalence is the central property: for every
// preset, a clone of a pristine snapshot and the origin restored from
// it behave exactly like a fresh machine.New — guest status, simulated
// end time and full machine fingerprint.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	for _, tc := range snapshotPresets() {
		t.Run(tc.name, func(t *testing.T) {
			fresh := MustNew(tc.cfg)
			wantStatus, wantEnd := dmaWorkload(t, fresh)
			wantFP := fresh.Fingerprint()

			origin := MustNew(tc.cfg)
			snap, err := origin.Snapshot()
			if err != nil {
				t.Fatal(err)
			}

			// Clone of the pristine snapshot ≡ fresh machine.
			clone, err := NewFromSnapshot(snap)
			if err != nil {
				t.Fatal(err)
			}
			if st, end := dmaWorkload(t, clone); st != wantStatus || end != wantEnd {
				t.Fatalf("clone: (status, end) = (%#x, %v), fresh got (%#x, %v)", st, end, wantStatus, wantEnd)
			}
			if fp := clone.Fingerprint(); fp != wantFP {
				t.Fatalf("clone fingerprint diverged from fresh:\n  clone %v\n  fresh %v", fp, wantFP)
			}

			// The origin itself ≡ fresh, and after Restore it is again.
			if st, end := dmaWorkload(t, origin); st != wantStatus || end != wantEnd {
				t.Fatalf("origin first run: (%#x, %v), want (%#x, %v)", st, end, wantStatus, wantEnd)
			}
			if err := origin.Restore(snap); err != nil {
				t.Fatal(err)
			}
			if st, end := dmaWorkload(t, origin); st != wantStatus || end != wantEnd {
				t.Fatalf("origin after restore: (%#x, %v), want (%#x, %v)", st, end, wantStatus, wantEnd)
			}
			if fp := origin.Fingerprint(); fp != wantFP {
				t.Fatalf("restored-origin fingerprint diverged from fresh:\n  origin %v\n  fresh  %v", fp, wantFP)
			}

			// Mid-life snapshot: capture the used world, clone it, and
			// both must continue identically.
			used, err := origin.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			usedClone, err := NewFromSnapshot(used)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := usedClone.Fingerprint(), origin.Fingerprint(); got != want {
				t.Fatalf("mid-life clone fingerprint diverged:\n  clone  %v\n  origin %v", got, want)
			}
			st1, end1 := dmaWorkload(t, origin)
			st2, end2 := dmaWorkload(t, usedClone)
			if st1 != st2 || end1 != end2 {
				t.Fatalf("mid-life continuation diverged: origin (%#x, %v), clone (%#x, %v)", st1, end1, st2, end2)
			}
			if got, want := usedClone.Fingerprint(), origin.Fingerprint(); got != want {
				t.Fatalf("post-continuation fingerprints diverged:\n  clone  %v\n  origin %v", got, want)
			}

			// In-place Restore is origin-only; a clone must refuse.
			if err := clone.Restore(snap); err == nil {
				t.Fatal("clone.Restore(foreign snapshot) succeeded, want error")
			}
		})
	}
}

// TestSnapshotCOWIsolation pins the copy-on-write contract: a snapshot
// is immutable under post-snapshot writes by the origin OR by any
// clone, and clones never see each other's writes.
func TestSnapshotCOWIsolation(t *testing.T) {
	const addr = phys.Addr(0x100000)
	const pristine = uint64(0xabababababababab)

	origin := MustNew(Alpha3000TC(dma.ModePaired, 0))
	if err := origin.Mem.Fill(addr, 64, 0xab); err != nil {
		t.Fatal(err)
	}
	snap, err := origin.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	read := func(m *Machine, who string) uint64 {
		v, err := m.Mem.Read(addr, phys.Size64)
		if err != nil {
			t.Fatalf("%s: %v", who, err)
		}
		return v
	}

	// Origin mutates after the snapshot...
	if err := origin.Mem.Fill(addr, 64, 0xcd); err != nil {
		t.Fatal(err)
	}
	// ...and a clone taken afterwards still sees the snapshot bytes.
	c1, err := NewFromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if got := read(c1, "clone1"); got != pristine {
		t.Fatalf("clone sees origin's post-snapshot write: %#x", got)
	}

	// A clone's writes stay private: invisible to the origin, to the
	// snapshot, and to later clones.
	if err := c1.Mem.Fill(addr, 64, 0xef); err != nil {
		t.Fatal(err)
	}
	if got := read(origin, "origin"); got != 0xcdcdcdcdcdcdcdcd {
		t.Fatalf("clone write leaked into origin: %#x", got)
	}
	c2, err := NewFromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if got := read(c2, "clone2"); got != pristine {
		t.Fatalf("snapshot polluted: clone2 reads %#x", got)
	}

	// Restoring the origin rewinds its memory to the snapshot bytes.
	if err := origin.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := read(origin, "restored origin"); got != pristine {
		t.Fatalf("restore did not rewind memory: %#x", got)
	}
	// And clone1's private write survived all of it.
	if got := read(c1, "clone1 after"); got != 0xefefefefefefefef {
		t.Fatalf("clone1 lost its private write: %#x", got)
	}
}
