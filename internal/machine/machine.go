// Package machine composes the substrates — clock, memory, bus, write
// buffer, CPU, DMA engine, kernel, scheduler — into a workstation, and
// provides the calibrated configuration presets the experiments run on.
//
// The reference preset, Alpha3000TC, models the paper's testbed: a DEC
// Alpha 3000 model 300 (150 MHz 21064) with the Telegraphos prototype
// board on a 12.5 MHz TurboChannel. Its cost constants are calibrated so
// the four Table 1 initiation times land on the published values; the
// PCI presets back the paper's "faster buses will help" projection
// (experiment X4).
package machine

import (
	"fmt"

	"uldma/internal/bus"
	"uldma/internal/cpu"
	"uldma/internal/dma"
	"uldma/internal/iommu"
	"uldma/internal/kernel"
	"uldma/internal/obs"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/vm"
)

// Physical address map shared by every preset. Main memory sits at 0;
// the engine's windows sit far above it.
const (
	// MemBits is the width of a memory address inside shadow encodings:
	// 64 MiB of encodable space.
	MemBits = 26
	// RemoteWindow marks decoded DMA destinations as remote: node i's
	// memory appears at RemoteWindow + i<<NodeShift.
	RemoteWindow = phys.Addr(0x0200_0000)
	// NodeShift gives each node a 4 MiB remote window.
	NodeShift = 22
	// CtxPageBase is where the engine's register-context pages live.
	CtxPageBase = phys.Addr(0x8000_0000)
	// ControlBase is the engine's control page (kernel DMA registers).
	ControlBase = phys.Addr(0x9000_0000)
	// RingBase is the engine's descriptor-ring doorbell window (one
	// page per register context).
	RingBase = phys.Addr(0xA000_0000)
	// ShadowBase is the engine's shadow window.
	ShadowBase = phys.Addr(0x1_0000_0000)
	// AtomicBase is the engine's atomic-operation window.
	AtomicBase = phys.Addr(0x2_0000_0000)
	// VABase is the engine's virtual-address window (IOMMU-translated
	// initiation; see internal/iommu and dma/va.go). Zero on machines
	// built without EnableVirtualDMA.
	VABase = phys.Addr(0x4_0000_0000)
)

// MaxNodes is how many cluster nodes the remote window can address.
const MaxNodes = int((0x0400_0000 - uint64(RemoteWindow)) >> NodeShift)

// Config fully describes a machine.
type Config struct {
	Name     string
	MemSize  int
	PageSize uint64

	CPU     cpu.Config
	BusFreq sim.Hz
	BusCost bus.CostConfig

	WriteBufferEntries  int
	WriteBufferCoalesce bool

	Engine dma.Config
	Kernel kernel.Config
	Runner proc.RunnerConfig

	// IOTLBEntries sizes the IOMMU's translation cache when the machine
	// has a VA window (Engine.VABase != 0); 0 means
	// iommu.DefaultTLBEntries.
	IOTLBEntries int
}

// EnableVirtualDMA returns cfg with the IOMMU and the engine's
// virtual-address window configured: device-side VAs translate through
// per-context device page tables at walk time, IOTLB misses cost
// Engine.IOTLBMissTime, and a small bounce-buffer region is carved from
// the top of physical memory for the bounce recovery policy. The
// address map, protocol windows and cost model are untouched, so shadow
// (physical) initiation on the same machine behaves exactly as without
// the IOMMU.
func EnableVirtualDMA(cfg Config) Config {
	cfg.Engine.VABase = VABase
	if cfg.Engine.IOTLBMissTime == 0 {
		cfg.Engine.IOTLBMissTime = 2 * sim.Microsecond
	}
	if cfg.Engine.BouncePages == 0 {
		const bouncePages = 4
		cfg.Engine.BouncePages = bouncePages
		cfg.Engine.BounceBase = phys.Addr(uint64(cfg.MemSize) - bouncePages*cfg.PageSize)
	}
	return cfg
}

// Alpha3000TC returns the calibrated paper-testbed preset with the DMA
// engine wired for the given protocol mode. seqLen selects the
// repeated-passing variant when mode is ModeRepeated (use 5 for the
// paper's safe sequence).
func Alpha3000TC(mode dma.Mode, seqLen int) Config {
	const pageSize = 8192 // Alpha 21064
	memSize := 4 << 20    // 4 MiB keeps experiment setup fast
	return Config{
		Name:     "DEC Alpha 3000/300 + Telegraphos on TurboChannel",
		MemSize:  memSize,
		PageSize: pageSize,
		CPU: cpu.Config{
			Freq:           150 * sim.MHz,
			IssueCycles:    1,
			CacheHitCycles: 2,
			TLBMissCycles:  40,
			MBCycles:       2,
			TLBEntries:     32,
		},
		BusFreq: 12_500_000, // TurboChannel: 80 ns/cycle
		BusCost: bus.CostConfig{
			StoreCycles:       6, // posted write: 480 ns on the wire
			LoadRequestCycles: 4,
			LoadReplyCycles:   3, // uncached load round trip: 560 ns
			RMWExtraCycles:    2,
		},
		WriteBufferEntries:  8,
		WriteBufferCoalesce: true,
		Engine: dma.Config{
			Mode:           mode,
			SeqLen:         seqLen,
			Contexts:       8, // the paper's "several (say 4 to 8)"
			CtxBits:        2, // the paper's "1-2 bits"
			MemBits:        MemBits,
			PageSize:       pageSize,
			MemSize:        uint64(memSize),
			ShadowBase:     ShadowBase,
			CtxPageBase:    CtxPageBase,
			ControlBase:    ControlBase,
			AtomicBase:     AtomicBase,
			RingBase:       RingBase,
			RemoteBase:     RemoteWindow,
			NodeShift:      NodeShift,
			KeyCheckCycles: 2,
			StartupTime:    2 * sim.Microsecond,
			Bandwidth:      50_000_000, // ~TurboChannel sustained
		},
		Kernel: kernel.Config{
			SyscallEntryCycles: 1100, // entry+exit = 2150 cycles: inside
			SyscallExitCycles:  1050, // lmbench's 1,000-5,000 band
			TranslateCycles:    130,
			CheckSizeCycles:    75,
			KeySeed:            0x7e1e94a905, // deterministic per preset
			UserFrameBase:      0x10000,
		},
		Runner: proc.RunnerConfig{
			SwitchCycles:  600,
			PALCallCycles: 30,
		},
	}
}

// PCI returns the Alpha preset rebased onto a PCI-style bus at the given
// frequency (33 or 66 MHz) — the §3.4 projection that faster buses make
// user-level DMA even cheaper.
func PCI(mode dma.Mode, seqLen int, freq sim.Hz) Config {
	cfg := Alpha3000TC(mode, seqLen)
	cfg.Name = fmt.Sprintf("Alpha + %v PCI-class bus", freq)
	cfg.BusFreq = freq
	cfg.Engine.Bandwidth = uint64(freq) * 4 / 2 // 32-bit bus, ~50% efficiency
	return cfg
}

// Era presets for the trend experiment (X7): the paper's §1/§2.2
// argument is that processors and networks improve faster than
// operating systems, so the TRAP'S CYCLE COUNT grows across hardware
// generations (Ousterhout; Rosenblum et al.) while everything else
// shrinks. Each preset scales the clocks up and the syscall cycle count
// up, per those observations.

// Workstation1994 is the earlier-generation point: slower CPU and bus,
// but a (relatively) leaner kernel.
func Workstation1994(mode dma.Mode, seqLen int) Config {
	cfg := Alpha3000TC(mode, seqLen)
	cfg.Name = "1994-class: 100MHz CPU, 12.5MHz TurboChannel"
	cfg.CPU.Freq = 100 * sim.MHz
	cfg.Kernel.SyscallEntryCycles = 800
	cfg.Kernel.SyscallExitCycles = 700 // 1,500-cycle trap
	return cfg
}

// Workstation2000 is the projection the paper argues toward: a much
// faster CPU and bus, and a kernel whose trap costs MORE cycles than
// before.
func Workstation2000(mode dma.Mode, seqLen int) Config {
	cfg := PCI(mode, seqLen, 66*sim.MHz)
	cfg.Name = "2000-class projection: 500MHz CPU, 66MHz PCI"
	cfg.CPU.Freq = 500 * sim.MHz
	cfg.Kernel.SyscallEntryCycles = 2200
	cfg.Kernel.SyscallExitCycles = 2100 // 4,300-cycle trap: the upper lmbench band
	return cfg
}

// Machine is one assembled workstation.
type Machine struct {
	Cfg    Config
	Clock  *sim.Clock
	Events *sim.EventQueue
	Mem    *phys.Memory
	Bus    *bus.Bus
	WB     *bus.WriteBuffer
	CPU    *cpu.CPU
	Engine *dma.Engine
	Kernel *kernel.Kernel
	Runner *proc.Runner
	// IOMMU is the machine's I/O MMU; nil unless the configuration has a
	// VA window (EnableVirtualDMA).
	IOMMU *iommu.IOMMU
	// NodeID is the machine's cluster node id (0 for a standalone
	// machine; set by net.NewCluster).
	NodeID int
	// Obs is the machine-wide metrics registry: every component's
	// counters under dotted names, in a fixed registration order.
	Obs *obs.Registry
	// Tracer is the structured trace spine; nil until EnableTrace (the
	// pay-for-what-you-use disabled state).
	Tracer *obs.Trace
	// hosted marks a machine that runs on a shard's clock and event
	// queue (NewHosted): it never owns them, so the whole-queue
	// operations (Settle, Snapshot) are forbidden — the shard barrier
	// drives quiescence and SnapshotHosted/RestoreHosted capture the
	// machine's own state only.
	hosted bool
}

// Hosted reports whether the machine is shard-hosted: running on an
// external clock and event queue it does not own.
func (m *Machine) Hosted() bool { return m.hosted }

// EventQueueHint is the event-queue capacity pre-sized for a
// standalone machine: a single node rarely has more than a handful of
// DMA completions in flight, and pre-sizing keeps the queue's heap and
// free list from reallocating in steady state (the sim bench asserts
// 0 allocs/op on the pooled scheduling path).
const EventQueueHint = 16

// New assembles a machine from cfg. The engine's windows are mapped on
// the bus; the kernel installs itself as the syscall handler.
func New(cfg Config) (*Machine, error) {
	return NewWithClock(cfg, sim.NewClock(), sim.NewEventQueueSize(EventQueueHint))
}

// NewWithClock assembles a machine on an externally owned clock and
// event queue — how clusters keep several nodes causally consistent.
func NewWithClock(cfg Config, clock *sim.Clock, events *sim.EventQueue) (*Machine, error) {
	return assemble(cfg, clock, events, events, false)
}

// NewHosted assembles a shard-hosted machine: it runs on the shard's
// clock and event queue but never owns them. The difference from
// NewWithClock is the CPU's pump — on a single-owner queue every CPU
// operation drains due events (DMA completions interleave with
// instructions), but a shard queue holds OTHER nodes' events too, so a
// hosted CPU must not pump it; the shard's RunWindow is the only event
// driver. The DMA engine still schedules its completions and remote
// ships on the shard queue, which is exactly how hosted transfers ride
// the window synchronizer.
func NewHosted(cfg Config, clock *sim.Clock, events *sim.EventQueue) (*Machine, error) {
	return assemble(cfg, clock, events, nil, true)
}

// assemble builds the machine. cpuEvents is the queue the CPU pumps on
// every operation (nil for hosted machines, see NewHosted); events is
// the queue the engine schedules on.
func assemble(cfg Config, clock *sim.Clock, events, cpuEvents *sim.EventQueue, hosted bool) (*Machine, error) {
	mem := phys.New(cfg.MemSize)
	b := bus.New(clock, cfg.BusFreq, cfg.BusCost)
	wb := bus.NewWriteBuffer(b, cfg.WriteBufferEntries, cfg.WriteBufferCoalesce)
	c := cpu.New(cfg.CPU, clock, cpuEvents, mem, b, wb)

	engine, err := dma.New(cfg.Engine, clock, events, mem)
	if err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	e := cfg.Engine
	windows := []struct {
		base phys.Addr
		size uint64
	}{
		{e.ShadowBase, e.ShadowWindowSize()},
		{e.CtxPageBase, e.CtxWindowSize()},
		{e.ControlBase, e.PageSize},
		{e.AtomicBase, e.AtomicWindowSize()},
		{e.RingBase, e.RingWindowSize()},
		{e.RemoteBase, e.RemoteWindowSize()},
		{e.VABase, e.VAWindowSize()},
	}
	for _, w := range windows {
		if w.size == 0 {
			continue
		}
		if err := b.Map(engine, w.base, w.size); err != nil {
			return nil, fmt.Errorf("machine: %w", err)
		}
	}

	// Wire DMA cycle stealing: transfers master the bus and contend with
	// CPU transactions.
	engine.SetBusReserver(b)

	runner := proc.NewRunner(c, cfg.Runner)
	k := kernel.New(cfg.Kernel, c, mem, engine, runner)
	m := &Machine{
		Cfg: cfg, Clock: clock, Events: events, Mem: mem, Bus: b,
		WB: wb, CPU: c, Engine: engine, Kernel: k, Runner: runner,
		hosted: hosted,
	}
	if cfg.Engine.VABase != 0 {
		io, err := iommu.New(iommu.Config{
			Contexts:   engine.NumContexts(),
			PageSize:   cfg.Engine.PageSize,
			TLBEntries: cfg.IOTLBEntries,
		})
		if err != nil {
			return nil, fmt.Errorf("machine: %w", err)
		}
		if err := engine.AttachIOMMU(io); err != nil {
			return nil, fmt.Errorf("machine: %w", err)
		}
		k.SetIOMMU(io)
		engine.SetFaultResolver(k)
		m.IOMMU = io
	}
	m.registerMetrics()
	return m, nil
}

// MustNew is New that panics on error — for presets known to be valid.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// NewProcess creates an address space and spawns a process in it.
func (m *Machine) NewProcess(name string, body proc.Body) *proc.Process {
	return m.Runner.Spawn(name, m.Kernel.NewAddressSpace(), body)
}

// Run schedules until every process finishes (or the slot budget runs
// out).
func (m *Machine) Run(policy proc.Policy, maxSlots uint64) error {
	return m.Runner.Run(policy, maxSlots)
}

// Settle fires all outstanding events (in-flight DMA completions) and
// advances the clock past the last of them. Returns the settled time.
func (m *Machine) Settle() sim.Time {
	if m.hosted {
		panic("machine: Settle on a shard-hosted machine (the shard owns the event queue)")
	}
	t := m.Events.Drain(m.Clock.Now())
	m.Clock.AdvanceTo(t)
	return m.Clock.Now()
}

// SetupPages is a setup convenience used across examples and benches:
// it allocates n data pages at base in p's address space with prot, and
// creates their shadow aliases.
func (m *Machine) SetupPages(p *proc.Process, base vm.VAddr, n int, prot vm.Prot) ([]phys.Addr, error) {
	frames := make([]phys.Addr, 0, n)
	ps := vm.VAddr(m.Cfg.PageSize)
	for i := 0; i < n; i++ {
		va := base + vm.VAddr(i)*ps
		frame, err := m.Kernel.AllocPage(p.AddressSpace(), va, prot)
		if err != nil {
			return nil, err
		}
		if err := m.Kernel.MapShadow(p, va); err != nil {
			return nil, err
		}
		frames = append(frames, frame)
	}
	return frames, nil
}
