package machine

// Steady-state fingerprinting for the convergence detector in
// internal/core. A Fingerprint is a fixed vector of machine-state
// words sampled between measurement iterations; the detector compares
// successive *deltas*, not the fingerprints themselves.
//
// Each word is one of two kinds, and the split is the whole trick:
//
//   - Linear words advance by a constant amount per identical
//     iteration: the clock, every activity counter, the engine
//     channel's busyUntil and transfer-bound sums, the TLB's LRU tick,
//     the kernel's SplitMix64 RNG position (state += constant per
//     draw). Their deltas repeat exactly in steady state.
//
//   - Hash words must be *identical* across steady-state iterations
//     (delta zero): the TLB's structural content (excluding LRU
//     stamps), the engine's register/FSM/control state with dead
//     values excluded. If any live decision-relevant state drifts,
//     the hash changes, the deltas differ, and fast-forward is
//     (correctly, conservatively) refused.
//
// If K consecutive iteration deltas are equal, every subsequent
// iteration is provably going to charge the same costs — the machine
// state that any decode or cost path can observe is either identical
// or advancing uniformly — so the harness can synthesize the remaining
// samples analytically and advance the clock in one step.

// FingerprintLen is the number of words in a Fingerprint.
const FingerprintLen = 55

// Fingerprint is one machine-state sample. Compare deltas with Delta.
type Fingerprint [FingerprintLen]uint64

// Delta returns the word-wise difference cur - prev (wrapping). In
// steady state the delta vector is the same every iteration.
func (cur *Fingerprint) Delta(prev *Fingerprint) Fingerprint {
	var d Fingerprint
	for i := range cur {
		d[i] = cur[i] - prev[i]
	}
	return d
}

// Fingerprint samples the machine's steady-state fingerprint. It is
// cheap (no allocation) and safe to call from guest code between
// instructions — the world is strictly serialized there.
func (m *Machine) Fingerprint() Fingerprint {
	var f Fingerprint
	i := 0
	put := func(v uint64) { f[i] = v; i++ }

	// Clock (linear).
	put(uint64(m.Clock.Now()))

	// CPU counters (linear).
	cs := m.CPU.Stats()
	put(cs.Instructions)
	put(cs.Loads)
	put(cs.Stores)
	put(cs.RMWs)
	put(cs.Barriers)
	put(cs.DeviceAccess)
	put(cs.MemoryAccess)
	put(uint64(cs.ComputeCycles))

	// TLB: counters and LRU tick (linear), structure (hash).
	ts := m.CPU.TLB().Stats()
	put(ts.Hits)
	put(ts.Misses)
	put(m.CPU.TLB().Tick())
	put(m.CPU.TLB().StateHash())

	// Bus counters (linear).
	bs := m.Bus.Stats()
	put(bs.Loads)
	put(bs.Stores)
	put(bs.RMWs)
	put(uint64(bs.BusyCycles))
	put(uint64(bs.StolenCycles))
	put(bs.Errors)

	// Write buffer: counters (linear) and occupancy (hash-like; must
	// be identical in steady state).
	ws := m.WB.Stats()
	put(ws.Enqueued)
	put(ws.Coalesced)
	put(ws.LoadForwards)
	put(ws.Drains)
	put(ws.DrainedOps)
	put(uint64(m.WB.Pending()))

	// Physical memory counters (linear).
	ms := m.Mem.Stats()
	put(ms.Reads)
	put(ms.Writes)
	put(ms.BytesRead)
	put(ms.BytesWrote)

	// DMA engine: counters (linear), channel/transfer clocks (linear),
	// register/FSM state (hash). Completed is deliberately absent: it
	// advances when a queued completion event fires, and under the
	// measurement loops the engine's 2 µs startup outruns the ~1 µs
	// initiation cadence, so completions fire at a rate incommensurate
	// with the iteration period. Firing one only flips bookkeeping
	// (delivered flag, Completed counter) that no decode or cost path
	// reads — status reads are analytic in the clock
	// (Transfer.Remaining) — so it cannot perturb a measurement.
	// BytesMoved stays: it moves with the same events but only for
	// payload-carrying transfers, whose burst deliveries also touch the
	// memory counters below — a deliberate brake on fast-forwarding any
	// loop with data movement still in flight.
	es := m.Engine.Stats()
	put(es.ShadowStores)
	put(es.ShadowLoads)
	put(es.KeyMismatches)
	put(es.SeqResets)
	put(es.Started)
	put(es.Rejected)
	put(es.BytesMoved)
	put(es.AtomicOps)
	put(es.RemoteStarted)
	put(es.AbortedPending)
	// Ring-engine counters (linear): doorbells rung, descriptors
	// posted, completion records written back. RingCompletions shares
	// Completed's event-cadence caveat above, but unlike Completed it
	// feeds a state the client CAN observe (the completion record in the
	// descriptor slot), so it must brake fast-forwarding while ring
	// deliveries are in flight.
	put(es.RingDoorbells)
	put(es.RingPosted)
	put(es.RingCompletions)
	busy, lastBounds, ctxBounds := m.Engine.FingerprintLinear()
	put(uint64(busy))
	put(uint64(lastBounds))
	put(uint64(ctxBounds))
	// The engine hash word also carries the IOMMU/VA state (folded
	// inside Engine.StateHash, gated on an IOMMU being attached) and the
	// kernel pager's state (folded here, gated on its hash being
	// nonzero — which it only is on IOMMU-equipped machines). Machines
	// without an IOMMU put exactly Engine.StateHash, so pre-existing
	// fingerprints are bit-identical and FingerprintLen is unchanged.
	eh := m.Engine.StateHash()
	if ph := m.Kernel.PagerStateHash(); ph != 0 {
		eh = eh*0x100000001b3 ^ ph
	}
	put(eh)

	// The event queue is deliberately not fingerprinted. Its population
	// is the not-yet-fired completion bookkeeping discussed above: the
	// queue grows while the engine's busy horizon outruns the clock,
	// and drains at a cadence incommensurate with the iteration period.
	// What those events *do* when they fire is already covered — burst
	// deliveries move the memory and engine byte counters, finishes
	// flip state no cost path reads.

	// Scheduler counters (linear).
	rs := m.Runner.Stats()
	put(rs.Slots)
	put(rs.Switches)
	put(uint64(rs.SwitchTime))

	// Trace spine (linear): events offered and not-retained advance by
	// a constant per identical iteration when tracing is enabled, and
	// are zero when it is not (nil tracer).
	if m.Tracer != nil {
		put(m.Tracer.Emitted())
		put(m.Tracer.Dropped())
	} else {
		put(0)
		put(0)
	}

	// Kernel counters and RNG position (linear).
	ks := m.Kernel.Stats()
	put(ks.Syscalls)
	put(ks.DMASyscalls)
	put(ks.Faults)
	put(m.Kernel.RNGState())

	if i != FingerprintLen {
		panic("machine: fingerprint layout out of sync with FingerprintLen")
	}
	return f
}
