package machine

// World snapshot/restore: capture a quiescent machine's complete state
// and rewind to it — either in place (the cheap path between sweep
// points) or into a freshly built clone (the cell-expansion path in
// internal/exp, where one warmed world per configuration family is
// cloned per cell instead of rebuilt).
//
// Quiescence is the load-bearing precondition. Guest processes are live
// goroutines, so a snapshot is only taken when every process is Done
// and the event queue has been settled — then every mutable structure
// is plain data. The expensive structure, physical memory, is captured
// copy-on-write: Snapshot marks the origin's chunks shared, and the
// first post-snapshot write to a chunk (by the origin or any clone)
// clones just that chunk. Snapshots of warmed-but-idle worlds therefore
// cost a chunk-pointer table, not a memory image.

import (
	"fmt"

	"uldma/internal/bus"
	"uldma/internal/cpu"
	"uldma/internal/dma"
	"uldma/internal/iommu"
	"uldma/internal/kernel"
	"uldma/internal/obs"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/sim"
)

// Snapshot is a complete machine state at one instant. It can be
// restored into its origin machine (Restore) or hydrated into any
// number of independent clones (NewFromSnapshot), which share the
// origin's memory copy-on-write and its settled process/transfer
// records by pointer.
type Snapshot struct {
	cfg    Config
	time   sim.Time
	seq    uint64
	mem    *phys.Snapshot
	bus    *bus.BusSnapshot
	wb     *bus.WBSnapshot
	cpu    *cpu.Snapshot
	engine *dma.EngineSnapshot
	kern   *kernel.Snapshot
	runner *proc.RunnerSnapshot
	iommuS *iommu.Snapshot // nil on machines without an IOMMU
	trace  *obs.TraceState // nil when tracing was disabled
	origin *Machine
}

// Config returns the configuration of the snapshot's origin machine.
func (s *Snapshot) Config() Config { return s.cfg }

// Time returns the simulated time the snapshot was taken at.
func (s *Snapshot) Time() sim.Time { return s.time }

// Snapshot settles the machine (fires outstanding events, advancing the
// clock past the last of them) and captures its complete state. It
// fails if the world cannot be quiesced: a process still live, a
// process blocked on a remote-write watch, or the engine attached to a
// cluster fabric (in-flight link traffic lives outside the machine).
func (m *Machine) Snapshot() (*Snapshot, error) {
	if m.hosted {
		return nil, fmt.Errorf("machine: Snapshot on a shard-hosted machine (use SnapshotHosted at a quiescent cluster barrier)")
	}
	m.Settle()
	runner, err := m.Runner.Snapshot()
	if err != nil {
		return nil, err
	}
	engine, err := m.Engine.Snapshot()
	if err != nil {
		return nil, err
	}
	kern, err := m.Kernel.Snapshot()
	if err != nil {
		return nil, err
	}
	s := &Snapshot{
		cfg:    m.Cfg,
		time:   m.Clock.Now(),
		seq:    m.Events.SnapshotSeq(),
		mem:    m.Mem.Snapshot(),
		bus:    m.Bus.Snapshot(),
		wb:     m.WB.Snapshot(),
		cpu:    m.CPU.Snapshot(),
		engine: engine,
		kern:   kern,
		runner: runner,
		origin: m,
	}
	if m.IOMMU != nil {
		s.iommuS = m.IOMMU.Snapshot()
	}
	if m.Tracer != nil {
		s.trace = m.Tracer.State()
	}
	return s, nil
}

// Restore rewinds the snapshot's origin machine in place: post-snapshot
// processes are discarded, hook chains are truncated to their snapshot
// lengths, and every substrate is rewound. Only the origin can be
// restored in place (process records are matched by identity); other
// machines must be built with NewFromSnapshot. Must not be used while
// clones hydrated from the same snapshot are running — the address-
// space rewind would race with their shared page tables.
func (m *Machine) Restore(s *Snapshot) error {
	if s.origin != m {
		return fmt.Errorf("machine: restore: not the snapshot's origin machine (use NewFromSnapshot)")
	}
	m.Settle()
	if err := m.Runner.Restore(s.runner); err != nil {
		return err
	}
	return m.restoreInto(s)
}

// NewFromSnapshot builds an independent clone of the snapshot's origin:
// a fresh machine with the same configuration, rewound to the snapshot.
// The clone shares the origin's physical memory copy-on-write and its
// settled process and transfer records by pointer; it has its own
// clock, event queue, and every other mutable structure, so origin and
// clones can run concurrently (one goroutine each, as usual).
//
// Hook installations are re-enacted, not copied: the kernel's SHRIMP-2 /
// FLASH hooks and the PAL DMA routine are re-installed on the clone's
// own kernel so their closures bind to the clone, then verified against
// the snapshot's chain lengths. Custom (non-kernel) hooks cannot be
// cloned.
func NewFromSnapshot(s *Snapshot) (*Machine, error) {
	m, err := New(s.cfg)
	if err != nil {
		return nil, err
	}
	// Re-enact the snapshot-era installations against the clone's own
	// kernel before restoring its bookkeeping (the flags start false on
	// a fresh kernel, so these take effect exactly once).
	if s.kern.SHRIMP2Hook() {
		m.Kernel.EnableSHRIMP2Hook()
	}
	if s.kern.FLASHHook() {
		m.Kernel.EnableFLASHHook()
	}
	if s.kern.PALDMAInstalled() {
		m.Kernel.InstallPALDMA()
	}
	if s.trace != nil {
		// Re-enact tracing: the clone gets its own trace of the same
		// capacity and policy, rewound to the snapshot (the
		// rewind-with-the-world rule, same as every counter).
		m.EnableTrace(s.trace.Cap(), s.trace.Policy())
	}
	if err := m.Runner.Adopt(s.runner); err != nil {
		return nil, err
	}
	if err := m.restoreInto(s); err != nil {
		return nil, err
	}
	return m, nil
}

// RestoreOrigin rewinds the snapshot's origin machine in place and
// returns it — the serial-reuse pattern: take one snapshot of a warmed
// (or pristine) world, then rewind between runs instead of rebuilding.
func RestoreOrigin(s *Snapshot) (*Machine, error) {
	if err := s.origin.Restore(s); err != nil {
		return nil, err
	}
	return s.origin, nil
}

// restoreInto rewinds every substrate shared between the in-place and
// clone paths. The runner is handled by the caller (Restore vs Adopt).
func (m *Machine) restoreInto(s *Snapshot) error {
	m.Clock.Reset(s.time)
	m.Events.Reset(s.seq)
	return m.restoreSubstrates(s)
}

// restoreSubstrates rewinds the machine-owned substrates only — not the
// clock or event queue, which a shard-hosted machine does not own.
func (m *Machine) restoreSubstrates(s *Snapshot) error {
	if err := m.Mem.Restore(s.mem); err != nil {
		return err
	}
	m.Bus.Restore(s.bus)
	if err := m.WB.Restore(s.wb); err != nil {
		return err
	}
	if err := m.CPU.Restore(s.cpu); err != nil {
		return err
	}
	if err := m.Engine.Restore(s.engine); err != nil {
		return err
	}
	if s.iommuS != nil {
		if m.IOMMU == nil {
			return fmt.Errorf("machine: restore: snapshot has IOMMU state but machine has no IOMMU")
		}
		if err := m.IOMMU.Restore(s.iommuS); err != nil {
			return err
		}
	}
	if s.trace != nil && m.Tracer != nil {
		if err := m.Tracer.RestoreState(s.trace); err != nil {
			return err
		}
	}
	return m.Kernel.Restore(s.kern)
}

// NewFromSnapshotHosted hydrates a snapshot into a shard-hosted clone
// running on the given external clock and event queue — the per-node
// amortization path for cluster-scale worlds: build ONE standalone
// template machine, snapshot it, then hydrate a clone per node. Clones
// share the template's physical memory copy-on-write and its settled
// process records and page tables by pointer; nothing may remap pages
// after the snapshot.
//
// The clone does NOT adopt the snapshot's clock time (the shard clock
// is shared and starts at zero). Its substrates carry template-era
// timestamps (bus busy-until, write-buffer slots), so the host must not
// drive any CPU or bus operation on the clone before the template's
// snapshot time — scale worlds prime their first arrivals at a boot
// time past it.
func NewFromSnapshotHosted(s *Snapshot, clock *sim.Clock, events *sim.EventQueue) (*Machine, error) {
	m, err := NewHosted(s.cfg, clock, events)
	if err != nil {
		return nil, err
	}
	if s.kern.SHRIMP2Hook() {
		m.Kernel.EnableSHRIMP2Hook()
	}
	if s.kern.FLASHHook() {
		m.Kernel.EnableFLASHHook()
	}
	if s.kern.PALDMAInstalled() {
		m.Kernel.InstallPALDMA()
	}
	if s.trace != nil {
		m.EnableTrace(s.trace.Cap(), s.trace.Policy())
	}
	if err := m.Runner.Adopt(s.runner); err != nil {
		return nil, err
	}
	if err := m.restoreSubstrates(s); err != nil {
		return nil, err
	}
	return m, nil
}

// SnapshotHosted captures a shard-hosted machine's own state. The
// caller must hold the cluster at a quiescent barrier (no pending
// events anywhere), which is what lets the snapshot skip Settle and
// detach the engine's fabric port for the duration — with no link
// traffic in flight the no-fabric snapshot rule holds trivially. The
// event-queue sequence is recorded as zero: hosted restores never touch
// the shared queue.
func (m *Machine) SnapshotHosted() (*Snapshot, error) {
	if !m.hosted {
		return nil, fmt.Errorf("machine: SnapshotHosted on a standalone machine (use Snapshot)")
	}
	port := m.Engine.Remote()
	if port != nil {
		m.Engine.SetRemoteHandler(nil)
		defer m.Engine.SetRemoteHandler(port)
	}
	runner, err := m.Runner.Snapshot()
	if err != nil {
		return nil, err
	}
	engine, err := m.Engine.Snapshot()
	if err != nil {
		return nil, err
	}
	kern, err := m.Kernel.Snapshot()
	if err != nil {
		return nil, err
	}
	s := &Snapshot{
		cfg:    m.Cfg,
		time:   m.Clock.Now(),
		mem:    m.Mem.Snapshot(),
		bus:    m.Bus.Snapshot(),
		wb:     m.WB.Snapshot(),
		cpu:    m.CPU.Snapshot(),
		engine: engine,
		kern:   kern,
		runner: runner,
		origin: m,
	}
	if m.IOMMU != nil {
		s.iommuS = m.IOMMU.Snapshot()
	}
	if m.Tracer != nil {
		s.trace = m.Tracer.State()
	}
	return s, nil
}

// RestoreHosted rewinds a shard-hosted machine in place to a snapshot
// taken by SnapshotHosted on the same machine. Like SnapshotHosted it
// requires a quiescent barrier; the shard clock and queue are left to
// the cluster's own snapshot machinery.
func (m *Machine) RestoreHosted(s *Snapshot) error {
	if !m.hosted {
		return fmt.Errorf("machine: RestoreHosted on a standalone machine (use Restore)")
	}
	if s.origin != m {
		return fmt.Errorf("machine: RestoreHosted: not the snapshot's origin machine")
	}
	if err := m.Runner.Restore(s.runner); err != nil {
		return err
	}
	return m.restoreSubstrates(s)
}
