package machine

import (
	"strings"
	"testing"

	"uldma/internal/dma"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/vm"
)

func TestPresetsBuild(t *testing.T) {
	modes := []struct {
		mode   dma.Mode
		seqLen int
	}{
		{dma.ModePaired, 0}, {dma.ModeKeyed, 0}, {dma.ModeExtended, 0},
		{dma.ModeRepeated, 3}, {dma.ModeRepeated, 4}, {dma.ModeRepeated, 5},
		{dma.ModeMappedOut, 0},
	}
	for _, mc := range modes {
		m, err := New(Alpha3000TC(mc.mode, mc.seqLen))
		if err != nil {
			t.Fatalf("%v/%d: %v", mc.mode, mc.seqLen, err)
		}
		if m.Engine.Config().Mode != mc.mode {
			t.Fatalf("engine mode = %v", m.Engine.Config().Mode)
		}
	}
	for _, f := range []sim.Hz{33 * sim.MHz, 66 * sim.MHz} {
		cfg := PCI(dma.ModeExtended, 0, f)
		if cfg.BusFreq != f {
			t.Fatalf("PCI preset bus freq = %v", cfg.BusFreq)
		}
		MustNew(cfg)
	}
}

func TestMustNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew on invalid config did not panic")
		}
	}()
	cfg := Alpha3000TC(dma.ModeRepeated, 7) // invalid SeqLen
	MustNew(cfg)
}

func TestEngineWindowsDecoded(t *testing.T) {
	m := MustNew(Alpha3000TC(dma.ModeKeyed, 0))
	for _, a := range []phys.Addr{ShadowBase, CtxPageBase, ControlBase, AtomicBase} {
		if !m.Bus.IsDevice(a) {
			t.Errorf("window at %v not decoded", a)
		}
	}
	if m.Bus.IsDevice(0x1000) {
		t.Error("main memory decoded as device")
	}
	if MaxNodes < 2 {
		t.Fatalf("MaxNodes = %d; the cluster experiments need at least 2", MaxNodes)
	}
}

func TestEndToEndKernelDMA(t *testing.T) {
	// A process allocates two pages, fills the source via stores, traps
	// into the kernel for a DMA, and the data lands in the destination.
	m := MustNew(Alpha3000TC(dma.ModePaired, 0))
	const srcVA, dstVA = vm.VAddr(0x10000), vm.VAddr(0x20000)
	var status uint64
	p := m.NewProcess("user", func(ctx *proc.Context) error {
		for i := 0; i < 8; i++ {
			if err := ctx.Store(srcVA+vm.VAddr(8*i), phys.Size64, uint64(0x1111*i)); err != nil {
				return err
			}
		}
		st, err := ctx.Syscall(1 /* kernel.SysDMA */, uint64(srcVA), uint64(dstVA), 64)
		status = st
		return err
	})
	if _, err := m.Kernel.AllocPage(p.AddressSpace(), srcVA, vm.Read|vm.Write); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Kernel.AllocPage(p.AddressSpace(), dstVA, vm.Read|vm.Write); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(proc.NewRoundRobin(4), 10_000); err != nil {
		t.Fatal(err)
	}
	if p.Err() != nil {
		t.Fatalf("process error: %v", p.Err())
	}
	if status == dma.StatusFailure {
		t.Fatal("kernel DMA rejected")
	}
	m.Settle()
	// Verify through the destination mapping.
	pa, err := p.AddressSpace().Translate(dstVA+8, vm.AccessLoad)
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.Mem.Read(pa, phys.Size64)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x1111 {
		t.Fatalf("destination word = %#x, want 0x1111", v)
	}
}

func TestKernelDMATimingMatchesTable1(t *testing.T) {
	// Table 1: kernel-level DMA = 18.6 µs on the calibrated preset.
	// Accept ±10%: the model is calibrated, not curve-fitted.
	m := MustNew(Alpha3000TC(dma.ModePaired, 0))
	const srcVA, dstVA = vm.VAddr(0x10000), vm.VAddr(0x20000)
	var cost sim.Time
	p := m.NewProcess("user", func(ctx *proc.Context) error {
		start := m.Clock.Now()
		_, err := ctx.Syscall(1, uint64(srcVA), uint64(dstVA), 64)
		cost = m.Clock.Now() - start
		return err
	})
	m.Kernel.AllocPage(p.AddressSpace(), srcVA, vm.Read|vm.Write)
	m.Kernel.AllocPage(p.AddressSpace(), dstVA, vm.Read|vm.Write)
	if err := m.Run(proc.NewRoundRobin(4), 10_000); err != nil {
		t.Fatal(err)
	}
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
	lo, hi := 16740*sim.Nanosecond, 20460*sim.Nanosecond
	if cost < lo || cost > hi {
		t.Fatalf("kernel DMA initiation = %v, want 18.6µs ±10%%", cost)
	}
}

func TestNullSyscallInLmbenchBand(t *testing.T) {
	// §2.2: "the overhead of an empty system call of commercial UNIX-like
	// operating systems ranges between 1,000 and 5,000 processor cycles".
	m := MustNew(Alpha3000TC(dma.ModePaired, 0))
	var cost sim.Time
	m.NewProcess("user", func(ctx *proc.Context) error {
		start := m.Clock.Now()
		_, err := ctx.Syscall(0 /* SysNull */)
		cost = m.Clock.Now() - start
		return err
	})
	if err := m.Run(proc.NewRoundRobin(1), 100); err != nil {
		t.Fatal(err)
	}
	cycles := m.Cfg.CPU.Freq.CyclesIn(cost)
	if cycles < 1000 || cycles > 5000 {
		t.Fatalf("null syscall = %d cycles, outside the lmbench band", cycles)
	}
}

func TestSetupPages(t *testing.T) {
	m := MustNew(Alpha3000TC(dma.ModeExtended, 0))
	p := m.NewProcess("user", func(ctx *proc.Context) error { return nil })
	if _, _, err := m.Kernel.AssignContext(p); err != nil {
		t.Fatal(err)
	}
	frames, err := m.SetupPages(p, 0x10000, 3, vm.Read|vm.Write)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 {
		t.Fatalf("frames = %v", frames)
	}
	// Each page is mapped twice: data + shadow.
	if got := p.AddressSpace().MappedPages(); got != 6 {
		t.Fatalf("mapped pages = %d, want 6", got)
	}
	m.Run(proc.NewRoundRobin(1), 10)
}

func TestEraPresets(t *testing.T) {
	eras := []struct {
		cfg  Config
		trap int64
	}{
		{Workstation1994(dma.ModePaired, 0), 1500},
		{Alpha3000TC(dma.ModePaired, 0), 2150},
		{Workstation2000(dma.ModePaired, 0), 4300},
	}
	var prevCPU sim.Hz
	for _, e := range eras {
		MustNew(e.cfg) // must assemble
		if got := e.cfg.Kernel.SyscallEntryCycles + e.cfg.Kernel.SyscallExitCycles; got != e.trap {
			t.Errorf("%s: trap = %d cycles, want %d", e.cfg.Name, got, e.trap)
		}
		if e.cfg.CPU.Freq <= prevCPU {
			t.Errorf("%s: CPU %v not faster than previous era", e.cfg.Name, e.cfg.CPU.Freq)
		}
		prevCPU = e.cfg.CPU.Freq
	}
	if Workstation2000(dma.ModePaired, 0).BusFreq != 66*sim.MHz {
		t.Error("2000 era should ride PCI-66")
	}
}

func TestConfigNamesPresets(t *testing.T) {
	if !strings.Contains(Alpha3000TC(dma.ModePaired, 0).Name, "Alpha") {
		t.Fatal("preset name missing")
	}
	if !strings.Contains(PCI(dma.ModePaired, 0, 66*sim.MHz).Name, "66MHz") {
		t.Fatalf("PCI name = %q", PCI(dma.ModePaired, 0, 66*sim.MHz).Name)
	}
}
