package machine

import (
	"testing"

	"uldma/internal/dma"
	"uldma/internal/obs"
)

// TestRegistryCoversEveryComponent pins the registry's shape: a fixed,
// deterministic registration order spanning every component, identical
// across identically built machines.
func TestRegistryCoversEveryComponent(t *testing.T) {
	m := MustNew(Alpha3000TC(dma.ModeExtended, 0))
	names := m.Obs.Names()
	if len(names) == 0 {
		t.Fatal("empty registry")
	}
	prefixes := map[string]bool{}
	for _, n := range names {
		for i := range n {
			if n[i] == '.' {
				prefixes[n[:i]] = true
				break
			}
		}
	}
	for _, want := range []string{"cpu", "tlb", "bus", "wb", "phys", "dma", "proc", "kernel"} {
		if !prefixes[want] {
			t.Fatalf("no %q.* metrics registered (have %v)", want, names)
		}
	}
	// Deterministic order: a second identically built machine renders
	// the identical name sequence.
	m2 := MustNew(Alpha3000TC(dma.ModeExtended, 0))
	names2 := m2.Obs.Names()
	if len(names) != len(names2) {
		t.Fatalf("registries differ in size: %d vs %d", len(names), len(names2))
	}
	for i := range names {
		if names[i] != names2[i] {
			t.Fatalf("registration order differs at %d: %q vs %q", i, names[i], names2[i])
		}
	}
}

// TestCounterRewindRule pins the rewind-with-the-world rule uniformly
// across EVERY registered metric: a clone hydrated from a snapshot
// reports the counters AS OF the snapshot — never the origin's later
// activity — and an in-place Restore rewinds the origin the same way.
// Before obs, each component had its own snapshot story; this test is
// the single contract they all satisfy now.
func TestCounterRewindRule(t *testing.T) {
	origin := MustNew(Alpha3000TC(dma.ModeExtended, 0))
	dmaWorkload(t, origin)

	snap, err := origin.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	atSnapshot := origin.Obs.Snapshot()

	// Diverge the origin: more activity moves its counters past the
	// snapshot on every layer the workload touches.
	dmaWorkload(t, origin)
	moved := false
	for i, mv := range origin.Obs.Snapshot() {
		if mv.Value != atSnapshot[i].Value {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("second workload moved no counters; the divergence test is vacuous")
	}

	// A clone hydrated from the snapshot must report every metric as of
	// the snapshot.
	clone, err := NewFromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	for i, mv := range clone.Obs.Snapshot() {
		if mv != atSnapshot[i] {
			t.Fatalf("clone metric %s = %d, want snapshot-time %d (origin's later activity leaked)",
				mv.Name, mv.Value, atSnapshot[i].Value)
		}
	}

	// In-place restore rewinds the origin identically.
	if err := origin.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for i, mv := range origin.Obs.Snapshot() {
		if mv != atSnapshot[i] {
			t.Fatalf("restored origin metric %s = %d, want %d", mv.Name, mv.Value, atSnapshot[i].Value)
		}
	}
}

// TestTraceRewindWithWorld extends the rewind rule to the trace spine:
// snapshot captures the trace's state, Restore rewinds it, and
// NewFromSnapshot re-enacts tracing on the clone — rewound, with the
// origin's capacity and policy.
func TestTraceRewindWithWorld(t *testing.T) {
	origin := MustNew(Alpha3000TC(dma.ModeExtended, 0))
	tr := origin.EnableTrace(128, obs.Ring)
	dmaWorkload(t, origin)
	if tr.Emitted() == 0 {
		t.Fatal("workload emitted no trace events")
	}

	snap, err := origin.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	wantEmitted, wantDropped := tr.Emitted(), tr.Dropped()
	wantEvents := tr.Events()

	dmaWorkload(t, origin)
	if tr.Emitted() == wantEmitted {
		t.Fatal("second workload emitted nothing; divergence is vacuous")
	}

	clone, err := NewFromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if clone.Tracer == nil {
		t.Fatal("clone did not re-enact tracing")
	}
	if clone.Tracer == tr {
		t.Fatal("clone shares the origin's trace; must have its own")
	}
	if clone.Tracer.Cap() != 128 {
		t.Fatalf("clone trace cap = %d, want 128", clone.Tracer.Cap())
	}
	if clone.Tracer.Emitted() != wantEmitted || clone.Tracer.Dropped() != wantDropped {
		t.Fatalf("clone trace emitted/dropped = %d/%d, want %d/%d",
			clone.Tracer.Emitted(), clone.Tracer.Dropped(), wantEmitted, wantDropped)
	}
	cloneEvents := clone.Tracer.Events()
	if len(cloneEvents) != len(wantEvents) {
		t.Fatalf("clone has %d events, want %d", len(cloneEvents), len(wantEvents))
	}
	for i := range wantEvents {
		if cloneEvents[i] != wantEvents[i] {
			t.Fatalf("clone event %d = %+v, want %+v", i, cloneEvents[i], wantEvents[i])
		}
	}

	// And the fingerprint sees the tracer words rewind too.
	if err := origin.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if tr.Emitted() != wantEmitted || tr.Dropped() != wantDropped {
		t.Fatalf("restored trace emitted/dropped = %d/%d, want %d/%d",
			tr.Emitted(), tr.Dropped(), wantEmitted, wantDropped)
	}
}

// TestCloneTraceDiverges is the flip side: after hydration, origin and
// clone trace independently.
func TestCloneTraceDiverges(t *testing.T) {
	origin := MustNew(Alpha3000TC(dma.ModeExtended, 0))
	origin.EnableTrace(0, obs.Ring)
	dmaWorkload(t, origin)
	snap, err := origin.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	clone, err := NewFromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	base := clone.Tracer.Emitted()
	dmaWorkload(t, clone)
	if clone.Tracer.Emitted() == base {
		t.Fatal("clone workload emitted nothing")
	}
	if origin.Tracer.Emitted() != base {
		t.Fatalf("clone activity leaked into origin trace: %d vs %d", origin.Tracer.Emitted(), base)
	}
}

// dmaWorkload is defined in snapshot_test.go.
