package machine

// Observability wiring: the machine-wide metrics registry and the
// structured trace spine (internal/obs).
//
// Registry: every component registers its counters at construction,
// in a fixed order (CPU, TLB, bus, write buffer, memory, engine,
// scheduler, kernel — the fingerprint's order), so two identically
// built machines render byte-identical metric snapshots. Components
// with obs-cell storage register their cells directly; the CPU, TLB
// and write buffer (whose counter structs are also their snapshot
// wire format) register closures over their Stats() accessors — both
// paths read live, restore-aware state.
//
// Tracer: nil until EnableTrace. Enabling hands the one Trace to
// every emitting component (bus, scheduler, kernel; the DMA window
// spans ride on the bus). The trace's state is captured by Snapshot
// and rewound by Restore/NewFromSnapshot like every other metric —
// the rewind-with-the-world rule.

import "uldma/internal/obs"

// registerMetrics builds the machine's registry. Called once from
// NewWithClock; registration order is the deterministic render order.
func (m *Machine) registerMetrics() {
	r := obs.NewRegistry()

	// CPU counters (closures over the compat accessor: the CPU's stats
	// struct doubles as its snapshot wire format, so the cells stay).
	r.Register("cpu.instructions", func() uint64 { return m.CPU.Stats().Instructions })
	r.Register("cpu.loads", func() uint64 { return m.CPU.Stats().Loads })
	r.Register("cpu.stores", func() uint64 { return m.CPU.Stats().Stores })
	r.Register("cpu.rmws", func() uint64 { return m.CPU.Stats().RMWs })
	r.Register("cpu.barriers", func() uint64 { return m.CPU.Stats().Barriers })
	r.Register("cpu.device_access", func() uint64 { return m.CPU.Stats().DeviceAccess })
	r.Register("cpu.memory_access", func() uint64 { return m.CPU.Stats().MemoryAccess })
	r.Register("cpu.compute_cycles", func() uint64 { return uint64(m.CPU.Stats().ComputeCycles) })

	// TLB.
	r.Register("tlb.hits", func() uint64 { return m.CPU.TLB().Stats().Hits })
	r.Register("tlb.misses", func() uint64 { return m.CPU.TLB().Stats().Misses })

	// Bus, write buffer, memory.
	m.Bus.RegisterMetrics(r)
	r.Register("wb.enqueued", func() uint64 { return m.WB.Stats().Enqueued })
	r.Register("wb.coalesced", func() uint64 { return m.WB.Stats().Coalesced })
	r.Register("wb.load_forwards", func() uint64 { return m.WB.Stats().LoadForwards })
	r.Register("wb.drains", func() uint64 { return m.WB.Stats().Drains })
	r.Register("wb.drained_ops", func() uint64 { return m.WB.Stats().DrainedOps })
	m.Mem.RegisterMetrics(r)

	// DMA engine, scheduler, kernel.
	m.Engine.RegisterMetrics(r)
	m.Runner.RegisterMetrics(r)
	m.Kernel.RegisterMetrics(r)

	// Virtual-address DMA plane — only on IOMMU-equipped machines, so
	// every other machine's registry dump stays byte-identical.
	if m.IOMMU != nil {
		m.IOMMU.RegisterMetrics(r)
		m.Engine.RegisterVAMetrics(r)
		m.Kernel.RegisterPagerMetrics(r)
	}

	m.Obs = r
}

// EnableTrace turns on the structured trace spine with the given
// capacity and overflow policy (max <= 0 means obs.DefaultTraceCap)
// and attaches it to every emitting component. Calling it again
// replaces the trace. Returns the trace for export.
func (m *Machine) EnableTrace(max int, policy obs.Policy) *obs.Trace {
	tr := obs.NewTrace(max, policy)
	m.AttachTracer(tr)
	return tr
}

// AttachTracer attaches an existing trace (shared by cluster nodes) to
// every emitting component, or detaches with nil.
func (m *Machine) AttachTracer(tr *obs.Trace) {
	m.Tracer = tr
	node := int32(m.NodeID)
	m.Bus.SetTracer(tr, node)
	m.Runner.SetTracer(tr, node)
	m.Kernel.SetTracer(tr, node)
}

// DisableTrace detaches the trace spine; emission sites fall back to
// the nil fast path.
func (m *Machine) DisableTrace() { m.AttachTracer(nil) }
