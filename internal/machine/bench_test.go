package machine

import (
	"testing"

	"uldma/internal/dma"
)

// Every measurement cell in the sweeps builds a machine from scratch,
// so world construction is on the critical path of the parallel
// drivers. The lazy-chunked physical memory keeps this cheap: New must
// not touch (or allocate) the 64MB RAM image, only the small fixed
// structures.
func BenchmarkMachineNew(b *testing.B) {
	cfg := Alpha3000TC(dma.ModeExtended, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
