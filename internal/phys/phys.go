// Package phys models the physical (main) memory of a simulated
// workstation: a flat array of bytes addressed by physical address.
//
// DMA engines, the MMU page-table walker, and CPU cached accesses all
// resolve to reads and writes on this memory. Devices (including the DMA
// engine's register windows) live elsewhere in the physical address map
// and are decoded by the bus, not by this package.
package phys

import (
	"encoding/binary"
	"fmt"
)

// Addr is a physical byte address. The simulated machines use a 34-bit
// physical address space (as the Alpha 21064 did externally): low
// addresses are main memory, high addresses are I/O windows including the
// DMA engine's shadow space.
type Addr uint64

// String formats the address in hex.
func (a Addr) String() string { return fmt.Sprintf("%#x", uint64(a)) }

// AccessSize is the width of a single memory or bus access in bytes.
type AccessSize int

// Supported access widths.
const (
	Size8  AccessSize = 1
	Size16 AccessSize = 2
	Size32 AccessSize = 4
	Size64 AccessSize = 8
)

// Valid reports whether s is one of the supported access widths.
func (s AccessSize) Valid() bool {
	switch s {
	case Size8, Size16, Size32, Size64:
		return true
	}
	return false
}

// Error is returned for invalid physical memory accesses.
type Error struct {
	Op   string // "read" or "write"
	Addr Addr
	Size AccessSize
	Why  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("phys: %s %d bytes at %v: %s", e.Op, int(e.Size), e.Addr, e.Why)
}

// Stats counts traffic into a Memory, for experiment reporting.
type Stats struct {
	Reads      uint64 // word-sized read operations
	Writes     uint64 // word-sized write operations
	BytesRead  uint64
	BytesWrote uint64
}

// Memory is a flat physical memory of fixed size. The zero value is not
// usable; construct with New. Memory is not safe for concurrent use: the
// simulator is single-threaded by design (determinism), so no locking is
// needed or wanted.
type Memory struct {
	data  []byte
	stats Stats
}

// New allocates a physical memory of size bytes, zero-filled. Size must
// be a positive multiple of 8 so that aligned 64-bit accesses cannot
// straddle the end.
func New(size int) *Memory {
	if size <= 0 || size%8 != 0 {
		panic(fmt.Sprintf("phys: invalid memory size %d", size))
	}
	return &Memory{data: make([]byte, size)}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() int { return len(m.data) }

// Stats returns a snapshot of the access counters.
func (m *Memory) Stats() Stats { return m.stats }

// ResetStats zeroes the access counters.
func (m *Memory) ResetStats() { m.stats = Stats{} }

// Contains reports whether an access of the given size at addr lies
// entirely inside memory.
func (m *Memory) Contains(addr Addr, size AccessSize) bool {
	end := uint64(addr) + uint64(size)
	return uint64(addr) < uint64(len(m.data)) && end <= uint64(len(m.data)) && end >= uint64(size)
}

func (m *Memory) check(op string, addr Addr, size AccessSize) error {
	if !size.Valid() {
		return &Error{Op: op, Addr: addr, Size: size, Why: "unsupported access size"}
	}
	if uint64(addr)%uint64(size) != 0 {
		return &Error{Op: op, Addr: addr, Size: size, Why: "unaligned access"}
	}
	if !m.Contains(addr, size) {
		return &Error{Op: op, Addr: addr, Size: size, Why: "out of range"}
	}
	return nil
}

// Read returns size bytes at addr as a little-endian value (Alpha is
// little-endian). The access must be naturally aligned and in range.
func (m *Memory) Read(addr Addr, size AccessSize) (uint64, error) {
	if err := m.check("read", addr, size); err != nil {
		return 0, err
	}
	m.stats.Reads++
	m.stats.BytesRead += uint64(size)
	b := m.data[addr : addr+Addr(size)]
	switch size {
	case Size8:
		return uint64(b[0]), nil
	case Size16:
		return uint64(binary.LittleEndian.Uint16(b)), nil
	case Size32:
		return uint64(binary.LittleEndian.Uint32(b)), nil
	default:
		return binary.LittleEndian.Uint64(b), nil
	}
}

// Write stores the low size bytes of val at addr, little-endian. The
// access must be naturally aligned and in range.
func (m *Memory) Write(addr Addr, size AccessSize, val uint64) error {
	if err := m.check("write", addr, size); err != nil {
		return err
	}
	m.stats.Writes++
	m.stats.BytesWrote += uint64(size)
	b := m.data[addr : addr+Addr(size)]
	switch size {
	case Size8:
		b[0] = byte(val)
	case Size16:
		binary.LittleEndian.PutUint16(b, uint16(val))
	case Size32:
		binary.LittleEndian.PutUint32(b, uint32(val))
	default:
		binary.LittleEndian.PutUint64(b, val)
	}
	return nil
}

// ReadBytes copies n bytes starting at addr into a fresh slice. Used by
// DMA transfer modelling, which moves arbitrary-length runs.
func (m *Memory) ReadBytes(addr Addr, n int) ([]byte, error) {
	if n < 0 || uint64(addr)+uint64(n) > uint64(len(m.data)) || uint64(addr) > uint64(len(m.data)) {
		return nil, &Error{Op: "read", Addr: addr, Size: AccessSize(n), Why: "byte range out of bounds"}
	}
	out := make([]byte, n)
	copy(out, m.data[addr:])
	m.stats.BytesRead += uint64(n)
	return out, nil
}

// WriteBytes copies b into memory starting at addr.
func (m *Memory) WriteBytes(addr Addr, b []byte) error {
	if uint64(addr)+uint64(len(b)) > uint64(len(m.data)) || uint64(addr) > uint64(len(m.data)) {
		return &Error{Op: "write", Addr: addr, Size: AccessSize(len(b)), Why: "byte range out of bounds"}
	}
	copy(m.data[addr:], b)
	m.stats.BytesWrote += uint64(len(b))
	return nil
}

// Copy moves n bytes from src to dst inside this memory, handling
// overlap like memmove. It is the data-movement primitive used by the
// local DMA transfer engine.
func (m *Memory) Copy(dst, src Addr, n int) error {
	if n < 0 {
		return &Error{Op: "copy", Addr: src, Size: AccessSize(n), Why: "negative length"}
	}
	if uint64(src)+uint64(n) > uint64(len(m.data)) || uint64(src) > uint64(len(m.data)) {
		return &Error{Op: "copy", Addr: src, Size: AccessSize(n), Why: "source out of bounds"}
	}
	if uint64(dst)+uint64(n) > uint64(len(m.data)) || uint64(dst) > uint64(len(m.data)) {
		return &Error{Op: "copy", Addr: dst, Size: AccessSize(n), Why: "destination out of bounds"}
	}
	copy(m.data[dst:dst+Addr(n)], m.data[src:src+Addr(n)])
	m.stats.BytesRead += uint64(n)
	m.stats.BytesWrote += uint64(n)
	return nil
}

// Fill sets n bytes starting at addr to v. Convenience for tests and
// workload setup.
func (m *Memory) Fill(addr Addr, n int, v byte) error {
	if uint64(addr)+uint64(n) > uint64(len(m.data)) || n < 0 {
		return &Error{Op: "write", Addr: addr, Size: AccessSize(n), Why: "fill out of bounds"}
	}
	for i := 0; i < n; i++ {
		m.data[addr+Addr(i)] = v
	}
	m.stats.BytesWrote += uint64(n)
	return nil
}
