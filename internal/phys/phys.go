// Package phys models the physical (main) memory of a simulated
// workstation: a flat array of bytes addressed by physical address.
//
// DMA engines, the MMU page-table walker, and CPU cached accesses all
// resolve to reads and writes on this memory. Devices (including the DMA
// engine's register windows) live elsewhere in the physical address map
// and are decoded by the bus, not by this package.
package phys

import (
	"encoding/binary"
	"fmt"

	"uldma/internal/obs"
)

// Addr is a physical byte address. The simulated machines use a 34-bit
// physical address space (as the Alpha 21064 did externally): low
// addresses are main memory, high addresses are I/O windows including the
// DMA engine's shadow space.
type Addr uint64

// String formats the address in hex.
func (a Addr) String() string { return fmt.Sprintf("%#x", uint64(a)) }

// AccessSize is the width of a single memory or bus access in bytes.
type AccessSize int

// Supported access widths.
const (
	Size8  AccessSize = 1
	Size16 AccessSize = 2
	Size32 AccessSize = 4
	Size64 AccessSize = 8
)

// Valid reports whether s is one of the supported access widths.
func (s AccessSize) Valid() bool {
	switch s {
	case Size8, Size16, Size32, Size64:
		return true
	}
	return false
}

// Error is returned for invalid physical memory accesses.
type Error struct {
	Op   string // "read" or "write"
	Addr Addr
	Size AccessSize
	Why  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("phys: %s %d bytes at %v: %s", e.Op, int(e.Size), e.Addr, e.Why)
}

// Stats counts traffic into a Memory, for experiment reporting. It is
// a read-only view assembled from the obs counter cells on demand (the
// thin compatibility accessor over the unified metrics plane).
type Stats struct {
	Reads      uint64 // word-sized read operations
	Writes     uint64 // word-sized write operations
	BytesRead  uint64
	BytesWrote uint64
}

// counters is the live metric storage: typed obs cells, registered
// with the machine's registry at construction and captured by value in
// snapshots so access statistics rewind with the world.
type counters struct {
	reads      obs.Counter
	writes     obs.Counter
	bytesRead  obs.Counter
	bytesWrote obs.Counter
}

// Chunked backing store: physical memory is materialized lazily in
// chunkSize pieces. A fresh Memory allocates only a chunk-pointer table;
// chunks spring into existence on first write. Reads of never-written
// chunks return zeros without allocating, which is exactly the semantics
// of zero-filled RAM.
//
// Why it matters: the exploration and measurement harnesses build
// thousands of disposable worlds, each with multi-MiB memories of which
// a handful of pages are ever touched. Eagerly allocating (and zeroing)
// the flat array dominated the whole simulator's host-CPU profile
// (~70% in memclr); lazy chunks cut the fixed per-world cost to a
// small pointer table. Chunks are page-sized (8 KiB) so that the
// snapshot machinery's copy-on-write granularity matches the unit the
// workloads actually touch: restoring a world after a run re-shares
// whole chunks, and the first post-snapshot write to a page clones
// exactly that page.
const (
	chunkShift = 13 // 8 KiB chunks: one simulated page per chunk
	chunkSize  = 1 << chunkShift
	chunkMask  = chunkSize - 1
)

// Memory is a flat physical memory of fixed size. The zero value is not
// usable; construct with New. Memory is not safe for concurrent use: the
// simulator is single-threaded by design (determinism), so no locking is
// needed or wanted.
type Memory struct {
	size   int
	chunks [][]byte // lazily allocated; nil chunk reads as zeros
	shared []bool   // chunk is owned by a snapshot: copy before write
	ctr    counters
}

// New allocates a physical memory of size bytes, zero-filled. Size must
// be a positive multiple of 8 so that aligned 64-bit accesses cannot
// straddle the end. Backing storage is materialized lazily on first
// write, chunk by chunk.
func New(size int) *Memory {
	if size <= 0 || size%8 != 0 {
		panic(fmt.Sprintf("phys: invalid memory size %d", size))
	}
	nChunks := (size + chunkSize - 1) >> chunkShift
	return &Memory{size: size, chunks: make([][]byte, nChunks)}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() int { return m.size }

// chunkRO returns the chunk containing addr for reading (nil means the
// chunk was never written: all zeros).
func (m *Memory) chunkRO(addr Addr) []byte { return m.chunks[addr>>chunkShift] }

// chunkRW returns the chunk containing addr, materializing it on first
// write. Chunks owned by a snapshot (copy-on-write) are cloned on the
// first write after Snapshot/Restore, so snapshot contents are immutable
// and worlds restored from the same snapshot never see each other's
// writes. Every mutating path (Write, WriteBytes, Copy, Fill) funnels
// through here, which is what makes the single shared-flag check a
// complete COW barrier.
func (m *Memory) chunkRW(addr Addr) []byte {
	i := addr >> chunkShift
	c := m.chunks[i]
	if c == nil {
		n := chunkSize
		if rem := m.size - int(i)<<chunkShift; rem < n {
			n = rem
		}
		c = make([]byte, n)
		m.chunks[i] = c
	} else if m.shared != nil && m.shared[i] {
		dup := make([]byte, len(c))
		copy(dup, c)
		m.chunks[i] = dup
		m.shared[i] = false
		c = dup
	}
	return c
}

// Snapshot is an O(#materialized chunks) copy-on-write capture of a
// Memory's contents and access counters. The byte slices it references
// are frozen: after Snapshot(), the first write to a captured chunk —
// by the original memory or by any memory restored from the snapshot —
// clones that chunk first. A snapshot can therefore back any number of
// worlds, including worlds running concurrently on different
// goroutines, without copies of the untouched majority of RAM.
type Snapshot struct {
	size   int
	chunks [][]byte
	ctr    counters
}

// Snapshot captures the current contents. It marks every materialized
// chunk copy-on-write in m, so m's subsequent writes cannot leak into
// the snapshot.
func (m *Memory) Snapshot() *Snapshot {
	if m.shared == nil {
		m.shared = make([]bool, len(m.chunks))
	}
	s := &Snapshot{size: m.size, chunks: make([][]byte, len(m.chunks)), ctr: m.ctr}
	for i, c := range m.chunks {
		if c != nil {
			m.shared[i] = true
		}
		s.chunks[i] = c
	}
	return s
}

// Restore rewinds m to the snapshot's contents and counters, in
// O(#chunks): it re-points the chunk table at the snapshot's frozen
// chunks and re-marks them copy-on-write. The snapshot must come from a
// memory of the same size.
func (m *Memory) Restore(s *Snapshot) error {
	if s.size != m.size {
		return &Error{Op: "restore", Addr: 0, Size: 0, Why: "snapshot is from a different-sized memory"}
	}
	if m.shared == nil {
		m.shared = make([]bool, len(m.chunks))
	}
	for i, c := range s.chunks {
		m.chunks[i] = c
		m.shared[i] = c != nil
	}
	m.ctr = s.ctr
	return nil
}

// FromSnapshot builds a fresh Memory whose initial contents are the
// snapshot's, sharing the frozen chunks copy-on-write.
func FromSnapshot(s *Snapshot) *Memory {
	m := New(s.size)
	m.Restore(s) // same size by construction
	return m
}

// Stats returns a snapshot of the access counters.
func (m *Memory) Stats() Stats {
	return Stats{
		Reads:      m.ctr.reads.Value(),
		Writes:     m.ctr.writes.Value(),
		BytesRead:  m.ctr.bytesRead.Value(),
		BytesWrote: m.ctr.bytesWrote.Value(),
	}
}

// ResetStats zeroes the access counters.
func (m *Memory) ResetStats() { m.ctr = counters{} }

// RegisterMetrics publishes the memory's counters in a registry.
func (m *Memory) RegisterMetrics(r *obs.Registry) {
	r.RegisterCounter("phys.reads", &m.ctr.reads)
	r.RegisterCounter("phys.writes", &m.ctr.writes)
	r.RegisterCounter("phys.bytes_read", &m.ctr.bytesRead)
	r.RegisterCounter("phys.bytes_wrote", &m.ctr.bytesWrote)
}

// Contains reports whether an access of the given size at addr lies
// entirely inside memory.
func (m *Memory) Contains(addr Addr, size AccessSize) bool {
	end := uint64(addr) + uint64(size)
	return uint64(addr) < uint64(m.size) && end <= uint64(m.size) && end >= uint64(size)
}

func (m *Memory) check(op string, addr Addr, size AccessSize) error {
	if !size.Valid() {
		return &Error{Op: op, Addr: addr, Size: size, Why: "unsupported access size"}
	}
	if uint64(addr)%uint64(size) != 0 {
		return &Error{Op: op, Addr: addr, Size: size, Why: "unaligned access"}
	}
	if !m.Contains(addr, size) {
		return &Error{Op: op, Addr: addr, Size: size, Why: "out of range"}
	}
	return nil
}

// Read returns size bytes at addr as a little-endian value (Alpha is
// little-endian). The access must be naturally aligned and in range.
func (m *Memory) Read(addr Addr, size AccessSize) (uint64, error) {
	if err := m.check("read", addr, size); err != nil {
		return 0, err
	}
	m.ctr.reads.Inc()
	m.ctr.bytesRead.Add(uint64(size))
	c := m.chunkRO(addr)
	if c == nil {
		return 0, nil // never-written chunk: zero-filled RAM
	}
	// A naturally aligned access of <= 8 bytes never straddles a chunk.
	b := c[addr&chunkMask:]
	switch size {
	case Size8:
		return uint64(b[0]), nil
	case Size16:
		return uint64(binary.LittleEndian.Uint16(b)), nil
	case Size32:
		return uint64(binary.LittleEndian.Uint32(b)), nil
	default:
		return binary.LittleEndian.Uint64(b), nil
	}
}

// Write stores the low size bytes of val at addr, little-endian. The
// access must be naturally aligned and in range.
func (m *Memory) Write(addr Addr, size AccessSize, val uint64) error {
	if err := m.check("write", addr, size); err != nil {
		return err
	}
	m.ctr.writes.Inc()
	m.ctr.bytesWrote.Add(uint64(size))
	b := m.chunkRW(addr)[addr&chunkMask:]
	switch size {
	case Size8:
		b[0] = byte(val)
	case Size16:
		binary.LittleEndian.PutUint16(b, uint16(val))
	case Size32:
		binary.LittleEndian.PutUint32(b, uint32(val))
	default:
		binary.LittleEndian.PutUint64(b, val)
	}
	return nil
}

// ReadBytes copies n bytes starting at addr into a fresh slice. Used by
// DMA transfer modelling, which moves arbitrary-length runs.
func (m *Memory) ReadBytes(addr Addr, n int) ([]byte, error) {
	if n < 0 || uint64(addr)+uint64(n) > uint64(m.size) || uint64(addr) > uint64(m.size) {
		return nil, &Error{Op: "read", Addr: addr, Size: AccessSize(n), Why: "byte range out of bounds"}
	}
	out := make([]byte, n)
	if err := m.ReadInto(addr, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadInto copies len(dst) bytes starting at addr into dst without
// allocating. It is the burst-read primitive for the DMA transfer
// walker, which reuses one chunk buffer across an entire stream.
// Never-written source chunks read as zeros.
func (m *Memory) ReadInto(addr Addr, dst []byte) error {
	n := len(dst)
	if uint64(addr)+uint64(n) > uint64(m.size) || uint64(addr) > uint64(m.size) {
		return &Error{Op: "read", Addr: addr, Size: AccessSize(n), Why: "byte range out of bounds"}
	}
	for off := 0; off < n; {
		a := addr + Addr(off)
		span := chunkSize - int(a&chunkMask)
		if span > n-off {
			span = n - off
		}
		if c := m.chunkRO(a); c != nil {
			copy(dst[off:off+span], c[a&chunkMask:])
		} else {
			// Never-written chunk: the destination must read as zeros
			// even when dst is a dirty reused buffer.
			z := dst[off : off+span]
			for i := range z {
				z[i] = 0
			}
		}
		off += span
	}
	m.ctr.bytesRead.Add(uint64(n))
	return nil
}

// WriteBytes copies b into memory starting at addr.
func (m *Memory) WriteBytes(addr Addr, b []byte) error {
	if uint64(addr)+uint64(len(b)) > uint64(m.size) || uint64(addr) > uint64(m.size) {
		return &Error{Op: "write", Addr: addr, Size: AccessSize(len(b)), Why: "byte range out of bounds"}
	}
	for off := 0; off < len(b); {
		a := addr + Addr(off)
		span := chunkSize - int(a&chunkMask)
		if span > len(b)-off {
			span = len(b) - off
		}
		copy(m.chunkRW(a)[a&chunkMask:], b[off:off+span])
		off += span
	}
	m.ctr.bytesWrote.Add(uint64(len(b)))
	return nil
}

// Copy moves n bytes from src to dst inside this memory, handling
// overlap like memmove. It is the data-movement primitive used by the
// local DMA transfer engine.
func (m *Memory) Copy(dst, src Addr, n int) error {
	if n < 0 {
		return &Error{Op: "copy", Addr: src, Size: AccessSize(n), Why: "negative length"}
	}
	if uint64(src)+uint64(n) > uint64(m.size) || uint64(src) > uint64(m.size) {
		return &Error{Op: "copy", Addr: src, Size: AccessSize(n), Why: "source out of bounds"}
	}
	if uint64(dst)+uint64(n) > uint64(m.size) || uint64(dst) > uint64(m.size) {
		return &Error{Op: "copy", Addr: dst, Size: AccessSize(n), Why: "destination out of bounds"}
	}
	// Snapshot the source run first: chunk-wise copies cannot preserve
	// memmove overlap semantics directly.
	tmp := make([]byte, n)
	for off := 0; off < n; {
		a := src + Addr(off)
		span := chunkSize - int(a&chunkMask)
		if span > n-off {
			span = n - off
		}
		if c := m.chunkRO(a); c != nil {
			copy(tmp[off:off+span], c[a&chunkMask:])
		}
		off += span
	}
	for off := 0; off < n; {
		a := dst + Addr(off)
		span := chunkSize - int(a&chunkMask)
		if span > n-off {
			span = n - off
		}
		copy(m.chunkRW(a)[a&chunkMask:], tmp[off:off+span])
		off += span
	}
	m.ctr.bytesRead.Add(uint64(n))
	m.ctr.bytesWrote.Add(uint64(n))
	return nil
}

// Fill sets n bytes starting at addr to v. Convenience for tests and
// workload setup. Zero fills of never-written chunks are free.
func (m *Memory) Fill(addr Addr, n int, v byte) error {
	if uint64(addr)+uint64(n) > uint64(m.size) || n < 0 {
		return &Error{Op: "write", Addr: addr, Size: AccessSize(n), Why: "fill out of bounds"}
	}
	for off := 0; off < n; {
		a := addr + Addr(off)
		span := chunkSize - int(a&chunkMask)
		if span > n-off {
			span = n - off
		}
		if v == 0 && m.chunkRO(a) == nil {
			off += span
			continue // never-written chunk is already zero
		}
		c := m.chunkRW(a)[a&chunkMask:]
		for i := 0; i < span; i++ {
			c[i] = v
		}
		off += span
	}
	m.ctr.bytesWrote.Add(uint64(n))
	return nil
}
