package phys

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadSize(t *testing.T) {
	for _, size := range []int{0, -8, 7, 13} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", size)
				}
			}()
			New(size)
		}()
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := New(4096)
	cases := []struct {
		addr Addr
		size AccessSize
		val  uint64
	}{
		{0, Size8, 0xab},
		{1, Size8, 0xff},
		{2, Size16, 0xbeef},
		{4, Size32, 0xdeadbeef},
		{8, Size64, 0x0123456789abcdef},
		{4088, Size64, ^uint64(0)},
	}
	for _, c := range cases {
		if err := m.Write(c.addr, c.size, c.val); err != nil {
			t.Fatalf("Write(%v, %d, %#x): %v", c.addr, c.size, c.val, err)
		}
		got, err := m.Read(c.addr, c.size)
		if err != nil {
			t.Fatalf("Read(%v, %d): %v", c.addr, c.size, err)
		}
		if got != c.val {
			t.Errorf("round trip at %v size %d: got %#x want %#x", c.addr, c.size, got, c.val)
		}
	}
}

func TestWriteTruncatesToSize(t *testing.T) {
	m := New(64)
	if err := m.Write(0, Size8, 0x1234); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Read(0, Size8)
	if got != 0x34 {
		t.Fatalf("8-bit write stored %#x, want 0x34", got)
	}
	// Neighbouring byte untouched.
	if v, _ := m.Read(1, Size8); v != 0 {
		t.Fatalf("neighbouring byte dirtied: %#x", v)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	m := New(64)
	if err := m.Write(0, Size32, 0x11223344); err != nil {
		t.Fatal(err)
	}
	b, err := m.ReadBytes(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, []byte{0x44, 0x33, 0x22, 0x11}) {
		t.Fatalf("layout = % x, want little-endian", b)
	}
}

func TestAccessErrors(t *testing.T) {
	m := New(64)
	tests := []struct {
		name string
		err  error
		want string
	}{
		{"unaligned16", m.Write(1, Size16, 0), "unaligned"},
		{"unaligned64", m.Write(4, Size64, 0), "unaligned"},
		{"oob write", m.Write(64, Size8, 0), "out of range"},
		{"badsize", m.Write(0, 3, 0), "unsupported"},
	}
	if _, err := m.Read(56, Size64); err != nil {
		t.Errorf("last aligned word read failed: %v", err)
	}
	m2 := New(64 - 8 + 8) // 64 bytes; straddle test uses aligned addr past end
	if _, err := m2.Read(64, Size64); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("straddling read: err = %v", err)
	}
	for _, c := range tests {
		if c.err == nil || !strings.Contains(c.err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, c.err, c.want)
		}
	}
}

func TestByteRangeOps(t *testing.T) {
	m := New(256)
	src := []byte("user-level DMA without kernel modification")
	if err := m.WriteBytes(10, src); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadBytes(10, len(src))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("ReadBytes = %q, want %q", got, src)
	}
	if err := m.WriteBytes(250, make([]byte, 10)); err == nil {
		t.Fatal("WriteBytes past end did not error")
	}
	if _, err := m.ReadBytes(250, 10); err == nil {
		t.Fatal("ReadBytes past end did not error")
	}
	if _, err := m.ReadBytes(0, -1); err == nil {
		t.Fatal("negative ReadBytes did not error")
	}
}

func TestCopy(t *testing.T) {
	m := New(256)
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := m.WriteBytes(0, payload); err != nil {
		t.Fatal(err)
	}
	if err := m.Copy(100, 0, len(payload)); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadBytes(100, len(payload))
	if !bytes.Equal(got, payload) {
		t.Fatalf("Copy result = %v, want %v", got, payload)
	}
	// Overlapping forward copy must behave like memmove.
	if err := m.Copy(2, 0, len(payload)); err != nil {
		t.Fatal(err)
	}
	got, _ = m.ReadBytes(2, len(payload))
	if !bytes.Equal(got, payload) {
		t.Fatalf("overlapping Copy = %v, want %v", got, payload)
	}
	if err := m.Copy(0, 250, 16); err == nil {
		t.Fatal("out-of-bounds source Copy did not error")
	}
	if err := m.Copy(250, 0, 16); err == nil {
		t.Fatal("out-of-bounds destination Copy did not error")
	}
	if err := m.Copy(0, 0, -1); err == nil {
		t.Fatal("negative-length Copy did not error")
	}
}

func TestFill(t *testing.T) {
	m := New(64)
	if err := m.Fill(8, 16, 0xee); err != nil {
		t.Fatal(err)
	}
	b, _ := m.ReadBytes(8, 16)
	for _, v := range b {
		if v != 0xee {
			t.Fatalf("Fill left byte %#x", v)
		}
	}
	if v, _ := m.Read(7, Size8); v != 0 {
		t.Fatal("Fill dirtied preceding byte")
	}
	if v, _ := m.Read(24, Size8); v != 0 {
		t.Fatal("Fill dirtied following byte")
	}
	if err := m.Fill(60, 16, 1); err == nil {
		t.Fatal("out-of-bounds Fill did not error")
	}
}

func TestStats(t *testing.T) {
	m := New(64)
	m.Write(0, Size64, 1)
	m.Write(8, Size32, 1)
	m.Read(0, Size64)
	s := m.Stats()
	if s.Writes != 2 || s.Reads != 1 || s.BytesWrote != 12 || s.BytesRead != 8 {
		t.Fatalf("stats = %+v", s)
	}
	m.ResetStats()
	if m.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not zero counters")
	}
}

// Property: a write followed by a read at the same (addr, size) returns
// the value truncated to the access width, for all aligned in-range pairs.
func TestReadAfterWriteProperty(t *testing.T) {
	m := New(1 << 12)
	sizes := []AccessSize{Size8, Size16, Size32, Size64}
	err := quick.Check(func(rawAddr uint16, sizeIdx uint8, val uint64) bool {
		size := sizes[int(sizeIdx)%len(sizes)]
		addr := Addr(rawAddr) % Addr(m.Size()-8)
		addr -= addr % Addr(size) // align
		if err := m.Write(addr, size, val); err != nil {
			return false
		}
		got, err := m.Read(addr, size)
		if err != nil {
			return false
		}
		mask := ^uint64(0)
		if size != Size64 {
			mask = (uint64(1) << (8 * uint(size))) - 1
		}
		return got == val&mask
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}
