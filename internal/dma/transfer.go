package dma

import (
	"uldma/internal/phys"
	"uldma/internal/sim"
)

// Transfer is one DMA data movement. The engine models transfers
// analytically: the payload is snapshotted from the source when the
// transfer is accepted, delivery happens as a scheduled event at the
// computed completion time, and status reads interpolate the remaining
// byte count in between. The engine is a single-channel device:
// back-to-back transfers queue behind each other.
type Transfer struct {
	Src  phys.Addr
	Dst  phys.Addr
	Size uint64

	// Start and End bound the data movement in simulated time (Start
	// includes queueing behind an earlier transfer plus engine startup).
	Start sim.Time
	End   sim.Time

	// Remote transfer fields: Node and RemoteAddr identify the
	// destination on the cluster fabric.
	Remote     bool
	Node       int
	RemoteAddr phys.Addr

	// Failed marks a transfer that was rejected at validation time (or,
	// for a virtual transfer, failed on an unresolvable mid-transfer
	// fault); it never (fully) moved data.
	Failed bool

	// Virt marks a transfer initiated on device virtual addresses: Src
	// and Dst hold device VAs for translation context VCtx, translated
	// at walk time through the engine's IOMMU (va.go).
	Virt bool
	VCtx int

	delivered bool
	ring      bool      // started by a descriptor-ring walk (see startRing)
	vw        *vaWalker // in-flight virtual delivery state (nil once done)
}

// Remaining returns the bytes still to move at time now: the paper's
// register-context read value ("the number of bytes that need to be
// transferred yet ... 0 means completed").
func (t *Transfer) Remaining(now sim.Time) uint64 {
	if t.Failed {
		return StatusFailure
	}
	if t.vw != nil && !t.delivered && now >= t.End {
		// A virtual transfer past its nominal End but still walking (or
		// parked on a fault): the real End is still moving, so report the
		// minimum in-progress count rather than completion.
		return 1
	}
	if now >= t.End || t.Size == 0 {
		return 0
	}
	if now <= t.Start {
		return t.Size
	}
	total := t.End - t.Start
	left := t.End - now
	rem := uint64(float64(t.Size) * float64(left) / float64(total))
	if rem == 0 {
		rem = 1 // not complete until End
	}
	if rem > t.Size {
		rem = t.Size
	}
	return rem
}

// Done reports whether the payload has been delivered.
func (t *Transfer) Done(now sim.Time) bool { return !t.Failed && now >= t.End && t.vw == nil }

// busyUntil tracks the single-channel queueing (stored on the engine).
type transferEngine struct {
	busyUntil sim.Time
}

// validate checks a requested transfer against the engine's limits.
func (e *Engine) validateTransfer(src, dst phys.Addr, size uint64) bool {
	if e.cfg.MaxTransfer != 0 && size > e.cfg.MaxTransfer {
		return false
	}
	if uint64(src)+size > e.cfg.MemSize || uint64(src) > e.cfg.MemSize {
		return false // source must be local, fully in memory
	}
	if e.cfg.RemoteBase != 0 && dst >= e.cfg.RemoteBase {
		if e.remote == nil {
			return false
		}
		return true
	}
	if uint64(dst)+size > e.cfg.MemSize || uint64(dst) > e.cfg.MemSize {
		return false
	}
	return true
}

// start accepts or rejects a transfer with the given physical
// arguments. On acceptance the payload is snapshotted, the completion
// event is scheduled, and the transfer becomes the engine's "last".
func (e *Engine) start(now sim.Time, src, dst phys.Addr, size uint64) (*Transfer, bool) {
	if !e.validateTransfer(src, dst, size) {
		e.ctr.rejected.Inc()
		e.last = &Transfer{Src: src, Dst: dst, Size: size, Failed: true, Start: now, End: now}
		return e.last, false
	}
	begin := now
	if e.xfer.busyUntil > begin {
		begin = e.xfer.busyUntil
	}
	begin += e.cfg.StartupTime
	duration := sim.Time(0)
	if size > 0 {
		duration = sim.Time(uint64(sim.Second) / e.cfg.Bandwidth * size)
		if duration == 0 {
			duration = sim.Nanosecond
		}
	}
	t := e.newTransfer()
	t.Src, t.Dst, t.Size, t.Start, t.End = src, dst, size, begin, begin+duration
	if e.cfg.RemoteBase != 0 && dst >= e.cfg.RemoteBase {
		t.Remote = true
		off := uint64(dst - e.cfg.RemoteBase)
		t.Node = int(off >> e.cfg.NodeShift)
		t.RemoteAddr = phys.Addr(off & (1<<e.cfg.NodeShift - 1))
		e.ctr.remoteStarted.Inc()
	}
	e.xfer.busyUntil = t.End
	e.ctr.started.Inc()
	e.last = t
	if e.logging {
		e.log = append(e.log, t)
	}
	if e.reserver != nil && t.End > t.Start {
		// The engine masters the bus while it streams: CPU traffic in
		// this window pays contention.
		e.reserver.ReserveDMA(t.Start, t.End)
	}

	e.schedule(t)
	return t, true
}

// newTransfer returns a Transfer record: fresh while the log is kept
// (records are retained forever), recycled from the free list once
// logging is off (see Engine.SetLogging).
func (e *Engine) newTransfer() *Transfer {
	if !e.logging {
		if n := len(e.freeT); n > 0 {
			t := e.freeT[n-1]
			e.freeT = e.freeT[:n-1]
			*t = Transfer{}
			return t
		}
	}
	return &Transfer{}
}

// snapshot reads the whole payload at acceptance time into a pooled
// buffer (returned to the pool by the delivery path via putBuf). Only
// the bare-engine and remote paths need it; local event-driven
// transfers re-read each burst at its burst time and never touch this
// copy, so skipping the snapshot there removes a per-transfer
// allocation of the full payload size from the hot path.
func (e *Engine) snapshot(t *Transfer) []byte {
	data := e.getBuf(t.Size)
	if err := e.mem.ReadInto(t.Src, data); err != nil {
		// validate() bounds-checked; failure here is a model bug.
		panic(err)
	}
	return data
}

// getBuf pops a pooled payload buffer of length n (allocating if the
// pool is empty or its top is too small).
func (e *Engine) getBuf(n uint64) []byte {
	if k := len(e.freeBuf); k > 0 && uint64(cap(e.freeBuf[k-1])) >= n {
		b := e.freeBuf[k-1][:n]
		e.freeBuf = e.freeBuf[:k-1]
		return b
	}
	return make([]byte, n)
}

// putBuf returns a payload buffer to the pool.
func (e *Engine) putBuf(b []byte) { e.freeBuf = append(e.freeBuf, b) }

// startCtx starts a transfer on behalf of register context ctx. With
// logging off, the context's previous transfer is recycled here: once a
// context moves on, nothing can reach the old record any more (e.last
// already points at the new one, status polls go through ctxs[ctx].cur,
// and delivered transfers have no pending events).
func (e *Engine) startCtx(now sim.Time, ctx int, src, dst phys.Addr, size uint64) (*Transfer, bool) {
	old := e.ctxs[ctx].cur
	t, ok := e.start(now, src, dst, size)
	if ok {
		e.ctxs[ctx].cur = t
		if !e.logging && old != nil && old != t && old.delivered {
			e.freeT = append(e.freeT, old)
		}
	}
	return t, ok
}

// transferChunk is the engine's burst size: local transfers become
// visible in destination memory chunk by chunk as the stream
// progresses, the way a real bus-mastering DMA lands its bursts.
const transferChunk = 4096

// finish records a transfer's completion.
func (e *Engine) finish(t *Transfer) {
	t.delivered = true
	e.ctr.completed.Inc()
	e.ctr.bytesMoved.Add(t.Size)
}

// remoteShip is one in-flight remote payload waiting for its End event:
// the pooled replacement for a per-transfer closure. The fire closure is
// built once per record and captures only the record, so scheduling the
// ship rides the event queue's pooled no-handle path allocation-free.
type remoteShip struct {
	e    *Engine
	t    *Transfer
	data []byte
	fire func(sim.Time)
}

func (e *Engine) getShip() *remoteShip {
	if n := len(e.freeShip); n > 0 {
		s := e.freeShip[n-1]
		e.freeShip = e.freeShip[:n-1]
		return s
	}
	s := &remoteShip{e: e}
	s.fire = func(at sim.Time) { s.run(at) }
	return s
}

// run hands the payload to the fabric. The fabric copies what it keeps
// (RemoteHandler contract), so the payload buffer goes straight back to
// the pool, as does the ship record itself.
func (s *remoteShip) run(at sim.Time) {
	e, t, data := s.e, s.t, s.data
	s.t, s.data = nil, nil
	e.freeShip = append(e.freeShip, s)
	err := e.remote.Deliver(t.Node, t.RemoteAddr, data, at)
	e.putBuf(data)
	if err != nil {
		t.Failed = true
		return
	}
	e.finish(t)
}

// localWalker is the delivery state of one local transfer. A single
// walker replaces the old one-closure-per-chunk scheme: every burst
// event shares the walker's one bound step method and one reusable
// chunk buffer, and rides the event queue's pooled ScheduleFunc path —
// so an N-chunk stream costs one walker allocation instead of N event
// + N closure + N chunk-slice allocations.
type localWalker struct {
	e   *Engine
	t   *Transfer
	off uint64 // start of the next burst to land
	buf []byte // reusable burst buffer
}

// step lands the next burst: read the source AT BURST TIME (so a CPU
// store to a not-yet-read part of the source is picked up, exactly as
// on real hardware — and why well-behaved clients don't touch
// in-flight buffers), then write it to the destination. Bursts fire in
// (At, seq) order, so off advances monotonically.
func (w *localWalker) step(sim.Time) {
	t := w.t
	if t.Failed {
		return
	}
	lo := w.off
	hi := lo + transferChunk
	if hi > t.Size {
		hi = t.Size
	}
	w.off = hi
	buf := w.buf[:hi-lo]
	if err := w.e.mem.ReadInto(t.Src+phys.Addr(lo), buf); err != nil {
		t.Failed = true
		return
	}
	if err := w.e.mem.WriteBytes(t.Dst+phys.Addr(lo), buf); err != nil {
		t.Failed = true
		return
	}
	if hi == t.Size {
		w.e.finish(t)
	}
}

// schedule arranges delivery of the payload. Local transfers land in
// transferChunk-sized pieces spread across [Start, End], each chunk
// read from the source at its burst time. Remote payloads are
// snapshotted at acceptance and handed to the fabric as one message at
// End, where link serialization takes over. All burst events are
// scheduled up front at acceptance, preserving the queue's FIFO
// tie-break order across overlapping transfers.
func (e *Engine) schedule(t *Transfer) {
	if e.events == nil {
		// Bare-engine tests: deliver eagerly in one piece.
		data := e.snapshot(t)
		if t.Remote {
			if err := e.remote.Deliver(t.Node, t.RemoteAddr, data, t.End); err != nil {
				e.putBuf(data)
				t.Failed = true
				return
			}
		} else if err := e.mem.WriteBytes(t.Dst, data); err != nil {
			e.putBuf(data)
			t.Failed = true
			return
		}
		e.putBuf(data)
		e.finish(t)
		return
	}
	if t.Size == 0 {
		if e.ringZeroDefer {
			// Ring path: the pooled completion record (ring.go) delivers
			// finish at t.End, so nothing is scheduled here and the
			// doorbell hot path stays allocation-free.
			return
		}
		e.events.ScheduleFunc(t.End, func(sim.Time) { e.finish(t) })
		return
	}
	if t.Remote {
		// Snapshot the whole payload at acceptance and ship it when the
		// engine finishes streaming it out. The ship record (and its one
		// fire closure) is pooled, so a steady stream of remote transfers
		// allocates nothing here.
		s := e.getShip()
		s.t, s.data = t, e.snapshot(t)
		e.events.ScheduleFunc(t.End, s.fire)
		return
	}
	chunks := int((t.Size + transferChunk - 1) / transferChunk)
	bufN := uint64(transferChunk)
	if t.Size < bufN {
		bufN = t.Size
	}
	w := &localWalker{e: e, t: t, buf: make([]byte, bufN)}
	step := w.step // one bound closure shared by every burst
	span := t.End - t.Start
	for i := 0; i < chunks; i++ {
		hi := uint64(i)*transferChunk + transferChunk
		if hi > t.Size {
			hi = t.Size
		}
		// Chunk i lands when its last byte has streamed.
		e.events.ScheduleFunc(t.Start+sim.Time(uint64(span)*hi/t.Size), step)
	}
}
