package dma

import (
	"testing"

	"uldma/internal/phys"
	"uldma/internal/sim"
)

// Ring fixture layout: the doorbell window sits clear of every other
// engine window, the descriptor array and the data buffers live in
// local memory on page boundaries.
const (
	ringBase    = phys.Addr(0x2200_0000)
	ringDescs   = phys.Addr(0x10000)
	ringSrc     = phys.Addr(0x20000)
	ringDst     = phys.Addr(0x30000)
	ringBufSize = uint64(testPageSize)
)

func newRingEngine(tb testing.TB, mode Mode) *engFixture {
	tb.Helper()
	cfg := testConfig(mode)
	cfg.RingBase = ringBase
	mem := phys.New(testMemSize)
	events := sim.NewEventQueue()
	e, err := New(cfg, sim.NewClock(), events, mem)
	if err != nil {
		tb.Fatal(err)
	}
	return &engFixture{e: e, mem: mem, events: events}
}

// armRing installs a depth-slot ring on context 0 with the src and dst
// test buffers registered.
func armRing(t *testing.T, f *engFixture, depth uint64) {
	t.Helper()
	if err := f.e.SetupRing(0, ringDescs, depth); err != nil {
		t.Fatal(err)
	}
	for _, ext := range []phys.Addr{ringSrc, ringDst} {
		if err := f.e.RingAllow(0, ext, ringBufSize); err != nil {
			t.Fatal(err)
		}
	}
}

// post writes one descriptor into slot (cached-store side of the
// protocol: plain memory writes, the engine only sees the doorbell).
func post(t *testing.T, f *engFixture, slot uint64, src, dst phys.Addr, size uint64) {
	t.Helper()
	base := ringDescs + phys.Addr(slot*DescBytes)
	for _, w := range []struct {
		off uint64
		val uint64
	}{
		{DescSrc, uint64(src)},
		{DescDst, uint64(dst)},
		{DescSize, size},
		{DescStatus, RingPending},
	} {
		if err := f.mem.Write(base+phys.Addr(w.off), phys.Size64, w.val); err != nil {
			t.Fatal(err)
		}
	}
}

func doorbell(t *testing.T, f *engFixture, now sim.Time, val uint64) {
	t.Helper()
	if _, err := f.e.Store(now, ringBase, phys.Size64, val); err != nil {
		t.Fatal(err)
	}
}

func completion(t *testing.T, f *engFixture, slot uint64) (status, stamp uint64) {
	t.Helper()
	base := ringDescs + phys.Addr(slot*DescBytes)
	status, err := f.mem.Read(base+DescStatus, phys.Size64)
	if err != nil {
		t.Fatal(err)
	}
	stamp, err = f.mem.Read(base+DescStamp, phys.Size64)
	if err != nil {
		t.Fatal(err)
	}
	return status, stamp
}

func TestRingSetupValidation(t *testing.T) {
	f := newRingEngine(t, ModePaired)
	cases := []struct {
		name  string
		ctx   int
		base  phys.Addr
		depth uint64
	}{
		{"ctx negative", -1, ringDescs, 8},
		{"ctx out of range", 99, ringDescs, 8},
		{"zero depth", 0, ringDescs, 0},
		{"depth too deep", 0, ringDescs, f.e.Config().RingMaxDepth() + 1},
		{"unaligned base", 0, ringDescs + 8, 8},
		{"base outside memory", 0, phys.Addr(testMemSize), 8},
	}
	for _, tc := range cases {
		if err := f.e.SetupRing(tc.ctx, tc.base, tc.depth); err == nil {
			t.Errorf("%s: SetupRing accepted", tc.name)
		}
	}
	// No ring window configured at all.
	bare := newEngine(t, ModePaired, nil)
	if err := bare.e.SetupRing(0, ringDescs, 8); err == nil {
		t.Error("SetupRing succeeded with RingBase unset")
	}
	// RingAllow needs an installed ring and in-memory extents.
	if err := f.e.RingAllow(0, ringSrc, ringBufSize); err == nil {
		t.Error("RingAllow succeeded before SetupRing")
	}
	armRing(t, f, 8)
	if err := f.e.RingAllow(0, ringSrc, 0); err == nil {
		t.Error("RingAllow accepted a zero-size extent")
	}
	if err := f.e.RingAllow(0, phys.Addr(testMemSize-16), 64); err == nil {
		t.Error("RingAllow accepted an extent past memory")
	}
}

// TestRingDoorbellWalksChain is the basic contract: one doorbell store
// kicks N transfers, the data moves, and every slot gets a completion
// record with an ascending simulated timestamp.
func TestRingDoorbellWalksChain(t *testing.T) {
	f := newRingEngine(t, ModePaired)
	armRing(t, f, 8)
	const n, size = 4, 512
	for slot := uint64(0); slot < n; slot++ {
		f.fillSrc(ringSrc+phys.Addr(slot*size), size, byte(0x40+slot))
		post(t, f, slot, ringSrc+phys.Addr(slot*size), ringDst+phys.Addr(slot*size), size)
	}
	doorbell(t, f, 0, n)
	f.settle()

	var prev uint64
	for slot := uint64(0); slot < n; slot++ {
		f.expectMoved(t, ringDst+phys.Addr(slot*size), size, byte(0x40+slot))
		status, stamp := completion(t, f, slot)
		if status != 0 {
			t.Errorf("slot %d: status %#x, want success", slot, status)
		}
		if stamp <= prev {
			t.Errorf("slot %d: stamp %d not after slot %d's %d", slot, stamp, slot-1, prev)
		}
		prev = stamp
	}
	s := f.e.Stats()
	if s.RingDoorbells != 1 || s.RingPosted != n || s.RingCompletions != n {
		t.Errorf("counters = doorbells %d posted %d completions %d, want 1/%d/%d",
			s.RingDoorbells, s.RingPosted, s.RingCompletions, n, n)
	}
	if _, _, _, inFlight := f.e.RingState(0); inFlight != 0 {
		t.Errorf("inFlight = %d after settle, want 0", inFlight)
	}
}

// TestRingHeadWrap posts more descriptors than the ring has slots,
// across two doorbells, and checks the head cursor wraps.
func TestRingHeadWrap(t *testing.T) {
	f := newRingEngine(t, ModePaired)
	armRing(t, f, 4)
	for _, batch := range []uint64{3, 3} {
		for i := uint64(0); i < batch; i++ {
			_, _, head, _ := f.e.RingState(0)
			post(t, f, (head+i)%4, ringSrc, ringDst, 0)
		}
		doorbell(t, f, 0, batch)
		f.settle()
	}
	if _, _, head, _ := f.e.RingState(0); head != 2 {
		t.Errorf("head = %d after 6 posts on a depth-4 ring, want 2", head)
	}
	if s := f.e.Stats(); s.RingPosted != 6 || s.RingCompletions != 6 {
		t.Errorf("posted %d completions %d, want 6/6", s.RingPosted, s.RingCompletions)
	}
}

// TestRingRejectsUnregistered pins the protection contract: a
// descriptor naming an address outside the registered extents gets a
// DMA_FAILURE completion record and moves no data.
func TestRingRejectsUnregistered(t *testing.T) {
	f := newRingEngine(t, ModePaired)
	armRing(t, f, 8)
	forged := phys.Addr(0x50000) // valid memory, never registered
	f.fillSrc(forged, 64, 0xEE)
	post(t, f, 0, forged, ringDst, 64)
	doorbell(t, f, 0, 1)
	f.settle()

	status, _ := completion(t, f, 0)
	if status != StatusFailure {
		t.Errorf("status = %#x, want DMA_FAILURE", status)
	}
	got, err := f.mem.Read(ringDst, phys.Size64)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("destination written (%#x) despite rejection", got)
	}
	if s := f.e.Stats(); s.Rejected == 0 || s.RingCompletions != 1 {
		t.Errorf("rejected %d completions %d, want >0/1", s.Rejected, s.RingCompletions)
	}
}

// TestRingKeyedDoorbell pins the amortized key check: in keyed mode the
// doorbell word carries key<<KeyShift|count, checked once per batch; a
// wrong or revoked key drops the whole batch silently.
func TestRingKeyedDoorbell(t *testing.T) {
	f := newRingEngine(t, ModeKeyed)
	armRing(t, f, 8)
	const key = 7
	if err := f.e.SetKey(0, key); err != nil {
		t.Fatal(err)
	}
	post(t, f, 0, ringSrc, ringDst, 0)
	post(t, f, 1, ringSrc, ringDst, 0)

	doorbell(t, f, 0, uint64(key+1)<<KeyShift|2) // forged key
	f.settle()
	if s := f.e.Stats(); s.KeyMismatches != 1 || s.RingPosted != 0 {
		t.Fatalf("forged key: mismatches %d posted %d, want 1/0", s.KeyMismatches, s.RingPosted)
	}
	if status, _ := completion(t, f, 0); status != RingPending {
		t.Fatalf("forged doorbell walked the ring: status %#x", status)
	}

	doorbell(t, f, 0, uint64(key)<<KeyShift|2) // good key, whole batch
	f.settle()
	if s := f.e.Stats(); s.RingPosted != 2 || s.RingCompletions != 2 {
		t.Fatalf("good key: posted %d completions %d, want 2/2", s.RingPosted, s.RingCompletions)
	}
}

// TestRingTeardownMidFlight re-arms the ring while a transfer is still
// streaming: the old completion record still lands (the engine owns the
// accepted transfer) but the new ring's bookkeeping is untouched, and a
// doorbell against a torn-down ring is rejected.
func TestRingTeardownMidFlight(t *testing.T) {
	f := newRingEngine(t, ModePaired)
	armRing(t, f, 8)
	f.fillSrc(ringSrc, 1024, 0xAB)
	post(t, f, 0, ringSrc, ringDst, 1024)
	doorbell(t, f, 0, 1)

	// Re-arm before the completion event fires.
	armRing(t, f, 8)
	if _, _, _, inFlight := f.e.RingState(0); inFlight != 0 {
		t.Fatalf("re-armed ring starts with inFlight %d", inFlight)
	}
	f.settle()
	status, stamp := completion(t, f, 0)
	if status != 0 || stamp == 0 {
		t.Errorf("stale completion record = %#x @%d, want success with stamp", status, stamp)
	}
	if _, _, _, inFlight := f.e.RingState(0); inFlight != 0 {
		t.Errorf("stale completion decremented the new ring: inFlight %d", inFlight)
	}

	f.e.TeardownRing(0)
	before := f.e.Stats().Rejected
	doorbell(t, f, 0, 1)
	if got := f.e.Stats().Rejected; got != before+1 {
		t.Errorf("doorbell on torn-down ring: rejected %d, want %d", got, before+1)
	}
}

// TestRingInFlightLoad pins the doorbell page's read side: one uncached
// load answers "has my whole batch completed?".
func TestRingInFlightLoad(t *testing.T) {
	f := newRingEngine(t, ModePaired)
	armRing(t, f, 8)
	f.fillSrc(ringSrc, 256, 0x11)
	for slot := uint64(0); slot < 3; slot++ {
		post(t, f, slot, ringSrc, ringDst+phys.Addr(slot*256), 256)
	}
	doorbell(t, f, 0, 3)
	got, _, err := f.e.Load(0, ringBase, phys.Size64)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("in-flight load = %d right after doorbell, want 3", got)
	}
	f.settle()
	if got, _, _ = f.e.Load(0, ringBase, phys.Size64); got != 0 {
		t.Errorf("in-flight load = %d after settle, want 0", got)
	}
}

// ringBatch drives one full doorbell->walk->completion cycle: post
// depth zero-size descriptors, one doorbell store, drain the completion
// events. Zero-size isolates the ring machinery itself — payload
// streaming (localWalker bursts) allocates per transfer by design and
// is outside the pinned path.
func ringBatch(f *engFixture, now sim.Time, depth uint64) sim.Time {
	for slot := uint64(0); slot < depth; slot++ {
		base := ringDescs + phys.Addr(slot%8*DescBytes)
		_ = f.mem.Write(base+DescSrc, phys.Size64, uint64(ringSrc))
		_ = f.mem.Write(base+DescDst, phys.Size64, uint64(ringDst))
		_ = f.mem.Write(base+DescSize, phys.Size64, 0)
	}
	if _, err := f.e.Store(now, ringBase, phys.Size64, depth); err != nil {
		panic(err)
	}
	return f.events.Drain(0)
}

// TestRingDoorbellZeroAllocs is the satellite pin: with logging off
// (pooled Transfer records, pooled completion records, prebuilt fire
// closures), the steady-state doorbell->walk->completion path allocates
// nothing.
func TestRingDoorbellZeroAllocs(t *testing.T) {
	f := newRingEngine(t, ModePaired)
	f.e.SetLogging(false)
	armRing(t, f, 8)
	now := sim.Time(0)
	for i := 0; i < 4; i++ { // warm the pools
		now = ringBatch(f, now, 8)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		now = ringBatch(f, now, 8)
	})
	if allocs > 0 {
		t.Fatalf("doorbell->walk->completion allocates %.1f/op, want 0", allocs)
	}
	if s := f.e.Stats(); s.RingCompletions != s.RingPosted {
		t.Fatalf("completions %d != posted %d", s.RingCompletions, s.RingPosted)
	}
}

// BenchmarkRingDoorbell measures the engine-side cost of one batched
// kick: 8 descriptors per doorbell, completions drained each batch.
func BenchmarkRingDoorbell(b *testing.B) {
	f := newRingEngine(b, ModePaired)
	f.e.SetLogging(false)
	if err := f.e.SetupRing(0, ringDescs, 8); err != nil {
		b.Fatal(err)
	}
	if err := f.e.RingAllow(0, ringSrc, ringBufSize); err != nil {
		b.Fatal(err)
	}
	if err := f.e.RingAllow(0, ringDst, ringBufSize); err != nil {
		b.Fatal(err)
	}
	now := sim.Time(0)
	for i := 0; i < 4; i++ {
		now = ringBatch(f, now, 8)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = ringBatch(f, now, 8)
	}
}
