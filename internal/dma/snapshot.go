package dma

// World snapshot/restore support (see internal/machine). A snapshot is
// taken with the world quiescent — event queue settled, every accepted
// transfer delivered — so Transfer records are immutable from then on
// and can be shared by pointer between the snapshot, the origin engine
// and any number of restored clones.

import (
	"fmt"

	"uldma/internal/phys"
	"uldma/internal/sim"
)

// EngineSnapshot captures an Engine's mutable state. See
// Engine.Snapshot.
type EngineSnapshot struct {
	ctxs    []regContext
	keys    []uint64
	pending pendingPair
	pidTrk  bool
	curPID  int
	seq     seqFSM
	pageMap map[phys.Addr]phys.Addr
	regSrc  uint64
	regDst  uint64
	last    *Transfer
	log     []*Transfer
	busy    sim.Time
	rings   []ringState
	ctr     counters

	// Virtual-address state (va.go). Parked transfers are the one
	// exception to the records-immutable-post-settle rule — a resumed
	// walker mutates its Transfer — so each is captured by VALUE with
	// enough indices to re-point e.log/e.last/e.ctxs at a fresh copy.
	policy     RecoveryPolicy
	bounceFree []int32
	vactr      vaCounters
	parked     []vaParkedSnap
}

// vaParkedSnap captures one fault-parked transfer and its walker.
type vaParkedSnap struct {
	t      Transfer // value copy; vw re-attached on restore
	logIdx int      // index in the transfer log (-1 impossible: logging required)
	isLast bool     // transfer was e.last
	ctxCur int      // register context whose cur pointed at it, or -1

	ctx          int
	srcVA, dstVA uint64
	off          uint64
	span         sim.Time
	end0         sim.Time
	penalty      sim.Time
	lastFix      sim.Time
	faultVA      uint64
	faultWr      bool
	faults       int
	maxFaults    int

	hasComp  bool // a ring completion was riding the walker
	compSlot phys.Addr
	compCtx  int32
	compGen  uint32
}

// Snapshot captures the engine's register contexts, key table,
// half-initiation slot, sequence FSM, mapped-out table, control
// registers, transfer log and counters. Engines attached to a cluster
// fabric refuse: in-flight link traffic lives outside the engine.
func (e *Engine) Snapshot() (*EngineSnapshot, error) {
	if e.remote != nil {
		return nil, fmt.Errorf("dma: cannot snapshot an engine attached to a cluster fabric")
	}
	if !e.logging {
		// Without the transfer log the snapshot could not restore the
		// engine faithfully (and recycled records are mutable).
		return nil, fmt.Errorf("dma: cannot snapshot an engine with transfer logging disabled")
	}
	s := &EngineSnapshot{
		ctxs:    append([]regContext(nil), e.ctxs...),
		keys:    append([]uint64(nil), e.keys...),
		pending: e.pending,
		pidTrk:  e.pidTrk,
		curPID:  e.curPID,
		seq:     e.seq, // pattern slice is immutable after init: share it
		regSrc:  e.regSrc,
		regDst:  e.regDst,
		last:    e.last,
		log:     append([]*Transfer(nil), e.log...),
		busy:    e.xfer.busyUntil,
		rings:   append([]ringState(nil), e.rings...),
		ctr:     e.ctr,
	}
	// ringState.allow is mutable (RingAllow appends, SetupRing truncates):
	// give the snapshot its own extent slices.
	for i := range s.rings {
		if n := len(s.rings[i].allow); n > 0 {
			s.rings[i].allow = append([]ringExtent(nil), s.rings[i].allow[:n]...)
		}
	}
	if len(e.pageMap) > 0 {
		s.pageMap = make(map[phys.Addr]phys.Addr, len(e.pageMap))
		for k, v := range e.pageMap {
			s.pageMap[k] = v
		}
	}
	s.policy = e.policy
	s.vactr = e.vactr
	s.bounceFree = append([]int32(nil), e.bounceFree...)
	for _, w := range e.vaParked {
		if w.fixups != 0 {
			// Fix-up events drain at Settle; a non-zero count here means
			// the world was not quiescent.
			return nil, fmt.Errorf("dma: cannot snapshot with bounce fix-ups in flight")
		}
		ps := vaParkedSnap{
			t: *w.t, logIdx: -1, isLast: e.last == w.t, ctxCur: -1,
			ctx: w.ctx, srcVA: w.srcVA, dstVA: w.dstVA, off: w.off,
			span: w.span, end0: w.end0, penalty: w.penalty, lastFix: w.lastFix,
			faultVA: w.faultVA, faultWr: w.faultWr,
			faults: w.faults, maxFaults: w.maxFaults,
		}
		ps.t.vw = nil
		for i, t := range e.log {
			if t == w.t {
				ps.logIdx = i
				break
			}
		}
		for i := range e.ctxs {
			if e.ctxs[i].cur == w.t {
				ps.ctxCur = i
				break
			}
		}
		if c := w.comp; c != nil {
			ps.hasComp = true
			ps.compSlot, ps.compCtx, ps.compGen = c.slot, c.ctx, c.gen
		}
		s.parked = append(s.parked, ps)
	}
	return s, nil
}

// Restore rewinds the engine to the snapshot. The engine must have been
// built with the same Config as the snapshot's source (the machine
// layer guarantees this), which pins the context count and FSM shape.
func (e *Engine) Restore(s *EngineSnapshot) error {
	if len(s.ctxs) != len(e.ctxs) {
		return fmt.Errorf("dma: restore: snapshot has %d contexts, engine has %d", len(s.ctxs), len(e.ctxs))
	}
	copy(e.ctxs, s.ctxs)
	copy(e.keys, s.keys)
	e.pending = s.pending
	e.pidTrk = s.pidTrk
	e.curPID = s.curPID
	e.seq = s.seq
	for k := range e.pageMap {
		delete(e.pageMap, k)
	}
	for k, v := range s.pageMap {
		e.pageMap[k] = v
	}
	e.regSrc, e.regDst = s.regSrc, s.regDst
	e.last = s.last
	e.log = e.log[:0]
	e.log = append(e.log, s.log...)
	e.xfer.busyUntil = s.busy
	for i := range e.rings {
		r := s.rings[i]
		r.allow = append(e.rings[i].allow[:0], r.allow...)
		e.rings[i] = r
	}
	e.ctr = s.ctr
	e.policy = s.policy
	e.vactr = s.vactr
	e.bounceFree = append(e.bounceFree[:0], s.bounceFree...)
	// Drop the current parked set (their transfers are being discarded
	// wholesale), then rebuild each snapshotted one around a FRESH
	// Transfer copy, re-pointing the log/last/context-cur references that
	// named the original record.
	for _, w := range e.vaParked {
		if c := w.comp; c != nil {
			w.comp = nil
			c.t = nil
			e.freeRingC = append(e.freeRingC, c)
		}
		w.t = nil
		e.putVW(w)
	}
	e.vaParked = e.vaParked[:0]
	for _, ps := range s.parked {
		nt := new(Transfer)
		*nt = ps.t
		w := e.getVW()
		w.t, w.ctx = nt, ps.ctx
		w.srcVA, w.dstVA, w.off = ps.srcVA, ps.dstVA, ps.off
		w.span, w.end0, w.penalty, w.lastFix = ps.span, ps.end0, ps.penalty, ps.lastFix
		w.faultVA, w.faultWr = ps.faultVA, ps.faultWr
		w.faults, w.maxFaults = ps.faults, ps.maxFaults
		w.parked = true
		nt.vw = w
		if ps.logIdx >= 0 && ps.logIdx < len(e.log) {
			e.log[ps.logIdx] = nt
		}
		if ps.isLast {
			e.last = nt
		}
		if ps.ctxCur >= 0 && ps.ctxCur < len(e.ctxs) {
			e.ctxs[ps.ctxCur].cur = nt
		}
		if ps.hasComp {
			c := e.getRingC()
			c.t, c.slot, c.ctx, c.gen, c.zero = nt, ps.compSlot, ps.compCtx, ps.compGen, false
			w.comp = c
		}
		e.vaParked = append(e.vaParked, w)
	}
	return nil
}

// FingerprintLinear returns engine state whose per-iteration deltas are
// constant in steady state — clock-like quantities that advance by the
// same amount every identical iteration: the channel's busyUntil, the
// last transfer's bounds, and the sum of the per-context current-
// transfer bounds. The convergence detector (internal/core) treats each
// as its own fingerprint word so the deltas stay linear.
func (e *Engine) FingerprintLinear() (busyUntil, lastBounds, ctxBounds sim.Time) {
	busyUntil = e.xfer.busyUntil
	if e.last != nil {
		lastBounds = e.last.Start + e.last.End
	}
	for i := range e.ctxs {
		if t := e.ctxs[i].cur; t != nil {
			ctxBounds += t.Start + t.End
		}
	}
	return busyUntil, lastBounds, ctxBounds
}

// StateHash returns a hash of the engine state that must be *identical*
// (not merely advancing uniformly) across steady-state iterations:
// register-context argument slots, the half-initiation slot, the
// repeated-passing FSM and the current PID. Dead values — argument
// slots whose have-flags are clear, FSM address slots beyond the
// current index, an invalid pending pair — are excluded: they cannot
// influence any future decode, and including them would block
// convergence on harmless stale addresses. The kernel control
// registers (regSrc/regDst) are likewise excluded: every initiation
// sequence the measurement loops issue re-programs them before the
// size write that consumes them, so values carried across iterations
// are dead for those workloads (see internal/core/converge.go for the
// contract).
func (e *Engine) StateHash() uint64 {
	h := uint64(0x243f6a8885a308d3)
	mix := func(v uint64) {
		h ^= v
		h *= 0x100000001b3
		h ^= h >> 29
	}
	for i := range e.ctxs {
		c := &e.ctxs[i]
		var flags uint64
		if c.haveSrc {
			flags |= 1
			mix(uint64(c.src))
		}
		if c.haveDst {
			flags |= 2
			mix(uint64(c.dst))
		}
		if c.haveSize {
			flags |= 4
			mix(c.size)
		}
		mix(flags)
	}
	if e.pending.valid {
		mix(uint64(e.pending.dst))
		mix(e.pending.size)
		mix(uint64(e.pending.pid))
		mix(1)
	} else {
		mix(0)
	}
	mix(uint64(e.seq.idx))
	for i := 0; i < e.seq.idx && i < len(e.seq.addrs); i++ {
		mix(uint64(e.seq.addrs[i]))
	}
	if e.seq.haveSize {
		mix(e.seq.size)
		mix(1)
	} else {
		mix(0)
	}
	mix(uint64(e.curPID))
	for i := range e.rings {
		r := &e.rings[i]
		if r.depth == 0 {
			mix(0)
			continue
		}
		mix(uint64(r.base))
		mix(r.depth)
		mix(r.head)
		mix(r.inFlight)
		mix(uint64(len(r.allow)))
		for _, ext := range r.allow {
			mix(uint64(ext.base))
			mix(ext.size)
		}
	}
	if e.iommu != nil {
		// Virtual-address state, gated on the IOMMU so engines without
		// one hash exactly as before. Note the IOMMU hash includes
		// monotonic words (IOTLB stats): measurement loops that move VA
		// traffic will never converge analytically — accepted; shadow-only
		// loops on an IOMMU-attached machine leave this state untouched
		// and converge as usual.
		mix(e.iommu.IOStateHash())
		mix(uint64(e.policy))
		mix(uint64(len(e.bounceFree)))
		var vaRings uint64
		for i := range e.rings {
			if e.rings[i].va {
				vaRings |= 1 << uint(i&63)
			}
		}
		mix(vaRings)
		mix(uint64(len(e.vaParked)))
		for _, w := range e.vaParked {
			mix(uint64(w.ctx))
			mix(w.srcVA)
			mix(w.dstVA)
			mix(w.off)
			mix(uint64(w.penalty))
			mix(w.faultVA)
			if w.faultWr {
				mix(1)
			} else {
				mix(0)
			}
		}
	}
	return h
}
