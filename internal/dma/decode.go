package dma

import (
	"fmt"

	"uldma/internal/phys"
	"uldma/internal/sim"
)

// KeyShift positions the key above the context id in the data word of a
// keyed shadow store: data = key<<KeyShift | ctx. With 64-bit stores
// this leaves ~56 bits of key — the paper's "close to 60 bits ...
// probability of guessing correctly practically zero".
const KeyShift = 8

// PackKey builds the data word a keyed shadow store carries.
func PackKey(key uint64, ctx int) uint64 {
	return key<<KeyShift | uint64(ctx)&(1<<KeyShift-1)
}

// shadowStore handles a store into the shadow window.
func (e *Engine) shadowStore(now sim.Time, off uint64, val uint64) (int64, error) {
	switch e.cfg.Mode {
	case ModePaired:
		_, pa := e.decodeShadow(off)
		e.pending = pendingPair{dst: pa, size: val, pid: e.curPID, valid: true, virt: e.vaAcc, vctx: e.vaCtx}
		return 0, nil

	case ModeKeyed:
		// val = key#ctx; the shadow address carries the argument.
		ctx := int(val & (1<<KeyShift - 1))
		key := val >> KeyShift
		_, pa := e.decodeShadow(off)
		if ctx >= len(e.ctxs) || e.keys[ctx] == 0 || e.keys[ctx] != key {
			// Wrong key: the argument is silently dropped — the paper's
			// protection guarantee is that a guesser cannot write into a
			// context it does not own, not that it learns why.
			e.ctr.keyMismatches.Inc()
			return e.cfg.KeyCheckCycles, nil
		}
		c := &e.ctxs[ctx]
		switch {
		case !c.haveDst:
			c.dst, c.haveDst = pa, true
			c.virt, c.vctx = e.vaAcc, e.vaCtx
		case !c.haveSrc && c.virt == e.vaAcc:
			c.src, c.haveSrc = pa, true
		default:
			// Both set and no start consumed them — or the window switched
			// mid-pair: restart argument collection with this access as the
			// new destination.
			c.dst, c.haveDst = pa, true
			c.haveSrc = false
			c.virt, c.vctx = e.vaAcc, e.vaCtx
		}
		return e.cfg.KeyCheckCycles, nil

	case ModeExtended:
		// Figure 4: STORE size TO shadow(vdestination) — the access
		// carries the destination in its address bits and the size in
		// its data; the context id rides in the high address bits the
		// OS burned into the mapping.
		ctx, pa := e.decodeShadow(off)
		if ctx >= 1<<e.cfg.CtxBits {
			return 0, fmt.Errorf("dma: shadow context %d out of range", ctx)
		}
		if e.cfg.NoRegContexts {
			// Cheap variant: one global pending slot tagged with the
			// context id; the load's context must match.
			e.pending = pendingPair{dst: pa, size: val, pid: ctx, valid: true, virt: e.vaAcc, vctx: e.vaCtx}
			return 0, nil
		}
		c := &e.ctxs[ctx]
		c.dst, c.haveDst = pa, true
		c.size, c.haveSize = val, true
		c.virt, c.vctx = e.vaAcc, e.vaCtx
		return 0, nil

	case ModeRepeated:
		_, pa := e.decodeShadow(off)
		e.seqAccess(now, accStore, pa, val)
		return 0, nil

	case ModeMappedOut:
		return 0, fmt.Errorf("dma: mapped-out mode initiates with compare-and-exchange, not plain stores")
	}
	return 0, fmt.Errorf("dma: unhandled mode %v", e.cfg.Mode)
}

// shadowLoad handles a load from the shadow window.
func (e *Engine) shadowLoad(now sim.Time, off uint64) (uint64, int64, error) {
	switch e.cfg.Mode {
	case ModePaired:
		// Figure 2: LOAD return_status FROM shadow(vsource).
		_, src := e.decodeShadow(off)
		if !e.pending.valid {
			e.ctr.rejected.Inc()
			return StatusFailure, 0, nil
		}
		if e.pidTrk && e.pending.pid != e.curPID {
			// FLASH: arguments belong to a process that is no longer
			// running; refuse rather than mix.
			e.pending.valid = false
			e.ctr.abortedPending.Inc()
			e.ctr.rejected.Inc()
			return StatusFailure, 0, nil
		}
		p := e.pending
		e.pending.valid = false
		if p.virt != e.vaAcc {
			// Half the pair came through the VA window and half did not:
			// the arguments are in different address spaces, refuse.
			e.ctr.rejected.Inc()
			return StatusFailure, 0, nil
		}
		var t *Transfer
		var ok bool
		if p.virt {
			t, ok = e.startVA(now, p.vctx, uint64(src), uint64(p.dst), p.size)
		} else {
			t, ok = e.start(now, src, p.dst, p.size)
		}
		if !ok {
			return StatusFailure, 0, nil
		}
		return t.Remaining(now), 0, nil

	case ModeKeyed:
		// Loads from the shadow window are not part of the keyed
		// protocol (status lives in the register-context page); treat
		// them as protocol errors.
		e.ctr.rejected.Inc()
		return StatusFailure, 0, nil

	case ModeExtended:
		ctx, src := e.decodeShadow(off)
		if ctx >= 1<<e.cfg.CtxBits {
			return StatusFailure, 0, fmt.Errorf("dma: shadow context %d out of range", ctx)
		}
		if e.cfg.NoRegContexts {
			if !e.pending.valid || e.pending.pid != ctx || e.pending.virt != e.vaAcc {
				// Mismatched or missing pair: "the DMA operation is not
				// started and an error code is returned".
				e.pending.valid = false
				e.ctr.rejected.Inc()
				return StatusFailure, 0, nil
			}
			p := e.pending
			e.pending.valid = false
			var t *Transfer
			var ok bool
			if p.virt {
				t, ok = e.startVA(now, p.vctx, uint64(src), uint64(p.dst), p.size)
			} else {
				t, ok = e.start(now, src, p.dst, p.size)
			}
			if !ok {
				return StatusFailure, 0, nil
			}
			return t.Remaining(now), 0, nil
		}
		c := &e.ctxs[ctx]
		if c.haveDst && c.haveSize {
			if c.virt != e.vaAcc {
				// The store and load straddled the VA window: refuse and
				// consume the half-initiation.
				c.haveDst, c.haveSize = false, false
				e.ctr.rejected.Inc()
				return StatusFailure, 0, nil
			}
			dst, size := c.dst, c.size
			c.haveDst, c.haveSize = false, false
			var t *Transfer
			var ok bool
			if c.virt {
				t, ok = e.startCtxVA(now, ctx, c.vctx, uint64(src), uint64(dst), size)
			} else {
				t, ok = e.startCtx(now, ctx, src, dst, size)
			}
			if !ok {
				return StatusFailure, 0, nil
			}
			return t.Remaining(now), 0, nil
		}
		if c.cur != nil {
			// No half-initiation outstanding: poll the running transfer.
			return c.cur.Remaining(now), 0, nil
		}
		e.ctr.rejected.Inc()
		return StatusFailure, 0, nil

	case ModeRepeated:
		_, pa := e.decodeShadow(off)
		return e.seqAccess(now, accLoad, pa, 0), 0, nil

	case ModeMappedOut:
		return StatusFailure, 0, fmt.Errorf("dma: mapped-out mode initiates with compare-and-exchange, not plain loads")
	}
	return StatusFailure, 0, fmt.Errorf("dma: unhandled mode %v", e.cfg.Mode)
}

// ctxStore handles a regular store into a register-context page. Per
// §3.1, every store to any offset in the page lands in the size
// register only — the source and destination registers are unreachable
// by plain stores, otherwise a process could pass unchecked physical
// addresses.
func (e *Engine) ctxStore(_ sim.Time, off uint64, val uint64) (int64, error) {
	ctx := int(off / e.cfg.PageSize)
	if ctx >= len(e.ctxs) {
		return 0, fmt.Errorf("dma: register context %d out of range", ctx)
	}
	c := &e.ctxs[ctx]
	c.size, c.haveSize = val, true
	return 0, nil
}

// ctxLoad reads a register-context page: it initiates the DMA when a
// full argument set is present (the fourth access of Figure 3) and
// otherwise reports transfer status — "the number of bytes that need to
// be transferred yet (-1 means failure, 0 means completed)".
func (e *Engine) ctxLoad(now sim.Time, off uint64) (uint64, int64, error) {
	ctx := int(off / e.cfg.PageSize)
	if ctx >= len(e.ctxs) {
		return 0, 0, fmt.Errorf("dma: register context %d out of range", ctx)
	}
	c := &e.ctxs[ctx]
	if c.haveDst && c.haveSrc && c.haveSize {
		src, dst, size := c.src, c.dst, c.size
		virt, vctx := c.virt, c.vctx
		c.haveDst, c.haveSrc, c.haveSize = false, false, false
		var t *Transfer
		var ok bool
		if virt {
			// Keyed-mode arguments collected through the VA window (the
			// pair rule in shadowStore keeps src/dst in the same window).
			t, ok = e.startCtxVA(now, ctx, vctx, uint64(src), uint64(dst), size)
		} else {
			t, ok = e.startCtx(now, ctx, src, dst, size)
		}
		if !ok {
			return StatusFailure, 0, nil
		}
		return t.Remaining(now), 0, nil
	}
	if c.cur != nil {
		return c.cur.Remaining(now), 0, nil
	}
	return StatusFailure, 0, nil
}

// controlStore handles kernel writes to the control page.
func (e *Engine) controlStore(now sim.Time, off uint64, val uint64) (int64, error) {
	switch off {
	case RegSource:
		e.regSrc = val
	case RegDest:
		e.regDst = val
	case RegSize:
		// Figure 1: writing the size starts the kernel-programmed DMA.
		e.start(now, phys.Addr(e.regSrc), phys.Addr(e.regDst), val)
	case RegPID:
		e.SetCurrentPID(int(val))
	case RegAbort:
		e.AbortPending()
	default:
		return 0, fmt.Errorf("dma: write to unknown control register %#x", off)
	}
	return 0, nil
}

// controlLoad reads the control page.
func (e *Engine) controlLoad(now sim.Time, off uint64) (uint64, int64, error) {
	switch off {
	case RegSource:
		return e.regSrc, 0, nil
	case RegDest:
		return e.regDst, 0, nil
	case RegStatus, RegLastSt:
		if e.last == nil {
			return StatusFailure, 0, nil
		}
		if e.last.Failed {
			return StatusFailure, 0, nil
		}
		return e.last.Remaining(now), 0, nil
	case RegPID:
		return uint64(e.curPID), 0, nil
	case RegStarted:
		return e.ctr.started.Value(), 0, nil
	default:
		return 0, 0, fmt.Errorf("dma: read of unknown control register %#x", off)
	}
}

// atomicOp executes a §3.5 user-level atomic operation: one locked bus
// transaction, operation encoded in the address, operand in the data.
func (e *Engine) atomicOp(off uint64, size phys.AccessSize, val uint64) (uint64, int64, error) {
	op := int(off >> e.cfg.MemBits)
	pa := phys.Addr(off & (1<<e.cfg.MemBits - 1))
	if op > AtomicCAS {
		return 0, 0, fmt.Errorf("dma: unknown atomic op %d", op)
	}
	if e.cfg.RemoteBase != 0 && pa >= e.cfg.RemoteBase {
		// Atomic operation on another node's memory: the fabric owns
		// the round trip.
		rh, ok := e.remote.(RemoteAtomicHandler)
		if !ok {
			return 0, 0, fmt.Errorf("dma: fabric does not support remote atomics")
		}
		node := int((pa - e.cfg.RemoteBase) >> e.cfg.NodeShift)
		raddr := phys.Addr(uint64(pa-e.cfg.RemoteBase) & (1<<e.cfg.NodeShift - 1))
		e.ctr.atomicOps.Inc()
		old, err := rh.RMWRemote(node, raddr, op, size, val)
		return old, 1, err
	}
	e.ctr.atomicOps.Inc()
	old, err := ApplyAtomic(e.mem, pa, op, size, val)
	if err != nil {
		return 0, 0, err
	}
	return old, 1, nil
}

// ApplyAtomic performs one engine atomic operation on mem: the shared
// primitive of the local atomic unit and of fabrics implementing
// RemoteAtomicHandler. For AtomicCAS, val packs (expected<<32 | new)
// and the cell is 32 bits.
func ApplyAtomic(mem *phys.Memory, pa phys.Addr, op int, size phys.AccessSize, val uint64) (uint64, error) {
	old, err := mem.Read(pa, size)
	if err != nil {
		return 0, fmt.Errorf("dma: atomic target: %w", err)
	}
	switch op {
	case AtomicAdd:
		err = mem.Write(pa, size, old+val)
	case AtomicSwap:
		err = mem.Write(pa, size, val)
	case AtomicCAS:
		expected, newval := val>>32, val&0xffffffff
		if old&0xffffffff == expected {
			err = mem.Write(pa, size, newval)
		}
		old &= 0xffffffff
	default:
		return 0, fmt.Errorf("dma: unknown atomic op %d", op)
	}
	if err != nil {
		return 0, err
	}
	return old, nil
}

// mappedOutInitiate is SHRIMP-1: one compare-and-exchange at
// shadow(vsource) with the size as data starts a DMA to the source
// page's mapped-out counterpart. Returns the initiation status as the
// exchange's old value.
func (e *Engine) mappedOutInitiate(now sim.Time, off uint64, size uint64) (uint64, int64, error) {
	_, src := e.decodeShadow(off)
	pageBase := phys.Addr(uint64(src) &^ (e.cfg.PageSize - 1))
	dstBase, ok := e.pageMap[pageBase]
	if !ok {
		e.ctr.rejected.Inc()
		return StatusFailure, 0, nil
	}
	dst := dstBase + (src - pageBase)
	if uint64(src)%e.cfg.PageSize+size > e.cfg.PageSize {
		// A mapped-out DMA cannot cross its page: the mapping is
		// per-page (the restrictiveness §2.4 criticises).
		e.ctr.rejected.Inc()
		return StatusFailure, 0, nil
	}
	t, started := e.start(now, src, dst, size)
	if !started {
		return StatusFailure, 0, nil
	}
	return t.Remaining(now), 0, nil
}

// --- repeated-passing sequence FSM (§3.3) ---

type accKind uint8

const (
	accStore accKind = iota
	accLoad
)

// seqFSM watches the global stream of shadow accesses for the
// repeated-passing pattern. It deliberately has no notion of which
// process issued an access — that is the whole point of the scheme: the
// pattern itself proves single-process origin (for SeqLen 5; the 3- and
// 4-access variants are implemented so the Figure 5/6 attacks can be
// reproduced).
type seqFSM struct {
	pattern  []accKind
	idx      int
	addrs    [5]phys.Addr
	size     uint64
	haveSize bool
	// virt/vctx: window tag of the sequence's FIRST access; a mid-
	// sequence window switch is out-of-order and resets the FSM.
	virt bool
	vctx int
}

func (s *seqFSM) init(seqLen int) {
	switch seqLen {
	case 3:
		// Dubnicki's sequence: LOAD s, STORE d(size), LOAD s.
		s.pattern = []accKind{accLoad, accStore, accLoad}
	case 4:
		// STORE d, LOAD s, STORE d, LOAD s.
		s.pattern = []accKind{accStore, accLoad, accStore, accLoad}
	default:
		// Figure 7: STORE d, LOAD s, STORE d, LOAD s, LOAD d.
		s.pattern = []accKind{accStore, accLoad, accStore, accLoad, accLoad}
	}
}

func (s *seqFSM) reset() {
	s.idx = 0
	s.haveSize = false
}

// srcDst extracts the transfer arguments once the pattern completes.
func (s *seqFSM) srcDst() (src, dst phys.Addr) {
	if s.pattern[0] == accLoad { // 3-access variant: L s, S d, L s
		return s.addrs[0], s.addrs[1]
	}
	return s.addrs[1], s.addrs[0] // 4/5-access variants: S d, L s, ...
}

// seqAccess feeds one shadow access into the FSM and returns the value
// a load at this position observes (stores have no return value; their
// result is ignored by the caller).
func (e *Engine) seqAccess(now sim.Time, kind accKind, pa phys.Addr, data uint64) uint64 {
	s := &e.seq
	ok := kind == s.pattern[s.idx] &&
		(s.idx == 0 || s.virt == e.vaAcc) &&
		(s.idx < 2 || pa == s.addrs[s.idx-2]) &&
		(kind != accStore || !s.haveSize || data == s.size)
	if !ok {
		// "If it sees anything out of this order, the DMA engine resets
		// itself" — and the offending access may begin a new sequence.
		// A mid-sequence window switch (shadow <-> VA) counts as out of
		// order: the addresses would be in different spaces.
		s.reset()
		e.ctr.seqResets.Inc()
		if kind == s.pattern[0] {
			s.addrs[0] = pa
			if kind == accStore {
				s.size, s.haveSize = data, true
			}
			s.virt, s.vctx = e.vaAcc, e.vaCtx
			s.idx = 1
			return StatusAccepted
		}
		return StatusFailure
	}
	s.addrs[s.idx] = pa
	if s.idx == 0 {
		s.virt, s.vctx = e.vaAcc, e.vaCtx
	}
	if kind == accStore && !s.haveSize {
		s.size, s.haveSize = data, true
	}
	s.idx++
	if s.idx < len(s.pattern) {
		return StatusAccepted
	}
	// Pattern complete: start the transfer.
	src, dst := s.srcDst()
	size := s.size
	virt, vctx := s.virt, s.vctx
	s.reset()
	var t *Transfer
	var started bool
	if virt {
		t, started = e.startVA(now, vctx, uint64(src), uint64(dst), size)
	} else {
		t, started = e.start(now, src, dst, size)
	}
	if !started {
		return StatusFailure
	}
	return t.Remaining(now)
}
