package dma

// Chained-descriptor rings with doorbell batching — the batching lever
// production NICs use to amortize per-transfer initiation cost (compare
// the paper's one full shadow-store sequence per transfer). A process
// lays out a ring of 64-byte transfer descriptors in its own memory,
// fills N of them with ordinary cached stores, and kicks the engine
// with ONE uncached doorbell store. The engine walks the chain,
// validates every descriptor against the buffers the kernel registered
// for that ring, starts the transfers back to back on the single
// channel, and writes a completion record (status + simulated
// timestamp) back into each descriptor slot as its transfer finishes.
//
// Protection mirrors the paper's register-context story: the doorbell
// page is per-context and mapped into exactly one process (keyed mode
// additionally carries the context key in the doorbell word, checked
// once per BATCH instead of once per transfer), and descriptors may
// only name physical extents the kernel registered — a forged address
// fails validation and gets a DMA_FAILURE completion record, it never
// moves data. This is RDMA memory-registration semantics grafted onto
// the Telegraphos engine.
//
// All ring state (geometry, head cursor, in-flight count, registered
// extents) snapshots and restores with the engine and is folded into
// StateHash, so rings rewind with the world like everything else.

import (
	"fmt"

	"uldma/internal/phys"
	"uldma/internal/sim"
)

// Descriptor slot layout. Each slot is DescBytes long; the client
// writes Src/Dst/Size with cached stores, the engine writes Status and
// Stamp when the transfer completes (or immediately on rejection).
const (
	DescSrc    = 0x00 // physical source address
	DescDst    = 0x08 // physical destination (local or remote window)
	DescSize   = 0x10 // byte count
	DescStatus = 0x18 // completion status: 0 ok, StatusFailure rejected
	DescStamp  = 0x20 // simulated completion timestamp (picoseconds)
	DescBytes  = 64
)

// RingPending is the client-side convention for "posted, not yet
// completed" in a descriptor's status slot. The engine never reads the
// status word (the doorbell count alone says how many slots to walk);
// it only overwrites it with the completion record, so a client that
// pre-writes RingPending can poll its descriptors for completion
// without a doorbell load.
const RingPending = ^uint64(2)

// ringExtent is one registered buffer range descriptors may reference.
type ringExtent struct {
	base phys.Addr
	size uint64
}

// ringState is one context's descriptor ring.
type ringState struct {
	base     phys.Addr // descriptor array base in local memory
	depth    uint64    // slots in the ring (0 = no ring installed)
	head     uint64    // next slot index the walk consumes
	inFlight uint64    // descriptors kicked whose completion has not landed
	gen      uint32    // bumped on SetupRing/TeardownRing; stale completions no-op
	va       bool      // descriptors carry device VAs (SetRingVA; see va.go)
	allow    []ringExtent
}

// maxRingExtents bounds the per-ring registration table (a real NIC's
// MR table is similarly finite).
const maxRingExtents = 64

// NumRings returns how many descriptor rings the configuration
// provides: one per register context, or zero when no ring window is
// placed (RingBase unset).
func (c Config) NumRings() int {
	if c.RingBase == 0 {
		return 0
	}
	n := c.Contexts
	if c.Mode == ModeExtended {
		n = 1 << c.CtxBits
	}
	if n < 1 {
		n = 1
	}
	return n
}

// RingWindowSize returns the bus-window size of the doorbell pages
// (one page per ring, so each can be mapped into exactly one process).
func (c Config) RingWindowSize() uint64 {
	return uint64(c.NumRings()) * c.PageSize
}

// RingPage returns the physical base of ring ctx's doorbell page.
func (c Config) RingPage(ctx int) phys.Addr {
	return c.RingBase + phys.Addr(uint64(ctx)*c.PageSize)
}

// RingMaxDepth returns the deepest ring the configuration supports: the
// descriptor array must fit in one page so the kernel can grant it with
// a single frame registration.
func (c Config) RingMaxDepth() uint64 { return c.PageSize / DescBytes }

// SetupRing installs a descriptor ring for context ctx at physical base
// (page-aligned, in local memory) with the given slot count. Kernel
// setup-time operation, like SetKey; any previous ring state (head,
// in-flight bookkeeping, registered extents) is discarded.
func (e *Engine) SetupRing(ctx int, base phys.Addr, depth uint64) error {
	if e.cfg.RingBase == 0 {
		return fmt.Errorf("dma: engine has no ring window (RingBase unset)")
	}
	if ctx < 0 || ctx >= len(e.rings) {
		return fmt.Errorf("dma: ring context %d out of range", ctx)
	}
	if depth < 1 || depth > e.cfg.RingMaxDepth() {
		return fmt.Errorf("dma: ring depth %d out of range 1..%d", depth, e.cfg.RingMaxDepth())
	}
	if uint64(base)%e.cfg.PageSize != 0 {
		return fmt.Errorf("dma: ring base %v not page-aligned", base)
	}
	if uint64(base)+depth*DescBytes > e.cfg.MemSize {
		return fmt.Errorf("dma: ring at %v depth %d exceeds local memory", base, depth)
	}
	r := &e.rings[ctx]
	r.base, r.depth, r.head, r.inFlight = base, depth, 0, 0
	r.gen++
	r.allow = r.allow[:0]
	return nil
}

// TeardownRing removes context ctx's ring (kernel teardown / context
// revocation). Transfers already accepted keep streaming — the engine
// owns them — but their completion records become no-ops for the ring's
// bookkeeping (generation check), exactly like a NIC whose ring was
// re-armed mid-flight.
func (e *Engine) TeardownRing(ctx int) {
	if ctx < 0 || ctx >= len(e.rings) {
		return
	}
	r := &e.rings[ctx]
	r.base, r.depth, r.head, r.inFlight = 0, 0, 0, 0
	r.gen++
	r.allow = r.allow[:0]
}

// SetRingVA switches ring ctx between physical descriptors (validated
// against RingAllow extents) and virtual descriptors (device VAs for
// translation context ctx, validated by the IOMMU's page tables — the
// mapping IS the registration). Kernel setup-time operation; requires a
// ring installed, and an attached IOMMU to turn on.
func (e *Engine) SetRingVA(ctx int, on bool) error {
	if ctx < 0 || ctx >= len(e.rings) {
		return fmt.Errorf("dma: ring context %d out of range", ctx)
	}
	r := &e.rings[ctx]
	if r.depth == 0 {
		return fmt.Errorf("dma: ring context %d has no ring installed", ctx)
	}
	if on && e.iommu == nil {
		return fmt.Errorf("dma: virtual ring needs an attached IOMMU")
	}
	r.va = on
	return nil
}

// RingAllow registers [base, base+size) as a buffer extent descriptors
// on ring ctx may reference (the kernel calls this with frames the
// owning process mapped — the registration step of RDMA). Extents are
// checked on every descriptor; an unregistered address is rejected with
// a DMA_FAILURE completion record.
func (e *Engine) RingAllow(ctx int, base phys.Addr, size uint64) error {
	if ctx < 0 || ctx >= len(e.rings) {
		return fmt.Errorf("dma: ring context %d out of range", ctx)
	}
	r := &e.rings[ctx]
	if r.depth == 0 {
		return fmt.Errorf("dma: ring context %d has no ring installed", ctx)
	}
	if size == 0 || uint64(base)+size > e.cfg.MemSize {
		return fmt.Errorf("dma: ring extent %v+%d outside local memory", base, size)
	}
	if len(r.allow) >= maxRingExtents {
		return fmt.Errorf("dma: ring context %d extent table full (%d)", ctx, maxRingExtents)
	}
	r.allow = append(r.allow, ringExtent{base: base, size: size})
	return nil
}

// RingState reports a ring's geometry and progress (tests and the
// kernel's bookkeeping use it).
func (e *Engine) RingState(ctx int) (base phys.Addr, depth, head, inFlight uint64) {
	if ctx < 0 || ctx >= len(e.rings) {
		return 0, 0, 0, 0
	}
	r := &e.rings[ctx]
	return r.base, r.depth, r.head, r.inFlight
}

// ringAllowed reports whether [addr, addr+size) lies inside one
// registered extent.
func (r *ringState) ringAllowed(addr phys.Addr, size uint64) bool {
	for i := range r.allow {
		ext := &r.allow[i]
		if addr >= ext.base && uint64(addr)+size <= uint64(ext.base)+ext.size {
			return true
		}
	}
	return false
}

// ringCompletion is one accepted descriptor waiting for its transfer's
// End event, pooled like remoteShip: the fire closure is built once per
// record and captures only the record, so a steady stream of ring
// transfers schedules completions allocation-free.
type ringCompletion struct {
	e    *Engine
	t    *Transfer
	slot phys.Addr // descriptor slot base the record is written to
	ctx  int32
	gen  uint32 // ring generation at acceptance
	zero bool   // zero-size transfer: this record also delivers finish
	fire func(sim.Time)
}

func (e *Engine) getRingC() *ringCompletion {
	if n := len(e.freeRingC); n > 0 {
		c := e.freeRingC[n-1]
		e.freeRingC = e.freeRingC[:n-1]
		return c
	}
	c := &ringCompletion{e: e}
	c.fire = func(at sim.Time) { c.run(at) }
	return c
}

// run lands the completion record. Transfers whose ring was torn down
// or re-armed since acceptance still write their record (the engine
// masters the bus; the frames were valid at acceptance) but no longer
// touch the new ring's bookkeeping.
func (c *ringCompletion) run(at sim.Time) {
	e, t, slot, ctx, gen, zero := c.e, c.t, c.slot, c.ctx, c.gen, c.zero
	c.t = nil
	e.freeRingC = append(e.freeRingC, c)
	if zero && !t.Failed {
		e.finish(t)
	}
	status := uint64(0)
	if t.Failed {
		status = StatusFailure
	}
	e.writeCompletion(slot, status, at)
	r := &e.rings[ctx]
	if r.gen == gen && r.inFlight > 0 {
		r.inFlight--
	}
	if !e.logging && t != e.last && t.delivered {
		e.freeT = append(e.freeT, t)
	}
}

// writeCompletion stores the (status, timestamp) record into a
// descriptor slot — every record counts, including immediate
// DMA_FAILURE rejections. The engine masters these writes on memory it
// validated at setup time; a failure is a model bug.
func (e *Engine) writeCompletion(slot phys.Addr, status uint64, at sim.Time) {
	e.ctr.ringCompletions.Inc()
	if err := e.mem.Write(slot+DescStatus, phys.Size64, status); err != nil {
		panic(err)
	}
	if err := e.mem.Write(slot+DescStamp, phys.Size64, uint64(at)); err != nil {
		panic(err)
	}
}

// ringStore is the doorbell: one store to ring ctx's doorbell page
// kicks up to val descriptors. In keyed mode the doorbell word carries
// key<<KeyShift | count and the key is checked ONCE for the whole batch
// (the amortized form of the per-store key check of §3.1); other modes
// take the count directly. Returns the extra bus latency.
func (e *Engine) ringStore(now sim.Time, off uint64, val uint64) (int64, error) {
	ctx := int(off / e.cfg.PageSize)
	r := &e.rings[ctx]
	var lat int64
	n := val
	if e.cfg.Mode == ModeKeyed {
		lat = e.cfg.KeyCheckCycles
		key := val >> KeyShift
		n = val & (1<<KeyShift - 1)
		if e.keys[ctx] == 0 || e.keys[ctx] != key {
			// Silent drop, like a keyed shadow store with a bad key: a
			// revoked or forged doorbell must not be probeable.
			e.ctr.keyMismatches.Inc()
			return lat, nil
		}
	}
	if r.depth == 0 {
		// No ring installed: drop. The doorbell page is only ever mapped
		// while a ring is, so this is a stale access after revocation.
		e.ctr.rejected.Inc()
		return lat, nil
	}
	if n > r.depth {
		n = r.depth
	}
	e.ctr.ringDoorbells.Inc()
	for i := uint64(0); i < n; i++ {
		slot := r.base + phys.Addr(r.head*DescBytes)
		r.head++
		if r.head == r.depth {
			r.head = 0
		}
		e.walkDescriptor(now, ctx, r, slot)
	}
	e.ctr.ringPosted.Add(n)
	return lat, nil
}

// walkDescriptor consumes one slot: fetch the arguments the client left
// in memory, validate them against the registered extents, start the
// transfer on the shared channel, and arrange the completion record.
func (e *Engine) walkDescriptor(now sim.Time, ctx int, r *ringState, slot phys.Addr) {
	src64, err := e.mem.Read(slot+DescSrc, phys.Size64)
	if err != nil {
		panic(err) // ring base was validated against MemSize at setup
	}
	dst64, err := e.mem.Read(slot+DescDst, phys.Size64)
	if err != nil {
		panic(err)
	}
	size, err := e.mem.Read(slot+DescSize, phys.Size64)
	if err != nil {
		panic(err)
	}
	if r.va {
		e.walkDescriptorVA(now, ctx, r, slot, src64, dst64, size)
		return
	}
	src, dst := phys.Addr(src64), phys.Addr(dst64)
	remoteDst := e.cfg.RemoteBase != 0 && dst >= e.cfg.RemoteBase
	if !r.ringAllowed(src, size) || (!remoteDst && !r.ringAllowed(dst, size)) {
		// Unregistered address: DMA_FAILURE record, immediately.
		e.ctr.rejected.Inc()
		e.writeCompletion(slot, StatusFailure, now)
		return
	}
	t, ok := e.startRing(now, src, dst, size)
	if !ok {
		e.writeCompletion(slot, StatusFailure, now)
		return
	}
	if e.events == nil {
		// Bare engine: the transfer delivered eagerly inside start.
		e.writeCompletion(slot, 0, t.End)
		return
	}
	r.inFlight++
	c := e.getRingC()
	c.t, c.slot, c.ctx, c.gen, c.zero = t, slot, int32(ctx), r.gen, t.Size == 0
	e.events.ScheduleFunc(t.End, c.fire)
}

// ringLoad is the doorbell page's read side: the in-flight descriptor
// count, so one uncached load answers "has my whole batch completed?".
func (e *Engine) ringLoad(off uint64) (uint64, int64, error) {
	ctx := int(off / e.cfg.PageSize)
	return e.rings[ctx].inFlight, 0, nil
}

// startRing accepts a ring transfer. It shares everything with start()
// except the zero-size completion event: the ring completion record
// doubles as the finish event (pooled), so the hot doorbell->walk->
// completion path schedules nothing extra and stays allocation-free.
func (e *Engine) startRing(now sim.Time, src, dst phys.Addr, size uint64) (*Transfer, bool) {
	prev := e.last
	var t *Transfer
	var ok bool
	if size == 0 && e.events != nil {
		e.ringZeroDefer = true
		t, ok = e.start(now, src, dst, size)
		e.ringZeroDefer = false
	} else {
		t, ok = e.start(now, src, dst, size)
	}
	if !ok {
		return t, false
	}
	t.ring = true
	// A batch's final transfer is still e.last when its completion
	// record lands, so run() leaves it alive for last-status polling;
	// reclaim it here once the next ring start has displaced it. Only
	// ring-started transfers are safe to take: they are never a register
	// context's cur record and never in the retained log.
	if !e.logging && prev != nil && prev != t && prev.ring && prev.delivered {
		e.freeT = append(e.freeT, prev)
	}
	return t, ok
}
