package dma

import (
	"fmt"
	"testing"

	"uldma/internal/phys"
	"uldma/internal/sim"
)

// refFSM is an independent re-derivation of the §3.3 sequence rules,
// written directly from the paper's prose rather than from the engine
// code, to cross-check the engine under random access streams:
//
//   - the engine expects a fixed kind pattern (L,S,L / S,L,S,L /
//     S,L,S,L,L);
//   - "if it sees anything out of this order, the DMA engine resets
//     itself" — and the offending access may begin a new sequence;
//   - accesses two positions apart must target the same address, and
//     every store must carry the same size;
//   - when the pattern completes, a transfer (src, dst, size) starts
//     and the completing load returns success; loads that break the
//     sequence return DMA_FAILURE; loads that extend a valid prefix
//     return an ACCEPTED code.
type refFSM struct {
	pattern []accKind
	idx     int
	addrs   []phys.Addr
	size    uint64
	haveSz  bool
	started []refTransfer
}

type refTransfer struct {
	src, dst phys.Addr
	size     uint64
}

func newRefFSM(seqLen int) *refFSM {
	r := &refFSM{addrs: make([]phys.Addr, 5)}
	switch seqLen {
	case 3:
		r.pattern = []accKind{accLoad, accStore, accLoad}
	case 4:
		r.pattern = []accKind{accStore, accLoad, accStore, accLoad}
	default:
		r.pattern = []accKind{accStore, accLoad, accStore, accLoad, accLoad}
	}
	return r
}

func (r *refFSM) reset() { r.idx, r.haveSz = 0, false }

// feed returns (status, statusValid): statusValid is true for loads
// (stores return nothing to the issuer).
func (r *refFSM) feed(kind accKind, addr phys.Addr, data uint64) (uint64, bool) {
	fits := kind == r.pattern[r.idx]
	if fits && r.idx >= 2 && addr != r.addrs[r.idx-2] {
		fits = false
	}
	if fits && kind == accStore && r.haveSz && data != r.size {
		fits = false
	}
	if !fits {
		r.reset()
		if kind == r.pattern[0] {
			r.addrs[0] = addr
			if kind == accStore {
				r.size, r.haveSz = data, true
			}
			r.idx = 1
			return StatusAccepted, kind == accLoad
		}
		return StatusFailure, kind == accLoad
	}
	r.addrs[r.idx] = addr
	if kind == accStore && !r.haveSz {
		r.size, r.haveSz = data, true
	}
	r.idx++
	if r.idx < len(r.pattern) {
		return StatusAccepted, kind == accLoad
	}
	var src, dst phys.Addr
	if r.pattern[0] == accLoad {
		src, dst = r.addrs[0], r.addrs[1]
	} else {
		src, dst = r.addrs[1], r.addrs[0]
	}
	size := r.size
	r.reset()
	r.started = append(r.started, refTransfer{src: src, dst: dst, size: size})
	return size, true // engine returns remaining = size at start
}

// TestRepeatedFSMMatchesReferenceModel drives engine and reference with
// identical random access streams and demands identical decisions.
func TestRepeatedFSMMatchesReferenceModel(t *testing.T) {
	addrAlphabet := []phys.Addr{0x1000, 0x2000, 0x3000, 0x4000}
	sizeAlphabet := []uint64{32, 64}
	for _, seqLen := range []int{3, 4, 5} {
		for seed := uint64(1); seed <= 40; seed++ {
			rng := sim.NewRand(seed*1000 + uint64(seqLen))
			f := newEngine(t, ModeRepeated, func(c *Config) {
				c.SeqLen = seqLen
				c.StartupTime = 0
			})
			// Sources must hold readable bytes for any started transfer.
			for _, a := range addrAlphabet {
				f.fillSrc(a, 128, byte(a>>8))
			}
			ref := newRefFSM(seqLen)
			for step := 0; step < 200; step++ {
				addr := addrAlphabet[rng.Intn(len(addrAlphabet))]
				if rng.Bool() {
					size := sizeAlphabet[rng.Intn(len(sizeAlphabet))]
					refSt, _ := ref.feed(accStore, addr, size)
					_ = refSt // stores return nothing to the issuer
					if _, err := f.e.Store(0, f.e.cfg.Shadow(addr, 0), phys.Size64, size); err != nil {
						t.Fatalf("seq%d seed%d step%d: store: %v", seqLen, seed, step, err)
					}
				} else {
					refSt, _ := ref.feed(accLoad, addr, 0)
					got, _, err := f.e.Load(0, f.e.cfg.Shadow(addr, 0), phys.Size64)
					if err != nil {
						t.Fatalf("seq%d seed%d step%d: load: %v", seqLen, seed, step, err)
					}
					if got != refSt {
						t.Fatalf("seq%d seed%d step%d: engine load=%#x ref=%#x",
							seqLen, seed, step, got, refSt)
					}
				}
			}
			// The transfer logs must agree exactly.
			engXfers := f.e.Transfers()
			if len(engXfers) != len(ref.started) {
				t.Fatalf("seq%d seed%d: engine started %d transfers, ref %d",
					seqLen, seed, len(engXfers), len(ref.started))
			}
			for i, want := range ref.started {
				got := engXfers[i]
				if got.Src != want.src || got.Dst != want.dst || got.Size != want.size {
					t.Fatalf("seq%d seed%d transfer %d: engine %v->%v[%d], ref %v->%v[%d]",
						seqLen, seed, i, got.Src, got.Dst, got.Size,
						want.src, want.dst, want.size)
				}
			}
		}
	}
}

// TestRepeatedFSMStatusOfCompletingLoad pins the success value: the
// completing load reports the full remaining size (transfer just
// started, zero startup in this config).
func TestRepeatedFSMStatusOfCompletingLoad(t *testing.T) {
	f := newEngine(t, ModeRepeated, func(c *Config) { c.SeqLen = 5; c.StartupTime = 0 })
	f.fillSrc(0x2000, 64, 1)
	f.repStore(0, 0xa000, 64)
	f.repLoad(0, 0x2000)
	f.repStore(0, 0xa000, 64)
	f.repLoad(0, 0x2000)
	if st := f.repLoad(0, 0xa000); st != 64 {
		t.Fatalf("completing load = %d, want 64 remaining", st)
	}
}

// Exhaustively enumerate ALL access streams of length 6 over a 2-address
// alphabet for the 5-sequence and confirm engine/reference agreement —
// a complement to the randomized test with total coverage at small size.
func TestRepeatedFSMExhaustiveSmall(t *testing.T) {
	addrs := []phys.Addr{0x1000, 0x2000}
	const steps = 6
	// Each step has 4 choices: store/load × addr0/addr1 (fixed size 32).
	total := 1
	for i := 0; i < steps; i++ {
		total *= 4
	}
	for enc := 0; enc < total; enc++ {
		f := newEngine(t, ModeRepeated, func(c *Config) { c.SeqLen = 5; c.StartupTime = 0 })
		f.fillSrc(0x1000, 64, 1)
		f.fillSrc(0x2000, 64, 2)
		ref := newRefFSM(5)
		e := enc
		for i := 0; i < steps; i++ {
			choice := e % 4
			e /= 4
			addr := addrs[choice%2]
			if choice < 2 {
				ref.feed(accStore, addr, 32)
				if _, err := f.e.Store(0, f.e.cfg.Shadow(addr, 0), phys.Size64, 32); err != nil {
					t.Fatal(err)
				}
			} else {
				refSt, _ := ref.feed(accLoad, addr, 0)
				got, _, err := f.e.Load(0, f.e.cfg.Shadow(addr, 0), phys.Size64)
				if err != nil {
					t.Fatal(err)
				}
				if got != refSt {
					t.Fatalf("stream %d step %d: engine=%#x ref=%#x", enc, i, got, refSt)
				}
			}
		}
		if len(f.e.Transfers()) != len(ref.started) {
			t.Fatalf("stream %s: engine %d transfers, ref %d",
				fmt.Sprintf("%06x", enc), len(f.e.Transfers()), len(ref.started))
		}
	}
}
