package dma

// Virtual-address DMA (the IOMMU path). The paper's shadow-address
// trick exists because this engine consumes *physical* addresses; its
// successors (Psistakis/Katevenis: IOMMU support for virtual-address
// remote DMA) put an I/O MMU between the engine and memory so user code
// initiates on device virtual addresses instead. This file is the
// engine half of that design:
//
//   - a VA shadow window (Config.VABase), laid out exactly like the
//     extended shadow window — ctx<<MemBits | va — whose accesses run
//     the SAME per-mode decode FSMs as the physical shadow window, but
//     tag the collected arguments as virtual. A transfer initiated
//     through the VA window carries (ctx, srcVA, dstVA) and translates
//     at WALK time, chunk by chunk, through the attached Translator;
//   - a vaWalker per in-flight virtual transfer: it streams the payload
//     in transferChunk bursts split on device-page boundaries, charges
//     Config.IOTLBMissTime per IOTLB miss, and turns translation
//     faults over to the engine's recovery policy;
//   - three recovery policies for a fault that strikes mid-transfer:
//     stall-and-resolve (park the transfer, kernel resolves, engine
//     resumes), bounce-buffer (redirect the faulting destination page
//     into a pinned bounce region and fix it up with a copy once the
//     kernel has paged the real frame in), and kernel-assisted pin
//     (pre-fault + pin the whole extent at initiation — the RDMA
//     memory-registration baseline, which can never fault mid-flight).
//
// Determinism: walkers and fix-ups are ordinary pooled event-queue
// work; parked walkers are pure data and snapshot/restore with the
// engine (snapshot.go), so a faulted transfer replays byte-identically
// from (seed, plan).
//
// Timing model: a virtual transfer's nominal schedule is the same
// bandwidth line a physical transfer follows; IOTLB misses and fault
// stalls accumulate into a per-transfer penalty that pushes every
// subsequent chunk (and the final End) back. Penalties discovered
// mid-stream do not retroactively requeue transfers that were accepted
// earlier — a deliberate approximation that keeps acceptance analytic.

import (
	"errors"
	"fmt"

	"uldma/internal/obs"
	"uldma/internal/phys"
	"uldma/internal/sim"
)

// Translator is the engine's view of the IOMMU (implemented by
// internal/iommu, which depends on this package's sibling layers; the
// interface keeps dma free of that import).
type Translator interface {
	// TranslateIO resolves (ctx, va) for a device access. hit reports
	// an IOTLB hit; the engine charges Config.IOTLBMissTime when false.
	TranslateIO(ctx int, va uint64, write bool) (phys.Addr, bool, error)
	// IOPageSize returns the device page size (must equal the engine's).
	IOPageSize() uint64
	// IOContexts returns the number of device translation contexts.
	IOContexts() int
	// IOStateHash folds the IOMMU's complete state into one word; the
	// engine mixes it into its own StateHash.
	IOStateHash() uint64
}

// ErrFaultPending is returned by a FaultResolver that cannot resolve a
// fault inline (no pager, page truly absent): the engine parks the
// transfer until ResumeFaulted.
var ErrFaultPending = errors.New("dma: fault resolution pending")

// FaultResolver is the kernel's fault/pin service (implemented by
// internal/kernel). Latencies are simulated time the operation costs.
type FaultResolver interface {
	// ResolveFault makes (ctx, va) resident, returning the page-in
	// latency. ErrFaultPending parks the transfer (stall policy).
	ResolveFault(ctx int, va uint64, write bool) (sim.Time, error)
	// PinRange pre-faults and pins [va, va+size) (pin policy).
	PinRange(ctx int, va, size uint64, write bool) (sim.Time, error)
	// UnpinRange releases a pin taken by PinRange.
	UnpinRange(ctx int, va, size uint64)
}

// RecoveryPolicy selects what the engine does when a translation fault
// strikes mid-transfer.
type RecoveryPolicy uint8

const (
	// RecoverStall parks the transfer on the fault and resumes it once
	// the kernel has resolved the page (the default).
	RecoverStall RecoveryPolicy = iota
	// RecoverBounce redirects a faulting DESTINATION page into the
	// pinned bounce region and schedules a fix-up copy; source faults
	// still stall (there is no data to redirect on a read fault).
	RecoverBounce
	// RecoverPin pre-faults and pins both extents at initiation, so no
	// mid-transfer fault is possible — RDMA memory registration.
	RecoverPin
)

// String names the policy ("stall", "bounce", "pin").
func (p RecoveryPolicy) String() string {
	switch p {
	case RecoverStall:
		return "stall"
	case RecoverBounce:
		return "bounce"
	case RecoverPin:
		return "pin"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// ParseRecoveryPolicy maps a policy name to its value.
func ParseRecoveryPolicy(s string) (RecoveryPolicy, error) {
	switch s {
	case "stall":
		return RecoverStall, nil
	case "bounce":
		return RecoverBounce, nil
	case "pin":
		return RecoverPin, nil
	default:
		return 0, fmt.Errorf("dma: unknown recovery policy %q (want stall, bounce or pin)", s)
	}
}

// vaCounters are the virtual-address path's obs cells, registered
// separately from the physical counters (RegisterVAMetrics) so worlds
// without an IOMMU keep their registry dump byte-identical.
type vaCounters struct {
	vaStores  obs.Counter // VA-window stores
	vaLoads   obs.Counter // VA-window loads
	vaStarted obs.Counter // virtual transfers accepted
	vaFaults  obs.Counter // mid-transfer translation faults
	vaStalls  obs.Counter // faults handled by stalling (parked or resolved inline)
	vaBounced obs.Counter // destination pages redirected into the bounce region
	vaPins    obs.Counter // transfers that pre-pinned their extents
}

// RegisterVAMetrics publishes the virtual-address counters. The machine
// calls this only when an IOMMU is configured.
func (e *Engine) RegisterVAMetrics(r *obs.Registry) {
	r.RegisterCounter("dma.va_stores", &e.vactr.vaStores)
	r.RegisterCounter("dma.va_loads", &e.vactr.vaLoads)
	r.RegisterCounter("dma.va_started", &e.vactr.vaStarted)
	r.RegisterCounter("dma.va_faults", &e.vactr.vaFaults)
	r.RegisterCounter("dma.va_stalls", &e.vactr.vaStalls)
	r.RegisterCounter("dma.va_bounced", &e.vactr.vaBounced)
	r.RegisterCounter("dma.va_pins", &e.vactr.vaPins)
}

// AttachIOMMU plugs the translator in. Its geometry must match the
// engine's (same page size, at least as many contexts).
func (e *Engine) AttachIOMMU(io Translator) error {
	if io.IOPageSize() != e.cfg.PageSize {
		return fmt.Errorf("dma: IOMMU page size %d != engine page size %d", io.IOPageSize(), e.cfg.PageSize)
	}
	if io.IOContexts() < len(e.ctxs) {
		return fmt.Errorf("dma: IOMMU has %d contexts, engine has %d", io.IOContexts(), len(e.ctxs))
	}
	e.iommu = io
	return nil
}

// IOMMU returns the attached translator (nil when the engine runs pure
// shadow addressing).
func (e *Engine) IOMMU() Translator { return e.iommu }

// SetFaultResolver attaches the kernel's fault/pin service.
func (e *Engine) SetFaultResolver(fr FaultResolver) { e.resolver = fr }

// SetRecoveryPolicy selects the mid-transfer fault policy. RecoverPin
// requires a resolver at initiation time.
func (e *Engine) SetRecoveryPolicy(p RecoveryPolicy) { e.policy = p }

// Policy returns the active recovery policy.
func (e *Engine) Policy() RecoveryPolicy { return e.policy }

// ParkedTransfers returns how many transfers are parked on a fault.
func (e *Engine) ParkedTransfers() int { return len(e.vaParked) }

// decodeVA splits a VA-window offset into (ctx, device VA) — the same
// ctx<<MemBits | va layout the extended shadow window uses.
func (e *Engine) decodeVA(off uint64) (int, uint64) {
	return int(off >> e.cfg.MemBits), off & (uint64(1)<<e.cfg.MemBits - 1)
}

// vaStore handles a store into the VA window: the same per-mode decode
// as a shadow store, with the collected argument tagged virtual. The
// original offset is passed through — decodeShadow masks to MemBits in
// the non-extended modes and extracts the same high bits in extended
// mode, so the FSMs see the device VA (and, in extended mode, the same
// context id) they would have seen for a physical shadow access.
func (e *Engine) vaStore(now sim.Time, off uint64, val uint64) (int64, error) {
	e.vactr.vaStores.Inc()
	ctx, _ := e.decodeVA(off)
	e.vaAcc, e.vaCtx = true, ctx
	lat, err := e.shadowStore(now, off, val)
	e.vaAcc = false
	return lat, err
}

// vaLoad handles a load from the VA window (see vaStore).
func (e *Engine) vaLoad(now sim.Time, off uint64) (uint64, int64, error) {
	e.vactr.vaLoads.Inc()
	ctx, _ := e.decodeVA(off)
	e.vaAcc, e.vaCtx = true, ctx
	v, lat, err := e.shadowLoad(now, off)
	e.vaAcc = false
	return v, lat, err
}

// validateVA checks a virtual transfer request. Addresses are device
// VAs; residency is NOT checked here — that is what the walker's fault
// path is for.
func (e *Engine) validateVA(ctx int, srcVA, dstVA, size uint64) bool {
	if e.iommu == nil {
		return false
	}
	if ctx < 0 || ctx >= e.iommu.IOContexts() {
		return false
	}
	if e.cfg.MaxTransfer != 0 && size > e.cfg.MaxTransfer {
		return false
	}
	limit := uint64(1) << e.cfg.MemBits
	if srcVA > limit || srcVA+size > limit {
		return false
	}
	if dstVA > limit || dstVA+size > limit {
		return false
	}
	if e.policy == RecoverPin && e.resolver == nil {
		return false
	}
	return true
}

// startVA accepts or rejects a virtual transfer. Acceptance mirrors
// start(): the nominal schedule is the same bandwidth line; delivery is
// a vaWalker that translates every burst. Under RecoverPin both extents
// are pinned first and the pin latency precedes engine startup.
func (e *Engine) startVA(now sim.Time, ctx int, srcVA, dstVA, size uint64) (*Transfer, bool) {
	if !e.validateVA(ctx, srcVA, dstVA, size) {
		e.ctr.rejected.Inc()
		e.last = &Transfer{Src: phys.Addr(srcVA), Dst: phys.Addr(dstVA), Size: size,
			Failed: true, Start: now, End: now, Virt: true, VCtx: ctx}
		return e.last, false
	}
	var pinLat sim.Time
	if e.policy == RecoverPin {
		lat, err := e.resolver.PinRange(ctx, srcVA, size, false)
		if err != nil {
			e.ctr.rejected.Inc()
			e.last = &Transfer{Src: phys.Addr(srcVA), Dst: phys.Addr(dstVA), Size: size,
				Failed: true, Start: now, End: now, Virt: true, VCtx: ctx}
			return e.last, false
		}
		pinLat = lat
		if lat, err = e.resolver.PinRange(ctx, dstVA, size, true); err != nil {
			e.resolver.UnpinRange(ctx, srcVA, size)
			e.ctr.rejected.Inc()
			e.last = &Transfer{Src: phys.Addr(srcVA), Dst: phys.Addr(dstVA), Size: size,
				Failed: true, Start: now, End: now, Virt: true, VCtx: ctx}
			return e.last, false
		}
		pinLat += lat
		e.vactr.vaPins.Inc()
	}
	begin := now + pinLat
	if e.xfer.busyUntil > begin {
		begin = e.xfer.busyUntil
	}
	begin += e.cfg.StartupTime
	duration := sim.Time(0)
	if size > 0 {
		duration = sim.Time(uint64(sim.Second) / e.cfg.Bandwidth * size)
		if duration == 0 {
			duration = sim.Nanosecond
		}
	}
	t := e.newTransfer()
	t.Src, t.Dst, t.Size, t.Start, t.End = phys.Addr(srcVA), phys.Addr(dstVA), size, begin, begin+duration
	t.Virt, t.VCtx = true, ctx
	e.xfer.busyUntil = t.End
	e.ctr.started.Inc()
	e.vactr.vaStarted.Inc()
	e.last = t
	if e.logging {
		e.log = append(e.log, t)
	}
	if e.reserver != nil && t.End > t.Start {
		e.reserver.ReserveDMA(t.Start, t.End)
	}
	e.scheduleVA(t)
	return t, true
}

// startCtxVA is startCtx for virtual transfers: reg is the register
// context holding the arguments, ctx the translation context.
func (e *Engine) startCtxVA(now sim.Time, reg, ctx int, srcVA, dstVA, size uint64) (*Transfer, bool) {
	old := e.ctxs[reg].cur
	t, ok := e.startVA(now, ctx, srcVA, dstVA, size)
	if ok {
		e.ctxs[reg].cur = t
		if !e.logging && old != nil && old != t && old.delivered {
			e.freeT = append(e.freeT, old)
		}
	}
	return t, ok
}

// scheduleVA arranges delivery of a virtual transfer.
func (e *Engine) scheduleVA(t *Transfer) {
	if t.Size == 0 {
		if e.events == nil {
			e.finish(t)
			return
		}
		if e.ringZeroDefer {
			return // the pooled ring completion record delivers finish
		}
		e.events.ScheduleFunc(t.End, func(sim.Time) { e.finish(t) })
		return
	}
	if e.events == nil {
		e.runSyncVA(t)
		return
	}
	w := e.getVW()
	w.t, w.ctx = t, t.VCtx
	w.srcVA, w.dstVA = uint64(t.Src), uint64(t.Dst)
	w.span = t.End - t.Start
	w.end0 = t.End
	w.maxFaults = int(2*(t.Size/e.cfg.PageSize) + 8)
	t.vw = w
	first := uint64(transferChunk)
	if t.Size < first {
		first = t.Size
	}
	e.events.ScheduleFunc(w.nominal(first), w.fire)
}

// vaWalker is the delivery state of one in-flight virtual transfer,
// pooled like localWalker. Bursts are split on device-page boundaries
// so every piece translates exactly once per side.
type vaWalker struct {
	e   *Engine
	t   *Transfer
	ctx int // translation context

	srcVA, dstVA uint64
	off          uint64 // bytes landed so far (advances per PIECE, so a
	// re-run after a fault never duplicates completed pieces)
	span      sim.Time // nominal duration (End-Start at acceptance)
	end0      sim.Time // nominal End at acceptance (bus-reservation base)
	penalty   sim.Time // accumulated miss+stall lag pushed onto the schedule
	streamEnd sim.Time // time the last byte streamed
	lastFix   sim.Time // latest bounce fix-up completion

	parked bool // waiting for ResumeFaulted
	done   bool // stream complete (fix-ups may still be out)
	dead   bool // failed with fix-ups still out; last fix-up releases

	faultVA   uint64 // parked-on fault address
	faultWr   bool   // parked-on fault was a write
	faults    int    // faults taken (valve against livelock)
	maxFaults int
	fixups    int // outstanding bounce fix-up copies

	buf  []byte          // reusable piece buffer (transferChunk bytes)
	comp *ringCompletion // ring completion to deliver at the REAL end
	fire func(sim.Time)
}

func (e *Engine) getVW() *vaWalker {
	if n := len(e.freeVW); n > 0 {
		w := e.freeVW[n-1]
		e.freeVW = e.freeVW[:n-1]
		return w
	}
	w := &vaWalker{e: e, buf: make([]byte, transferChunk)}
	w.fire = func(at sim.Time) { w.step(at) }
	return w
}

func (e *Engine) putVW(w *vaWalker) {
	buf, fire := w.buf, w.fire
	*w = vaWalker{}
	w.e, w.buf, w.fire = e, buf, fire
	e.freeVW = append(e.freeVW, w)
}

// releaseVW detaches the walker from its transfer and pools it.
func (e *Engine) releaseVW(w *vaWalker) {
	if w.t != nil {
		w.t.vw = nil
		w.t = nil
	}
	e.putVW(w)
}

// nominal returns when byte hi of the payload streams on the fault-free
// schedule.
func (w *vaWalker) nominal(hi uint64) sim.Time {
	return w.t.Start + sim.Time(uint64(w.span)*hi/w.t.Size)
}

// step lands pieces up to the next chunk boundary, translating each
// piece's source and destination pages. It runs as the walker's single
// in-flight event; on a fault it returns without rescheduling (the
// fault path owns what happens next).
func (w *vaWalker) step(at sim.Time) {
	if w.done || w.parked || w.t == nil || w.t.Failed {
		return
	}
	e, t := w.e, w.t
	hi := (w.off/transferChunk)*transferChunk + transferChunk
	if hi > t.Size {
		hi = t.Size
	}
	var extra sim.Time
	pageSize := e.cfg.PageSize
	for w.off < hi {
		n := hi - w.off
		sva := w.srcVA + w.off
		dva := w.dstVA + w.off
		if rem := pageSize - sva%pageSize; n > rem {
			n = rem
		}
		if rem := pageSize - dva%pageSize; n > rem {
			n = rem
		}
		spa, shit, err := e.iommu.TranslateIO(w.ctx, sva, false)
		if err != nil {
			w.fault(at+extra, sva, false)
			return
		}
		if !shit {
			extra += e.cfg.IOTLBMissTime
		}
		dpa, dhit, derr := e.iommu.TranslateIO(w.ctx, dva, true)
		if derr != nil {
			bounced := false
			if e.policy == RecoverBounce {
				if bpa, ok := e.bounceOut(w, at+extra, dva, n); ok {
					dpa, bounced = bpa, true
				}
			}
			if !bounced {
				w.fault(at+extra, dva, true)
				return
			}
		} else if !dhit {
			extra += e.cfg.IOTLBMissTime
		}
		buf := w.buf[:n]
		if err := e.mem.ReadInto(spa, buf); err != nil {
			w.fail(at + extra)
			return
		}
		if err := e.mem.WriteBytes(dpa, buf); err != nil {
			w.fail(at + extra)
			return
		}
		w.off += n
	}
	if lag := at + extra - w.nominal(w.off); lag > w.penalty {
		w.penalty = lag
	}
	if w.off >= t.Size {
		w.done = true
		w.tryFinish(at + extra)
		return
	}
	next := (w.off/transferChunk)*transferChunk + transferChunk
	if next > t.Size {
		next = t.Size
	}
	e.events.ScheduleFunc(w.nominal(next)+w.penalty, w.fire)
}

// fault handles a translation fault at (va, write). Under an inline
// resolution the walker retries the same piece after the page-in
// latency; ErrFaultPending parks the transfer for ResumeFaulted.
func (w *vaWalker) fault(at sim.Time, va uint64, write bool) {
	e := w.e
	e.vactr.vaFaults.Inc()
	w.faults++
	if w.faults > w.maxFaults || e.resolver == nil {
		w.fail(at)
		return
	}
	lat, err := e.resolver.ResolveFault(w.ctx, va, write)
	if err != nil {
		if errors.Is(err, ErrFaultPending) && e.events != nil {
			w.parked = true
			w.faultVA, w.faultWr = va, write
			e.vactr.vaStalls.Inc()
			e.vaParked = append(e.vaParked, w)
			return
		}
		w.fail(at)
		return
	}
	e.vactr.vaStalls.Inc()
	e.events.ScheduleFunc(at+lat, w.fire)
}

// ResumeFaulted unparks transfers parked on a fault (all of them, or
// only translation context ctx when ctx >= 0), rescheduling their
// walkers at time at. The kernel calls this after making the faulted
// pages resident. Returns how many transfers resumed.
func (e *Engine) ResumeFaulted(ctx int, at sim.Time) int {
	if e.events == nil {
		return 0
	}
	n := 0
	kept := e.vaParked[:0]
	for _, w := range e.vaParked {
		if w.parked && (ctx < 0 || w.ctx == ctx) {
			w.parked = false
			n++
			e.events.ScheduleFunc(at, w.fire)
			continue
		}
		kept = append(kept, w)
	}
	for i := len(kept); i < len(e.vaParked); i++ {
		e.vaParked[i] = nil
	}
	e.vaParked = kept
	return n
}

// removeParked drops w from the parked list (failure path).
func (e *Engine) removeParked(w *vaWalker) {
	kept := e.vaParked[:0]
	for _, p := range e.vaParked {
		if p != w {
			kept = append(kept, p)
		}
	}
	for i := len(kept); i < len(e.vaParked); i++ {
		e.vaParked[i] = nil
	}
	e.vaParked = kept
}

// copyDur returns the engine-bandwidth time to move n bytes.
func (e *Engine) copyDur(n uint64) sim.Time {
	d := sim.Time(uint64(sim.Second) / e.cfg.Bandwidth * n)
	if d == 0 {
		d = sim.Nanosecond
	}
	return d
}

// bounceOut redirects a faulting destination page into a free bounce
// frame so the stream keeps moving, and schedules the fix-up copy for
// when the kernel has the real frame resident. Returns (bouncePA, true)
// on success; on any obstacle (no bounce region, no free frame, the
// resolver cannot page in) the caller falls back to the stall path.
func (e *Engine) bounceOut(w *vaWalker, at sim.Time, va, n uint64) (phys.Addr, bool) {
	if e.cfg.BouncePages == 0 || e.resolver == nil || e.events == nil {
		return 0, false
	}
	k := len(e.bounceFree)
	if k == 0 {
		return 0, false
	}
	lat, err := e.resolver.ResolveFault(w.ctx, va, true)
	if err != nil {
		return 0, false
	}
	frame := e.bounceFree[k-1]
	e.bounceFree = e.bounceFree[:k-1]
	pa := e.cfg.BounceBase + phys.Addr(uint64(frame)*e.cfg.PageSize+va%e.cfg.PageSize)
	w.fixups++
	e.vactr.vaBounced.Inc()
	// The fix-up record and its closure are allocated per fault — the
	// fault path is off the allocation-pinned no-fault hot path.
	fx := &vaFixup{w: w, frame: frame, bpa: pa, va: va, n: n}
	fx.fire = func(t sim.Time) { fx.run(t) }
	e.events.ScheduleFunc(at+lat+e.copyDur(n), fx.fire)
	return pa, true
}

// vaFixup is one outstanding bounce fix-up: copy the piece from its
// bounce frame to the real (now resident) destination page, then free
// the frame.
type vaFixup struct {
	w     *vaWalker
	frame int32
	bpa   phys.Addr // bounce source (frame base + page offset)
	va    uint64    // real destination device VA
	n     uint64
	tries int
	fire  func(sim.Time)
}

// maxFixupRetries bounds re-resolution of a destination page that was
// evicted again between the redirect and the fix-up.
const maxFixupRetries = 8

func (fx *vaFixup) run(at sim.Time) {
	w := fx.w
	e := w.e
	t := w.t
	if t == nil || t.Failed {
		e.bounceFree = append(e.bounceFree, fx.frame)
		w.fixups--
		if w.dead && w.fixups == 0 {
			e.releaseVW(w)
		}
		return
	}
	dpa, _, err := e.iommu.TranslateIO(w.ctx, fx.va, true)
	if err != nil {
		// The page was evicted again before the fix-up landed: re-resolve
		// and retry, up to the valve.
		fx.tries++
		if fx.tries <= maxFixupRetries {
			if lat, rerr := e.resolver.ResolveFault(w.ctx, fx.va, true); rerr == nil {
				e.events.ScheduleFunc(at+lat, fx.fire)
				return
			}
		}
		e.bounceFree = append(e.bounceFree, fx.frame)
		w.fixups--
		w.fail(at)
		return
	}
	buf := make([]byte, fx.n)
	if rerr := e.mem.ReadInto(fx.bpa, buf); rerr != nil {
		panic(rerr) // bounce region was validated against MemSize
	}
	if werr := e.mem.WriteBytes(dpa, buf); werr != nil {
		e.bounceFree = append(e.bounceFree, fx.frame)
		w.fixups--
		w.fail(at)
		return
	}
	e.bounceFree = append(e.bounceFree, fx.frame)
	w.fixups--
	if at > w.lastFix {
		w.lastFix = at
	}
	if w.done && w.fixups == 0 {
		w.tryFinish(w.streamEnd)
	}
}

// tryFinish records the stream end and finishes the transfer once both
// the stream and every fix-up have landed.
func (w *vaWalker) tryFinish(eff sim.Time) {
	if eff > w.streamEnd {
		w.streamEnd = eff
	}
	if !w.done || w.fixups > 0 {
		return
	}
	end := w.streamEnd
	if w.lastFix > end {
		end = w.lastFix
	}
	w.finishAt(end)
}

// finishAt completes the transfer at its REAL end: the End register
// moves to cover miss penalties, stalls and fix-ups, the channel and
// bus reservations extend with it, pins release, and a ring completion
// (if any) fires now rather than at the nominal End.
func (w *vaWalker) finishAt(end sim.Time) {
	e, t := w.e, w.t
	t.End = end
	if end > e.xfer.busyUntil {
		e.xfer.busyUntil = end
	}
	if e.reserver != nil && end > w.end0 {
		e.reserver.ReserveDMA(w.end0, end)
	}
	if e.policy == RecoverPin && e.resolver != nil {
		e.resolver.UnpinRange(w.ctx, w.srcVA, t.Size)
		e.resolver.UnpinRange(w.ctx, w.dstVA, t.Size)
	}
	e.finish(t)
	if c := w.comp; c != nil {
		w.comp = nil
		c.run(end)
	}
	e.releaseVW(w)
}

// fail marks the transfer failed and releases everything. With fix-ups
// still outstanding the walker lingers (dead) until the last one runs.
func (w *vaWalker) fail(at sim.Time) {
	e, t := w.e, w.t
	t.Failed = true
	w.done = true
	if w.parked {
		w.parked = false
		e.removeParked(w)
	}
	if e.policy == RecoverPin && e.resolver != nil {
		e.resolver.UnpinRange(w.ctx, w.srcVA, t.Size)
		e.resolver.UnpinRange(w.ctx, w.dstVA, t.Size)
	}
	if c := w.comp; c != nil {
		w.comp = nil
		c.run(at)
	}
	if w.fixups > 0 {
		w.dead = true
		return
	}
	e.releaseVW(w)
}

// runSyncVA delivers a virtual transfer eagerly for bare-engine tests
// (no event queue): faults resolve synchronously (parking needs events;
// an unresolvable fault fails the transfer), misses and page-in
// latencies accumulate into the final End, and bounce is moot because
// every fault resolves before the next piece.
func (e *Engine) runSyncVA(t *Transfer) {
	unpin := func() {
		if e.policy == RecoverPin && e.resolver != nil {
			e.resolver.UnpinRange(t.VCtx, uint64(t.Src), t.Size)
			e.resolver.UnpinRange(t.VCtx, uint64(t.Dst), t.Size)
		}
	}
	var extra sim.Time
	pageSize := e.cfg.PageSize
	srcVA, dstVA := uint64(t.Src), uint64(t.Dst)
	bufN := uint64(transferChunk)
	if t.Size < bufN {
		bufN = t.Size
	}
	buf := e.getBuf(bufN)
	faults := 0
	maxFaults := int(2*(t.Size/pageSize) + 8)
	resolve := func(va uint64, write bool) bool {
		e.vactr.vaFaults.Inc()
		faults++
		if faults > maxFaults || e.resolver == nil {
			return false
		}
		lat, err := e.resolver.ResolveFault(t.VCtx, va, write)
		if err != nil {
			return false
		}
		e.vactr.vaStalls.Inc()
		extra += lat
		return true
	}
	off := uint64(0)
	for off < t.Size {
		n := t.Size - off
		if n > transferChunk {
			n = transferChunk
		}
		sva, dva := srcVA+off, dstVA+off
		if rem := pageSize - sva%pageSize; n > rem {
			n = rem
		}
		if rem := pageSize - dva%pageSize; n > rem {
			n = rem
		}
		spa, shit, err := e.iommu.TranslateIO(t.VCtx, sva, false)
		if err != nil {
			if !resolve(sva, false) {
				e.putBuf(buf)
				unpin()
				t.Failed = true
				return
			}
			continue
		}
		if !shit {
			extra += e.cfg.IOTLBMissTime
		}
		dpa, dhit, derr := e.iommu.TranslateIO(t.VCtx, dva, true)
		if derr != nil {
			if !resolve(dva, true) {
				e.putBuf(buf)
				unpin()
				t.Failed = true
				return
			}
			continue
		}
		if !dhit {
			extra += e.cfg.IOTLBMissTime
		}
		p := buf[:n]
		if rerr := e.mem.ReadInto(spa, p); rerr != nil {
			e.putBuf(buf)
			unpin()
			t.Failed = true
			return
		}
		if werr := e.mem.WriteBytes(dpa, p); werr != nil {
			e.putBuf(buf)
			unpin()
			t.Failed = true
			return
		}
		off += n
	}
	e.putBuf(buf)
	t.End += extra
	if t.End > e.xfer.busyUntil {
		e.xfer.busyUntil = t.End
	}
	unpin()
	e.finish(t)
}

// walkDescriptorVA consumes one descriptor slot of a ring switched to
// virtual addressing (SetRingVA): Src/Dst are device VAs for the ring's
// context and validation is the IOMMU's page tables themselves — the
// mapping IS the registration, so ringAllowed extents are not
// consulted. The completion record rides the walker and fires at the
// transfer's REAL end (penalties, stalls and fix-ups included).
func (e *Engine) walkDescriptorVA(now sim.Time, ctx int, r *ringState, slot phys.Addr, srcVA, dstVA, size uint64) {
	prev := e.last
	var t *Transfer
	var ok bool
	if size == 0 && e.events != nil {
		e.ringZeroDefer = true
		t, ok = e.startVA(now, ctx, srcVA, dstVA, size)
		e.ringZeroDefer = false
	} else {
		t, ok = e.startVA(now, ctx, srcVA, dstVA, size)
	}
	if !ok {
		e.writeCompletion(slot, StatusFailure, now)
		return
	}
	t.ring = true
	if !e.logging && prev != nil && prev != t && prev.ring && prev.delivered {
		e.freeT = append(e.freeT, prev)
	}
	if e.events == nil {
		status := uint64(0)
		if t.Failed {
			status = StatusFailure
		}
		e.writeCompletion(slot, status, t.End)
		return
	}
	r.inFlight++
	c := e.getRingC()
	c.t, c.slot, c.ctx, c.gen, c.zero = t, slot, int32(ctx), r.gen, t.Size == 0
	if t.vw != nil {
		t.vw.comp = c
	} else {
		e.events.ScheduleFunc(t.End, c.fire)
	}
}
