// Package dma implements the network interface's DMA engine — the
// hardware half of every initiation scheme in the paper. It is modelled
// on the Telegraphos prototype board: a bus device whose physical
// address window is split into
//
//   - a shadow window, where the physical address of an access *encodes*
//     a main-memory physical address (plus, for extended shadow
//     addressing, a register-context id). Loads and stores here are
//     argument-passing operations, never memory accesses (§2.3);
//   - register-context pages (key-based scheme, §3.1): one page per
//     context, mapped by the OS into exactly one process, aliasing that
//     context's size/status register;
//   - a control page with the classic kernel-programmed DMA registers
//     (Figure 1) plus the hooks prior work needed (current-PID register
//     for FLASH, abort register for SHRIMP-2);
//   - an atomic-operation window (§3.5), where a single locked
//     read-modify-write bus transaction performs fetch_and_add,
//     fetch_and_store or compare_and_swap on main memory.
//
// The engine is configured with exactly one shadow decode Mode, the way
// a real board is wired for one protocol; experiments build one machine
// per protocol under test.
package dma

import (
	"fmt"

	"uldma/internal/obs"
	"uldma/internal/phys"
	"uldma/internal/sim"
)

// Mode selects how the engine interprets shadow-window accesses.
type Mode uint8

// Shadow decode modes.
const (
	// ModePaired: STORE size TO shadow(dst) then LOAD FROM shadow(src)
	// into a single global pending slot (SHRIMP's second solution, §2.5;
	// also the sequence PAL code executes, §2.7, and — with PID tracking
	// enabled — the FLASH scheme, §2.6).
	ModePaired Mode = iota
	// ModeKeyed: register contexts addressed by a key#ctx value in the
	// store data (§3.1).
	ModeKeyed
	// ModeExtended: register contexts addressed by spare physical
	// address bits set by the OS in the shadow mapping (§3.2).
	ModeExtended
	// ModeRepeated: the repeated-passing sequence FSM (§3.3); SeqLen
	// selects the 3-, 4- or 5-access variant.
	ModeRepeated
	// ModeMappedOut: SHRIMP's first solution (§2.4) — each source page
	// has a fixed mapped-out destination, and one compare-and-exchange
	// access carries the whole initiation.
	ModeMappedOut
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModePaired:
		return "paired"
	case ModeKeyed:
		return "keyed"
	case ModeExtended:
		return "extended"
	case ModeRepeated:
		return "repeated"
	case ModeMappedOut:
		return "mapped-out"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Status values returned by argument-passing loads and status reads.
// Any value other than StatusFailure/StatusAccepted is a byte count
// still to transfer (0 = complete).
const (
	// StatusFailure is the DMA_FAILURE code (-1): the initiation was
	// rejected or the sequence was broken.
	StatusFailure = ^uint64(0)
	// StatusAccepted (-2) acknowledges a repeated-passing access that
	// kept a sequence valid but did not START a transfer. Making it
	// distinct from both DMA_FAILURE and every possible remaining-byte
	// count lets a careful client detect that its FINAL load merely
	// extended someone else's sequence instead of completing its own —
	// closing a false-success window the paper's "check DMA_FAILURE
	// only" client (Figure 7) leaves open under multiprogramming. See
	// EXPERIMENTS.md ("status integrity").
	StatusAccepted = ^uint64(1)
)

// Control-page register offsets (Figure 1's kernel interface plus the
// kernel-modification hooks of prior work).
const (
	RegSource  = 0x00 // DMA_SOURCE: physical source address
	RegDest    = 0x08 // DMA_DESTINATION: physical destination address
	RegSize    = 0x10 // DMA_SIZE: byte count; writing starts the transfer
	RegStatus  = 0x18 // DMA_STATUS: remaining bytes or StatusFailure
	RegPID     = 0x20 // current process id (the FLASH context-switch hook)
	RegAbort   = 0x28 // any write aborts pending half-initiations (SHRIMP-2 hook)
	RegLastSt  = 0x30 // status of the most recently started transfer
	RegStarted = 0x38 // count of transfers started (diagnostics)
)

// Atomic-operation codes, encoded in the atomic window address.
const (
	AtomicAdd  = 0 // fetch_and_add: returns old, stores old+val
	AtomicSwap = 1 // fetch_and_store: returns old, stores val
	AtomicCAS  = 2 // compare_and_swap: val packs (cmp<<32 | new) on 32-bit cells
)

// Config wires the engine into the machine's physical address map and
// sets its performance parameters.
type Config struct {
	// Mode is the shadow decode protocol the board is built for.
	Mode Mode
	// SeqLen is the repeated-passing variant (3, 4 or 5 accesses); only
	// meaningful in ModeRepeated.
	SeqLen int
	// Contexts is the number of register contexts (the paper suggests
	// 4-8 for the keyed scheme; extended mode uses 1<<CtxBits).
	Contexts int
	// CtxBits is the number of physical address bits carrying the
	// context id in ModeExtended (the paper envisions 1-2).
	CtxBits int
	// NoRegContexts selects the cheaper ModeExtended hardware variant
	// of §3.2: "If the DMA engine has no register contexts, then when
	// it receives pairs of STORE and LOAD instructions, it checks the
	// CONTEXT_ID values of the two physical addresses. If they are
	// different, the DMA operation is not started and an error code is
	// returned by the last LOAD." Initiations interrupted by another
	// context's initiation fail cleanly and must be retried.
	NoRegContexts bool
	// MemBits is the width of a main-memory physical address inside a
	// shadow encoding; 1<<MemBits must cover MemSize and RemoteBase.
	MemBits uint
	// PageSize matches the MMU page size (register-context pages are
	// page-sized so they can be mapped per process).
	PageSize uint64
	// MemSize is the size of local physical memory; transfers are
	// validated against it.
	MemSize uint64

	// ShadowBase etc. place the engine's bus windows.
	ShadowBase  phys.Addr
	CtxPageBase phys.Addr
	ControlBase phys.Addr
	AtomicBase  phys.Addr
	// RingBase, if non-zero, places the descriptor-ring doorbell pages
	// (one page per register context; see ring.go).
	RingBase phys.Addr
	// VABase, if non-zero, places the virtual-address shadow window
	// (one MemBits-sized region per translation context; see va.go).
	// Requires an attached IOMMU (Engine.AttachIOMMU) to initiate.
	VABase phys.Addr

	// RemoteBase, if non-zero, marks decoded destination addresses at or
	// above it as remote: node = (dst-RemoteBase)>>NodeShift, remote
	// offset = dst & (1<<NodeShift - 1). Requires a RemoteHandler.
	RemoteBase phys.Addr
	NodeShift  uint

	// KeyCheckCycles is the extra bus-side latency of validating a key
	// (ModeKeyed shadow stores).
	KeyCheckCycles int64
	// StartupTime is the engine latency between accepting arguments and
	// moving the first byte.
	StartupTime sim.Time
	// Bandwidth is the transfer data rate in bytes/second.
	Bandwidth uint64
	// MaxTransfer caps a single DMA's size (0 = limited only by memory).
	MaxTransfer uint64

	// IOTLBMissTime is the walk-time penalty a virtual transfer pays per
	// IOTLB miss (va.go).
	IOTLBMissTime sim.Time
	// BounceBase/BouncePages place the pinned kernel bounce region the
	// RecoverBounce policy redirects faulting destination pages into.
	BounceBase  phys.Addr
	BouncePages int
}

// numCtx returns the register/translation context count the
// configuration implies (Contexts; 1<<CtxBits in extended mode; at
// least 1).
func (c Config) numCtx() int {
	n := c.Contexts
	if c.Mode == ModeExtended {
		n = 1 << c.CtxBits
	}
	if n < 1 {
		n = 1
	}
	return n
}

// VAWindowSize returns the bus-window size of the virtual-address
// shadow range (0 when VABase is unset).
func (c Config) VAWindowSize() uint64 {
	if c.VABase == 0 {
		return 0
	}
	return uint64(c.numCtx()) << c.MemBits
}

// VAShadow returns the VA-window physical address encoding device
// virtual address va for translation context ctx — the address the OS
// maps into a process that initiates on virtual addresses.
func (c Config) VAShadow(va uint64, ctx int) phys.Addr {
	return c.VABase + phys.Addr(uint64(ctx)<<c.MemBits|va&(uint64(1)<<c.MemBits-1))
}

// ShadowWindowSize returns the bus-window size the shadow range needs.
func (c Config) ShadowWindowSize() uint64 {
	span := uint64(1) << c.MemBits
	if c.Mode == ModeExtended {
		span <<= uint(c.CtxBits)
	}
	return span
}

// AtomicWindowSize returns the bus-window size of the atomic range
// (4 operation slots, future-proofing one spare).
func (c Config) AtomicWindowSize() uint64 { return 4 << c.MemBits }

// CtxWindowSize returns the bus-window size of the register-context
// pages.
func (c Config) CtxWindowSize() uint64 { return uint64(c.Contexts) * c.PageSize }

// RemoteWindowSize returns the bus-window size of the remote-write
// range (0 when the engine is not on a cluster fabric). The window
// spans the rest of the MemBits-encodable space above RemoteBase, so
// the same addresses work both as direct remote-write targets and as
// DMA destinations.
func (c Config) RemoteWindowSize() uint64 {
	if c.RemoteBase == 0 {
		return 0
	}
	return (uint64(1) << c.MemBits) - uint64(c.RemoteBase)
}

// RemoteAddr returns the physical address that names (node, offset) on
// the cluster fabric — usable as a DMA destination or, via the bus, as
// a direct remote-write target.
func (c Config) RemoteAddr(node int, offset phys.Addr) phys.Addr {
	return c.RemoteBase + phys.Addr(uint64(node)<<c.NodeShift) + offset
}

// WindowOf names the engine window a physical address decodes to
// ("shadow", "ctx", "control", "atomic", "remote") or "" for addresses
// outside the engine. Trace tooling uses it to annotate bus traffic.
func (c Config) WindowOf(addr phys.Addr) string {
	in := func(base phys.Addr, size uint64) bool {
		return size > 0 && addr >= base && uint64(addr)-uint64(base) < size
	}
	switch {
	case in(c.ShadowBase, c.ShadowWindowSize()):
		return "shadow"
	case c.Contexts > 0 && in(c.CtxPageBase, c.CtxWindowSize()):
		return "ctx"
	case in(c.ControlBase, c.PageSize):
		return "control"
	case in(c.AtomicBase, c.AtomicWindowSize()):
		return "atomic"
	case c.RingBase != 0 && in(c.RingBase, c.RingWindowSize()):
		return "ring"
	case c.VABase != 0 && in(c.VABase, c.VAWindowSize()):
		return "va"
	case c.RemoteBase != 0 && in(c.RemoteBase, c.RemoteWindowSize()):
		return "remote"
	default:
		return ""
	}
}

// Shadow returns the shadow physical address encoding pa for register
// context ctx (ctx is ignored outside ModeExtended). The OS uses this
// when it builds shadow page mappings; tests use it to force raw
// accesses.
func (c Config) Shadow(pa phys.Addr, ctx int) phys.Addr {
	a := c.ShadowBase + phys.Addr(uint64(pa)&(1<<c.MemBits-1))
	if c.Mode == ModeExtended {
		a += phys.Addr(uint64(ctx) << c.MemBits)
	}
	return a
}

// AtomicShadow returns the atomic-window physical address encoding
// operation op on pa.
func (c Config) AtomicShadow(pa phys.Addr, op int) phys.Addr {
	return c.AtomicBase + phys.Addr(uint64(op)<<c.MemBits) + phys.Addr(uint64(pa)&(1<<c.MemBits-1))
}

// CtxPage returns the physical base of register context ctx's page.
func (c Config) CtxPage(ctx int) phys.Addr {
	return c.CtxPageBase + phys.Addr(uint64(ctx)*c.PageSize)
}

func (c Config) validate() error {
	if c.MemBits == 0 || c.MemBits > 40 {
		return fmt.Errorf("dma: MemBits %d out of range", c.MemBits)
	}
	if c.MemSize == 0 || c.MemSize > 1<<c.MemBits {
		return fmt.Errorf("dma: MemSize %d not covered by MemBits %d", c.MemSize, c.MemBits)
	}
	if c.PageSize == 0 || c.PageSize&(c.PageSize-1) != 0 {
		return fmt.Errorf("dma: page size %d not a power of two", c.PageSize)
	}
	if c.Bandwidth == 0 {
		return fmt.Errorf("dma: zero bandwidth")
	}
	switch c.Mode {
	case ModeKeyed:
		if c.Contexts < 1 || c.Contexts > 256 {
			return fmt.Errorf("dma: keyed mode needs 1-256 contexts, have %d", c.Contexts)
		}
	case ModeExtended:
		if c.CtxBits < 1 || c.CtxBits > 8 {
			return fmt.Errorf("dma: extended mode needs 1-8 context bits, have %d", c.CtxBits)
		}
	case ModeRepeated:
		if c.SeqLen != 3 && c.SeqLen != 4 && c.SeqLen != 5 {
			return fmt.Errorf("dma: repeated mode needs SeqLen 3, 4 or 5, have %d", c.SeqLen)
		}
	case ModePaired, ModeMappedOut:
	default:
		return fmt.Errorf("dma: unknown mode %v", c.Mode)
	}
	if c.RemoteBase != 0 {
		if uint64(c.RemoteBase) >= 1<<c.MemBits {
			return fmt.Errorf("dma: RemoteBase %v not encodable in %d bits", c.RemoteBase, c.MemBits)
		}
		if c.NodeShift == 0 {
			return fmt.Errorf("dma: RemoteBase set but NodeShift is zero")
		}
	}
	if c.BouncePages > 0 {
		if c.VABase == 0 {
			return fmt.Errorf("dma: bounce region configured without a VA window")
		}
		if uint64(c.BounceBase)%c.PageSize != 0 {
			return fmt.Errorf("dma: BounceBase %v not page-aligned", c.BounceBase)
		}
		if uint64(c.BounceBase)+uint64(c.BouncePages)*c.PageSize > c.MemSize {
			return fmt.Errorf("dma: bounce region %v+%d pages exceeds local memory", c.BounceBase, c.BouncePages)
		}
	}
	return nil
}

// Stats counts engine activity. It is a read-only view assembled from
// the obs counter cells on demand (the thin compatibility accessor
// over the unified metrics plane).
type Stats struct {
	ShadowStores    uint64
	ShadowLoads     uint64
	KeyMismatches   uint64
	SeqResets       uint64 // repeated-mode FSM resets
	Started         uint64 // transfers accepted
	Rejected        uint64 // initiations refused (validation, broken sequence)
	Completed       uint64
	BytesMoved      uint64
	AtomicOps       uint64
	RemoteStarted   uint64
	AbortedPending  uint64 // half-initiations discarded (SHRIMP-2/FLASH hooks)
	RingDoorbells   uint64 // doorbell stores that kicked a walk
	RingPosted      uint64 // descriptors consumed by walks
	RingCompletions uint64 // completion records written back
}

// RemoteHandler delivers remote-write DMA payloads to another node. The
// net package implements it with link latency/bandwidth modelling.
type RemoteHandler interface {
	// Deliver ships data to (node, addr); at is the simulated time the
	// payload leaves this engine. Deliver must NOT retain data: the
	// engine reuses the backing buffer for the next payload as soon as
	// the call returns (the fabric copies into its own pooled delivery
	// records), which keeps the per-message send path allocation-free.
	Deliver(node int, addr phys.Addr, data []byte, at sim.Time) error
}

// RemoteAtomicHandler is implemented by fabrics that support atomic
// operations on another node's memory (Telegraphos-style NOW shared
// memory). The call is synchronous: the fabric performs the operation
// on the remote cell and accounts the round-trip time on the shared
// clock before returning — the issuing CPU stalls for it, like any
// locked transaction.
type RemoteAtomicHandler interface {
	RMWRemote(node int, addr phys.Addr, op int, size phys.AccessSize, val uint64) (uint64, error)
}

// regContext is one register context: a private argument slot so that a
// context switch between a process's argument stores cannot mix its
// arguments with another process's (§3.1).
type regContext struct {
	src, dst         phys.Addr
	size             uint64
	haveSrc, haveDst bool
	haveSize         bool
	cur              *Transfer
	// virt marks the collected arguments as device VAs (set when they
	// arrived through the VA window); vctx is their translation context.
	virt bool
	vctx int
}

// pendingPair is the single global half-initiation slot of ModePaired.
type pendingPair struct {
	dst   phys.Addr
	size  uint64
	pid   int
	valid bool
	// virt/vctx: see regContext.
	virt bool
	vctx int
}

// Engine is the DMA engine device.
type Engine struct {
	cfg    Config
	clock  *sim.Clock
	events *sim.EventQueue
	mem    *phys.Memory

	ctxs    []regContext
	keys    []uint64 // per-context keys (0 = unassigned), ModeKeyed
	pending pendingPair
	pidTrk  bool // FLASH-style PID tracking on the pending slot
	curPID  int

	seq seqFSM // ModeRepeated

	pageMap map[phys.Addr]phys.Addr // ModeMappedOut: src page -> dst base

	// Kernel-programmed registers (control page).
	regSrc, regDst uint64
	last           *Transfer
	log            []*Transfer
	xfer           transferEngine

	remote   RemoteHandler
	reserver BusReserver
	ctr      counters

	// rings holds the per-context descriptor rings (ring.go); the slice
	// always matches ctxs in length, usable only when RingBase is set.
	// ringZeroDefer is the startRing<->schedule handshake that lets the
	// pooled ring completion record double as a zero-size transfer's
	// finish event.
	rings         []ringState
	ringZeroDefer bool

	// Virtual-address DMA state (va.go): the attached translator and
	// fault resolver, the active recovery policy, transfers parked on a
	// fault, the bounce-frame free list, the VA counters, and the
	// transient window tag (vaAcc/vaCtx) set around a VA-window access
	// so the shared decode FSMs know the collected argument is virtual.
	iommu      Translator
	resolver   FaultResolver
	policy     RecoveryPolicy
	vaParked   []*vaWalker
	bounceFree []int32
	vactr      vaCounters
	vaAcc      bool
	vaCtx      int

	// Allocation control for the per-message hot path. logging keeps the
	// full transfer log (default); with it off, retired Transfer records
	// are recycled. wordBuf carries single-word remote writes; freeBuf,
	// freeShip, freeRingC and freeVW pool remote payload buffers,
	// in-flight ship records, ring completion records and VA walkers.
	logging   bool
	wordBuf   [8]byte
	freeT     []*Transfer
	freeBuf   [][]byte
	freeShip  []*remoteShip
	freeRingC []*ringCompletion
	freeVW    []*vaWalker
}

// BusReserver lets the engine report the windows in which it masters
// the bus (DMA cycle stealing); implemented by bus.Bus.
type BusReserver interface {
	ReserveDMA(start, end sim.Time)
}

// New builds an engine. mem is the node's local memory the engine
// masters transfers on.
func New(cfg Config, clock *sim.Clock, events *sim.EventQueue, mem *phys.Memory) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	nCtx := cfg.numCtx()
	e := &Engine{
		cfg:     cfg,
		clock:   clock,
		events:  events,
		mem:     mem,
		ctxs:    make([]regContext, nCtx),
		keys:    make([]uint64, nCtx),
		rings:   make([]ringState, nCtx),
		pageMap: make(map[phys.Addr]phys.Addr),
		logging: true,
	}
	// Bounce frames pop from the tail, so descending order hands them
	// out 0, 1, 2, ... deterministically.
	for i := int32(cfg.BouncePages) - 1; i >= 0; i-- {
		e.bounceFree = append(e.bounceFree, i)
	}
	e.seq.init(cfg.SeqLen)
	return e, nil
}

// Name implements bus.Device.
func (e *Engine) Name() string { return "telegraphos-nic" }

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// counters is the live metric storage: typed obs cells, registered
// with the machine's registry at construction and captured by value in
// snapshots so the engine's FSM/transfer tallies rewind with the world.
type counters struct {
	shadowStores   obs.Counter
	shadowLoads    obs.Counter
	keyMismatches  obs.Counter
	seqResets      obs.Counter
	started        obs.Counter
	rejected       obs.Counter
	completed      obs.Counter
	bytesMoved     obs.Counter
	atomicOps      obs.Counter
	remoteStarted  obs.Counter
	abortedPending obs.Counter

	ringDoorbells   obs.Counter
	ringPosted      obs.Counter
	ringCompletions obs.Counter
}

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats {
	return Stats{
		ShadowStores:    e.ctr.shadowStores.Value(),
		ShadowLoads:     e.ctr.shadowLoads.Value(),
		KeyMismatches:   e.ctr.keyMismatches.Value(),
		SeqResets:       e.ctr.seqResets.Value(),
		Started:         e.ctr.started.Value(),
		Rejected:        e.ctr.rejected.Value(),
		Completed:       e.ctr.completed.Value(),
		BytesMoved:      e.ctr.bytesMoved.Value(),
		AtomicOps:       e.ctr.atomicOps.Value(),
		RemoteStarted:   e.ctr.remoteStarted.Value(),
		AbortedPending:  e.ctr.abortedPending.Value(),
		RingDoorbells:   e.ctr.ringDoorbells.Value(),
		RingPosted:      e.ctr.ringPosted.Value(),
		RingCompletions: e.ctr.ringCompletions.Value(),
	}
}

// ResetStats zeroes the counters.
func (e *Engine) ResetStats() { e.ctr = counters{} }

// RegisterMetrics publishes the engine's counters in a registry.
func (e *Engine) RegisterMetrics(r *obs.Registry) {
	r.RegisterCounter("dma.shadow_stores", &e.ctr.shadowStores)
	r.RegisterCounter("dma.shadow_loads", &e.ctr.shadowLoads)
	r.RegisterCounter("dma.key_mismatches", &e.ctr.keyMismatches)
	r.RegisterCounter("dma.seq_resets", &e.ctr.seqResets)
	r.RegisterCounter("dma.started", &e.ctr.started)
	r.RegisterCounter("dma.rejected", &e.ctr.rejected)
	r.RegisterCounter("dma.completed", &e.ctr.completed)
	r.RegisterCounter("dma.bytes_moved", &e.ctr.bytesMoved)
	r.RegisterCounter("dma.atomic_ops", &e.ctr.atomicOps)
	r.RegisterCounter("dma.remote_started", &e.ctr.remoteStarted)
	r.RegisterCounter("dma.aborted_pending", &e.ctr.abortedPending)
	r.RegisterCounter("dma.ring_doorbells", &e.ctr.ringDoorbells)
	r.RegisterCounter("dma.ring_posted", &e.ctr.ringPosted)
	r.RegisterCounter("dma.ring_completions", &e.ctr.ringCompletions)
}

// NumContexts returns the number of register contexts.
func (e *Engine) NumContexts() int { return len(e.ctxs) }

// SetKey installs the protection key for a register context (kernel
// setup-time operation, ModeKeyed). Key 0 disables the context.
func (e *Engine) SetKey(ctx int, key uint64) error {
	if ctx < 0 || ctx >= len(e.keys) {
		return fmt.Errorf("dma: context %d out of range", ctx)
	}
	e.keys[ctx] = key
	return nil
}

// SetPIDTracking enables FLASH-style tracking: the engine discards a
// pending half-initiation when the current PID changes (requires the
// kernel's context-switch handler to write RegPID — the kernel
// modification FLASH needs).
func (e *Engine) SetPIDTracking(on bool) { e.pidTrk = on }

// MapOut installs a SHRIMP-1 page mapping: DMA from srcPage always
// targets dst (same offset). Kernel setup-time operation.
func (e *Engine) MapOut(srcPage, dst phys.Addr) error {
	if uint64(srcPage)%e.cfg.PageSize != 0 {
		return fmt.Errorf("dma: MapOut source %v not page-aligned", srcPage)
	}
	e.pageMap[srcPage] = dst
	return nil
}

// SetRemoteHandler attaches the cluster fabric.
func (e *Engine) SetRemoteHandler(h RemoteHandler) { e.remote = h }

// Remote returns the attached cluster fabric handler (nil when the
// engine is standalone). Shard-hosted snapshots use it to detach the
// fabric around Snapshot — at a quiescent cluster barrier no link
// traffic is in flight, so the engine's no-fabric snapshot rule can be
// satisfied by unplugging the port and plugging it back in.
func (e *Engine) Remote() RemoteHandler { return e.remote }

// SetLogging enables or disables the transfer log (Transfers). The log
// is a debugging and attack-study aid: it grows one record per accepted
// transfer for the life of the engine. High-rate message channels turn
// it off, which lets the engine recycle retired Transfer records and
// makes the steady-state send path allocation-free (pinned by
// internal/msg's TestSendSteadyStateZeroAllocs). With logging off the
// log stays empty, the log-based invariant checks are skipped, and
// Snapshot refuses (a snapshot without the log could not restore
// faithfully). Logging is on by default.
func (e *Engine) SetLogging(on bool) { e.logging = on }

// Logging reports whether the transfer log is being kept.
func (e *Engine) Logging() bool { return e.logging }

// SetBusReserver attaches the bus the engine steals cycles from while
// mastering transfers.
func (e *Engine) SetBusReserver(r BusReserver) { e.reserver = r }

// AbortPending discards any half-initiated user-level DMA. This is the
// SHRIMP-2 kernel hook: "the operating system must invalidate any
// partially initiated user-level DMA transfer on every context switch".
func (e *Engine) AbortPending() {
	if e.pending.valid {
		e.pending.valid = false
		e.ctr.abortedPending.Inc()
	}
	if e.seq.idx != 0 {
		e.seq.reset()
		e.ctr.seqResets.Inc()
	}
}

// SetCurrentPID records the running process (the FLASH kernel hook
// writes this at every context switch; also reachable via RegPID).
func (e *Engine) SetCurrentPID(pid int) {
	if e.pidTrk && e.pending.valid && e.pending.pid != pid {
		e.pending.valid = false
		e.ctr.abortedPending.Inc()
	}
	e.curPID = pid
}

// CurrentPID returns the engine's view of the running process.
func (e *Engine) CurrentPID() int { return e.curPID }

// LastTransfer returns the most recently started transfer, if any.
func (e *Engine) LastTransfer() *Transfer { return e.last }

// Transfers returns every transfer the engine accepted, in start order.
// The attack studies use it as the ground truth of what actually moved.
func (e *Engine) Transfers() []*Transfer { return e.log }

// ContextTransfer returns the most recent transfer started through
// register context ctx (nil if none). The kernel's blocking-wait
// syscall uses it to find what a process is waiting on.
func (e *Engine) ContextTransfer(ctx int) *Transfer {
	if ctx < 0 || ctx >= len(e.ctxs) {
		return nil
	}
	return e.ctxs[ctx].cur
}

// CheckInvariants validates the engine's internal consistency; soak
// tests call it after a run (with events settled). It returns the first
// violation found.
func (e *Engine) CheckInvariants(now sim.Time) error {
	if e.ctr.completed.Value() > e.ctr.started.Value() {
		return fmt.Errorf("dma: completed %d > started %d", e.ctr.completed.Value(), e.ctr.started.Value())
	}
	if !e.logging {
		// Without the transfer log the per-transfer checks below have
		// nothing to walk; the counter invariant above still holds.
		return nil
	}
	if uint64(len(e.log)) != e.ctr.started.Value() {
		return fmt.Errorf("dma: %d logged transfers vs %d started", len(e.log), e.ctr.started.Value())
	}
	var prevStart sim.Time
	var bytes uint64
	for i, t := range e.log {
		if t.Failed {
			if t.Virt {
				// A virtual transfer can fail AFTER acceptance (unresolvable
				// mid-transfer fault); it stays in the log as the record of
				// what was attempted.
				continue
			}
			return fmt.Errorf("dma: transfer %d in the accepted log is marked failed", i)
		}
		if t.End < t.Start {
			return fmt.Errorf("dma: transfer %d ends (%v) before it starts (%v)", i, t.End, t.Start)
		}
		if t.Start < prevStart {
			return fmt.Errorf("dma: transfer %d starts (%v) before its predecessor (%v)", i, t.Start, prevStart)
		}
		prevStart = t.Start
		if t.End > e.xfer.busyUntil {
			return fmt.Errorf("dma: transfer %d ends (%v) after busyUntil (%v)", i, t.End, e.xfer.busyUntil)
		}
		if now >= t.End {
			if !t.delivered {
				if t.vw != nil {
					// Parked on a fault (or mid-walk): the nominal End has
					// passed but the real one has not been decided yet.
					continue
				}
				return fmt.Errorf("dma: transfer %d past End (%v <= %v) but not delivered", i, t.End, now)
			}
			bytes += t.Size
		}
	}
	if e.ctr.bytesMoved.Value() != bytes {
		return fmt.Errorf("dma: BytesMoved %d vs %d summed from completed transfers", e.ctr.bytesMoved.Value(), bytes)
	}
	return nil
}

// window classification -----------------------------------------------

type window uint8

const (
	winNone window = iota
	winShadow
	winCtx
	winControl
	winAtomic
	winRing
	winRemote
	winVA
)

func (e *Engine) classify(addr phys.Addr) (window, uint64) {
	c := e.cfg
	if off := uint64(addr) - uint64(c.ShadowBase); uint64(addr) >= uint64(c.ShadowBase) && off < c.ShadowWindowSize() {
		return winShadow, off
	}
	if c.Contexts > 0 {
		if off := uint64(addr) - uint64(c.CtxPageBase); uint64(addr) >= uint64(c.CtxPageBase) && off < c.CtxWindowSize() {
			return winCtx, off
		}
	}
	if off := uint64(addr) - uint64(c.ControlBase); uint64(addr) >= uint64(c.ControlBase) && off < c.PageSize {
		return winControl, off
	}
	if off := uint64(addr) - uint64(c.AtomicBase); uint64(addr) >= uint64(c.AtomicBase) && off < c.AtomicWindowSize() {
		return winAtomic, off
	}
	if c.RingBase != 0 {
		if off := uint64(addr) - uint64(c.RingBase); uint64(addr) >= uint64(c.RingBase) && off < c.RingWindowSize() {
			return winRing, off
		}
	}
	if c.RemoteBase != 0 {
		if off := uint64(addr) - uint64(c.RemoteBase); uint64(addr) >= uint64(c.RemoteBase) && off < c.RemoteWindowSize() {
			return winRemote, off
		}
	}
	if c.VABase != 0 {
		if off := uint64(addr) - uint64(c.VABase); uint64(addr) >= uint64(c.VABase) && off < c.VAWindowSize() {
			return winVA, off
		}
	}
	return winNone, 0
}

// Load implements bus.Device.
func (e *Engine) Load(now sim.Time, addr phys.Addr, size phys.AccessSize) (uint64, int64, error) {
	switch win, off := e.classify(addr); win {
	case winShadow:
		e.ctr.shadowLoads.Inc()
		return e.shadowLoad(now, off)
	case winVA:
		return e.vaLoad(now, off)
	case winCtx:
		return e.ctxLoad(now, off)
	case winControl:
		return e.controlLoad(now, off)
	case winRing:
		return e.ringLoad(off)
	case winAtomic:
		// Plain loads in the atomic window read memory through the
		// engine (useful for polling shared cells without local copies).
		pa := phys.Addr(off & (1<<e.cfg.MemBits - 1))
		v, err := e.mem.Read(pa, size)
		return v, 0, err
	case winRemote:
		// Telegraphos-style remote WRITES are supported; remote reads
		// would need a round trip the interface does not implement.
		return 0, 0, fmt.Errorf("dma: remote reads are not supported (load at %v)", addr)
	default:
		return 0, 0, fmt.Errorf("dma: load at %v outside engine windows", addr)
	}
}

// Store implements bus.Device.
func (e *Engine) Store(now sim.Time, addr phys.Addr, size phys.AccessSize, val uint64) (int64, error) {
	switch win, off := e.classify(addr); win {
	case winShadow:
		e.ctr.shadowStores.Inc()
		return e.shadowStore(now, off, val)
	case winVA:
		return e.vaStore(now, off, val)
	case winCtx:
		return e.ctxStore(now, off, val)
	case winControl:
		return e.controlStore(now, off, val)
	case winRing:
		return e.ringStore(now, off, val)
	case winAtomic:
		return 0, fmt.Errorf("dma: plain store at %v in atomic window (use RMW)", addr)
	case winRemote:
		// A single-word remote write (the Telegraphos doorbell/flag
		// primitive): forwarded to the fabric as a tiny payload.
		if e.remote == nil {
			return 0, fmt.Errorf("dma: remote write at %v with no fabric attached", addr)
		}
		node := int(off >> e.cfg.NodeShift)
		raddr := phys.Addr(off & (1<<e.cfg.NodeShift - 1))
		// Carry the word in the engine-owned scratch buffer: Deliver
		// must not retain it (see RemoteHandler), so a doorbell write
		// costs no allocation.
		buf := e.wordBuf[:size]
		for i := range buf {
			buf[i] = byte(val >> (8 * i))
		}
		e.ctr.remoteStarted.Inc()
		return 0, e.remote.Deliver(node, raddr, buf, now)
	default:
		return 0, fmt.Errorf("dma: store at %v outside engine windows", addr)
	}
}

// RMW implements bus.RMWDevice: atomic-window operations (§3.5) and the
// ModeMappedOut compare-and-exchange initiation (§2.4).
func (e *Engine) RMW(now sim.Time, addr phys.Addr, size phys.AccessSize, val uint64) (uint64, int64, error) {
	switch win, off := e.classify(addr); win {
	case winAtomic:
		return e.atomicOp(off, size, val)
	case winShadow:
		if e.cfg.Mode == ModeMappedOut {
			return e.mappedOutInitiate(now, off, val)
		}
		return 0, 0, fmt.Errorf("dma: RMW in shadow window unsupported in %v mode", e.cfg.Mode)
	default:
		return 0, 0, fmt.Errorf("dma: RMW at %v outside atomic window", addr)
	}
}

// decodeShadow splits a shadow-window offset into (ctx, memory paddr).
func (e *Engine) decodeShadow(off uint64) (int, phys.Addr) {
	mask := uint64(1)<<e.cfg.MemBits - 1
	ctx := 0
	if e.cfg.Mode == ModeExtended {
		ctx = int(off >> e.cfg.MemBits)
	}
	return ctx, phys.Addr(off & mask)
}
