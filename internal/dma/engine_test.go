package dma

import (
	"bytes"
	"strings"
	"testing"

	"uldma/internal/phys"
	"uldma/internal/sim"
)

const (
	testPageSize = 8192
	testMemSize  = 1 << 20 // 1 MiB
	shadowBase   = phys.Addr(0x4000_0000)
	ctxPageBase  = phys.Addr(0x2000_0000)
	controlBase  = phys.Addr(0x2100_0000)
	atomicBase   = phys.Addr(0x8000_0000)
	remoteBase   = phys.Addr(0x0200_0000) // 32 MiB, inside the 26-bit encode space
)

func testConfig(mode Mode) Config {
	return Config{
		Mode:           mode,
		SeqLen:         5,
		Contexts:       4,
		CtxBits:        2,
		MemBits:        26,
		PageSize:       testPageSize,
		MemSize:        testMemSize,
		ShadowBase:     shadowBase,
		CtxPageBase:    ctxPageBase,
		ControlBase:    controlBase,
		AtomicBase:     atomicBase,
		RemoteBase:     remoteBase,
		NodeShift:      20,
		KeyCheckCycles: 2,
		StartupTime:    sim.Microsecond,
		Bandwidth:      100_000_000, // 100 MB/s
	}
}

type engFixture struct {
	e      *Engine
	mem    *phys.Memory
	events *sim.EventQueue
}

func newEngine(t *testing.T, mode Mode, mut func(*Config)) *engFixture {
	t.Helper()
	cfg := testConfig(mode)
	if mut != nil {
		mut(&cfg)
	}
	mem := phys.New(testMemSize)
	events := sim.NewEventQueue()
	e, err := New(cfg, sim.NewClock(), events, mem)
	if err != nil {
		t.Fatal(err)
	}
	return &engFixture{e: e, mem: mem, events: events}
}

// settle runs all pending delivery events and returns the final time.
func (f *engFixture) settle() sim.Time { return f.events.Drain(0) }

func (f *engFixture) fillSrc(addr phys.Addr, n int, v byte) {
	if err := f.mem.Fill(addr, n, v); err != nil {
		panic(err)
	}
}

func (f *engFixture) expectMoved(t *testing.T, dst phys.Addr, n int, v byte) {
	t.Helper()
	got, err := f.mem.ReadBytes(dst, n)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{v}, n)
	if !bytes.Equal(got, want) {
		t.Fatalf("destination bytes = %v..., want all %#x", got[:min(8, len(got))], v)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// --- configuration ---

func TestConfigValidation(t *testing.T) {
	base := testConfig(ModePaired)
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero membits", func(c *Config) { c.MemBits = 0 }},
		{"membits too large", func(c *Config) { c.MemBits = 48 }},
		{"memsize too big", func(c *Config) { c.MemBits = 10; c.MemSize = 1 << 20 }},
		{"bad page size", func(c *Config) { c.PageSize = 1000 }},
		{"zero bandwidth", func(c *Config) { c.Bandwidth = 0 }},
		{"keyed no contexts", func(c *Config) { c.Mode = ModeKeyed; c.Contexts = 0 }},
		{"extended no bits", func(c *Config) { c.Mode = ModeExtended; c.CtxBits = 0 }},
		{"repeated bad len", func(c *Config) { c.Mode = ModeRepeated; c.SeqLen = 2 }},
		{"unknown mode", func(c *Config) { c.Mode = Mode(99) }},
		{"remote not encodable", func(c *Config) { c.RemoteBase = 1 << 30 }},
		{"remote no shift", func(c *Config) { c.NodeShift = 0 }},
	}
	for _, c := range cases {
		cfg := base
		c.mut(&cfg)
		if _, err := New(cfg, sim.NewClock(), nil, phys.New(testMemSize)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := New(base, sim.NewClock(), nil, phys.New(testMemSize)); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestShadowEncoding(t *testing.T) {
	cfg := testConfig(ModeExtended)
	sa := cfg.Shadow(0x1234, 3)
	if sa != shadowBase+phys.Addr(3<<26)+0x1234 {
		t.Fatalf("Shadow(0x1234, 3) = %v", sa)
	}
	cfgP := testConfig(ModePaired)
	if cfgP.Shadow(0x1234, 3) != shadowBase+0x1234 {
		t.Fatal("non-extended mode must ignore ctx in encoding")
	}
	aa := cfg.AtomicShadow(0x40, AtomicCAS)
	if aa != atomicBase+phys.Addr(2<<26)+0x40 {
		t.Fatalf("AtomicShadow = %v", aa)
	}
	if cfg.CtxPage(2) != ctxPageBase+2*testPageSize {
		t.Fatalf("CtxPage(2) = %v", cfg.CtxPage(2))
	}
	if cfg.ShadowWindowSize() != (1<<26)<<2 {
		t.Fatalf("extended shadow window = %#x", cfg.ShadowWindowSize())
	}
	if cfgP.ShadowWindowSize() != 1<<26 {
		t.Fatalf("paired shadow window = %#x", cfgP.ShadowWindowSize())
	}
	if cfg.AtomicWindowSize() != 4<<26 {
		t.Fatalf("atomic window = %#x", cfg.AtomicWindowSize())
	}
}

func TestModeString(t *testing.T) {
	names := map[Mode]string{
		ModePaired: "paired", ModeKeyed: "keyed", ModeExtended: "extended",
		ModeRepeated: "repeated", ModeMappedOut: "mapped-out",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d → %q, want %q", m, m.String(), want)
		}
	}
	if !strings.Contains(Mode(42).String(), "42") {
		t.Error("unknown mode string")
	}
}

// --- paired mode (SHRIMP-2 / PAL / FLASH) ---

func TestPairedInitiation(t *testing.T) {
	f := newEngine(t, ModePaired, nil)
	f.fillSrc(0x1000, 256, 0xaa)
	// STORE size TO shadow(dst=0x8000); LOAD FROM shadow(src=0x1000).
	if _, err := f.e.Store(0, f.e.cfg.Shadow(0x8000, 0), phys.Size64, 256); err != nil {
		t.Fatal(err)
	}
	st, _, err := f.e.Load(0, f.e.cfg.Shadow(0x1000, 0), phys.Size64)
	if err != nil {
		t.Fatal(err)
	}
	if st == StatusFailure {
		t.Fatal("valid pair rejected")
	}
	if st != 256 {
		t.Fatalf("initial remaining = %d, want 256", st)
	}
	f.settle()
	f.expectMoved(t, 0x8000, 256, 0xaa)
	if s := f.e.Stats(); s.Started != 1 || s.Completed != 1 || s.BytesMoved != 256 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPairedLoadWithoutPendingFails(t *testing.T) {
	f := newEngine(t, ModePaired, nil)
	st, _, err := f.e.Load(0, f.e.cfg.Shadow(0x1000, 0), phys.Size64)
	if err != nil || st != StatusFailure {
		t.Fatalf("st=%#x err=%v, want StatusFailure", st, err)
	}
	if f.e.Stats().Rejected != 1 {
		t.Fatal("rejection not counted")
	}
}

func TestPairedRaceOverwrites(t *testing.T) {
	// The §2.5 hazard: process B's store between A's store and A's load
	// replaces A's destination. The engine cannot tell — this is why
	// SHRIMP-2 needs the kernel hook.
	f := newEngine(t, ModePaired, nil)
	f.fillSrc(0x1000, 64, 0x11)
	f.e.Store(0, f.e.cfg.Shadow(0x8000, 0), phys.Size64, 64)        // victim dst
	f.e.Store(0, f.e.cfg.Shadow(0x9000, 0), phys.Size64, 64)        // attacker dst overwrites
	st, _, _ := f.e.Load(0, f.e.cfg.Shadow(0x1000, 0), phys.Size64) // victim load
	if st == StatusFailure {
		t.Fatal("engine rejected; the paired race should silently misdirect")
	}
	f.settle()
	f.expectMoved(t, 0x9000, 64, 0x11) // data went to the attacker's address
	if v, _ := f.mem.Read(0x8000, phys.Size64); v != 0 {
		t.Fatal("victim destination unexpectedly written")
	}
}

func TestPairedAbortPendingHook(t *testing.T) {
	// SHRIMP-2 with the kernel modification: aborting at "context
	// switch" turns the silent misdirection into a clean failure.
	f := newEngine(t, ModePaired, nil)
	f.e.Store(0, f.e.cfg.Shadow(0x8000, 0), phys.Size64, 64)
	f.e.AbortPending() // the context-switch handler's invalidation
	st, _, _ := f.e.Load(0, f.e.cfg.Shadow(0x1000, 0), phys.Size64)
	if st != StatusFailure {
		t.Fatalf("aborted pair returned %#x, want failure", st)
	}
	if f.e.Stats().AbortedPending != 1 {
		t.Fatal("abort not counted")
	}
	f.e.AbortPending() // idempotent when nothing pending
	if f.e.Stats().AbortedPending != 1 {
		t.Fatal("no-op abort counted")
	}
}

func TestPairedPIDTracking(t *testing.T) {
	// FLASH: the engine knows which process runs; a pair spanning a
	// context switch is refused.
	f := newEngine(t, ModePaired, nil)
	f.e.SetPIDTracking(true)
	f.e.SetCurrentPID(1)
	f.e.Store(0, f.e.cfg.Shadow(0x8000, 0), phys.Size64, 64)
	f.e.SetCurrentPID(2) // context switch: hook informs engine
	st, _, _ := f.e.Load(0, f.e.cfg.Shadow(0x1000, 0), phys.Size64)
	if st != StatusFailure {
		t.Fatalf("cross-PID pair returned %#x, want failure", st)
	}
	// Same-PID pair succeeds.
	f.e.SetCurrentPID(1)
	f.e.Store(0, f.e.cfg.Shadow(0x8000, 0), phys.Size64, 64)
	st, _, _ = f.e.Load(0, f.e.cfg.Shadow(0x1000, 0), phys.Size64)
	if st == StatusFailure {
		t.Fatal("same-PID pair rejected")
	}
	if f.e.CurrentPID() != 1 {
		t.Fatal("CurrentPID wrong")
	}
}

// --- keyed mode (§3.1) ---

func TestKeyedInitiation(t *testing.T) {
	f := newEngine(t, ModeKeyed, nil)
	const ctx, key = 1, uint64(0xdeadbeef)
	f.e.SetKey(ctx, key)
	f.fillSrc(0x2000, 128, 0x5c)
	// Figure 3: STORE key#ctx TO shadow(dst); STORE key#ctx TO
	// shadow(src); STORE size TO ctx page; LOAD status FROM ctx page.
	f.e.Store(0, f.e.cfg.Shadow(0xa000, 0), phys.Size64, PackKey(key, ctx))
	f.e.Store(0, f.e.cfg.Shadow(0x2000, 0), phys.Size64, PackKey(key, ctx))
	f.e.Store(0, f.e.cfg.CtxPage(ctx)+0x40, phys.Size64, 128) // any offset aliases size
	st, _, err := f.e.Load(0, f.e.cfg.CtxPage(ctx), phys.Size64)
	if err != nil {
		t.Fatal(err)
	}
	if st == StatusFailure || st != 128 {
		t.Fatalf("status = %#x, want 128 remaining", st)
	}
	f.settle()
	f.expectMoved(t, 0xa000, 128, 0x5c)
}

func TestKeyedWrongKeyIgnored(t *testing.T) {
	f := newEngine(t, ModeKeyed, nil)
	f.e.SetKey(1, 0x1111)
	// Attacker guesses a wrong key for context 1.
	f.e.Store(0, f.e.cfg.Shadow(0xa000, 0), phys.Size64, PackKey(0x2222, 1))
	if f.e.Stats().KeyMismatches != 1 {
		t.Fatal("mismatch not counted")
	}
	// Context 1 must have no destination argument: a size store plus
	// status load cannot start anything.
	f.e.Store(0, f.e.cfg.CtxPage(1), phys.Size64, 64)
	st, _, _ := f.e.Load(0, f.e.cfg.CtxPage(1), phys.Size64)
	if st != StatusFailure {
		t.Fatalf("context with only forged arguments started a DMA: %#x", st)
	}
	if f.e.Stats().Started != 0 {
		t.Fatal("transfer started from forged key")
	}
}

func TestKeyedUnassignedContextRejects(t *testing.T) {
	f := newEngine(t, ModeKeyed, nil)
	// Key 0 means unassigned: even "key 0" cannot address it.
	f.e.Store(0, f.e.cfg.Shadow(0xa000, 0), phys.Size64, PackKey(0, 2))
	if f.e.Stats().KeyMismatches != 1 {
		t.Fatal("unassigned context accepted an argument")
	}
	// Out-of-range context id.
	f.e.Store(0, f.e.cfg.Shadow(0xa000, 0), phys.Size64, PackKey(7, 200))
	if f.e.Stats().KeyMismatches != 2 {
		t.Fatal("out-of-range context accepted an argument")
	}
}

func TestKeyedInterruptedSequenceSurvives(t *testing.T) {
	// The point of register contexts: another process's initiation
	// between a victim's argument stores cannot mix arguments, because
	// each process writes its own context.
	f := newEngine(t, ModeKeyed, nil)
	f.e.SetKey(1, 0xaaa)
	f.e.SetKey(2, 0xbbb)
	f.fillSrc(0x2000, 64, 0x11) // victim source
	f.fillSrc(0x3000, 64, 0x22) // intruder source

	f.e.Store(0, f.e.cfg.Shadow(0xa000, 0), phys.Size64, PackKey(0xaaa, 1)) // victim dst
	// "Context switch": the other process runs a complete DMA.
	f.e.Store(0, f.e.cfg.Shadow(0xb000, 0), phys.Size64, PackKey(0xbbb, 2))
	f.e.Store(0, f.e.cfg.Shadow(0x3000, 0), phys.Size64, PackKey(0xbbb, 2))
	f.e.Store(0, f.e.cfg.CtxPage(2), phys.Size64, 64)
	if st, _, _ := f.e.Load(0, f.e.cfg.CtxPage(2), phys.Size64); st == StatusFailure {
		t.Fatal("intruder's own DMA failed")
	}
	// Victim resumes and completes its sequence untouched.
	f.e.Store(0, f.e.cfg.Shadow(0x2000, 0), phys.Size64, PackKey(0xaaa, 1)) // victim src
	f.e.Store(0, f.e.cfg.CtxPage(1), phys.Size64, 64)
	if st, _, _ := f.e.Load(0, f.e.cfg.CtxPage(1), phys.Size64); st == StatusFailure {
		t.Fatal("victim's DMA failed after interleaving")
	}
	f.settle()
	f.expectMoved(t, 0xa000, 64, 0x11)
	f.expectMoved(t, 0xb000, 64, 0x22)
}

func TestKeyedShadowLoadIsProtocolError(t *testing.T) {
	f := newEngine(t, ModeKeyed, nil)
	st, _, err := f.e.Load(0, f.e.cfg.Shadow(0x1000, 0), phys.Size64)
	if err != nil || st != StatusFailure {
		t.Fatalf("shadow load in keyed mode: st=%#x err=%v", st, err)
	}
}

func TestKeyedArgumentRestart(t *testing.T) {
	// A third keyed address store after (dst, src) are both set begins a
	// fresh argument set (stale pairs must not linger forever).
	f := newEngine(t, ModeKeyed, nil)
	f.e.SetKey(1, 0x77)
	f.fillSrc(0x2000, 32, 0x33)
	f.e.Store(0, f.e.cfg.Shadow(0x5000, 0), phys.Size64, PackKey(0x77, 1)) // dst (stale)
	f.e.Store(0, f.e.cfg.Shadow(0x6000, 0), phys.Size64, PackKey(0x77, 1)) // src (stale)
	// Process decides to start over with a different pair:
	f.e.Store(0, f.e.cfg.Shadow(0xa000, 0), phys.Size64, PackKey(0x77, 1)) // new dst
	f.e.Store(0, f.e.cfg.Shadow(0x2000, 0), phys.Size64, PackKey(0x77, 1)) // new src
	f.e.Store(0, f.e.cfg.CtxPage(1), phys.Size64, 32)
	st, _, _ := f.e.Load(0, f.e.cfg.CtxPage(1), phys.Size64)
	if st == StatusFailure {
		t.Fatal("restarted argument set rejected")
	}
	f.settle()
	f.expectMoved(t, 0xa000, 32, 0x33)
}

func TestSetKeyRange(t *testing.T) {
	f := newEngine(t, ModeKeyed, nil)
	if err := f.e.SetKey(-1, 1); err == nil {
		t.Fatal("negative context accepted")
	}
	if err := f.e.SetKey(99, 1); err == nil {
		t.Fatal("out-of-range context accepted")
	}
	if f.e.NumContexts() != 4 {
		t.Fatalf("NumContexts = %d", f.e.NumContexts())
	}
}

// --- extended shadow addressing (§3.2) ---

func TestExtendedInitiation(t *testing.T) {
	f := newEngine(t, ModeExtended, nil)
	f.fillSrc(0x2000, 512, 0x7e)
	const ctx = 2
	// Figure 4: two instructions.
	f.e.Store(0, f.e.cfg.Shadow(0xc000, ctx), phys.Size64, 512)
	st, _, err := f.e.Load(0, f.e.cfg.Shadow(0x2000, ctx), phys.Size64)
	if err != nil || st == StatusFailure {
		t.Fatalf("st=%#x err=%v", st, err)
	}
	f.settle()
	f.expectMoved(t, 0xc000, 512, 0x7e)
}

func TestExtendedContextIsolation(t *testing.T) {
	// Two processes with different context bits interleave arbitrarily;
	// both DMAs start correctly — the §3.2 guarantee.
	f := newEngine(t, ModeExtended, nil)
	f.fillSrc(0x2000, 64, 0x44)
	f.fillSrc(0x3000, 64, 0x55)
	f.e.Store(0, f.e.cfg.Shadow(0xa000, 0), phys.Size64, 64) // P0 store
	f.e.Store(0, f.e.cfg.Shadow(0xb000, 1), phys.Size64, 64) // P1 store (interleaved!)
	st0, _, _ := f.e.Load(0, f.e.cfg.Shadow(0x2000, 0), phys.Size64)
	st1, _, _ := f.e.Load(0, f.e.cfg.Shadow(0x3000, 1), phys.Size64)
	if st0 == StatusFailure || st1 == StatusFailure {
		t.Fatalf("interleaved extended DMAs failed: %#x %#x", st0, st1)
	}
	f.settle()
	f.expectMoved(t, 0xa000, 64, 0x44)
	f.expectMoved(t, 0xb000, 64, 0x55)
}

func TestExtendedNoRegContextsPairing(t *testing.T) {
	// §3.2's cheap engine variant: one pending slot, context ids of the
	// store/load pair must match.
	f := newEngine(t, ModeExtended, func(c *Config) { c.NoRegContexts = true })
	f.fillSrc(0x2000, 64, 0x4d)
	// Matching pair: starts.
	f.e.Store(0, f.e.cfg.Shadow(0xa000, 1), phys.Size64, 64)
	st, _, err := f.e.Load(0, f.e.cfg.Shadow(0x2000, 1), phys.Size64)
	if err != nil || st == StatusFailure {
		t.Fatalf("matching pair rejected: st=%#x err=%v", st, err)
	}
	f.settle()
	f.expectMoved(t, 0xa000, 64, 0x4d)

	// Interleaved pair from another context: the victim's load must be
	// refused (clean failure instead of the paired-mode hijack).
	f.e.Store(0, f.e.cfg.Shadow(0xa000, 1), phys.Size64, 64) // ctx 1 store
	f.e.Store(0, f.e.cfg.Shadow(0xb000, 2), phys.Size64, 64) // ctx 2 overwrites
	st, _, _ = f.e.Load(0, f.e.cfg.Shadow(0x2000, 1), phys.Size64)
	if st != StatusFailure {
		t.Fatalf("cross-context pair started a DMA: %#x", st)
	}
	// Context 2's own load now also fails (slot was consumed by the
	// rejection) — it simply retries.
	st, _, _ = f.e.Load(0, f.e.cfg.Shadow(0x3000, 2), phys.Size64)
	if st != StatusFailure {
		t.Fatalf("stale slot started a DMA: %#x", st)
	}
	// Retry succeeds.
	f.e.Store(0, f.e.cfg.Shadow(0xb000, 2), phys.Size64, 64)
	st, _, _ = f.e.Load(0, f.e.cfg.Shadow(0x3000, 2), phys.Size64)
	if st == StatusFailure {
		t.Fatal("retried pair rejected")
	}
	if f.e.Stats().Started != 2 {
		t.Fatalf("started = %d, want 2", f.e.Stats().Started)
	}
}

func TestExtendedLoadWithoutStoreFails(t *testing.T) {
	f := newEngine(t, ModeExtended, nil)
	st, _, err := f.e.Load(0, f.e.cfg.Shadow(0x2000, 1), phys.Size64)
	if err != nil || st != StatusFailure {
		t.Fatalf("st=%#x err=%v", st, err)
	}
}

func TestExtendedPolling(t *testing.T) {
	f := newEngine(t, ModeExtended, nil)
	f.fillSrc(0x2000, 100_000, 0x99) // 100 kB: 1 ms at 100 MB/s
	f.e.Store(0, f.e.cfg.Shadow(0x40000, 1), phys.Size64, 100_000)
	st, _, _ := f.e.Load(0, f.e.cfg.Shadow(0x2000, 1), phys.Size64)
	if st != 100_000 {
		t.Fatalf("initial remaining = %d", st)
	}
	// Poll halfway through (startup 1µs + 1000µs transfer).
	mid, _, _ := f.e.Load(0, f.e.cfg.Shadow(0x2000, 1), phys.Size64)
	_ = mid // at time 0 still full
	half := sim.Microsecond + 500*sim.Microsecond
	st, _, _ = f.e.Load(half, f.e.cfg.Shadow(0x2000, 1), phys.Size64)
	if st == 0 || st == StatusFailure || st >= 100_000 {
		t.Fatalf("mid-transfer remaining = %d", st)
	}
	st, _, _ = f.e.Load(2*sim.Millisecond, f.e.cfg.Shadow(0x2000, 1), phys.Size64)
	if st != 0 {
		t.Fatalf("post-completion remaining = %d", st)
	}
}

// --- repeated passing (§3.3) ---

// repAccess drives the FSM with a raw shadow access.
func (f *engFixture) repStore(at sim.Time, pa phys.Addr, size uint64) {
	if _, err := f.e.Store(at, f.e.cfg.Shadow(pa, 0), phys.Size64, size); err != nil {
		panic(err)
	}
}

func (f *engFixture) repLoad(at sim.Time, pa phys.Addr) uint64 {
	v, _, err := f.e.Load(at, f.e.cfg.Shadow(pa, 0), phys.Size64)
	if err != nil {
		panic(err)
	}
	return v
}

func TestRepeated5HappyPath(t *testing.T) {
	f := newEngine(t, ModeRepeated, nil)
	f.fillSrc(0x2000, 64, 0x3c)
	// Figure 7: S d, L s, S d, L s, L d.
	f.repStore(0, 0xa000, 64)
	if st := f.repLoad(0, 0x2000); st == StatusFailure {
		t.Fatal("access 2 rejected")
	}
	f.repStore(0, 0xa000, 64)
	if st := f.repLoad(0, 0x2000); st == StatusFailure {
		t.Fatal("access 4 rejected")
	}
	st := f.repLoad(0, 0xa000)
	if st == StatusFailure {
		t.Fatal("access 5 rejected")
	}
	if f.e.Stats().Started != 1 {
		t.Fatalf("started = %d", f.e.Stats().Started)
	}
	f.settle()
	f.expectMoved(t, 0xa000, 64, 0x3c)
}

func TestRepeated5AddressMismatchRejected(t *testing.T) {
	f := newEngine(t, ModeRepeated, nil)
	f.repStore(0, 0xa000, 64)
	f.repLoad(0, 0x2000)
	f.repStore(0, 0xb000, 64) // wrong destination on access 3 → restart
	f.repLoad(0, 0x2000)      // now access 2 of the restarted sequence
	st := f.repLoad(0, 0xa000)
	// Access 5 of nothing: restarted sequence expects S here → failure.
	if st != StatusFailure {
		t.Fatalf("broken sequence returned %#x", st)
	}
	if f.e.Stats().Started != 0 {
		t.Fatal("broken sequence started a transfer")
	}
	if f.e.Stats().SeqResets == 0 {
		t.Fatal("reset not counted")
	}
}

func TestRepeated5SizeMismatchResets(t *testing.T) {
	f := newEngine(t, ModeRepeated, nil)
	f.repStore(0, 0xa000, 64)
	f.repLoad(0, 0x2000)
	f.repStore(0, 0xa000, 128) // same address, different size → restart
	f.repLoad(0, 0x2000)
	if st := f.repLoad(0, 0xa000); st != StatusFailure {
		t.Fatalf("size-mismatched sequence returned %#x", st)
	}
	if f.e.Stats().Started != 0 {
		t.Fatal("transfer started despite size mismatch")
	}
}

func TestRepeated3Figure5Attack(t *testing.T) {
	// Figure 5 verbatim, at the hardware level: the malicious process
	// starts a DMA C→B while the victim wanted A→B.
	f := newEngine(t, ModeRepeated, func(c *Config) { c.SeqLen = 3 })
	const A, B, C = phys.Addr(0x2000), phys.Addr(0xa000), phys.Addr(0x3000)
	const foo = phys.Addr(0x4000)
	f.fillSrc(A, 64, 0x11)
	f.fillSrc(C, 64, 0x66) // attacker's data

	f.repLoad(0, A)       // 1: victim LOAD status1 FROM shadow(A)
	f.repStore(0, foo, 1) // 2: attacker STORE foo
	f.repLoad(0, foo)     // 3: attacker LOAD shadow(foo) — no DMA (A≠foo)
	if f.e.Stats().Started != 0 {
		t.Fatal("DMA started prematurely")
	}
	f.repLoad(0, C)          // 4: attacker LOAD shadow(C): new sequence
	f.repStore(0, B, 64)     // 5: victim STORE size TO shadow(B)
	stAtk := f.repLoad(0, C) // 6: attacker LOAD shadow(C) → starts C→B!
	if stAtk == StatusFailure {
		t.Fatal("attack sequence did not start the DMA")
	}
	stVic := f.repLoad(0, A) // 7: victim's final load — too late
	if stVic == StatusFailure {
		t.Fatal("victim saw failure; figure 5 has the victim fooled")
	}
	f.settle()
	f.expectMoved(t, B, 64, 0x66) // B holds the ATTACKER's data
	if f.e.Stats().Started != 1 {
		t.Fatalf("started = %d", f.e.Stats().Started)
	}
}

func TestRepeated4Figure6Attack(t *testing.T) {
	// Figure 6 verbatim: attacker (read access to A) completes the
	// victim's 4-sequence, so the DMA starts for the attacker and the
	// victim is told it failed.
	f := newEngine(t, ModeRepeated, func(c *Config) { c.SeqLen = 4 })
	const A, B = phys.Addr(0x2000), phys.Addr(0xa000)
	f.fillSrc(A, 64, 0x11)

	f.repStore(0, B, 64)   // 1: victim STORE size TO shadow(B)
	f.repLoad(0, A)        // 2: victim LOAD rs FROM shadow(A)
	f.repStore(0, B, 64)   // 3: victim STORE size TO shadow(B)
	atk := f.repLoad(0, A) // 4: ATTACKER LOAD rs FROM shadow(A) → DMA started
	if atk == StatusFailure {
		t.Fatal("attacker's completing load did not start the DMA")
	}
	vic := f.repLoad(0, A) // 5: victim LOAD rs FROM shadow(A) → rejected
	if vic != StatusFailure {
		t.Fatalf("victim's load returned %#x, figure 6 says DMA rejected", vic)
	}
	if f.e.Stats().Started != 1 {
		t.Fatalf("started = %d", f.e.Stats().Started)
	}
}

func TestRepeated3HappyPath(t *testing.T) {
	f := newEngine(t, ModeRepeated, func(c *Config) { c.SeqLen = 3 })
	f.fillSrc(0x2000, 32, 0x21)
	f.repLoad(0, 0x2000)
	f.repStore(0, 0xa000, 32)
	if st := f.repLoad(0, 0x2000); st == StatusFailure {
		t.Fatal("valid 3-sequence rejected")
	}
	f.settle()
	f.expectMoved(t, 0xa000, 32, 0x21)
}

func TestRepeated4HappyPath(t *testing.T) {
	f := newEngine(t, ModeRepeated, func(c *Config) { c.SeqLen = 4 })
	f.fillSrc(0x2000, 32, 0x43)
	f.repStore(0, 0xa000, 32)
	f.repLoad(0, 0x2000)
	f.repStore(0, 0xa000, 32)
	if st := f.repLoad(0, 0x2000); st == StatusFailure {
		t.Fatal("valid 4-sequence rejected")
	}
	f.settle()
	f.expectMoved(t, 0xa000, 32, 0x43)
}

// --- mapped-out mode (SHRIMP-1, §2.4) ---

func TestMappedOutInitiation(t *testing.T) {
	f := newEngine(t, ModeMappedOut, nil)
	f.fillSrc(0x2000, 256, 0x2f)
	if err := f.e.MapOut(0x2000, 0xa000); err != nil {
		t.Fatal(err)
	}
	// One compare-and-exchange: address carries source, data carries size.
	st, _, err := f.e.RMW(0, f.e.cfg.Shadow(0x2040, 0), phys.Size64, 32)
	if err != nil || st == StatusFailure {
		t.Fatalf("st=%#x err=%v", st, err)
	}
	f.settle()
	// Same offset within the mapped-out page.
	got, _ := f.mem.ReadBytes(0xa040, 24)
	for _, b := range got {
		if b != 0x2f {
			t.Fatalf("mapped-out destination bytes = %v", got)
		}
	}
}

func TestMappedOutRestrictions(t *testing.T) {
	f := newEngine(t, ModeMappedOut, nil)
	f.e.MapOut(0x2000, 0xa000)
	// Unmapped page: rejected.
	st, _, _ := f.e.RMW(0, f.e.cfg.Shadow(0x6000, 0), phys.Size64, 32)
	if st != StatusFailure {
		t.Fatal("unmapped page initiated a DMA")
	}
	// Crossing the page boundary: rejected (the §2.4 restrictiveness).
	st, _, _ = f.e.RMW(0, f.e.cfg.Shadow(0x2000+testPageSize-8, 0), phys.Size64, 64)
	if st != StatusFailure {
		t.Fatal("page-crossing mapped-out DMA accepted")
	}
	// Unaligned MapOut rejected.
	if err := f.e.MapOut(0x2004, 0xa000); err == nil {
		t.Fatal("unaligned MapOut accepted")
	}
	// Plain loads/stores are not the protocol in this mode.
	if _, err := f.e.Store(0, f.e.cfg.Shadow(0x2000, 0), phys.Size64, 1); err == nil {
		t.Fatal("plain shadow store accepted in mapped-out mode")
	}
	if _, _, err := f.e.Load(0, f.e.cfg.Shadow(0x2000, 0), phys.Size64); err == nil {
		t.Fatal("plain shadow load accepted in mapped-out mode")
	}
}

// --- control page (kernel-level DMA, Figure 1) ---

func TestKernelLevelDMAViaControlPage(t *testing.T) {
	f := newEngine(t, ModePaired, nil)
	f.fillSrc(0x2000, 96, 0x88)
	f.e.Store(0, controlBase+RegSource, phys.Size64, 0x2000)
	f.e.Store(0, controlBase+RegDest, phys.Size64, 0xa000)
	f.e.Store(0, controlBase+RegSize, phys.Size64, 96) // starts the DMA
	st, _, err := f.e.Load(0, controlBase+RegStatus, phys.Size64)
	if err != nil || st == StatusFailure {
		t.Fatalf("status = %#x err=%v", st, err)
	}
	f.settle()
	f.expectMoved(t, 0xa000, 96, 0x88)
	// Register reads.
	if v, _, _ := f.e.Load(0, controlBase+RegSource, phys.Size64); v != 0x2000 {
		t.Fatalf("RegSource = %#x", v)
	}
	if v, _, _ := f.e.Load(0, controlBase+RegDest, phys.Size64); v != 0xa000 {
		t.Fatalf("RegDest = %#x", v)
	}
	if v, _, _ := f.e.Load(0, controlBase+RegStarted, phys.Size64); v != 1 {
		t.Fatalf("RegStarted = %d", v)
	}
}

func TestControlPageUnknownRegister(t *testing.T) {
	f := newEngine(t, ModePaired, nil)
	if _, err := f.e.Store(0, controlBase+0x100, phys.Size64, 1); err == nil {
		t.Fatal("unknown control write accepted")
	}
	if _, _, err := f.e.Load(0, controlBase+0x100, phys.Size64); err == nil {
		t.Fatal("unknown control read accepted")
	}
}

func TestControlStatusNoTransfer(t *testing.T) {
	f := newEngine(t, ModePaired, nil)
	if st, _, _ := f.e.Load(0, controlBase+RegStatus, phys.Size64); st != StatusFailure {
		t.Fatalf("status with no transfer = %#x", st)
	}
}

func TestControlPIDRegister(t *testing.T) {
	f := newEngine(t, ModePaired, nil)
	f.e.Store(0, controlBase+RegPID, phys.Size64, 42)
	if v, _, _ := f.e.Load(0, controlBase+RegPID, phys.Size64); v != 42 {
		t.Fatalf("RegPID = %d", v)
	}
	// RegAbort clears a pending pair.
	f.e.Store(0, f.e.cfg.Shadow(0x8000, 0), phys.Size64, 64)
	f.e.Store(0, controlBase+RegAbort, phys.Size64, 1)
	if st, _, _ := f.e.Load(0, f.e.cfg.Shadow(0x1000, 0), phys.Size64); st != StatusFailure {
		t.Fatal("RegAbort did not clear the pending pair")
	}
}

// --- atomic operations (§3.5) ---

func TestAtomicAdd(t *testing.T) {
	f := newEngine(t, ModeExtended, nil)
	f.mem.Write(0x5000, phys.Size64, 40)
	old, _, err := f.e.RMW(0, f.e.cfg.AtomicShadow(0x5000, AtomicAdd), phys.Size64, 2)
	if err != nil || old != 40 {
		t.Fatalf("old=%d err=%v", old, err)
	}
	if v, _ := f.mem.Read(0x5000, phys.Size64); v != 42 {
		t.Fatalf("cell = %d", v)
	}
	if f.e.Stats().AtomicOps != 1 {
		t.Fatal("atomic op not counted")
	}
}

func TestAtomicSwap(t *testing.T) {
	f := newEngine(t, ModeExtended, nil)
	f.mem.Write(0x5000, phys.Size64, 7)
	old, _, err := f.e.RMW(0, f.e.cfg.AtomicShadow(0x5000, AtomicSwap), phys.Size64, 9)
	if err != nil || old != 7 {
		t.Fatalf("old=%d err=%v", old, err)
	}
	if v, _ := f.mem.Read(0x5000, phys.Size64); v != 9 {
		t.Fatalf("cell = %d", v)
	}
}

func TestAtomicCAS(t *testing.T) {
	f := newEngine(t, ModeExtended, nil)
	f.mem.Write(0x5000, phys.Size32, 5)
	// Successful CAS: expected 5 → new 6.
	old, _, err := f.e.RMW(0, f.e.cfg.AtomicShadow(0x5000, AtomicCAS), phys.Size32, 5<<32|6)
	if err != nil || old != 5 {
		t.Fatalf("old=%d err=%v", old, err)
	}
	if v, _ := f.mem.Read(0x5000, phys.Size32); v != 6 {
		t.Fatalf("cell after CAS = %d", v)
	}
	// Failing CAS: expected 5 again, but cell is 6.
	old, _, err = f.e.RMW(0, f.e.cfg.AtomicShadow(0x5000, AtomicCAS), phys.Size32, 5<<32|7)
	if err != nil || old != 6 {
		t.Fatalf("failing CAS old=%d err=%v", old, err)
	}
	if v, _ := f.mem.Read(0x5000, phys.Size32); v != 6 {
		t.Fatalf("cell changed on failing CAS: %d", v)
	}
}

func TestAtomicWindowPlainAccess(t *testing.T) {
	f := newEngine(t, ModeExtended, nil)
	f.mem.Write(0x5000, phys.Size64, 123)
	// Plain load through the atomic window reads memory.
	v, _, err := f.e.Load(0, f.e.cfg.AtomicShadow(0x5000, AtomicAdd), phys.Size64)
	if err != nil || v != 123 {
		t.Fatalf("atomic-window load = %d err=%v", v, err)
	}
	// Plain store is rejected: only locked transactions mutate.
	if _, err := f.e.Store(0, f.e.cfg.AtomicShadow(0x5000, AtomicAdd), phys.Size64, 1); err == nil {
		t.Fatal("plain store in atomic window accepted")
	}
	// Unknown op code.
	if _, _, err := f.e.RMW(0, f.e.cfg.AtomicShadow(0x5000, 3), phys.Size64, 1); err == nil {
		t.Fatal("unknown atomic op accepted")
	}
	// Out-of-memory target.
	if _, _, err := f.e.RMW(0, f.e.cfg.AtomicShadow(phys.Addr(testMemSize), AtomicAdd), phys.Size64, 1); err == nil {
		t.Fatal("atomic op beyond memory accepted")
	}
}

func TestRMWOutsideWindows(t *testing.T) {
	f := newEngine(t, ModePaired, nil)
	if _, _, err := f.e.RMW(0, f.e.cfg.Shadow(0x1000, 0), phys.Size64, 1); err == nil {
		t.Fatal("shadow RMW accepted in paired mode")
	}
	if _, _, err := f.e.RMW(0, controlBase, phys.Size64, 1); err == nil {
		t.Fatal("control RMW accepted")
	}
}

// --- transfer engine ---

func TestTransferValidation(t *testing.T) {
	f := newEngine(t, ModePaired, func(c *Config) { c.MaxTransfer = 4096 })
	mk := func(src, dst phys.Addr, size uint64) bool {
		f.e.Store(0, f.e.cfg.Shadow(dst, 0), phys.Size64, size)
		st, _, _ := f.e.Load(0, f.e.cfg.Shadow(src, 0), phys.Size64)
		return st != StatusFailure
	}
	if mk(0x1000, 0x8000, 8192) {
		t.Fatal("transfer above MaxTransfer accepted")
	}
	if mk(phys.Addr(testMemSize-16), 0x8000, 64) {
		t.Fatal("source running past memory accepted")
	}
	if mk(0x1000, phys.Addr(testMemSize-16), 64) {
		t.Fatal("destination running past memory accepted")
	}
	if !mk(0x1000, 0x8000, 4096) {
		t.Fatal("legal transfer rejected")
	}
}

func TestTransferQueueing(t *testing.T) {
	// Two back-to-back transfers: the second queues behind the first.
	f := newEngine(t, ModePaired, nil)
	f.fillSrc(0x1000, 1000, 1)
	f.e.Store(0, f.e.cfg.Shadow(0x8000, 0), phys.Size64, 1000)
	f.e.Load(0, f.e.cfg.Shadow(0x1000, 0), phys.Size64)
	t1 := f.e.LastTransfer()
	f.e.Store(0, f.e.cfg.Shadow(0x9000, 0), phys.Size64, 1000)
	f.e.Load(0, f.e.cfg.Shadow(0x1000, 0), phys.Size64)
	t2 := f.e.LastTransfer()
	if t2.Start < t1.End {
		t.Fatalf("second transfer started at %v before first ended at %v", t2.Start, t1.End)
	}
}

func TestTransferRemaining(t *testing.T) {
	tr := &Transfer{Size: 1000, Start: 0, End: 1000 * sim.Nanosecond}
	if tr.Remaining(-sim.Nanosecond) != 1000 {
		t.Fatal("pre-start remaining wrong")
	}
	mid := tr.Remaining(500 * sim.Nanosecond)
	if mid == 0 || mid >= 1000 {
		t.Fatalf("mid remaining = %d", mid)
	}
	if tr.Remaining(1000*sim.Nanosecond) != 0 {
		t.Fatal("end remaining wrong")
	}
	if !tr.Done(1000 * sim.Nanosecond) {
		t.Fatal("Done at End wrong")
	}
	// Nearly complete but not done: remaining stays >= 1.
	if tr.Remaining(999*sim.Nanosecond+999) == 0 {
		t.Fatal("remaining reported 0 before End")
	}
	failed := &Transfer{Failed: true}
	if failed.Remaining(0) != StatusFailure {
		t.Fatal("failed transfer remaining wrong")
	}
	zero := &Transfer{Size: 0, Start: 5, End: 5}
	if zero.Remaining(5) != 0 {
		t.Fatal("zero-size transfer remaining wrong")
	}
}

func TestTransferChunkedVisibility(t *testing.T) {
	// A local transfer lands chunk by chunk: halfway through, the first
	// half of the destination is filled and the tail is still zero.
	f := newEngine(t, ModePaired, nil)
	const size = 16384 // 4 chunks; ~328µs at 100 MB/s
	f.fillSrc(0x10000, size, 0x5d)
	f.e.Store(0, f.e.cfg.Shadow(0x40000, 0), phys.Size64, size)
	st, _, _ := f.e.Load(0, f.e.cfg.Shadow(0x10000, 0), phys.Size64)
	if st == StatusFailure {
		t.Fatal("initiation refused")
	}
	tr := f.e.LastTransfer()
	mid := tr.Start + (tr.End-tr.Start)/2
	f.events.RunUntil(mid)
	head, _ := f.mem.Read(0x40000, phys.Size64)
	tail, _ := f.mem.Read(0x40000+size-8, phys.Size64)
	if head == 0 {
		t.Fatal("no data visible at mid-transfer")
	}
	if tail != 0 {
		t.Fatal("tail already landed at mid-transfer")
	}
	if rem := tr.Remaining(mid); rem == 0 || rem >= size {
		t.Fatalf("mid-transfer remaining = %d", rem)
	}
	f.settle()
	f.expectMoved(t, 0x40000, size, 0x5d)
	if !tr.Done(tr.End) {
		t.Fatal("transfer not done at End")
	}
}

func TestTransferPicksUpLateSourceStores(t *testing.T) {
	// The engine reads each chunk when it streams it: a store to a
	// not-yet-read part of the source lands in the destination — which
	// is why clients must not touch in-flight buffers.
	f := newEngine(t, ModePaired, nil)
	const size = 16384
	f.fillSrc(0x10000, size, 0x11)
	f.e.Store(0, f.e.cfg.Shadow(0x40000, 0), phys.Size64, size)
	f.e.Load(0, f.e.cfg.Shadow(0x10000, 0), phys.Size64)
	tr := f.e.LastTransfer()
	// After the first chunk streams, rewrite the LAST chunk's source.
	firstChunkDone := tr.Start + (tr.End-tr.Start)/4
	f.events.RunUntil(firstChunkDone)
	f.mem.Fill(0x10000+size-4096, 4096, 0x99)
	f.settle()
	head, _ := f.mem.Read(0x40000, phys.Size64)
	tail, _ := f.mem.Read(0x40000+size-8, phys.Size64)
	if byte(head) != 0x11 {
		t.Fatalf("head = %#x, want the original bytes", head)
	}
	if byte(tail) != 0x99 {
		t.Fatalf("tail = %#x, want the late store's bytes", tail)
	}
}

// --- remote transfers ---

type fakeRemote struct {
	node int
	addr phys.Addr
	data []byte
	at   sim.Time
	n    int
}

func (r *fakeRemote) Deliver(node int, addr phys.Addr, data []byte, at sim.Time) error {
	// Deliver must not retain data (the engine reuses the buffer), so
	// keep a copy for the assertions.
	r.node, r.addr, r.at = node, addr, at
	r.data = append(r.data[:0], data...)
	r.n++
	return nil
}

func TestRemoteTransfer(t *testing.T) {
	f := newEngine(t, ModePaired, nil)
	rh := &fakeRemote{}
	f.e.SetRemoteHandler(rh)
	f.fillSrc(0x1000, 128, 0xab)
	// Destination: node 3, remote offset 0x4000.
	dst := remoteBase + phys.Addr(3<<20) + 0x4000
	f.e.Store(0, f.e.cfg.Shadow(dst, 0), phys.Size64, 128)
	st, _, _ := f.e.Load(0, f.e.cfg.Shadow(0x1000, 0), phys.Size64)
	if st == StatusFailure {
		t.Fatal("remote transfer rejected")
	}
	f.settle()
	if rh.n != 1 || rh.node != 3 || rh.addr != 0x4000 || len(rh.data) != 128 || rh.data[0] != 0xab {
		t.Fatalf("delivery = %+v", rh)
	}
	if f.e.Stats().RemoteStarted != 1 {
		t.Fatal("remote start not counted")
	}
}

func TestRemoteWithoutHandlerRejected(t *testing.T) {
	f := newEngine(t, ModePaired, nil)
	dst := remoteBase + 0x4000
	f.e.Store(0, f.e.cfg.Shadow(dst, 0), phys.Size64, 64)
	st, _, _ := f.e.Load(0, f.e.cfg.Shadow(0x1000, 0), phys.Size64)
	if st != StatusFailure {
		t.Fatal("remote transfer accepted without fabric")
	}
}

// --- window classification ---

func TestAccessOutsideWindows(t *testing.T) {
	f := newEngine(t, ModePaired, nil)
	if _, _, err := f.e.Load(0, 0x123, phys.Size64); err == nil {
		t.Fatal("stray load accepted")
	}
	if _, err := f.e.Store(0, 0x123, phys.Size64, 1); err == nil {
		t.Fatal("stray store accepted")
	}
	if f.e.Name() == "" {
		t.Fatal("engine must have a name")
	}
}

func TestWindowBoundaries(t *testing.T) {
	// First and last byte of each window decode to it; one past does not.
	f := newEngine(t, ModeKeyed, nil)
	cfg := f.e.cfg
	cases := []struct {
		name string
		base phys.Addr
		size uint64
	}{
		{"shadow", cfg.ShadowBase, cfg.ShadowWindowSize()},
		{"ctx", cfg.CtxPageBase, cfg.CtxWindowSize()},
		{"control", cfg.ControlBase, cfg.PageSize},
		{"atomic", cfg.AtomicBase, cfg.AtomicWindowSize()},
	}
	for _, c := range cases {
		if got := cfg.WindowOf(c.base); got != c.name {
			t.Errorf("%s first byte classified %q", c.name, got)
		}
		if got := cfg.WindowOf(c.base + phys.Addr(c.size) - 1); got != c.name {
			t.Errorf("%s last byte classified %q", c.name, got)
		}
		if got := cfg.WindowOf(c.base + phys.Addr(c.size)); got == c.name {
			t.Errorf("%s end+1 still classified %q", c.name, got)
		}
	}
}

func TestCtxWindowRangeErrors(t *testing.T) {
	f := newEngine(t, ModeKeyed, nil)
	// The last valid ctx page works; decode guards reject impossible
	// offsets (defensive: the bus window normally prevents these).
	last := f.e.cfg.CtxPage(f.e.NumContexts() - 1)
	if _, err := f.e.Store(0, last, phys.Size64, 1); err != nil {
		t.Fatalf("last ctx page store: %v", err)
	}
	if _, _, err := f.e.Load(0, last, phys.Size64); err != nil {
		t.Fatalf("last ctx page load: %v", err)
	}
}

func TestContextTransferAccessor(t *testing.T) {
	f := newEngine(t, ModeExtended, nil)
	if f.e.ContextTransfer(0) != nil || f.e.ContextTransfer(-1) != nil || f.e.ContextTransfer(99) != nil {
		t.Fatal("empty/out-of-range contexts must report nil")
	}
	f.fillSrc(0x2000, 64, 1)
	f.e.Store(0, f.e.cfg.Shadow(0xa000, 2), phys.Size64, 64)
	f.e.Load(0, f.e.cfg.Shadow(0x2000, 2), phys.Size64)
	if tr := f.e.ContextTransfer(2); tr == nil || tr.Size != 64 {
		t.Fatalf("context 2 transfer = %+v", tr)
	}
	if f.e.ContextTransfer(1) != nil {
		t.Fatal("unused context reports a transfer")
	}
}

func TestShadowEncodeMasksHighBits(t *testing.T) {
	// Addresses above the encodable span are masked into it — the bus
	// window guarantees this in a real system; Shadow() must agree.
	cfg := testConfig(ModePaired)
	if cfg.Shadow(phys.Addr(1)<<40|0x1234, 0) != cfg.Shadow(0x1234, 0) {
		t.Fatal("Shadow did not mask high bits")
	}
	if cfg.AtomicShadow(phys.Addr(1)<<40|0x40, AtomicAdd) != cfg.AtomicShadow(0x40, AtomicAdd) {
		t.Fatal("AtomicShadow did not mask high bits")
	}
}

func TestCheckInvariants(t *testing.T) {
	f := newEngine(t, ModePaired, nil)
	f.fillSrc(0x1000, 4096, 1)
	for i := 0; i < 3; i++ {
		f.e.Store(0, f.e.cfg.Shadow(0x8000, 0), phys.Size64, 512)
		if st, _, _ := f.e.Load(0, f.e.cfg.Shadow(0x1000, 0), phys.Size64); st == StatusFailure {
			t.Fatal("initiation refused")
		}
	}
	end := f.settle()
	if err := f.e.CheckInvariants(end); err != nil {
		t.Fatal(err)
	}
	// Mid-flight check must also hold (nothing delivered yet counts).
	f2 := newEngine(t, ModePaired, nil)
	f2.fillSrc(0x1000, 64, 1)
	f2.e.Store(0, f2.e.cfg.Shadow(0x8000, 0), phys.Size64, 64)
	f2.e.Load(0, f2.e.cfg.Shadow(0x1000, 0), phys.Size64)
	if err := f2.e.CheckInvariants(0); err != nil {
		t.Fatal(err)
	}
}

func TestStatsReset(t *testing.T) {
	f := newEngine(t, ModePaired, nil)
	f.e.Store(0, f.e.cfg.Shadow(0x8000, 0), phys.Size64, 64)
	if f.e.Stats().ShadowStores != 1 {
		t.Fatal("shadow store not counted")
	}
	f.e.ResetStats()
	if f.e.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not zero")
	}
}
