package dma

import (
	"errors"
	"testing"

	"uldma/internal/iommu"
	"uldma/internal/phys"
	"uldma/internal/sim"
	"uldma/internal/vm"
)

// VA fixture layout: the VA window sits clear of every other engine
// window; device VAs are deliberately different from the frames they
// map to, so a passing test proves translation actually happened.
const (
	vaBase     = phys.Addr(0x10_0000_0000)
	vaMissTime = 2 * sim.Microsecond
	vaSrcVA    = uint64(0x40000)
	vaDstVA    = uint64(0x60000)
	vaSrcPA    = phys.Addr(0x20000)
	vaDstPA    = phys.Addr(0x30000)
)

// stubResolver is a minimal kernel stand-in: pages it has backing for
// resolve after pageIn; everything else is ErrFaultPending (the
// manual-park path).
type stubResolver struct {
	io      *iommu.IOMMU
	ps      uint64
	pageIn  sim.Time
	backing map[uint64]phys.Addr // device page VA (ctx 0..n share it) -> frame
	pins    int
	unpins  int
	pinErr  error
}

func (r *stubResolver) ResolveFault(ctx int, va uint64, _ bool) (sim.Time, error) {
	base := va &^ (r.ps - 1)
	if _, ok := r.io.Lookup(ctx, base); ok {
		return 0, nil
	}
	if frame, ok := r.backing[base]; ok {
		if err := r.io.Map(ctx, base, frame, vm.Read|vm.Write); err != nil {
			return 0, err
		}
		return r.pageIn, nil
	}
	return 0, ErrFaultPending
}

func (r *stubResolver) PinRange(ctx int, va, size uint64, write bool) (sim.Time, error) {
	if r.pinErr != nil {
		return 0, r.pinErr
	}
	var total sim.Time
	for base := va &^ (r.ps - 1); base < va+size; base += r.ps {
		lat, err := r.ResolveFault(ctx, base, write)
		if err != nil {
			return 0, err
		}
		total += lat
	}
	r.pins++
	return total, nil
}

func (r *stubResolver) UnpinRange(int, uint64, uint64) { r.unpins++ }

type vaFixture struct {
	*engFixture
	io  *iommu.IOMMU
	res *stubResolver
}

func newVAEngine(tb testing.TB, mode Mode, mut func(*Config)) *vaFixture {
	tb.Helper()
	cfg := testConfig(mode)
	cfg.VABase = vaBase
	cfg.IOTLBMissTime = vaMissTime
	cfg.BouncePages = 4
	cfg.BounceBase = phys.Addr(testMemSize - 4*testPageSize)
	if mut != nil {
		mut(&cfg)
	}
	mem := phys.New(testMemSize)
	events := sim.NewEventQueue()
	e, err := New(cfg, sim.NewClock(), events, mem)
	if err != nil {
		tb.Fatal(err)
	}
	io, err := iommu.New(iommu.Config{Contexts: e.NumContexts(), PageSize: cfg.PageSize})
	if err != nil {
		tb.Fatal(err)
	}
	if err := e.AttachIOMMU(io); err != nil {
		tb.Fatal(err)
	}
	res := &stubResolver{io: io, ps: cfg.PageSize, backing: map[uint64]phys.Addr{}}
	e.SetFaultResolver(res)
	return &vaFixture{engFixture: &engFixture{e: e, mem: mem, events: events}, io: io, res: res}
}

// mapVA installs the standard src/dst device pages (n pages each) for
// ctx with translation actually changing the address.
func (f *vaFixture) mapVA(tb testing.TB, ctx, pages int) {
	tb.Helper()
	ps := f.e.Config().PageSize
	for i := 0; i < pages; i++ {
		off := uint64(i) * ps
		if err := f.io.Map(ctx, vaSrcVA+off, vaSrcPA+phys.Addr(off), vm.Read); err != nil {
			tb.Fatal(err)
		}
		if err := f.io.Map(ctx, vaDstVA+off, vaDstPA+phys.Addr(off), vm.Read|vm.Write); err != nil {
			tb.Fatal(err)
		}
	}
}

// vaOff builds a VA-window address for (ctx, device VA).
func vaOff(ctx int, va uint64) phys.Addr {
	return vaBase + phys.Addr(uint64(ctx)<<26|va)
}

// initiatePaired drives the two-access paired protocol through the VA
// window and returns the load's status word.
func (f *vaFixture) initiatePaired(tb testing.TB, now sim.Time, ctx int, srcVA, dstVA, size uint64) uint64 {
	tb.Helper()
	if _, err := f.e.Store(now, vaOff(ctx, dstVA), phys.Size64, size); err != nil {
		tb.Fatal(err)
	}
	v, _, err := f.e.Load(now, vaOff(ctx, srcVA), phys.Size64)
	if err != nil {
		tb.Fatal(err)
	}
	return v
}

func TestVAConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"bounce without va window", func(c *Config) { c.BouncePages = 2; c.BounceBase = 0x10000 }},
		{"bounce base unaligned", func(c *Config) {
			c.VABase = vaBase
			c.BouncePages = 2
			c.BounceBase = 0x10008
		}},
		{"bounce region past memory", func(c *Config) {
			c.VABase = vaBase
			c.BouncePages = 2
			c.BounceBase = phys.Addr(testMemSize - testPageSize)
		}},
	}
	for _, tc := range cases {
		cfg := testConfig(ModePaired)
		tc.mut(&cfg)
		if _, err := New(cfg, sim.NewClock(), nil, phys.New(testMemSize)); err == nil {
			t.Errorf("%s: config accepted", tc.name)
		}
	}
	cfg := testConfig(ModePaired)
	cfg.VABase = vaBase
	if got := cfg.WindowOf(vaBase + 1); got != "va" {
		t.Errorf("WindowOf(va window) = %q", got)
	}
	if got := cfg.VAWindowSize(); got != 4<<26 {
		t.Errorf("VAWindowSize = %#x, want 4<<26", got)
	}
}

func TestVAAttachValidation(t *testing.T) {
	f := newEngine(t, ModePaired, nil)
	io, err := iommu.New(iommu.Config{Contexts: 1, PageSize: testPageSize / 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.e.AttachIOMMU(io); err == nil {
		t.Error("AttachIOMMU accepted a mismatched page size")
	}
	io, err = iommu.New(iommu.Config{Contexts: 1, PageSize: testPageSize})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.e.AttachIOMMU(io); err == nil {
		t.Error("AttachIOMMU accepted too few contexts")
	}
}

func TestVAPairedInitiation(t *testing.T) {
	f := newVAEngine(t, ModePaired, nil)
	f.mapVA(t, 0, 1)
	f.fillSrc(vaSrcPA, 256, 0xAB)
	if v := f.initiatePaired(t, 0, 0, vaSrcVA, vaDstVA, 256); v == StatusFailure {
		t.Fatal("VA-window paired initiation rejected")
	}
	f.settle()
	f.expectMoved(t, vaDstPA, 256, 0xAB)
	last := f.e.LastTransfer()
	if !last.Virt || last.VCtx != 0 {
		t.Fatalf("transfer Virt=%v VCtx=%d, want true/0", last.Virt, last.VCtx)
	}
	if got := f.e.vactr.vaStarted.Value(); got != 1 {
		t.Fatalf("vaStarted = %d, want 1", got)
	}
	if !last.Done(last.End) {
		t.Fatal("transfer not done after settle")
	}
}

// TestVAPairedWindowStraddle: half the pair through the VA window and
// half through the physical shadow window names arguments in different
// address spaces; the engine must refuse rather than mix.
func TestVAPairedWindowStraddle(t *testing.T) {
	f := newVAEngine(t, ModePaired, nil)
	f.mapVA(t, 0, 1)
	if _, err := f.e.Store(0, vaOff(0, vaDstVA), phys.Size64, 64); err != nil {
		t.Fatal(err)
	}
	v, _, err := f.e.Load(0, shadowBase+phys.Addr(vaSrcPA), phys.Size64)
	if err != nil {
		t.Fatal(err)
	}
	if v != StatusFailure {
		t.Fatal("physical load consumed a virtual half-initiation")
	}
	// And the reverse: physical store, virtual load.
	if _, err := f.e.Store(0, shadowBase+phys.Addr(vaDstPA), phys.Size64, 64); err != nil {
		t.Fatal(err)
	}
	v, _, err = f.e.Load(0, vaOff(0, vaSrcVA), phys.Size64)
	if err != nil {
		t.Fatal(err)
	}
	if v != StatusFailure {
		t.Fatal("virtual load consumed a physical half-initiation")
	}
}

func TestVAExtendedInitiation(t *testing.T) {
	f := newVAEngine(t, ModeExtended, nil)
	const ctx = 2
	f.mapVA(t, ctx, 1)
	f.fillSrc(vaSrcPA, 512, 0x5C)
	if _, err := f.e.Store(0, vaOff(ctx, vaDstVA), phys.Size64, 512); err != nil {
		t.Fatal(err)
	}
	v, _, err := f.e.Load(0, vaOff(ctx, vaSrcVA), phys.Size64)
	if err != nil {
		t.Fatal(err)
	}
	if v == StatusFailure {
		t.Fatal("VA-window extended initiation rejected")
	}
	f.settle()
	f.expectMoved(t, vaDstPA, 512, 0x5C)
	last := f.e.LastTransfer()
	if !last.Virt || last.VCtx != ctx {
		t.Fatalf("transfer Virt=%v VCtx=%d, want true/%d", last.Virt, last.VCtx, ctx)
	}
	// The register context must be polled back to done.
	if got := f.e.ContextTransfer(ctx); got != last {
		t.Fatal("context current transfer is not the virtual transfer")
	}
}

func TestVARepeatedInitiation(t *testing.T) {
	f := newVAEngine(t, ModeRepeated, nil)
	f.mapVA(t, 0, 1)
	f.fillSrc(vaSrcPA, 128, 0x77)
	// Figure 7's 5-access pattern (S d, L s, S d, L s, L d), driven
	// entirely through the VA window with device addresses.
	vst := func(va, size uint64) {
		if _, err := f.e.Store(0, vaOff(0, va), phys.Size64, size); err != nil {
			t.Fatal(err)
		}
	}
	vld := func(va uint64) uint64 {
		v, _, err := f.e.Load(0, vaOff(0, va), phys.Size64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	vst(vaDstVA, 128)
	if vld(vaSrcVA) == StatusFailure {
		t.Fatal("access 2 rejected")
	}
	vst(vaDstVA, 128)
	if vld(vaSrcVA) == StatusFailure {
		t.Fatal("access 4 rejected")
	}
	if vld(vaDstVA) == StatusFailure {
		t.Fatal("VA-window repeated initiation rejected")
	}
	f.settle()
	f.expectMoved(t, vaDstPA, 128, 0x77)
	if last := f.e.LastTransfer(); !last.Virt {
		t.Fatal("repeated-mode transfer not virtual")
	}
}

func TestVAIOTLBMissPenalty(t *testing.T) {
	f := newVAEngine(t, ModePaired, nil)
	f.mapVA(t, 0, 2)
	size := uint64(2 * testPageSize)
	f.fillSrc(vaSrcPA, int(size), 0x11)

	// Cold IOTLB: every page of both extents misses; the real end is
	// pushed past the nominal bandwidth line.
	f.initiatePaired(t, 0, 0, vaSrcVA, vaDstVA, size)
	cold := f.e.LastTransfer()
	start1 := cold.Start
	nominal := cold.End
	f.settle()
	if cold.End <= nominal {
		t.Fatalf("cold run End %v not pushed past nominal %v by IOTLB misses", cold.End, nominal)
	}
	coldSpan := cold.End - start1
	f.expectMoved(t, vaDstPA, int(size), 0x11)

	// Warm IOTLB: all four pages cached, zero penalty — the span is
	// exactly the bandwidth line.
	now := f.events.Drain(0)
	f.initiatePaired(t, now, 0, vaSrcVA, vaDstVA, size)
	warm := f.e.LastTransfer()
	want := warm.End - warm.Start
	f.settle()
	if got := warm.End - warm.Start; got != want {
		t.Fatalf("warm run span %v, want nominal %v", got, want)
	}
	if warmSpan := warm.End - warm.Start; warmSpan >= coldSpan {
		t.Fatalf("warm span %v not shorter than cold span %v", warmSpan, coldSpan)
	}
	if f.io.Misses() == 0 || f.io.Hits() == 0 {
		t.Fatalf("IOTLB hits=%d misses=%d, want both nonzero", f.io.Hits(), f.io.Misses())
	}
}

func TestVAStallParkAndResume(t *testing.T) {
	f := newVAEngine(t, ModePaired, nil)
	// Source mapped; destination page absent with NO backing: the
	// resolver answers ErrFaultPending and the transfer parks.
	if err := f.io.Map(0, vaSrcVA, vaSrcPA, vm.Read); err != nil {
		t.Fatal(err)
	}
	f.fillSrc(vaSrcPA, 256, 0xEE)
	if v := f.initiatePaired(t, 0, 0, vaSrcVA, vaDstVA, 256); v == StatusFailure {
		t.Fatal("initiation rejected")
	}
	now := f.settle()
	if got := f.e.ParkedTransfers(); got != 1 {
		t.Fatalf("ParkedTransfers = %d, want 1", got)
	}
	last := f.e.LastTransfer()
	if last.Done(now) {
		t.Fatal("parked transfer reports done")
	}
	if got := f.e.vactr.vaStalls.Value(); got != 1 {
		t.Fatalf("vaStalls = %d, want 1", got)
	}

	// Kernel maps the page and resumes.
	if err := f.io.Map(0, vaDstVA, vaDstPA, vm.Read|vm.Write); err != nil {
		t.Fatal(err)
	}
	resumeAt := now + 100*sim.Microsecond
	if n := f.e.ResumeFaulted(0, resumeAt); n != 1 {
		t.Fatalf("ResumeFaulted = %d, want 1", n)
	}
	f.settle()
	f.expectMoved(t, vaDstPA, 256, 0xEE)
	if f.e.ParkedTransfers() != 0 {
		t.Fatal("transfer still parked after resume")
	}
	if last.End < resumeAt {
		t.Fatalf("End %v precedes the resume at %v", last.End, resumeAt)
	}
	if !last.Done(last.End) {
		t.Fatal("resumed transfer not done")
	}
}

func TestVAStallInlineResolve(t *testing.T) {
	f := newVAEngine(t, ModePaired, nil)
	const pageIn = 50 * sim.Microsecond
	f.res.pageIn = pageIn
	// Source mapped; destination page-in-able: the walker stalls for the
	// page-in latency and retries inline — no parking.
	if err := f.io.Map(0, vaSrcVA, vaSrcPA, vm.Read); err != nil {
		t.Fatal(err)
	}
	f.res.backing[vaDstVA] = vaDstPA
	f.fillSrc(vaSrcPA, 256, 0x3D)
	f.initiatePaired(t, 0, 0, vaSrcVA, vaDstVA, 256)
	last := f.e.LastTransfer()
	nominal := last.End
	f.settle()
	f.expectMoved(t, vaDstPA, 256, 0x3D)
	if f.e.ParkedTransfers() != 0 {
		t.Fatal("inline resolution parked the transfer")
	}
	if last.End < nominal+pageIn {
		t.Fatalf("End %v does not cover the %v page-in (nominal %v)", last.End, pageIn, nominal)
	}
}

func TestVABounceRecovery(t *testing.T) {
	f := newVAEngine(t, ModePaired, nil)
	f.e.SetRecoveryPolicy(RecoverBounce)
	f.res.pageIn = 200 * sim.Microsecond
	size := uint64(2 * testPageSize)
	// Both source pages and the first destination page resident; the
	// second destination page faults mid-transfer but has backing, so it
	// bounces: the stream keeps moving into the bounce frame and the
	// fix-up copy lands after the page-in.
	for i := 0; i < 2; i++ {
		off := uint64(i) * testPageSize
		if err := f.io.Map(0, vaSrcVA+off, vaSrcPA+phys.Addr(off), vm.Read); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.io.Map(0, vaDstVA, vaDstPA, vm.Read|vm.Write); err != nil {
		t.Fatal(err)
	}
	f.res.backing[vaDstVA+testPageSize] = vaDstPA + testPageSize
	f.fillSrc(vaSrcPA, int(size), 0x9A)
	f.initiatePaired(t, 0, 0, vaSrcVA, vaDstVA, size)
	last := f.e.LastTransfer()
	f.settle()
	f.expectMoved(t, vaDstPA, int(size), 0x9A)
	if got := f.e.vactr.vaBounced.Value(); got == 0 {
		t.Fatal("no pages bounced")
	}
	if got := len(f.e.bounceFree); got != f.e.Config().BouncePages {
		t.Fatalf("bounce frames free = %d, want %d back", got, f.e.Config().BouncePages)
	}
	if f.e.ParkedTransfers() != 0 {
		t.Fatal("bounce policy parked the transfer")
	}
	if last.End < f.res.pageIn {
		t.Fatalf("End %v does not cover the fix-up after the %v page-in", last.End, f.res.pageIn)
	}
}

// TestVABounceSourceFaultStalls: bounce redirects destinations only — a
// source fault has no data to redirect and falls back to the stall path.
func TestVABounceSourceFaultStalls(t *testing.T) {
	f := newVAEngine(t, ModePaired, nil)
	f.e.SetRecoveryPolicy(RecoverBounce)
	if err := f.io.Map(0, vaDstVA, vaDstPA, vm.Read|vm.Write); err != nil {
		t.Fatal(err)
	}
	f.initiatePaired(t, 0, 0, vaSrcVA, vaDstVA, 256)
	f.settle()
	if got := f.e.ParkedTransfers(); got != 1 {
		t.Fatalf("ParkedTransfers = %d, want 1 (source fault must stall)", got)
	}
	if err := f.io.Map(0, vaSrcVA, vaSrcPA, vm.Read); err != nil {
		t.Fatal(err)
	}
	f.fillSrc(vaSrcPA, 256, 0x42)
	f.e.ResumeFaulted(-1, f.events.Drain(0)+sim.Microsecond)
	f.settle()
	f.expectMoved(t, vaDstPA, 256, 0x42)
}

func TestVAPinPolicy(t *testing.T) {
	f := newVAEngine(t, ModePaired, nil)
	f.e.SetRecoveryPolicy(RecoverPin)
	f.res.pageIn = 75 * sim.Microsecond
	// Nothing resident, everything backable: the pin pre-faults both
	// extents before the engine even starts, so the walk never faults.
	f.res.backing[vaSrcVA] = vaSrcPA
	f.res.backing[vaDstVA] = vaDstPA
	f.fillSrc(vaSrcPA, 256, 0xC4)
	if v := f.initiatePaired(t, 0, 0, vaSrcVA, vaDstVA, 256); v == StatusFailure {
		t.Fatal("pin-policy initiation rejected")
	}
	last := f.e.LastTransfer()
	f.settle()
	f.expectMoved(t, vaDstPA, 256, 0xC4)
	if got := f.e.vactr.vaPins.Value(); got != 1 {
		t.Fatalf("vaPins = %d, want 1", got)
	}
	if got := f.e.vactr.vaFaults.Value(); got != 0 {
		t.Fatalf("vaFaults = %d, want 0 under pin", got)
	}
	if f.res.unpins != 2 {
		t.Fatalf("unpins = %d, want 2 (both extents) at completion", f.res.unpins)
	}
	// The pin latency precedes startup: Start covers the two page-ins.
	if last.Start < 2*f.res.pageIn {
		t.Fatalf("Start %v does not cover the pin page-ins", last.Start)
	}

	// A pin the kernel refuses rejects the transfer up front.
	f.res.pinErr = errors.New("pin refused")
	if v := f.initiatePaired(t, f.events.Drain(0), 0, vaSrcVA, vaDstVA, 256); v != StatusFailure {
		t.Fatal("initiation accepted with the pin refused")
	}
}

func TestVAValidateRejects(t *testing.T) {
	f := newVAEngine(t, ModePaired, func(c *Config) { c.MaxTransfer = 1 << 16 })
	f.mapVA(t, 0, 1)
	cases := []struct {
		name string
		ctx  int
		src  uint64
		dst  uint64
		size uint64
	}{
		{"size over MaxTransfer", 0, vaSrcVA, vaDstVA, 1<<16 + 1},
		{"src beyond MemBits", 0, 1<<26 - 64, vaDstVA, 256},
		{"dst beyond MemBits", 0, vaSrcVA, 1<<26 - 64, 256},
	}
	for _, tc := range cases {
		if v := f.initiatePaired(t, 0, tc.ctx, tc.src, tc.dst, tc.size); v != StatusFailure {
			t.Errorf("%s: accepted", tc.name)
		}
		if last := f.e.LastTransfer(); !last.Failed {
			t.Errorf("%s: last transfer not failed", tc.name)
		}
	}
	// Pin policy with no resolver attached rejects.
	f.e.SetFaultResolver(nil)
	f.e.SetRecoveryPolicy(RecoverPin)
	if v := f.initiatePaired(t, 0, 0, vaSrcVA, vaDstVA, 256); v != StatusFailure {
		t.Error("pin policy accepted without a resolver")
	}
}

func TestVARecoveryPolicyParse(t *testing.T) {
	for _, p := range []RecoveryPolicy{RecoverStall, RecoverBounce, RecoverPin} {
		got, err := ParseRecoveryPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParseRecoveryPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseRecoveryPolicy("eager"); err == nil {
		t.Error("ParseRecoveryPolicy accepted an unknown name")
	}
}

// TestVAParkedSnapshotRestore is the mid-fault fidelity pin at the
// engine level: snapshot a world with a transfer parked on a fault,
// resume and finish it, rewind, and re-run — the replay must finish at
// the identical time with identical bytes.
func TestVAParkedSnapshotRestore(t *testing.T) {
	f := newVAEngine(t, ModePaired, nil)
	if err := f.io.Map(0, vaSrcVA, vaSrcPA, vm.Read); err != nil {
		t.Fatal(err)
	}
	f.fillSrc(vaSrcPA, 256, 0xD7)
	f.initiatePaired(t, 0, 0, vaSrcVA, vaDstVA, 256)
	now := f.settle()
	if f.e.ParkedTransfers() != 1 {
		t.Fatal("transfer did not park")
	}

	// The machine layer snapshots the IOMMU alongside the engine; at the
	// bare-engine level the test does the same — without the IOMMU
	// rewind, run 2 would replay against run 1's warmed IOTLB and finish
	// early.
	snap, err := f.e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ioSnap := f.io.Snapshot()

	// Run 1: map the page, resume, finish.
	if err := f.io.Map(0, vaDstVA, vaDstPA, vm.Read|vm.Write); err != nil {
		t.Fatal(err)
	}
	resumeAt := now + 10*sim.Microsecond
	f.e.ResumeFaulted(-1, resumeAt)
	f.settle()
	end1 := f.e.LastTransfer().End
	bytes1, err := f.mem.ReadBytes(vaDstPA, 256)
	if err != nil {
		t.Fatal(err)
	}

	// Rewind. The engine restore rebuilds the parked walker around a
	// fresh Transfer copy; scrub the destination to prove the replay
	// rewrites it.
	if err := f.e.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if err := f.io.Restore(ioSnap); err != nil {
		t.Fatal(err)
	}
	if f.e.ParkedTransfers() != 1 {
		t.Fatal("restore did not rebuild the parked transfer")
	}
	if err := f.mem.Fill(vaDstPA, 256, 0); err != nil {
		t.Fatal(err)
	}

	// Run 2: identical stimulus — re-map the destination exactly as run
	// 1 did — identical outcome.
	if err := f.io.Map(0, vaDstVA, vaDstPA, vm.Read|vm.Write); err != nil {
		t.Fatal(err)
	}
	f.e.ResumeFaulted(-1, resumeAt)
	f.settle()
	end2 := f.e.LastTransfer().End
	if end2 != end1 {
		t.Fatalf("replayed End %v != original %v", end2, end1)
	}
	bytes2, err := f.mem.ReadBytes(vaDstPA, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bytes1 {
		if bytes1[i] != bytes2[i] {
			t.Fatalf("replayed byte %d = %#x, want %#x", i, bytes2[i], bytes1[i])
		}
	}
	// And the restored walker's state hash matched the parked original.
	if f.e.ParkedTransfers() != 0 {
		t.Fatal("replay left the transfer parked")
	}
}

// --- ring descriptors over device VAs ---

func newVARingEngine(tb testing.TB, mode Mode) *vaFixture {
	tb.Helper()
	f := newVAEngine(tb, mode, func(c *Config) { c.RingBase = ringBase })
	return f
}

func TestVARingDescriptors(t *testing.T) {
	f := newVARingEngine(t, ModePaired)
	if err := f.e.SetupRing(0, ringDescs, 8); err != nil {
		t.Fatal(err)
	}
	// SetRingVA flips the ring to device addressing; the IOMMU mapping
	// IS the registration, so no RingAllow extents are needed.
	if err := f.e.SetRingVA(0, true); err != nil {
		t.Fatal(err)
	}
	f.mapVA(t, 0, 1)
	f.fillSrc(vaSrcPA, 1024, 0x66)
	post(t, f.engFixture, 0, phys.Addr(vaSrcVA), phys.Addr(vaDstVA), 1024)
	doorbell(t, f.engFixture, 0, 1)
	f.settle()
	status, stamp := completion(t, f.engFixture, 0)
	if status != 0 {
		t.Fatalf("completion status %#x, want 0", status)
	}
	f.expectMoved(t, vaDstPA, 1024, 0x66)
	// The stamp is the transfer's REAL end (cold-IOTLB misses included),
	// not the nominal acceptance-time End.
	last := f.e.LastTransfer()
	if sim.Time(stamp) != last.End {
		t.Fatalf("completion stamp %v != real end %v", sim.Time(stamp), last.End)
	}
	if f.io.Misses() == 0 {
		t.Fatal("cold ring walk took no IOTLB misses")
	}
}

func TestVARingValidation(t *testing.T) {
	// SetRingVA without an IOMMU attached must refuse.
	bare := newRingEngine(t, ModePaired)
	if err := bare.e.SetupRing(0, ringDescs, 8); err != nil {
		t.Fatal(err)
	}
	if err := bare.e.SetRingVA(0, true); err == nil {
		t.Error("SetRingVA accepted with no IOMMU attached")
	}
	// And with one: out-of-range context, missing ring.
	f := newVARingEngine(t, ModePaired)
	if err := f.e.SetRingVA(0, true); err == nil {
		t.Error("SetRingVA accepted before SetupRing")
	}
	if err := f.e.SetupRing(0, ringDescs, 8); err != nil {
		t.Fatal(err)
	}
	if err := f.e.SetRingVA(99, true); err == nil {
		t.Error("SetRingVA accepted an out-of-range context")
	}
	// An unmapped destination under stall policy parks the descriptor's
	// transfer; the completion waits for the real end.
	if err := f.e.SetRingVA(0, true); err != nil {
		t.Fatal(err)
	}
	if err := f.io.Map(0, vaSrcVA, vaSrcPA, vm.Read); err != nil {
		t.Fatal(err)
	}
	f.fillSrc(vaSrcPA, 512, 0x21)
	post(t, f.engFixture, 0, phys.Addr(vaSrcVA), phys.Addr(vaDstVA), 512)
	doorbell(t, f.engFixture, 0, 1)
	now := f.settle()
	if f.e.ParkedTransfers() != 1 {
		t.Fatal("ring transfer did not park on the unmapped destination")
	}
	if status, _ := completion(t, f.engFixture, 0); status != RingPending {
		t.Fatal("completion delivered while parked")
	}
	if err := f.io.Map(0, vaDstVA, vaDstPA, vm.Read|vm.Write); err != nil {
		t.Fatal(err)
	}
	f.e.ResumeFaulted(-1, now+sim.Microsecond)
	f.settle()
	if status, _ := completion(t, f.engFixture, 0); status != 0 {
		t.Fatalf("completion status %#x after resume, want 0", status)
	}
	f.expectMoved(t, vaDstPA, 512, 0x21)
}

// vaRingBatch posts depth VA descriptors and rings the doorbell once.
func vaRingBatch(f *vaFixture, now sim.Time, depth uint64) sim.Time {
	for slot := uint64(0); slot < depth; slot++ {
		base := ringDescs + phys.Addr(slot%8*DescBytes)
		_ = f.mem.Write(base+DescSrc, phys.Size64, vaSrcVA)
		_ = f.mem.Write(base+DescDst, phys.Size64, vaDstVA)
		_ = f.mem.Write(base+DescSize, phys.Size64, 2048)
	}
	if _, err := f.e.Store(now, ringBase, phys.Size64, depth); err != nil {
		panic(err)
	}
	return f.events.Drain(0)
}

// TestVATranslateZeroAllocs is the satellite pin: with logging off, a
// warm IOTLB and no faults, the descriptor->translate->stream->complete
// path allocates nothing — walkers, buffers, completion records and
// events are all pooled.
func TestVATranslateZeroAllocs(t *testing.T) {
	f := newVARingEngine(t, ModePaired)
	f.e.SetLogging(false)
	if err := f.e.SetupRing(0, ringDescs, 8); err != nil {
		t.Fatal(err)
	}
	if err := f.e.SetRingVA(0, true); err != nil {
		t.Fatal(err)
	}
	f.mapVA(t, 0, 1)
	now := sim.Time(0)
	for i := 0; i < 4; i++ { // warm the pools and the IOTLB
		now = vaRingBatch(f, now, 8)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		now = vaRingBatch(f, now, 8)
	})
	if allocs > 0 {
		t.Fatalf("no-fault VA translate path allocates %.1f/op, want 0", allocs)
	}
	if got := f.e.vactr.vaFaults.Value(); got != 0 {
		t.Fatalf("warm path took %d faults", got)
	}
}

// BenchmarkVARingDoorbell measures the engine-side cost of one batched
// VA kick: 8 device-VA descriptors per doorbell, IOTLB warm.
func BenchmarkVARingDoorbell(b *testing.B) {
	f := newVARingEngine(b, ModePaired)
	f.e.SetLogging(false)
	if err := f.e.SetupRing(0, ringDescs, 8); err != nil {
		b.Fatal(err)
	}
	if err := f.e.SetRingVA(0, true); err != nil {
		b.Fatal(err)
	}
	f.mapVA(b, 0, 1)
	now := sim.Time(0)
	for i := 0; i < 4; i++ {
		now = vaRingBatch(f, now, 8)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = vaRingBatch(f, now, 8)
	}
}

// BenchmarkVATranslateHit measures one warm paired initiation + walk
// through the VA window.
func BenchmarkVATranslateHit(b *testing.B) {
	f := newVAEngine(b, ModePaired, nil)
	f.e.SetLogging(false)
	f.mapVA(b, 0, 1)
	now := sim.Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.e.Store(now, vaOff(0, vaDstVA), phys.Size64, 2048); err != nil {
			b.Fatal(err)
		}
		if _, _, err := f.e.Load(now, vaOff(0, vaSrcVA), phys.Size64); err != nil {
			b.Fatal(err)
		}
		now = f.events.Drain(0)
	}
}
