package iommu

// Snapshot/restore: the IOMMU is pure data (no events), so its
// complete state is the per-context tables, the IOTLB (entries + LRU
// clock + hit/miss stats) and the management counters. machine.Snapshot
// carries one of these when an IOMMU is configured, under the same
// rewind-with-the-world rule as every other substrate.

import (
	"fmt"

	"uldma/internal/vm"
)

// Snapshot captures the IOMMU's complete state.
type Snapshot struct {
	tables []*vm.ASSnapshot
	tlb    *vm.TLBSnapshot
	ctr    counters
}

// Snapshot captures every table, the IOTLB and the counters.
func (io *IOMMU) Snapshot() *Snapshot {
	s := &Snapshot{ctr: io.ctr}
	s.tables = make([]*vm.ASSnapshot, len(io.tables))
	for i, as := range io.tables {
		s.tables[i] = as.Snapshot()
	}
	s.tlb = io.tlb.Snapshot()
	return s
}

// Restore rewinds the IOMMU to the snapshot. The snapshot must come
// from an IOMMU with the same context count (table identity is by
// ASID, which vm validates).
func (io *IOMMU) Restore(s *Snapshot) error {
	if len(s.tables) != len(io.tables) {
		return fmt.Errorf("iommu: restore: snapshot has %d contexts, IOMMU has %d",
			len(s.tables), len(io.tables))
	}
	for i, as := range io.tables {
		if err := as.Restore(s.tables[i]); err != nil {
			return fmt.Errorf("iommu: restore context %d: %w", i, err)
		}
	}
	if err := io.tlb.Restore(s.tlb); err != nil {
		return fmt.Errorf("iommu: restore IOTLB: %w", err)
	}
	io.ctr = s.ctr
	return nil
}
