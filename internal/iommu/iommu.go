// Package iommu models the I/O MMU the paper's successors (Psistakis/
// Katevenis: IOMMU support for virtual-address remote DMA) put between
// the DMA engine and physical memory. The shadow-address trick exists
// because the engine consumes physical addresses; with an IOMMU the
// engine consumes *device virtual addresses* instead, translated at
// walk time through per-context device page tables — so user code can
// hand untranslated buffers to the NIC, and so a page fault can strike
// in the middle of a transfer.
//
// The model reuses internal/vm's machinery wholesale: each DMA context
// owns a vm.AddressSpace (its ASID is the context number) as its
// device page table, and one shared vm.TLB is the IOTLB — ASID-tagged
// entries, LRU replacement, a one-entry L0 hint, and generation-tagged
// invalidation (an Unmap bumps the table generation, which makes every
// cached entry of that context stale without touching the slots). The
// hit path is 0 allocs/op (pinned by TestIOTLBHitZeroAllocs).
//
// Determinism contract: the IOMMU is pure data — no events, no
// goroutines. Its complete state (tables, IOTLB including LRU stamps,
// counters) snapshots and restores with the machine and folds into
// machine.Fingerprint via StateHash, so faulted transfers replay
// byte-identically from (seed, plan).
package iommu

import (
	"fmt"

	"uldma/internal/obs"
	"uldma/internal/phys"
	"uldma/internal/vm"
)

// DefaultTLBEntries is the IOTLB size used when Config.TLBEntries is
// zero — the same 32 slots as the 21064's data TLB the presets model.
const DefaultTLBEntries = 32

// Config sizes the IOMMU. Contexts and PageSize must match the DMA
// engine it fronts.
type Config struct {
	Contexts   int    // device translation contexts (one table each)
	PageSize   uint64 // device page size, power of two
	TLBEntries int    // IOTLB slots (0 = DefaultTLBEntries)
}

// IOMMU is the translation unit. One per machine, shared by every DMA
// context; all methods run on the world's single goroutine.
type IOMMU struct {
	cfg    Config
	tables []*vm.AddressSpace // per-context device page tables; asid == ctx
	tlb    *vm.TLB            // IOTLB: ASID-tagged, LRU, L0 hint
	ctr    counters
}

// counters are the IOMMU's obs cells. IOTLB hits/misses live in the
// vm.TLB and are registered through closures; these cells cover the
// management plane.
type counters struct {
	flushes obs.Counter // invalidation events (unmap generation bumps + explicit flushes)
	maps    obs.Counter // Map calls
	unmaps  obs.Counter // Unmap calls
	faults  obs.Counter // translations that faulted (unmapped or protection)
}

// New builds an IOMMU. PageSize must be a power of two and Contexts at
// least 1.
func New(cfg Config) (*IOMMU, error) {
	if cfg.Contexts < 1 {
		return nil, fmt.Errorf("iommu: %d contexts", cfg.Contexts)
	}
	if cfg.PageSize == 0 || cfg.PageSize&(cfg.PageSize-1) != 0 {
		return nil, fmt.Errorf("iommu: page size %d is not a power of two", cfg.PageSize)
	}
	if cfg.TLBEntries == 0 {
		cfg.TLBEntries = DefaultTLBEntries
	}
	io := &IOMMU{cfg: cfg, tlb: vm.NewTLB(cfg.TLBEntries)}
	io.tables = make([]*vm.AddressSpace, cfg.Contexts)
	for ctx := range io.tables {
		io.tables[ctx] = vm.NewAddressSpace(ctx, cfg.PageSize)
	}
	return io, nil
}

// Config returns the construction parameters (TLBEntries resolved).
func (io *IOMMU) Config() Config { return io.cfg }

// Contexts returns the number of device contexts.
func (io *IOMMU) Contexts() int { return len(io.tables) }

// PageSize returns the device page size.
func (io *IOMMU) PageSize() uint64 { return io.cfg.PageSize }

func (io *IOMMU) table(ctx int) (*vm.AddressSpace, error) {
	if ctx < 0 || ctx >= len(io.tables) {
		return nil, fmt.Errorf("iommu: context %d out of range [0,%d)", ctx, len(io.tables))
	}
	return io.tables[ctx], nil
}

// Map installs a device-VA -> frame translation in ctx's table. Both
// addresses must be page-aligned (vm.AddressSpace enforces it).
func (io *IOMMU) Map(ctx int, va uint64, frame phys.Addr, prot vm.Prot) error {
	as, err := io.table(ctx)
	if err != nil {
		return err
	}
	if err := as.Map(vm.VAddr(va), frame, prot); err != nil {
		return err
	}
	io.ctr.maps.Inc()
	return nil
}

// Unmap removes a translation. The table's generation bump makes every
// IOTLB entry cached for ctx stale — the "invalidation on unmap" the
// IOTLB contract requires — which the flush counter records as one
// invalidation event.
func (io *IOMMU) Unmap(ctx int, va uint64) error {
	as, err := io.table(ctx)
	if err != nil {
		return err
	}
	as.Unmap(vm.VAddr(va))
	io.ctr.unmaps.Inc()
	io.ctr.flushes.Inc()
	return nil
}

// Flush invalidates the whole IOTLB (every context).
func (io *IOMMU) Flush() {
	io.tlb.Flush()
	io.ctr.flushes.Inc()
}

// Translate resolves a device virtual address for ctx. hit reports an
// IOTLB hit; the engine charges its miss penalty when false. A fault
// (*vm.Fault: unmapped or protection) is the caller's signal to run a
// recovery policy. The hit path allocates nothing.
func (io *IOMMU) Translate(ctx int, va uint64, access vm.Access) (phys.Addr, bool, error) {
	as, err := io.table(ctx)
	if err != nil {
		return 0, false, err
	}
	pa, hit, err := io.tlb.Translate(as, vm.VAddr(va), access)
	if err != nil {
		io.ctr.faults.Inc()
	}
	return pa, hit, err
}

// Lookup probes ctx's page table without touching the IOTLB or any
// counter — the kernel pager's residency check.
func (io *IOMMU) Lookup(ctx int, va uint64) (vm.PTE, bool) {
	as, err := io.table(ctx)
	if err != nil {
		return vm.PTE{}, false
	}
	return as.Lookup(vm.VAddr(va))
}

// MappedPages returns the number of resident translations for ctx.
func (io *IOMMU) MappedPages(ctx int) int {
	as, err := io.table(ctx)
	if err != nil {
		return 0
	}
	return as.MappedPages()
}

// Hits returns the IOTLB hit count.
func (io *IOMMU) Hits() uint64 { return io.tlb.Stats().Hits }

// Misses returns the IOTLB miss count.
func (io *IOMMU) Misses() uint64 { return io.tlb.Stats().Misses }

// Flushes returns the invalidation-event count.
func (io *IOMMU) Flushes() uint64 { return io.ctr.flushes.Value() }

// Faults returns the translation-fault count.
func (io *IOMMU) Faults() uint64 { return io.ctr.faults.Value() }

// RegisterMetrics registers the IOMMU's cells. The machine calls this
// only when an IOMMU is configured, so worlds without one keep their
// registry dump byte-identical.
func (io *IOMMU) RegisterMetrics(r *obs.Registry) {
	r.Register("iommu.iotlb_hits", func() uint64 { return io.tlb.Stats().Hits })
	r.Register("iommu.iotlb_misses", func() uint64 { return io.tlb.Stats().Misses })
	r.RegisterCounter("iommu.iotlb_flushes", &io.ctr.flushes)
	r.RegisterCounter("iommu.maps", &io.ctr.maps)
	r.RegisterCounter("iommu.unmaps", &io.ctr.unmaps)
	r.RegisterCounter("iommu.faults", &io.ctr.faults)
}

// TranslateIO implements dma.Translator: a device access is a store
// (write) or load, mapped onto vm's access kinds.
func (io *IOMMU) TranslateIO(ctx int, va uint64, write bool) (phys.Addr, bool, error) {
	access := vm.AccessLoad
	if write {
		access = vm.AccessStore
	}
	return io.Translate(ctx, va, access)
}

// IOPageSize implements dma.Translator.
func (io *IOMMU) IOPageSize() uint64 { return io.cfg.PageSize }

// IOContexts implements dma.Translator.
func (io *IOMMU) IOContexts() int { return len(io.tables) }

// IOStateHash implements dma.Translator.
func (io *IOMMU) IOStateHash() uint64 { return io.StateHash() }

// StateHash folds the IOMMU's complete architectural state — every
// context's table, the IOTLB's valid entries and LRU clock, and the
// counters — into one word. The DMA engine mixes it into its own
// StateHash (gated on an IOMMU being attached), which is how IOMMU
// state rides machine.Fingerprint without changing FingerprintLen.
func (io *IOMMU) StateHash() uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	mix := func(v uint64) {
		h ^= v
		h *= 0x100000001b3
		h ^= h >> 29
	}
	for _, as := range io.tables {
		mix(as.StateHash())
	}
	mix(io.tlb.StateHash())
	mix(io.tlb.Tick())
	s := io.tlb.Stats()
	mix(s.Hits)
	mix(s.Misses)
	mix(io.ctr.flushes.Value())
	mix(io.ctr.maps.Value())
	mix(io.ctr.unmaps.Value())
	mix(io.ctr.faults.Value())
	return h
}
