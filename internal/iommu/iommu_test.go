package iommu

import (
	"errors"
	"testing"

	"uldma/internal/obs"
	"uldma/internal/phys"
	"uldma/internal/vm"
)

func newTestIOMMU(t *testing.T) *IOMMU {
	t.Helper()
	io, err := New(Config{Contexts: 4, PageSize: 8192, TLBEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	return io
}

func TestTranslateHitMissFault(t *testing.T) {
	io := newTestIOMMU(t)
	if err := io.Map(1, 0x10000, 0x4000, vm.Read|vm.Write); err != nil {
		t.Fatal(err)
	}

	// First translation walks the table (miss), second hits the IOTLB.
	pa, hit, err := io.Translate(1, 0x10008, vm.AccessLoad)
	if err != nil || hit {
		t.Fatalf("first translate: pa=%v hit=%v err=%v, want miss", pa, hit, err)
	}
	if pa != 0x4008 {
		t.Fatalf("pa = %v, want 0x4008", pa)
	}
	if pa, hit, err = io.Translate(1, 0x10010, vm.AccessStore); err != nil || !hit {
		t.Fatalf("second translate: hit=%v err=%v, want hit", hit, err)
	}
	if pa != 0x4010 {
		t.Fatalf("pa = %v, want 0x4010", pa)
	}
	if io.Hits() != 1 || io.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", io.Hits(), io.Misses())
	}

	// Same VA in a different context is unmapped: ASID tagging.
	if _, _, err := io.Translate(2, 0x10000, vm.AccessLoad); err == nil {
		t.Fatal("translate in unmapped context succeeded")
	}
	var f *vm.Fault
	_, _, err = io.Translate(1, 0x99999000, vm.AccessLoad)
	if !errors.As(err, &f) || f.Kind != vm.FaultUnmapped {
		t.Fatalf("unmapped VA: err=%v, want *vm.Fault{FaultUnmapped}", err)
	}
	if io.Faults() != 2 {
		t.Fatalf("faults = %d, want 2", io.Faults())
	}
}

func TestUnmapInvalidates(t *testing.T) {
	io := newTestIOMMU(t)
	if err := io.Map(0, 0x2000, 0x6000, vm.Read); err != nil {
		t.Fatal(err)
	}
	if _, _, err := io.Translate(0, 0x2000, vm.AccessLoad); err != nil {
		t.Fatal(err)
	}
	if _, hit, _ := io.Translate(0, 0x2000, vm.AccessLoad); !hit {
		t.Fatal("expected an IOTLB hit before the unmap")
	}
	if err := io.Unmap(0, 0x2000); err != nil {
		t.Fatal(err)
	}
	if io.Flushes() != 1 {
		t.Fatalf("flushes = %d, want 1", io.Flushes())
	}
	// The generation bump must make the cached entry stale.
	if _, _, err := io.Translate(0, 0x2000, vm.AccessLoad); err == nil {
		t.Fatal("translate after unmap succeeded (stale IOTLB entry)")
	}
}

func TestProtectionFault(t *testing.T) {
	io := newTestIOMMU(t)
	if err := io.Map(0, 0x0, 0x2000, vm.Read); err != nil {
		t.Fatal(err)
	}
	var f *vm.Fault
	_, _, err := io.Translate(0, 0x8, vm.AccessStore)
	if !errors.As(err, &f) || f.Kind != vm.FaultProtection {
		t.Fatalf("store through read-only mapping: err=%v, want protection fault", err)
	}
}

func TestSnapshotRestore(t *testing.T) {
	io := newTestIOMMU(t)
	if err := io.Map(0, 0x2000, 0x6000, vm.Read|vm.Write); err != nil {
		t.Fatal(err)
	}
	if err := io.Map(3, 0x4000, 0x8000, vm.Read); err != nil {
		t.Fatal(err)
	}
	if _, _, err := io.Translate(0, 0x2000, vm.AccessLoad); err != nil {
		t.Fatal(err)
	}
	snap := io.Snapshot()
	h0 := io.StateHash()

	// Diverge: new mapping, an unmap, more IOTLB traffic.
	if err := io.Map(1, 0x6000, 0xa000, vm.Read); err != nil {
		t.Fatal(err)
	}
	if err := io.Unmap(3, 0x4000); err != nil {
		t.Fatal(err)
	}
	if _, _, err := io.Translate(1, 0x6000, vm.AccessLoad); err != nil {
		t.Fatal(err)
	}
	if io.StateHash() == h0 {
		t.Fatal("StateHash did not change with the state")
	}

	if err := io.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := io.StateHash(); got != h0 {
		t.Fatalf("restored StateHash = %#x, want %#x", got, h0)
	}
	if _, ok := io.Lookup(1, 0x6000); ok {
		t.Fatal("post-snapshot mapping survived the restore")
	}
	if _, ok := io.Lookup(3, 0x4000); !ok {
		t.Fatal("pre-snapshot mapping did not come back")
	}

	other, err := New(Config{Contexts: 2, PageSize: 8192})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(snap); err == nil {
		t.Fatal("restore into a different-shape IOMMU succeeded")
	}
}

func TestRegisterMetrics(t *testing.T) {
	io := newTestIOMMU(t)
	r := obs.NewRegistry()
	io.RegisterMetrics(r)
	if err := io.Map(0, 0x2000, 0x6000, vm.Read); err != nil {
		t.Fatal(err)
	}
	if _, _, err := io.Translate(0, 0x2000, vm.AccessLoad); err != nil {
		t.Fatal(err)
	}
	if v, ok := r.Get("iommu.iotlb_misses"); !ok || v != 1 {
		t.Fatalf("iommu.iotlb_misses = %d, %v; want 1", v, ok)
	}
	if v, ok := r.Get("iommu.maps"); !ok || v != 1 {
		t.Fatalf("iommu.maps = %d, %v; want 1", v, ok)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Contexts: 0, PageSize: 8192}); err == nil {
		t.Fatal("0 contexts accepted")
	}
	if _, err := New(Config{Contexts: 1, PageSize: 3000}); err == nil {
		t.Fatal("non-power-of-two page size accepted")
	}
	if err := mustNew(t).Map(9, 0, 0, vm.Read); err == nil {
		t.Fatal("out-of-range context accepted")
	}
}

func mustNew(t *testing.T) *IOMMU {
	t.Helper()
	io, err := New(Config{Contexts: 2, PageSize: 8192})
	if err != nil {
		t.Fatal(err)
	}
	return io
}

var sinkPA phys.Addr

// TestIOTLBHitZeroAllocs pins the ISSUE's hot-path contract: a
// translation served from the IOTLB allocates nothing.
func TestIOTLBHitZeroAllocs(t *testing.T) {
	io := newTestIOMMU(t)
	if err := io.Map(0, 0x2000, 0x6000, vm.Read|vm.Write); err != nil {
		t.Fatal(err)
	}
	if _, _, err := io.Translate(0, 0x2000, vm.AccessLoad); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		pa, hit, err := io.Translate(0, 0x2008, vm.AccessLoad)
		if err != nil || !hit {
			t.Fatalf("hit=%v err=%v", hit, err)
		}
		sinkPA = pa
	})
	if allocs != 0 {
		t.Fatalf("IOTLB hit path allocates %v per op, want 0", allocs)
	}
}

func BenchmarkIOTLBHit(b *testing.B) {
	io, err := New(Config{Contexts: 4, PageSize: 8192})
	if err != nil {
		b.Fatal(err)
	}
	if err := io.Map(0, 0x2000, 0x6000, vm.Read|vm.Write); err != nil {
		b.Fatal(err)
	}
	io.Translate(0, 0x2000, vm.AccessLoad)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pa, _, _ := io.Translate(0, 0x2008, vm.AccessLoad)
		sinkPA = pa
	}
}
