package obs

// Tests for the live streaming views: allocation-free snapshots and
// watch handles, and the trace reader's wraparound contract — a
// streaming reader attached to a ring that keeps wrapping must see a
// consistent subsequence of whole events in emission order, with exact
// skip accounting, and survive a rewind under its feet. The
// steerparity make target runs these under -race.

import (
	"testing"

	"uldma/internal/sim"
)

func streamRegistry() (*Registry, *Counter, *Gauge) {
	r := NewRegistry()
	var c Counter
	var g Gauge
	r.RegisterCounter("bus.loads", &c)
	r.RegisterGauge("dma.highwater", &g)
	var extra [30]Counter
	for i := range extra {
		r.RegisterCounter("pad.c"+string(rune('a'+i)), &extra[i])
	}
	return r, &c, &g
}

func TestSnapshotAtZeroAllocs(t *testing.T) {
	r, c, g := streamRegistry()
	var ts TimedSnapshot
	r.SnapshotAt(0, &ts) // warm: first call may size Values
	allocs := testing.AllocsPerRun(200, func() {
		c.Inc()
		g.Add(3)
		r.SnapshotAt(42*sim.Microsecond, &ts)
	})
	if allocs != 0 {
		t.Fatalf("SnapshotAt allocated %.1f times per call, want 0", allocs)
	}
	if ts.At != 42*sim.Microsecond {
		t.Fatalf("snapshot stamped %v, want 42µs", ts.At)
	}
	if v, ok := ts.Get("bus.loads"); !ok || v == 0 {
		t.Fatalf("snapshot bus.loads = %d,%v", v, ok)
	}
	if len(ts.Values) != r.Len() {
		t.Fatalf("snapshot has %d values, registry has %d", len(ts.Values), r.Len())
	}
}

func TestSnapshotAtMatchesSnapshot(t *testing.T) {
	r, c, g := streamRegistry()
	c.Add(7)
	g.Set(11)
	var ts TimedSnapshot
	r.SnapshotAt(5, &ts)
	want := r.Snapshot()
	if len(ts.Values) != len(want) {
		t.Fatalf("SnapshotAt has %d values, Snapshot has %d", len(ts.Values), len(want))
	}
	for i := range want {
		if ts.Values[i] != want[i] {
			t.Fatalf("value %d: SnapshotAt %+v, Snapshot %+v", i, ts.Values[i], want[i])
		}
	}
}

func TestWatchZeroAllocs(t *testing.T) {
	r, c, _ := streamRegistry()
	w, ok := r.Watch("bus.loads")
	if !ok {
		t.Fatal("Watch(bus.loads) not found")
	}
	if _, ok := r.Watch("no.such"); ok {
		t.Fatal("Watch resolved a metric that was never registered")
	}
	allocs := testing.AllocsPerRun(200, func() {
		c.Inc()
		if w.Value() == 0 {
			t.Error("watch read zero after Inc")
		}
	})
	if allocs != 0 {
		t.Fatalf("Watch.Value allocated %.1f times per call, want 0", allocs)
	}
	if w.Name() != "bus.loads" {
		t.Fatalf("watch name %q", w.Name())
	}
}

// steerEvent builds the wraparound test's event i: A0 carries the
// sequence, A1 a derived checksum. A torn read (half old event, half
// new) would break the A0/A1 relation.
func steerEvent(i uint64) Event {
	return Event{
		At: sim.Time(i) * sim.Microsecond, Cat: CatSteer, Name: "probe",
		A0: i, A1: i*2654435761 + 1, A2: ^i,
	}
}

// TestTraceReaderWraparound drives a small ring far past its capacity
// with a streaming reader polling mid-stream: every delivered event
// must be whole (checksum intact), in strictly increasing emission
// order, contiguous within a poll (a consistent prefix of the unseen
// retained events), and delivered+skipped must account for every
// emission exactly once.
func TestTraceReaderWraparound(t *testing.T) {
	const cap, total = 64, 1000
	tr := NewTrace(cap, Ring)
	rd := tr.NewReaderFrom(0)

	var delivered []Event
	var skipped uint64
	buf := make([]Event, 0, cap)
	poll := func() {
		buf = buf[:0]
		var s uint64
		buf, s = rd.Poll(buf)
		skipped += s
		// Contiguity within one poll: each batch is a gap-free run.
		for i := 1; i < len(buf); i++ {
			if buf[i].A0 != buf[i-1].A0+1 {
				t.Fatalf("poll batch tore a gap: %d then %d", buf[i-1].A0, buf[i].A0)
			}
		}
		delivered = append(delivered, buf...)
	}

	// Phase 1: the reader keeps up (polls more often than the ring
	// wraps). Phase 2: a 500-event burst lands with no poll at all, so
	// the ring laps the cursor and the final drain must skip exactly
	// the overwritten span.
	for i := uint64(0); i < total; i++ {
		tr.Emit(steerEvent(i))
		if i < total/2 && i%37 == 0 {
			poll()
		}
	}
	poll() // final drain

	if got := uint64(len(delivered)) + skipped; got != total {
		t.Fatalf("delivered %d + skipped %d = %d, want %d", len(delivered), skipped, got, total)
	}
	if skipped == 0 {
		t.Fatal("a 64-slot ring under 1000 events must have overwritten something")
	}
	if skipped != rd.Skipped() {
		t.Fatalf("poll-sum skipped %d, reader says %d", skipped, rd.Skipped())
	}
	last := int64(-1)
	for _, e := range delivered {
		if int64(e.A0) <= last {
			t.Fatalf("emission order violated: %d after %d", e.A0, last)
		}
		last = int64(e.A0)
		if want := steerEvent(e.A0); e != want {
			t.Fatalf("torn event at seq %d: got %+v want %+v", e.A0, e, want)
		}
	}
	// The final drain ends at the stream's end: nothing retained is
	// unseen.
	if buf, s := rd.Poll(nil); len(buf) != 0 || s != 0 {
		t.Fatalf("drained reader returned %d events, %d skipped", len(buf), s)
	}
}

// TestTraceReaderDropNewest pins the other overflow policy: the
// retained window is the FIRST cap events, so a reader that keeps up
// sees exactly those and never a skip.
func TestTraceReaderDropNewest(t *testing.T) {
	const cap = 8
	tr := NewTrace(cap, DropNewest)
	rd := tr.NewReaderFrom(0)
	var got []Event
	for i := uint64(0); i < 20; i++ {
		tr.Emit(steerEvent(i))
		var s uint64
		got, s = rd.Poll(got)
		if s != 0 {
			t.Fatalf("DropNewest reader skipped %d at emission %d", s, i)
		}
	}
	if len(got) != cap {
		t.Fatalf("reader saw %d events, want the first %d", len(got), cap)
	}
	for i, e := range got {
		if e.A0 != uint64(i) {
			t.Fatalf("event %d has seq %d", i, e.A0)
		}
	}
}

// TestTraceReaderRewind pins the rewind-with-the-world interaction: a
// reader that consumed past a snapshot point clamps to the rewound
// stream and picks up the re-run's events without double counting.
func TestTraceReaderRewind(t *testing.T) {
	tr := NewTrace(16, Ring)
	rd := tr.NewReaderFrom(0)
	for i := uint64(0); i < 5; i++ {
		tr.Emit(steerEvent(i))
	}
	state := tr.State()
	for i := uint64(5); i < 10; i++ {
		tr.Emit(steerEvent(i))
	}
	if buf, _ := rd.Poll(nil); len(buf) != 10 {
		t.Fatalf("pre-rewind poll saw %d events, want 10", len(buf))
	}
	if err := tr.RestoreState(state); err != nil {
		t.Fatal(err)
	}
	// The reader is ahead of the rewound stream; the next poll clamps.
	if buf, s := rd.Poll(nil); len(buf) != 0 || s != 0 {
		t.Fatalf("post-rewind poll delivered %d events, %d skipped", len(buf), s)
	}
	tr.Emit(steerEvent(99))
	buf, _ := rd.Poll(nil)
	if len(buf) != 1 || buf[0].A0 != 99 {
		t.Fatalf("replayed emission not delivered: %+v", buf)
	}
}

func TestReaderFromNowSkipsHistory(t *testing.T) {
	tr := NewTrace(16, Ring)
	for i := uint64(0); i < 4; i++ {
		tr.Emit(steerEvent(i))
	}
	rd := tr.NewReader()
	if buf, s := rd.Poll(nil); len(buf) != 0 || s != 0 {
		t.Fatalf("NewReader delivered history: %d events, %d skipped", len(buf), s)
	}
	tr.Emit(steerEvent(4))
	if buf, _ := rd.Poll(nil); len(buf) != 1 || buf[0].A0 != 4 {
		t.Fatalf("NewReader missed the next emission: %+v", buf)
	}
}
