package obs

import "sort"

// MergeEvents merges per-shard trace spines into one timeline under a
// total order that depends only on event CONTENT, never on which shard
// recorded an event or in what order the streams are passed. That is
// the property the sharded cluster engine needs: re-partitioning the
// same world across a different shard count redistributes identical
// events across different spines, and the merged timeline — and any
// Perfetto export rendered from it — must come out byte-identical.
//
// Each input stream must already be in emission order (which Trace
// .Events guarantees); the merge is a stable sort of the concatenation,
// so equal events keep their stream-relative order as the final
// tie-break.
func MergeEvents(streams ...[]Event) []Event {
	n := 0
	for _, s := range streams {
		n += len(s)
	}
	out := make([]Event, 0, n)
	for _, s := range streams {
		out = append(out, s...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		return eventLess(&out[i], &out[j])
	})
	return out
}

// eventLess is the canonical total order on trace events: timestamp
// first, then every remaining field in declaration order. Comparing
// all fields (not just At) is what makes the order total up to exact
// duplicates, so the merged output cannot depend on shard layout.
func eventLess(a, b *Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	if a.PID != b.PID {
		return a.PID < b.PID
	}
	if a.Cat != b.Cat {
		return a.Cat < b.Cat
	}
	if a.Dur != b.Dur {
		return a.Dur < b.Dur
	}
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	if a.A0 != b.A0 {
		return a.A0 < b.A0
	}
	if a.A1 != b.A1 {
		return a.A1 < b.A1
	}
	return a.A2 < b.A2
}
