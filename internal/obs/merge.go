package obs

import (
	"cmp"
	"slices"
)

// MergeEvents merges per-shard trace spines into one timeline under a
// total order that depends only on event CONTENT, never on which shard
// recorded an event or in what order the streams are passed. That is
// the property the sharded cluster engine needs: re-partitioning the
// same world across a different shard count redistributes identical
// events across different spines, and the merged timeline — and any
// Perfetto export rendered from it — must come out byte-identical.
//
// Each input stream must already be in emission order (which Trace
// .Events guarantees); the merge is a stable sort of the concatenation,
// so equal events keep their stream-relative order as the final
// tie-break. slices.SortStableFunc sorts the slice directly — no
// reflect-based swaps, and the only allocation is the output slice
// itself (pinned by TestMergeEventsAllocs).
func MergeEvents(streams ...[]Event) []Event {
	n := 0
	for _, s := range streams {
		n += len(s)
	}
	out := make([]Event, 0, n)
	for _, s := range streams {
		out = append(out, s...)
	}
	slices.SortStableFunc(out, eventCmp)
	return out
}

// eventCmp is the canonical total order on trace events: timestamp
// first, then every remaining field in declaration order. Comparing
// all fields (not just At) is what makes the order total up to exact
// duplicates, so the merged output cannot depend on shard layout.
func eventCmp(a, b Event) int {
	if c := cmp.Compare(a.At, b.At); c != 0 {
		return c
	}
	if c := cmp.Compare(a.Node, b.Node); c != 0 {
		return c
	}
	if c := cmp.Compare(a.PID, b.PID); c != 0 {
		return c
	}
	if c := cmp.Compare(a.Cat, b.Cat); c != 0 {
		return c
	}
	if c := cmp.Compare(a.Dur, b.Dur); c != 0 {
		return c
	}
	if c := cmp.Compare(a.Name, b.Name); c != 0 {
		return c
	}
	if c := cmp.Compare(a.A0, b.A0); c != 0 {
		return c
	}
	if c := cmp.Compare(a.A1, b.A1); c != 0 {
		return c
	}
	return cmp.Compare(a.A2, b.A2)
}
