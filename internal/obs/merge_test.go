package obs

import (
	"reflect"
	"testing"

	"uldma/internal/sim"
)

func mkEvent(at sim.Time, node int32, name string, a0 uint64) Event {
	return Event{At: at, Cat: CatLink, Name: name, Node: node, PID: -1, A0: a0}
}

// The merged timeline must not depend on how events were dealt to
// streams: any partition of the same multiset merges identically.
func TestMergeEventsLayoutInvariant(t *testing.T) {
	all := []Event{
		mkEvent(10, 2, "land", 7),
		mkEvent(10, 1, "land", 3),
		mkEvent(5, 0, "land", 1),
		mkEvent(10, 1, "land", 9),
		mkEvent(20, 3, "land", 2),
	}
	one := MergeEvents(all)

	// Deal the same events into three streams by round-robin, keeping
	// each stream time-sorted (as Trace.Events would).
	var s0, s1, s2 []Event
	s0 = []Event{mkEvent(5, 0, "land", 1), mkEvent(10, 1, "land", 9)}
	s1 = []Event{mkEvent(10, 2, "land", 7), mkEvent(20, 3, "land", 2)}
	s2 = []Event{mkEvent(10, 1, "land", 3)}
	many := MergeEvents(s0, s1, s2)

	if !reflect.DeepEqual(one, many) {
		t.Fatalf("merge depends on stream layout:\none stream: %+v\nthree streams: %+v", one, many)
	}
	for i := 1; i < len(many); i++ {
		if eventCmp(many[i], many[i-1]) < 0 {
			t.Fatalf("merged output not sorted at %d: %+v after %+v", i, many[i], many[i-1])
		}
	}
}

// mergeFixture builds shardCount pre-sorted spines totalling n events,
// deterministic content (no wall-clock, no global RNG).
func mergeFixture(shards, n int) [][]Event {
	streams := make([][]Event, shards)
	for i := 0; i < n; i++ {
		s := i % shards
		streams[s] = append(streams[s], mkEvent(sim.Time(i/shards*10), int32(i%7), "land", uint64(i*2654435761)))
	}
	return streams
}

// The merge allocates the output slice and NOTHING else —
// slices.SortStableFunc works in place, so the event payloads are
// never boxed or re-boxed the way reflect-based sorts do.
func TestMergeEventsAllocs(t *testing.T) {
	streams := mergeFixture(4, 256)
	allocs := testing.AllocsPerRun(20, func() {
		MergeEvents(streams...)
	})
	if allocs > 1 {
		t.Fatalf("MergeEvents allocates %v times per call, want <= 1 (the output slice)", allocs)
	}
}

func BenchmarkMergeEvents(b *testing.B) {
	streams := mergeFixture(8, 8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeEvents(streams...)
	}
}

func TestMergeEventsEmpty(t *testing.T) {
	if got := MergeEvents(); len(got) != 0 {
		t.Fatalf("MergeEvents() = %v, want empty", got)
	}
	if got := MergeEvents(nil, nil); len(got) != 0 {
		t.Fatalf("MergeEvents(nil, nil) = %v, want empty", got)
	}
}
