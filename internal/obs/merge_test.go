package obs

import (
	"reflect"
	"testing"

	"uldma/internal/sim"
)

func mkEvent(at sim.Time, node int32, name string, a0 uint64) Event {
	return Event{At: at, Cat: CatLink, Name: name, Node: node, PID: -1, A0: a0}
}

// The merged timeline must not depend on how events were dealt to
// streams: any partition of the same multiset merges identically.
func TestMergeEventsLayoutInvariant(t *testing.T) {
	all := []Event{
		mkEvent(10, 2, "land", 7),
		mkEvent(10, 1, "land", 3),
		mkEvent(5, 0, "land", 1),
		mkEvent(10, 1, "land", 9),
		mkEvent(20, 3, "land", 2),
	}
	one := MergeEvents(all)

	// Deal the same events into three streams by round-robin, keeping
	// each stream time-sorted (as Trace.Events would).
	var s0, s1, s2 []Event
	s0 = []Event{mkEvent(5, 0, "land", 1), mkEvent(10, 1, "land", 9)}
	s1 = []Event{mkEvent(10, 2, "land", 7), mkEvent(20, 3, "land", 2)}
	s2 = []Event{mkEvent(10, 1, "land", 3)}
	many := MergeEvents(s0, s1, s2)

	if !reflect.DeepEqual(one, many) {
		t.Fatalf("merge depends on stream layout:\none stream: %+v\nthree streams: %+v", one, many)
	}
	for i := 1; i < len(many); i++ {
		if eventLess(&many[i], &many[i-1]) {
			t.Fatalf("merged output not sorted at %d: %+v after %+v", i, many[i], many[i-1])
		}
	}
}

func TestMergeEventsEmpty(t *testing.T) {
	if got := MergeEvents(); len(got) != 0 {
		t.Fatalf("MergeEvents() = %v, want empty", got)
	}
	if got := MergeEvents(nil, nil); len(got) != 0 {
		t.Fatalf("MergeEvents(nil, nil) = %v, want empty", got)
	}
}
