// Package obs is the simulator's unified observability plane: ONE
// metrics registry and ONE structured trace spine shared by every
// component (phys, bus, dma, proc, kernel, net, msg).
//
// Before obs, the model had five generations of ad-hoc telemetry —
// phys access statistics, bus cycle counters, the DMA engine's
// transfer tallies, per-process CPU accounting, net.Fabric.Stats()
// and the standalone internal/trace bus recorder — each with its own
// struct shape and its own snapshot story, and no way to correlate
// events across layers. obs replaces the *storage* behind those
// structs with typed Counter/Gauge cells registered in a Registry
// (the exported Stats structs survive as thin compatibility
// accessors, so no experiment output changes), and adds a
// ring-buffered, sim-clocked event stream (Trace) with spans that
// exports Chrome/Perfetto trace_event JSON.
//
// Two invariants the rest of the repo builds on:
//
//   - Rewind-with-the-world: every registered metric and the trace
//     spine's state are captured by machine.Snapshot /
//     net.Cluster.Snapshot and rewound by Restore/NewFromSnapshot,
//     exactly like the architectural state they describe. A clone
//     hydrated from a snapshot reports the counters AS OF the
//     snapshot — never the origin's later activity
//     (TestCounterRewindRule).
//
//   - Pay-for-what-you-use: a nil *Trace is the disabled state; every
//     emission site is a nil-check plus nothing. The Table-1
//     initiation hot path shows a zero allocation delta and a zero
//     simulated-cycle delta with obs present — disabled or enabled —
//     versus the pre-obs baseline (BenchmarkObsDisabled,
//     TestObsZeroMarginalAllocDelta, TestObsTracingNoCycleDelta in
//     internal/core).
package obs

import (
	"fmt"
	"strings"
)

// Counter is a monotonically increasing event count. Increment is a
// plain machine add — no atomics (the simulator is single-threaded per
// world by design), no indirection, no allocation (asserted by
// BenchmarkCounterInc).
type Counter uint64

// Inc adds one.
func (c *Counter) Inc() { *c++ }

// Add adds n.
func (c *Counter) Add(n uint64) { *c += Counter(n) }

// Value reads the count.
func (c *Counter) Value() uint64 { return uint64(*c) }

// Gauge is a signed accumulator for cycle/time tallies and
// level-style values (e.g. the highest node id addressed).
type Gauge int64

// Add accumulates d.
func (g *Gauge) Add(d int64) { *g += Gauge(d) }

// Set overwrites the value.
func (g *Gauge) Set(v int64) { *g = Gauge(v) }

// Max raises the gauge to v if v is larger.
func (g *Gauge) Max(v int64) {
	if Gauge(v) > *g {
		*g = Gauge(v)
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 { return int64(*g) }

// MetricValue is one (name, value) pair of a registry snapshot.
// Signed gauges are widened into uint64 (they are non-negative in
// every component that registers one; the registry does not reinterpret).
type MetricValue struct {
	Name  string
	Value uint64
}

// Registry is the machine-wide metric directory. Components register
// their counters at construction under dotted names ("bus.loads");
// Snapshot renders every metric in registration order — one
// deterministic, ordered view of the whole world's counters, replacing
// the six bespoke per-component stats structs as the instrument panel.
//
// Reads go through closures captured at registration, so the registry
// always reflects live component state (including state rewound by
// machine.Restore) without the components writing through it.
// Registration happens once per world at construction; nothing on any
// hot path touches the registry.
type Registry struct {
	names []string
	reads []func() uint64
	index map[string]int
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]int)}
}

// Register adds a metric read through fn. Names must be unique;
// duplicates are a wiring bug and panic.
func (r *Registry) Register(name string, fn func() uint64) {
	if fn == nil {
		panic("obs: nil read func for metric " + name)
	}
	if _, dup := r.index[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	r.index[name] = len(r.names)
	r.names = append(r.names, name)
	r.reads = append(r.reads, fn)
}

// RegisterCounter registers a Counter cell.
func (r *Registry) RegisterCounter(name string, c *Counter) {
	if c == nil {
		panic("obs: nil counter for metric " + name)
	}
	r.Register(name, c.Value)
}

// RegisterGauge registers a Gauge cell (widened to uint64 in
// snapshots).
func (r *Registry) RegisterGauge(name string, g *Gauge) {
	if g == nil {
		panic("obs: nil gauge for metric " + name)
	}
	r.Register(name, func() uint64 { return uint64(g.Value()) })
}

// Len reports how many metrics are registered.
func (r *Registry) Len() int { return len(r.names) }

// Names returns the metric names in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// Get reads one metric by name.
func (r *Registry) Get(name string) (uint64, bool) {
	i, ok := r.index[name]
	if !ok {
		return 0, false
	}
	return r.reads[i](), true
}

// Snapshot reads every metric, in registration order. The order is a
// pure function of construction order, so two identically built worlds
// render byte-identical snapshots.
func (r *Registry) Snapshot() []MetricValue {
	out := make([]MetricValue, len(r.names))
	for i, name := range r.names {
		out[i] = MetricValue{Name: name, Value: r.reads[i]()}
	}
	return out
}

// Render formats the snapshot as an aligned name/value listing.
func (r *Registry) Render() string {
	var b strings.Builder
	width := 0
	for _, n := range r.names {
		if len(n) > width {
			width = len(n)
		}
	}
	for _, mv := range r.Snapshot() {
		fmt.Fprintf(&b, "%-*s %d\n", width, mv.Name, mv.Value)
	}
	return b.String()
}
