package obs

// The structured trace spine: a ring-buffered, sim-clocked event
// stream with spans. It subsumes the old internal/trace bus recorder
// (which survives as a thin adapter) and adds cross-layer events the
// paper's protection and atomicity arguments live on: which process's
// accesses reached the engine in which order, when the engine mastered
// the bus, when the kernel was entered and left, when the fabric
// delivered — all on one timeline, exportable to Perfetto.
//
// Cost model: components hold a nil *Trace until tracing is enabled
// (machine.EnableTrace / net.Cluster.EnableTrace). Every emission site
// is `if tr != nil { tr.Emit(...) }`; disabled tracing is a pointer
// compare. Enabled tracing appends into a preallocated-by-growth ring
// and never formats strings on the hot path (names are static string
// constants; arguments ride as raw words and are rendered at export
// time).

import (
	"fmt"

	"uldma/internal/sim"
)

// Category classifies an event by the layer that emitted it. Perfetto
// export maps categories to named tracks.
type Category uint8

const (
	// CatBus is an uncached bus transaction (load/store/rmw).
	CatBus Category = iota
	// CatSyscall is a kernel entry/exit span.
	CatSyscall
	// CatDMA is a DMA bus-mastering window span.
	CatDMA
	// CatSched is a scheduler event (context switch).
	CatSched
	// CatLink is a fabric delivery span (send -> land).
	CatLink
	// CatFault is a fault-plane verdict (drop/dup/reorder).
	CatFault
	// CatMsg is a reliable-channel protocol event (timeout,
	// retransmission, recredit).
	CatMsg
	// CatSteer is a steered-experiment decision (probe/split/abort/
	// accept) mirrored onto the trace spine so Perfetto export shows
	// the search itself, not just the worlds it probed.
	CatSteer

	numCategories
)

// String names the category as it appears in exports.
func (c Category) String() string {
	switch c {
	case CatBus:
		return "bus"
	case CatSyscall:
		return "syscall"
	case CatDMA:
		return "dma"
	case CatSched:
		return "sched"
	case CatLink:
		return "link"
	case CatFault:
		return "fault"
	case CatMsg:
		return "msg"
	case CatSteer:
		return "steer"
	}
	return fmt.Sprintf("cat%d", uint8(c))
}

// Event is one trace record. Instants have Dur == 0; spans carry their
// full extent (both bounds are known at emission for every span the
// model produces: syscalls emit at exit, DMA windows and link
// deliveries know their end when scheduled).
type Event struct {
	At   sim.Time
	Dur  sim.Time
	Cat  Category
	Name string // static string constant — never formatted on the hot path
	Node int32  // cluster node id (0 on a standalone machine)
	PID  int32  // guest process id, -1 when not process-attributed
	A0   uint64 // category-specific arguments (addr/size/val, pids, seqs)
	A1   uint64
	A2   uint64
}

// Policy selects what a full Trace does with further events.
type Policy uint8

const (
	// Ring overwrites the oldest events — flight-recorder semantics,
	// the default for always-on tracing.
	Ring Policy = iota
	// DropNewest stops storing once full and counts the overflow —
	// the old internal/trace recorder's contract, kept for its
	// adapter and for tests that pin "the first N events".
	DropNewest
)

// DefaultTraceCap is the event capacity used when a caller passes
// max <= 0.
const DefaultTraceCap = 4096

// Trace is the event stream. It is single-writer (one simulated world,
// one goroutine — the simulator's concurrency contract) and bounded.
type Trace struct {
	max     int
	policy  Policy
	events  []Event
	start   int    // ring read position (0 until the ring wraps)
	emitted uint64 // total events offered — linear, fingerprinted
	dropped uint64 // events not stored (DropNewest) or overwritten (Ring)
}

// NewTrace creates a trace holding at most max events (max <= 0 means
// DefaultTraceCap).
func NewTrace(max int, policy Policy) *Trace {
	if max <= 0 {
		max = DefaultTraceCap
	}
	return &Trace{max: max, policy: policy}
}

// Cap returns the trace's event capacity.
func (t *Trace) Cap() int { return t.max }

// Emit records one event. Steady state is allocation-free: the event
// slice grows to max once, then the ring reuses slots (Ring) or the
// overflow is counted (DropNewest).
func (t *Trace) Emit(e Event) {
	t.emitted++
	if len(t.events) < t.max {
		t.events = append(t.events, e)
		return
	}
	if t.policy == DropNewest {
		t.dropped++
		return
	}
	t.events[t.start] = e
	t.start++
	if t.start == t.max {
		t.start = 0
	}
	t.dropped++
}

// Instant records a zero-duration event.
func (t *Trace) Instant(at sim.Time, cat Category, name string, node, pid int32, a0, a1, a2 uint64) {
	t.Emit(Event{At: at, Cat: cat, Name: name, Node: node, PID: pid, A0: a0, A1: a1, A2: a2})
}

// Span records an event covering [at, at+dur).
func (t *Trace) Span(at, dur sim.Time, cat Category, name string, node, pid int32, a0, a1, a2 uint64) {
	t.Emit(Event{At: at, Dur: dur, Cat: cat, Name: name, Node: node, PID: pid, A0: a0, A1: a1, A2: a2})
}

// Len reports how many events are currently stored.
func (t *Trace) Len() int { return len(t.events) }

// Emitted reports the total number of events offered to the trace —
// a linear counter suitable for fingerprinting.
func (t *Trace) Emitted() uint64 { return t.emitted }

// Dropped reports how many events were not retained (dropped under
// DropNewest, overwritten under Ring).
func (t *Trace) Dropped() uint64 { return t.dropped }

// Events returns the retained events in emission order (oldest first).
// The returned slice is a copy; the trace keeps recording.
func (t *Trace) Events() []Event {
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.start:]...)
	out = append(out, t.events[:t.start]...)
	return out
}

// Reset discards all recorded events and zeroes the counters. Capacity
// and policy are kept.
func (t *Trace) Reset() {
	t.events = t.events[:0]
	t.start = 0
	t.emitted = 0
	t.dropped = 0
}

// TraceState is a Trace's complete mutable state, captured for world
// snapshots. Counters and retained events rewind with the world like
// every other metric (the rewind-with-the-world rule).
type TraceState struct {
	max     int
	policy  Policy
	events  []Event
	start   int
	emitted uint64
	dropped uint64
}

// Cap returns the capacity of the trace the state was captured from —
// what NewFromSnapshot needs to re-enact tracing on a clone.
func (s *TraceState) Cap() int { return s.max }

// Policy returns the captured trace's overflow policy.
func (s *TraceState) Policy() Policy { return s.policy }

// State captures the trace's complete mutable state.
func (t *Trace) State() *TraceState {
	events := make([]Event, len(t.events))
	copy(events, t.events)
	return &TraceState{
		max: t.max, policy: t.policy, events: events,
		start: t.start, emitted: t.emitted, dropped: t.dropped,
	}
}

// RestoreState rewinds the trace to a captured state. The state must
// come from a trace of the same capacity and policy.
func (t *Trace) RestoreState(s *TraceState) error {
	if s.max != t.max || s.policy != t.policy {
		return fmt.Errorf("obs: restore: state from a cap-%d/policy-%d trace, trace is cap-%d/policy-%d",
			s.max, s.policy, t.max, t.policy)
	}
	t.events = append(t.events[:0], s.events...)
	t.start = s.start
	t.emitted = s.emitted
	t.dropped = s.dropped
	return nil
}
