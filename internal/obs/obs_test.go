package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"uldma/internal/sim"
)

func TestRegistryOrderAndValues(t *testing.T) {
	r := NewRegistry()
	var c Counter
	var g Gauge
	r.RegisterCounter("z.count", &c)
	r.RegisterGauge("a.gauge", &g)
	r.Register("m.closure", func() uint64 { return 7 })

	c.Add(3)
	c.Inc()
	g.Add(10)
	g.Max(4) // no-op: already 10
	g.Max(25)

	snap := r.Snapshot()
	want := []MetricValue{{"z.count", 4}, {"a.gauge", 25}, {"m.closure", 7}}
	if len(snap) != len(want) {
		t.Fatalf("snapshot has %d metrics, want %d", len(snap), len(want))
	}
	for i := range want {
		if snap[i] != want[i] {
			t.Fatalf("metric %d = %+v, want %+v (registration order must be preserved)", i, snap[i], want[i])
		}
	}
	if v, ok := r.Get("z.count"); !ok || v != 4 {
		t.Fatalf("Get(z.count) = %d, %v", v, ok)
	}
	if _, ok := r.Get("nope"); ok {
		t.Fatal("Get of unregistered metric succeeded")
	}
	if !strings.Contains(r.Render(), "z.count") {
		t.Fatalf("Render lacks metric name:\n%s", r.Render())
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	var c Counter
	r.RegisterCounter("dup", &c)
	r.RegisterCounter("dup", &c)
}

func TestTraceRingOverwritesOldest(t *testing.T) {
	tr := NewTrace(3, Ring)
	for i := 0; i < 5; i++ {
		tr.Instant(sim.Time(i), CatBus, "e", 0, 0, uint64(i), 0, 0)
	}
	if tr.Emitted() != 5 || tr.Dropped() != 2 || tr.Len() != 3 {
		t.Fatalf("emitted=%d dropped=%d len=%d, want 5/2/3", tr.Emitted(), tr.Dropped(), tr.Len())
	}
	ev := tr.Events()
	for i, e := range ev {
		if e.A0 != uint64(i+2) {
			t.Fatalf("ring order wrong: event %d has A0=%d, want %d", i, e.A0, i+2)
		}
	}
}

func TestTraceDropNewestKeepsFirst(t *testing.T) {
	tr := NewTrace(2, DropNewest)
	for i := 0; i < 5; i++ {
		tr.Instant(sim.Time(i), CatBus, "e", 0, 0, uint64(i), 0, 0)
	}
	if tr.Dropped() != 3 || tr.Len() != 2 {
		t.Fatalf("dropped=%d len=%d, want 3/2", tr.Dropped(), tr.Len())
	}
	ev := tr.Events()
	if ev[0].A0 != 0 || ev[1].A0 != 1 {
		t.Fatalf("DropNewest must keep the FIRST events, got A0 %d,%d", ev[0].A0, ev[1].A0)
	}
}

func TestTraceStateRoundTrip(t *testing.T) {
	tr := NewTrace(3, Ring)
	for i := 0; i < 4; i++ {
		tr.Instant(sim.Time(i), CatLink, "d", 1, 2, uint64(i), 0, 0)
	}
	st := tr.State()
	tr.Instant(99, CatFault, "drop", 0, 0, 0, 0, 0)
	if err := tr.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if tr.Emitted() != 4 || tr.Dropped() != 1 {
		t.Fatalf("restored emitted=%d dropped=%d, want 4/1", tr.Emitted(), tr.Dropped())
	}
	ev := tr.Events()
	if len(ev) != 3 || ev[len(ev)-1].A0 != 3 {
		t.Fatalf("restored events wrong: %+v", ev)
	}
	other := NewTrace(5, Ring)
	if err := other.RestoreState(st); err == nil {
		t.Fatal("restore into a different-capacity trace succeeded, want error")
	}
}

// TestPerfettoSchema pins the trace_event invariants a viewer needs:
// every record has name/ph/pid/tid, phases are M/X/i, X events carry
// dur, i events carry s, and ts is microseconds (ps / 1e6).
func TestPerfettoSchema(t *testing.T) {
	tr := NewTrace(0, Ring)
	tr.Span(2_000_000, 1_000_000, CatSyscall, "sys_dma", 0, 1, 6, 0, 0)
	tr.Instant(3_000_000, CatSched, "ctxswitch", 0, 1, 1, 2, 0)

	var buf bytes.Buffer
	if err := WritePerfetto(&buf, []PerfettoProcess{{PID: 7, Name: "world", Events: tr.Events()}}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no traceEvents")
	}
	sawX, sawI, sawM := false, false, false
	for _, e := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := e[key]; !ok {
				t.Fatalf("event lacks %q: %v", key, e)
			}
		}
		switch e["ph"] {
		case "M":
			sawM = true
		case "X":
			sawX = true
			if _, ok := e["dur"]; !ok {
				t.Fatalf("X event lacks dur: %v", e)
			}
			if e["ts"].(float64) != 2.0 {
				t.Fatalf("span ts = %v µs, want 2 (ps/1e6)", e["ts"])
			}
		case "i":
			sawI = true
			if e["s"] != "t" {
				t.Fatalf("instant lacks s:t: %v", e)
			}
		default:
			t.Fatalf("unexpected phase %v", e["ph"])
		}
	}
	if !sawX || !sawI || !sawM {
		t.Fatalf("missing phases: X=%v i=%v M=%v", sawX, sawI, sawM)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Value() != uint64(b.N) {
		b.Fatal("count mismatch")
	}
}

func BenchmarkTraceEmit(b *testing.B) {
	tr := NewTrace(1024, Ring)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Instant(sim.Time(i), CatBus, "load", 0, 0, 1, 2, 3)
	}
}
