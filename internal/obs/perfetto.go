package obs

// Chrome/Perfetto trace_event export. The emitted document is the
// JSON-object flavour of the trace_event format:
//
//	{"displayTimeUnit":"ns","traceEvents":[ ... ]}
//
// and loads directly in ui.perfetto.dev (or chrome://tracing). Spans
// become "X" complete events, instants become "i" events; each
// PerfettoProcess gets a process_name metadata row and one named
// thread (track) per event category, so the cross-layer correlation
// obs exists for — syscall spans over bus transactions over DMA
// windows over link deliveries — reads directly off the timeline.
//
// Timestamps: trace_event "ts"/"dur" are microseconds; the simulator's
// clock is picoseconds. The export divides by 1e6, keeping fractional
// microseconds (Perfetto renders sub-µs durations fine). Everything is
// exact simulated time, so the document is byte-deterministic for a
// given run.

import (
	"encoding/json"
	"fmt"
	"io"
)

// PerfettoProcess groups one event stream under one Perfetto process
// row — typically one simulated world (or one cluster node).
type PerfettoProcess struct {
	PID    int
	Name   string
	Events []Event
}

// perfettoEvent is one trace_event record.
type perfettoEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// perfettoDoc is the document wrapper.
type perfettoDoc struct {
	DisplayTimeUnit string          `json:"displayTimeUnit"`
	TraceEvents     []perfettoEvent `json:"traceEvents"`
}

func psToUs(t int64) float64 { return float64(t) / 1e6 }

// WritePerfetto renders the processes' events as one trace_event JSON
// document.
func WritePerfetto(w io.Writer, procs []PerfettoProcess) error {
	doc := perfettoDoc{DisplayTimeUnit: "ns"}
	for _, p := range procs {
		doc.TraceEvents = append(doc.TraceEvents, perfettoEvent{
			Name: "process_name", Phase: "M", PID: p.PID, TID: 0,
			Args: map[string]any{"name": p.Name},
		})
		seen := [numCategories]bool{}
		for _, e := range p.Events {
			if e.Cat < numCategories && !seen[e.Cat] {
				seen[e.Cat] = true
				doc.TraceEvents = append(doc.TraceEvents, perfettoEvent{
					Name: "thread_name", Phase: "M", PID: p.PID, TID: int(e.Cat) + 1,
					Args: map[string]any{"name": e.Cat.String()},
				})
			}
		}
		for _, e := range p.Events {
			pe := perfettoEvent{
				Name: e.Name,
				Cat:  e.Cat.String(),
				TS:   psToUs(int64(e.At)),
				PID:  p.PID,
				TID:  int(e.Cat) + 1,
				Args: map[string]any{
					"node": e.Node,
					"pid":  e.PID,
					"a0":   fmt.Sprintf("%#x", e.A0),
					"a1":   fmt.Sprintf("%#x", e.A1),
					"a2":   fmt.Sprintf("%#x", e.A2),
				},
			}
			if e.Dur > 0 {
				pe.Phase = "X"
				d := psToUs(int64(e.Dur))
				pe.Dur = &d
			} else {
				pe.Phase = "i"
				pe.Scope = "t"
			}
			doc.TraceEvents = append(doc.TraceEvents, pe)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
