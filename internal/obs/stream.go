package obs

// The live half of the observability plane: streaming views a harness
// can read WHILE a world runs, without perturbing it.
//
// The post-hoc API (Registry.Snapshot, Trace.Events) allocates a fresh
// copy per call, which is fine once per experiment cell but wrong for
// a steered experiment loop that wants to watch a running measurement.
// This file adds the pay-for-what-you-use forms:
//
//   - Registry.SnapshotAt fills a caller-owned TimedSnapshot, reusing
//     its Values capacity — zero allocations once warm
//     (TestSnapshotAtZeroAllocs).
//   - Registry.Watch resolves one metric to a read handle whose Value
//     is a plain closure call — zero allocations, ever
//     (TestWatchZeroAllocs).
//   - Trace.NewReader attaches a streaming cursor that drains the ring
//     incrementally: every Poll delivers a consistent, whole-event
//     prefix of the not-yet-seen retained events in emission order,
//     counting anything the ring overwrote underneath it as skipped
//     (TestTraceReaderWraparound).
//
// None of these touch the simulated clock or the event queue: reads go
// through the same registration closures Snapshot uses, so a live feed
// costs 0 simulated picoseconds by construction — the machine-level
// pin is TestLiveFeedZeroDelta in internal/core, which runs the same
// measurement with and without a per-transfer live feed and demands a
// byte-identical result, fingerprint included.
//
// Concurrency: like everything else on a world, these are single-
// goroutine views (the simulator's one-goroutine-per-world contract).
// A Reader is a live cursor into its Trace, not a thread-safe queue.

import "uldma/internal/sim"

// TimedSnapshot is a registry snapshot stamped with the simulated
// instant it was taken. The Values slice is owned by the caller and
// reused across SnapshotAt calls.
type TimedSnapshot struct {
	At     sim.Time
	Values []MetricValue
}

// Get reads one metric from the snapshot by name (linear scan — the
// snapshot is a rendered view, not an index).
func (s *TimedSnapshot) Get(name string) (uint64, bool) {
	for _, mv := range s.Values {
		if mv.Name == name {
			return mv.Value, true
		}
	}
	return 0, false
}

// SnapshotAt reads every metric in registration order into dst,
// stamping it with now (the caller holds the clock; the registry never
// touches simulated time). dst.Values is resized in place, so a warm
// TimedSnapshot makes SnapshotAt allocation-free — the form a live
// feed polls mid-run.
func (r *Registry) SnapshotAt(now sim.Time, dst *TimedSnapshot) {
	dst.At = now
	if cap(dst.Values) < len(r.names) {
		dst.Values = make([]MetricValue, len(r.names))
	}
	dst.Values = dst.Values[:len(r.names)]
	for i, name := range r.names {
		dst.Values[i] = MetricValue{Name: name, Value: r.reads[i]()}
	}
}

// Watch is a live read handle on one registered metric: Value is the
// registration closure, called directly — no map lookup, no
// allocation. The handle stays valid for the life of the world and
// tracks rewound state exactly like Get (reads always reflect live
// component state).
type Watch struct {
	name string
	read func() uint64
}

// Name returns the watched metric's registered name.
func (w Watch) Name() string { return w.name }

// Value reads the metric.
func (w Watch) Value() uint64 { return w.read() }

// Watch resolves name to a read handle, paying the map lookup once so
// per-sample reads don't.
func (r *Registry) Watch(name string) (Watch, bool) {
	i, ok := r.index[name]
	if !ok {
		return Watch{}, false
	}
	return Watch{name: r.names[i], read: r.reads[i]}, true
}

// Reader is a streaming cursor over a Trace. It tracks the sequence
// number (the trace's linear Emitted count) of the next event it has
// not yet delivered; Poll drains everything retained from there on.
// If the ring overwrote events the reader had not consumed yet, those
// are counted as skipped and the cursor jumps to the oldest retained
// event — the delivered stream is always a subsequence of the emission
// order made of whole events, never a torn or reordered one.
type Reader struct {
	t       *Trace
	next    uint64 // sequence of the next event to deliver
	skipped uint64 // events overwritten before the reader got to them
}

// NewReader attaches a streaming cursor positioned at the trace's
// current end: it will deliver events emitted from now on. Use
// NewReaderFrom(0) to also drain what the ring currently retains.
func (t *Trace) NewReader() *Reader { return &Reader{t: t, next: t.emitted} }

// NewReaderFrom attaches a cursor at an absolute sequence number
// (0 = the first event ever emitted; anything the ring has already
// overwritten counts as skipped on the first Poll).
func (t *Trace) NewReaderFrom(seq uint64) *Reader { return &Reader{t: t, next: seq} }

// Skipped reports how many events the ring overwrote before the reader
// consumed them, across all Polls.
func (rd *Reader) Skipped() uint64 { return rd.skipped }

// Poll appends every retained, not-yet-delivered event to buf in
// emission order and returns the extended slice plus the number of
// events skipped by this poll (overwritten under the cursor since the
// previous one). Events are copied out whole, so a reader never sees a
// torn record even while the writer keeps wrapping the ring between
// polls.
//
// If the trace was rewound underneath the reader (RestoreState/Reset —
// the rewind-with-the-world rule), the cursor clamps to the rewound
// stream's end: the re-run's events are delivered as they are
// re-emitted, without double-counting the abandoned timeline.
func (rd *Reader) Poll(buf []Event) ([]Event, uint64) {
	t := rd.t
	if rd.next > t.emitted {
		rd.next = t.emitted
	}
	stored := uint64(len(t.events))
	// Oldest retained sequence: under Ring the last `stored` emissions
	// survive; under DropNewest the FIRST `stored` do (overflow is
	// counted, not stored) — so the retained window is [0, stored).
	oldest := uint64(0)
	if t.policy == Ring {
		oldest = t.emitted - stored
	}
	newest := oldest + stored
	var skippedNow uint64
	if rd.next < oldest {
		skippedNow = oldest - rd.next
		rd.skipped += skippedNow
		rd.next = oldest
	}
	for seq := rd.next; seq < newest; seq++ {
		idx := int(seq - oldest)
		if t.policy == Ring {
			idx = (t.start + idx) % len(t.events)
		}
		buf = append(buf, t.events[idx])
	}
	rd.next = newest
	return buf, skippedNow
}
