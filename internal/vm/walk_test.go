package vm

import (
	"errors"
	"testing"
	"testing/quick"

	"uldma/internal/phys"
)

func bumpAlloc(mem *phys.Memory, start phys.Addr) FrameAlloc {
	next := start
	return func() (phys.Addr, error) {
		f := next
		next += 8192
		if uint64(f)+8192 > uint64(mem.Size()) {
			return 0, errors.New("out of frames")
		}
		return f, nil
	}
}

func TestMaterializeAndWalk(t *testing.T) {
	mem := phys.New(1 << 20)
	as := NewAddressSpace(1, 8192)
	as.Map(0x10000, 0x40000, Read|Write)
	as.Map(0x18000, 0x48000, Read)
	// High mappings: the kernel's shadow (2^32) and atomic (2^36) VAs.
	as.Map(0x1_0001_0000, 0x50000, Read|Write)
	as.Map(0x10_0001_0000, 0x58000, Read|Write)

	tbl, err := Materialize(as, mem, bumpAlloc(mem, 0x80000))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Root() == 0 {
		t.Fatal("no root")
	}
	pa, reads, err := tbl.Walk(0x10008, AccessLoad)
	if err != nil {
		t.Fatal(err)
	}
	if pa != 0x40008 {
		t.Fatalf("walk = %v", pa)
	}
	if reads != walkLevels {
		t.Fatalf("walk took %d reads, want %d", reads, walkLevels)
	}
	// Protection enforced from the materialized PTE.
	if _, _, err := tbl.Walk(0x18000, AccessStore); err == nil {
		t.Fatal("store through read-only PTE allowed")
	}
	// High mappings resolve.
	if pa, _, err := tbl.Walk(0x1_0001_0020, AccessLoad); err != nil || pa != 0x50020 {
		t.Fatalf("shadow-range walk: pa=%v err=%v", pa, err)
	}
	if pa, _, err := tbl.Walk(0x10_0001_0000, AccessStore); err != nil || pa != 0x58000 {
		t.Fatalf("atomic-range walk: pa=%v err=%v", pa, err)
	}
	// Unmapped VAs fault at whichever level is absent.
	var f *Fault
	_, reads, err = tbl.Walk(0x7_0000_0000, AccessLoad)
	if !errors.As(err, &f) || f.Kind != FaultUnmapped {
		t.Fatalf("unmapped walk: %v", err)
	}
	if reads == 0 || reads > walkLevels {
		t.Fatalf("unmapped walk read %d PTEs", reads)
	}
	// Beyond the walked VA span: immediate fault, zero reads.
	if _, reads, err = tbl.Walk(1<<walkVABits, AccessLoad); err == nil || reads != 0 {
		t.Fatalf("out-of-span walk: reads=%d err=%v", reads, err)
	}
}

// TestWalkMatchesSoftwareTranslate: the materialized table and the
// architectural map agree on every outcome, over random layouts.
func TestWalkMatchesSoftwareTranslate(t *testing.T) {
	err := quick.Check(func(seed uint64, probes []uint32) bool {
		mem := phys.New(1 << 20)
		as := NewAddressSpace(1, 8192)
		// Map 12 pseudo-random pages across the low 43-bit space.
		s := seed
		next := func() uint64 {
			s = s*6364136223846793005 + 1442695040888963407
			return s >> 11
		}
		for i := 0; i < 12; i++ {
			va := VAddr(next() % (1 << walkVABits) &^ 8191)
			pa := phys.Addr(0x40000 + uint64(i)*8192)
			prot := Prot(next() % 4)
			as.Map(va, pa, prot)
		}
		tbl, err := Materialize(as, mem, bumpAlloc(mem, 0x80000))
		if err != nil {
			return false
		}
		// Probe mapped pages and random addresses.
		var vas []VAddr
		for vpn := range as.pages {
			vas = append(vas, VAddr(vpn*8192+uint64(next()%8192&^7)))
		}
		for _, p := range probes {
			vas = append(vas, VAddr(uint64(p)*977)%(1<<walkVABits))
		}
		for _, va := range vas {
			for _, acc := range []Access{AccessLoad, AccessStore, AccessRMW} {
				swPA, swErr := as.Translate(va, acc)
				hwPA, _, hwErr := tbl.Walk(va, acc)
				if (swErr == nil) != (hwErr == nil) {
					return false
				}
				if swErr == nil && swPA != hwPA {
					return false
				}
				if swErr != nil {
					var sf, hf *Fault
					if !errors.As(swErr, &sf) || !errors.As(hwErr, &hf) || sf.Kind != hf.Kind {
						return false
					}
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWalkCostJustifiesTLBMissConstant derives the CPU preset's flat
// TLB-miss charge from the real walk: three PTE reads at DRAM latency.
func TestWalkCostJustifiesTLBMissConstant(t *testing.T) {
	mem := phys.New(1 << 20)
	as := NewAddressSpace(1, 8192)
	as.Map(0x10000, 0x40000, Read|Write)
	tbl, err := Materialize(as, mem, bumpAlloc(mem, 0x80000))
	if err != nil {
		t.Fatal(err)
	}
	_, reads, err := tbl.Walk(0x10000, AccessLoad)
	if err != nil {
		t.Fatal(err)
	}
	walkCycles := int64(reads) * DRAMReadCycles
	const presetTLBMissCycles = 40 // machine.Alpha3000TC's cpu.Config value
	if diff := walkCycles - presetTLBMissCycles; diff < -4 || diff > 4 {
		t.Fatalf("real walk costs %d cycles; the preset charges %d — constants diverged",
			walkCycles, presetTLBMissCycles)
	}
}

func TestMaterializeRejectsOddPageSize(t *testing.T) {
	mem := phys.New(1 << 20)
	as := NewAddressSpace(1, 4096)
	if _, err := Materialize(as, mem, bumpAlloc(mem, 0x80000)); err == nil {
		t.Fatal("4 KiB page size accepted by the 8 KiB walker")
	}
}

func TestMaterializeAllocFailure(t *testing.T) {
	mem := phys.New(1 << 20)
	as := NewAddressSpace(1, 8192)
	as.Map(0x10000, 0x40000, Read)
	fails := func() (phys.Addr, error) { return 0, errors.New("no frames") }
	if _, err := Materialize(as, mem, fails); err == nil {
		t.Fatal("allocator failure swallowed")
	}
}

func TestMaterializeRejectsOutOfSpanVA(t *testing.T) {
	mem := phys.New(1 << 20)
	as := NewAddressSpace(1, 8192)
	as.Map(VAddr(1)<<walkVABits, 0x40000, Read)
	if _, err := Materialize(as, mem, bumpAlloc(mem, 0x80000)); err == nil {
		t.Fatal("out-of-span mapping accepted")
	}
}
