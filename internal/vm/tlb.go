package vm

import (
	"fmt"

	"uldma/internal/phys"
)

// TLB is a small fully-associative translation look-aside buffer with LRU
// replacement. Entries are tagged by (ASID, VPN) — like the Alpha's
// address-space numbers — so a context switch does not require a flush,
// though Flush is provided for machines configured without ASN tagging.
//
// The TLB exists in the model because translation cost is part of the
// paper's argument: the kernel-level DMA path pays a software
// virtual_to_physical per argument, while user-level paths reuse TLB
// entries the shadow mappings installed once at setup time.
type TLB struct {
	entries []tlbEntry
	tick    uint64
	stats   TLBStats
	// last is the index of the most recently hit or filled entry: a
	// one-entry L0 in front of the associative scan. Guest code streams
	// through buffers page by page, so the vast majority of lookups hit
	// the same entry as their predecessor; checking it first turns the
	// common case from an O(entries) scan into one tag compare. The
	// index is only a hint — every use re-validates the full
	// (asid, vpn, gen) tag, so stale hints are harmless.
	last int
}

type tlbEntry struct {
	asid  int
	vpn   uint64
	gen   uint64 // address-space generation when cached
	pte   PTE
	used  uint64 // LRU timestamp
	valid bool
}

// TLBStats counts hit/miss traffic.
type TLBStats struct {
	Hits   uint64
	Misses uint64
}

// NewTLB creates a TLB with the given number of entries (the 21064 had a
// 32-entry data TLB; the presets follow it).
func NewTLB(size int) *TLB {
	if size < 1 {
		panic(fmt.Sprintf("vm: TLB size %d", size))
	}
	return &TLB{entries: make([]tlbEntry, size)}
}

// Stats returns a snapshot of the counters.
func (t *TLB) Stats() TLBStats { return t.stats }

// ResetStats zeroes the counters.
func (t *TLB) ResetStats() { t.stats = TLBStats{} }

// Flush invalidates every entry.
func (t *TLB) Flush() {
	for i := range t.entries {
		t.entries[i].valid = false
	}
}

// FlushASID invalidates entries belonging to one address space.
func (t *TLB) FlushASID(asid int) {
	for i := range t.entries {
		if t.entries[i].asid == asid {
			t.entries[i].valid = false
		}
	}
}

// Translate resolves va in as, filling from the page table on a miss.
// hit reports whether the translation was served from the TLB; the CPU
// charges its page-table-walk cost when hit is false. Protection is
// checked on every access (rights live in the PTE, cached or not).
func (t *TLB) Translate(as *AddressSpace, va VAddr, access Access) (pa phys.Addr, hit bool, err error) {
	t.tick++
	vpn := uint64(va) / as.PageSize()
	// L0 fast path: re-check the last entry used before scanning. The
	// outcome (entry found, stats, LRU stamp) is identical to the scan
	// finding the same entry — at most one entry can carry a given
	// (asid, vpn, gen) tag, because fills happen only on misses.
	if e := &t.entries[t.last]; e.valid && e.vpn == vpn && e.asid == as.ASID() && e.gen == as.Generation() {
		if !e.pte.Prot.Can(access.Need()) {
			return 0, true, &Fault{VA: va, Access: access, Kind: FaultProtection, ASID: as.ASID()}
		}
		e.used = t.tick
		t.stats.Hits++
		return e.pte.Frame + phys.Addr(uint64(va)%as.PageSize()), true, nil
	}
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.asid == as.ASID() && e.vpn == vpn && e.gen == as.Generation() {
			if !e.pte.Prot.Can(access.Need()) {
				return 0, true, &Fault{VA: va, Access: access, Kind: FaultProtection, ASID: as.ASID()}
			}
			e.used = t.tick
			t.stats.Hits++
			t.last = i
			return e.pte.Frame + phys.Addr(uint64(va)%as.PageSize()), true, nil
		}
	}
	// Miss: walk the page table.
	t.stats.Misses++
	pte, ok := as.Lookup(va)
	if !ok {
		return 0, false, &Fault{VA: va, Access: access, Kind: FaultUnmapped, ASID: as.ASID()}
	}
	t.insert(as, vpn, pte)
	if !pte.Prot.Can(access.Need()) {
		return 0, false, &Fault{VA: va, Access: access, Kind: FaultProtection, ASID: as.ASID()}
	}
	return pte.Frame + phys.Addr(uint64(va)%as.PageSize()), false, nil
}

func (t *TLB) insert(as *AddressSpace, vpn uint64, pte PTE) {
	victim := 0
	oldest := ^uint64(0)
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			victim = i
			break
		}
		if e.used < oldest {
			oldest = e.used
			victim = i
		}
	}
	t.entries[victim] = tlbEntry{
		asid: as.ASID(), vpn: vpn, gen: as.Generation(),
		pte: pte, used: t.tick, valid: true,
	}
	t.last = victim
}
