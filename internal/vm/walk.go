package vm

import (
	"fmt"

	"uldma/internal/phys"
)

// Memory-resident page tables. The AddressSpace map is the
// architectural source of truth the simulator executes against; this
// file provides the hardware view of the same mappings — an Alpha-style
// three-level page table materialized into simulated physical memory,
// with a walker that performs real PTE reads.
//
// Its role in the model is calibration evidence: the CPU charges a flat
// TLBMissCycles per miss, and TestWalkCostJustifiesTLBMissConstant
// derives that constant from an actual walk (3 PTE reads at DRAM
// latency) instead of leaving it a magic number. The kernel also uses
// it (Kernel.MaterializeTable) so tools can inspect page tables the way
// a debugger would.

// Page-table geometry for 8 KiB pages: each level holds 1024 eight-byte
// entries (exactly one page per table), and three levels cover a 43-bit
// virtual address space — enough for the kernel's shadow and atomic
// windows at 2^32…2^36.
const (
	walkLevels   = 3
	walkIndexLen = 10 // bits per level
	walkPageBits = 13 // 8 KiB pages
	walkVABits   = walkLevels*walkIndexLen + walkPageBits
)

// PTE encoding in the materialized table.
const (
	pteValid = 1 << 0
	pteRead  = 1 << 1
	pteWrite = 1 << 2
	// The frame number occupies the bits above the page offset.
)

// DRAMReadCycles is the modelled latency of one memory read that misses
// the caches — what each level of a page-table walk costs. Three levels
// at this latency reproduce (within one cycle) the CPU preset's
// TLBMissCycles constant.
const DRAMReadCycles = 13

// FrameAlloc hands out zeroed page frames for table nodes (the kernel's
// physical allocator implements it).
type FrameAlloc func() (phys.Addr, error)

// MaterializedTable is an address space's mappings encoded as a
// three-level table in physical memory.
type MaterializedTable struct {
	mem  *phys.Memory
	root phys.Addr
}

// Root returns the physical address of the level-1 table (what the
// hardware's page-table base register would hold).
func (t *MaterializedTable) Root() phys.Addr { return t.root }

// Materialize encodes every mapping of as into freshly allocated table
// pages in mem. The encoding is a snapshot: remapping the AddressSpace
// afterwards does not update it (the kernel re-materializes, the way a
// real kernel edits PTEs).
func Materialize(as *AddressSpace, mem *phys.Memory, alloc FrameAlloc) (*MaterializedTable, error) {
	if as.PageSize() != 1<<walkPageBits {
		return nil, fmt.Errorf("vm: materialize supports %d-byte pages, address space has %d",
			1<<walkPageBits, as.PageSize())
	}
	root, err := alloc()
	if err != nil {
		return nil, err
	}
	t := &MaterializedTable{mem: mem, root: root}
	for vpn, pte := range as.pages {
		va := VAddr(vpn * as.PageSize())
		if uint64(va) >= 1<<walkVABits {
			return nil, fmt.Errorf("vm: virtual address %v exceeds the %d-bit walked space", va, walkVABits)
		}
		if err := t.insert(va, pte, alloc); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func walkIndices(va VAddr) [walkLevels]uint64 {
	var idx [walkLevels]uint64
	v := uint64(va) >> walkPageBits
	for level := walkLevels - 1; level >= 0; level-- {
		idx[level] = v & (1<<walkIndexLen - 1)
		v >>= walkIndexLen
	}
	return idx
}

func (t *MaterializedTable) insert(va VAddr, pte PTE, alloc FrameAlloc) error {
	idx := walkIndices(va)
	node := t.root
	for level := 0; level < walkLevels-1; level++ {
		slot := node + phys.Addr(idx[level]*8)
		entry, err := t.mem.Read(slot, phys.Size64)
		if err != nil {
			return err
		}
		if entry&pteValid == 0 {
			next, err := alloc()
			if err != nil {
				return err
			}
			entry = uint64(next) | pteValid
			if err := t.mem.Write(slot, phys.Size64, entry); err != nil {
				return err
			}
		}
		node = phys.Addr(entry &^ uint64(1<<walkPageBits-1))
	}
	leaf := node + phys.Addr(idx[walkLevels-1]*8)
	encoded := uint64(pte.Frame) | pteValid
	if pte.Prot.Can(Read) {
		encoded |= pteRead
	}
	if pte.Prot.Can(Write) {
		encoded |= pteWrite
	}
	return t.mem.Write(leaf, phys.Size64, encoded)
}

// Walk resolves va through the materialized table with real memory
// reads, returning the physical address and the number of PTE reads
// performed (multiply by DRAMReadCycles for the time cost). Faults
// carry the same classification the software path produces.
func (t *MaterializedTable) Walk(va VAddr, access Access) (pa phys.Addr, reads int, err error) {
	if uint64(va) >= 1<<walkVABits {
		return 0, 0, &Fault{VA: va, Access: access, Kind: FaultUnmapped}
	}
	idx := walkIndices(va)
	node := t.root
	for level := 0; level < walkLevels; level++ {
		slot := node + phys.Addr(idx[level]*8)
		entry, rerr := t.mem.Read(slot, phys.Size64)
		if rerr != nil {
			return 0, reads, rerr
		}
		reads++
		if entry&pteValid == 0 {
			return 0, reads, &Fault{VA: va, Access: access, Kind: FaultUnmapped}
		}
		if level == walkLevels-1 {
			need := access.Need()
			var prot Prot
			if entry&pteRead != 0 {
				prot |= Read
			}
			if entry&pteWrite != 0 {
				prot |= Write
			}
			if !prot.Can(need) {
				return 0, reads, &Fault{VA: va, Access: access, Kind: FaultProtection}
			}
			frame := phys.Addr(entry &^ uint64(1<<walkPageBits-1) &^ uint64(pteValid|pteRead|pteWrite))
			return frame + phys.Addr(uint64(va)&(1<<walkPageBits-1)), reads, nil
		}
		node = phys.Addr(entry &^ uint64(1<<walkPageBits-1))
	}
	panic("vm: unreachable walk state")
}
