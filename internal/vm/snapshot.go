package vm

// World snapshot/restore support. A machine snapshot (internal/machine)
// captures the MMU state so measurement harnesses can rewind a warmed
// world instead of rebuilding it: the TLB's entry array (including LRU
// stamps, so replacement decisions replay identically) and, for the
// in-place restore path, the page tables of address spaces that existed
// at snapshot time.

import "fmt"

// ASSnapshot captures one address space's page table. See
// AddressSpace.Snapshot.
type ASSnapshot struct {
	asid     int
	pageSize uint64
	pages    map[uint64]PTE
	gen      uint64
}

// Snapshot captures the page table and generation counter.
func (as *AddressSpace) Snapshot() *ASSnapshot {
	pages := make(map[uint64]PTE, len(as.pages))
	for k, v := range as.pages {
		pages[k] = v
	}
	return &ASSnapshot{asid: as.asid, pageSize: as.pageSize, pages: pages, gen: as.gen}
}

// Restore rewinds the page table and generation counter to the
// snapshot. It must be paired with a TLB restore taken at the same
// instant: rewinding the generation counter alone could make TLB
// entries cached after the snapshot look current again.
func (as *AddressSpace) Restore(s *ASSnapshot) error {
	if s.asid != as.asid || s.pageSize != as.pageSize {
		return fmt.Errorf("vm: restore: snapshot is from address space %d (page size %d), not %d (%d)",
			s.asid, s.pageSize, as.asid, as.pageSize)
	}
	for k := range as.pages {
		delete(as.pages, k)
	}
	for k, v := range s.pages {
		as.pages[k] = v
	}
	as.gen = s.gen
	return nil
}

// TLBSnapshot captures a TLB's complete state. See TLB.Snapshot.
type TLBSnapshot struct {
	entries []tlbEntry
	tick    uint64
	stats   TLBStats
	last    int
}

// Snapshot captures every entry, the LRU clock and the counters.
func (t *TLB) Snapshot() *TLBSnapshot {
	entries := make([]tlbEntry, len(t.entries))
	copy(entries, t.entries)
	return &TLBSnapshot{entries: entries, tick: t.tick, stats: t.stats, last: t.last}
}

// Restore rewinds the TLB to the snapshot. The snapshot must come from
// a TLB with the same number of entries.
func (t *TLB) Restore(s *TLBSnapshot) error {
	if len(s.entries) != len(t.entries) {
		return fmt.Errorf("vm: restore: snapshot has %d TLB entries, TLB has %d", len(s.entries), len(t.entries))
	}
	copy(t.entries, s.entries)
	t.tick, t.stats, t.last = s.tick, s.stats, s.last
	return nil
}

// StateHash returns an order-insensitive hash of the valid entries'
// structural state — (asid, vpn, gen, frame, prot), deliberately
// excluding the LRU stamps. Two TLBs whose valid translations are
// identical hash equal regardless of which slots hold them. The
// convergence detector (internal/core) folds this into its
// per-iteration fingerprint: in steady state the same entries are
// re-touched every iteration, so the hash delta pins the TLB as a
// fixed point.
func (t *TLB) StateHash() uint64 {
	var h uint64
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			continue
		}
		x := uint64(e.asid)*0x9e3779b97f4a7c15 ^ e.vpn*0xbf58476d1ce4e5b9 ^
			e.gen*0x94d049bb133111eb ^ uint64(e.pte.Frame)*0xd6e8feb86659fd93 ^
			uint64(e.pte.Prot)<<56
		x ^= x >> 29
		x *= 0xff51afd7ed558ccd
		x ^= x >> 32
		h += x // commutative fold: slot order must not matter
	}
	return h
}

// Tick returns the TLB's LRU clock, for the convergence fingerprint
// (its per-iteration delta is constant in steady state).
func (t *TLB) Tick() uint64 { return t.tick }

// StateHash returns an order-insensitive hash of the address space's
// page table — (vpn, frame, prot) per mapping plus the generation
// counter. Map iteration order must not leak into the value, so each
// mapping is finalized independently and commutatively folded, the
// same scheme TLB.StateHash uses. The IOMMU (internal/iommu) hashes
// its per-context device page tables with this for the machine
// fingerprint.
func (as *AddressSpace) StateHash() uint64 {
	h := as.gen * 0x94d049bb133111eb
	for vpn, pte := range as.pages {
		x := uint64(as.asid)*0x9e3779b97f4a7c15 ^ vpn*0xbf58476d1ce4e5b9 ^
			uint64(pte.Frame)*0xd6e8feb86659fd93 ^ uint64(pte.Prot)<<56
		x ^= x >> 29
		x *= 0xff51afd7ed558ccd
		x ^= x >> 32
		h += x // commutative fold: map order must not matter
	}
	return h
}
