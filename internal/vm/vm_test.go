package vm

import (
	"errors"
	"testing"
	"testing/quick"

	"uldma/internal/phys"
)

const pageSize = 8192

func TestProtString(t *testing.T) {
	cases := []struct {
		p    Prot
		want string
	}{
		{0, "--"}, {Read, "r-"}, {Write, "-w"}, {Read | Write, "rw"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("Prot(%d) = %q, want %q", c.p, got, c.want)
		}
	}
}

func TestAccessNeed(t *testing.T) {
	if AccessLoad.Need() != Read || AccessStore.Need() != Write || AccessRMW.Need() != Read|Write {
		t.Fatal("access→prot mapping wrong")
	}
	if AccessLoad.String() != "load" || AccessStore.String() != "store" || AccessRMW.String() != "rmw" {
		t.Fatal("access names wrong")
	}
}

func TestRMWProtection(t *testing.T) {
	as := NewAddressSpace(1, pageSize)
	as.Map(0x10000, 0x40000, Read)
	as.Map(0x18000, 0x48000, Write)
	as.Map(0x20000, 0x50000, Read|Write)
	if _, err := as.Translate(0x10000, AccessRMW); err == nil {
		t.Fatal("RMW on read-only page allowed")
	}
	if _, err := as.Translate(0x18000, AccessRMW); err == nil {
		t.Fatal("RMW on write-only page allowed")
	}
	if _, err := as.Translate(0x20000, AccessRMW); err != nil {
		t.Fatalf("RMW on rw page denied: %v", err)
	}
}

func TestNewAddressSpacePanicsOnBadPageSize(t *testing.T) {
	for _, size := range []uint64{0, 3, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("page size %d accepted", size)
				}
			}()
			NewAddressSpace(1, size)
		}()
	}
}

func TestMapTranslate(t *testing.T) {
	as := NewAddressSpace(1, pageSize)
	if err := as.Map(0x10000, 0x40000, Read|Write); err != nil {
		t.Fatal(err)
	}
	pa, err := as.Translate(0x10008, AccessLoad)
	if err != nil {
		t.Fatal(err)
	}
	if pa != 0x40008 {
		t.Fatalf("translate = %v, want 0x40008", pa)
	}
	pa, err = as.Translate(0x10000+pageSize-8, AccessStore)
	if err != nil {
		t.Fatal(err)
	}
	if pa != 0x40000+pageSize-8 {
		t.Fatalf("end-of-page translate = %v", pa)
	}
}

func TestMapAlignmentErrors(t *testing.T) {
	as := NewAddressSpace(1, pageSize)
	if err := as.Map(0x10004, 0x40000, Read); err == nil {
		t.Fatal("unaligned virtual address accepted")
	}
	if err := as.Map(0x10000, 0x40004, Read); err == nil {
		t.Fatal("unaligned physical address accepted")
	}
}

func TestFaults(t *testing.T) {
	as := NewAddressSpace(3, pageSize)
	if err := as.Map(0x10000, 0x40000, Read); err != nil { // read-only page
		t.Fatal(err)
	}
	_, err := as.Translate(0x90000, AccessLoad)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultUnmapped || f.ASID != 3 {
		t.Fatalf("unmapped translate: %v", err)
	}
	_, err = as.Translate(0x10000, AccessStore)
	if !errors.As(err, &f) || f.Kind != FaultProtection {
		t.Fatalf("store to read-only page: %v", err)
	}
	// Load on the same page is fine.
	if _, err := as.Translate(0x10000, AccessLoad); err != nil {
		t.Fatalf("load on read-only page: %v", err)
	}
}

func TestUnmapAndRemap(t *testing.T) {
	as := NewAddressSpace(1, pageSize)
	as.Map(0x10000, 0x40000, Read|Write)
	g1 := as.Generation()
	as.Unmap(0x10000)
	if as.Generation() == g1 {
		t.Fatal("Unmap did not bump generation")
	}
	if _, err := as.Translate(0x10000, AccessLoad); err == nil {
		t.Fatal("translate succeeded after Unmap")
	}
	as.Map(0x10000, 0x60000, Read)
	pa, err := as.Translate(0x10000, AccessLoad)
	if err != nil || pa != 0x60000 {
		t.Fatalf("remap: pa=%v err=%v", pa, err)
	}
	if as.MappedPages() != 1 {
		t.Fatalf("MappedPages = %d", as.MappedPages())
	}
}

func TestCheckRange(t *testing.T) {
	as := NewAddressSpace(1, pageSize)
	as.Map(0x10000, 0x40000, Read|Write)
	as.Map(0x10000+pageSize, 0x50000, Read) // second page read-only
	if err := as.CheckRange(0x10000, pageSize, AccessStore); err != nil {
		t.Fatalf("single writable page: %v", err)
	}
	if err := as.CheckRange(0x10000, 2*pageSize, AccessLoad); err != nil {
		t.Fatalf("two readable pages: %v", err)
	}
	var f *Fault
	err := as.CheckRange(0x10000, pageSize+1, AccessStore) // spills into RO page
	if !errors.As(err, &f) || f.Kind != FaultProtection {
		t.Fatalf("range spilling into read-only page: %v", err)
	}
	err = as.CheckRange(0x10000, 3*pageSize, AccessLoad) // third page unmapped
	if !errors.As(err, &f) || f.Kind != FaultUnmapped {
		t.Fatalf("range with unmapped page: %v", err)
	}
	if err := as.CheckRange(0x10000, 0, AccessStore); err != nil {
		t.Fatal("zero-length range should pass")
	}
	if err := as.CheckRange(^VAddr(0)-100, 200, AccessLoad); err == nil {
		t.Fatal("wrapping range accepted")
	}
}

func TestPageBase(t *testing.T) {
	as := NewAddressSpace(1, pageSize)
	if got := as.PageBase(0x10000 + 17); got != 0x10000 {
		t.Fatalf("PageBase = %v", got)
	}
}

// --- TLB ---

func TestTLBHitMiss(t *testing.T) {
	as := NewAddressSpace(1, pageSize)
	as.Map(0x10000, 0x40000, Read|Write)
	tlb := NewTLB(4)
	pa, hit, err := tlb.Translate(as, 0x10010, AccessLoad)
	if err != nil || hit || pa != 0x40010 {
		t.Fatalf("first access: pa=%v hit=%v err=%v, want miss 0x40010", pa, hit, err)
	}
	pa, hit, err = tlb.Translate(as, 0x10020, AccessStore)
	if err != nil || !hit || pa != 0x40020 {
		t.Fatalf("second access: pa=%v hit=%v err=%v, want hit 0x40020", pa, hit, err)
	}
	s := tlb.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestTLBProtectionCheckedOnHit(t *testing.T) {
	as := NewAddressSpace(1, pageSize)
	as.Map(0x10000, 0x40000, Read)
	tlb := NewTLB(4)
	if _, _, err := tlb.Translate(as, 0x10000, AccessLoad); err != nil {
		t.Fatal(err)
	}
	_, hit, err := tlb.Translate(as, 0x10000, AccessStore)
	var f *Fault
	if !hit || !errors.As(err, &f) || f.Kind != FaultProtection {
		t.Fatalf("cached entry did not enforce protection: hit=%v err=%v", hit, err)
	}
}

func TestTLBGenerationInvalidation(t *testing.T) {
	as := NewAddressSpace(1, pageSize)
	as.Map(0x10000, 0x40000, Read|Write)
	tlb := NewTLB(4)
	tlb.Translate(as, 0x10000, AccessLoad)
	as.Map(0x10000, 0x70000, Read|Write) // kernel remaps the page
	pa, hit, err := tlb.Translate(as, 0x10000, AccessLoad)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("stale TLB entry served after remap")
	}
	if pa != 0x70000 {
		t.Fatalf("post-remap pa = %v, want 0x70000", pa)
	}
}

func TestTLBASIDTagging(t *testing.T) {
	as1 := NewAddressSpace(1, pageSize)
	as2 := NewAddressSpace(2, pageSize)
	as1.Map(0x10000, 0x40000, Read|Write)
	as2.Map(0x10000, 0x80000, Read|Write)
	tlb := NewTLB(8)
	tlb.Translate(as1, 0x10000, AccessLoad)
	pa, hit, err := tlb.Translate(as2, 0x10000, AccessLoad)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("TLB entry leaked across address spaces")
	}
	if pa != 0x80000 {
		t.Fatalf("as2 pa = %v, want 0x80000", pa)
	}
	// Both now cached under their own ASIDs.
	if _, hit, _ := tlb.Translate(as1, 0x10000, AccessLoad); !hit {
		t.Fatal("as1 entry evicted unexpectedly")
	}
	if _, hit, _ := tlb.Translate(as2, 0x10000, AccessLoad); !hit {
		t.Fatal("as2 entry evicted unexpectedly")
	}
}

func TestTLBLRUEviction(t *testing.T) {
	as := NewAddressSpace(1, pageSize)
	for i := 0; i < 3; i++ {
		as.Map(VAddr(i)*pageSize, phys.Addr(0x100000+i*pageSize), Read)
	}
	tlb := NewTLB(2)
	tlb.Translate(as, 0, AccessLoad)              // miss, cache page 0
	tlb.Translate(as, pageSize, AccessLoad)       // miss, cache page 1
	tlb.Translate(as, 0, AccessLoad)              // hit page 0 (now MRU)
	tlb.Translate(as, 2*pageSize, AccessLoad)     // miss, evicts LRU = page 1
	_, hit, _ := tlb.Translate(as, 0, AccessLoad) // page 0 must survive
	if !hit {
		t.Fatal("MRU entry was evicted")
	}
	_, hit, _ = tlb.Translate(as, pageSize, AccessLoad)
	if hit {
		t.Fatal("LRU entry was not evicted")
	}
}

func TestTLBFlush(t *testing.T) {
	as := NewAddressSpace(5, pageSize)
	as.Map(0, 0x40000, Read)
	tlb := NewTLB(4)
	tlb.Translate(as, 0, AccessLoad)
	tlb.Flush()
	if _, hit, _ := tlb.Translate(as, 0, AccessLoad); hit {
		t.Fatal("entry survived Flush")
	}
	tlb.FlushASID(5)
	if _, hit, _ := tlb.Translate(as, 0, AccessLoad); hit {
		t.Fatal("entry survived FlushASID")
	}
	tlb.FlushASID(6) // other ASID: no effect
	if _, hit, _ := tlb.Translate(as, 0, AccessLoad); !hit {
		t.Fatal("FlushASID of another space removed our entry")
	}
	tlb.ResetStats()
	if tlb.Stats() != (TLBStats{}) {
		t.Fatal("ResetStats did not zero")
	}
}

func TestTLBUnmappedMiss(t *testing.T) {
	as := NewAddressSpace(1, pageSize)
	tlb := NewTLB(4)
	_, _, err := tlb.Translate(as, 0x123456, AccessLoad)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultUnmapped {
		t.Fatalf("unmapped TLB translate: %v", err)
	}
}

func TestTLBSizePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTLB(0) did not panic")
		}
	}()
	NewTLB(0)
}

// Property: CheckRange(va, n, access) succeeds exactly when every byte
// of the range translates with that access.
func TestCheckRangeMatchesPerByteProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, vaRaw uint32, nRaw uint16) bool {
		as := NewAddressSpace(1, pageSize)
		// Map 6 pages with varied prots around a small region.
		for i := uint64(0); i < 6; i++ {
			if seed>>(i*2)&3 == 0 {
				continue // leave a hole
			}
			as.Map(VAddr(i*pageSize), phys.Addr(0x100000+i*pageSize), Prot(seed>>(i*2))&3)
		}
		va := VAddr(uint64(vaRaw) % (7 * pageSize))
		n := uint64(nRaw) % (3 * pageSize)
		for _, acc := range []Access{AccessLoad, AccessStore} {
			rangeOK := as.CheckRange(va, n, acc) == nil
			perByte := true
			// Sampling at page granularity is exact: rights are per page.
			for off := uint64(0); off < n; off += pageSize {
				if _, err := as.Translate(va+VAddr(off), acc); err != nil {
					perByte = false
					break
				}
			}
			if n > 0 {
				if _, err := as.Translate(va+VAddr(n-1), acc); err != nil {
					perByte = false
				}
			}
			if rangeOK != perByte {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 400})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: TLB translation always agrees with the page-table walk, for
// random mapping layouts and access sequences.
func TestTLBMatchesPageTableProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, accesses []uint16) bool {
		as := NewAddressSpace(1, pageSize)
		// Map 8 pages with pseudo-random prots derived from the seed.
		for i := uint64(0); i < 8; i++ {
			prot := Prot((seed>>i)&1) | Prot(((seed>>(i+8))&1)<<1)
			as.Map(VAddr(i*pageSize), phys.Addr(0x100000+i*pageSize), prot)
		}
		tlb := NewTLB(3) // smaller than working set: exercises eviction
		for _, a := range accesses {
			va := VAddr(uint64(a) % (10 * pageSize)) // some beyond mapped area
			acc := Access(a % 2)
			pa1, err1 := as.Translate(va, acc)
			pa2, _, err2 := tlb.Translate(as, va, acc)
			if (err1 == nil) != (err2 == nil) {
				return false
			}
			if err1 == nil && pa1 != pa2 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}
