package vm

import (
	"testing"

	"uldma/internal/phys"
)

// TLB lookups sit on every simulated load/store. The fast path — the
// one-entry index hint for repeated touches of the same page — must be
// alloc-free and cheaper than the associative scan it short-circuits.

func benchSpace(b *testing.B, pages int) (*AddressSpace, *TLB) {
	b.Helper()
	as := NewAddressSpace(1, 8192)
	for i := 0; i < pages; i++ {
		va := VAddr(0x10000 + uint64(i)*8192)
		pa := phys.Addr(0x40000 + uint64(i)*8192)
		if err := as.Map(va, pa, Read|Write); err != nil {
			b.Fatal(err)
		}
	}
	return as, NewTLB(32)
}

// BenchmarkTLBTranslateSamePage: every access after the first hits the
// one-entry fast path.
func BenchmarkTLBTranslateSamePage(b *testing.B) {
	as, tlb := benchSpace(b, 1)
	if _, _, err := tlb.Translate(as, 0x10008, AccessLoad); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tlb.Translate(as, 0x10008, AccessLoad); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTLBTranslateAlternate: two pages ping-pong, so the index
// hint misses every time and the associative scan runs.
func BenchmarkTLBTranslateAlternate(b *testing.B) {
	as, tlb := benchSpace(b, 2)
	vas := []VAddr{0x10008, 0x10000 + 8192 + 8}
	for _, va := range vas {
		if _, _, err := tlb.Translate(as, va, AccessLoad); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tlb.Translate(as, vas[i&1], AccessLoad); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTLBTranslateMiss: 64 pages round-robin through a 32-entry
// TLB, so every access misses, refills and evicts.
func BenchmarkTLBTranslateMiss(b *testing.B) {
	as, tlb := benchSpace(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := VAddr(0x10000 + uint64(i%64)*8192)
		if _, _, err := tlb.Translate(as, va, AccessLoad); err != nil {
			b.Fatal(err)
		}
	}
}
