// Package vm models the virtual memory system: per-process address
// spaces backed by page tables, protection bits, and a TLB.
//
// Virtual memory is the protection mechanism every user-level DMA scheme
// in the paper leans on. The operating system maps two kinds of pages
// for a communicating process:
//
//   - ordinary pages, whose page-table entries point at main-memory
//     frames; and
//   - shadow pages, whose entries point into the DMA engine's shadow
//     physical window, with the target's physical frame number (and, for
//     extended shadow addressing, the register-context id) embedded in
//     the physical address by the kernel at map time.
//
// Because only the kernel writes page tables, a user process can only
// ever emit shadow physical addresses for frames it was granted — that
// is the whole protection story, and it needs no kernel involvement per
// transfer.
package vm

import (
	"fmt"

	"uldma/internal/phys"
)

// VAddr is a virtual byte address.
type VAddr uint64

// String formats the address in hex.
func (a VAddr) String() string { return fmt.Sprintf("%#x", uint64(a)) }

// Prot is a page protection bit set.
type Prot uint8

// Protection bits.
const (
	Read  Prot = 1 << iota // page may be loaded from
	Write                  // page may be stored to
)

// Can reports whether p grants every bit in need.
func (p Prot) Can(need Prot) bool { return p&need == need }

// String renders the bit set like "rw", "r-", "--".
func (p Prot) String() string {
	b := []byte("--")
	if p.Can(Read) {
		b[0] = 'r'
	}
	if p.Can(Write) {
		b[1] = 'w'
	}
	return string(b)
}

// Access is the kind of memory access being attempted, for protection
// checks and fault reporting.
type Access uint8

// Access kinds.
const (
	AccessLoad Access = iota
	AccessStore
	// AccessRMW is an atomic read-modify-write: it needs both read and
	// write rights on the page.
	AccessRMW
)

// Need returns the protection bits the access requires.
func (a Access) Need() Prot {
	switch a {
	case AccessStore:
		return Write
	case AccessRMW:
		return Read | Write
	default:
		return Read
	}
}

// String names the access kind.
func (a Access) String() string {
	switch a {
	case AccessStore:
		return "store"
	case AccessRMW:
		return "rmw"
	default:
		return "load"
	}
}

// FaultKind classifies translation failures.
type FaultKind uint8

// Fault kinds.
const (
	FaultUnmapped   FaultKind = iota // no page-table entry
	FaultProtection                  // entry exists, rights insufficient
	FaultAlignment                   // access not naturally aligned
)

func (k FaultKind) String() string {
	switch k {
	case FaultUnmapped:
		return "unmapped"
	case FaultProtection:
		return "protection"
	default:
		return "alignment"
	}
}

// Fault is the error returned for a failed translation. The kernel's DMA
// syscall surfaces these to the caller; in user mode they would be
// delivered as signals — the simulator terminates the offending process
// instead, which is all the experiments need.
type Fault struct {
	VA     VAddr
	Access Access
	Kind   FaultKind
	ASID   int
}

func (f *Fault) Error() string {
	return fmt.Sprintf("vm: %s fault (%s) at %v in address space %d", f.Kind, f.Access, f.VA, f.ASID)
}

// PTE is a page-table entry: the physical base of the page plus its
// protection. Frame may point into main memory or into a device window
// (that is how shadow pages work).
type PTE struct {
	Frame phys.Addr
	Prot  Prot
}

// AddressSpace is one process's page table. It is sparse: only mapped
// pages are stored. Not safe for concurrent use (the simulator is
// single-threaded).
type AddressSpace struct {
	asid     int
	pageSize uint64
	pages    map[uint64]PTE
	gen      uint64 // bumped on every Map/Unmap so TLB entries self-invalidate
}

// NewAddressSpace creates an empty address space. pageSize must be a
// power of two (the presets use 8 KiB, the Alpha 21064 page size).
func NewAddressSpace(asid int, pageSize uint64) *AddressSpace {
	if pageSize == 0 || pageSize&(pageSize-1) != 0 {
		panic(fmt.Sprintf("vm: page size %d is not a power of two", pageSize))
	}
	return &AddressSpace{asid: asid, pageSize: pageSize, pages: make(map[uint64]PTE)}
}

// ASID returns the address-space identifier (the Alpha's ASN).
func (as *AddressSpace) ASID() int { return as.asid }

// PageSize returns the page size in bytes.
func (as *AddressSpace) PageSize() uint64 { return as.pageSize }

// Generation returns the mapping-change counter; the TLB uses it to
// detect stale cached entries.
func (as *AddressSpace) Generation() uint64 { return as.gen }

func (as *AddressSpace) vpn(va VAddr) uint64    { return uint64(va) / as.pageSize }
func (as *AddressSpace) offset(va VAddr) uint64 { return uint64(va) % as.pageSize }

// PageBase returns the base virtual address of the page containing va.
func (as *AddressSpace) PageBase(va VAddr) VAddr {
	return VAddr(uint64(va) &^ (as.pageSize - 1))
}

// Map installs a translation for the page containing va to the physical
// page at pa. Both must be page-aligned. Remapping an existing page
// replaces it (and invalidates TLB copies via the generation counter).
func (as *AddressSpace) Map(va VAddr, pa phys.Addr, prot Prot) error {
	if as.offset(va) != 0 {
		return fmt.Errorf("vm: Map: virtual address %v not page-aligned", va)
	}
	if uint64(pa)%as.pageSize != 0 {
		return fmt.Errorf("vm: Map: physical address %v not page-aligned", pa)
	}
	as.pages[as.vpn(va)] = PTE{Frame: pa, Prot: prot}
	as.gen++
	return nil
}

// Unmap removes the translation for the page containing va, if any.
func (as *AddressSpace) Unmap(va VAddr) {
	delete(as.pages, as.vpn(va))
	as.gen++
}

// Lookup returns the PTE for the page containing va without protection
// checks. ok is false if the page is unmapped.
func (as *AddressSpace) Lookup(va VAddr) (PTE, bool) {
	pte, ok := as.pages[as.vpn(va)]
	return pte, ok
}

// MappedPages returns the number of mapped pages.
func (as *AddressSpace) MappedPages() int { return len(as.pages) }

// Translate performs a full software page-table walk with protection
// check: this is the virtual_to_physical routine of Figure 1 when called
// by the kernel, and the reference the TLB is checked against.
func (as *AddressSpace) Translate(va VAddr, access Access) (phys.Addr, error) {
	pte, ok := as.pages[as.vpn(va)]
	if !ok {
		return 0, &Fault{VA: va, Access: access, Kind: FaultUnmapped, ASID: as.asid}
	}
	if !pte.Prot.Can(access.Need()) {
		return 0, &Fault{VA: va, Access: access, Kind: FaultProtection, ASID: as.asid}
	}
	return pte.Frame + phys.Addr(as.offset(va)), nil
}

// CheckRange verifies that every page overlapping [va, va+n) is mapped
// with the rights access needs. This is the kernel's check_size step
// from Figure 1: the whole transfer range is validated before a DMA is
// started on the user's behalf.
func (as *AddressSpace) CheckRange(va VAddr, n uint64, access Access) error {
	if n == 0 {
		return nil
	}
	first := as.vpn(va)
	last := as.vpn(va + VAddr(n-1))
	if last < first { // wrapped the virtual address space
		return &Fault{VA: va, Access: access, Kind: FaultUnmapped, ASID: as.asid}
	}
	for p := first; p <= last; p++ {
		pte, ok := as.pages[p]
		if !ok {
			return &Fault{VA: VAddr(p * as.pageSize), Access: access, Kind: FaultUnmapped, ASID: as.asid}
		}
		if !pte.Prot.Can(access.Need()) {
			return &Fault{VA: VAddr(p * as.pageSize), Access: access, Kind: FaultProtection, ASID: as.asid}
		}
	}
	return nil
}
