package userdma

// Measurement harnesses for the virtual-address DMA plane (the vasweep
// and paging experiments in internal/exp).
//
// MeasureVAMethod is §3.4's methodology run through the IOMMU: the same
// zero-length initiation loop as MeasureMethod, but every data page is
// wired with Kernel.MapIOAS, so the process's shadow aliases point at
// the engine's VA window and every protocol store carries a device
// VIRTUAL address the engine translates at walk time. Because
// initiation only passes arguments (translation is deferred to the
// walk), the user-level instruction sequences are unchanged — the
// experiment's claim is that Table 1's ordering survives the IOMMU.
//
// MeasureIOTLB streams full-page payloads over a working set of device
// pages against a fixed-size IOTLB — the hit-rate sweep.
//
// PagingBench oversubscribes the kernel pager's residency budget and
// scores the three mid-transfer fault recovery policies (stall-and-
// resolve, bounce-buffer, kernel-assisted pin) by goodput and
// tail latency.

import (
	"fmt"

	"uldma/internal/dma"
	"uldma/internal/machine"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/stats"
	"uldma/internal/vm"
)

// VAConfigFor returns the method's calibrated preset with the
// virtual-address DMA plane enabled. tlbEntries <= 0 keeps the IOMMU's
// default IOTLB size.
func VAConfigFor(m Method, tlbEntries int) machine.Config {
	cfg := machine.EnableVirtualDMA(ConfigFor(m))
	if tlbEntries > 0 {
		cfg.IOTLBEntries = tlbEntries
	}
	return cfg
}

// SetupVAPages is SetupPages' virtual-address twin: it allocates n data
// pages at base in p's address space and wires each for IOMMU-translated
// initiation on register context ctx (MapIOAS) instead of creating
// physical shadow aliases.
func SetupVAPages(m *machine.Machine, p *proc.Process, ctx int, base vm.VAddr, n int, prot vm.Prot) ([]phys.Addr, error) {
	frames := make([]phys.Addr, 0, n)
	ps := vm.VAddr(m.Cfg.PageSize)
	for i := 0; i < n; i++ {
		va := base + vm.VAddr(i)*ps
		frame, err := m.Kernel.AllocPage(p.AddressSpace(), va, prot)
		if err != nil {
			return nil, err
		}
		if err := m.Kernel.MapIOAS(p.AddressSpace(), ctx, va); err != nil {
			return nil, err
		}
		frames = append(frames, frame)
	}
	return frames, nil
}

// MeasureVAMethod runs iters IOMMU-translated initiations of method on
// a fresh machine built from cfg (use VAConfigFor) and returns the
// timing summary — MeasureMethod's loop, §3.4 methodology included,
// with the data pages wired through the IOMMU.
func MeasureVAMethod(method Method, cfg machine.Config, iters int) (InitiationResult, error) {
	m, err := machine.New(cfg)
	if err != nil {
		return InitiationResult{}, err
	}
	if m.IOMMU == nil {
		return InitiationResult{}, fmt.Errorf("userdma: MeasureVAMethod: config has no IOMMU (use VAConfigFor)")
	}
	res := InitiationResult{
		Method:     method.Name(),
		Iterations: iters,
		PaperMean:  PaperTable1[method.Name()],
	}
	var sample stats.Sample

	var h *Handle
	const srcBase, dstBase = vm.VAddr(0x10000), vm.VAddr(0x20000)
	p := m.NewProcess("vabench", func(c *proc.Context) error {
		if _, err := h.DMA(c, srcBase, dstBase, 0); err != nil {
			return err
		}
		var conv convergence
		for i := 0; i < iters; i++ {
			off := vm.VAddr((i % 64) * 16)
			start := m.Clock.Now()
			st, err := h.DMA(c, srcBase+off, dstBase+off, 0)
			if err != nil {
				return err
			}
			dur := m.Clock.Now() - start
			sample.Add(dur)
			if st == dma.StatusFailure {
				return fmt.Errorf("userdma: iteration %d refused", i)
			}
			// Zero-length initiations never walk (translation is a walk-
			// time cost), so the IOTLB words in the engine's hash stay
			// constant and the steady-state fast-forward still engages.
			if fastForward && conv.observe(m.Fingerprint()) {
				ffEngagements.Add(1)
				remaining := iters - 1 - i
				for r := 0; r < remaining; r++ {
					sample.Add(dur)
				}
				m.Clock.AdvanceTo(m.Clock.Now() + conv.clockDelta()*sim.Time(remaining))
				break
			}
		}
		return nil
	})
	h, err = method.Attach(m, p)
	if err != nil {
		return res, err
	}
	if _, err := SetupVAPages(m, p, h.Context(), srcBase, 1, vm.Read|vm.Write); err != nil {
		return res, err
	}
	if _, err := SetupVAPages(m, p, h.Context(), dstBase, 1, vm.Read|vm.Write); err != nil {
		return res, err
	}
	if err := m.Run(proc.NewRoundRobin(1<<20), 1<<30); err != nil {
		return res, err
	}
	if p.Err() != nil {
		return res, p.Err()
	}
	res.Mean, res.Min, res.Max = sample.Mean(), sample.Min(), sample.Max()
	return res, nil
}

// VACompareRow is one Table 1 row measured both ways: through the
// physical shadow window (the paper's numbers) and through the IOMMU's
// VA window.
type VACompareRow struct {
	Method     string
	Iterations int
	ShadowMean sim.Time // physical shadow-window initiation
	VAMean     sim.Time // IOMMU-translated initiation
	PaperMean  sim.Time
}

// VATable1 measures the paper's four rows shadow- and VA-initiated, in
// the paper's order — the "does Table 1's ordering survive the IOMMU"
// half of the vasweep experiment.
func VATable1(iters int) ([]VACompareRow, error) {
	var out []VACompareRow
	for _, method := range Methods() {
		sh, err := MeasureMethod(method, ConfigFor(method), iters)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", method.Name(), err)
		}
		va, err := MeasureVAMethod(method, VAConfigFor(method, 0), iters)
		if err != nil {
			return nil, fmt.Errorf("%s (va): %w", method.Name(), err)
		}
		out = append(out, VACompareRow{
			Method:     method.Name(),
			Iterations: iters,
			ShadowMean: sh.Mean,
			VAMean:     va.Mean,
			PaperMean:  sh.PaperMean,
		})
	}
	return out, nil
}

// IOTLBPoint is one (pages, tlbEntries) cell of the vasweep hit-rate
// sweep.
type IOTLBPoint struct {
	Pages       int // device-page working set the transfers cycle over
	TLBEntries  int
	Transfers   int
	Hits        uint64
	Misses      uint64
	HitRate     float64  // hits / (hits + misses)
	PerTransfer sim.Time // mean initiate-to-delivered latency
	Fingerprint uint64
}

// MeasureIOTLB streams transfers full-page payloads cyclically over a
// working set of pages source pages against a tlbEntries-entry IOTLB
// and reports the translation hit rate. Cycling is LRU's worst case, so
// the hit rate collapses once the working set outgrows the IOTLB — the
// knee the sweep is after.
func MeasureIOTLB(pages, tlbEntries, transfers int) (IOTLBPoint, error) {
	method := ExtShadow{}
	cfg := VAConfigFor(method, tlbEntries)
	m, err := machine.New(cfg)
	if err != nil {
		return IOTLBPoint{}, err
	}
	res := IOTLBPoint{Pages: pages, TLBEntries: tlbEntries, Transfers: transfers}

	ps := vm.VAddr(cfg.PageSize)
	const srcBase, dstBase = vm.VAddr(0x100000), vm.VAddr(0x80000)
	var h *Handle
	var sample stats.Sample
	p := m.NewProcess("iotlb", func(c *proc.Context) error {
		for i := 0; i < transfers; i++ {
			src := srcBase + vm.VAddr(i%pages)*ps
			start := m.Clock.Now()
			st, err := h.DMA(c, src, dstBase, uint64(cfg.PageSize))
			if err != nil {
				return err
			}
			if st == dma.StatusFailure {
				return fmt.Errorf("userdma: transfer %d refused", i)
			}
			// Wait for real delivery (the IOTLB penalty lands on the
			// walk, not the initiation), so PerTransfer includes it.
			if err := h.Wait(c, 1<<20); err != nil {
				return err
			}
			sample.Add(m.Clock.Now() - start)
		}
		return nil
	})
	h, err = method.Attach(m, p)
	if err != nil {
		return res, err
	}
	if _, err := SetupVAPages(m, p, h.Context(), srcBase, pages, vm.Read|vm.Write); err != nil {
		return res, err
	}
	if _, err := SetupVAPages(m, p, h.Context(), dstBase, 1, vm.Read|vm.Write); err != nil {
		return res, err
	}
	if err := m.Run(proc.NewRoundRobin(1<<20), 1<<32); err != nil {
		return res, err
	}
	if p.Err() != nil {
		return res, p.Err()
	}
	m.Settle()
	res.Hits, res.Misses = m.IOMMU.Hits(), m.IOMMU.Misses()
	if total := res.Hits + res.Misses; total > 0 {
		res.HitRate = float64(res.Hits) / float64(total)
	}
	res.PerTransfer = sample.Mean()
	res.Fingerprint = fingerprintDigest(m.Fingerprint())
	return res, nil
}

// PagingResult is one (policy, oversubscription) cell of the paging
// experiment.
type PagingResult struct {
	Policy      string
	Pages       int     // device-page working set (source side)
	Budget      int     // pager residency budget
	Oversub     float64 // working set (src + dst) over budget
	Transfers   int
	GoodputMBps float64
	P50         sim.Time
	P99         sim.Time
	Faults      uint64 // device-side translation faults taken
	Stalls      uint64 // stall-and-resolve suspensions
	Bounced     uint64 // pages redirected through the bounce buffer
	Pins        uint64 // kernel-assisted pre-pins
	Evictions   uint64 // pager evictions (the oversubscription cost)
	PageIns     uint64
	Elapsed     sim.Time
	Fingerprint uint64
	// Completed counts transfers actually issued: Transfers unless a
	// live observer (PagingBenchLive) cut the stream short.
	Completed int
	// LiveSamples counts the mid-run live-feed readings an observer
	// took (0 on the plain PagingBench path).
	LiveSamples int
}

// pagingPageIn is the modeled backing-store page-in latency. It dwarfs
// the 2 µs IOTLB refill deliberately: the experiment separates policies
// by how they overlap (or fail to overlap) this latency with the
// stream.
const pagingPageIn = 100 * sim.Microsecond

// PagingBench streams transfers full-page payloads cyclically over a
// pages-page working set with the kernel pager capped at budget
// resident device pages, under the given mid-transfer fault recovery
// policy. Cycling makes LRU evict exactly the page the stream needs
// next once the budget is oversubscribed, so every lap faults — the
// worst case the three policies are measured on.
func PagingBench(policy dma.RecoveryPolicy, pages, budget, transfers int) (PagingResult, error) {
	return PagingBenchLive(policy, pages, budget, transfers, nil)
}
