package userdma

import (
	"fmt"

	"uldma/internal/proc"
	"uldma/internal/vm"
)

// MethodInfo summarizes one initiation scheme for the tools: the §4
// comparison table ("2-5 assembly instructions ... issued from user
// level") as data.
type MethodInfo struct {
	Name string
	// EngineMode names the shadow-decode protocol the NIC needs.
	EngineMode string
	// UserAccesses is the number of user-issued bus accesses per
	// initiation (0 for call-based methods).
	UserAccesses int
	// Instructions is the user-level instruction count including
	// barriers ("syscall" / "call_pal" for the call-based methods).
	Instructions string
	// KernelMod reports whether the scheme needs a context-switch hook.
	KernelMod bool
	// Polls reports whether completion can be polled from user level.
	Polls bool
}

// Overview compiles the summary row for every method by attaching each
// to a scratch machine and inspecting its compiled sequence.
func Overview() ([]MethodInfo, error) {
	var out []MethodInfo
	for _, method := range AllMethods() {
		m := Machine(method)
		p := m.NewProcess("probe", func(c *proc.Context) error { return nil })
		h, err := method.Attach(m, p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", method.Name(), err)
		}
		if _, err := m.SetupPages(p, 0x10000, 1, vm.Read|vm.Write); err != nil {
			return nil, err
		}
		if _, err := m.SetupPages(p, 0x20000, 1, vm.Read|vm.Write); err != nil {
			return nil, err
		}
		info := MethodInfo{
			Name:       method.Name(),
			EngineMode: method.EngineMode().String(),
			KernelMod:  method.RequiresKernelMod(),
			Polls:      h.poll != nil,
		}
		if prog, ok := h.Program(0x10000, 0x20000, 64); ok {
			info.UserAccesses = prog.BusAccesses()
			info.Instructions = fmt.Sprintf("%d", prog.Len())
		} else if _, isKernel := method.(KernelLevel); isKernel {
			info.Instructions = "syscall"
		} else {
			info.Instructions = "call_pal"
		}
		out = append(out, info)
		// Drain the probe process.
		if err := m.Run(proc.NewRoundRobin(1), 100); err != nil {
			return nil, err
		}
	}
	return out, nil
}
