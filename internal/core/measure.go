package userdma

import (
	"fmt"

	"uldma/internal/dma"
	"uldma/internal/machine"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/stats"
	"uldma/internal/vm"
)

// This file is the paper's §3.4 measurement harness: "For each DMA
// method we perform a simple test of initiating 1,000 DMA operations
// ... Successive DMA operations were done to (from) different
// addresses, so as to eliminate any caching effects that intervening
// write buffers may induce."

// InitiationResult is one Table 1 row as measured on the model.
type InitiationResult struct {
	Method     string
	Iterations int
	Mean       sim.Time
	Min        sim.Time
	Max        sim.Time
	// PaperMean is the value Table 1 reports (0 when the paper gives
	// none, e.g. for the comparators).
	PaperMean sim.Time
}

// PaperTable1 holds the published Table 1 means.
var PaperTable1 = map[string]sim.Time{
	"Kernel-level DMA":          18600 * sim.Nanosecond,
	"Ext. Shadow Addressing":    1100 * sim.Nanosecond,
	"Rep. Passing of Arguments": 2600 * sim.Nanosecond,
	"Key-based DMA":             2300 * sim.Nanosecond,
}

// MeasureMethod runs iters initiations of method on a fresh machine
// built from cfg and returns the timing summary. Addresses vary between
// iterations, as in the paper's methodology.
func MeasureMethod(method Method, cfg machine.Config, iters int) (InitiationResult, error) {
	m, err := machine.New(cfg)
	if err != nil {
		return InitiationResult{}, err
	}
	res := InitiationResult{
		Method:     method.Name(),
		Iterations: iters,
		PaperMean:  PaperTable1[method.Name()],
	}
	var sample stats.Sample

	// The guest body closes over h, which Attach assigns below — the
	// process object must exist before Attach, but the body only runs
	// once m.Run starts.
	//
	// Transfers are zero-length, exactly as in the paper's loop: "No
	// DMA data transfer was actually performed. Only the DMA arguments
	// were passed to the network interface." This also keeps the bus
	// free of DMA cycle stealing, isolating pure initiation cost.
	var h *Handle
	const srcBase, dstBase = vm.VAddr(0x10000), vm.VAddr(0x20000)
	p := m.NewProcess("bench", func(c *proc.Context) error {
		// One throwaway initiation warms the TLB and engine state.
		if _, err := h.DMA(c, srcBase, dstBase, 0); err != nil {
			return err
		}
		var conv convergence
		for i := 0; i < iters; i++ {
			off := vm.VAddr((i % 64) * 16)
			start := m.Clock.Now()
			st, err := h.DMA(c, srcBase+off, dstBase+off, 0)
			if err != nil {
				return err
			}
			dur := m.Clock.Now() - start
			sample.Add(dur)
			if st == dma.StatusFailure {
				return fmt.Errorf("userdma: iteration %d refused", i)
			}
			// Steady-state fast-forward: once ConvergeK consecutive
			// iterations have produced the identical machine-state
			// delta, every remaining iteration is provably going to
			// measure dur again — synthesize those samples and advance
			// the clock analytically (see converge.go).
			if fastForward && conv.observe(m.Fingerprint()) {
				ffEngagements.Add(1)
				remaining := iters - 1 - i
				for r := 0; r < remaining; r++ {
					sample.Add(dur)
				}
				m.Clock.AdvanceTo(m.Clock.Now() + conv.clockDelta()*sim.Time(remaining))
				break
			}
		}
		return nil
	})
	h, err = method.Attach(m, p)
	if err != nil {
		return res, err
	}
	if _, err := m.SetupPages(p, srcBase, 1, vm.Read|vm.Write); err != nil {
		return res, err
	}
	dstFrames, err := m.SetupPages(p, dstBase, 1, vm.Read|vm.Write)
	if err != nil {
		return res, err
	}
	if s1, ok := method.(SHRIMP1); ok {
		if err := s1.MapOutPage(m, p, srcBase, dstFrames[0]); err != nil {
			return res, err
		}
	}
	if err := m.Run(proc.NewRoundRobin(1<<20), 1<<30); err != nil {
		return res, err
	}
	if p.Err() != nil {
		return res, p.Err()
	}
	res.Mean, res.Min, res.Max = sample.Mean(), sample.Min(), sample.Max()
	return res, nil
}

// Table1 measures the paper's four rows on their calibrated preset and
// returns them in the paper's order.
func Table1(iters int) ([]InitiationResult, error) {
	var out []InitiationResult
	for _, method := range Methods() {
		cfg := ConfigFor(method)
		r, err := MeasureMethod(method, cfg, iters)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", method.Name(), err)
		}
		out = append(out, r)
	}
	return out, nil
}

// BusSweep measures every Table 1 method across bus frequencies —
// experiment X4, quantifying §3.4's "user-level DMA can achieve quite
// better performance in modern systems, that use faster buses".
func BusSweep(iters int, freqs []sim.Hz) (map[sim.Hz][]InitiationResult, error) {
	out := make(map[sim.Hz][]InitiationResult)
	for _, f := range freqs {
		for _, method := range Methods() {
			var cfg machine.Config
			if f == 12_500_000 {
				cfg = ConfigFor(method)
			} else {
				cfg = machine.PCI(method.EngineMode(), method.SeqLen(), f)
			}
			r, err := MeasureMethod(method, cfg, iters)
			if err != nil {
				return nil, fmt.Errorf("%v/%s: %w", f, method.Name(), err)
			}
			out[f] = append(out[f], r)
		}
	}
	return out, nil
}

// ContextContention measures mean initiation time under multiprogramming
// for a context-carrying method: procs processes share the machine; the
// ones that cannot get a register context fall back to kernel-level DMA
// (§3.2's prescription). Returns mean initiation per process.
func ContextContention(method Method, procs, itersPerProc int) ([]InitiationResult, error) {
	cfg := ConfigFor(method)
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	type worker struct {
		h      *Handle
		name   string
		sample stats.Sample
	}
	workers := make([]*worker, procs)
	base := vm.VAddr(0x10000)
	for i := 0; i < procs; i++ {
		w := &worker{}
		workers[i] = w
		src := base
		dst := base + 0x10000
		p := m.NewProcess(fmt.Sprintf("p%d", i), func(c *proc.Context) error {
			for k := 0; k < itersPerProc; k++ {
				off := vm.VAddr((k % 64) * 16)
				start := m.Clock.Now()
				st, err := w.h.DMA(c, src+off, dst+off, 0)
				if err != nil {
					return err
				}
				w.sample.Add(m.Clock.Now() - start)
				if st == dma.StatusFailure {
					return fmt.Errorf("refused")
				}
			}
			return nil
		})
		h, err := method.Attach(m, p)
		if err != nil {
			// No context left: fall back to the kernel path.
			h, err = (KernelLevel{}).Attach(m, p)
			if err != nil {
				return nil, err
			}
			w.name = method.Name() + " [kernel fallback]"
		} else {
			w.name = method.Name()
		}
		w.h = h
		if _, err := m.SetupPages(p, src, 1, vm.Read|vm.Write); err != nil {
			return nil, err
		}
		if _, err := m.SetupPages(p, dst, 1, vm.Read|vm.Write); err != nil {
			return nil, err
		}
	}
	// Each process's measurement loop runs within one quantum so that
	// per-initiation latencies are not inflated by time spent descheduled
	// — the experiment compares the two PATH costs, not queueing delay.
	if err := m.Run(proc.NewRoundRobin(1<<20), 1<<30); err != nil {
		return nil, err
	}
	var out []InitiationResult
	for _, w := range workers {
		out = append(out, InitiationResult{
			Method:     w.name,
			Iterations: w.sample.N(),
			Mean:       w.sample.Mean(),
			Min:        w.sample.Min(),
			Max:        w.sample.Max(),
		})
	}
	return out, nil
}
