package userdma

import (
	"testing"

	"uldma/internal/kernel"
)

// TestRingDepthAmortizes is the headline acceptance check: for every
// user-level protocol, amortized initiation cost falls monotonically
// with ring depth, and depth 32 is at least 2x cheaper than depth 1.
func TestRingDepthAmortizes(t *testing.T) {
	for _, method := range []Method{ExtShadow{}, RepeatedPassing{Len: 5, Barriers: true}, KeyBased{}} {
		prev := RingDepthResult{}
		for i, depth := range []uint64{1, 2, 4, 8, 16, 32} {
			r, err := MeasureRingDepth(method, 192, depth)
			if err != nil {
				t.Fatalf("%s depth %d: %v", method.Name(), depth, err)
			}
			if r.PerInit <= 0 {
				t.Fatalf("%s depth %d: non-positive per-init %v", method.Name(), depth, r.PerInit)
			}
			if i > 0 && r.PerInit > prev.PerInit {
				t.Errorf("%s: per-init rose from %v (depth %d) to %v (depth %d)",
					method.Name(), prev.PerInit, prev.Depth, r.PerInit, depth)
			}
			if depth == 1 {
				prev = r
				continue
			}
			if depth == 32 && 2*r.PerInit > prev.PerInit {
				// prev here is depth 16; recompute against depth 1 below.
			}
			prev = r
		}
		d1, err := MeasureRingDepth(method, 192, 1)
		if err != nil {
			t.Fatal(err)
		}
		d32, err := MeasureRingDepth(method, 192, 32)
		if err != nil {
			t.Fatal(err)
		}
		if 2*d32.PerInit > d1.PerInit {
			t.Errorf("%s: depth-32 per-init %v not 2x cheaper than depth-1 %v",
				method.Name(), d32.PerInit, d1.PerInit)
		}
	}
}

// TestRingDepthDeterministic re-measures one point and requires
// byte-identical results including the machine fingerprint digest.
func TestRingDepthDeterministic(t *testing.T) {
	a, err := MeasureRingDepth(KeyBased{}, 96, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureRingDepth(KeyBased{}, 96, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("reruns differ:\n%+v\n%+v", a, b)
	}
	if a.Posted != 96 || a.Doorbells == 0 || a.Completions == 0 {
		t.Fatalf("implausible counters: %+v", a)
	}
	if a.GoodputMBps <= 0 {
		t.Fatalf("no goodput measured: %+v", a)
	}
}

// TestRingChurnPolicies runs each arbitration policy oversubscribed and
// checks its signature behavior: FIFO/yield queue (waits observed, no
// steals), steal revokes (steals observed, no waits), and every run is
// deterministic under rerun.
func TestRingChurnPolicies(t *testing.T) {
	for _, tc := range []struct {
		policy kernel.CtxPolicy
		steals bool
		waits  bool
	}{
		{kernel.CtxFIFO, false, true},
		{kernel.CtxSteal, true, false},
		{kernel.CtxYield, false, true},
	} {
		a, err := RingChurnBench(tc.policy, 16, 4, 3)
		if err != nil {
			t.Fatalf("%v: %v", tc.policy, err)
		}
		b, err := RingChurnBench(tc.policy, 16, 4, 3)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("%v: reruns differ:\n%+v\n%+v", tc.policy, a, b)
		}
		if (a.Steals > 0) != tc.steals {
			t.Errorf("%v: steals = %d, want >0 = %v", tc.policy, a.Steals, tc.steals)
		}
		if (a.Waits > 0) != tc.waits {
			t.Errorf("%v: waits = %d, want >0 = %v", tc.policy, a.Waits, tc.waits)
		}
		if a.Doorbells == 0 || a.Posted == 0 {
			t.Errorf("%v: no ring activity: %+v", tc.policy, a)
		}
		// Queueing policies pay acquire latency waiting for a holder;
		// stealing acquires instantly (the victim pays instead).
		if tc.waits && a.MeanAcquire <= 0 {
			t.Errorf("%v: no acquire latency recorded", tc.policy)
		}
	}
}
