package userdma

import (
	"testing"

	"uldma/internal/machine"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/vm"
)

// TestVAMidFaultSnapshotFidelity pins the ISSUE's snapshot contract for
// the virtual-address plane at machine level: a world snapshot taken
// with a transfer PARKED on a mid-transfer device page fault (the
// walker's position, the faulting VA, the IOMMU's tables and the ring
// of not-yet-moved bytes all live state) rewinds and replays
// byte-identically — restored origin and hydrated clone both.
func TestVAMidFaultSnapshotFidelity(t *testing.T) {
	method := ExtShadow{}
	cfg := VAConfigFor(method, 0)
	const (
		srcBase vm.VAddr = 0x10000
		dstBase vm.VAddr = 0x20000
	)

	build := func() (*machine.Machine, phys.Addr, phys.Addr) {
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var h *Handle
		p := m.NewProcess("faulter", func(c *proc.Context) error {
			// Initiate and exit without waiting: the transfer is about
			// to park on the unmapped destination and only host-side
			// kernel action can resume it.
			st, err := h.DMA(c, srcBase, dstBase, uint64(cfg.PageSize))
			if err != nil {
				return err
			}
			_ = st
			return nil
		})
		if h, err = method.Attach(m, p); err != nil {
			t.Fatal(err)
		}
		srcFrames, err := SetupVAPages(m, p, h.Context(), srcBase, 1, vm.Read|vm.Write)
		if err != nil {
			t.Fatal(err)
		}
		dstFrames, err := SetupVAPages(m, p, h.Context(), dstBase, 1, vm.Read|vm.Write)
		if err != nil {
			t.Fatal(err)
		}
		// Pull the destination's IOMMU mapping before the world runs:
		// the walk translates the source, then faults on the destination
		// and parks (pager disabled, so the fault is unresolvable until
		// the host maps the page back).
		devDst := uint64(dstBase) &^ (cfg.PageSize - 1) & (uint64(1)<<cfg.Engine.MemBits - 1)
		if err := m.Kernel.UnmapIO(h.Context(), devDst); err != nil {
			t.Fatal(err)
		}
		if err := m.Mem.Fill(srcFrames[0], int(cfg.PageSize), 0xAD); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(proc.NewRoundRobin(1<<20), 1<<30); err != nil {
			t.Fatal(err)
		}
		if p.Err() != nil {
			t.Fatal(p.Err())
		}
		m.Settle()
		if got := m.Engine.ParkedTransfers(); got != 1 {
			t.Fatalf("ParkedTransfers = %d, want 1", got)
		}
		return m, srcFrames[0], dstFrames[0]
	}

	// resume performs the host-side recovery: map the faulted page back
	// and wake the parked transfer at a fixed offset from the world's
	// (restored) clock.
	devDst := uint64(dstBase) &^ (cfg.PageSize - 1) & (uint64(1)<<cfg.Engine.MemBits - 1)
	resume := func(m *machine.Machine, ctx int, dstFrame phys.Addr) machine.Fingerprint {
		if err := m.Kernel.MapIO(ctx, devDst, dstFrame, vm.Read|vm.Write); err != nil {
			t.Fatal(err)
		}
		if n := m.Engine.ResumeFaulted(-1, m.Clock.Now()+10*sim.Microsecond); n != 1 {
			t.Fatalf("ResumeFaulted woke %d transfers, want 1", n)
		}
		m.Settle()
		if got := m.Engine.ParkedTransfers(); got != 0 {
			t.Fatalf("still %d parked after resume", got)
		}
		return m.Fingerprint()
	}
	checkBytes := func(m *machine.Machine, dstFrame phys.Addr, label string) {
		buf := make([]byte, cfg.PageSize)
		if err := m.Mem.ReadInto(dstFrame, buf); err != nil {
			t.Fatal(err)
		}
		for i, b := range buf {
			if b != 0xAD {
				t.Fatalf("%s: byte %d = %#x, want 0xad", label, i, b)
			}
		}
	}

	origin, _, dstFrame := build()
	ctx := 0 // first AssignContext on a fresh kernel
	snap, err := origin.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snapFP := origin.Fingerprint()

	// Determinism baseline: an identical fresh world parks identically.
	fresh, _, freshDst := build()
	if fp := fresh.Fingerprint(); fp != snapFP {
		t.Fatalf("mid-fault world not reproducible:\n  origin %v\n  fresh  %v", snapFP, fp)
	}
	if freshDst != dstFrame {
		t.Fatalf("frame allocation diverged: %v vs %v", dstFrame, freshDst)
	}

	// Life 1: resume the origin.
	wantFP := resume(origin, ctx, dstFrame)
	checkBytes(origin, dstFrame, "origin")
	if wantFP == snapFP {
		t.Fatal("resume left no trace in the fingerprint")
	}

	// A clone hydrated from the mid-fault snapshot replays the same
	// recovery byte-identically.
	clone, err := machine.NewFromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if got := clone.Engine.ParkedTransfers(); got != 1 {
		t.Fatalf("clone has %d parked transfers, want 1", got)
	}
	if fp := resume(clone, ctx, dstFrame); fp != wantFP {
		t.Fatalf("clone's recovery diverged:\n  origin %v\n  clone  %v", wantFP, fp)
	}
	checkBytes(clone, dstFrame, "clone")

	// Rewind the origin itself: the parked walker, the IOMMU's tables
	// and the un-written destination must all come back.
	if err := origin.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if fp := origin.Fingerprint(); fp != snapFP {
		t.Fatalf("restore did not rewind the mid-fault world:\n  got  %v\n  want %v", fp, snapFP)
	}
	if got := origin.Engine.ParkedTransfers(); got != 1 {
		t.Fatalf("restore rebuilt %d parked transfers, want 1", got)
	}
	if fp := resume(origin, ctx, dstFrame); fp != wantFP {
		t.Fatalf("rewound recovery diverged:\n  got  %v\n  want %v", fp, wantFP)
	}
	checkBytes(origin, dstFrame, "rewound origin")
}
