package userdma

// The live feed's cost contract: attaching a per-transfer observer to
// a paging measurement must change NOTHING about the measured world —
// same scores, same counters, same fingerprint, zero simulated
// picoseconds — and the obs reads it is built on must not allocate.
// The veto path (observer returns false) is the one deliberate
// divergence: the stream stops early and Completed says so.

import (
	"testing"

	"uldma/internal/dma"
	"uldma/internal/machine"
	"uldma/internal/obs"
)

// TestLiveFeedZeroDelta runs the same paging cell with and without a
// sampling observer and demands byte-identical results: the live feed
// costs 0 simulated time and perturbs no counter (the fingerprint is
// the whole world's digest, so any drift shows).
func TestLiveFeedZeroDelta(t *testing.T) {
	const pages, budget, transfers = 16, 8, 32
	base, err := PagingBench(dma.RecoverStall, pages, budget, transfers)
	if err != nil {
		t.Fatal(err)
	}
	samples := 0
	var last LiveSample
	live, err := PagingBenchLive(dma.RecoverStall, pages, budget, transfers, func(s LiveSample) bool {
		samples++
		last = s
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if samples != transfers {
		t.Fatalf("observer saw %d samples, want one per transfer (%d)", samples, transfers)
	}
	if live.LiveSamples != transfers {
		t.Fatalf("result reports %d live samples, want %d", live.LiveSamples, transfers)
	}
	if last.Done != transfers || last.At == 0 {
		t.Fatalf("final sample %+v inconsistent with result %+v", last, live)
	}
	if last.Faults != live.Faults || last.Evictions != live.Evictions {
		t.Fatalf("final live sample (faults %d, evictions %d) disagrees with post-hoc result (faults %d, evictions %d)",
			last.Faults, last.Evictions, live.Faults, live.Evictions)
	}
	// Zero the one field the live path is allowed to set; everything
	// else — timings, counters, fingerprint — must match exactly.
	live.LiveSamples = 0
	if live != base {
		t.Fatalf("live feed perturbed the measurement:\nbase %+v\nlive %+v", base, live)
	}
}

// TestLiveFeedVeto pins the early-abort hook: an observer that vetoes
// once live faults cross a threshold stops the stream short, and the
// result reports the truncated run honestly.
func TestLiveFeedVeto(t *testing.T) {
	const pages, budget, transfers = 16, 8, 32
	full, err := PagingBench(dma.RecoverStall, pages, budget, transfers)
	if err != nil {
		t.Fatal(err)
	}
	if full.Faults == 0 {
		t.Fatal("oversubscribed cell took no faults; the veto test needs some")
	}
	cut, err := PagingBenchLive(dma.RecoverStall, pages, budget, transfers, func(s LiveSample) bool {
		return s.Faults < full.Faults/2
	})
	if err != nil {
		t.Fatal(err)
	}
	if cut.Completed >= transfers {
		t.Fatalf("veto did not stop the stream: completed %d of %d", cut.Completed, transfers)
	}
	if cut.Completed == 0 {
		t.Fatal("veto fired before any transfer completed")
	}
	if cut.Elapsed >= full.Elapsed {
		t.Fatalf("truncated run took %v, full run %v", cut.Elapsed, full.Elapsed)
	}
	if cut.Faults >= full.Faults {
		t.Fatalf("truncated run faulted %d times, full run %d", cut.Faults, full.Faults)
	}
}

// TestLiveWatchZeroAllocs pins the obs plane's live reads on a real
// machine registry: watch handles and warm timed snapshots are
// allocation-free, which is what lets the feed ride inside a hot
// measurement loop.
func TestLiveWatchZeroAllocs(t *testing.T) {
	m, err := machine.New(VAConfigFor(ExtShadow{}, 0))
	if err != nil {
		t.Fatal(err)
	}
	w, ok := m.Obs.Watch("dma.va_faults")
	if !ok {
		t.Fatal("dma.va_faults not registered")
	}
	var sink uint64
	if allocs := testing.AllocsPerRun(200, func() { sink += w.Value() }); allocs != 0 {
		t.Fatalf("Watch.Value allocated %.1f times per read on a machine registry, want 0", allocs)
	}
	var ts obs.TimedSnapshot
	m.Obs.SnapshotAt(0, &ts) // warm: sizes Values once
	if allocs := testing.AllocsPerRun(200, func() { m.Obs.SnapshotAt(m.Clock.Now(), &ts) }); allocs != 0 {
		t.Fatalf("SnapshotAt allocated %.1f times per read on a machine registry, want 0", allocs)
	}
	_ = sink
}
