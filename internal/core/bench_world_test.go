package userdma

// World-construction benchmarks. These pin the costs the snapshot
// machinery exists to avoid: building a machine from scratch, warming
// a full attack scenario, cloning a snapshotted world, and one
// complete run of the exhaustive search's hot cycle (checkout → spawn
// → run → rewind → return to pool).

import (
	"testing"

	"uldma/internal/dma"
	"uldma/internal/machine"
)

func BenchmarkMachineNew(b *testing.B) {
	cfg := machine.Alpha3000TC(dma.ModeRepeated, 5)
	for i := 0; i < b.N; i++ {
		if _, err := machine.New(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAttackTemplateBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := newAttackTemplate(5, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCloneWorld(b *testing.B) {
	cfg := machine.Alpha3000TC(dma.ModeRepeated, 5)
	snap, err := NewWorld(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := machine.NewFromSnapshot(snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterleavingRun is the exhaustive search's per-schedule
// cost in steady state: the template pool is warm, so each iteration
// restores a world instead of building one.
func BenchmarkInterleavingRun(b *testing.B) {
	sched := []bool{true, false, false, true, true, false, true, true, true, false}
	if _, err := runInterleaving(sched); err != nil {
		b.Fatal(err) // warm the pool
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runInterleaving(sched); err != nil {
			b.Fatal(err)
		}
	}
}
