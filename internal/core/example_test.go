package userdma_test

import (
	"fmt"
	"log"

	userdma "uldma/internal/core"
	"uldma/internal/proc"
	"uldma/internal/vm"
)

// ExampleHandle_DMA shows the complete life of one user-level DMA:
// setup-time kernel work, the two-instruction initiation, and
// user-level completion polling. Deterministic simulation makes the
// timing reproducible to the picosecond.
func ExampleHandle_DMA() {
	method := userdma.ExtShadow{}
	m := userdma.Machine(method)

	var h *userdma.Handle
	p := m.NewProcess("app", func(c *proc.Context) error {
		start := m.Clock.Now()
		status, err := h.DMA(c, 0x10000, 0x20000, 1024)
		if err != nil {
			return err
		}
		fmt.Printf("initiated in %v, %d bytes to go\n", m.Clock.Now()-start, status)
		if err := h.Wait(c, 1000); err != nil {
			return err
		}
		fmt.Println("transfer complete")
		return nil
	})

	var err error
	if h, err = method.Attach(m, p); err != nil { // once per process
		log.Fatal(err)
	}
	srcFrames, err := m.SetupPages(p, 0x10000, 1, vm.Read|vm.Write) // once per page
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.SetupPages(p, 0x20000, 1, vm.Read|vm.Write); err != nil {
		log.Fatal(err)
	}
	m.Mem.Fill(srcFrames[0], 1024, 0x42)

	if err := m.Run(proc.NewRoundRobin(64), 100_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel crossings: %d\n", m.Kernel.Stats().Syscalls)
	// Output:
	// initiated in 1.587µs, 1024 bytes to go
	// transfer complete
	// kernel crossings: 0
}

// ExampleFetchAdd demonstrates a §3.5 user-level atomic operation: one
// locked bus transaction into the NIC's atomic unit, no syscall.
func ExampleFetchAdd() {
	m := userdma.Machine(userdma.ExtShadow{})
	p := m.NewProcess("counter", func(c *proc.Context) error {
		for i := 0; i < 3; i++ {
			old, err := userdma.FetchAdd(c, 0x50000, 10)
			if err != nil {
				return err
			}
			fmt.Println("old value:", old)
		}
		return nil
	})
	if _, err := m.Kernel.AllocPage(p.AddressSpace(), 0x50000, vm.Read|vm.Write); err != nil {
		log.Fatal(err)
	}
	if err := userdma.SetupAtomics(m, p, 0x50000); err != nil {
		log.Fatal(err)
	}
	if err := m.Run(proc.NewRoundRobin(8), 10_000); err != nil {
		log.Fatal(err)
	}
	// Output:
	// old value: 0
	// old value: 10
	// old value: 20
}

// ExampleFigure5 replays the paper's Figure 5 attack in one call.
func ExampleFigure5() {
	o, err := userdma.Figure5()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("transfers:", o.Transfers)
	fmt.Println("victim believes success:", o.VictimBelievesSuccess)
	fmt.Println("hijacked:", o.Hijacked)
	// Output:
	// transfers: [C->B[64]]
	// victim believes success: true
	// hijacked: true
}
