package userdma

import (
	"fmt"

	"uldma/internal/dma"
	"uldma/internal/isa"
	"uldma/internal/kernel"
	"uldma/internal/machine"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/vm"
)

// Methods returns the paper's Table 1 line-up in its row order, ready
// to attach.
func Methods() []Method {
	return []Method{
		KernelLevel{},
		ExtShadow{},
		RepeatedPassing{Len: 5, Barriers: true},
		KeyBased{},
	}
}

// AllMethods additionally includes the comparators and the PAL scheme.
func AllMethods() []Method {
	return append(Methods(),
		PALCode{},
		SHRIMP1{},
		SHRIMP2{WithKernelMod: true},
		FLASH{},
	)
}

// --- Kernel-level DMA (Figure 1, §2.2) ---

// KernelLevel is the traditional baseline: every initiation traps into
// the kernel, which translates, checks, and programs the engine.
type KernelLevel struct{}

// Name implements Method.
func (KernelLevel) Name() string { return "Kernel-level DMA" }

// EngineMode implements Method. The kernel path uses only the control
// page, so any mode works; paired is the plainest.
func (KernelLevel) EngineMode() dma.Mode { return dma.ModePaired }

// SeqLen implements Method.
func (KernelLevel) SeqLen() int { return 0 }

// RequiresKernelMod implements Method: the kernel path IS the kernel,
// but it modifies nothing.
func (KernelLevel) RequiresKernelMod() bool { return false }

// Attach implements Method.
func (k KernelLevel) Attach(m *machine.Machine, p *proc.Process) (*Handle, error) {
	h := &Handle{method: k, m: m, p: p}
	h.initiate = func(c *proc.Context, src, dst vm.VAddr, size uint64) (uint64, error) {
		return c.Syscall(kernel.SysDMA, uint64(src), uint64(dst), size)
	}
	h.poll = func(c *proc.Context) (uint64, error) {
		// Completion polling costs a full trap each time — part of why
		// the kernel path loses.
		return c.Syscall(kernel.SysDMAStatus)
	}
	return h, nil
}

// --- Extended shadow addressing (Figure 4, §3.2) ---

// ExtShadow embeds the process's register-context id in spare bits of
// the shadow physical address, set by the OS at mmap time. Two
// instructions; the fastest scheme in Table 1.
//
// NoContexts selects the §3.2 low-cost engine variant without register
// contexts: the engine pair-matches a STORE with the next LOAD and only
// starts the DMA when their context ids agree. An initiation interrupted
// by another context's initiation fails cleanly and is retried
// (MaxRetries bounds the loop). Polling is unavailable in this variant
// (there is no per-context status register).
type ExtShadow struct {
	NoContexts bool
	MaxRetries int
}

// Name implements Method.
func (e ExtShadow) Name() string {
	if e.NoContexts {
		return "Ext. Shadow Addressing (no reg. contexts)"
	}
	return "Ext. Shadow Addressing"
}

// EngineMode implements Method.
func (ExtShadow) EngineMode() dma.Mode { return dma.ModeExtended }

// TweakEngine applies the no-register-contexts hardware variant.
func (e ExtShadow) TweakEngine(cfg *dma.Config) { cfg.NoRegContexts = e.NoContexts }

// SeqLen implements Method.
func (ExtShadow) SeqLen() int { return 0 }

// RequiresKernelMod implements Method.
func (ExtShadow) RequiresKernelMod() bool { return false }

// Attach implements Method. Must run before MapShadow/SetupPages so the
// context id lands in the process's shadow mappings.
func (e ExtShadow) Attach(m *machine.Machine, p *proc.Process) (*Handle, error) {
	ctx, _, err := m.Kernel.AssignContext(p)
	if err != nil {
		return nil, fmt.Errorf("userdma: %s: %w", e.Name(), err)
	}
	h := &Handle{method: e, m: m, p: p, ctx: ctx}
	h.compile = func(src, dst vm.VAddr, size uint64) isa.Program {
		return isa.Program{
			isa.Store(shadow(dst), phys.Size64, size, "pass size; shadow(vdst) carries pdst+ctx"),
			isa.Load(shadow(src), phys.Size64, "pass psrc; starts DMA; returns status"),
		}
	}
	retries := e.MaxRetries
	if retries <= 0 {
		retries = 64
	}
	var lastSrc vm.VAddr
	// Reuse one instruction buffer across initiations: the per-call
	// Program literal was one heap allocation per message send.
	var seq [2]isa.Instr
	h.initiate = func(c *proc.Context, src, dst vm.VAddr, size uint64) (uint64, error) {
		lastSrc = src
		seq[0] = isa.Store(shadow(dst), phys.Size64, size, "pass size; shadow(vdst) carries pdst+ctx")
		seq[1] = isa.Load(shadow(src), phys.Size64, "pass psrc; starts DMA; returns status")
		prog := isa.Program(seq[:])
		if !e.NoContexts {
			return runProgram(c, prog)
		}
		// Pair-matching engine: another context's interleaved pair makes
		// the load fail; retry like Figure 7.
		for attempt := 0; attempt < retries; attempt++ {
			status, err := runProgram(c, prog)
			if err != nil {
				return dma.StatusFailure, err
			}
			if status != dma.StatusFailure {
				return status, nil
			}
		}
		return dma.StatusFailure, ErrRetriesExhausted
	}
	if !e.NoContexts {
		h.poll = func(c *proc.Context) (uint64, error) {
			// A shadow load with no half-initiation pending polls the
			// context's running transfer.
			return c.Load(shadow(lastSrc), phys.Size64)
		}
	}
	return h, nil
}

// --- Key-based DMA (Figure 3, §3.1) ---

// KeyBased passes each physical address with a key#context data word;
// the engine's per-context key check stops forgeries. Four instructions.
type KeyBased struct{}

// Name implements Method.
func (KeyBased) Name() string { return "Key-based DMA" }

// EngineMode implements Method.
func (KeyBased) EngineMode() dma.Mode { return dma.ModeKeyed }

// SeqLen implements Method.
func (KeyBased) SeqLen() int { return 0 }

// RequiresKernelMod implements Method.
func (KeyBased) RequiresKernelMod() bool { return false }

// Attach implements Method.
func (k KeyBased) Attach(m *machine.Machine, p *proc.Process) (*Handle, error) {
	ctx, key, err := m.Kernel.AssignContext(p)
	if err != nil {
		return nil, fmt.Errorf("userdma: %s: %w", k.Name(), err)
	}
	h := &Handle{method: k, m: m, p: p, ctx: ctx, key: key}
	packed := dma.PackKey(key, ctx)
	h.compile = func(src, dst vm.VAddr, size uint64) isa.Program {
		return isa.Program{
			isa.Store(shadow(dst), phys.Size64, packed, "KEY#CTX to shadow(vdst): pass destination"),
			isa.Store(shadow(src), phys.Size64, packed, "KEY#CTX to shadow(vsrc): pass source"),
			isa.Store(kernel.CtxPageVA, phys.Size64, size, "size to register context"),
			// The status load reads the same address the size store just
			// wrote; without a barrier the write buffer services it and
			// the engine never sees the sequence (§3.4, footnote 6).
			isa.MB("flush write buffer before status read (§3.4)"),
			isa.Load(kernel.CtxPageVA, phys.Size64, "initiate; read status"),
		}
	}
	h.initiate = func(c *proc.Context, src, dst vm.VAddr, size uint64) (uint64, error) {
		return runProgram(c, h.compile(src, dst, size))
	}
	h.poll = func(c *proc.Context) (uint64, error) {
		return c.Load(kernel.CtxPageVA, phys.Size64)
	}
	return h, nil
}

// --- Repeated passing of arguments (Figure 7, §3.3) ---

// RepeatedPassing drives the engine's sequence FSM. SeqLen 5 is the
// paper's safe sequence; 3 and 4 are the deliberately vulnerable
// variants kept for the Figure 5/6 attack studies. Barriers controls
// the §3.4 memory barriers (disable only for the write-buffer ablation,
// experiment X3). MaxRetries bounds the Figure 7 goto-retry loop.
type RepeatedPassing struct {
	// Len selects the sequence variant (3, 4 or 5; 0 means 5).
	Len        int
	Barriers   bool
	MaxRetries int
	// LooseStatus reproduces the paper's literal Figure 7 client, which
	// only checks DMA_FAILURE. Under concurrent repeated-passing
	// traffic that client can read a false "success" (its final load
	// merely extended another process's sequence and returned
	// ACCEPTED). The default strict client also retries on ACCEPTED,
	// which restores reliable multiprogrammed operation.
	LooseStatus bool
}

// Name implements Method.
func (r RepeatedPassing) Name() string {
	if r.Len != 0 && r.Len != 5 {
		return fmt.Sprintf("Rep. Passing of Arguments (%d-instr)", r.Len)
	}
	return "Rep. Passing of Arguments"
}

// EngineMode implements Method.
func (RepeatedPassing) EngineMode() dma.Mode { return dma.ModeRepeated }

// SeqLen implements Method.
func (r RepeatedPassing) SeqLen() int {
	if r.Len == 0 {
		return 5
	}
	return r.Len
}

// RequiresKernelMod implements Method.
func (RepeatedPassing) RequiresKernelMod() bool { return false }

// Attach implements Method.
func (r RepeatedPassing) Attach(m *machine.Machine, p *proc.Process) (*Handle, error) {
	h := &Handle{method: r, m: m, p: p}
	h.compile = func(src, dst vm.VAddr, size uint64) isa.Program {
		return r.sequence(src, dst, size)
	}
	retries := r.MaxRetries
	if retries <= 0 {
		retries = 64
	}
	h.initiate = func(c *proc.Context, src, dst vm.VAddr, size uint64) (uint64, error) {
		prog := h.compile(src, dst, size)
		for attempt := 0; attempt < retries; attempt++ {
			status, err := runCheckedProgram(c, prog)
			if err != nil {
				return dma.StatusFailure, err
			}
			if status == dma.StatusFailure {
				// Figure 7: "If (return_status == DMA_FAILURE) goto 1".
				continue
			}
			if status == dma.StatusAccepted && !r.LooseStatus {
				// The final load extended someone else's sequence
				// instead of completing ours: no transfer started.
				// The strict client retries; the paper's literal
				// client would report success here.
				continue
			}
			return status, nil
		}
		return dma.StatusFailure, ErrRetriesExhausted
	}
	return h, nil
}

// sequence compiles one attempt. The 5-access shape is Figure 7
// verbatim: STORE, LOAD, STORE, LOAD, LOAD with barriers after each
// store so the write buffer cannot collapse the repeated stores (§3.4).
func (r RepeatedPassing) sequence(src, dst vm.VAddr, size uint64) isa.Program {
	mb := func(p isa.Program) isa.Program {
		if r.Barriers {
			return append(p, isa.MB("flush write buffer (§3.4)"))
		}
		return p
	}
	var p isa.Program
	switch r.SeqLen() {
	case 3: // Dubnicki's original proposal.
		p = isa.Program{isa.Load(shadow(src), phys.Size64, "status1 from shadow(vsrc)")}
		p = append(p, isa.Store(shadow(dst), phys.Size64, size, "size to shadow(vdst)"))
		p = mb(p)
		p = append(p, isa.Load(shadow(src), phys.Size64, "status2 from shadow(vsrc); starts DMA"))
	case 4:
		p = isa.Program{isa.Store(shadow(dst), phys.Size64, size, "size to shadow(vdst)")}
		p = mb(p)
		p = append(p, isa.Load(shadow(src), phys.Size64, "status1 from shadow(vsrc)"))
		p = append(p, isa.Store(shadow(dst), phys.Size64, size, "size to shadow(vdst) again"))
		p = mb(p)
		p = append(p, isa.Load(shadow(src), phys.Size64, "status2; starts DMA"))
	default: // 5: Figure 7.
		p = isa.Program{isa.Store(shadow(dst), phys.Size64, size, "1: size to shadow(vdst)")}
		p = mb(p)
		p = append(p, isa.Load(shadow(src), phys.Size64, "2: status from shadow(vsrc)"))
		p = append(p, isa.Store(shadow(dst), phys.Size64, size, "3: size to shadow(vdst) again"))
		p = mb(p)
		p = append(p, isa.Load(shadow(src), phys.Size64, "4: status from shadow(vsrc) again"))
		p = append(p, isa.Load(shadow(dst), phys.Size64, "5: status from shadow(vdst); starts DMA"))
	}
	return p
}

// --- PAL code (§2.7) ---

// PALCode wraps the two-access paired sequence in an uninterruptible
// PAL call. Needs an Alpha host; no kernel modification (installing PAL
// code is a super-user boot-time action).
type PALCode struct{}

// Name implements Method.
func (PALCode) Name() string { return "PAL Code" }

// EngineMode implements Method.
func (PALCode) EngineMode() dma.Mode { return dma.ModePaired }

// SeqLen implements Method.
func (PALCode) SeqLen() int { return 0 }

// RequiresKernelMod implements Method.
func (PALCode) RequiresKernelMod() bool { return false }

// Attach implements Method.
func (pc PALCode) Attach(m *machine.Machine, p *proc.Process) (*Handle, error) {
	m.Kernel.InstallPALDMA()
	h := &Handle{method: pc, m: m, p: p}
	h.initiate = func(c *proc.Context, src, dst vm.VAddr, size uint64) (uint64, error) {
		return c.PALCall(kernel.PALUserDMA, uint64(src), uint64(dst), size)
	}
	return h, nil
}

// --- SHRIMP solution 1 (§2.4) ---

// SHRIMP1 maps each communication page out to a fixed destination; one
// compare-and-exchange initiates the transfer. Atomic by construction,
// but the destination cannot vary — the restrictiveness §2.4 notes.
type SHRIMP1 struct{}

// Name implements Method.
func (SHRIMP1) Name() string { return "SHRIMP solution 1 (mapped-out)" }

// EngineMode implements Method.
func (SHRIMP1) EngineMode() dma.Mode { return dma.ModeMappedOut }

// SeqLen implements Method.
func (SHRIMP1) SeqLen() int { return 0 }

// RequiresKernelMod implements Method.
func (SHRIMP1) RequiresKernelMod() bool { return false }

// Attach implements Method. Destinations are fixed per page with
// MapOutPage before use; DMA ignores its dst argument.
func (s SHRIMP1) Attach(m *machine.Machine, p *proc.Process) (*Handle, error) {
	h := &Handle{method: s, m: m, p: p}
	h.compile = func(src, _ vm.VAddr, size uint64) isa.Program {
		return isa.Program{
			isa.Swap(shadow(src), phys.Size64, size, "compare&exchange: size in, status out"),
		}
	}
	h.initiate = func(c *proc.Context, src, _ vm.VAddr, size uint64) (uint64, error) {
		return c.Swap(shadow(src), phys.Size64, size)
	}
	return h, nil
}

// MapOutPage fixes the destination of the page holding srcVA (kernel
// setup). dstPA is the physical destination base (local or remote
// window).
func (SHRIMP1) MapOutPage(m *machine.Machine, p *proc.Process, srcVA vm.VAddr, dstPA phys.Addr) error {
	return m.Kernel.MapOut(p, srcVA, dstPA)
}

// --- SHRIMP solution 2 (Figure 2, §2.5) ---

// SHRIMP2 is the two-access paired sequence issued directly from user
// mode. Without the kernel's context-switch invalidation it is racy
// (the Figure 2 caption's caveat); WithKernelMod installs that hook.
type SHRIMP2 struct {
	// WithKernelMod enables the context-switch abort — the kernel
	// modification the paper's methods make unnecessary.
	WithKernelMod bool
	// MaxRetries bounds the retry loop when aborts make attempts fail.
	MaxRetries int
}

// Name implements Method.
func (s SHRIMP2) Name() string {
	if s.WithKernelMod {
		return "SHRIMP solution 2 (kernel-mod)"
	}
	return "SHRIMP solution 2 (unsafe)"
}

// EngineMode implements Method.
func (SHRIMP2) EngineMode() dma.Mode { return dma.ModePaired }

// SeqLen implements Method.
func (SHRIMP2) SeqLen() int { return 0 }

// RequiresKernelMod implements Method.
func (s SHRIMP2) RequiresKernelMod() bool { return s.WithKernelMod }

// Attach implements Method.
func (s SHRIMP2) Attach(m *machine.Machine, p *proc.Process) (*Handle, error) {
	if s.WithKernelMod {
		m.Kernel.EnableSHRIMP2Hook()
	}
	return pairedHandle(s, m, p, s.MaxRetries), nil
}

// --- FLASH (§2.6) ---

// FLASH is the paired sequence made safe by telling the engine which
// process runs at every context switch — a kernel modification.
type FLASH struct {
	MaxRetries int
}

// Name implements Method.
func (FLASH) Name() string { return "FLASH (PID tracking)" }

// EngineMode implements Method.
func (FLASH) EngineMode() dma.Mode { return dma.ModePaired }

// SeqLen implements Method.
func (FLASH) SeqLen() int { return 0 }

// RequiresKernelMod implements Method.
func (FLASH) RequiresKernelMod() bool { return true }

// Attach implements Method.
func (f FLASH) Attach(m *machine.Machine, p *proc.Process) (*Handle, error) {
	m.Kernel.EnableFLASHHook()
	return pairedHandle(f, m, p, f.MaxRetries), nil
}

// pairedHandle builds the Figure 2 two-access handle shared by SHRIMP2
// and FLASH, with a retry loop for hook-induced aborts.
func pairedHandle(method Method, m *machine.Machine, p *proc.Process, maxRetries int) *Handle {
	h := &Handle{method: method, m: m, p: p}
	h.compile = func(src, dst vm.VAddr, size uint64) isa.Program {
		return isa.Program{
			isa.Store(shadow(dst), phys.Size64, size, "pass pdst and size"),
			isa.Load(shadow(src), phys.Size64, "pass psrc; starts DMA; returns status"),
		}
	}
	if maxRetries <= 0 {
		maxRetries = 64
	}
	h.initiate = func(c *proc.Context, src, dst vm.VAddr, size uint64) (uint64, error) {
		prog := h.compile(src, dst, size)
		for attempt := 0; attempt < maxRetries; attempt++ {
			status, err := runProgram(c, prog)
			if err != nil {
				return dma.StatusFailure, err
			}
			if status != dma.StatusFailure {
				return status, nil
			}
		}
		return dma.StatusFailure, ErrRetriesExhausted
	}
	return h
}

// --- shared execution helpers ---

// runProgram executes prog on the guest context and returns the LAST
// load's value (the status word). It uses the allocation-free isa
// entry point: this sits on the per-message send path.
func runProgram(c *proc.Context, prog isa.Program) (uint64, error) {
	v, ok, err := isa.RunLast(c, prog)
	if err != nil {
		return dma.StatusFailure, err
	}
	if !ok {
		return dma.StatusFailure, fmt.Errorf("userdma: sequence produced no status")
	}
	return v, nil
}

// runCheckedProgram executes prog but aborts the attempt as soon as any
// intermediate load reports DMA_FAILURE — Figure 7's per-step
// "if (return_status == DMA_FAILURE) goto 1". It takes any executor so
// the scheduler path (proc.Context) and the hosted direct path
// (DirectCPU) share one attempt semantics.
func runCheckedProgram(c isa.Executor, prog isa.Program) (uint64, error) {
	var last uint64 = dma.StatusFailure
	for _, ins := range prog {
		switch ins.Op {
		case isa.OpLoad:
			v, err := c.Load(ins.Addr, ins.Size)
			if err != nil {
				return dma.StatusFailure, err
			}
			if v == dma.StatusFailure {
				return dma.StatusFailure, nil
			}
			last = v
		case isa.OpStore:
			if err := c.Store(ins.Addr, ins.Size, ins.Val); err != nil {
				return dma.StatusFailure, err
			}
		case isa.OpMB:
			if err := c.MB(); err != nil {
				return dma.StatusFailure, err
			}
		case isa.OpSwap:
			v, err := c.Swap(ins.Addr, ins.Size, ins.Val)
			if err != nil {
				return dma.StatusFailure, err
			}
			last = v
		}
	}
	return last, nil
}
