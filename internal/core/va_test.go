package userdma

import (
	"testing"

	"uldma/internal/dma"
)

// TestVATable1Ordering is the vasweep acceptance criterion: Table 1's
// protocol ordering (kernel-level slowest, then repeated passing, then
// key-based, then extended shadow) survives IOMMU-translated
// initiation, because the user-level instruction sequences are
// unchanged — translation is a walk-time cost.
func TestVATable1Ordering(t *testing.T) {
	rows, err := VATable1(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("VATable1 returned %d rows, want 4", len(rows))
	}
	byName := map[string]VACompareRow{}
	for _, r := range rows {
		byName[r.Method] = r
		if r.VAMean <= 0 || r.ShadowMean <= 0 {
			t.Fatalf("%s: non-positive means (shadow %v, va %v)", r.Method, r.ShadowMean, r.VAMean)
		}
	}
	kern := byName["Kernel-level DMA"].VAMean
	ext := byName["Ext. Shadow Addressing"].VAMean
	rep := byName["Rep. Passing of Arguments"].VAMean
	key := byName["Key-based DMA"].VAMean
	if !(kern > rep && rep > key && key > ext) {
		t.Fatalf("Table 1 ordering lost under VA initiation: kernel %v, rep %v, key %v, ext %v",
			kern, rep, key, ext)
	}
	// Zero-length initiation passes arguments only; the VA path adds no
	// per-initiation instructions, so the user-level means must match
	// the shadow path exactly for the paper's three user-level methods.
	for _, name := range []string{"Ext. Shadow Addressing", "Rep. Passing of Arguments", "Key-based DMA"} {
		r := byName[name]
		if r.VAMean != r.ShadowMean {
			t.Errorf("%s: VA mean %v != shadow mean %v (initiation cost must not change)",
				name, r.VAMean, r.ShadowMean)
		}
	}
}

// TestMeasureIOTLBKnee sweeps the working set past the IOTLB and checks
// the hit rate collapses at the knee (cyclic access is LRU's worst
// case) and the per-transfer latency pays for it.
func TestMeasureIOTLBKnee(t *testing.T) {
	const entries, transfers = 8, 64
	small, err := MeasureIOTLB(2, entries, transfers)
	if err != nil {
		t.Fatal(err)
	}
	large, err := MeasureIOTLB(4*entries, entries, transfers)
	if err != nil {
		t.Fatal(err)
	}
	if small.HitRate < 0.9 {
		t.Fatalf("working set inside the IOTLB hit rate %.3f, want >= 0.9", small.HitRate)
	}
	if large.HitRate >= small.HitRate {
		t.Fatalf("hit rate did not collapse past the knee: %.3f (small) vs %.3f (large)",
			small.HitRate, large.HitRate)
	}
	if large.PerTransfer <= small.PerTransfer {
		t.Fatalf("IOTLB misses cost nothing: %v (small) vs %v (large)",
			small.PerTransfer, large.PerTransfer)
	}
	// Determinism: same cell, same world, same digest.
	again, err := MeasureIOTLB(4*entries, entries, transfers)
	if err != nil {
		t.Fatal(err)
	}
	if again.Fingerprint != large.Fingerprint {
		t.Fatalf("IOTLB cell not reproducible: %#x vs %#x", large.Fingerprint, again.Fingerprint)
	}
}

// TestPagingBenchPoliciesDiverge is the paging acceptance criterion:
// with the pager's budget oversubscribed, the three recovery policies
// produce measurably different goodput/latency profiles, and every
// faulted run replays byte-identically from its configuration.
func TestPagingBenchPoliciesDiverge(t *testing.T) {
	const pages, budget, transfers = 16, 6, 48
	results := map[dma.RecoveryPolicy]PagingResult{}
	for _, pol := range []dma.RecoveryPolicy{dma.RecoverStall, dma.RecoverBounce, dma.RecoverPin} {
		r, err := PagingBench(pol, pages, budget, transfers)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if r.Evictions == 0 || r.PageIns == 0 {
			t.Fatalf("%v: oversubscribed run took no paging (evictions %d, page-ins %d)",
				pol, r.Evictions, r.PageIns)
		}
		if r.GoodputMBps <= 0 || r.P99 < r.P50 {
			t.Fatalf("%v: degenerate stats: goodput %.2f, p50 %v, p99 %v",
				pol, r.GoodputMBps, r.P50, r.P99)
		}
		results[pol] = r
	}
	// Policy signatures: stall suspends, bounce redirects, pin pre-pins
	// (and never faults mid-walk).
	if results[dma.RecoverStall].Stalls == 0 {
		t.Error("stall policy recorded no stalls")
	}
	if results[dma.RecoverBounce].Bounced == 0 {
		t.Error("bounce policy bounced no pages")
	}
	pin := results[dma.RecoverPin]
	if pin.Pins == 0 {
		t.Error("pin policy recorded no pins")
	}
	if pin.Faults != 0 {
		t.Errorf("pin policy took %d mid-walk faults, want 0", pin.Faults)
	}
	// The profiles must actually diverge.
	if results[dma.RecoverStall].Fingerprint == results[dma.RecoverBounce].Fingerprint {
		t.Error("stall and bounce produced identical worlds")
	}
	if results[dma.RecoverStall].GoodputMBps == results[dma.RecoverBounce].GoodputMBps &&
		results[dma.RecoverStall].GoodputMBps == pin.GoodputMBps {
		t.Error("all three policies produced identical goodput")
	}
	// Replayability: rerunning a faulted configuration reproduces the
	// exact world digest.
	again, err := PagingBench(dma.RecoverBounce, pages, budget, transfers)
	if err != nil {
		t.Fatal(err)
	}
	if again.Fingerprint != results[dma.RecoverBounce].Fingerprint {
		t.Fatalf("faulted run not replayable: %#x vs %#x",
			results[dma.RecoverBounce].Fingerprint, again.Fingerprint)
	}
}

// TestPagingBenchNoOversub is the control: budget covering the whole
// working set means no evictions and identical behavior across
// policies' fault paths (none taken).
func TestPagingBenchNoOversub(t *testing.T) {
	const pages, budget, transfers = 4, 8, 16
	r, err := PagingBench(dma.RecoverStall, pages, budget, transfers)
	if err != nil {
		t.Fatal(err)
	}
	if r.Evictions != 0 {
		t.Fatalf("under-subscribed run evicted %d pages", r.Evictions)
	}
	if r.Faults > uint64(pages+1) {
		t.Fatalf("under-subscribed run faulted %d times, want at most the %d cold page-ins",
			r.Faults, pages+1)
	}
}
