package userdma

// Observability cost pins for the Table-1 initiation hot path (the
// paper's §3.4 measurement loop). Two promises from internal/obs:
//
//   - Disabled tracing is free: present-but-nil obs adds zero
//     allocations per initiation over the pre-obs baseline — the only
//     steady-state allocations on the path are the DMA engine's
//     per-transfer records and their completion events, which predate
//     obs (BenchmarkObsDisabled reports them; the marginal-malloc test
//     below pins the obs delta at zero by comparing traced against
//     untraced runs, framing guest-goroutine work that
//     testing.AllocsPerRun cannot).
//
//   - Observation never perturbs the world: enabling the trace spine
//     changes no simulated picosecond — the event stream is appended
//     outside the cost model, so a traced run and an untraced run of
//     the same workload read the same clock.

import (
	"bytes"
	"runtime"
	"runtime/debug"
	"testing"

	"uldma/internal/obs"
	"uldma/internal/par"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/vm"
)

// runInitiations builds the extended-shadow Table-1 world, performs
// iters zero-length initiations in guest code, and reports the host
// mallocs across the run and the simulated time the loop consumed.
// traceCap > 0 enables the trace spine with that capacity.
func runInitiations(tb testing.TB, iters, traceCap int) (mallocs uint64, elapsed sim.Time) {
	tb.Helper()
	method := ExtShadow{}
	m := Machine(method)
	if traceCap > 0 {
		m.EnableTrace(traceCap, obs.Ring)
	}
	var h *Handle
	const src, dst = vm.VAddr(0x10000), vm.VAddr(0x20000)
	p := m.NewProcess("bench", func(c *proc.Context) error {
		if _, err := h.DMA(c, src, dst, 0); err != nil { // warm TLB/engine
			return err
		}
		start := m.Clock.Now()
		for i := 0; i < iters; i++ {
			if _, err := h.DMA(c, src, dst, 0); err != nil {
				return err
			}
		}
		elapsed = m.Clock.Now() - start
		return nil
	})
	var err error
	if h, err = method.Attach(m, p); err != nil {
		tb.Fatal(err)
	}
	if _, err := m.SetupPages(p, src, 1, vm.Read|vm.Write); err != nil {
		tb.Fatal(err)
	}
	if _, err := m.SetupPages(p, dst, 1, vm.Read|vm.Write); err != nil {
		tb.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := m.Run(proc.NewRoundRobin(1<<20), 1<<30); err != nil {
		tb.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	if p.Err() != nil {
		tb.Fatal(p.Err())
	}
	return after.Mallocs - before.Mallocs, elapsed
}

// TestObsZeroMarginalAllocDelta: the obs plane must not allocate on
// the initiation hot path — disabled OR enabled (steady state, ring
// full). The residual marginal allocations are the DMA engine's
// per-transfer records, which predate obs; the test pins (a) that
// residual staying small and (b) the traced-minus-untraced delta at
// zero. Marginal framing: a short loop against a 4x longer one on
// identical worlds, so setup, warmup and ring growth cancel.
func TestObsZeroMarginalAllocDelta(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const small, big = 512, 2048
	marginal := func(traceCap int) float64 {
		a, _ := runInitiations(t, small, traceCap)
		b, _ := runInitiations(t, big, traceCap)
		return (float64(b) - float64(a)) / float64(big-small)
	}
	off := marginal(0)
	on := marginal(256) // cap << small*events/op: the ring is in steady state
	if off > 3.5 {
		t.Fatalf("obs-disabled initiation path allocates %.2f mallocs/op; the engine's transfer records account for ~2-3 — something new crept in",
			off)
	}
	if delta := on - off; delta > 0.5 {
		t.Fatalf("enabling the trace spine costs %.2f mallocs/op on the hot path (off %.2f, on %.2f); the ring must reuse slots",
			delta, off, on)
	}
}

// TestObsTracingNoCycleDelta: enabling the trace spine must not move
// the simulated clock by a single picosecond — identical workload,
// identical elapsed simulated time, traced or not.
func TestObsTracingNoCycleDelta(t *testing.T) {
	const iters = 512
	_, off := runInitiations(t, iters, 0)
	_, on := runInitiations(t, iters, 4096)
	if off != on {
		t.Fatalf("tracing perturbed the world: %v simulated (off) vs %v (on)", off, on)
	}
	if off == 0 {
		t.Fatal("loop consumed no simulated time; the comparison is vacuous")
	}
}

// TestTraceParityAcrossWorkers: the exported trace bytes for one world
// are a pure function of that world, not of how many sibling worlds
// run concurrently. Eight identical worlds are traced under worker
// counts {1, 4, 8}; every world's Perfetto document must be
// byte-identical across all three runs. Runs under -race in CI.
func TestTraceParityAcrossWorkers(t *testing.T) {
	const worlds = 8
	render := func(workers int) [][]byte {
		out := make([][]byte, worlds)
		err := par.Do(worlds, workers, func(i int) error {
			method := ExtShadow{}
			m := Machine(method)
			tr := m.EnableTrace(4096, obs.Ring)
			var h *Handle
			const src, dst = vm.VAddr(0x10000), vm.VAddr(0x20000)
			p := m.NewProcess("bench", func(c *proc.Context) error {
				for k := 0; k < 32; k++ {
					if _, err := h.DMA(c, src, dst, 0); err != nil {
						return err
					}
				}
				return nil
			})
			var err error
			if h, err = method.Attach(m, p); err != nil {
				return err
			}
			if _, err := m.SetupPages(p, src, 1, vm.Read|vm.Write); err != nil {
				return err
			}
			if _, err := m.SetupPages(p, dst, 1, vm.Read|vm.Write); err != nil {
				return err
			}
			if err := m.Run(proc.NewRoundRobin(1<<20), 1<<30); err != nil {
				return err
			}
			if p.Err() != nil {
				return p.Err()
			}
			var buf bytes.Buffer
			if err := obs.WritePerfetto(&buf, []obs.PerfettoProcess{
				{PID: i, Name: "world", Events: tr.Events()},
			}); err != nil {
				return err
			}
			out[i] = buf.Bytes()
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	want := render(1)
	for _, e := range want {
		if len(e) == 0 {
			t.Fatal("empty trace document")
		}
	}
	for _, w := range []int{4, 8} {
		got := render(w)
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("workers=%d: world %d trace bytes diverged from serial run", w, i)
			}
		}
	}
}

// BenchmarkObsDisabled is the headline number: the Table-1 initiation
// loop with the observability plane present but disabled. The obs
// contribution is 0 allocs/op — the per-iteration path is a nil-pointer
// check and nothing else; the allocations the report shows are the DMA
// engine's per-transfer records, which predate obs (compare against
// BenchmarkObsEnabled: the delta is the cost of tracing, ~0).
func BenchmarkObsDisabled(b *testing.B) {
	method := ExtShadow{}
	m := Machine(method)
	var h *Handle
	const src, dst = vm.VAddr(0x10000), vm.VAddr(0x20000)
	p := m.NewProcess("bench", func(c *proc.Context) error {
		if _, err := h.DMA(c, src, dst, 0); err != nil {
			return err
		}
		for i := 0; i < b.N; i++ {
			if _, err := h.DMA(c, src, dst, 0); err != nil {
				return err
			}
		}
		return nil
	})
	var err error
	if h, err = method.Attach(m, p); err != nil {
		b.Fatal(err)
	}
	if _, err := m.SetupPages(p, src, 1, vm.Read|vm.Write); err != nil {
		b.Fatal(err)
	}
	if _, err := m.SetupPages(p, dst, 1, vm.Read|vm.Write); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := m.Run(proc.NewRoundRobin(1<<30), 1<<62); err != nil {
		b.Fatal(err)
	}
	if p.Err() != nil {
		b.Fatal(p.Err())
	}
}

// BenchmarkObsEnabled is the paid-for counterpart: same loop with the
// trace spine recording into a default-capacity ring.
func BenchmarkObsEnabled(b *testing.B) {
	method := ExtShadow{}
	m := Machine(method)
	m.EnableTrace(0, obs.Ring)
	var h *Handle
	const src, dst = vm.VAddr(0x10000), vm.VAddr(0x20000)
	p := m.NewProcess("bench", func(c *proc.Context) error {
		if _, err := h.DMA(c, src, dst, 0); err != nil {
			return err
		}
		for i := 0; i < b.N; i++ {
			if _, err := h.DMA(c, src, dst, 0); err != nil {
				return err
			}
		}
		return nil
	})
	var err error
	if h, err = method.Attach(m, p); err != nil {
		b.Fatal(err)
	}
	if _, err := m.SetupPages(p, src, 1, vm.Read|vm.Write); err != nil {
		b.Fatal(err)
	}
	if _, err := m.SetupPages(p, dst, 1, vm.Read|vm.Write); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := m.Run(proc.NewRoundRobin(1<<30), 1<<62); err != nil {
		b.Fatal(err)
	}
	if p.Err() != nil {
		b.Fatal(p.Err())
	}
}
