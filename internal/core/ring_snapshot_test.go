package userdma

import (
	"testing"

	"uldma/internal/machine"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/vm"
)

// ringPhase runs one ring workload life on m: a fresh process arms a
// depth-8 ring, streams one batch of real payloads, then leaves three
// more descriptors posted in the ring page WITHOUT ringing the doorbell
// — the classic mid-batch instant a fleet snapshot lands on. The
// partially-filled ring page, the engine's ring generation/counters and
// the kernel's context tables all have to survive the snapshot for the
// rerun to be byte-identical.
func ringPhase(t *testing.T, m *machine.Machine, name string) {
	t.Helper()
	const (
		ringVA vm.VAddr = 0x40000
		srcVA  vm.VAddr = 0x10000
		dstVA  vm.VAddr = 0x20000
		depth           = 8
		kicked          = 5
	)
	var h *RingHandle
	p := m.NewProcess(name, func(c *proc.Context) error {
		if err := h.Arm(); err != nil {
			return err
		}
		src, dst := h.Frames(0)[0], h.Frames(1)[0]
		for s := uint64(0); s < kicked; s++ {
			if err := h.Post(c, s, src+phys.Addr(s*1024), dst+phys.Addr(s*1024), 1024); err != nil {
				return err
			}
		}
		if err := h.Doorbell(c, kicked); err != nil {
			return err
		}
		if err := h.WaitDrain(c, 10_000); err != nil {
			return err
		}
		// Mid-batch: descriptors posted, doorbell never rung. These are
		// ordinary cached stores into the ring page.
		for s := uint64(kicked); s < depth; s++ {
			if err := h.PostPending(c, s, src, dst, 512); err != nil {
				return err
			}
		}
		return c.MB()
	})
	var err error
	if h, err = NewRing(m, p, ringVA, depth); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddBuffer(srcVA, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddBuffer(dstVA, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(proc.NewRoundRobin(1<<20), 1<<30); err != nil {
		t.Fatal(err)
	}
	if p.Err() != nil {
		t.Fatalf("%s: %v", name, p.Err())
	}
	m.Settle()
}

// TestRingSnapshotFidelity pins the ISSUE's snapshot contract: a fleet
// snapshot taken after a ring life (head advanced, extents registered,
// ring counters non-zero, three descriptors posted but never kicked)
// rewinds and reruns byte-identically — same machine fingerprint from
// the restored origin and from every clone.
func TestRingSnapshotFidelity(t *testing.T) {
	method := KeyBased{}

	origin := Machine(method)
	ringPhase(t, origin, "life1")
	snap, err := origin.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snapFP := origin.Fingerprint()

	// Determinism baseline: an identical fresh world reaches the same
	// fingerprint, ring counters included.
	fresh := Machine(method)
	ringPhase(t, fresh, "life1")
	if fp := fresh.Fingerprint(); fp != snapFP {
		t.Fatalf("phase-1 fingerprint not reproducible:\n  origin %v\n  fresh  %v", snapFP, fp)
	}

	// Second life on a clone of the snapshot.
	clone1, err := machine.NewFromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	ringPhase(t, clone1, "life2")
	wantFP := clone1.Fingerprint()
	if wantFP == snapFP {
		t.Fatal("second life left no trace in the fingerprint")
	}

	// The same life on a second clone must be byte-identical.
	clone2, err := machine.NewFromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	ringPhase(t, clone2, "life2")
	if fp := clone2.Fingerprint(); fp != wantFP {
		t.Fatalf("clone rerun diverged:\n  clone1 %v\n  clone2 %v", wantFP, fp)
	}

	// Rewind the origin itself and replay: restore must put back the
	// ring page bytes, the engine's ring state and the kernel tables.
	ringPhase(t, origin, "life2")
	if fp := origin.Fingerprint(); fp != wantFP {
		t.Fatalf("origin's own second life diverged from the clones:\n  origin %v\n  clones %v", fp, wantFP)
	}
	if err := origin.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if fp := origin.Fingerprint(); fp != snapFP {
		t.Fatalf("restore did not rewind the world:\n  got  %v\n  want %v", fp, snapFP)
	}
	ringPhase(t, origin, "life2")
	if fp := origin.Fingerprint(); fp != wantFP {
		t.Fatalf("rewound rerun diverged:\n  got  %v\n  want %v", fp, wantFP)
	}
}
