package userdma

import (
	"fmt"

	"uldma/internal/dma"
	"uldma/internal/machine"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/vm"
)

// Experiment X6 quantifies the paper's opening argument:
//
//	"Soon, the operating system overhead associated with starting a DMA
//	 will be larger than the data transfer itself, esp. for small data
//	 transfers."
//
// For each method and transfer size we measure the initiation time and
// the wire time of the transfer, and report the crossover: the smallest
// size whose transfer outweighs its initiation.

// BreakEvenPoint is one (method, size) measurement.
type BreakEvenPoint struct {
	Size       uint64
	Initiation sim.Time // start of sequence to status returned
	Transfer   sim.Time // engine accept to last byte delivered
	// InitShare is initiation / (initiation + transfer).
	InitShare float64
}

// DefaultSizes is the sweep used by the tools: 8 B to 64 KiB.
var DefaultSizes = []uint64{8, 64, 256, 1024, 4096, 16384, 65536}

// BreakEven sweeps transfer sizes for one method on its calibrated
// preset. Each size runs on a fresh machine so engine queueing never
// contaminates the numbers.
func BreakEven(method Method, sizes []uint64) ([]BreakEvenPoint, error) {
	var out []BreakEvenPoint
	for _, size := range sizes {
		pt, err := breakEvenOne(method, size)
		if err != nil {
			return nil, fmt.Errorf("size %d: %w", size, err)
		}
		out = append(out, pt)
	}
	return out, nil
}

func breakEvenOne(method Method, size uint64) (BreakEvenPoint, error) {
	return breakEvenOneCfg(method, ConfigFor(method), size)
}

// BreakEvenCell measures one (method, config, size) break-even cell on
// a fresh machine — the unit the experiment layer (internal/exp)
// parallelises.
func BreakEvenCell(method Method, cfg machine.Config, size uint64) (BreakEvenPoint, error) {
	return breakEvenOneCfg(method, cfg, size)
}

func breakEvenOneCfg(method Method, cfg machine.Config, size uint64) (BreakEvenPoint, error) {
	m, err := machine.New(cfg)
	if err != nil {
		return BreakEvenPoint{}, err
	}
	pageSize := m.Cfg.PageSize
	pages := int((size + pageSize - 1) / pageSize)
	if pages == 0 {
		pages = 1
	}

	var h *Handle
	var pt BreakEvenPoint
	const srcBase, dstBase = vm.VAddr(0x100000), vm.VAddr(0x900000)
	p := m.NewProcess("bench", func(c *proc.Context) error {
		// Warm the TLB so initiation matches the Table 1 methodology
		// (zero-length: no transfer, no bus contention).
		if _, err := h.DMA(c, srcBase, dstBase, 0); err != nil {
			return err
		}
		start := m.Clock.Now()
		st, err := h.DMA(c, srcBase, dstBase, size)
		if err != nil {
			return err
		}
		if st == dma.StatusFailure {
			return fmt.Errorf("userdma: initiation refused")
		}
		pt.Initiation = m.Clock.Now() - start
		return nil
	})
	h, err = method.Attach(m, p)
	if err != nil {
		return pt, err
	}
	if _, err := m.SetupPages(p, srcBase, pages, vm.Read|vm.Write); err != nil {
		return pt, err
	}
	dstFrames, err := m.SetupPages(p, dstBase, pages, vm.Read|vm.Write)
	if err != nil {
		return pt, err
	}
	if s1, ok := method.(SHRIMP1); ok {
		if err := s1.MapOutPage(m, p, srcBase, dstFrames[0]); err != nil {
			return pt, err
		}
	}
	if err := m.Run(proc.NewRoundRobin(1<<20), 1<<30); err != nil {
		return pt, err
	}
	if p.Err() != nil {
		return pt, p.Err()
	}
	t := m.Engine.LastTransfer()
	if t == nil || t.Failed {
		return pt, fmt.Errorf("userdma: no transfer recorded")
	}
	pt.Size = size
	pt.Transfer = t.End - t.Start
	pt.InitShare = float64(pt.Initiation) / float64(pt.Initiation+pt.Transfer)
	return pt, nil
}

// Crossover returns the smallest measured size whose transfer time
// meets or exceeds its initiation time, and whether any size did.
func Crossover(points []BreakEvenPoint) (uint64, bool) {
	for _, pt := range points {
		if pt.Transfer >= pt.Initiation {
			return pt.Size, true
		}
	}
	return 0, false
}

// Experiment X7: the paper's motivating trend. "Operating Systems do
// not get faster as fast as hardware does ... the operating system
// overhead keeps getting an ever-increasing percentage of the DMA
// transfer time." TrendSweep measures kernel and extended-shadow
// initiation across three hardware generations and the break-even size
// of the kernel path in each.

// Era is one hardware generation in the trend sweep.
type Era struct {
	Name     string
	Config   func(mode dma.Mode, seqLen int) machine.Config
	WireSize uint64 // reference message size for the share column
}

// TrendEras returns the three generations of experiment X7.
func TrendEras() []Era {
	return []Era{
		{Name: "1994 (100MHz, TC, 1.5k-cycle trap)", Config: machine.Workstation1994, WireSize: 1024},
		{Name: "1997 (150MHz, TC, 2.2k-cycle trap)", Config: machine.Alpha3000TC, WireSize: 1024},
		{Name: "2000 (500MHz, PCI-66, 4.3k-cycle trap)", Config: machine.Workstation2000, WireSize: 1024},
	}
}

// TrendPoint is one era's measurement.
type TrendPoint struct {
	Era             string
	KernelInit      sim.Time
	UserInit        sim.Time // extended shadow addressing
	KernelCrossover uint64   // bytes where the wire outweighs the kernel trap
}

// TrendSweep runs experiment X7.
func TrendSweep(iters int) ([]TrendPoint, error) {
	var out []TrendPoint
	for _, era := range TrendEras() {
		kCfg := era.Config(dma.ModePaired, 0)
		kRes, err := MeasureMethod(KernelLevel{}, kCfg, iters)
		if err != nil {
			return nil, fmt.Errorf("%s/kernel: %w", era.Name, err)
		}
		uCfg := era.Config(dma.ModeExtended, 0)
		uRes, err := MeasureMethod(ExtShadow{}, uCfg, iters)
		if err != nil {
			return nil, fmt.Errorf("%s/user: %w", era.Name, err)
		}
		pts, err := breakEvenEra(era, DefaultSizes)
		if err != nil {
			return nil, err
		}
		cross, _ := Crossover(pts)
		out = append(out, TrendPoint{
			Era:             era.Name,
			KernelInit:      kRes.Mean,
			UserInit:        uRes.Mean,
			KernelCrossover: cross,
		})
	}
	return out, nil
}

// breakEvenEra runs the kernel-path break-even sweep on an era's
// machine (BreakEven always uses the 1997 preset, so the trend needs
// its own variant).
func breakEvenEra(era Era, sizes []uint64) ([]BreakEvenPoint, error) {
	var out []BreakEvenPoint
	for _, size := range sizes {
		pt, err := breakEvenOneCfg(KernelLevel{}, era.Config(dma.ModePaired, 0), size)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}
