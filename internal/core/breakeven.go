package userdma

import (
	"fmt"

	"uldma/internal/dma"
	"uldma/internal/machine"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/vm"
)

// Experiment X6 quantifies the paper's opening argument:
//
//	"Soon, the operating system overhead associated with starting a DMA
//	 will be larger than the data transfer itself, esp. for small data
//	 transfers."
//
// For each method and transfer size we measure the initiation time and
// the wire time of the transfer, and report the crossover: the smallest
// size whose transfer outweighs its initiation.

// BreakEvenPoint is one (method, size) measurement.
type BreakEvenPoint struct {
	Size       uint64
	Initiation sim.Time // start of sequence to status returned
	Transfer   sim.Time // engine accept to last byte delivered
	// InitShare is initiation / (initiation + transfer).
	InitShare float64
}

// DefaultSizes is the sweep used by the tools: 8 B to 64 KiB.
var DefaultSizes = []uint64{8, 64, 256, 1024, 4096, 16384, 65536}

// BreakEven sweeps transfer sizes for one method on its calibrated
// preset. Each size runs on a pristine world so engine queueing never
// contaminates the numbers — one machine is built and snapshotted at
// construction, then rewound in place between sizes instead of being
// reconstructed (a pristine restored world is indistinguishable from a
// fresh one; the snapshot equivalence tests pin this).
func BreakEven(method Method, sizes []uint64) ([]BreakEvenPoint, error) {
	snap, err := NewWorld(ConfigFor(method))
	if err != nil {
		return nil, err
	}
	var out []BreakEvenPoint
	for _, size := range sizes {
		pt, err := breakEvenOnWorld(snap, method, size)
		if err != nil {
			return nil, fmt.Errorf("size %d: %w", size, err)
		}
		out = append(out, pt)
	}
	return out, nil
}

// NewWorld builds a machine from cfg and captures it at construction.
// The snapshot is the reusable form of the configuration: hydrate any
// number of independent clones with machine.NewFromSnapshot (cells
// running in parallel), or rewind the origin in place between serial
// runs. Memory is shared copy-on-write, so clones of a pristine world
// cost a chunk-pointer table, not a memory image.
func NewWorld(cfg machine.Config) (*machine.Snapshot, error) {
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	return m.Snapshot()
}

// BreakEvenCell measures one (method, config, size) break-even cell on
// a fresh machine — the unit the experiment layer (internal/exp)
// parallelises.
func BreakEvenCell(method Method, cfg machine.Config, size uint64) (BreakEvenPoint, error) {
	m, err := machine.New(cfg)
	if err != nil {
		return BreakEvenPoint{}, err
	}
	return breakEvenOn(m, method, size)
}

// BreakEvenCellFrom measures one break-even cell on a clone hydrated
// from a pristine world snapshot (see NewWorld). Clones are independent
// worlds, so any number of cells can run concurrently off one snapshot.
func BreakEvenCellFrom(snap *machine.Snapshot, method Method, size uint64) (BreakEvenPoint, error) {
	m, err := machine.NewFromSnapshot(snap)
	if err != nil {
		return BreakEvenPoint{}, err
	}
	return breakEvenOn(m, method, size)
}

// breakEvenOnWorld rewinds the snapshot's origin machine in place and
// measures one cell on it — the serial-sweep path, which reuses one
// world across sizes.
func breakEvenOnWorld(snap *machine.Snapshot, method Method, size uint64) (BreakEvenPoint, error) {
	m, err := machine.RestoreOrigin(snap)
	if err != nil {
		return BreakEvenPoint{}, err
	}
	return breakEvenOn(m, method, size)
}

func breakEvenOneCfg(method Method, cfg machine.Config, size uint64) (BreakEvenPoint, error) {
	m, err := machine.New(cfg)
	if err != nil {
		return BreakEvenPoint{}, err
	}
	return breakEvenOn(m, method, size)
}

func breakEvenOn(m *machine.Machine, method Method, size uint64) (BreakEvenPoint, error) {
	pageSize := m.Cfg.PageSize
	pages := int((size + pageSize - 1) / pageSize)
	if pages == 0 {
		pages = 1
	}

	var h *Handle
	var pt BreakEvenPoint
	const srcBase, dstBase = vm.VAddr(0x100000), vm.VAddr(0x900000)
	p := m.NewProcess("bench", func(c *proc.Context) error {
		// Warm the TLB so initiation matches the Table 1 methodology
		// (zero-length: no transfer, no bus contention).
		if _, err := h.DMA(c, srcBase, dstBase, 0); err != nil {
			return err
		}
		start := m.Clock.Now()
		st, err := h.DMA(c, srcBase, dstBase, size)
		if err != nil {
			return err
		}
		if st == dma.StatusFailure {
			return fmt.Errorf("userdma: initiation refused")
		}
		pt.Initiation = m.Clock.Now() - start
		return nil
	})
	var err error
	h, err = method.Attach(m, p)
	if err != nil {
		return pt, err
	}
	if _, err := m.SetupPages(p, srcBase, pages, vm.Read|vm.Write); err != nil {
		return pt, err
	}
	dstFrames, err := m.SetupPages(p, dstBase, pages, vm.Read|vm.Write)
	if err != nil {
		return pt, err
	}
	if s1, ok := method.(SHRIMP1); ok {
		if err := s1.MapOutPage(m, p, srcBase, dstFrames[0]); err != nil {
			return pt, err
		}
	}
	if err := m.Run(proc.NewRoundRobin(1<<20), 1<<30); err != nil {
		return pt, err
	}
	if p.Err() != nil {
		return pt, p.Err()
	}
	t := m.Engine.LastTransfer()
	if t == nil || t.Failed {
		return pt, fmt.Errorf("userdma: no transfer recorded")
	}
	pt.Size = size
	pt.Transfer = t.End - t.Start
	pt.InitShare = float64(pt.Initiation) / float64(pt.Initiation+pt.Transfer)
	return pt, nil
}

// Crossover returns the smallest measured size whose transfer time
// meets or exceeds its initiation time, and whether any size did.
func Crossover(points []BreakEvenPoint) (uint64, bool) {
	for _, pt := range points {
		if pt.Transfer >= pt.Initiation {
			return pt.Size, true
		}
	}
	return 0, false
}

// Experiment X7: the paper's motivating trend. "Operating Systems do
// not get faster as fast as hardware does ... the operating system
// overhead keeps getting an ever-increasing percentage of the DMA
// transfer time." TrendSweep measures kernel and extended-shadow
// initiation across three hardware generations and the break-even size
// of the kernel path in each.

// Era is one hardware generation in the trend sweep.
type Era struct {
	Name     string
	Config   func(mode dma.Mode, seqLen int) machine.Config
	WireSize uint64 // reference message size for the share column
}

// TrendEras returns the three generations of experiment X7.
func TrendEras() []Era {
	return []Era{
		{Name: "1994 (100MHz, TC, 1.5k-cycle trap)", Config: machine.Workstation1994, WireSize: 1024},
		{Name: "1997 (150MHz, TC, 2.2k-cycle trap)", Config: machine.Alpha3000TC, WireSize: 1024},
		{Name: "2000 (500MHz, PCI-66, 4.3k-cycle trap)", Config: machine.Workstation2000, WireSize: 1024},
	}
}

// TrendPoint is one era's measurement.
type TrendPoint struct {
	Era             string
	KernelInit      sim.Time
	UserInit        sim.Time // extended shadow addressing
	KernelCrossover uint64   // bytes where the wire outweighs the kernel trap
}

// TrendSweep runs experiment X7.
func TrendSweep(iters int) ([]TrendPoint, error) {
	var out []TrendPoint
	for _, era := range TrendEras() {
		kCfg := era.Config(dma.ModePaired, 0)
		kRes, err := MeasureMethod(KernelLevel{}, kCfg, iters)
		if err != nil {
			return nil, fmt.Errorf("%s/kernel: %w", era.Name, err)
		}
		uCfg := era.Config(dma.ModeExtended, 0)
		uRes, err := MeasureMethod(ExtShadow{}, uCfg, iters)
		if err != nil {
			return nil, fmt.Errorf("%s/user: %w", era.Name, err)
		}
		pts, err := breakEvenEra(era, DefaultSizes)
		if err != nil {
			return nil, err
		}
		cross, _ := Crossover(pts)
		out = append(out, TrendPoint{
			Era:             era.Name,
			KernelInit:      kRes.Mean,
			UserInit:        uRes.Mean,
			KernelCrossover: cross,
		})
	}
	return out, nil
}

// breakEvenEra runs the kernel-path break-even sweep on an era's
// machine (BreakEven always uses the 1997 preset, so the trend needs
// its own variant). One world per era, rewound between sizes.
func breakEvenEra(era Era, sizes []uint64) ([]BreakEvenPoint, error) {
	snap, err := NewWorld(era.Config(dma.ModePaired, 0))
	if err != nil {
		return nil, err
	}
	var out []BreakEvenPoint
	for _, size := range sizes {
		pt, err := breakEvenOnWorld(snap, KernelLevel{}, size)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}
