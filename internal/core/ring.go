package userdma

// The batched-initiation client library: a user-level view of the
// engine's chained-descriptor rings (internal/dma/ring.go). Where every
// Method in this package pays one full initiation sequence per
// transfer, a RingHandle fills N descriptors with ordinary cached
// stores and pays ONE uncached doorbell store (plus one write-buffer
// flush) for the whole batch — the production-NIC amortization the
// ringdepth experiment quantifies.
//
// Setup mirrors Method.Attach: the kernel allocates the descriptor
// page, assigns a register context, registers the process's buffer
// frames with the engine (RDMA-style memory registration) and maps the
// per-context doorbell page at kernel.RingDoorbellVA. Arm performs
// that kernel work and is callable again after the context was revoked
// (the key-stealing policy), which is how oversubscribed processes
// re-attach mid-run.

import (
	"fmt"

	"uldma/internal/dma"
	"uldma/internal/kernel"
	"uldma/internal/machine"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/vm"
)

// RingHandle is one process's attachment to the batched descriptor-ring
// path.
type RingHandle struct {
	m      *machine.Machine
	p      *proc.Process
	ctx    int
	key    uint64
	depth  uint64
	ringVA vm.VAddr
	bufs   []ringBuf
}

// ringBuf is one buffer region the handle (re-)registers at Arm time.
type ringBuf struct {
	va     vm.VAddr
	pages  int
	frames []phys.Addr
}

// NewRing allocates the descriptor page at ringVA in p's address space
// and returns an un-armed handle for a ring of the given depth. Call
// AddBuffer for each data region, then Arm before the first Post.
func NewRing(m *machine.Machine, p *proc.Process, ringVA vm.VAddr, depth uint64) (*RingHandle, error) {
	if depth < 1 || depth > m.Engine.Config().RingMaxDepth() {
		return nil, fmt.Errorf("userdma: ring depth %d out of range 1..%d", depth, m.Engine.Config().RingMaxDepth())
	}
	if _, err := m.Kernel.AllocPage(p.AddressSpace(), ringVA, vm.Read|vm.Write); err != nil {
		return nil, err
	}
	return &RingHandle{m: m, p: p, ctx: -1, depth: depth, ringVA: ringVA}, nil
}

// AddBuffer allocates pages of data buffer at va and records the region
// for registration at Arm time. Returns the buffer's index for Frames.
func (h *RingHandle) AddBuffer(va vm.VAddr, pages int) (int, error) {
	ps := vm.VAddr(h.m.Cfg.PageSize)
	for i := 0; i < pages; i++ {
		if _, err := h.m.Kernel.AllocPage(h.p.AddressSpace(), va+vm.VAddr(i)*ps, vm.Read|vm.Write); err != nil {
			return 0, err
		}
	}
	h.bufs = append(h.bufs, ringBuf{va: va, pages: pages})
	return len(h.bufs) - 1, nil
}

// Arm (re)binds the ring to a register context: assign a context (the
// caller arbitrates contention via Kernel.AcquireContext first when
// policies matter), install the ring, register every buffer, map the
// doorbell page. Idempotent while the context is held; callable again
// after revocation.
func (h *RingHandle) Arm() error {
	ctx, key, err := h.m.Kernel.AssignContext(h.p)
	if err != nil {
		return err
	}
	if _, err := h.m.Kernel.SetupRing(h.p, h.ringVA, h.depth); err != nil {
		return err
	}
	for i := range h.bufs {
		frames, err := h.m.Kernel.RegisterRingBuffer(h.p, h.bufs[i].va, h.bufs[i].pages)
		if err != nil {
			return err
		}
		h.bufs[i].frames = frames
	}
	h.ctx, h.key = ctx, key
	return nil
}

// Armed reports whether the handle still holds its context with the
// ring installed — false after the kernel revoked the context (steal
// policy) or the process released it (yield policy).
func (h *RingHandle) Armed() bool {
	ctx, ok := h.m.Kernel.ContextOf(h.p)
	if !ok || ctx != h.ctx {
		return false
	}
	_, depth, _, _ := h.m.Engine.RingState(ctx)
	return depth == h.depth
}

// Context returns the register context the ring is armed on (-1 when
// un-armed).
func (h *RingHandle) Context() int { return h.ctx }

// Depth returns the ring's slot count.
func (h *RingHandle) Depth() uint64 { return h.depth }

// Frames returns buffer buf's physical frames (valid after Arm) — the
// addresses descriptors name in their Src/Dst slots.
func (h *RingHandle) Frames(buf int) []phys.Addr { return h.bufs[buf].frames }

// slotVA returns the virtual address of descriptor slot's base.
func (h *RingHandle) slotVA(slot uint64) vm.VAddr {
	return h.ringVA + vm.VAddr(slot*dma.DescBytes)
}

// Post fills descriptor slot with three ordinary cached stores — the
// cheap, per-transfer part of batched initiation.
func (h *RingHandle) Post(c *proc.Context, slot uint64, src, dst phys.Addr, size uint64) error {
	va := h.slotVA(slot)
	if err := c.Store(va+dma.DescSrc, phys.Size64, uint64(src)); err != nil {
		return err
	}
	if err := c.Store(va+dma.DescDst, phys.Size64, uint64(dst)); err != nil {
		return err
	}
	return c.Store(va+dma.DescSize, phys.Size64, size)
}

// PostPending is Post plus a RingPending pre-write into the status
// word, for clients that poll per-descriptor completion records
// instead of the doorbell's in-flight count.
func (h *RingHandle) PostPending(c *proc.Context, slot uint64, src, dst phys.Addr, size uint64) error {
	if err := h.Post(c, slot, src, dst, size); err != nil {
		return err
	}
	return c.Store(h.slotVA(slot)+dma.DescStatus, phys.Size64, dma.RingPending)
}

// Doorbell flushes the write buffer (so every descriptor store has
// landed — the §3.4 barrier) and rings: one uncached store kicks count
// pending descriptors. In keyed mode the word carries the context key,
// checked once for the whole batch.
func (h *RingHandle) Doorbell(c *proc.Context, count uint64) error {
	if err := c.MB(); err != nil {
		return err
	}
	word := count
	if h.m.Engine.Config().Mode == dma.ModeKeyed {
		word = h.key<<dma.KeyShift | count
	}
	return c.Store(kernel.RingDoorbellVA, phys.Size64, word)
}

// InFlight reads the ring's in-flight descriptor count with one
// uncached load of the doorbell page: "has my whole batch completed?".
func (h *RingHandle) InFlight(c *proc.Context) (uint64, error) {
	// Push any still-posted doorbell store out first: a load that hits
	// the posted store in the write buffer is forwarded the store's
	// value (the §3 collapse hazard) instead of reaching the engine.
	if err := c.MB(); err != nil {
		return 0, err
	}
	return c.Load(kernel.RingDoorbellVA, phys.Size64)
}

// WaitDrain polls InFlight until the ring is empty.
func (h *RingHandle) WaitDrain(c *proc.Context, maxPolls int) error {
	for i := 0; i < maxPolls; i++ {
		n, err := h.InFlight(c)
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
		c.Spin(200) // back off before re-polling
	}
	return fmt.Errorf("userdma: ring still draining after %d polls", maxPolls)
}

// Status reads slot's completion record (status word, completion
// timestamp) with cached loads from the descriptor page.
func (h *RingHandle) Status(c *proc.Context, slot uint64) (status, stamp uint64, err error) {
	va := h.slotVA(slot)
	if status, err = c.Load(va+dma.DescStatus, phys.Size64); err != nil {
		return 0, 0, err
	}
	if stamp, err = c.Load(va+dma.DescStamp, phys.Size64); err != nil {
		return 0, 0, err
	}
	return status, stamp, nil
}
