package userdma

import (
	"strings"
	"testing"
	"testing/quick"

	"uldma/internal/dma"
	"uldma/internal/isa"
)

// TestFigure5 reproduces the paper's Figure 5: against the 3-access
// repeated-passing variant, a malicious process that only touches its
// own pages transfers its data C into the victim's private page B — and
// the victim is told its own DMA went through.
func TestFigure5(t *testing.T) {
	o, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if !o.Hijacked {
		t.Fatalf("attack did not hijack: %v", o)
	}
	if len(o.Transfers) != 1 || !strings.HasPrefix(o.Transfers[0], "C->B") {
		t.Fatalf("transfers = %v, want exactly C->B", o.Transfers)
	}
	if !o.VictimBelievesSuccess {
		t.Fatalf("figure 5 has the victim fooled into seeing success: %v", o)
	}
	if !o.Misinformed {
		t.Fatalf("outcome should be flagged misinformed: %v", o)
	}
}

// TestFigure5DataLandsInB verifies the hijack at the byte level: B
// holds the attacker's fill pattern.
func TestFigure5DataLandsInB(t *testing.T) {
	// Re-run the scenario and inspect memory through a fresh world.
	o, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	// The outcome's transfer list encodes size; the attacker data check
	// is covered by the engine-level test; here we pin the record.
	if o.Transfers[0] != "C->B[64]" {
		t.Fatalf("transfer record = %q", o.Transfers[0])
	}
}

// TestFigure6 reproduces the paper's Figure 6: against the 4-access
// variant, an attacker with read access to the public page A completes
// the victim's sequence. The DMA starts (it even moves the right data),
// but the status goes to the attacker and the victim is told failure.
func TestFigure6(t *testing.T) {
	o, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Transfers) != 1 || o.Transfers[0] != "A->B[64]" {
		t.Fatalf("transfers = %v, want exactly A->B[64]", o.Transfers)
	}
	if o.VictimBelievesSuccess {
		t.Fatalf("figure 6 misinforms the victim with FAILURE: %v", o)
	}
	if o.AttackerStatus == dma.StatusFailure {
		t.Fatalf("the attacker's completing load starts the DMA and sees success: %v", o)
	}
	if !o.Misinformed {
		t.Fatalf("outcome should be flagged misinformed: %v", o)
	}
	if o.Hijacked {
		t.Fatalf("figure 6 is a deception, not a hijack: %v", o)
	}
}

// TestFigure8Replay runs the Figure 5 attack schedule against the safe
// 5-access sequence: no hijack, and the victim's answer is honest.
func TestFigure8Replay(t *testing.T) {
	o, err := Figure8Replay()
	if err != nil {
		t.Fatal(err)
	}
	if o.Hijacked {
		t.Fatalf("5-access sequence hijacked: %v", o)
	}
	if o.Misinformed {
		t.Fatalf("5-access sequence misinformed the victim: %v", o)
	}
	for _, tr := range o.Transfers {
		if !strings.HasPrefix(tr, "A->B") && !strings.HasPrefix(tr, "C->") && !strings.HasPrefix(tr, "FOO->") {
			t.Fatalf("unexpected transfer %s", tr)
		}
	}
}

// TestFigure8Exhaustive enumerates EVERY interleaving of the victim's
// 5-access attempt with up to 5 attacker slots (C(12,5)=792 schedules
// at the largest setting) and asserts the §3.3.1 claim: no interleaving
// makes the engine start a transfer into B from anywhere but A.
func TestFigure8Exhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration skipped in -short mode")
	}
	total := 0
	for _, attackerSlots := range []int{1, 2, 3, 4, 5} {
		tried, hijack, err := ExhaustiveInterleavings(attackerSlots)
		if err != nil {
			t.Fatal(err)
		}
		total += tried
		if hijack != nil {
			t.Fatalf("hijacking interleaving found with %d attacker slots: %v",
				attackerSlots, *hijack)
		}
	}
	if total < 1000 {
		t.Fatalf("only %d interleavings enumerated; harness broken?", total)
	}
	t.Logf("enumerated %d interleavings, zero hijacks", total)
}

// TestRepeated5SafetyProperty drives seeded-random adversarial runs
// (random attacker programs × random preemption) and asserts the safety
// half of the paper's proof: the victim's private page is never written
// from a foreign source.
func TestRepeated5SafetyProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	check := func(seed uint64, shareA bool) bool {
		o, err := RandomAdversarialRun(seed, shareA, false)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if o.Hijacked {
			t.Logf("seed %d HIJACKED: %v", seed, o)
			return false
		}
		return true
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRepeated5DeceptionCensus measures (without asserting zero) how
// often random adversarial interleavings deceive the victim about its
// own DMA's fate. The paper's §3.3.1 proof covers transfer integrity;
// status-report integrity has a residual window (an attacker store
// landing between the victim's 4th and 5th access re-arms the FSM so
// the victim's final load reads ACCEPTED for a transfer that never
// started). We log the measured rate as a reproduction finding.
func TestRepeated5DeceptionCensus(t *testing.T) {
	census := func(loose bool) (clean, falseSuccess, falseFailure int) {
		const runs = 40
		for seed := uint64(1); seed <= runs; seed++ {
			o, err := RandomAdversarialRun(seed, false, loose)
			if err != nil {
				t.Fatal(err)
			}
			if o.Hijacked {
				t.Fatalf("seed %d hijacked — safety property violated", seed)
			}
			sawAtoB := false
			for _, tr := range o.Transfers {
				if strings.HasPrefix(tr, "A->B") {
					sawAtoB = true
				}
			}
			switch {
			case o.VictimBelievesSuccess && !sawAtoB:
				falseSuccess++ // told success, nothing moved
			case !o.VictimBelievesSuccess && sawAtoB:
				falseFailure++ // told failure, data moved anyway
			default:
				clean++
			}
		}
		return
	}
	// The paper's literal Figure 7 client (DMA_FAILURE check only): the
	// in-band status word can lie under adversarial interference.
	lClean, lFalseOK, lFalseNo := census(true)
	t.Logf("loose client:  %d clean, %d false-success, %d false-failure", lClean, lFalseOK, lFalseNo)
	if lFalseOK == 0 {
		t.Log("note: loose client saw no deceptions this run set")
	}
	// The strict client (also retries on ACCEPTED): status integrity is
	// restored — zero deceptions, asserted.
	sClean, sFalseOK, sFalseNo := census(false)
	t.Logf("strict client: %d clean, %d false-success, %d false-failure", sClean, sFalseOK, sFalseNo)
	if sFalseOK != 0 || sFalseNo != 0 {
		t.Fatalf("strict client deceived: %d false-success, %d false-failure", sFalseOK, sFalseNo)
	}
}

// TestCustomDuelRebuildsFigure6: the scripted-duel API (what attacksim
// -custom exposes) reproduces Figure 6 from assembler text.
func TestCustomDuelRebuildsFigure6(t *testing.T) {
	symbols := ScenarioSymbols()
	victim, err := isa.Assemble("store B 64; mb; load A; store B 64; mb; load A", symbols)
	if err != nil {
		t.Fatal(err)
	}
	attacker, err := isa.Assemble("load A", symbols)
	if err != nil {
		t.Fatal(err)
	}
	o, err := CustomDuel(4, true, victim, attacker, "VVVVVAV")
	if err != nil {
		t.Fatal(err)
	}
	if !o.Misinformed || o.Hijacked || o.VictimBelievesSuccess {
		t.Fatalf("custom figure 6 outcome: %v", o)
	}
	if len(o.Transfers) != 1 || o.Transfers[0] != "A->B[64]" {
		t.Fatalf("transfers = %v", o.Transfers)
	}
}

// TestCustomDuelValidation covers the scripted-duel error paths.
func TestCustomDuelValidation(t *testing.T) {
	prog, err := isa.Assemble("load A", ScenarioSymbols())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CustomDuel(7, false, prog, nil, "V"); err == nil {
		t.Fatal("bad seqlen accepted")
	}
	if _, err := CustomDuel(5, false, prog, nil, "VQ"); err == nil {
		t.Fatal("bad schedule char accepted")
	}
	// Spaces and commas in schedules are separators.
	if _, err := CustomDuel(5, false, prog, nil, "V, V"); err != nil {
		t.Fatalf("separator handling: %v", err)
	}
}

// TestInterleavingsEnumerator sanity-checks the merge enumerator.
func TestInterleavingsEnumerator(t *testing.T) {
	// C(2+2, 2) = 6 merges.
	got := interleavings(2, 2)
	if len(got) != 6 {
		t.Fatalf("interleavings(2,2) = %d, want 6", len(got))
	}
	seen := map[string]bool{}
	for _, s := range got {
		key := ""
		nv, na := 0, 0
		for _, v := range s {
			if v {
				key += "V"
				nv++
			} else {
				key += "A"
				na++
			}
		}
		if nv != 2 || na != 2 {
			t.Fatalf("merge %q has wrong slot counts", key)
		}
		if seen[key] {
			t.Fatalf("duplicate merge %q", key)
		}
		seen[key] = true
	}
	if len(interleavings(0, 0)) != 1 {
		t.Fatal("empty merge base case wrong")
	}
}

// TestAttackOutcomeString keeps the summary format stable for the
// attacksim tool.
func TestAttackOutcomeString(t *testing.T) {
	o := AttackOutcome{Transfers: []string{"C->B[64]"}, Hijacked: true}
	s := o.String()
	if !strings.Contains(s, "C->B[64]") || !strings.Contains(s, "hijacked=true") {
		t.Fatalf("summary = %q", s)
	}
}
