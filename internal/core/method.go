// Package userdma is the paper's contribution: user-level DMA initiation
// methods that need no operating system kernel modification, plus the
// prior-work comparators they are evaluated against.
//
// Each Method bundles (a) the setup-time kernel work it needs (shadow
// mappings, register-context assignment, key distribution, PAL
// installation — all ordinary kernel services), and (b) the user-level
// instruction sequence that initiates one DMA. The sequences are the
// paper's figures, verbatim:
//
//	KernelLevel      Figure 1   syscall, thousands of cycles
//	SHRIMP1          §2.4       1 compare-and-exchange, fixed destination
//	SHRIMP2          Figure 2   2 accesses, NEEDS kernel mod to be safe
//	FLASH            §2.6       2 accesses, NEEDS kernel mod (PID hook)
//	PALCode          §2.7       2 accesses inside one uninterruptible PAL call
//	KeyBased         Figure 3   4 accesses, register contexts + secret keys
//	ExtShadow        Figure 4   2 accesses, context id in the address bits
//	RepeatedPassing  Figure 7   5 accesses + barriers, engine FSM
//
// The RequiresKernelMod flag is the paper's dividing line: SHRIMP2 and
// FLASH return true; every method the paper proposes returns false.
package userdma

import (
	"errors"
	"fmt"

	"uldma/internal/dma"
	"uldma/internal/isa"
	"uldma/internal/kernel"
	"uldma/internal/machine"
	"uldma/internal/proc"
	"uldma/internal/vm"
)

// StatusFailure re-exports the engine's DMA_FAILURE code for callers.
const StatusFailure = dma.StatusFailure

// ErrNoPoll is returned by Handle.Poll for methods whose status cannot
// be read from user level (paired-mode schemes poll via the kernel).
var ErrNoPoll = errors.New("userdma: method does not support user-level status polling")

// ErrRetriesExhausted is returned when a retrying method keeps being
// refused (heavy adversarial interleaving).
var ErrRetriesExhausted = errors.New("userdma: initiation retries exhausted")

// Method is one DMA initiation scheme.
type Method interface {
	// Name is the scheme's name as used in the paper's Table 1.
	Name() string
	// EngineMode is the shadow-decode protocol the NIC must be built
	// with for this method.
	EngineMode() dma.Mode
	// SeqLen is the repeated-passing variant (0 for other methods).
	SeqLen() int
	// RequiresKernelMod reports whether the scheme depends on a
	// context-switch hook — the paper's disqualifying property.
	RequiresKernelMod() bool
	// Attach performs the per-process setup-time kernel work and
	// returns the process's DMA handle. For context-carrying methods
	// (KeyBased, ExtShadow) Attach must run BEFORE the process's shadow
	// pages are mapped, because the context id is burned into them.
	Attach(m *machine.Machine, p *proc.Process) (*Handle, error)
}

// EngineTweaker is implemented by methods that need a non-default
// engine variant (e.g. ExtShadow's no-register-contexts hardware).
type EngineTweaker interface {
	TweakEngine(cfg *dma.Config)
}

// ConfigFor returns the calibrated machine preset wired for the method,
// including any engine variant the method requires.
func ConfigFor(m Method) machine.Config {
	cfg := machine.Alpha3000TC(m.EngineMode(), m.SeqLen())
	if t, ok := m.(EngineTweaker); ok {
		t.TweakEngine(&cfg.Engine)
	}
	return cfg
}

// Machine builds a machine from ConfigFor(m).
func Machine(m Method) *machine.Machine {
	return machine.MustNew(ConfigFor(m))
}

// Handle is a per-process attachment of a method: everything the user
// library precomputed at setup time (context id, key, shadow base).
type Handle struct {
	method Method
	m      *machine.Machine
	p      *proc.Process
	ctx    int
	key    uint64

	// compile produces the straight-line instruction sequence of one
	// initiation attempt; nil for call-based methods (kernel, PAL).
	compile func(src, dst vm.VAddr, size uint64) isa.Program
	// initiate performs one full initiation (including any retry loop)
	// from guest code.
	initiate func(c *proc.Context, src, dst vm.VAddr, size uint64) (uint64, error)
	// poll reads the remaining-bytes status from guest code, or nil.
	poll func(c *proc.Context) (uint64, error)
}

// Method returns the scheme this handle instantiates.
func (h *Handle) Method() Method { return h.method }

// Context returns the register context assigned to the process (0 when
// the method does not use contexts).
func (h *Handle) Context() int { return h.ctx }

// Key returns the process's DMA protection key (KeyBased only).
func (h *Handle) Key() uint64 { return h.key }

// Program returns the user-level instruction sequence of one initiation
// attempt, for disassembly and instruction counting. ok is false for
// call-based methods (KernelLevel issues a syscall; PALCode issues a
// CALL_PAL whose two-instruction body runs in PAL mode).
func (h *Handle) Program(src, dst vm.VAddr, size uint64) (isa.Program, bool) {
	if h.compile == nil {
		return nil, false
	}
	return h.compile(src, dst, size), true
}

// DMA initiates a transfer of size bytes from virtual address src to
// virtual address dst, from user level (except KernelLevel, which
// traps). It returns the initiation status word: StatusFailure for a
// refused initiation, otherwise the bytes remaining (the transfer
// continues in the background; see Poll).
func (h *Handle) DMA(c *proc.Context, src, dst vm.VAddr, size uint64) (uint64, error) {
	return h.initiate(c, src, dst, size)
}

// Poll reads the remaining-byte count of the process's most recent
// transfer from user level (0 = complete). Methods without user-level
// status (paired-mode schemes) return ErrNoPoll.
func (h *Handle) Poll(c *proc.Context) (uint64, error) {
	if h.poll == nil {
		return 0, ErrNoPoll
	}
	return h.poll(c)
}

// WaitBlocking sleeps in the kernel until the process's outstanding
// transfer completes (SysDMAWait): one trap, then the CPU is free for
// other processes until the completion interrupt. The cheap-CPU
// alternative to Wait's user-level polling — the classic poll-vs-
// interrupt trade the NOW literature argues about.
func (h *Handle) WaitBlocking(c *proc.Context) error {
	st, err := c.Syscall(kernel.SysDMAWait)
	if err != nil {
		return err
	}
	if st == dma.StatusFailure {
		return fmt.Errorf("userdma: nothing to wait on (or the transfer failed)")
	}
	return nil
}

// Wait polls until the transfer completes or maxPolls is exhausted.
func (h *Handle) Wait(c *proc.Context, maxPolls int) error {
	for i := 0; i < maxPolls; i++ {
		rem, err := h.Poll(c)
		if err != nil {
			return err
		}
		if rem == 0 {
			return nil
		}
		if rem == dma.StatusFailure {
			return fmt.Errorf("userdma: transfer failed while waiting")
		}
		c.Spin(200) // back off before re-polling
	}
	return fmt.Errorf("userdma: transfer still running after %d polls", maxPolls)
}

// shadow returns the user VA aliasing va's shadow page, using the
// kernel's fixed layout (precomputed at setup time in a real library).
func shadow(va vm.VAddr) vm.VAddr { return kernel.ShadowVA(va) }
