package userdma

import (
	"fmt"

	"uldma/internal/dma"
	"uldma/internal/kernel"
	"uldma/internal/machine"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/vm"
)

// User-level atomic operations (§3.5). NOW shared-memory interfaces
// provide atomic_add / fetch_and_store / compare_and_swap in the
// network interface; initiating them through the kernel would cost more
// than the operation itself. Here each operation is a single locked bus
// transaction into the engine's atomic window: the operation code is
// encoded in the (kernel-installed) mapping's physical address, the
// operand rides in the data, and the old value returns in the reply —
// protection by mapping, atomicity by bus lock, zero kernel crossings.

// SetupAtomics creates the atomic-window aliases for the page holding
// va in p's address space (kernel setup-time work; needs read+write on
// the page).
func SetupAtomics(m *machine.Machine, p *proc.Process, va vm.VAddr) error {
	return m.Kernel.MapAtomic(p, va)
}

// FetchAdd atomically adds delta to the 64-bit cell at va and returns
// the previous value.
func FetchAdd(c *proc.Context, va vm.VAddr, delta uint64) (uint64, error) {
	return c.Swap(kernel.AtomicVA(va, dma.AtomicAdd), phys.Size64, delta)
}

// FetchStore atomically replaces the 64-bit cell at va with val and
// returns the previous value.
func FetchStore(c *proc.Context, va vm.VAddr, val uint64) (uint64, error) {
	return c.Swap(kernel.AtomicVA(va, dma.AtomicSwap), phys.Size64, val)
}

// CompareSwap atomically replaces the 32-bit cell at va with newVal if
// it currently holds expected. It returns the previous value and
// whether the swap took effect.
func CompareSwap(c *proc.Context, va vm.VAddr, expected, newVal uint32) (uint32, bool, error) {
	packed := uint64(expected)<<32 | uint64(newVal)
	old, err := c.Swap(kernel.AtomicVA(va, dma.AtomicCAS), phys.Size32, packed)
	if err != nil {
		return 0, false, err
	}
	return uint32(old), uint32(old) == expected, nil
}

// KernelFetchAdd is the syscall baseline the user-level path replaces:
// the same engine operation reached through a trap (§3.5's "significant
// overhead" case). Benchmarked against FetchAdd in experiment X5.
func KernelFetchAdd(c *proc.Context, va vm.VAddr, delta uint64) (uint64, error) {
	return c.Syscall(kernel.SysAtomic, uint64(dma.AtomicAdd), uint64(va), delta)
}

// SpinLock is a user-level mutual-exclusion lock built on CompareSwap —
// the canonical consumer of NOW atomic operations. The lock word is a
// 32-bit cell on a page set up with SetupAtomics (possibly on a remote
// node's shared segment).
type SpinLock struct {
	// VA is the lock word's virtual address.
	VA vm.VAddr
	// BackoffCycles is the spin cost charged between attempts.
	BackoffCycles int64
	// MaxAttempts bounds acquisition (0 = 4096).
	MaxAttempts int
}

// Lock acquires the lock, spinning with backoff.
func (l *SpinLock) Lock(c *proc.Context) error {
	max := l.MaxAttempts
	if max == 0 {
		max = 4096
	}
	backoff := l.BackoffCycles
	if backoff == 0 {
		backoff = 100
	}
	for i := 0; i < max; i++ {
		_, ok, err := CompareSwap(c, l.VA, 0, 1)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		c.Spin(backoff)
	}
	return fmt.Errorf("userdma: spinlock at %v not acquired after %d attempts", l.VA, max)
}

// Unlock releases the lock. Calling Unlock without holding the lock is
// a programming error surfaced as an error.
func (l *SpinLock) Unlock(c *proc.Context) error {
	old, err := FetchStore32(c, l.VA, 0)
	if err != nil {
		return err
	}
	if old != 1 {
		return fmt.Errorf("userdma: unlock of lock at %v in state %d", l.VA, old)
	}
	return nil
}

// FetchStore32 is FetchStore on a 32-bit cell (lock words).
func FetchStore32(c *proc.Context, va vm.VAddr, val uint32) (uint32, error) {
	old, err := c.Swap(kernel.AtomicVA(va, dma.AtomicSwap), phys.Size32, uint64(val))
	return uint32(old), err
}
