package userdma

import (
	"testing"
)

// TestFastForwardEquivalence is the convergence detector's contract:
// for every initiation method, MeasureMethod with fast-forward ON
// returns byte-identical results to the full simulation with it OFF —
// and the detector actually engages (a silently-dead optimization
// would pass a pure equality check).
func TestFastForwardEquivalence(t *testing.T) {
	const iters = 200 // > ConvergeK + warm-up, < the full 1000
	for _, method := range AllMethods() {
		method := method
		t.Run(method.Name(), func(t *testing.T) {
			prev := SetFastForward(false)
			defer SetFastForward(prev)
			want, err := MeasureMethod(method, ConfigFor(method), iters)
			if err != nil {
				t.Fatal(err)
			}

			SetFastForward(true)
			before := FastForwardEngagements()
			got, err := MeasureMethod(method, ConfigFor(method), iters)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("fast-forwarded result diverged:\n  ff  %+v\n  full %+v", got, want)
			}
			if FastForwardEngagements() == before {
				t.Fatalf("fast-forward never engaged in %d iterations (ConvergeK=%d)", iters, ConvergeK)
			}
		})
	}
}

// TestFastForwardOffMatchesGoldenPath guards the other direction: the
// convergence machinery must not perturb a run in which it never fires
// (iters below the streak threshold).
func TestFastForwardOffMatchesGoldenPath(t *testing.T) {
	const iters = ConvergeK / 2
	method := Methods()[0]
	prev := SetFastForward(false)
	full, err := MeasureMethod(method, ConfigFor(method), iters)
	SetFastForward(true)
	if err != nil {
		t.Fatal(err)
	}
	short, err := MeasureMethod(method, ConfigFor(method), iters)
	SetFastForward(prev)
	if err != nil {
		t.Fatal(err)
	}
	if full != short {
		t.Fatalf("sub-threshold run differs with detector armed:\n  armed %+v\n  off   %+v", short, full)
	}
}
