package userdma

import (
	"fmt"
	"reflect"
	"testing"
)

// TestAttackTemplateRestoreFidelity pins the template pool's contract:
// a run on a REUSED world (checked out of the pool, i.e. restored from
// its pristine snapshot after a previous run) must reproduce a run on
// a FRESHLY BUILT world byte for byte. Each scenario is executed
// several times in a row — the first call builds the template, the
// rest exercise the restore path — and every repetition must equal the
// first.
func TestAttackTemplateRestoreFidelity(t *testing.T) {
	scenarios := []struct {
		name string
		run  func() (AttackOutcome, error)
	}{
		{"Figure5", Figure5},
		{"Figure6", Figure6},
		{"Figure8Replay", Figure8Replay},
		{"RandomSeed7", func() (AttackOutcome, error) { return RandomAdversarialRun(7, false, false) }},
		{"RandomSeed7ShareA", func() (AttackOutcome, error) { return RandomAdversarialRun(7, true, false) }},
		{"Interleaving", func() (AttackOutcome, error) {
			// One fixed schedule from the exhaustive grid.
			return RunInterleaving([]bool{true, false, false, true, true, false, true, true, true, false})
		}},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			first, err := sc.run()
			if err != nil {
				t.Fatal(err)
			}
			for rep := 1; rep < 4; rep++ {
				got, err := sc.run()
				if err != nil {
					t.Fatalf("rep %d: %v", rep, err)
				}
				// Compare through the String summary AND the full
				// struct (VictimErr is an error value: compare its
				// rendering).
				if !reflect.DeepEqual(got.Transfers, first.Transfers) ||
					got.VictimStatus != first.VictimStatus ||
					got.VictimBelievesSuccess != first.VictimBelievesSuccess ||
					got.AttackerStatus != first.AttackerStatus ||
					got.Hijacked != first.Hijacked ||
					got.Misinformed != first.Misinformed ||
					fmt.Sprint(got.VictimErr) != fmt.Sprint(first.VictimErr) {
					t.Fatalf("rep %d diverged from fresh world:\n  rep   %v (err %v)\n  fresh %v (err %v)",
						rep, got, got.VictimErr, first, first.VictimErr)
				}
			}
		})
	}
}
