package userdma

import (
	"errors"
	"fmt"

	"uldma/internal/dma"
	"uldma/internal/machine"
	"uldma/internal/par"
	"uldma/internal/sim"
)

// Parallel sweep drivers.
//
// Every measurement in this package runs on a machine built fresh for
// that one measurement cell — a (method, config, seed) triple shares no
// state with any other cell. That makes the sweeps embarrassingly
// parallel: the P-variants below flatten each sweep's cells into one
// index space, fan them out on internal/par's bounded pool, and collect
// results in cell order. Because each cell is single-goroutine and
// deterministic, the parallel sweeps return byte-identical tables to
// their serial counterparts (the parity tests assert this); the serial
// error order is preserved too, since par.Do always surfaces the
// lowest-indexed failure.
//
// All P-variants accept workers <= 0 to mean runtime.GOMAXPROCS(0) and
// degrade to the plain serial loop for workers == 1.
//
// ContextContention deliberately has no P-variant: its six processes
// share ONE machine (the contention under study is within a world, not
// between worlds), so the single-goroutine-per-world rule makes it
// inherently serial.

// Table1P is Table1 with the four method cells measured concurrently.
func Table1P(iters, workers int) ([]InitiationResult, error) {
	methods := Methods()
	return par.Map(len(methods), workers, func(i int) (InitiationResult, error) {
		method := methods[i]
		r, err := MeasureMethod(method, ConfigFor(method), iters)
		if err != nil {
			return InitiationResult{}, fmt.Errorf("%s: %w", method.Name(), err)
		}
		return r, nil
	})
}

// BusSweepP is BusSweep with every (frequency, method) cell measured
// concurrently.
func BusSweepP(iters int, freqs []sim.Hz, workers int) (map[sim.Hz][]InitiationResult, error) {
	methods := Methods()
	type cell struct {
		freq   sim.Hz
		method Method
	}
	var cells []cell
	for _, f := range freqs {
		for _, m := range methods {
			cells = append(cells, cell{f, m})
		}
	}
	results, err := par.Map(len(cells), workers, func(i int) (InitiationResult, error) {
		c := cells[i]
		var cfg machine.Config
		if c.freq == 12_500_000 {
			cfg = ConfigFor(c.method)
		} else {
			cfg = machine.PCI(c.method.EngineMode(), c.method.SeqLen(), c.freq)
		}
		r, err := MeasureMethod(c.method, cfg, iters)
		if err != nil {
			return InitiationResult{}, fmt.Errorf("%v/%s: %w", c.freq, c.method.Name(), err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[sim.Hz][]InitiationResult)
	for i, c := range cells {
		out[c.freq] = append(out[c.freq], results[i])
	}
	return out, nil
}

// BreakEvenP is BreakEven with the size cells measured concurrently.
func BreakEvenP(method Method, sizes []uint64, workers int) ([]BreakEvenPoint, error) {
	return par.Map(len(sizes), workers, func(i int) (BreakEvenPoint, error) {
		pt, err := breakEvenOne(method, sizes[i])
		if err != nil {
			return BreakEvenPoint{}, fmt.Errorf("size %d: %w", sizes[i], err)
		}
		return pt, nil
	})
}

// TrendSweepP is TrendSweep with every cell — two initiation
// measurements plus a break-even sweep per era — flattened into one job
// space and measured concurrently.
func TrendSweepP(iters, workers int) ([]TrendPoint, error) {
	eras := TrendEras()
	sizes := DefaultSizes
	// Cell layout per era, in the serial sweep's error order: kernel
	// initiation, user initiation, then one cell per break-even size.
	perEra := 2 + len(sizes)
	type cellResult struct {
		init InitiationResult
		pt   BreakEvenPoint
	}
	results, err := par.Map(len(eras)*perEra, workers, func(i int) (cellResult, error) {
		era := eras[i/perEra]
		switch k := i % perEra; k {
		case 0:
			r, err := MeasureMethod(KernelLevel{}, era.Config(dma.ModePaired, 0), iters)
			if err != nil {
				return cellResult{}, fmt.Errorf("%s/kernel: %w", era.Name, err)
			}
			return cellResult{init: r}, nil
		case 1:
			r, err := MeasureMethod(ExtShadow{}, era.Config(dma.ModeExtended, 0), iters)
			if err != nil {
				return cellResult{}, fmt.Errorf("%s/user: %w", era.Name, err)
			}
			return cellResult{init: r}, nil
		default:
			pt, err := breakEvenOneCfg(KernelLevel{}, era.Config(dma.ModePaired, 0), sizes[k-2])
			if err != nil {
				return cellResult{}, err
			}
			return cellResult{pt: pt}, nil
		}
	})
	if err != nil {
		return nil, err
	}
	out := make([]TrendPoint, 0, len(eras))
	for e, era := range eras {
		base := e * perEra
		pts := make([]BreakEvenPoint, len(sizes))
		for s := range sizes {
			pts[s] = results[base+2+s].pt
		}
		cross, _ := Crossover(pts)
		out = append(out, TrendPoint{
			Era:             era.Name,
			KernelInit:      results[base].init.Mean,
			UserInit:        results[base+1].init.Mean,
			KernelCrossover: cross,
		})
	}
	return out, nil
}

// errCellStop is the pool sentinel for "this cell ended the sweep"
// (hijack found or infrastructure error); par.Do guarantees every cell
// below the lowest stopping one still completes, which is exactly what
// the deterministic merges need.
var errCellStop = errors.New("userdma: sweep cell stop")

// ExhaustiveInterleavingsP is ExhaustiveInterleavings with each
// schedule's world run concurrently. The returned (tried, hijack, err)
// triple is identical to the serial search's for any worker count: the
// schedule list is enumerated in the same order, and the first hijack
// IN SCHEDULE ORDER wins, not the first found on the wall clock.
func ExhaustiveInterleavingsP(attackerSlots, workers int) (tried int, hijack *AttackOutcome, err error) {
	if par.Workers(workers) <= 1 {
		return ExhaustiveInterleavings(attackerSlots)
	}
	const victimSlots = 7
	schedules := interleavings(victimSlots, attackerSlots)
	type cellResult struct {
		hijack *AttackOutcome
		err    error
	}
	results := make([]cellResult, len(schedules))
	_ = par.Do(len(schedules), workers, func(i int) error {
		o, e := runInterleaving(schedules[i])
		if e != nil {
			results[i] = cellResult{err: e}
			return errCellStop
		}
		if o.Hijacked {
			results[i] = cellResult{hijack: &o}
			return errCellStop
		}
		return nil
	})
	// Merge in schedule order, reconstructing the serial early-return:
	// `tried` counts schedules up to and including the stopping one.
	for i := range results {
		if results[i].err != nil {
			return i + 1, nil, results[i].err
		}
		if results[i].hijack != nil {
			return i + 1, results[i].hijack, nil
		}
	}
	return len(schedules), nil, nil
}

// RandomCampaignP runs RandomAdversarialRun for seeds 1..n concurrently
// and returns the outcomes in seed order (byte-identical to a serial
// loop: each run owns its machine and its seeded RNG).
func RandomCampaignP(n int, shareA, looseStatus bool, workers int) ([]AttackOutcome, error) {
	return par.Map(n, workers, func(i int) (AttackOutcome, error) {
		return RandomAdversarialRun(uint64(i+1), shareA, looseStatus)
	})
}
