package userdma

// Measurement harnesses for the batched descriptor-ring path (the
// ringdepth and ringchurn experiments in internal/exp).
//
// MeasureRingDepth is §3.4's methodology transplanted onto the ring:
// zero-length transfers (arguments only, no data on the bus), addresses
// varied between iterations to defeat write-buffer coalescing, the
// whole run scored as simulated time per initiated transfer. The batch
// is the unit of work: fill depth descriptors with cached stores, one
// MB, one doorbell store. Dividing by depth gives the amortized
// initiation cost that Table 1 reports per-transfer for the unbatched
// protocols.
//
// RingChurnBench oversubscribes a handful of register contexts with
// dozens-hundreds of ring-using processes (§3.2's "if every context is
// taken...") and scores the kernel's arbitration policies by acquire
// latency and doorbells lost to revocation.

import (
	"fmt"

	"uldma/internal/kernel"
	"uldma/internal/machine"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/stats"
	"uldma/internal/vm"
)

// RingDepthResult is one (protocol, depth) point of the ringdepth
// experiment. Depth 0 marks the unbatched baseline: the protocol's own
// per-transfer initiation sequence, measured by MeasureMethod.
type RingDepthResult struct {
	Method  string
	Depth   uint64
	Batches int      // timed batches rung
	Posted  uint64   // descriptors posted in timed batches
	PerInit sim.Time // amortized initiation cost per descriptor
	// GoodputMBps is the payload-phase delivery rate (1 KiB payloads,
	// doorbell-to-drain), 0 for the depth-0 baseline.
	GoodputMBps float64
	Doorbells   uint64 // engine doorbell stores over the whole run
	Completions uint64 // completion records written back
	Fingerprint uint64 // digest of the final machine fingerprint
}

// fingerprintDigest folds a machine fingerprint into one word (FNV-1a
// over the words) so renderers and goldens can assert end-state
// determinism without carrying 55 columns.
func fingerprintDigest(f machine.Fingerprint) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, w := range f {
		h ^= w
		h *= 0x100000001b3
	}
	return h
}

// MeasureRingDepth measures batched initiation for method's engine mode
// at the given ring depth: iters zero-length descriptors posted in
// full-depth batches, then a short 1 KiB-payload goodput phase. Use
// MeasureMethod for the depth-0 (unbatched) baseline.
func MeasureRingDepth(method Method, iters int, depth uint64) (RingDepthResult, error) {
	cfg := ConfigFor(method)
	m, err := machine.New(cfg)
	if err != nil {
		return RingDepthResult{}, err
	}
	res := RingDepthResult{Method: method.Name(), Depth: depth}

	batches := iters / int(depth)
	if batches < 1 {
		batches = 1
	}
	const ringVA, srcVA, dstVA = vm.VAddr(0x40000), vm.VAddr(0x10000), vm.VAddr(0x20000)
	var rh *RingHandle
	var total sim.Time
	p := m.NewProcess("ringbench", func(c *proc.Context) error {
		src, dst := rh.Frames(0)[0], rh.Frames(1)[0]
		// One throwaway batch warms the TLB, descriptor cache lines and
		// engine state, exactly like MeasureMethod's warm iteration.
		for s := uint64(0); s < depth; s++ {
			if err := rh.Post(c, s, src, dst, 0); err != nil {
				return err
			}
		}
		if err := rh.Doorbell(c, depth); err != nil {
			return err
		}
		for b := 0; b < batches; b++ {
			start := m.Clock.Now()
			for s := uint64(0); s < depth; s++ {
				// Vary addresses between iterations, as in the paper's
				// loop, so write-buffer coalescing cannot flatter the
				// descriptor stores.
				off := phys.Addr((uint64(b)*depth + s) % 64 * 16)
				if err := rh.Post(c, s, src+off, dst+off, 0); err != nil {
					return err
				}
			}
			if err := rh.Doorbell(c, depth); err != nil {
				return err
			}
			total += m.Clock.Now() - start
		}
		res.Batches = batches
		res.Posted = uint64(batches) * depth
		res.PerInit = total / sim.Time(res.Posted)

		// Goodput phase: drain the zero-length backlog, then time four
		// full-depth batches of 1 KiB payloads doorbell-to-drain.
		if err := rh.WaitDrain(c, 1<<20); err != nil {
			return err
		}
		const payload, goodputBatches = uint64(1024), 4
		t0 := m.Clock.Now()
		for b := 0; b < goodputBatches; b++ {
			for s := uint64(0); s < depth; s++ {
				off := phys.Addr(s % 8 * payload)
				if err := rh.Post(c, s, src+off, dst+off, payload); err != nil {
					return err
				}
			}
			if err := rh.Doorbell(c, depth); err != nil {
				return err
			}
			if err := rh.WaitDrain(c, 1<<20); err != nil {
				return err
			}
		}
		elapsed := m.Clock.Now() - t0
		moved := float64(goodputBatches) * float64(depth) * float64(payload)
		res.GoodputMBps = moved * float64(sim.Second) / float64(elapsed) / 1e6
		return nil
	})
	if rh, err = NewRing(m, p, ringVA, depth); err != nil {
		return res, err
	}
	if _, err := rh.AddBuffer(srcVA, 1); err != nil {
		return res, err
	}
	if _, err := rh.AddBuffer(dstVA, 1); err != nil {
		return res, err
	}
	if err := rh.Arm(); err != nil {
		return res, err
	}
	if err := m.Run(proc.NewRoundRobin(1<<20), 1<<30); err != nil {
		return res, err
	}
	if p.Err() != nil {
		return res, p.Err()
	}
	es := m.Engine.Stats()
	res.Doorbells, res.Completions = es.RingDoorbells, es.RingCompletions
	res.Fingerprint = fingerprintDigest(m.Fingerprint())
	return res, nil
}

// RingChurnResult is one (policy, procs) point of the ringchurn
// experiment.
type RingChurnResult struct {
	Policy      string
	Procs       int
	Contexts    int
	Doorbells   uint64 // batches the engine accepted
	Posted      uint64 // descriptors the engine walked
	Dropped     uint64 // doorbells lost to key revocation (steal policy)
	Steals      uint64 // LRU revocations performed
	Waits       uint64 // processes queued for a context
	MeanAcquire sim.Time
	Elapsed     sim.Time
	Fingerprint uint64
}

// RingChurnBench oversubscribes contexts register contexts with procs
// ring-using processes under the given arbitration policy. Each process
// runs batchesPerProc batches of depth-8 zero-length descriptors,
// re-acquiring (and under CtxYield, releasing) its context around every
// batch. A short scheduling quantum forces real interleaving so holders
// are descheduled while holding — the condition the policies exist for.
func RingChurnBench(policy kernel.CtxPolicy, procs, contexts, batchesPerProc int) (RingChurnResult, error) {
	method := KeyBased{} // keyed mode: revocation-safe (stale doorbells drop)
	cfg := ConfigFor(method)
	cfg.MemSize = 16 << 20 // 3 pages per process needs more than the 4 MiB preset
	cfg.Engine.MemSize = uint64(cfg.MemSize)
	cfg.Engine.Contexts = contexts
	m, err := machine.New(cfg)
	if err != nil {
		return RingChurnResult{}, err
	}
	res := RingChurnResult{Policy: policy.String(), Procs: procs, Contexts: contexts}

	const (
		depth = uint64(8)
		think = int64(2000) // cycles of non-DMA work between batches
	)
	type worker struct {
		rh *RingHandle
		p  *proc.Process
	}
	// One shared acquire-latency sample: worlds are single-goroutine, so
	// guest bodies append in a deterministic interleaving order.
	var acq stats.Sample
	workers := make([]*worker, procs)
	for i := 0; i < procs; i++ {
		w := &worker{}
		workers[i] = w
		// Distinct VAs per process are unnecessary (separate address
		// spaces) but make traces easier to read.
		const ringVA, srcVA, dstVA = vm.VAddr(0x40000), vm.VAddr(0x10000), vm.VAddr(0x20000)
		p := m.NewProcess(fmt.Sprintf("churn%d", i), func(c *proc.Context) error {
			for b := 0; b < batchesPerProc; b++ {
				t0 := m.Clock.Now()
				for !w.rh.Armed() {
					_, ok, err := m.Kernel.AcquireContext(c.Process(), policy)
					if err != nil {
						return err
					}
					if !ok {
						// Queued and blocked: the block takes effect at
						// the next instruction boundary; retry on wake.
						c.Spin(1)
						continue
					}
					if err := w.rh.Arm(); err != nil {
						return err
					}
				}
				acq.Add(m.Clock.Now() - t0)
				// Frames are only valid once armed (and stable across
				// re-arms: registration returns the same allocations).
				src, dst := w.rh.Frames(0)[0], w.rh.Frames(1)[0]
				for s := uint64(0); s < depth; s++ {
					off := phys.Addr((uint64(b)*depth + s) % 64 * 16)
					if err := w.rh.Post(c, s, src+off, dst+off, 0); err != nil {
						return err
					}
				}
				// Fire and forget: under CtxSteal the context may have
				// been revoked since Armed() — the stale-keyed doorbell
				// is then silently dropped, which is the cost the
				// Dropped column reports.
				if err := w.rh.Doorbell(c, depth); err != nil {
					return err
				}
				m.Kernel.TouchContext(c.Process())
				if policy == kernel.CtxYield {
					// The doorbell is still posted in the write buffer;
					// flush it before giving the context (and its key)
					// away, or the batch would drain against a revoked
					// key and be dropped.
					if err := c.MB(); err != nil {
						return err
					}
					m.Kernel.ReleaseContext(c.Process())
				}
				c.Spin(think)
			}
			// Flush the last posted doorbell so the engine sees every
			// batch before the run's counters are read.
			return c.MB()
		})
		w.p = p
		if w.rh, err = NewRing(m, p, ringVA, depth); err != nil {
			return res, err
		}
		if _, err := w.rh.AddBuffer(srcVA, 1); err != nil {
			return res, err
		}
		if _, err := w.rh.AddBuffer(dstVA, 1); err != nil {
			return res, err
		}
	}
	// A 12-instruction quantum forces real interleaving: holders are
	// descheduled mid-batch while others want their context, which is
	// the condition the arbitration policies exist for.
	if err := m.Run(proc.NewRoundRobin(12), 1<<32); err != nil {
		return res, err
	}
	for i, w := range workers {
		if err := w.p.Err(); err != nil {
			return res, fmt.Errorf("churn%d: %w", i, err)
		}
	}
	es := m.Engine.Stats()
	ks := m.Kernel.Stats()
	res.Doorbells, res.Posted = es.RingDoorbells, es.RingPosted
	res.Dropped = es.KeyMismatches
	res.Steals, res.Waits = ks.CtxSteals, ks.CtxWaits
	res.MeanAcquire = acq.Mean()
	res.Elapsed = m.Clock.Now()
	res.Fingerprint = fingerprintDigest(m.Fingerprint())
	return res, nil
}
