package userdma

import (
	"fmt"
	"sync"

	"uldma/internal/dma"
	"uldma/internal/isa"
	"uldma/internal/machine"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/vm"
)

// The attack studies reproduce the paper's adversarial interleavings
// (Figures 5, 6 and 8) as full-system scenarios: a victim process
// performing a legitimate DMA A→B and a malicious process interleaving
// its own — individually legal — shadow accesses under a scripted
// scheduler.
//
// Fixed scenario layout: the victim owns pages A (source) and B
// (private destination); the attacker owns pages C and FOO. In the
// Figure 6 scenario the attacker is additionally given READ access to A
// ("the data contained in vsource ... can be read by any process").

// Scenario virtual addresses (same in both processes for readability).
const (
	vaA   = vm.VAddr(0x10000)
	vaB   = vm.VAddr(0x20000)
	vaC   = vm.VAddr(0x30000)
	vaFoo = vm.VAddr(0x40000)
)

// Scenario byte patterns.
const (
	fillA = 0x11 // victim's data
	fillC = 0x66 // attacker's data
)

// AttackOutcome is the ground truth of one adversarial run.
type AttackOutcome struct {
	// VictimStatus is the status word the victim's protocol reported.
	VictimStatus uint64
	// VictimBelievesSuccess is the victim's conclusion.
	VictimBelievesSuccess bool
	// AttackerStatus is what the attacker's completing access returned
	// (meaningful in the Figure 6 scenario).
	AttackerStatus uint64

	// Transfers is (src, dst, size) for every transfer the engine
	// actually started, resolved to scenario page names.
	Transfers []string

	// Hijacked: a transfer wrote into the victim's private page B from
	// a source other than A — memory corruption (Figure 5's outcome).
	Hijacked bool
	// Misinformed: a transfer A→B started but the victim was told
	// failure, or no transfer started and the victim was told success
	// (Figure 6's outcome).
	Misinformed bool

	// VictimErr is the victim's exit error (e.g. retries exhausted).
	VictimErr error
}

// String renders a one-glance summary.
func (o AttackOutcome) String() string {
	return fmt.Sprintf("transfers=%v victimSuccess=%v hijacked=%v misinformed=%v",
		o.Transfers, o.VictimBelievesSuccess, o.Hijacked, o.Misinformed)
}

// attackWorld wires the two-process scenario on a pristine machine
// checked out of the template pool.
type attackWorld struct {
	m                *machine.Machine
	victim, attacker *proc.Process
	frames           map[string]phys.Addr // page name -> frame
	tmpl             *attackTemplate      // returned to the pool by finish
}

// attackTemplate is a warmed scenario world: the machine, both address
// spaces fully mapped (data pages, shadow aliases, the optional shared
// A), data patterns filled, and a pristine world snapshot taken before
// any process ever ran. Each run checks a template out of the pool,
// spawns fresh victim/attacker processes into the pre-built spaces,
// runs its schedule, and returns the template rewound to the snapshot.
// World construction — machine build, four page allocations, shadow
// maps, fills, roughly two thirds of a schedule's host cost in the
// exhaustive search — thus happens once per pooled template instead of
// once per schedule (the search tries ~1300 of them per report run).
type attackTemplate struct {
	key          scenarioKey
	m            *machine.Machine
	snap         *machine.Snapshot
	vicAS, attAS *vm.AddressSpace
	frames       map[string]phys.Addr
}

// scenarioKey identifies a template family: two worlds are
// interchangeable iff they share the engine sequence length and the
// shareA mapping.
type scenarioKey struct {
	seqLen int
	shareA bool
}

// attackPools holds one free list per scenario shape. sync.Pool keeps
// checkout allocation-free and parallel-safe (exhaustive-search workers
// end up each cycling their own template). Outcomes cannot depend on
// which template a run draws: Restore rewinds every world component to
// the same pristine snapshot (TestAttackTemplateRestoreFidelity pins
// this — a reused world must reproduce a fresh world's outcome
// byte for byte).
var attackPools sync.Map // scenarioKey -> *sync.Pool

// checkoutTemplate draws a pristine template for the scenario shape,
// building one if the pool is empty.
func checkoutTemplate(seqLen int, shareA bool) (*attackTemplate, error) {
	pi, _ := attackPools.LoadOrStore(scenarioKey{seqLen, shareA}, &sync.Pool{})
	if t, _ := pi.(*sync.Pool).Get().(*attackTemplate); t != nil {
		return t, nil
	}
	return newAttackTemplate(seqLen, shareA)
}

// newAttackTemplate builds and snapshots one warmed scenario world.
// The layout reproduces newAttackWorld's original construction order
// exactly (victim's space before the attacker's, frames A, B, C, FOO)
// so ASIDs, frame addresses and shadow encodings are unchanged.
func newAttackTemplate(seqLen int, shareA bool) (*attackTemplate, error) {
	m, err := machine.New(machine.Alpha3000TC(dma.ModeRepeated, seqLen))
	if err != nil {
		return nil, err
	}
	t := &attackTemplate{
		key:    scenarioKey{seqLen, shareA},
		m:      m,
		vicAS:  m.Kernel.NewAddressSpace(),
		attAS:  m.Kernel.NewAddressSpace(),
		frames: map[string]phys.Addr{},
	}
	alloc := func(as *vm.AddressSpace, name string, va vm.VAddr) error {
		frame, err := m.Kernel.AllocPage(as, va, vm.Read|vm.Write)
		if err != nil {
			return err
		}
		t.frames[name] = frame
		return m.Kernel.MapShadowAS(as, 0, va)
	}
	if err := alloc(t.vicAS, "A", vaA); err != nil {
		return nil, err
	}
	if err := alloc(t.vicAS, "B", vaB); err != nil {
		return nil, err
	}
	if err := alloc(t.attAS, "C", vaC); err != nil {
		return nil, err
	}
	if err := alloc(t.attAS, "FOO", vaFoo); err != nil {
		return nil, err
	}
	if shareA {
		// Public read-only data: same frame, read right, own shadow.
		if err := m.Kernel.MapFrame(t.attAS, vaA, t.frames["A"], vm.Read); err != nil {
			return nil, err
		}
		if err := m.Kernel.MapShadowAS(t.attAS, 0, vaA); err != nil {
			return nil, err
		}
	}
	m.Mem.Fill(t.frames["A"], 256, fillA)
	m.Mem.Fill(t.frames["C"], 256, fillC)
	if t.snap, err = m.Snapshot(); err != nil {
		return nil, err
	}
	return t, nil
}

// frameName resolves a physical address to the scenario page holding it.
func (w *attackWorld) frameName(pa phys.Addr) string {
	ps := phys.Addr(w.m.Cfg.PageSize)
	for name, f := range w.frames {
		if pa >= f && pa < f+ps {
			return name
		}
	}
	return pa.String()
}

// newAttackWorld checks a pristine template world out of the pool and
// spawns both processes into its pre-built address spaces. shareA
// selects the template family with the victim's A page mapped
// read-only into the attacker (the Figure 6 precondition).
func newAttackWorld(seqLen int, shareA bool, victimBody, attackerBody proc.Body) (*attackWorld, error) {
	t, err := checkoutTemplate(seqLen, shareA)
	if err != nil {
		return nil, err
	}
	w := &attackWorld{m: t.m, frames: t.frames, tmpl: t}
	w.victim = t.m.Runner.Spawn("victim", t.vicAS, victimBody)
	w.attacker = t.m.Runner.Spawn("attacker", t.attAS, attackerBody)
	return w, nil
}

// finish computes the run's outcome, then rewinds the world to its
// pristine snapshot and returns the template to the pool. The world
// must not be used after finish. If the rewind fails (it cannot, short
// of a bug — the run has completed, so the world is quiescent), the
// template is simply dropped and the next run builds a fresh one.
func (w *attackWorld) finish(victimStatus, attackerStatus uint64) AttackOutcome {
	o := w.outcome(victimStatus, attackerStatus)
	if t := w.tmpl; t != nil {
		w.tmpl = nil
		if err := t.m.Restore(t.snap); err == nil {
			if pi, ok := attackPools.Load(t.key); ok {
				pi.(*sync.Pool).Put(t)
			}
		}
	}
	return o
}

// outcome inspects the engine's transfer log after a run.
func (w *attackWorld) outcome(victimStatus, attackerStatus uint64) AttackOutcome {
	o := AttackOutcome{
		VictimStatus:          victimStatus,
		VictimBelievesSuccess: victimStatus != dma.StatusFailure,
		AttackerStatus:        attackerStatus,
		VictimErr:             w.victim.Err(),
	}
	sawAtoB := false
	for _, t := range w.m.Engine.Transfers() {
		src, dst := w.frameName(t.Src), w.frameName(t.Dst)
		o.Transfers = append(o.Transfers, fmt.Sprintf("%s->%s[%d]", src, dst, t.Size))
		if dst == "B" && src != "A" {
			o.Hijacked = true
		}
		if dst == "B" && src == "A" {
			sawAtoB = true
		}
	}
	if o.VictimBelievesSuccess != sawAtoB {
		o.Misinformed = true
	}
	return o
}

// Figure5 replays the paper's Figure 5 against the 3-access variant:
// the malicious process transfers its own data (C) into the victim's
// private page (B), and the victim is told its own DMA succeeded.
func Figure5() (AttackOutcome, error) {
	const size = 64
	var victimStatus uint64
	victimBody := func(c *proc.Context) error {
		// Dubnicki's 3-instruction protocol, one attempt, no retry:
		// LOAD status1, STORE size, MB, LOAD status2.
		if _, err := c.Load(shadow(vaA), phys.Size64); err != nil {
			return err
		}
		if err := c.Store(shadow(vaB), phys.Size64, size); err != nil {
			return err
		}
		if err := c.MB(); err != nil {
			return err
		}
		st, err := c.Load(shadow(vaA), phys.Size64)
		victimStatus = st
		return err
	}
	attackerBody := func(c *proc.Context) error {
		// Only the attacker's own pages are touched — every access is
		// individually legal.
		if err := c.Store(shadow(vaFoo), phys.Size64, 1); err != nil {
			return err
		}
		if err := c.MB(); err != nil {
			return err
		}
		if _, err := c.Load(shadow(vaFoo), phys.Size64); err != nil {
			return err
		}
		if _, err := c.Load(shadow(vaC), phys.Size64); err != nil {
			return err
		}
		_, err := c.Load(shadow(vaC), phys.Size64)
		return err
	}
	w, err := newAttackWorld(3, false, victimBody, attackerBody)
	if err != nil {
		return AttackOutcome{}, err
	}
	V, A := w.victim.PID(), w.attacker.PID()
	// Figure 5's interleaving, slot by slot:
	//   V: LOAD shadow(A)            1
	//   A: STORE shadow(FOO), MB     2-3
	//   A: LOAD shadow(FOO)          4   <- no DMA (A != FOO)
	//   A: LOAD shadow(C)            5
	//   V: STORE shadow(B), MB       6-7
	//   A: LOAD shadow(C)            8   <- DMA C->B starts!
	//   V: LOAD shadow(A)            9   <- too late to do anything
	script := proc.NewScripted(V, A, A, A, A, V, V, A, V)
	if err := w.m.Run(script, 10_000); err != nil {
		return AttackOutcome{}, err
	}
	w.m.Settle()
	return w.finish(victimStatus, 0), nil
}

// Figure6 replays the paper's Figure 6 against the 4-access variant:
// the attacker (read access to the public page A) completes the
// victim's sequence, so the DMA starts for the attacker while the
// victim is told it failed.
func Figure6() (AttackOutcome, error) {
	const size = 64
	var victimStatus, attackerStatus uint64
	victimBody := func(c *proc.Context) error {
		// Figure 6's victim: STORE, LOAD, STORE, [attacker], LOAD.
		if err := c.Store(shadow(vaB), phys.Size64, size); err != nil {
			return err
		}
		if err := c.MB(); err != nil {
			return err
		}
		if _, err := c.Load(shadow(vaA), phys.Size64); err != nil {
			return err
		}
		if err := c.Store(shadow(vaB), phys.Size64, size); err != nil {
			return err
		}
		if err := c.MB(); err != nil {
			return err
		}
		st, err := c.Load(shadow(vaA), phys.Size64)
		victimStatus = st
		return err
	}
	attackerBody := func(c *proc.Context) error {
		// One read of public data's shadow — individually legal.
		st, err := c.Load(shadow(vaA), phys.Size64)
		attackerStatus = st
		return err
	}
	w, err := newAttackWorld(4, true, victimBody, attackerBody)
	if err != nil {
		return AttackOutcome{}, err
	}
	V, A := w.victim.PID(), w.attacker.PID()
	// Victim slots 1-5 (S, MB, L, S, MB), attacker's completing LOAD,
	// then the victim's final LOAD — Figure 6's interleaving.
	script := proc.NewScripted(V, V, V, V, V, A, V)
	if err := w.m.Run(script, 10_000); err != nil {
		return AttackOutcome{}, err
	}
	w.m.Settle()
	return w.finish(victimStatus, attackerStatus), nil
}

// Figure8Replay runs the Figure 5 attack schedule against the paper's
// safe 5-access sequence: the attack must not start any transfer into
// B, and the victim (which retries per Figure 7) must end with an
// honest answer.
func Figure8Replay() (AttackOutcome, error) {
	const size = 64
	var victimStatus uint64
	var victimErr error
	victimBody := func(c *proc.Context) error {
		// The real protocol: Figure 7 with retries.
		// Build a temporary handle-less sequence via RepeatedPassing.
		r := RepeatedPassing{Len: 5, Barriers: true, MaxRetries: 16}
		prog := r.sequence(vaA, vaB, size)
		for attempt := 0; attempt < r.MaxRetries; attempt++ {
			st, err := runCheckedProgram(c, prog)
			if err != nil {
				return err
			}
			if st == dma.StatusFailure || st == dma.StatusAccepted {
				continue // strict client (see RepeatedPassing.LooseStatus)
			}
			victimStatus = st
			return nil
		}
		victimStatus = dma.StatusFailure
		victimErr = ErrRetriesExhausted
		return nil
	}
	attackerBody := func(c *proc.Context) error {
		for i := 0; i < 4; i++ { // keep interfering across retries
			c.Store(shadow(vaFoo), phys.Size64, 1)
			c.MB()
			c.Load(shadow(vaFoo), phys.Size64)
			c.Load(shadow(vaC), phys.Size64)
			c.Load(shadow(vaC), phys.Size64)
		}
		return nil
	}
	w, err := newAttackWorld(5, false, victimBody, attackerBody)
	if err != nil {
		return AttackOutcome{}, err
	}
	V, A := w.victim.PID(), w.attacker.PID()
	// Same adversarial flavour as Figure 5, then free-run to let the
	// victim's retries finish.
	script := proc.NewScripted(V, A, A, A, A, V, V, A, V, A, V, A, V)
	if err := w.m.Run(script, 100_000); err != nil {
		return AttackOutcome{}, err
	}
	w.m.Settle()
	o := w.finish(victimStatus, 0)
	if victimErr != nil && o.VictimErr == nil {
		o.VictimErr = victimErr
	}
	return o, nil
}

// RandomAdversarialRun drives a victim (5-access protocol with retries)
// against an attacker issuing a seeded-random stream of legal shadow
// accesses, under a seeded-random scheduler. looseStatus selects the
// paper's literal Figure 7 client (checks DMA_FAILURE only) instead of
// the strict one that also retries on ACCEPTED. It returns the outcome;
// the property test asserts that no run is ever Hijacked.
func RandomAdversarialRun(seed uint64, shareA, looseStatus bool) (AttackOutcome, error) {
	const size = 64
	var victimStatus uint64
	victimBody := func(c *proc.Context) error {
		r := RepeatedPassing{Len: 5, Barriers: true, MaxRetries: 32}
		prog := r.sequence(vaA, vaB, size)
		for attempt := 0; attempt < r.MaxRetries; attempt++ {
			st, err := runCheckedProgram(c, prog)
			if err != nil {
				return err
			}
			if st == dma.StatusFailure {
				continue
			}
			if st == dma.StatusAccepted && !looseStatus {
				continue // strict client: final load only extended a foreign sequence
			}
			victimStatus = st
			return nil
		}
		victimStatus = dma.StatusFailure
		return nil
	}
	attackerBody := func(c *proc.Context) error {
		rng := sim.NewRand(seed ^ 0xa77ac)
		targets := []vm.VAddr{shadow(vaC), shadow(vaFoo)}
		if shareA {
			targets = append(targets, shadow(vaA)) // read-only share
		}
		for i := 0; i < 40; i++ {
			t := targets[rng.Intn(len(targets))]
			switch rng.Intn(3) {
			case 0:
				if t != shadow(vaA) { // attacker cannot store to A
					c.Store(t, phys.Size64, uint64(rng.Intn(256)+1))
					c.MB()
				}
			case 1:
				c.Load(t, phys.Size64)
			default:
				c.Spin(50)
			}
		}
		return nil
	}
	w, err := newAttackWorld(5, shareA, victimBody, attackerBody)
	if err != nil {
		return AttackOutcome{}, err
	}
	if err := w.m.Run(proc.NewRandom(seed), 1_000_000); err != nil {
		return AttackOutcome{}, err
	}
	w.m.Settle()
	return w.finish(victimStatus, 0), nil
}

// ExhaustiveInterleavings enumerates EVERY interleaving of the victim's
// single 5-access attempt (with barriers: 7 slots) with an attacker
// program of up to maxAttacker slots drawn from a fixed adversarial
// program, running each schedule on a fresh machine. It returns the
// number of schedules tried and the first hijacking outcome found (nil
// if none — the paper's §3.3.1 claim).
func ExhaustiveInterleavings(attackerSlots int) (tried int, hijack *AttackOutcome, err error) {
	// Victim: S MB L S MB L L = VictimSlots slots. Attacker: first
	// `attackerSlots` slots of [S(FOO) MB L(FOO) L(C) L(C) S(C) MB L(FOO)].
	schedules := interleavings(VictimSlots, attackerSlots)
	for _, sched := range schedules {
		tried++
		o, e := runInterleaving(sched)
		if e != nil {
			return tried, nil, e
		}
		if o.Hijacked {
			return tried, &o, nil
		}
	}
	return tried, nil, nil
}

// VictimSlots is the victim's slot count in the exhaustive search: its
// barriered 5-access attempt occupies S MB L S MB L L = 7 scheduler
// slots.
const VictimSlots = 7

// RunInterleaving runs ONE schedule of the exhaustive search — one
// cell of the "exhaustive" experiment — on a fresh world: the victim's
// barriered 5-access attempt against the fixed adversarial program,
// interleaved as sched dictates (true = victim slot). It is shared by
// the serial search and internal/exp's parallel one.
func RunInterleaving(sched []bool) (AttackOutcome, error) {
	return runInterleaving(sched)
}

// runInterleaving runs ONE schedule of the exhaustive search on a fresh
// world: the victim's barriered 5-access attempt against the fixed
// adversarial program, interleaved as sched dictates (true = victim
// slot). It is shared by the serial and parallel searches.
func runInterleaving(sched []bool) (AttackOutcome, error) {
	const size = 64
	var victimStatus uint64
	victimBody := func(c *proc.Context) error {
		r := RepeatedPassing{Len: 5, Barriers: true}
		st, e := runCheckedProgram(c, r.sequence(vaA, vaB, size))
		victimStatus = st
		return e
	}
	attackerBody := func(c *proc.Context) error {
		c.Store(shadow(vaFoo), phys.Size64, 32)
		c.MB()
		c.Load(shadow(vaFoo), phys.Size64)
		c.Load(shadow(vaC), phys.Size64)
		c.Load(shadow(vaC), phys.Size64)
		c.Store(shadow(vaC), phys.Size64, 32)
		c.MB()
		c.Load(shadow(vaFoo), phys.Size64)
		return nil
	}
	w, e := newAttackWorld(5, false, victimBody, attackerBody)
	if e != nil {
		return AttackOutcome{}, e
	}
	V, A := w.victim.PID(), w.attacker.PID()
	order := make([]proc.PID, 0, len(sched))
	for _, isVictim := range sched {
		if isVictim {
			order = append(order, V)
		} else {
			order = append(order, A)
		}
	}
	if e := w.m.Run(proc.NewScripted(order...), 100_000); e != nil {
		return AttackOutcome{}, e
	}
	w.m.Settle()
	return w.finish(victimStatus, 0), nil
}

// ScenarioSymbols returns the assembler symbol table of the standard
// attack scenario: A, B (victim pages, B private), C, FOO (attacker
// pages), each resolving to its shadow virtual address.
func ScenarioSymbols() map[string]vm.VAddr {
	return map[string]vm.VAddr{
		"A":   shadow(vaA),
		"B":   shadow(vaB),
		"C":   shadow(vaC),
		"FOO": shadow(vaFoo),
	}
}

// CustomDuel runs researcher-scripted victim and attacker programs in
// the standard attack scenario under an explicit slot schedule
// ('V'/'A' per slot; unscheduled slots fall back to spawn order). The
// victim's status is its program's last load. attacksim's -custom mode
// is built on this.
func CustomDuel(seqLen int, shareA bool, victimProg, attackerProg isa.Program, schedule string) (AttackOutcome, error) {
	if seqLen != 3 && seqLen != 4 && seqLen != 5 {
		return AttackOutcome{}, fmt.Errorf("userdma: engine sequence length %d (want 3, 4 or 5)", seqLen)
	}
	var victimStatus uint64 = dma.StatusFailure
	victimBody := func(c *proc.Context) error {
		vals, err := isa.Run(c, victimProg)
		if err != nil {
			return err
		}
		if len(vals) > 0 {
			victimStatus = vals[len(vals)-1]
		}
		return nil
	}
	attackerBody := func(c *proc.Context) error {
		_, err := isa.Run(c, attackerProg)
		return err
	}
	w, err := newAttackWorld(seqLen, shareA, victimBody, attackerBody)
	if err != nil {
		return AttackOutcome{}, err
	}
	var order []proc.PID
	for _, r := range schedule {
		switch r {
		case 'V', 'v':
			order = append(order, w.victim.PID())
		case 'A', 'a':
			order = append(order, w.attacker.PID())
		case ' ', ',':
		default:
			return AttackOutcome{}, fmt.Errorf("userdma: schedule char %q (want V or A)", r)
		}
	}
	if err := w.m.Run(proc.NewScripted(order...), 100_000); err != nil {
		return AttackOutcome{}, err
	}
	w.m.Settle()
	return w.finish(victimStatus, 0), nil
}

// Interleavings enumerates all merge orders of v victim slots with a
// attacker slots, as boolean slices (true = victim slot) — the cell
// grid of the "exhaustive" experiment.
func Interleavings(v, a int) [][]bool {
	return interleavings(v, a)
}

// interleavings enumerates all merge orders of v victim slots with a
// attacker slots, as boolean slices (true = victim slot).
func interleavings(v, a int) [][]bool {
	if v == 0 && a == 0 {
		return [][]bool{{}}
	}
	var out [][]bool
	if v > 0 {
		for _, rest := range interleavings(v-1, a) {
			out = append(out, append([]bool{true}, rest...))
		}
	}
	if a > 0 {
		for _, rest := range interleavings(v, a-1) {
			out = append(out, append([]bool{false}, rest...))
		}
	}
	return out
}
