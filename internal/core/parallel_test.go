package userdma

import (
	"reflect"
	"testing"

	"uldma/internal/sim"
)

// The parallel sweep drivers promise byte-identical results to their
// serial counterparts for ANY worker count. These tests pin that
// promise: every cell builds its own machine, so parallelising over
// cells must not perturb a single simulated picosecond.

var parityWorkers = []int{1, 2, 3, 4, 8}

func TestTable1PParity(t *testing.T) {
	const iters = 50
	want, err := Table1(iters)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range parityWorkers {
		got, err := Table1P(iters, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: Table1P diverged from Table1\n got %+v\nwant %+v", w, got, want)
		}
	}
}

func TestBusSweepPParity(t *testing.T) {
	const iters = 30
	freqs := []sim.Hz{12_500_000, 33 * sim.MHz, 66 * sim.MHz}
	want, err := BusSweep(iters, freqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range parityWorkers {
		got, err := BusSweepP(iters, freqs, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: BusSweepP diverged from BusSweep", w)
		}
	}
}

func TestBreakEvenPParity(t *testing.T) {
	for _, m := range []Method{KernelLevel{}, ExtShadow{}} {
		want, err := BreakEven(m, DefaultSizes)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range parityWorkers {
			got, err := BreakEvenP(m, DefaultSizes, w)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", m.Name(), w, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s workers=%d: BreakEvenP diverged from BreakEven", m.Name(), w)
			}
		}
	}
}

func TestTrendSweepPParity(t *testing.T) {
	const iters = 20
	want, err := TrendSweep(iters)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range parityWorkers {
		got, err := TrendSweepP(iters, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: TrendSweepP diverged from TrendSweep\n got %+v\nwant %+v", w, got, want)
		}
	}
}

func TestExhaustiveInterleavingsPParity(t *testing.T) {
	for _, slots := range []int{1, 2, 3} {
		wantTried, wantHijack, wantErr := ExhaustiveInterleavings(slots)
		if wantErr != nil {
			t.Fatal(wantErr)
		}
		for _, w := range parityWorkers {
			tried, hijack, err := ExhaustiveInterleavingsP(slots, w)
			if err != nil {
				t.Fatalf("slots=%d workers=%d: %v", slots, w, err)
			}
			if tried != wantTried {
				t.Errorf("slots=%d workers=%d: tried %d, serial %d", slots, w, tried, wantTried)
			}
			if !reflect.DeepEqual(hijack, wantHijack) {
				t.Errorf("slots=%d workers=%d: hijack %+v, serial %+v", slots, w, hijack, wantHijack)
			}
		}
	}
}

func TestRandomCampaignPParity(t *testing.T) {
	const n = 9
	want := make([]AttackOutcome, n)
	for seed := 1; seed <= n; seed++ {
		o, err := RandomAdversarialRun(uint64(seed), false, false)
		if err != nil {
			t.Fatal(err)
		}
		want[seed-1] = o
	}
	for _, w := range parityWorkers {
		got, err := RandomCampaignP(n, false, false, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: RandomCampaignP diverged from serial seed loop", w)
		}
	}
}

// Repeating a parallel sweep with different seeds of work (three
// distinct iteration counts stand in for "three seeds": each produces a
// different deterministic table) guards against any worker-count- or
// scheduling-order-dependence leaking into results.
func TestTable1PStableAcrossRuns(t *testing.T) {
	for _, iters := range []int{10, 25, 40} {
		first, err := Table1P(iters, 4)
		if err != nil {
			t.Fatal(err)
		}
		for run := 0; run < 2; run++ {
			again, err := Table1P(iters, 4)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(again, first) {
				t.Fatalf("iters=%d run=%d: Table1P not reproducible", iters, run)
			}
		}
	}
}
