package userdma

// Steady-state convergence detection for the measurement loops. The
// paper's methodology repeats an identical initiation many times (only
// the in-page offset cycles, with period 64); once the machine reaches
// steady state every iteration charges exactly the same costs, and
// simulating the remainder is wasted work. The harness therefore
// fingerprints the whole machine after each iteration
// (machine.Fingerprint: every counter, the clock, the TLB and engine
// state hashes) and compares successive fingerprint *deltas*. After
// ConvergeK consecutive identical deltas — more than a full offset
// cycle, so any period-64 effect would have broken the streak — every
// future iteration is provably identical, and the loop fast-forwards:
// it synthesizes the remaining samples and advances the clock
// analytically. Results are byte-identical to the full run; only
// wall-clock time changes.

import (
	"sync/atomic"

	"uldma/internal/machine"
	"uldma/internal/sim"
)

// ConvergeK is how many consecutive identical machine-state deltas the
// detector demands before fast-forwarding. It exceeds the measurement
// loops' 64-iteration address-offset cycle, so a streak this long rules
// out any offset-periodic variation.
const ConvergeK = 70

// fastForward gates the convergence fast-forward globally. On by
// default; the equivalence tests switch it off to obtain full-run
// references.
var fastForward = true

// SetFastForward enables or disables steady-state fast-forwarding and
// returns the previous setting. Measurements are byte-identical either
// way (that is the detector's contract — and the equivalence tests'
// subject); only wall-clock time differs.
func SetFastForward(on bool) (prev bool) {
	prev = fastForward
	fastForward = on
	return prev
}

// ffEngagements counts fast-forward activations across all measurement
// cells (cells run on parallel worker goroutines, hence atomic). It
// exists so the equivalence regression test can assert the detector
// actually fired — a silently-never-converging detector would leave
// results correct but the optimization dead.
var ffEngagements atomic.Int64

// FastForwardEngagements returns how many measurement loops have
// fast-forwarded since process start.
func FastForwardEngagements() int64 { return ffEngagements.Load() }

// convergence tracks fingerprint deltas across measurement iterations.
// The zero value is ready to use.
type convergence struct {
	prev      machine.Fingerprint
	delta     machine.Fingerprint
	havePrev  bool
	haveDelta bool
	streak    int
}

// observe feeds the fingerprint taken at the end of one iteration and
// reports whether the machine has converged: ConvergeK consecutive
// iterations produced the identical state delta.
func (c *convergence) observe(f machine.Fingerprint) bool {
	if !c.havePrev {
		c.prev, c.havePrev = f, true
		return false
	}
	d := f.Delta(&c.prev)
	c.prev = f
	if c.haveDelta && d == c.delta {
		c.streak++
	} else {
		c.delta, c.haveDelta = d, true
		c.streak = 1
	}
	return c.streak >= ConvergeK
}

// clockDelta returns the converged per-iteration clock advance (word 0
// of the delta vector).
func (c *convergence) clockDelta() sim.Time {
	return sim.Time(c.delta[0])
}
