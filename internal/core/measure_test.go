package userdma

import (
	"strings"
	"testing"

	"uldma/internal/sim"
)

func TestMeasureMethodComparators(t *testing.T) {
	// The comparators measure too (no paper reference, but sane values).
	for _, method := range []Method{PALCode{}, SHRIMP1{}, SHRIMP2{WithKernelMod: true}, FLASH{}} {
		cfg := ConfigFor(method)
		r, err := MeasureMethod(method, cfg, 50)
		if err != nil {
			t.Fatalf("%s: %v", method.Name(), err)
		}
		if r.Mean <= 0 || r.Mean > 20*sim.Microsecond {
			t.Errorf("%s: mean = %v", method.Name(), r.Mean)
		}
		if r.PaperMean != 0 {
			t.Errorf("%s: unexpected paper reference", method.Name())
		}
	}
}

func TestBusSweepFasterBusFasterInitiation(t *testing.T) {
	freqs := []sim.Hz{12_500_000, 33 * sim.MHz, 66 * sim.MHz}
	sweep, err := BusSweep(50, freqs)
	if err != nil {
		t.Fatal(err)
	}
	// For every user-level method, initiation time strictly improves
	// with bus frequency; the kernel path barely moves (it is dominated
	// by trap cost, not bus cycles) — §3.4's projection.
	means := func(f sim.Hz) map[string]sim.Time {
		out := map[string]sim.Time{}
		for _, r := range sweep[f] {
			out[r.Method] = r.Mean
		}
		return out
	}
	tc, pci33, pci66 := means(12_500_000), means(33*sim.MHz), means(66*sim.MHz)
	for name := range tc {
		if name == "Kernel-level DMA" {
			continue
		}
		if !(pci66[name] < pci33[name] && pci33[name] < tc[name]) {
			t.Errorf("%s: %v -> %v -> %v not improving with bus speed",
				name, tc[name], pci33[name], pci66[name])
		}
		if tc[name] < 2*pci66[name] {
			t.Errorf("%s: 66MHz bus only improved %v -> %v", name, tc[name], pci66[name])
		}
	}
	kernelImprovement := float64(tc["Kernel-level DMA"]) / float64(pci66["Kernel-level DMA"])
	if kernelImprovement > 1.3 {
		t.Errorf("kernel DMA improved %.2fx with bus speed; should be trap-dominated", kernelImprovement)
	}
}

func TestContextContentionFallback(t *testing.T) {
	// Extended mode has 4 contexts; with 6 processes, two fall back to
	// the kernel path and pay its latency.
	results, err := ContextContention(ExtShadow{}, 6, 20)
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := 0, 0
	for _, r := range results {
		if strings.Contains(r.Method, "fallback") {
			slow++
			if r.Mean < 10*sim.Microsecond {
				t.Errorf("fallback mean %v suspiciously fast", r.Mean)
			}
		} else {
			fast++
			if r.Mean > 3*sim.Microsecond {
				t.Errorf("user-level mean %v suspiciously slow", r.Mean)
			}
		}
		if r.Iterations != 20 {
			t.Errorf("%s: %d iterations", r.Method, r.Iterations)
		}
	}
	if fast != 4 || slow != 2 {
		t.Fatalf("fast=%d slow=%d, want 4/2", fast, slow)
	}
}

func TestPaperTable1Complete(t *testing.T) {
	for _, m := range Methods() {
		if _, ok := PaperTable1[m.Name()]; !ok {
			t.Errorf("method %q missing from PaperTable1", m.Name())
		}
	}
}

// TestTrendSweep asserts the paper's motivating trend (X7): across
// hardware generations, the kernel path's break-even size GROWS (the
// trap eats relatively more of every transfer) while user-level
// initiation keeps shrinking with the hardware.
func TestTrendSweep(t *testing.T) {
	pts, err := TrendSweep(50)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("eras = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].UserInit >= pts[i-1].UserInit {
			t.Fatalf("user-level initiation did not improve: %v -> %v",
				pts[i-1].UserInit, pts[i].UserInit)
		}
		if pts[i].KernelCrossover < pts[i-1].KernelCrossover {
			t.Fatalf("kernel break-even shrank across generations: %d -> %d",
				pts[i-1].KernelCrossover, pts[i].KernelCrossover)
		}
	}
	// In the 2000 projection, the trap's advantage is nearly gone: the
	// user/kernel ratio keeps widening.
	first := float64(pts[0].KernelInit) / float64(pts[0].UserInit)
	last := float64(pts[2].KernelInit) / float64(pts[2].UserInit)
	if last <= first {
		t.Fatalf("kernel/user ratio did not widen: %.1fx -> %.1fx", first, last)
	}
	t.Logf("kernel/user initiation ratio: %.0fx (1994) -> %.0fx (2000); kernel break-even %dB -> %dB",
		first, last, pts[0].KernelCrossover, pts[2].KernelCrossover)
}

func TestBreakEvenCrossovers(t *testing.T) {
	// The §1 claim, quantified: with kernel initiation the transfer must
	// be KILOBYTES before the wire time outweighs the trap; with
	// extended shadow addressing even tiny transfers amortize.
	kernelPts, err := BreakEven(KernelLevel{}, DefaultSizes)
	if err != nil {
		t.Fatal(err)
	}
	extPts, err := BreakEven(ExtShadow{}, DefaultSizes)
	if err != nil {
		t.Fatal(err)
	}
	kCross, ok := Crossover(kernelPts)
	if !ok {
		t.Fatal("kernel path never crossed over")
	}
	eCross, ok := Crossover(extPts)
	if !ok {
		t.Fatal("ext-shadow path never crossed over")
	}
	if kCross < 256 {
		t.Fatalf("kernel crossover at %dB; trap cost should dominate small transfers", kCross)
	}
	if eCross > 256 {
		t.Fatalf("ext-shadow crossover at %dB; user-level initiation should amortize early", eCross)
	}
	// Monotonicity: initiation share falls with size; transfer grows.
	for i := 1; i < len(kernelPts); i++ {
		if kernelPts[i].InitShare > kernelPts[i-1].InitShare {
			t.Fatalf("init share not decreasing: %+v", kernelPts)
		}
		if kernelPts[i].Transfer < kernelPts[i-1].Transfer {
			t.Fatalf("transfer time not increasing: %+v", kernelPts)
		}
	}
	// Initiation time must be size-independent (it is register
	// programming, not data movement).
	for _, pts := range [][]BreakEvenPoint{kernelPts, extPts} {
		for _, pt := range pts[1:] {
			if pt.Initiation != pts[0].Initiation {
				t.Fatalf("initiation varies with size: %v vs %v", pt.Initiation, pts[0].Initiation)
			}
		}
	}
}
