package userdma

import (
	"bytes"
	"errors"
	"testing"

	"uldma/internal/dma"
	"uldma/internal/machine"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/vm"
)

const (
	srcVA = vm.VAddr(0x10000)
	dstVA = vm.VAddr(0x20000)
)

// world is the standard one-process fixture: a machine wired for the
// method, a user process with two shadow-mapped pages, and the handle.
type world struct {
	m        *machine.Machine
	p        *proc.Process
	h        *Handle
	srcFrame phys.Addr
	dstFrame phys.Addr
	body     proc.Body
}

func newWorld(t *testing.T, method Method) *world {
	t.Helper()
	w := &world{m: Machine(method)}
	w.p = w.m.NewProcess("user", func(c *proc.Context) error { return w.body(c) })
	h, err := method.Attach(w.m, w.p) // before SetupPages: ctx id in mappings
	if err != nil {
		t.Fatal(err)
	}
	w.h = h
	frames, err := w.m.SetupPages(w.p, srcVA, 1, vm.Read|vm.Write)
	if err != nil {
		t.Fatal(err)
	}
	w.srcFrame = frames[0]
	frames, err = w.m.SetupPages(w.p, dstVA, 1, vm.Read|vm.Write)
	if err != nil {
		t.Fatal(err)
	}
	w.dstFrame = frames[0]
	return w
}

func (w *world) run(t *testing.T, body proc.Body) {
	t.Helper()
	w.body = body
	if err := w.m.Run(proc.NewRoundRobin(8), 1_000_000); err != nil {
		t.Fatal(err)
	}
	if w.p.Err() != nil {
		t.Fatalf("guest error: %v", w.p.Err())
	}
}

func TestEveryMethodMovesData(t *testing.T) {
	for _, method := range AllMethods() {
		method := method
		t.Run(method.Name(), func(t *testing.T) {
			w := newWorld(t, method)
			if s1, ok := method.(SHRIMP1); ok {
				// Mapped-out mode: fix the destination at setup time.
				if err := s1.MapOutPage(w.m, w.p, srcVA, w.dstFrame); err != nil {
					t.Fatal(err)
				}
			}
			payload := bytes.Repeat([]byte{0xd5}, 128)
			if err := w.m.Mem.WriteBytes(w.srcFrame, payload); err != nil {
				t.Fatal(err)
			}
			var status uint64
			w.run(t, func(c *proc.Context) error {
				st, err := w.h.DMA(c, srcVA, dstVA, 128)
				status = st
				return err
			})
			if status == dma.StatusFailure {
				t.Fatalf("initiation failed (status %#x)", status)
			}
			w.m.Settle()
			got, err := w.m.Mem.ReadBytes(w.dstFrame, 128)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("destination = %v..., want 0xd5 repeated", got[:8])
			}
			if w.m.Engine.Stats().Started != 1 {
				t.Fatalf("engine started %d transfers", w.m.Engine.Stats().Started)
			}
		})
	}
}

// TestTable1Timing asserts the calibrated model lands on the paper's
// Table 1 (±10%): kernel 18.6 µs, ext-shadow 1.1 µs, repeated 2.6 µs,
// key-based 2.3 µs.
func TestTable1Timing(t *testing.T) {
	results, err := Table1(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("Table1 returned %d rows", len(results))
	}
	for _, r := range results {
		target := r.PaperMean
		if target == 0 {
			t.Fatalf("%s: no paper reference", r.Method)
		}
		lo := target - target/10
		hi := target + target/10
		if r.Mean < lo || r.Mean > hi {
			t.Errorf("%s: mean initiation = %v, want %v ±10%%", r.Method, r.Mean, target)
		}
		if r.Min > r.Mean || r.Max < r.Mean || r.Iterations != 200 {
			t.Errorf("%s: inconsistent summary %+v", r.Method, r)
		}
	}
	// Ordering claims: all user-level methods beat the kernel by about
	// an order of magnitude, and extended shadow is the fastest.
	byName := map[string]sim.Time{}
	for _, r := range results {
		byName[r.Method] = r.Mean
	}
	kernelMean := byName["Kernel-level DMA"]
	for name, mean := range byName {
		if name == "Kernel-level DMA" {
			continue
		}
		if kernelMean < 6*mean {
			t.Errorf("%s: only %.1fx faster than kernel DMA", name,
				float64(kernelMean)/float64(mean))
		}
		if byName["Ext. Shadow Addressing"] > mean {
			t.Errorf("extended shadow (%v) slower than %s (%v)",
				byName["Ext. Shadow Addressing"], name, mean)
		}
	}
}

// TestInstructionCounts verifies the paper's §4 claim: user-level DMA
// in 2-5 instructions issued from user level (experiment X2).
func TestInstructionCounts(t *testing.T) {
	cases := []struct {
		method      Method
		busAccesses int
		loads       int
		stores      int
	}{
		{ExtShadow{}, 2, 1, 1},
		{KeyBased{}, 4, 1, 3},
		{RepeatedPassing{Len: 5, Barriers: true}, 5, 3, 2},
		{RepeatedPassing{Len: 4, Barriers: true}, 4, 2, 2},
		{RepeatedPassing{Len: 3, Barriers: true}, 3, 2, 1},
		{SHRIMP2{}, 2, 1, 1},
		{FLASH{}, 2, 1, 1},
		{SHRIMP1{}, 1, 0, 0}, // one compare-and-exchange
	}
	for _, c := range cases {
		w := newWorld(t, c.method)
		prog, ok := w.h.Program(srcVA, dstVA, 64)
		if !ok {
			t.Fatalf("%s: no program", c.method.Name())
		}
		if got := prog.BusAccesses(); got != c.busAccesses {
			t.Errorf("%s: %d bus accesses, want %d", c.method.Name(), got, c.busAccesses)
		}
		if got := prog.Loads(); got != c.loads {
			t.Errorf("%s: %d loads, want %d", c.method.Name(), got, c.loads)
		}
		if got := prog.Stores(); got != c.stores {
			t.Errorf("%s: %d stores, want %d", c.method.Name(), got, c.stores)
		}
		if d := prog.Disassemble(); d == "" {
			t.Errorf("%s: empty disassembly", c.method.Name())
		}
		w.body = func(c *proc.Context) error { return nil }
		w.m.Run(proc.NewRoundRobin(1), 100)
	}
	// Call-based methods expose no user-level program.
	for _, m := range []Method{KernelLevel{}, PALCode{}} {
		w := newWorld(t, m)
		if _, ok := w.h.Program(srcVA, dstVA, 64); ok {
			t.Errorf("%s: unexpectedly has a user-level program", m.Name())
		}
		w.body = func(c *proc.Context) error { return nil }
		w.m.Run(proc.NewRoundRobin(1), 100)
	}
}

func TestPollAndWait(t *testing.T) {
	for _, method := range []Method{KeyBased{}, ExtShadow{}} {
		method := method
		t.Run(method.Name(), func(t *testing.T) {
			w := newWorld(t, method)
			w.m.Mem.Fill(w.srcFrame, 4096, 0x3e)
			w.run(t, func(c *proc.Context) error {
				st, err := w.h.DMA(c, srcVA, dstVA, 4096)
				if err != nil {
					return err
				}
				if st == dma.StatusFailure {
					t.Error("initiation failed")
					return nil
				}
				// 4 KiB at 50 MB/s ≈ 82 µs: first poll sees it running.
				rem, err := w.h.Poll(c)
				if err != nil {
					return err
				}
				if rem == 0 || rem == dma.StatusFailure {
					t.Errorf("first poll = %#x, want in-flight", rem)
				}
				return w.h.Wait(c, 10_000)
			})
			got, _ := w.m.Mem.ReadBytes(w.dstFrame, 4096)
			for _, b := range got {
				if b != 0x3e {
					t.Fatal("data incomplete after Wait")
				}
			}
		})
	}
	// Paired-mode methods cannot poll from user level.
	w := newWorld(t, SHRIMP2{})
	w.run(t, func(c *proc.Context) error {
		if _, err := w.h.Poll(c); !errors.Is(err, ErrNoPoll) {
			t.Errorf("Poll on paired method: %v", err)
		}
		return nil
	})
}

func TestContextExhaustionFallsBackToKernel(t *testing.T) {
	// §3.2: 1-2 context bits → 2-4 contexts; processes beyond that
	// "will have to go through the kernel".
	m := Machine(ExtShadow{})
	nCtx := m.Engine.NumContexts()
	for i := 0; i < nCtx; i++ {
		p := m.NewProcess("user", func(c *proc.Context) error { return nil })
		if _, err := (ExtShadow{}).Attach(m, p); err != nil {
			t.Fatalf("attach %d: %v", i, err)
		}
	}
	extra := m.NewProcess("extra", func(c *proc.Context) error { return nil })
	if _, err := (ExtShadow{}).Attach(m, extra); err == nil {
		t.Fatal("attach beyond context supply succeeded")
	}
	// The kernel path still works for the overflow process.
	if _, err := (KernelLevel{}).Attach(m, extra); err != nil {
		t.Fatal(err)
	}
	m.Run(proc.NewRoundRobin(1), 1000)
}

func TestOverview(t *testing.T) {
	infos, err := Overview()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(AllMethods()) {
		t.Fatalf("rows = %d, want %d", len(infos), len(AllMethods()))
	}
	byName := map[string]MethodInfo{}
	for _, i := range infos {
		byName[i.Name] = i
	}
	// The paper's headline: user-level methods need 1-5 accesses.
	for name, accesses := range map[string]int{
		"Ext. Shadow Addressing":         2,
		"Key-based DMA":                  4,
		"Rep. Passing of Arguments":      5,
		"SHRIMP solution 1 (mapped-out)": 1,
	} {
		if got := byName[name].UserAccesses; got != accesses {
			t.Errorf("%s: %d accesses, want %d", name, got, accesses)
		}
		if byName[name].KernelMod {
			t.Errorf("%s flagged as kernel mod", name)
		}
	}
	if !byName["FLASH (PID tracking)"].KernelMod {
		t.Error("FLASH not flagged as kernel mod")
	}
	if byName["Kernel-level DMA"].Instructions != "syscall" {
		t.Errorf("kernel instructions = %q", byName["Kernel-level DMA"].Instructions)
	}
	if byName["PAL Code"].Instructions != "call_pal" {
		t.Errorf("PAL instructions = %q", byName["PAL Code"].Instructions)
	}
	if !byName["Ext. Shadow Addressing"].Polls || byName["PAL Code"].Polls {
		t.Error("polling capability wrong")
	}
}

func TestMethodMetadata(t *testing.T) {
	mods := map[string]bool{}
	for _, m := range AllMethods() {
		mods[m.Name()] = m.RequiresKernelMod()
		if m.Name() == "" {
			t.Error("unnamed method")
		}
	}
	// The paper's dividing line: its own methods need no kernel mod.
	for _, name := range []string{
		"Kernel-level DMA", "Ext. Shadow Addressing",
		"Rep. Passing of Arguments", "Key-based DMA",
		"PAL Code", "SHRIMP solution 1 (mapped-out)",
	} {
		if mod, ok := mods[name]; !ok || mod {
			t.Errorf("%s: RequiresKernelMod = %v, want declared false", name, mod)
		}
	}
	for _, name := range []string{"SHRIMP solution 2 (kernel-mod)", "FLASH (PID tracking)"} {
		if mod, ok := mods[name]; !ok || !mod {
			t.Errorf("%s: RequiresKernelMod = %v, want true", name, mod)
		}
	}
	if (SHRIMP2{}).Name() == (SHRIMP2{WithKernelMod: true}).Name() {
		t.Error("SHRIMP2 variants need distinct names")
	}
	if (RepeatedPassing{Len: 3}).Name() == (RepeatedPassing{Len: 5}).Name() {
		t.Error("repeated-passing variants need distinct names")
	}
}

// TestPairedRaceUnsafeVsKernelMod is the §2.5 story at full-system
// scale: two processes under random preemption issue paired-mode DMAs.
// Without the kernel hook some transfers are misdirected; with it, none
// are (at the cost of retries).
func TestPairedRaceUnsafeVsKernelMod(t *testing.T) {
	raceyRun := func(method Method, seed uint64) (misdirected int, failed int) {
		m := Machine(method)
		type job struct {
			p        *proc.Process
			h        *Handle
			src, dst vm.VAddr
			srcF     phys.Addr
			dstF     phys.Addr
		}
		var jobs []*job
		for i := 0; i < 2; i++ {
			j := &job{src: srcVA, dst: dstVA}
			j.p = m.NewProcess("p", func(c *proc.Context) error {
				for k := 0; k < 10; k++ {
					st, err := j.h.DMA(c, j.src, j.dst, 64)
					if errors.Is(err, ErrRetriesExhausted) {
						failed++
						continue
					}
					if err != nil {
						return err
					}
					if st == dma.StatusFailure {
						failed++
					}
				}
				return nil
			})
			h, err := method.Attach(m, j.p)
			if err != nil {
				t.Fatal(err)
			}
			j.h = h
			frames, err := m.SetupPages(j.p, j.src, 1, vm.Read|vm.Write)
			if err != nil {
				t.Fatal(err)
			}
			j.srcF = frames[0]
			frames, err = m.SetupPages(j.p, j.dst, 1, vm.Read|vm.Write)
			if err != nil {
				t.Fatal(err)
			}
			j.dstF = frames[0]
			jobs = append(jobs, j)
		}
		if err := m.Run(proc.NewRandom(seed), 5_000_000); err != nil {
			t.Fatal(err)
		}
		m.Settle()
		legal := map[[2]phys.Addr]bool{}
		for _, j := range jobs {
			legal[[2]phys.Addr{j.srcF, j.dstF}] = true
		}
		for _, tr := range m.Engine.Transfers() {
			ps := phys.Addr(m.Cfg.PageSize)
			pair := [2]phys.Addr{tr.Src &^ (ps - 1), tr.Dst &^ (ps - 1)}
			if !legal[pair] {
				misdirected++
			}
		}
		return misdirected, failed
	}

	sawUnsafeMisdirect := false
	for seed := uint64(1); seed <= 20; seed++ {
		unsafeMis, _ := raceyRun(SHRIMP2{WithKernelMod: false, MaxRetries: 1}, seed)
		if unsafeMis > 0 {
			sawUnsafeMisdirect = true
		}
		safeMis, _ := raceyRun(SHRIMP2{WithKernelMod: true}, seed)
		if safeMis != 0 {
			t.Fatalf("seed %d: SHRIMP2 with kernel mod misdirected %d transfers", seed, safeMis)
		}
		flashMis, _ := raceyRun(FLASH{}, seed)
		if flashMis != 0 {
			t.Fatalf("seed %d: FLASH misdirected %d transfers", seed, flashMis)
		}
	}
	if !sawUnsafeMisdirect {
		t.Fatal("20 random schedules never misdirected the unsafe SHRIMP2 — race model broken?")
	}
}

// TestUserMethodsSafeUnderPreemption: the paper's methods survive the
// same random-preemption storm with no misdirection and no kernel mod.
func TestUserMethodsSafeUnderPreemption(t *testing.T) {
	methods := []Method{
		KeyBased{}, ExtShadow{}, PALCode{},
		// Concurrent repeated-passing users reset each other's FSM
		// progress; under instruction-level random preemption an
		// attempt succeeds only when it lands uninterrupted, so give
		// the retry loop room (safety, not liveness, is asserted).
		RepeatedPassing{Len: 5, Barriers: true, MaxRetries: 4096},
	}
	for _, method := range methods {
		method := method
		t.Run(method.Name(), func(t *testing.T) {
			for seed := uint64(1); seed <= 10; seed++ {
				m := Machine(method)
				type job struct {
					h    *Handle
					srcF phys.Addr
					dstF phys.Addr
				}
				var jobs []*job
				for i := 0; i < 2; i++ {
					j := &job{}
					p := m.NewProcess("p", func(c *proc.Context) error {
						for k := 0; k < 6; k++ {
							if _, err := j.h.DMA(c, srcVA, dstVA, 64); err != nil {
								return err
							}
						}
						return nil
					})
					h, err := method.Attach(m, p)
					if err != nil {
						t.Fatal(err)
					}
					j.h = h
					frames, err := m.SetupPages(p, srcVA, 1, vm.Read|vm.Write)
					if err != nil {
						t.Fatal(err)
					}
					j.srcF = frames[0]
					frames, err = m.SetupPages(p, dstVA, 1, vm.Read|vm.Write)
					if err != nil {
						t.Fatal(err)
					}
					j.dstF = frames[0]
					jobs = append(jobs, j)
				}
				if err := m.Run(proc.NewRandom(seed), 5_000_000); err != nil {
					t.Fatal(err)
				}
				for _, p := range m.Runner.Processes() {
					if p.Err() != nil {
						t.Fatalf("seed %d: %v", seed, p.Err())
					}
				}
				legal := map[[2]phys.Addr]bool{}
				for _, j := range jobs {
					legal[[2]phys.Addr{j.srcF, j.dstF}] = true
				}
				ps := phys.Addr(m.Cfg.PageSize)
				for _, tr := range m.Engine.Transfers() {
					pair := [2]phys.Addr{tr.Src &^ (ps - 1), tr.Dst &^ (ps - 1)}
					if !legal[pair] {
						t.Fatalf("seed %d: misdirected transfer %v->%v", seed, tr.Src, tr.Dst)
					}
				}
				if m.Kernel.KernelModified() {
					t.Fatalf("%s required a kernel modification", method.Name())
				}
			}
		})
	}
}

// TestExtShadowNoContextsVariant exercises §3.2's engine without
// register contexts: single process works in 2 accesses; two processes
// under random preemption both complete (with clean retries, never
// misdirection).
func TestExtShadowNoContextsVariant(t *testing.T) {
	method := ExtShadow{NoContexts: true}
	w := newWorld(t, method)
	w.m.Mem.Fill(w.srcFrame, 64, 0x19)
	var status uint64
	w.run(t, func(c *proc.Context) error {
		st, err := w.h.DMA(c, srcVA, dstVA, 64)
		status = st
		return err
	})
	if status == dma.StatusFailure {
		t.Fatal("single-process initiation failed")
	}
	w.m.Settle()
	got, _ := w.m.Mem.ReadBytes(w.dstFrame, 64)
	if got[0] != 0x19 {
		t.Fatal("data not moved")
	}
	// Poll is unavailable in this variant (no per-context status
	// register); the nil context is never touched.
	if _, err := w.h.Poll(nil); !errors.Is(err, ErrNoPoll) {
		t.Fatalf("Poll on no-context variant: %v", err)
	}

	// Two-process preemption storm: same invariant as the full variant.
	for seed := uint64(1); seed <= 8; seed++ {
		m := Machine(method)
		if !m.Engine.Config().NoRegContexts {
			t.Fatal("ConfigFor did not apply the engine tweak")
		}
		type job struct {
			h          *Handle
			srcF, dstF phys.Addr
		}
		var jobs []*job
		for i := 0; i < 2; i++ {
			j := &job{}
			p := m.NewProcess("p", func(c *proc.Context) error {
				for k := 0; k < 6; k++ {
					if _, err := j.h.DMA(c, srcVA, dstVA, 64); err != nil {
						return err
					}
				}
				return nil
			})
			h, err := method.Attach(m, p)
			if err != nil {
				t.Fatal(err)
			}
			j.h = h
			frames, err := m.SetupPages(p, srcVA, 1, vm.Read|vm.Write)
			if err != nil {
				t.Fatal(err)
			}
			j.srcF = frames[0]
			frames, err = m.SetupPages(p, dstVA, 1, vm.Read|vm.Write)
			if err != nil {
				t.Fatal(err)
			}
			j.dstF = frames[0]
			jobs = append(jobs, j)
		}
		if err := m.Run(proc.NewRandom(seed), 5_000_000); err != nil {
			t.Fatal(err)
		}
		for _, p := range m.Runner.Processes() {
			if p.Err() != nil {
				t.Fatalf("seed %d: %v", seed, p.Err())
			}
		}
		legal := map[[2]phys.Addr]bool{}
		for _, j := range jobs {
			legal[[2]phys.Addr{j.srcF, j.dstF}] = true
		}
		ps := phys.Addr(m.Cfg.PageSize)
		for _, tr := range m.Engine.Transfers() {
			pair := [2]phys.Addr{tr.Src &^ (ps - 1), tr.Dst &^ (ps - 1)}
			if !legal[pair] {
				t.Fatalf("seed %d: misdirected transfer %v->%v", seed, tr.Src, tr.Dst)
			}
		}
	}
}

// TestRepeatedPassingNeedsBarriers is experiment X3: on a weakly
// ordered machine (loads bypass posted stores), the 5-access sequence
// without barriers never reaches the engine in order; with barriers it
// works.
func TestRepeatedPassingNeedsBarriers(t *testing.T) {
	run := func(barriers bool) (uint64, error) {
		method := RepeatedPassing{Len: 5, Barriers: barriers, MaxRetries: 4}
		w := newWorld(t, method)
		w.m.WB.SetDrainOnLoadMiss(false) // aggressive write buffer
		var status uint64
		var dmaErr error
		w.body = func(c *proc.Context) error {
			status, dmaErr = w.h.DMA(c, srcVA, dstVA, 64)
			return nil
		}
		if err := w.m.Run(proc.NewRoundRobin(8), 1_000_000); err != nil {
			t.Fatal(err)
		}
		return status, dmaErr
	}
	st, err := run(false)
	if err == nil && st != dma.StatusFailure {
		t.Fatalf("barrier-less sequence succeeded on weakly ordered bus (status %#x)", st)
	}
	st, err = run(true)
	if err != nil || st == dma.StatusFailure {
		t.Fatalf("barriered sequence failed on weakly ordered bus: status=%#x err=%v", st, err)
	}
}

// TestWaitBlockingVsPolling: both waits see the transfer through, but
// the blocking wait (SysDMAWait: sleep until the completion interrupt)
// costs the waiter a single trap of CPU time, while user-level polling
// burns CPU for the whole ~2 ms transfer — the poll-vs-interrupt trade.
func TestWaitBlockingVsPolling(t *testing.T) {
	const (
		bigSrcVA = vm.VAddr(0x100000)
		bigDstVA = vm.VAddr(0x200000)
		bigSize  = 100_000 // ~2 ms at 50 MB/s
	)
	run := func(blocking bool) (waiterCPU sim.Time) {
		method := ExtShadow{}
		m := Machine(method)
		var h *Handle
		waiter := m.NewProcess("waiter", func(c *proc.Context) error {
			st, err := h.DMA(c, bigSrcVA, bigDstVA, bigSize)
			if err != nil {
				return err
			}
			if st == dma.StatusFailure {
				return ErrRetriesExhausted
			}
			if blocking {
				return h.WaitBlocking(c)
			}
			return h.Wait(c, 1_000_000)
		})
		var err error
		if h, err = method.Attach(m, waiter); err != nil {
			t.Fatal(err)
		}
		if _, err := m.SetupPages(waiter, bigSrcVA, 13, vm.Read|vm.Write); err != nil {
			t.Fatal(err)
		}
		if _, err := m.SetupPages(waiter, bigDstVA, 13, vm.Read|vm.Write); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(proc.NewRoundRobin(4), 10_000_000); err != nil {
			t.Fatal(err)
		}
		if waiter.Err() != nil {
			t.Fatalf("blocking=%v: %v", blocking, waiter.Err())
		}
		if m.Clock.Now() < 2*sim.Millisecond {
			t.Fatalf("blocking=%v: finished at %v, before the transfer could complete",
				blocking, m.Clock.Now())
		}
		return waiter.CPUTime()
	}
	polling := run(false)
	sleeping := run(true)
	if sleeping*10 > polling {
		t.Fatalf("blocking wait cost %v CPU vs polling %v — expected >=10x saving",
			sleeping, polling)
	}
}

// TestInitiationContendsWithDMATraffic: while the engine streams a
// large transfer, a new initiation pays bus contention (cycle
// stealing) — the real-machine effect the paper's board exhibited.
func TestInitiationContendsWithDMATraffic(t *testing.T) {
	w := newWorld(t, ExtShadow{})
	w.m.Mem.Fill(w.srcFrame, 4096, 1)
	var quiet, contended sim.Time
	w.run(t, func(c *proc.Context) error {
		// Quiet baseline (zero-length: no transfer started).
		if _, err := w.h.DMA(c, srcVA, dstVA, 0); err != nil { // warm TLB
			return err
		}
		start := w.m.Clock.Now()
		if _, err := w.h.DMA(c, srcVA+16, dstVA+16, 0); err != nil {
			return err
		}
		quiet = w.m.Clock.Now() - start
		// Start a long transfer (4 KiB ≈ 82 µs at 50 MB/s), then
		// initiate again while it streams.
		if _, err := w.h.DMA(c, srcVA, dstVA, 4096); err != nil {
			return err
		}
		c.Spin(1000) // ~6.7 µs: well inside the transfer window
		start = w.m.Clock.Now()
		if _, err := w.h.DMA(c, srcVA+32, dstVA+32, 0); err != nil {
			return err
		}
		contended = w.m.Clock.Now() - start
		return nil
	})
	if contended <= quiet {
		t.Fatalf("no contention: quiet %v, during transfer %v", quiet, contended)
	}
	if contended > 3*quiet {
		t.Fatalf("contention model too aggressive: %v vs %v", contended, quiet)
	}
	if w.m.Bus.Stats().StolenCycles == 0 {
		t.Fatal("stolen cycles not counted")
	}
}

// TestKeyGuessing: a forger hammering a context with random keys never
// lands an argument (the §3.1 "easier to guess a UNIX password" claim).
func TestKeyGuessing(t *testing.T) {
	w := newWorld(t, KeyBased{})
	rng := sim.NewRand(99)
	const tries = 2000
	w.run(t, func(c *proc.Context) error {
		for i := 0; i < tries; i++ {
			forged := dma.PackKey(rng.Uint64()>>dma.KeyShift, w.h.Context())
			if forged == dma.PackKey(w.h.Key(), w.h.Context()) {
				continue // astronomically unlikely; skip if the RNG gods laugh
			}
			// Vary the target address so the write buffer cannot merge
			// tries; every forgery must reach the engine's key check.
			off := vm.VAddr((i % 1000) * 8)
			if err := c.Store(shadow(dstVA+off), phys.Size64, forged); err != nil {
				return err
			}
		}
		if err := c.MB(); err != nil { // push the last batch out
			return err
		}
		// After the storm, the context must hold no arguments: a size
		// store + status load must refuse to start anything.
		if err := c.Store(w.ctxPageVA(), phys.Size64, 64); err != nil {
			return err
		}
		if err := c.MB(); err != nil {
			return err
		}
		st, err := c.Load(w.ctxPageVA(), phys.Size64)
		if err != nil {
			return err
		}
		if st != dma.StatusFailure {
			t.Errorf("forged keys armed the context (status %#x)", st)
		}
		return nil
	})
	if got := w.m.Engine.Stats().KeyMismatches; got != tries {
		t.Fatalf("key mismatches = %d, want %d", got, tries)
	}
	if w.m.Engine.Stats().Started != 0 {
		t.Fatal("a forged key started a transfer")
	}
}

// ctxPageVA exposes the kernel's context-page mapping for tests.
func (w *world) ctxPageVA() vm.VAddr { return 0xC000_0000 }
