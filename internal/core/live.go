package userdma

// The live observation half of the paging harness: the same
// measurement as PagingBench, with a per-transfer live feed read off
// the obs plane's watch handles (obs.Registry.Watch) from INSIDE the
// running world.
//
// The feed is the steered experiment loop's window into a cell while
// it runs: each completed transfer hands the observer a LiveSample —
// the simulated instant, transfers done, and the fault/eviction
// counters so far — read through registration closures, never through
// simulated bus traffic. That makes the feed free by construction:
// 0 simulated picoseconds and 0 marginal allocations, pinned by
// TestLiveFeedZeroDelta (byte-identical PagingResult and world
// fingerprint with and without an observer attached) and
// TestLiveWatchZeroAllocs.
//
// The observer's return value is the early-abort hook: false stops the
// stream after the current transfer, which is how a steered driver can
// cut a cell that live data already shows dominated instead of paying
// for the rest of the measurement.

import (
	"fmt"

	"uldma/internal/dma"
	"uldma/internal/machine"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/stats"
	"uldma/internal/vm"
)

// LiveSample is one mid-run reading of a paging world, taken after a
// transfer completes.
type LiveSample struct {
	At        sim.Time // simulated instant of the reading
	Done      int      // transfers completed so far
	Faults    uint64   // dma.va_faults so far
	Evictions uint64   // kernel.pager_evictions so far
}

// PagingBenchLive is PagingBench with a live feed: after every
// completed transfer the harness reads the fault and eviction watch
// cells and hands the observer a LiveSample. Returning false aborts
// the remaining transfers (the result's Completed then counts what
// actually ran and the scores cover only that). A nil observer — or
// one that never vetoes — leaves the measurement byte-identical to
// PagingBench, fingerprint included: watch reads are closure calls
// into live component state, not simulated activity.
func PagingBenchLive(policy dma.RecoveryPolicy, pages, budget, transfers int, observe func(LiveSample) bool) (PagingResult, error) {
	method := ExtShadow{}
	cfg := VAConfigFor(method, 0)
	m, err := machine.New(cfg)
	if err != nil {
		return PagingResult{}, err
	}
	m.Engine.SetRecoveryPolicy(policy)
	if err := m.Kernel.EnablePager(budget, pagingPageIn); err != nil {
		return PagingResult{}, err
	}
	res := PagingResult{
		Policy:    policy.String(),
		Pages:     pages,
		Budget:    budget,
		Oversub:   float64(pages+1) / float64(budget),
		Transfers: transfers,
	}
	wFaults, ok := m.Obs.Watch("dma.va_faults")
	if !ok {
		return res, fmt.Errorf("userdma: dma.va_faults not registered")
	}
	wEvict, ok := m.Obs.Watch("kernel.pager_evictions")
	if !ok {
		return res, fmt.Errorf("userdma: kernel.pager_evictions not registered")
	}

	ps := vm.VAddr(cfg.PageSize)
	const srcBase, dstBase = vm.VAddr(0x100000), vm.VAddr(0x80000)
	var h *Handle
	var sample stats.Sample
	var elapsed sim.Time
	completed := 0
	p := m.NewProcess("paging", func(c *proc.Context) error {
		t0 := m.Clock.Now()
		for i := 0; i < transfers; i++ {
			src := srcBase + vm.VAddr(i%pages)*ps
			start := m.Clock.Now()
			st, err := h.DMA(c, src, dstBase, uint64(cfg.PageSize))
			if err != nil {
				return err
			}
			if st == dma.StatusFailure {
				return fmt.Errorf("userdma: transfer %d refused", i)
			}
			if err := h.Wait(c, 1<<20); err != nil {
				return err
			}
			sample.Add(m.Clock.Now() - start)
			completed = i + 1
			if observe != nil {
				res.LiveSamples++
				if !observe(LiveSample{
					At: m.Clock.Now(), Done: completed,
					Faults: wFaults.Value(), Evictions: wEvict.Value(),
				}) {
					break
				}
			}
		}
		elapsed = m.Clock.Now() - t0
		return nil
	})
	h, err = method.Attach(m, p)
	if err != nil {
		return res, err
	}
	// Setup registers every device page with the pager; the ones past
	// the budget are registered non-resident and page in on first use.
	if _, err := SetupVAPages(m, p, h.Context(), srcBase, pages, vm.Read|vm.Write); err != nil {
		return res, err
	}
	if _, err := SetupVAPages(m, p, h.Context(), dstBase, 1, vm.Read|vm.Write); err != nil {
		return res, err
	}
	if err := m.Run(proc.NewRoundRobin(1<<20), 1<<32); err != nil {
		return res, err
	}
	if p.Err() != nil {
		return res, p.Err()
	}
	m.Settle()

	res.Completed = completed
	moved := float64(completed) * float64(cfg.PageSize)
	if elapsed > 0 {
		res.GoodputMBps = moved * float64(sim.Second) / float64(elapsed) / 1e6
	}
	res.P50, res.P99 = sample.Percentile(50), sample.Percentile(99)
	get := func(name string) uint64 {
		v, _ := m.Obs.Get(name)
		return v
	}
	res.Faults = get("dma.va_faults")
	res.Stalls = get("dma.va_stalls")
	res.Bounced = get("dma.va_bounced")
	res.Pins = get("dma.va_pins")
	res.Evictions = get("kernel.pager_evictions")
	res.PageIns = get("kernel.pager_page_ins")
	res.Elapsed = elapsed
	res.Fingerprint = fingerprintDigest(m.Fingerprint())
	return res, nil
}
