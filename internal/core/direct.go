package userdma

// Direct execution: run a method's initiation sequence on a machine's
// bare CPU, outside the process scheduler. proc.Context couples every
// instruction to a scheduler slot grant (Context.begin blocks on the
// runner's slot channel), which is right for multiprogrammed guest
// code but impossible inside a discrete-event handler — a shard-hosted
// machine fires RPC events from the cluster's event loop, where no
// guest goroutine exists to park. DirectCPU is the same instruction
// stream without the slot protocol: the CPU still pays translation,
// TLB misses, write-buffer drains and bus transactions on the shared
// clock, so Table-1 costs are preserved instruction for instruction.
//
// The trade is preemption: a direct sequence is atomic with respect to
// other guest code (there is none in a hosted world — each node runs
// one library). The attack studies, which are ABOUT preemption, keep
// using the scheduler path.

import (
	"fmt"

	"uldma/internal/cpu"
	"uldma/internal/dma"
	"uldma/internal/isa"
	"uldma/internal/kernel"
	"uldma/internal/machine"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/vm"
)

// DirectCPU is an isa.Executor over a machine's CPU on behalf of one
// process's address space, with no scheduler in the loop.
type DirectCPU struct {
	M *machine.Machine
	P *proc.Process
}

// Load implements isa.Executor.
func (d *DirectCPU) Load(va vm.VAddr, size phys.AccessSize) (uint64, error) {
	return d.M.CPU.Load(d.P.AddressSpace(), va, size)
}

// Store implements isa.Executor.
func (d *DirectCPU) Store(va vm.VAddr, size phys.AccessSize, val uint64) error {
	return d.M.CPU.Store(d.P.AddressSpace(), va, size, val)
}

// MB implements isa.Executor.
func (d *DirectCPU) MB() error { return d.M.CPU.MB() }

// Swap implements isa.Executor.
func (d *DirectCPU) Swap(va vm.VAddr, size phys.AccessSize, val uint64) (uint64, error) {
	return d.M.CPU.Swap(d.P.AddressSpace(), va, size, val)
}

// Syscall traps into the kernel with the same mode dance as
// proc.Context.Syscall: the handler runs in kernel mode,
// uninterruptible, charging entry/exit on the shared clock.
func (d *DirectCPU) Syscall(num int, args ...uint64) (uint64, error) {
	c := d.M.CPU
	prev := c.Mode()
	c.SetMode(cpu.Kernel)
	v, err := d.M.Kernel.Syscall(d.P, num, args)
	c.SetMode(prev)
	return v, err
}

// DirectDMA initiates a transfer by running the method's real
// instruction sequence (or kernel trap) on the bare CPU — the hosted-
// cluster analogue of DMA. Retry semantics match the scheduler path:
// repeated passing re-runs its Figure 7 attempt on DMA_FAILURE (and,
// strictly, on ACCEPTED); single-attempt methods return their status
// word as-is.
func (h *Handle) DirectDMA(d *DirectCPU, src, dst vm.VAddr, size uint64) (uint64, error) {
	if h.compile == nil {
		if _, ok := h.method.(KernelLevel); ok {
			return d.Syscall(kernel.SysDMA, uint64(src), uint64(dst), size)
		}
		return dma.StatusFailure, fmt.Errorf("userdma: %s cannot initiate outside a scheduler context", h.method.Name())
	}
	prog := h.compile(src, dst, size)
	if r, ok := h.method.(RepeatedPassing); ok {
		retries := r.MaxRetries
		if retries <= 0 {
			retries = 64
		}
		for attempt := 0; attempt < retries; attempt++ {
			status, err := runCheckedProgram(d, prog)
			if err != nil {
				return dma.StatusFailure, err
			}
			if status == dma.StatusFailure {
				continue
			}
			if status == dma.StatusAccepted && !r.LooseStatus {
				continue
			}
			return status, nil
		}
		return dma.StatusFailure, ErrRetriesExhausted
	}
	v, ok, err := isa.RunLast(d, prog)
	if err != nil {
		return dma.StatusFailure, err
	}
	if !ok {
		return dma.StatusFailure, fmt.Errorf("userdma: sequence produced no status")
	}
	return v, nil
}
