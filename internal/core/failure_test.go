package userdma

import (
	"errors"
	"testing"

	"uldma/internal/dma"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/vm"
)

// TestKeyedNeedsWritableSource verifies the limitation §3.1 calls out:
// "both address arguments are passed using store instructions ... only
// processes that have both read and write access to the source address
// will be able to do user-level DMA operations from it". A read-only
// source faults the keyed sequence, while extended shadow addressing
// (which passes the source with a LOAD) works fine.
func TestKeyedNeedsWritableSource(t *testing.T) {
	build := func(method Method) (*world, *vm.Fault, uint64) {
		w := &world{m: Machine(method)}
		w.p = w.m.NewProcess("user", func(c *proc.Context) error { return w.body(c) })
		h, err := method.Attach(w.m, w.p)
		if err != nil {
			t.Fatal(err)
		}
		w.h = h
		// Read-only source page, writable destination page.
		frames, err := w.m.SetupPages(w.p, srcVA, 1, vm.Read)
		if err != nil {
			t.Fatal(err)
		}
		w.srcFrame = frames[0]
		frames, err = w.m.SetupPages(w.p, dstVA, 1, vm.Read|vm.Write)
		if err != nil {
			t.Fatal(err)
		}
		w.dstFrame = frames[0]
		var fault *vm.Fault
		var status uint64
		w.body = func(c *proc.Context) error {
			st, err := w.h.DMA(c, srcVA, dstVA, 64)
			status = st
			if err != nil {
				errors.As(err, &fault)
			}
			return nil
		}
		if err := w.m.Run(proc.NewRoundRobin(8), 100_000); err != nil {
			t.Fatal(err)
		}
		return w, fault, status
	}

	// Keyed: the source-passing STORE needs write rights — fault.
	_, fault, _ := build(KeyBased{})
	if fault == nil || fault.Kind != vm.FaultProtection {
		t.Fatalf("keyed DMA from read-only source: fault=%v", fault)
	}

	// Extended shadow: the source-passing LOAD needs only read — works.
	w, fault, status := build(ExtShadow{})
	if fault != nil {
		t.Fatalf("ext-shadow DMA from read-only source faulted: %v", fault)
	}
	if status == dma.StatusFailure {
		t.Fatal("ext-shadow DMA from read-only source refused")
	}
	if w.m.Engine.Stats().Started != 1 {
		t.Fatal("transfer did not start")
	}
}

// TestUnmappedShadowFaults: using a method without the setup-time
// shadow mapping faults at the TLB, never reaching the engine.
func TestUnmappedShadowFaults(t *testing.T) {
	method := ExtShadow{}
	m := Machine(method)
	var gotErr error
	p := m.NewProcess("user", func(c *proc.Context) error {
		_, gotErr = unmappedTestHandle.DMA(c, srcVA, dstVA, 64)
		return nil
	})
	var err error
	if unmappedTestHandle, err = method.Attach(m, p); err != nil {
		t.Fatal(err)
	}
	// Data pages exist, but NO MapShadow was done.
	if _, err := m.Kernel.AllocPage(p.AddressSpace(), srcVA, vm.Read|vm.Write); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Kernel.AllocPage(p.AddressSpace(), dstVA, vm.Read|vm.Write); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(proc.NewRoundRobin(8), 100_000); err != nil {
		t.Fatal(err)
	}
	var fault *vm.Fault
	if !errors.As(gotErr, &fault) || fault.Kind != vm.FaultUnmapped {
		t.Fatalf("DMA without shadow mapping: %v", gotErr)
	}
	if m.Engine.Stats().Started != 0 {
		t.Fatal("engine started a transfer without shadow mappings")
	}
}

// unmappedTestHandle is shared by TestUnmappedShadowFaults' closure
// (assigned before Run grants the first slot).
var unmappedTestHandle *Handle

// TestOversizedTransferRefused: the engine validates the transfer range
// against physical memory; a huge size is refused with StatusFailure,
// not a crash.
func TestOversizedTransferRefused(t *testing.T) {
	for _, method := range []Method{ExtShadow{}, KeyBased{}} {
		w := newWorld(t, method)
		var status uint64
		w.run(t, func(c *proc.Context) error {
			st, err := w.h.DMA(c, srcVA, dstVA, 1<<40)
			status = st
			return err
		})
		if status != dma.StatusFailure {
			t.Fatalf("%s: oversized transfer accepted (%#x)", method.Name(), status)
		}
		if w.m.Engine.Stats().Started != 0 {
			t.Fatalf("%s: engine started an oversized transfer", method.Name())
		}
		if w.m.Engine.Stats().Rejected == 0 {
			t.Fatalf("%s: rejection not counted", method.Name())
		}
	}
}

// TestKernelDMAOversized: the kernel path catches the same problem even
// earlier, at check_size, and surfaces a fault.
func TestKernelDMAOversized(t *testing.T) {
	w := newWorld(t, KernelLevel{})
	var gotErr error
	var status uint64
	w.run(t, func(c *proc.Context) error {
		status, gotErr = w.h.DMA(c, srcVA, dstVA, 1<<30)
		return nil
	})
	var fault *vm.Fault
	if !errors.As(gotErr, &fault) || status != dma.StatusFailure {
		t.Fatalf("kernel oversized DMA: err=%v status=%#x", gotErr, status)
	}
}

// TestWaitSurfacesRefusal: Wait on a context whose initiation was
// refused reports the failure instead of spinning forever.
func TestWaitSurfacesRefusal(t *testing.T) {
	w := newWorld(t, KeyBased{})
	w.run(t, func(c *proc.Context) error {
		// Refused initiation (oversized), then Wait must not hang: the
		// context has no transfer, so Poll reports failure.
		st, err := w.h.DMA(c, srcVA, dstVA, 1<<40)
		if err != nil {
			return err
		}
		if st != dma.StatusFailure {
			t.Error("oversized accepted")
		}
		if err := w.h.Wait(c, 10); err == nil {
			t.Error("Wait after refusal returned success")
		}
		return nil
	})
}

// TestRetriesExhaustedSurfaces: a repeated-passing victim under a
// permanently hostile scripted scheduler gives up with
// ErrRetriesExhausted instead of spinning forever.
func TestRetriesExhaustedSurfaces(t *testing.T) {
	method := RepeatedPassing{Len: 5, Barriers: true, MaxRetries: 3}
	m := Machine(method)
	type job struct{ h *Handle }
	victim := &job{}
	vp := m.NewProcess("victim", func(c *proc.Context) error {
		_, err := victim.h.DMA(c, srcVA, dstVA, 64)
		if !errors.Is(err, ErrRetriesExhausted) {
			t.Errorf("victim error = %v, want retries exhausted", err)
		}
		return nil
	})
	hostile := m.NewProcess("hostile", func(c *proc.Context) error {
		for i := 0; i < 200; i++ {
			c.Store(shadow(srcVA), phys.Size64, 1) // constant FSM pollution
			c.MB()
		}
		return nil
	})
	var err error
	if victim.h, err = method.Attach(m, vp); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SetupPages(vp, srcVA, 1, vm.Read|vm.Write); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SetupPages(vp, dstVA, 1, vm.Read|vm.Write); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SetupPages(hostile, srcVA, 1, vm.Read|vm.Write); err != nil {
		t.Fatal(err)
	}
	// Strict alternation: every victim access is followed by pollution.
	if err := m.Run(proc.NewRoundRobin(1), 10_000); err != nil {
		t.Fatal(err)
	}
	if vp.Err() != nil {
		t.Fatal(vp.Err())
	}
}
