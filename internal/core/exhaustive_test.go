package userdma

import (
	"fmt"
	"testing"

	"uldma/internal/dma"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/vm"
)

// This file verifies the paper's atomicity claims by EXHAUSTIVE
// interleaving enumeration (bounded model checking via proc.Explore),
// not sampling:
//
//   - §3.1 (key-based) and §3.2 (extended shadow): two processes
//     initiating concurrently succeed under EVERY schedule, wait-free —
//     their register contexts make interleaving harmless.
//   - §2.5 (SHRIMP-2 without the kernel hook): the explorer FINDS the
//     misdirection counterexample, demonstrating both the race and the
//     explorer's power.

// twoDMAFactory builds a world with two processes, each performing one
// DMA between its own pages, and a Check that asserts every transfer the
// engine started matches a legal (src, dst) pair and that the statuses
// meet wantSuccess.
func twoDMAFactory(t *testing.T, method Method, wantSuccess bool) proc.WorldFactory {
	t.Helper()
	return func() (*proc.World, error) {
		m := Machine(method)
		type job struct {
			h      *Handle
			srcF   phys.Addr
			dstF   phys.Addr
			status uint64
			err    error
		}
		jobs := make([]*job, 2)
		for i := 0; i < 2; i++ {
			j := &job{}
			jobs[i] = j
			p := m.NewProcess(fmt.Sprintf("p%d", i), func(c *proc.Context) error {
				j.status, j.err = j.h.DMA(c, srcVA, dstVA, 64)
				return nil
			})
			h, err := method.Attach(m, p)
			if err != nil {
				return nil, err
			}
			j.h = h
			frames, err := m.SetupPages(p, srcVA, 1, vm.Read|vm.Write)
			if err != nil {
				return nil, err
			}
			j.srcF = frames[0]
			frames, err = m.SetupPages(p, dstVA, 1, vm.Read|vm.Write)
			if err != nil {
				return nil, err
			}
			j.dstF = frames[0]
		}
		check := func() error {
			legal := map[[2]phys.Addr]bool{}
			for _, j := range jobs {
				legal[[2]phys.Addr{j.srcF, j.dstF}] = true
			}
			ps := phys.Addr(m.Cfg.PageSize)
			for _, tr := range m.Engine.Transfers() {
				pair := [2]phys.Addr{tr.Src &^ (ps - 1), tr.Dst &^ (ps - 1)}
				if !legal[pair] {
					return fmt.Errorf("misdirected transfer %v->%v", tr.Src, tr.Dst)
				}
			}
			if wantSuccess {
				for i, j := range jobs {
					if j.err != nil {
						return fmt.Errorf("p%d error: %w", i, j.err)
					}
					if j.status == dma.StatusFailure {
						return fmt.Errorf("p%d initiation refused", i)
					}
				}
				if len(m.Engine.Transfers()) != 2 {
					return fmt.Errorf("%d transfers started, want 2", len(m.Engine.Transfers()))
				}
			}
			return nil
		}
		return &proc.World{Runner: m.Runner, Check: check}, nil
	}
}

// TestKeyedExhaustivelyAtomic: the keyed sequence is 4 accesses + 1
// barrier = 5 slots per process (plus a completion grant each). Every
// interleaving of the two initiations must succeed with both transfers
// intact — no retries, no kernel hook.
func TestKeyedExhaustivelyAtomic(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration skipped in -short mode")
	}
	res, err := proc.Explore(twoDMAFactory(t, KeyBased{}, true), 12, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample != nil {
		t.Fatalf("schedule %v broke the keyed method: %v",
			res.Counterexample, res.CounterexampleErr)
	}
	if res.Schedules < 900 { // C(12,6) = 924 full-depth merges
		t.Fatalf("only %d schedules explored", res.Schedules)
	}
	t.Logf("keyed: %d schedules, all atomic", res.Schedules)
}

// TestExtShadowExhaustivelyAtomic: 2 accesses + completion = 3 slots per
// process; C(6,3) = 20 merges, every one must succeed.
func TestExtShadowExhaustivelyAtomic(t *testing.T) {
	res, err := proc.Explore(twoDMAFactory(t, ExtShadow{}, true), 6, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample != nil {
		t.Fatalf("schedule %v broke extended shadow addressing: %v",
			res.Counterexample, res.CounterexampleErr)
	}
	if res.Schedules != 20 {
		t.Fatalf("schedules = %d, want C(6,3)=20", res.Schedules)
	}
}

// TestPALExhaustivelyAtomic: the PAL call is a single uninterruptible
// slot; 2 processes × (1 call + completion) = C(4,2) = 6 merges.
func TestPALExhaustivelyAtomic(t *testing.T) {
	res, err := proc.Explore(twoDMAFactory(t, PALCode{}, true), 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample != nil {
		t.Fatalf("schedule %v broke the PAL method: %v",
			res.Counterexample, res.CounterexampleErr)
	}
	if res.Schedules != 6 {
		t.Fatalf("schedules = %d, want C(4,2)=6", res.Schedules)
	}
}

// TestSHRIMP2CounterexampleFound: without the kernel hook, some
// interleaving misdirects a transfer — the explorer must find it. (One
// attempt, no retry: MaxRetries 1.)
func TestSHRIMP2CounterexampleFound(t *testing.T) {
	method := SHRIMP2{WithKernelMod: false, MaxRetries: 1}
	res, err := proc.Explore(twoDMAFactory(t, method, false), 6, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample == nil {
		t.Fatalf("no misdirection found in %d schedules — the §2.5 race should exist", res.Schedules)
	}
	t.Logf("SHRIMP-2 race found at schedule %v: %v", res.Counterexample, res.CounterexampleErr)
}

// TestSHRIMP2WithHookExhaustivelySafe: with the kernel modification, no
// interleaving misdirects (initiations may fail and would be retried,
// so wantSuccess is false — safety only).
func TestSHRIMP2WithHookExhaustivelySafe(t *testing.T) {
	method := SHRIMP2{WithKernelMod: true, MaxRetries: 4}
	res, err := proc.Explore(twoDMAFactory(t, method, false), 8, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample != nil {
		t.Fatalf("schedule %v misdirected despite the kernel hook: %v",
			res.Counterexample, res.CounterexampleErr)
	}
	t.Logf("SHRIMP-2 with hook: %d schedules, all safe", res.Schedules)
}
