package userdma

import (
	"strings"
	"testing"

	"uldma/internal/dma"
	"uldma/internal/machine"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/vm"
)

const cellVA = vm.VAddr(0x50000)

// atomicWorld: one machine, shared page mapped rw into every process,
// atomic aliases installed per process.
func atomicWorld(t *testing.T, nProcs int, bodies func(i int) proc.Body) (*machine.Machine, phys.Addr) {
	t.Helper()
	m := machine.MustNew(machine.Alpha3000TC(dma.ModeExtended, 0))
	var frame phys.Addr
	for i := 0; i < nProcs; i++ {
		p := m.NewProcess("p", bodies(i))
		if i == 0 {
			f, err := m.Kernel.AllocPage(p.AddressSpace(), cellVA, vm.Read|vm.Write)
			if err != nil {
				t.Fatal(err)
			}
			frame = f
		} else if err := m.Kernel.MapFrame(p.AddressSpace(), cellVA, frame, vm.Read|vm.Write); err != nil {
			t.Fatal(err)
		}
		if err := SetupAtomics(m, p, cellVA); err != nil {
			t.Fatal(err)
		}
	}
	return m, frame
}

func TestFetchAdd(t *testing.T) {
	var old1, old2 uint64
	m, frame := atomicWorld(t, 1, func(int) proc.Body {
		return func(c *proc.Context) error {
			var err error
			if old1, err = FetchAdd(c, cellVA, 5); err != nil {
				return err
			}
			old2, err = FetchAdd(c, cellVA+8, 1) // second cell on same page
			return err
		}
	})
	if err := m.Run(proc.NewRoundRobin(4), 1000); err != nil {
		t.Fatal(err)
	}
	if old1 != 0 || old2 != 0 {
		t.Fatalf("old values = %d, %d", old1, old2)
	}
	if v, _ := m.Mem.Read(frame, phys.Size64); v != 5 {
		t.Fatalf("cell = %d", v)
	}
	if v, _ := m.Mem.Read(frame+8, phys.Size64); v != 1 {
		t.Fatalf("cell 2 = %d", v)
	}
}

func TestFetchStoreAndCAS(t *testing.T) {
	m, frame := atomicWorld(t, 1, func(int) proc.Body {
		return func(c *proc.Context) error {
			if _, err := FetchStore(c, cellVA, 42); err != nil {
				return err
			}
			old, err := FetchStore(c, cellVA, 7)
			if err != nil {
				return err
			}
			if old != 42 {
				t.Errorf("FetchStore old = %d", old)
			}
			// CAS success then failure (32-bit cell at offset 16).
			if _, err := FetchStore32(c, cellVA+16, 5); err != nil {
				return err
			}
			old32, ok, err := CompareSwap(c, cellVA+16, 5, 6)
			if err != nil || !ok || old32 != 5 {
				t.Errorf("CAS success path: old=%d ok=%v err=%v", old32, ok, err)
			}
			old32, ok, err = CompareSwap(c, cellVA+16, 5, 9)
			if err != nil || ok || old32 != 6 {
				t.Errorf("CAS failure path: old=%d ok=%v err=%v", old32, ok, err)
			}
			return nil
		}
	})
	if err := m.Run(proc.NewRoundRobin(4), 1000); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Mem.Read(frame, phys.Size64); v != 7 {
		t.Fatalf("cell = %d", v)
	}
	if v, _ := m.Mem.Read(frame+16, phys.Size32); v != 6 {
		t.Fatalf("CAS cell = %d", v)
	}
}

// TestConcurrentFetchAdd: N processes, each adding 1 k times under
// random preemption; the counter must equal the exact total — the §3.5
// atomicity guarantee without a single kernel crossing.
func TestConcurrentFetchAdd(t *testing.T) {
	const procs, per = 4, 50
	m, frame := atomicWorld(t, procs, func(int) proc.Body {
		return func(c *proc.Context) error {
			for i := 0; i < per; i++ {
				if _, err := FetchAdd(c, cellVA, 1); err != nil {
					return err
				}
			}
			return nil
		}
	})
	if err := m.Run(proc.NewRandom(1234), 5_000_000); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Mem.Read(frame, phys.Size64); v != procs*per {
		t.Fatalf("counter = %d, want %d", v, procs*per)
	}
	if m.Kernel.Stats().Syscalls != 0 {
		t.Fatal("user-level atomics crossed into the kernel")
	}
}

// TestSpinLockMutualExclusion: a non-atomic critical section protected
// by the CAS spinlock stays consistent under random preemption.
func TestSpinLockMutualExclusion(t *testing.T) {
	const procs, per = 3, 20
	counterVA := cellVA + 128
	inCrit := 0
	maxInCrit := 0
	m, frame := atomicWorld(t, procs, func(int) proc.Body {
		return func(c *proc.Context) error {
			lock := &SpinLock{VA: cellVA, MaxAttempts: 1 << 20}
			for i := 0; i < per; i++ {
				if err := lock.Lock(c); err != nil {
					return err
				}
				inCrit++
				if inCrit > maxInCrit {
					maxInCrit = inCrit
				}
				// Non-atomic read-modify-write: load, spin, store.
				v, err := c.Load(counterVA, phys.Size64)
				if err != nil {
					return err
				}
				c.Spin(30)
				if err := c.Store(counterVA, phys.Size64, v+1); err != nil {
					return err
				}
				inCrit--
				if err := lock.Unlock(c); err != nil {
					return err
				}
			}
			return nil
		}
	})
	if err := m.Run(proc.NewRandom(777), 50_000_000); err != nil {
		t.Fatal(err)
	}
	for _, p := range m.Runner.Processes() {
		if p.Err() != nil {
			t.Fatal(p.Err())
		}
	}
	if maxInCrit != 1 {
		t.Fatalf("critical section held by %d processes at once", maxInCrit)
	}
	if v, _ := m.Mem.Read(frame+128, phys.Size64); v != procs*per {
		t.Fatalf("protected counter = %d, want %d", v, procs*per)
	}
}

func TestUnlockWithoutLockErrors(t *testing.T) {
	m, _ := atomicWorld(t, 1, func(int) proc.Body {
		return func(c *proc.Context) error {
			lock := &SpinLock{VA: cellVA}
			err := lock.Unlock(c)
			if err == nil || !strings.Contains(err.Error(), "unlock") {
				t.Errorf("unheld unlock: %v", err)
			}
			return nil
		}
	})
	if err := m.Run(proc.NewRoundRobin(4), 10_000); err != nil {
		t.Fatal(err)
	}
}

// TestAtomicVsKernelLatency quantifies §3.5: a user-level atomic is an
// order of magnitude cheaper than the same operation via syscall.
func TestAtomicVsKernelLatency(t *testing.T) {
	var userCost, kernelCost sim.Time
	m := machine.MustNew(machine.Alpha3000TC(dma.ModeExtended, 0))
	p := m.NewProcess("u", func(c *proc.Context) error {
		if _, err := FetchAdd(c, cellVA, 0); err != nil { // warm
			return err
		}
		start := m.Clock.Now()
		for i := 0; i < 100; i++ {
			if _, err := FetchAdd(c, cellVA, 1); err != nil {
				return err
			}
		}
		userCost = (m.Clock.Now() - start) / 100
		start = m.Clock.Now()
		for i := 0; i < 100; i++ {
			if _, err := KernelFetchAdd(c, cellVA, 1); err != nil {
				return err
			}
		}
		kernelCost = (m.Clock.Now() - start) / 100
		return nil
	})
	if _, err := m.Kernel.AllocPage(p.AddressSpace(), cellVA, vm.Read|vm.Write); err != nil {
		t.Fatal(err)
	}
	if err := SetupAtomics(m, p, cellVA); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(proc.NewRoundRobin(8), 1_000_000); err != nil {
		t.Fatal(err)
	}
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
	if kernelCost < 10*userCost {
		t.Fatalf("kernel atomic %v vs user atomic %v: expected >=10x gap", kernelCost, userCost)
	}
	t.Logf("user-level atomic %v, kernel atomic %v (%.1fx)", userCost, kernelCost,
		float64(kernelCost)/float64(userCost))
}
