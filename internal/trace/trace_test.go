package trace

import (
	"strings"
	"testing"

	userdma "uldma/internal/core"
	"uldma/internal/dma"
	"uldma/internal/obs"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/vm"
)

// TestRecordsInitiationStream attaches the recorder to a live machine
// and checks the exact bus stream an extended-shadow initiation emits.
func TestRecordsInitiationStream(t *testing.T) {
	method := userdma.ExtShadow{}
	m := userdma.Machine(method)
	rec := New(m.Clock, 64)
	rec.AnnotateEngine(m.Engine.Config())

	var h *userdma.Handle
	p := m.NewProcess("traced", func(c *proc.Context) error {
		rec.AttachBus(m.Bus) // start recording at the first instruction
		_, err := h.DMA(c, 0x10000, 0x20000, 64)
		rec.DetachBus(m.Bus)
		return err
	})
	var err error
	if h, err = method.Attach(m, p); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SetupPages(p, 0x10000, 1, vm.Read|vm.Write); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SetupPages(p, 0x20000, 1, vm.Read|vm.Write); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(proc.NewRoundRobin(8), 10_000); err != nil {
		t.Fatal(err)
	}
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
	// Figure 4 on the wire: one store then one load, both shadow.
	if got := rec.Ops(); got != "S L" {
		t.Fatalf("bus stream = %q, want \"S L\"", got)
	}
	for _, e := range rec.Events() {
		if e.Window != "shadow" {
			t.Fatalf("event outside shadow window: %v", e)
		}
	}
	if rec.Dropped() != 0 {
		t.Fatalf("dropped = %d", rec.Dropped())
	}
	out := rec.Render()
	if !strings.Contains(out, "shadow") || !strings.Contains(out, "store") {
		t.Fatalf("render output:\n%s", out)
	}
}

// TestKeyedStreamShape checks the keyed method's 4-access wire shape
// (three stores drain at the barrier, then the status load).
func TestKeyedStreamShape(t *testing.T) {
	method := userdma.KeyBased{}
	m := userdma.Machine(method)
	rec := New(m.Clock, 64)
	rec.AnnotateEngine(m.Engine.Config())

	var h *userdma.Handle
	p := m.NewProcess("traced", func(c *proc.Context) error {
		rec.AttachBus(m.Bus)
		_, err := h.DMA(c, 0x10000, 0x20000, 64)
		rec.DetachBus(m.Bus)
		return err
	})
	var err error
	if h, err = method.Attach(m, p); err != nil {
		t.Fatal(err)
	}
	m.SetupPages(p, 0x10000, 1, vm.Read|vm.Write)
	m.SetupPages(p, 0x20000, 1, vm.Read|vm.Write)
	if err := m.Run(proc.NewRoundRobin(8), 10_000); err != nil {
		t.Fatal(err)
	}
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
	if got := rec.Ops(); got != "S S S L" {
		t.Fatalf("bus stream = %q, want \"S S S L\"", got)
	}
	wins := []string{}
	for _, e := range rec.Events() {
		wins = append(wins, e.Window)
	}
	want := []string{"shadow", "shadow", "ctx", "ctx"}
	for i := range want {
		if wins[i] != want[i] {
			t.Fatalf("windows = %v, want %v", wins, want)
		}
	}
}

func TestRecorderBoundsAndReset(t *testing.T) {
	clock := sim.NewClock()
	rec := New(clock, 2)
	for i := 0; i < 5; i++ {
		clock.Advance(sim.Nanosecond)
		rec.record("store", 0x1000, 8, uint64(i))
	}
	if len(rec.Events()) != 2 || rec.Dropped() != 3 {
		t.Fatalf("events=%d dropped=%d", len(rec.Events()), rec.Dropped())
	}
	if !strings.Contains(rec.Render(), "3 further events dropped") {
		t.Fatal("drop notice missing")
	}
	rec.Reset()
	if len(rec.Events()) != 0 || rec.Dropped() != 0 {
		t.Fatal("Reset incomplete")
	}
	if New(clock, 0) == nil {
		t.Fatal("default capacity")
	}
}

func TestOpsEncoding(t *testing.T) {
	clock := sim.NewClock()
	rec := New(clock, 16)
	rec.record("store", 0, 8, 0)
	rec.record("load", 0, 8, 0)
	rec.record("rmw", 0, 8, 0)
	rec.record("weird", 0, 8, 0)
	if got := rec.Ops(); got != "S L X ?" {
		t.Fatalf("Ops = %q", got)
	}
	ev := rec.Events()[0]
	if !strings.Contains(ev.String(), "store") || !strings.Contains(ev.String(), "-") {
		t.Fatalf("event string = %q", ev.String())
	}
}

func TestWindowOfNames(t *testing.T) {
	cfg := userdma.ConfigFor(userdma.KeyBased{}).Engine
	if cfg.WindowOf(cfg.ShadowBase+8) != "shadow" {
		t.Fatal("shadow window")
	}
	if cfg.WindowOf(cfg.CtxPage(1)) != "ctx" {
		t.Fatal("ctx window")
	}
	if cfg.WindowOf(cfg.ControlBase) != "control" {
		t.Fatal("control window")
	}
	if cfg.WindowOf(cfg.AtomicShadow(0x40, dma.AtomicAdd)) != "atomic" {
		t.Fatal("atomic window")
	}
	if cfg.WindowOf(cfg.RemoteAddr(1, 0x100)) != "remote" {
		t.Fatal("remote window")
	}
	if cfg.WindowOf(0x1000) != "" {
		t.Fatal("plain memory misclassified")
	}
}

// TestRecorderObsEquivalence pins the adapter contract: the legacy
// Recorder is a view over an obs.Trace, so the access stream it reports
// must appear, event for event — same instants, same ops, same
// addresses and values — in the machine's own obs spine when both
// record the same run.
func TestRecorderObsEquivalence(t *testing.T) {
	method := userdma.ExtShadow{}
	m := userdma.Machine(method)
	spine := m.EnableTrace(4096, obs.Ring)
	rec := New(m.Clock, 64)
	rec.AnnotateEngine(m.Engine.Config())

	var h *userdma.Handle
	p := m.NewProcess("traced", func(c *proc.Context) error {
		rec.AttachBus(m.Bus)
		_, err := h.DMA(c, 0x10000, 0x20000, 64)
		rec.DetachBus(m.Bus)
		return err
	})
	var err error
	if h, err = method.Attach(m, p); err != nil {
		t.Fatal(err)
	}
	m.SetupPages(p, 0x10000, 1, vm.Read|vm.Write)
	m.SetupPages(p, 0x20000, 1, vm.Read|vm.Write)
	if err := m.Run(proc.NewRoundRobin(8), 10_000); err != nil {
		t.Fatal(err)
	}
	if p.Err() != nil {
		t.Fatal(p.Err())
	}

	legacy := rec.Events()
	if len(legacy) == 0 {
		t.Fatal("recorder saw no traffic")
	}
	// Every recorder event must match a spine CatBus event in order
	// (the spine records the whole run; the recorder a sub-interval).
	spineBus := []obs.Event{}
	for _, e := range spine.Events() {
		if e.Cat == obs.CatBus {
			spineBus = append(spineBus, e)
		}
	}
	j := 0
	for _, le := range legacy {
		found := false
		for ; j < len(spineBus); j++ {
			se := spineBus[j]
			if se.At == le.At && se.Name == le.Op &&
				se.A0 == uint64(le.Addr) && se.A1 == uint64(le.Size) && se.A2 == le.Val {
				found = true
				j++
				break
			}
		}
		if !found {
			t.Fatalf("recorder event %v has no ordered match in the obs spine", le)
		}
	}
}
