// Package trace records the bus transactions a machine performs, with
// timestamps and engine-window annotations. It is the model's logic
// analyzer: the tools use it to show exactly which uncached accesses an
// initiation sequence generates (and in which order the engine saw
// them), and tests use it to assert on access streams.
//
// Since the unified observability plane (internal/obs) arrived, the
// Recorder is a thin adapter: events are stored in an obs.Trace with
// DropNewest overflow (the recorder's historical "first N events"
// contract) and converted back to the package's Event shape — window
// annotation included — at read time. The public API, the rendered
// timeline format and the drop accounting are unchanged
// (TestRecorderObsEquivalence pins this).
package trace

import (
	"fmt"
	"strings"

	"uldma/internal/bus"
	"uldma/internal/dma"
	"uldma/internal/obs"
	"uldma/internal/phys"
	"uldma/internal/sim"
)

// Event is one recorded bus transaction.
type Event struct {
	At     sim.Time
	Op     string // "load", "store", "rmw"
	Addr   phys.Addr
	Size   phys.AccessSize
	Val    uint64 // store data / load result / rmw operand
	Window string // engine window name, "" for plain device traffic
}

// String renders one event as a timeline line.
func (e Event) String() string {
	win := e.Window
	if win == "" {
		win = "-"
	}
	return fmt.Sprintf("%-10v %-5s %-8s %v = %#x", e.At, e.Op, win, e.Addr, e.Val)
}

// Recorder captures bus traffic through bus.SetTrace. It is bounded:
// once max events are recorded, further traffic is counted but not
// stored (Dropped reports how many).
type Recorder struct {
	clock  *sim.Clock
	tr     *obs.Trace
	window func(phys.Addr) string
}

// New creates a recorder holding at most max events (max <= 0 means
// 4096). The clock provides timestamps.
func New(clock *sim.Clock, max int) *Recorder {
	return &Recorder{clock: clock, tr: obs.NewTrace(max, obs.DropNewest)}
}

// AnnotateEngine makes the recorder label addresses with the engine
// windows of cfg.
func (r *Recorder) AnnotateEngine(cfg dma.Config) {
	r.window = cfg.WindowOf
}

// AttachBus starts recording b's traffic. It replaces any previous
// trace hook on the bus; call DetachBus (or install another hook) to
// stop.
func (r *Recorder) AttachBus(b *bus.Bus) {
	b.SetTrace(func(op string, addr phys.Addr, size phys.AccessSize, val uint64) {
		r.record(op, addr, size, val)
	})
}

// DetachBus removes the recorder's hook from b.
func (r *Recorder) DetachBus(b *bus.Bus) { b.SetTrace(nil) }

func (r *Recorder) record(op string, addr phys.Addr, size phys.AccessSize, val uint64) {
	// op is one of the bus's static hook strings; storing it as the
	// event name keeps the hot path formatting-free.
	r.tr.Instant(r.clock.Now(), obs.CatBus, op, 0, -1, uint64(addr), uint64(size), val)
}

// Events returns the recorded events in order. Window annotation is
// applied at read time (the stored stream carries raw addresses).
func (r *Recorder) Events() []Event {
	raw := r.tr.Events()
	out := make([]Event, len(raw))
	for i, e := range raw {
		ev := Event{
			At:   e.At,
			Op:   e.Name,
			Addr: phys.Addr(e.A0),
			Size: phys.AccessSize(e.A1),
			Val:  e.A2,
		}
		if r.window != nil {
			ev.Window = r.window(ev.Addr)
		}
		out[i] = ev
	}
	return out
}

// Dropped reports how many events did not fit.
func (r *Recorder) Dropped() int { return int(r.tr.Dropped()) }

// Reset clears the recording.
func (r *Recorder) Reset() { r.tr.Reset() }

// Ops returns the op sequence as a compact string like "S S L" —
// convenient for protocol assertions in tests.
func (r *Recorder) Ops() string {
	var b strings.Builder
	for i, e := range r.tr.Events() {
		if i > 0 {
			b.WriteByte(' ')
		}
		switch e.Name {
		case "store":
			b.WriteByte('S')
		case "load":
			b.WriteByte('L')
		case "rmw":
			b.WriteByte('X')
		default:
			b.WriteByte('?')
		}
	}
	return b.String()
}

// Render formats the whole timeline, one event per line.
func (r *Recorder) Render() string {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	if d := r.tr.Dropped(); d > 0 {
		fmt.Fprintf(&b, "... %d further events dropped (recorder full)\n", d)
	}
	return b.String()
}
