// Package trace records the bus transactions a machine performs, with
// timestamps and engine-window annotations. It is the model's logic
// analyzer: the tools use it to show exactly which uncached accesses an
// initiation sequence generates (and in which order the engine saw
// them), and tests use it to assert on access streams.
package trace

import (
	"fmt"
	"strings"

	"uldma/internal/bus"
	"uldma/internal/dma"
	"uldma/internal/phys"
	"uldma/internal/sim"
)

// Event is one recorded bus transaction.
type Event struct {
	At     sim.Time
	Op     string // "load", "store", "rmw"
	Addr   phys.Addr
	Size   phys.AccessSize
	Val    uint64 // store data / load result / rmw operand
	Window string // engine window name, "" for plain device traffic
}

// String renders one event as a timeline line.
func (e Event) String() string {
	win := e.Window
	if win == "" {
		win = "-"
	}
	return fmt.Sprintf("%-10v %-5s %-8s %v = %#x", e.At, e.Op, win, e.Addr, e.Val)
}

// Recorder captures bus traffic through bus.SetTrace. It is bounded:
// once max events are recorded, further traffic is counted but not
// stored (Dropped reports how many).
type Recorder struct {
	clock   *sim.Clock
	max     int
	events  []Event
	dropped int
	window  func(phys.Addr) string
}

// New creates a recorder holding at most max events (max <= 0 means
// 4096). The clock provides timestamps.
func New(clock *sim.Clock, max int) *Recorder {
	if max <= 0 {
		max = 4096
	}
	return &Recorder{clock: clock, max: max}
}

// AnnotateEngine makes the recorder label addresses with the engine
// windows of cfg.
func (r *Recorder) AnnotateEngine(cfg dma.Config) {
	r.window = cfg.WindowOf
}

// AttachBus starts recording b's traffic. It replaces any previous
// trace hook on the bus; call DetachBus (or install another hook) to
// stop.
func (r *Recorder) AttachBus(b *bus.Bus) {
	b.SetTrace(func(op string, addr phys.Addr, size phys.AccessSize, val uint64) {
		r.record(op, addr, size, val)
	})
}

// DetachBus removes the recorder's hook from b.
func (r *Recorder) DetachBus(b *bus.Bus) { b.SetTrace(nil) }

func (r *Recorder) record(op string, addr phys.Addr, size phys.AccessSize, val uint64) {
	if len(r.events) >= r.max {
		r.dropped++
		return
	}
	e := Event{At: r.clock.Now(), Op: op, Addr: addr, Size: size, Val: val}
	if r.window != nil {
		e.Window = r.window(addr)
	}
	r.events = append(r.events, e)
}

// Events returns the recorded events in order.
func (r *Recorder) Events() []Event { return r.events }

// Dropped reports how many events did not fit.
func (r *Recorder) Dropped() int { return r.dropped }

// Reset clears the recording.
func (r *Recorder) Reset() {
	r.events = r.events[:0]
	r.dropped = 0
}

// Ops returns the op sequence as a compact string like "S S L" —
// convenient for protocol assertions in tests.
func (r *Recorder) Ops() string {
	var b strings.Builder
	for i, e := range r.events {
		if i > 0 {
			b.WriteByte(' ')
		}
		switch e.Op {
		case "store":
			b.WriteByte('S')
		case "load":
			b.WriteByte('L')
		case "rmw":
			b.WriteByte('X')
		default:
			b.WriteByte('?')
		}
	}
	return b.String()
}

// Render formats the whole timeline, one event per line.
func (r *Recorder) Render() string {
	var b strings.Builder
	for _, e := range r.events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	if r.dropped > 0 {
		fmt.Fprintf(&b, "... %d further events dropped (recorder full)\n", r.dropped)
	}
	return b.String()
}
