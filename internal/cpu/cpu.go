// Package cpu models the host processor: instruction issue, address
// translation through the TLB, the split between cached main-memory
// accesses and uncached device accesses (which go through the write
// buffer onto the I/O bus), and the privilege modes the paper's methods
// depend on (user, kernel, and the Alpha's PAL mode).
//
// The model is cost-accurate rather than functionally complete: there is
// no register file or decoder, because every experiment in the paper is
// a function of *which memory accesses a sequence performs and what each
// costs*, not of ALU behaviour. The machine preset calibrates the cost
// constants to the paper's DEC Alpha 3000/300.
package cpu

import (
	"fmt"

	"uldma/internal/bus"
	"uldma/internal/phys"
	"uldma/internal/sim"
	"uldma/internal/vm"
)

// Mode is the processor privilege mode.
type Mode uint8

// Privilege modes.
const (
	// User is unprivileged execution: virtual addressing only,
	// preemptible at every instruction boundary.
	User Mode = iota
	// Kernel is privileged execution entered through a syscall trap:
	// physical addressing allowed, not preemptible (the paper's kernel
	// DMA path runs "with interrupts disabled").
	Kernel
	// PAL is the Alpha's PALcode mode: unprivileged entry via CALL_PAL
	// into kernel-installed routines that execute uninterrupted (§2.7).
	PAL
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case User:
		return "user"
	case Kernel:
		return "kernel"
	case PAL:
		return "pal"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Config holds the CPU cost model.
type Config struct {
	// Freq is the core clock (150 MHz for the Alpha 3000/300 preset).
	Freq sim.Hz
	// IssueCycles is the base cost of issuing any instruction.
	IssueCycles int64
	// CacheHitCycles is the additional cost of a cached main-memory
	// access (the model assumes warm caches for the hot sequences, as
	// the paper's measurement loop did).
	CacheHitCycles int64
	// TLBMissCycles is the cost of a hardware/PALcode page-table walk.
	TLBMissCycles int64
	// MBCycles is the core-side cost of a memory barrier, on top of the
	// bus time its drain consumes.
	MBCycles int64
	// TLBEntries sizes the TLB (32 for the 21064 data TLB).
	TLBEntries int
}

// Stats counts CPU activity for experiment reports.
type Stats struct {
	Instructions  uint64
	Loads         uint64
	Stores        uint64
	RMWs          uint64
	Barriers      uint64
	DeviceAccess  uint64 // uncached accesses routed to the bus
	MemoryAccess  uint64 // cached accesses to main memory
	ComputeCycles int64  // cycles consumed via Spin (modelled software work)
}

// PrivilegeError is returned when user mode attempts a privileged
// operation (e.g. a physical-address access).
type PrivilegeError struct {
	Op   string
	Mode Mode
}

func (e *PrivilegeError) Error() string {
	return fmt.Sprintf("cpu: %s requires kernel or PAL mode, executed in %s mode", e.Op, e.Mode)
}

// CPU is one processor core wired to a memory system. It owns the TLB
// and the write buffer (both are per-processor structures) and shares
// the clock, event queue, physical memory and bus with the rest of the
// machine.
type CPU struct {
	cfg    Config
	clock  *sim.Clock
	events *sim.EventQueue
	mem    *phys.Memory
	bus    *bus.Bus
	wb     *bus.WriteBuffer
	tlb    *vm.TLB
	mode   Mode
	stats  Stats
}

// New builds a CPU. wb must be a write buffer in front of b.
func New(cfg Config, clock *sim.Clock, events *sim.EventQueue, mem *phys.Memory, b *bus.Bus, wb *bus.WriteBuffer) *CPU {
	if cfg.Freq == 0 {
		panic("cpu: zero frequency")
	}
	if cfg.TLBEntries <= 0 {
		cfg.TLBEntries = 32
	}
	return &CPU{
		cfg:    cfg,
		clock:  clock,
		events: events,
		mem:    mem,
		bus:    b,
		wb:     wb,
		tlb:    vm.NewTLB(cfg.TLBEntries),
		mode:   User,
	}
}

// Config returns the cost model.
func (c *CPU) Config() Config { return c.cfg }

// Clock returns the machine clock the CPU advances.
func (c *CPU) Clock() *sim.Clock { return c.clock }

// Events returns the machine event queue the CPU pumps (nil in bare
// test rigs). The scheduler uses it to advance idle time when every
// process is blocked on an event.
func (c *CPU) Events() *sim.EventQueue { return c.events }

// Mode returns the current privilege mode.
func (c *CPU) Mode() Mode { return c.mode }

// SetMode changes the privilege mode. It is called by the kernel trap
// machinery and the PAL dispatcher, never by guest code directly.
func (c *CPU) SetMode(m Mode) { c.mode = m }

// Stats returns a snapshot of the counters.
func (c *CPU) Stats() Stats { return c.stats }

// ResetStats zeroes the counters.
func (c *CPU) ResetStats() { c.stats = Stats{} }

// TLB exposes the translation buffer (for flushes at context switch in
// non-ASN configurations, and for stats).
func (c *CPU) TLB() *vm.TLB { return c.tlb }

// WriteBuffer exposes the posted-write buffer.
func (c *CPU) WriteBuffer() *bus.WriteBuffer { return c.wb }

// charge advances the clock by n core cycles and pumps due events
// (in-flight DMA transfers progress while the CPU computes).
func (c *CPU) charge(n int64) {
	if n > 0 {
		c.clock.Advance(c.cfg.Freq.Cycles(n))
	}
	c.pump()
}

func (c *CPU) pump() {
	if c.events != nil {
		c.events.RunUntil(c.clock.Now())
	}
}

// Spin consumes n core cycles of pure computation. The kernel model uses
// it for trap entry/exit, software translation, and scheduler work.
func (c *CPU) Spin(n int64) {
	c.stats.ComputeCycles += n
	c.charge(n)
}

// translate resolves va through the TLB, charging the walk cost on a
// miss.
func (c *CPU) translate(as *vm.AddressSpace, va vm.VAddr, access vm.Access) (phys.Addr, error) {
	pa, hit, err := c.tlb.Translate(as, va, access)
	if !hit {
		c.charge(c.cfg.TLBMissCycles)
	}
	if err != nil {
		return 0, err
	}
	return pa, nil
}

// Load issues a load of size bytes at virtual address va in as. Device
// addresses take the uncached path (write buffer + bus, stalling for the
// reply); everything else is a cached memory access.
func (c *CPU) Load(as *vm.AddressSpace, va vm.VAddr, size phys.AccessSize) (uint64, error) {
	c.stats.Instructions++
	c.stats.Loads++
	c.charge(c.cfg.IssueCycles)
	pa, err := c.translate(as, va, vm.AccessLoad)
	if err != nil {
		return 0, err
	}
	return c.physLoad(pa, size)
}

// Store issues a store of the low size bytes of val at va in as.
func (c *CPU) Store(as *vm.AddressSpace, va vm.VAddr, size phys.AccessSize, val uint64) error {
	c.stats.Instructions++
	c.stats.Stores++
	c.charge(c.cfg.IssueCycles)
	pa, err := c.translate(as, va, vm.AccessStore)
	if err != nil {
		return err
	}
	return c.physStore(pa, size, val)
}

// Swap issues an atomic exchange-style read-modify-write at va: val is
// delivered to the target and the previous/returned value comes back in
// one indivisible bus transaction. It models the compare-and-exchange
// instruction SHRIMP's first solution initiates DMA with (§2.4) and the
// vehicle for user-level atomic operations (§3.5). On plain memory it
// degenerates to a local exchange.
func (c *CPU) Swap(as *vm.AddressSpace, va vm.VAddr, size phys.AccessSize, val uint64) (uint64, error) {
	c.stats.Instructions++
	c.stats.RMWs++
	c.charge(c.cfg.IssueCycles)
	pa, err := c.translate(as, va, vm.AccessRMW)
	if err != nil {
		return 0, err
	}
	if c.bus.IsDevice(pa) {
		c.stats.DeviceAccess++
		old, err := c.wb.RMW(pa, size, val)
		c.pump()
		return old, err
	}
	c.stats.MemoryAccess++
	c.charge(2 * c.cfg.CacheHitCycles)
	old, err := c.mem.Read(pa, size)
	if err != nil {
		return 0, err
	}
	if err := c.mem.Write(pa, size, val); err != nil {
		return 0, err
	}
	return old, nil
}

// MB executes a memory barrier: the write buffer drains so that every
// prior store reaches its device before MB returns.
func (c *CPU) MB() error {
	c.stats.Instructions++
	c.stats.Barriers++
	c.charge(c.cfg.IssueCycles + c.cfg.MBCycles)
	err := c.wb.Drain()
	c.pump()
	return err
}

// PhysLoad performs a privileged physical-address load (kernel/PAL only).
func (c *CPU) PhysLoad(pa phys.Addr, size phys.AccessSize) (uint64, error) {
	if c.mode == User {
		return 0, &PrivilegeError{Op: "physical load", Mode: c.mode}
	}
	c.stats.Instructions++
	c.stats.Loads++
	c.charge(c.cfg.IssueCycles)
	return c.physLoad(pa, size)
}

// PhysStore performs a privileged physical-address store (kernel/PAL only).
func (c *CPU) PhysStore(pa phys.Addr, size phys.AccessSize, val uint64) error {
	if c.mode == User {
		return &PrivilegeError{Op: "physical store", Mode: c.mode}
	}
	c.stats.Instructions++
	c.stats.Stores++
	c.charge(c.cfg.IssueCycles)
	return c.physStore(pa, size, val)
}

// PhysSwap performs a privileged physical-address atomic exchange
// (kernel/PAL only) — the kernel's path to the engine's atomic unit when
// it performs atomic operations on behalf of a process.
func (c *CPU) PhysSwap(pa phys.Addr, size phys.AccessSize, val uint64) (uint64, error) {
	if c.mode == User {
		return 0, &PrivilegeError{Op: "physical swap", Mode: c.mode}
	}
	c.stats.Instructions++
	c.stats.RMWs++
	c.charge(c.cfg.IssueCycles)
	if c.bus.IsDevice(pa) {
		c.stats.DeviceAccess++
		old, err := c.wb.RMW(pa, size, val)
		c.pump()
		return old, err
	}
	c.stats.MemoryAccess++
	c.charge(2 * c.cfg.CacheHitCycles)
	old, err := c.mem.Read(pa, size)
	if err != nil {
		return 0, err
	}
	return old, c.mem.Write(pa, size, val)
}

func (c *CPU) physLoad(pa phys.Addr, size phys.AccessSize) (uint64, error) {
	if c.bus.IsDevice(pa) {
		c.stats.DeviceAccess++
		v, err := c.wb.Load(pa, size)
		c.pump()
		return v, err
	}
	c.stats.MemoryAccess++
	c.charge(c.cfg.CacheHitCycles)
	return c.mem.Read(pa, size)
}

func (c *CPU) physStore(pa phys.Addr, size phys.AccessSize, val uint64) error {
	if c.bus.IsDevice(pa) {
		c.stats.DeviceAccess++
		// Issue cost was already charged; the post itself is free.
		err := c.wb.Store(c.clock, 0, pa, size, val)
		c.pump()
		return err
	}
	c.stats.MemoryAccess++
	c.charge(c.cfg.CacheHitCycles)
	return c.mem.Write(pa, size, val)
}
