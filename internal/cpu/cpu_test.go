package cpu

import (
	"errors"
	"testing"

	"uldma/internal/bus"
	"uldma/internal/phys"
	"uldma/internal/sim"
	"uldma/internal/vm"
)

const (
	coreFreq = 150 * sim.MHz
	busFreq  = sim.Hz(12_500_000)
	pageSize = 8192
	devBase  = phys.Addr(0x1000_0000)
)

// echoDev is a trivial device with a register file.
type echoDev struct {
	regs map[phys.Addr]uint64
	log  []string
}

func (d *echoDev) Name() string { return "echo" }
func (d *echoDev) Load(_ sim.Time, a phys.Addr, _ phys.AccessSize) (uint64, int64, error) {
	d.log = append(d.log, "L")
	return d.regs[a], 0, nil
}
func (d *echoDev) Store(_ sim.Time, a phys.Addr, _ phys.AccessSize, v uint64) (int64, error) {
	d.log = append(d.log, "S")
	d.regs[a] = v
	return 0, nil
}

type fixture struct {
	cpu    *CPU
	clock  *sim.Clock
	mem    *phys.Memory
	dev    *echoDev
	as     *vm.AddressSpace
	events *sim.EventQueue
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	clock := sim.NewClock()
	events := sim.NewEventQueue()
	mem := phys.New(1 << 20)
	b := bus.New(clock, busFreq, bus.CostConfig{StoreCycles: 6, LoadRequestCycles: 4, LoadReplyCycles: 4})
	dev := &echoDev{regs: map[phys.Addr]uint64{}}
	if err := b.Map(dev, devBase, 1<<16); err != nil {
		t.Fatal(err)
	}
	wb := bus.NewWriteBuffer(b, 8, true)
	cfg := Config{
		Freq: coreFreq, IssueCycles: 1, CacheHitCycles: 2,
		TLBMissCycles: 40, MBCycles: 3, TLBEntries: 8,
	}
	c := New(cfg, clock, events, mem, b, wb)
	as := vm.NewAddressSpace(1, pageSize)
	// One RAM page and one device page.
	if err := as.Map(0x10000, 0x40000, vm.Read|vm.Write); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(0x20000, devBase, vm.Read|vm.Write); err != nil {
		t.Fatal(err)
	}
	return &fixture{cpu: c, clock: clock, mem: mem, dev: dev, as: as, events: events}
}

func TestMemoryLoadStore(t *testing.T) {
	f := newFixture(t)
	if err := f.cpu.Store(f.as, 0x10008, phys.Size64, 0xabcd); err != nil {
		t.Fatal(err)
	}
	v, err := f.cpu.Load(f.as, 0x10008, phys.Size64)
	if err != nil || v != 0xabcd {
		t.Fatalf("load = %#x, err %v", v, err)
	}
	// Value actually landed in physical memory at the mapped frame.
	pv, _ := f.mem.Read(0x40008, phys.Size64)
	if pv != 0xabcd {
		t.Fatalf("physical memory holds %#x", pv)
	}
	s := f.cpu.Stats()
	if s.MemoryAccess != 2 || s.DeviceAccess != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDeviceStoreIsPosted(t *testing.T) {
	f := newFixture(t)
	if err := f.cpu.Store(f.as, 0x20000, phys.Size64, 7); err != nil {
		t.Fatal(err)
	}
	if len(f.dev.log) != 0 {
		t.Fatal("posted store reached device before any ordering point")
	}
	if f.cpu.WriteBuffer().Pending() != 1 {
		t.Fatal("store not buffered")
	}
	if err := f.cpu.MB(); err != nil {
		t.Fatal(err)
	}
	if len(f.dev.log) != 1 || f.dev.log[0] != "S" {
		t.Fatalf("device log after MB: %v", f.dev.log)
	}
	if f.dev.regs[devBase] != 7 {
		t.Fatalf("device register = %d", f.dev.regs[devBase])
	}
}

func TestDeviceLoadStallsAndDrains(t *testing.T) {
	f := newFixture(t)
	f.dev.regs[devBase+8] = 99
	f.cpu.Store(f.as, 0x20000, phys.Size64, 1) // buffered
	v, err := f.cpu.Load(f.as, 0x20008, phys.Size64)
	if err != nil || v != 99 {
		t.Fatalf("device load = %d, err %v", v, err)
	}
	// Order at device: drain store then load.
	if len(f.dev.log) != 2 || f.dev.log[0] != "S" || f.dev.log[1] != "L" {
		t.Fatalf("device order = %v", f.dev.log)
	}
}

func TestTimingModel(t *testing.T) {
	f := newFixture(t)
	// Prime the TLB so timing below is miss-free.
	f.cpu.Load(f.as, 0x10000, phys.Size64)
	f.cpu.Load(f.as, 0x20000, phys.Size64)
	f.cpu.MB()
	start := f.clock.Now()
	// Cached load: issue(1) + TLB hit(0) + cache(2) = 3 core cycles.
	f.cpu.Load(f.as, 0x10000, phys.Size64)
	if got, want := f.clock.Now()-start, coreFreq.Cycles(3); got != want {
		t.Fatalf("cached load cost %v, want %v", got, want)
	}
	// Uncached load: issue(1 core) + bus 8 cycles.
	start = f.clock.Now()
	f.cpu.Load(f.as, 0x20000, phys.Size64)
	want := coreFreq.Cycles(1) + busFreq.Cycles(8)
	if got := f.clock.Now() - start; got != want {
		t.Fatalf("uncached load cost %v, want %v", got, want)
	}
	// Posted store: issue only.
	start = f.clock.Now()
	f.cpu.Store(f.as, 0x20008, phys.Size64, 5)
	if got, want := f.clock.Now()-start, coreFreq.Cycles(1); got != want {
		t.Fatalf("posted store cost %v, want %v", got, want)
	}
	// MB: issue + MBCycles + one 6-cycle bus store drain.
	start = f.clock.Now()
	f.cpu.MB()
	want = coreFreq.Cycles(1+3) + busFreq.Cycles(6)
	if got := f.clock.Now() - start; got != want {
		t.Fatalf("MB cost %v, want %v", got, want)
	}
}

func TestTLBMissCharged(t *testing.T) {
	f := newFixture(t)
	start := f.clock.Now()
	f.cpu.Load(f.as, 0x10000, phys.Size64) // cold TLB: walk charged
	withMiss := f.clock.Now() - start
	start = f.clock.Now()
	f.cpu.Load(f.as, 0x10000, phys.Size64) // warm
	withHit := f.clock.Now() - start
	if diff, want := withMiss-withHit, coreFreq.Cycles(40); diff != want {
		t.Fatalf("TLB miss penalty %v, want %v", diff, want)
	}
}

func TestFaultsPropagate(t *testing.T) {
	f := newFixture(t)
	_, err := f.cpu.Load(f.as, 0x9_0000, phys.Size64)
	var fault *vm.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("unmapped load error: %v", err)
	}
	// Read-only page rejects stores.
	f.as.Map(0x30000, 0x50000, vm.Read)
	err = f.cpu.Store(f.as, 0x30000, phys.Size64, 1)
	if !errors.As(err, &fault) || fault.Kind != vm.FaultProtection {
		t.Fatalf("store to read-only page: %v", err)
	}
}

func TestPhysAccessPrivilege(t *testing.T) {
	f := newFixture(t)
	var pe *PrivilegeError
	if _, err := f.cpu.PhysLoad(0x40000, phys.Size64); !errors.As(err, &pe) {
		t.Fatalf("user-mode PhysLoad: %v", err)
	}
	if err := f.cpu.PhysStore(0x40000, phys.Size64, 1); !errors.As(err, &pe) {
		t.Fatalf("user-mode PhysStore: %v", err)
	}
	f.cpu.SetMode(Kernel)
	if err := f.cpu.PhysStore(0x40000, phys.Size64, 0x55); err != nil {
		t.Fatal(err)
	}
	v, err := f.cpu.PhysLoad(0x40000, phys.Size64)
	if err != nil || v != 0x55 {
		t.Fatalf("kernel PhysLoad = %#x, err %v", v, err)
	}
	f.cpu.SetMode(PAL)
	if _, err := f.cpu.PhysLoad(0x40000, phys.Size64); err != nil {
		t.Fatalf("PAL-mode PhysLoad: %v", err)
	}
	if f.cpu.Mode() != PAL {
		t.Fatal("mode not sticky")
	}
}

func TestSpinAdvancesClockAndPumpsEvents(t *testing.T) {
	f := newFixture(t)
	fired := false
	f.events.Schedule(f.clock.Now()+coreFreq.Cycles(50), func(sim.Time) { fired = true })
	f.cpu.Spin(100)
	if !fired {
		t.Fatal("event due during Spin did not fire")
	}
	if got, want := f.clock.Now(), coreFreq.Cycles(100); got != want {
		t.Fatalf("Spin(100) advanced %v, want %v", got, want)
	}
	if f.cpu.Stats().ComputeCycles != 100 {
		t.Fatalf("ComputeCycles = %d", f.cpu.Stats().ComputeCycles)
	}
}

// xchgDev adds RMW support to echoDev for swap tests.
type xchgDev struct{ *echoDev }

func (d *xchgDev) RMW(_ sim.Time, a phys.Addr, _ phys.AccessSize, v uint64) (uint64, int64, error) {
	d.log = append(d.log, "X")
	old := d.regs[a]
	d.regs[a] = v
	return old, 0, nil
}

func TestSwapOnMemory(t *testing.T) {
	f := newFixture(t)
	f.mem.Write(0x40000, phys.Size64, 77)
	old, err := f.cpu.Swap(f.as, 0x10000, phys.Size64, 88)
	if err != nil || old != 77 {
		t.Fatalf("memory swap: old=%d err=%v", old, err)
	}
	if v, _ := f.mem.Read(0x40000, phys.Size64); v != 88 {
		t.Fatalf("memory after swap = %d", v)
	}
	if f.cpu.Stats().RMWs != 1 {
		t.Fatalf("RMW counter = %d", f.cpu.Stats().RMWs)
	}
}

func TestSwapOnDevice(t *testing.T) {
	clock := sim.NewClock()
	mem := phys.New(1 << 20)
	b := bus.New(clock, busFreq, bus.CostConfig{StoreCycles: 6, LoadRequestCycles: 4, LoadReplyCycles: 4, RMWExtraCycles: 2})
	dev := &xchgDev{&echoDev{regs: map[phys.Addr]uint64{}}}
	if err := b.Map(dev, devBase, 1<<16); err != nil {
		t.Fatal(err)
	}
	wb := bus.NewWriteBuffer(b, 8, true)
	c := New(Config{Freq: coreFreq, IssueCycles: 1, CacheHitCycles: 2, TLBMissCycles: 0, TLBEntries: 8}, clock, nil, mem, b, wb)
	as := vm.NewAddressSpace(1, pageSize)
	as.Map(0x20000, devBase, vm.Read|vm.Write)
	dev.regs[devBase] = 3
	c.Store(as, 0x20008, phys.Size64, 1) // buffered; must drain before atomic
	old, err := c.Swap(as, 0x20000, phys.Size64, 4)
	if err != nil || old != 3 {
		t.Fatalf("device swap: old=%d err=%v", old, err)
	}
	if len(dev.log) != 2 || dev.log[0] != "S" || dev.log[1] != "X" {
		t.Fatalf("device order = %v", dev.log)
	}
}

func TestPhysSwapPrivilege(t *testing.T) {
	f := newFixture(t)
	var pe *PrivilegeError
	if _, err := f.cpu.PhysSwap(0x40000, phys.Size64, 1); !errors.As(err, &pe) {
		t.Fatalf("user-mode PhysSwap: %v", err)
	}
	f.cpu.SetMode(Kernel)
	f.mem.Write(0x40000, phys.Size64, 5)
	old, err := f.cpu.PhysSwap(0x40000, phys.Size64, 9)
	if err != nil || old != 5 {
		t.Fatalf("kernel PhysSwap: old=%d err=%v", old, err)
	}
	if v, _ := f.mem.Read(0x40000, phys.Size64); v != 9 {
		t.Fatalf("memory after PhysSwap = %d", v)
	}
	if f.cpu.Events() == nil {
		t.Fatal("Events accessor broken")
	}
}

func TestSwapNeedsReadWrite(t *testing.T) {
	f := newFixture(t)
	f.as.Map(0x30000, 0x50000, vm.Read) // read-only
	if _, err := f.cpu.Swap(f.as, 0x30000, phys.Size64, 1); err == nil {
		t.Fatal("swap on read-only page succeeded")
	}
	f.as.Map(0x38000, 0x58000, vm.Write) // write-only
	if _, err := f.cpu.Swap(f.as, 0x38000, phys.Size64, 1); err == nil {
		t.Fatal("swap on write-only page succeeded")
	}
}

func TestModeString(t *testing.T) {
	if User.String() != "user" || Kernel.String() != "kernel" || PAL.String() != "pal" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode renders empty")
	}
}

func TestStatsCounting(t *testing.T) {
	f := newFixture(t)
	f.cpu.Load(f.as, 0x10000, phys.Size64)
	f.cpu.Store(f.as, 0x10000, phys.Size64, 1)
	f.cpu.Store(f.as, 0x20000, phys.Size64, 1)
	f.cpu.MB()
	s := f.cpu.Stats()
	if s.Instructions != 4 || s.Loads != 1 || s.Stores != 2 || s.Barriers != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.DeviceAccess != 1 || s.MemoryAccess != 2 {
		t.Fatalf("access split = %+v", s)
	}
	f.cpu.ResetStats()
	if f.cpu.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not zero")
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero frequency accepted")
		}
	}()
	New(Config{}, sim.NewClock(), nil, nil, nil, nil)
}
