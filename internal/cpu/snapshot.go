package cpu

// World snapshot/restore support (see internal/machine). The CPU's
// mutable state is its privilege mode, its counters, and its TLB; the
// clock, event queue, memory and bus are shared machine structures
// snapshotted by their own packages.

import "uldma/internal/vm"

// Snapshot captures a CPU's mutable state. See CPU.Snapshot.
type Snapshot struct {
	mode  Mode
	stats Stats
	tlb   *vm.TLBSnapshot
}

// Snapshot captures the mode, counters and TLB.
func (c *CPU) Snapshot() *Snapshot {
	return &Snapshot{mode: c.mode, stats: c.stats, tlb: c.tlb.Snapshot()}
}

// Restore rewinds the CPU to the snapshot. The CPU must have the same
// TLB geometry (same Config) as the snapshot's source.
func (c *CPU) Restore(s *Snapshot) error {
	if err := c.tlb.Restore(s.tlb); err != nil {
		return err
	}
	c.mode = s.mode
	c.stats = s.stats
	return nil
}
