// Integration tests that attach internal/fault planes to the fabric.
// They live in package net_test: fault imports net, so importing fault
// from net's internal tests would cycle.
package net_test

import (
	"testing"

	"uldma/internal/dma"
	"uldma/internal/fault"
	"uldma/internal/machine"
	"uldma/internal/net"
	"uldma/internal/phys"
	"uldma/internal/sim"
)

func cfg() machine.Config { return machine.Alpha3000TC(dma.ModeExtended, 0) }

// driveSchedule pushes a fixed, deterministic payload schedule through
// the fabric: varying sizes, two destinations, distinct byte patterns.
func driveSchedule(t *testing.T, c *net.Cluster, rounds int) {
	t.Helper()
	buf := make([]byte, 512)
	for i := 0; i < rounds; i++ {
		n := 16 + (i%7)*64
		for k := 0; k < n; k++ {
			buf[k] = byte(i + k)
		}
		dst := i % len(c.Nodes)
		addr := phys.Addr(0x80000 + (i%13)*0x400)
		if err := c.Fabric.Deliver(dst, addr, buf[:n], c.Clock.Now()); err != nil {
			t.Fatal(err)
		}
		c.Clock.Advance(3 * sim.Microsecond)
	}
	c.Settle()
}

// memSum hashes the delivery region of every node's memory.
func memSum(t *testing.T, c *net.Cluster) uint64 {
	t.Helper()
	h := uint64(0xcbf29ce484222325)
	buf := make([]byte, 0x400*16)
	for _, m := range c.Nodes {
		if err := m.Mem.ReadInto(0x80000, buf); err != nil {
			t.Fatal(err)
		}
		for _, b := range buf {
			h ^= uint64(b)
			h *= 0x100000001b3
		}
	}
	return h
}

// TestClusterSnapshotRestoreFidelity: snapshot a quiescent faulted
// cluster mid-history, keep running, rewind, re-run the same schedule —
// the replay must match byte-for-byte: same fabric counters, same
// memory contents, same fault verdicts (the plane's RNG position and
// per-link counters rewound with the nodes).
func TestClusterSnapshotRestoreFidelity(t *testing.T) {
	c := net.MustNewCluster(2, cfg(), net.Gigabit())
	plan := fault.Plan{Default: fault.LinkFaults{
		Drop:      0.25,
		Dup:       0.2,
		Reorder:   0.2,
		ReorderBy: 15 * sim.Microsecond,
		Jitter:    3 * sim.Microsecond,
	}}
	c.Fabric.SetFaultPlane(fault.New(plan, 21))

	driveSchedule(t, c, 40) // phase A: arbitrary history before the snapshot
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	driveSchedule(t, c, 60) // phase B, first run
	stats1, sum1 := c.Fabric.Stats(), memSum(t, c)

	if err := c.Restore(snap); err != nil {
		t.Fatal(err)
	}
	driveSchedule(t, c, 60) // phase B, replayed
	stats2, sum2 := c.Fabric.Stats(), memSum(t, c)

	if stats1 != stats2 {
		t.Fatalf("fabric stats diverged after restore:\n first %+v\nreplay %+v", stats1, stats2)
	}
	if sum1 != sum2 {
		t.Fatalf("node memory diverged after restore: %#x vs %#x", sum1, sum2)
	}
	if stats1.FaultDropped == 0 || stats1.Duplicated == 0 || stats1.Reordered == 0 {
		t.Fatalf("fault plane never fired (stats %+v) — fidelity not exercised", stats1)
	}
}

// TestZeroFaultPlaneByteIdentity: a fabric carrying a zero-fault plane
// is bit-for-bit identical to a fabric with no plane at all — same
// memory contents, same counters, same settle time. This is the
// pay-for-what-you-use contract that keeps every pre-fault golden
// byte-identical when the hook is compiled in.
func TestZeroFaultPlaneByteIdentity(t *testing.T) {
	bare := net.MustNewCluster(2, cfg(), net.Gigabit())
	zeroed := net.MustNewCluster(2, cfg(), net.Gigabit())
	zeroed.Fabric.SetFaultPlane(fault.New(fault.Plan{}, 12345))

	driveSchedule(t, bare, 50)
	driveSchedule(t, zeroed, 50)

	if a, b := bare.Fabric.Stats(), zeroed.Fabric.Stats(); a != b {
		t.Fatalf("stats differ with a zero plane attached:\n bare %+v\n zero %+v", a, b)
	}
	if a, b := memSum(t, bare), memSum(t, zeroed); a != b {
		t.Fatalf("memory differs with a zero plane attached: %#x vs %#x", a, b)
	}
	if a, b := bare.Clock.Now(), zeroed.Clock.Now(); a != b {
		t.Fatalf("settle time differs with a zero plane attached: %v vs %v", a, b)
	}
}
