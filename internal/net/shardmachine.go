package net

// HostedMachines: the bridge between the sharded engine and the
// Table-1-accurate machine model. Each cluster node is a full
// machine.Machine hydrated in shard-hosted mode (machine.NewHosted /
// NewFromSnapshotHosted): the machine runs on its owning shard's clock
// and event queue — it never owns either — so its CPU charges, bus
// transactions and DMA-engine completions all ride the window
// synchronizer like any other event.
//
// The bundle implements ShardState, which is what makes the cluster's
// quiescent Snapshot/Restore cover the whole fleet: at a barrier every
// machine is captured with SnapshotHosted (which detaches the engine's
// fabric port for the duration — no link traffic is in flight at a
// barrier) and rewound with RestoreHosted. A model's own bookkeeping
// chains through Inner.
//
// Time discipline: shard clocks are shared scratch (sim.Shard.RunWindow
// resets the clock per event), but each MACHINE's substrates — bus
// busy-until, write-buffer slots — must only ever see monotonic time.
// Hosted models therefore floor the clock to the machine's own
// high-water mark before driving it and record the new mark after
// (Floor/Leave). The mark is per-node model state, so it is invariant
// under how nodes are dealt to shards.

import (
	"fmt"

	"uldma/internal/machine"
	"uldma/internal/sim"
)

// HostedMachines is a per-node fleet of shard-hosted machines mounted
// on a sharded cluster.
type HostedMachines struct {
	c     *ShardedCluster
	nodes []*machine.Machine
	busy  []sim.Time // per-node monotonic CPU high-water mark
	// Inner optionally chains a model's own snapshot hook behind the
	// fleet's (set before the first Snapshot).
	Inner ShardState
}

// hostedState is the ShardState payload: one hosted snapshot per node
// plus the time floors and the chained model payload.
type hostedState struct {
	machines []*machine.Snapshot
	busy     []sim.Time
	inner    any
}

// NewHostedMachines mounts one shard-hosted machine per cluster node.
// Every machine must have been built hosted (NewHosted or
// NewFromSnapshotHosted) on its owning shard's clock and queue.
func NewHostedMachines(c *ShardedCluster, nodes []*machine.Machine) (*HostedMachines, error) {
	if len(nodes) != c.cfg.Nodes {
		return nil, fmt.Errorf("net: %d hosted machines for %d nodes", len(nodes), c.cfg.Nodes)
	}
	for n, m := range nodes {
		if m == nil || !m.Hosted() {
			return nil, fmt.Errorf("net: node %d machine is not shard-hosted (use machine.NewHosted)", n)
		}
	}
	h := &HostedMachines{c: c, nodes: nodes, busy: make([]sim.Time, len(nodes))}
	c.SetStateHook(h)
	return h, nil
}

// Machine returns node n's hosted machine.
func (h *HostedMachines) Machine(n int) *machine.Machine { return h.nodes[n] }

// Nodes returns the fleet size.
func (h *HostedMachines) Nodes() int { return len(h.nodes) }

// Floor prepares node n's machine to execute at event time at: the
// shard clock is reset to max(at, the node's own high-water mark), so
// the machine's substrates never observe time moving backwards even
// when an earlier event on the same shard left the clock further ahead
// for a DIFFERENT node. Returns the effective start time — the model's
// queueing delay is (returned - at).
func (h *HostedMachines) Floor(n int, at sim.Time) sim.Time {
	start := at
	if h.busy[n] > start {
		start = h.busy[n]
	}
	h.nodes[n].Clock.Reset(start)
	return start
}

// Leave records where node n's machine left the shared clock after
// executing, advancing its high-water mark. Call at the end of every
// event that drove the machine.
func (h *HostedMachines) Leave(n int) sim.Time {
	now := h.nodes[n].Clock.Now()
	if now > h.busy[n] {
		h.busy[n] = now
	}
	return now
}

// Busy returns node n's current high-water mark without touching the
// clock (the earliest time a new event could start executing there).
func (h *HostedMachines) Busy(n int) sim.Time { return h.busy[n] }

// Bump raises node n's high-water mark to at (no-op when at is not
// later). Models use it to serialize the node behind engine-side
// completions — e.g. the last accepted transfer's End — without driving
// the clock there.
func (h *HostedMachines) Bump(n int, at sim.Time) {
	if at > h.busy[n] {
		h.busy[n] = at
	}
}

// SnapshotState implements ShardState: a hosted snapshot of every
// machine, in node order. The cluster has already verified quiescence
// (no pending events, no unflushed outboxes) before calling, so a
// failure here means a machine broke its own invariants — that is a
// model bug, and it panics like the engine's causality checks do.
func (h *HostedMachines) SnapshotState() any {
	st := &hostedState{
		machines: make([]*machine.Snapshot, len(h.nodes)),
		busy:     append([]sim.Time(nil), h.busy...),
	}
	for n, m := range h.nodes {
		s, err := m.SnapshotHosted()
		if err != nil {
			panic(fmt.Sprintf("net: hosted snapshot of node %d at a quiescent barrier: %v", n, err))
		}
		st.machines[n] = s
	}
	if h.Inner != nil {
		st.inner = h.Inner.SnapshotState()
	}
	return st
}

// RestoreState implements ShardState.
func (h *HostedMachines) RestoreState(state any) error {
	st, ok := state.(*hostedState)
	if !ok {
		return fmt.Errorf("net: hosted machines: foreign snapshot payload %T", state)
	}
	if len(st.machines) != len(h.nodes) {
		return fmt.Errorf("net: hosted machines: snapshot of %d nodes onto %d", len(st.machines), len(h.nodes))
	}
	for n, m := range h.nodes {
		if err := m.RestoreHosted(st.machines[n]); err != nil {
			return fmt.Errorf("net: hosted machines: node %d: %w", n, err)
		}
	}
	copy(h.busy, st.busy)
	if h.Inner != nil && st.inner != nil {
		return h.Inner.RestoreState(st.inner)
	}
	return nil
}
