package net

import (
	"strings"
	"testing"

	"uldma/internal/dma"
	"uldma/internal/kernel"
	"uldma/internal/machine"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/sim"
	"uldma/internal/vm"
)

func clusterCfg() machine.Config {
	return machine.Alpha3000TC(dma.ModeExtended, 0)
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(0, clusterCfg(), Gigabit()); err == nil {
		t.Fatal("empty cluster accepted")
	}
	if _, err := NewCluster(machine.MaxNodes+1, clusterCfg(), Gigabit()); err == nil {
		t.Fatal("oversized cluster accepted")
	}
	if _, err := NewCluster(2, clusterCfg(), LinkConfig{Latency: 1}); err == nil {
		t.Fatal("zero-bandwidth link accepted")
	}
	c := MustNewCluster(2, clusterCfg(), Gigabit())
	if len(c.Nodes) != 2 || c.Nodes[0].Clock != c.Nodes[1].Clock {
		t.Fatal("nodes must share the cluster clock")
	}
}

func TestMustNewClusterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewCluster did not panic")
		}
	}()
	MustNewCluster(0, clusterCfg(), Gigabit())
}

// TestRemoteDMADelivers: node 0 DMAs a payload into node 1's memory
// through the extended-shadow user-level path.
func TestRemoteDMADelivers(t *testing.T) {
	c := MustNewCluster(2, clusterCfg(), Gigabit())
	n0, n1 := c.Nodes[0], c.Nodes[1]

	const srcVA, remVA = vm.VAddr(0x10000), vm.VAddr(0x20000)
	const remoteOff = phys.Addr(0x80000) // destination inside node 1's memory
	var status uint64
	sender := n0.NewProcess("sender", func(ctx *proc.Context) error {
		// Extended-shadow sequence against a remote destination page.
		if err := ctx.Store(kernel.ShadowVA(remVA), phys.Size64, 512); err != nil {
			return err
		}
		st, err := ctx.Load(kernel.ShadowVA(srcVA), phys.Size64)
		status = st
		return err
	})
	if _, _, err := n0.Kernel.AssignContext(sender); err != nil {
		t.Fatal(err)
	}
	frames, err := n0.SetupPages(sender, srcVA, 1, vm.Read|vm.Write)
	if err != nil {
		t.Fatal(err)
	}
	if err := n0.Kernel.MapRemote(sender, remVA, 1, remoteOff); err != nil {
		t.Fatal(err)
	}
	if err := n0.Kernel.MapShadow(sender, remVA); err != nil {
		t.Fatal(err)
	}
	n0.Mem.Fill(frames[0], 512, 0x5a)

	if err := c.RunRoundRobin(4, 100_000); err != nil {
		t.Fatal(err)
	}
	if sender.Err() != nil || status == dma.StatusFailure {
		t.Fatalf("sender err=%v status=%#x", sender.Err(), status)
	}
	c.Settle()
	got, err := n1.Mem.ReadBytes(remoteOff, 512)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0x5a {
			t.Fatalf("remote memory = %v...", got[:8])
		}
	}
	if c.Fabric.Stats().Messages != 1 || c.Fabric.Stats().Bytes != 512 {
		t.Fatalf("fabric stats = %+v", c.Fabric.Stats())
	}
}

// TestRemoteWordWrite: a plain store to a remote-mapped page becomes a
// single-word remote write (the doorbell primitive).
func TestRemoteWordWrite(t *testing.T) {
	c := MustNewCluster(2, clusterCfg(), Gigabit())
	n0, n1 := c.Nodes[0], c.Nodes[1]
	const remVA = vm.VAddr(0x20000)
	sender := n0.NewProcess("sender", func(ctx *proc.Context) error {
		if err := ctx.Store(remVA+64, phys.Size64, 0xfeedface); err != nil {
			return err
		}
		return ctx.MB()
	})
	if err := n0.Kernel.MapRemote(sender, remVA, 1, 0x80000); err != nil {
		t.Fatal(err)
	}
	if err := c.RunRoundRobin(4, 10_000); err != nil {
		t.Fatal(err)
	}
	if sender.Err() != nil {
		t.Fatal(sender.Err())
	}
	c.Settle()
	v, err := n1.Mem.Read(0x80000+64, phys.Size64)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xfeedface {
		t.Fatalf("remote word = %#x", v)
	}
}

// TestRemoteReadRejected: loads from remote pages are not supported.
func TestRemoteReadRejected(t *testing.T) {
	c := MustNewCluster(2, clusterCfg(), Gigabit())
	n0 := c.Nodes[0]
	const remVA = vm.VAddr(0x20000)
	var loadErr error
	sender := n0.NewProcess("sender", func(ctx *proc.Context) error {
		_, loadErr = ctx.Load(remVA, phys.Size64)
		return nil
	})
	if err := n0.Kernel.MapRemote(sender, remVA, 1, 0x80000); err != nil {
		t.Fatal(err)
	}
	// MapRemote maps write-only, so the load faults at translation —
	// before it could even reach the fabric.
	if err := c.RunRoundRobin(4, 10_000); err != nil {
		t.Fatal(err)
	}
	if loadErr == nil {
		t.Fatal("remote read succeeded")
	}
}

// TestLinkTimingOrdersDelivery: the flag written after the payload must
// not arrive before it (single FIFO fabric path + later send time).
func TestLinkTimingOrdersDelivery(t *testing.T) {
	link := LinkConfig{Latency: 5 * sim.Microsecond, Bandwidth: 125_000_000}
	c := MustNewCluster(2, clusterCfg(), link)
	n0, n1 := c.Nodes[0], c.Nodes[1]
	const remVA = vm.VAddr(0x20000)
	sender := n0.NewProcess("sender", func(ctx *proc.Context) error {
		if err := ctx.Store(remVA, phys.Size64, 1); err != nil {
			return err
		}
		if err := ctx.MB(); err != nil {
			return err
		}
		if err := ctx.Store(remVA+8, phys.Size64, 2); err != nil {
			return err
		}
		return ctx.MB()
	})
	if err := n0.Kernel.MapRemote(sender, remVA, 1, 0x80000); err != nil {
		t.Fatal(err)
	}
	start := c.Clock.Now()
	if err := c.RunRoundRobin(4, 10_000); err != nil {
		t.Fatal(err)
	}
	// Nothing arrives before link latency has passed.
	if c.Clock.Now()-start < link.Latency {
		if v, _ := n1.Mem.Read(0x80000, phys.Size64); v != 0 {
			t.Fatal("payload arrived faster than link latency")
		}
	}
	c.Settle()
	v1, _ := n1.Mem.Read(0x80000, phys.Size64)
	v2, _ := n1.Mem.Read(0x80000+8, phys.Size64)
	if v1 != 1 || v2 != 2 {
		t.Fatalf("remote words = %d, %d", v1, v2)
	}
}

// TestPingPong: the motivating NOW workload — two nodes bounce a
// message via remote writes, each polling its local mailbox.
func TestPingPong(t *testing.T) {
	c := MustNewCluster(2, clusterCfg(), Gigabit())
	const rounds = 4
	const mailboxOff = phys.Addr(0x80000)
	const remVA, boxVA = vm.VAddr(0x20000), vm.VAddr(0x30000)

	mkNode := func(me int, initiator bool) *proc.Process {
		m := c.Nodes[me]
		peer := 1 - me
		p := m.NewProcess("player", func(ctx *proc.Context) error {
			next := uint64(1)
			if initiator {
				if err := ctx.Store(remVA, phys.Size64, next); err != nil {
					return err
				}
				if err := ctx.MB(); err != nil {
					return err
				}
				next++
			}
			for i := 0; i < rounds; i++ {
				// Poll the local mailbox for the expected value.
				for {
					v, err := ctx.Load(boxVA, phys.Size64)
					if err != nil {
						return err
					}
					if v >= next-1 && v != 0 {
						break
					}
					ctx.Spin(500)
				}
				// Bounce back value+1.
				if err := ctx.Store(remVA, phys.Size64, next); err != nil {
					return err
				}
				if err := ctx.MB(); err != nil {
					return err
				}
				next++
			}
			return nil
		})
		if err := m.Kernel.MapRemote(p, remVA, peer, mailboxOff); err != nil {
			t.Fatal(err)
		}
		if err := m.Kernel.MapFrame(p.AddressSpace(), boxVA, mailboxOff, vm.Read); err != nil {
			t.Fatal(err)
		}
		return p
	}
	p0 := mkNode(0, true)
	p1 := mkNode(1, false)
	if err := c.RunRoundRobin(2, 10_000_000); err != nil {
		t.Fatal(err)
	}
	if p0.Err() != nil || p1.Err() != nil {
		t.Fatalf("p0=%v p1=%v", p0.Err(), p1.Err())
	}
	if got := c.Fabric.Stats().Messages; got < 2*rounds {
		t.Fatalf("only %d messages crossed the fabric", got)
	}
}

// TestRemoteAtomics: processes on two nodes bump a counter that lives
// in node 1's memory — node 0 through remote atomics over the fabric,
// node 1 locally — and the count is exact.
func TestRemoteAtomics(t *testing.T) {
	c := MustNewCluster(2, clusterCfg(), Gigabit())
	n0, n1 := c.Nodes[0], c.Nodes[1]
	const (
		cellVA  = vm.VAddr(0x50000)
		cellOff = phys.Addr(0x80000)
		perProc = 25
	)
	mk := func(m *machine.Machine) *proc.Process {
		return m.NewProcess("adder", func(ctx *proc.Context) error {
			for i := 0; i < perProc; i++ {
				old, err := ctx.Swap(kernel.AtomicVA(cellVA, dma.AtomicAdd), phys.Size64, 1)
				if err != nil {
					return err
				}
				_ = old
			}
			return nil
		})
	}
	// Node 1: the cell is local.
	p1 := mk(n1)
	if err := n1.Kernel.MapFrame(p1.AddressSpace(), cellVA, cellOff, vm.Read|vm.Write); err != nil {
		t.Fatal(err)
	}
	if err := n1.Kernel.MapAtomic(p1, cellVA); err != nil {
		t.Fatal(err)
	}
	// Node 0: the cell is remote (write-only window into node 1).
	p0 := mk(n0)
	if err := n0.Kernel.MapRemote(p0, cellVA, 1, cellOff); err != nil {
		t.Fatal(err)
	}
	if err := n0.Kernel.MapAtomic(p0, cellVA); err != nil {
		t.Fatal(err)
	}

	start := c.Clock.Now()
	if err := c.RunRoundRobin(3, 10_000_000); err != nil {
		t.Fatal(err)
	}
	for _, p := range []*proc.Process{p0, p1} {
		if p.Err() != nil {
			t.Fatal(p.Err())
		}
	}
	v, err := n1.Mem.Read(cellOff, phys.Size64)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2*perProc {
		t.Fatalf("counter = %d, want %d", v, 2*perProc)
	}
	// Each remote atomic paid at least a fabric round trip.
	if elapsed := c.Clock.Now() - start; elapsed < sim.Time(perProc)*2*Gigabit().Latency {
		t.Fatalf("elapsed %v too fast for %d remote round trips", elapsed, perProc)
	}
}

// TestRemoteAtomicValidation: bad nodes are rejected, and a fabric-less
// engine refuses remote atomic targets.
func TestRemoteAtomicValidation(t *testing.T) {
	c := MustNewCluster(1, clusterCfg(), Gigabit())
	if _, err := c.Fabric.RMWRemote(7, 0, dma.AtomicAdd, phys.Size64, 1); err == nil {
		t.Fatal("atomic to nonexistent node accepted")
	}
	if _, err := c.Fabric.RMWRemote(0, phys.Addr(c.Nodes[0].Mem.Size()), dma.AtomicAdd, phys.Size64, 1); err == nil {
		t.Fatal("atomic past memory accepted")
	}
	// An engine with no fabric rejects remote atomic targets outright.
	m := machine.MustNew(clusterCfg())
	cfg := m.Engine.Config()
	if _, _, err := m.Engine.RMW(0, cfg.AtomicShadow(cfg.RemoteAddr(1, 0x100), dma.AtomicAdd), phys.Size64, 1); err == nil {
		t.Fatal("remote atomic without fabric accepted")
	}
}

func TestDeliverValidation(t *testing.T) {
	c := MustNewCluster(2, clusterCfg(), Gigabit())
	if err := c.Fabric.Deliver(5, 0, []byte{1}, 0); err == nil ||
		!strings.Contains(err.Error(), "nonexistent node") {
		t.Fatalf("bad node: %v", err)
	}
	if err := c.Fabric.Deliver(1, phys.Addr(c.Nodes[1].Mem.Size()), []byte{1}, 0); err == nil ||
		!strings.Contains(err.Error(), "overruns") {
		t.Fatalf("bad address: %v", err)
	}
	if c.Fabric.Stats().Dropped != 2 {
		t.Fatalf("dropped = %d", c.Fabric.Stats().Dropped)
	}
}

// TestFanInEightNodes: seven nodes remote-write distinct words into
// node 0 concurrently; FIFO per destination and exact delivery hold at
// the largest cluster the remote window supports.
func TestFanInEightNodes(t *testing.T) {
	c := MustNewCluster(machine.MaxNodes, clusterCfg(), Gigabit())
	const remVA = vm.VAddr(0x20000)
	const base = phys.Addr(0x80000)
	const wordsEach = 4
	var writers []*proc.Process
	for i := 1; i < machine.MaxNodes; i++ {
		i := i
		p := c.Nodes[i].NewProcess("writer", func(ctx *proc.Context) error {
			for k := 0; k < wordsEach; k++ {
				off := vm.VAddr((i*wordsEach + k) * 8)
				if err := ctx.Store(remVA+off, phys.Size64, uint64(i)<<32|uint64(k)); err != nil {
					return err
				}
				if err := ctx.MB(); err != nil {
					return err
				}
			}
			return nil
		})
		if err := c.Nodes[i].Kernel.MapRemote(p, remVA, 0, base); err != nil {
			t.Fatal(err)
		}
		writers = append(writers, p)
	}
	if err := c.RunRoundRobin(2, 1_000_000); err != nil {
		t.Fatal(err)
	}
	for _, p := range writers {
		if p.Err() != nil {
			t.Fatal(p.Err())
		}
	}
	c.Settle()
	for i := 1; i < machine.MaxNodes; i++ {
		for k := 0; k < wordsEach; k++ {
			addr := base + phys.Addr((i*wordsEach+k)*8)
			v, err := c.Nodes[0].Mem.Read(addr, phys.Size64)
			if err != nil {
				t.Fatal(err)
			}
			if v != uint64(i)<<32|uint64(k) {
				t.Fatalf("node %d word %d = %#x", i, k, v)
			}
		}
	}
	if got := c.Fabric.Stats().Messages; got != uint64((machine.MaxNodes-1)*wordsEach) {
		t.Fatalf("fabric messages = %d", got)
	}
}

func TestRunPolicyCountMismatch(t *testing.T) {
	c := MustNewCluster(2, clusterCfg(), Gigabit())
	if err := c.Run([]proc.Policy{proc.NewRoundRobin(1)}, 10); err == nil {
		t.Fatal("policy count mismatch accepted")
	}
}

func TestClusterSlotBudget(t *testing.T) {
	c := MustNewCluster(1, clusterCfg(), Gigabit())
	c.Nodes[0].NewProcess("spin", func(ctx *proc.Context) error {
		for {
			ctx.Spin(1)
		}
	})
	if err := c.RunRoundRobin(1, 100); err == nil {
		t.Fatal("budget exhaustion not reported")
	}
	c.Nodes[0].Runner.Shutdown()
}

func TestLinkPresets(t *testing.T) {
	if Gigabit().Bandwidth <= ATM155().Bandwidth {
		t.Fatal("gigabit should be faster than ATM")
	}
	if ATM155().Latency == 0 || Gigabit().Latency == 0 {
		t.Fatal("links need nonzero latency")
	}
}
