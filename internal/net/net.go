// Package net is the cluster substrate: it connects several machine
// instances into a Network of Workstations (the paper's deployment
// context) with a point-to-point fabric modelled after the Telegraphos
// switch — fixed per-hop latency plus serialization at link bandwidth.
//
// Every node's DMA engine hands remote payloads (whole DMA transfers or
// single-word remote writes) to the Fabric, which schedules delivery
// into the destination node's physical memory on the cluster's shared
// event queue. All nodes share one simulated clock, so causality across
// nodes is exact: a receiver polling its memory sees a flag no earlier
// than initiation + transfer + link time.
package net

import (
	"fmt"

	"uldma/internal/dma"
	"uldma/internal/machine"
	"uldma/internal/obs"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/sim"
)

// LinkConfig models one hop of the interconnect.
type LinkConfig struct {
	// Latency is the fixed per-message delay (switching + wire).
	Latency sim.Time
	// Bandwidth is the serialization rate in bytes/second.
	Bandwidth uint64
}

// Gigabit returns a mid-90s "Gigabit LAN" link: ~1 µs switch latency,
// 1 Gbit/s serialization — the class of network whose rise motivates
// the paper.
func Gigabit() LinkConfig {
	return LinkConfig{Latency: sim.Microsecond, Bandwidth: 125_000_000}
}

// ATM155 returns the paper's "common today" comparison point: a 155
// Mbit/s ATM link.
func ATM155() LinkConfig {
	return LinkConfig{Latency: 10 * sim.Microsecond, Bandwidth: 19_375_000}
}

// FabricStats counts fabric traffic. The last four counters are only
// ever advanced by an attached fault plane (SetFaultPlane); on a
// fault-free fabric Delivered is the only one that moves.
//
// FabricStats is a read-only compatibility view over the fabric's obs
// counter cells (see internal/obs); the storage lives in counters and
// participates in the cluster-wide metrics registry.
type FabricStats struct {
	Messages  uint64
	Bytes     uint64
	Dropped   uint64 // deliveries refused (bad node or address)
	RemoteMax int    // highest node id addressed

	Delivered    uint64 // payloads that actually landed in a node's memory
	FaultDropped uint64 // payloads the fault plane swallowed
	Duplicated   uint64 // extra copies the fault plane injected
	Reordered    uint64 // copies released from the per-destination FIFO
}

// counters is the fabric's live metric storage, copied by value into
// cluster snapshots so it rewinds with the world.
type counters struct {
	messages     obs.Counter
	bytes        obs.Counter
	dropped      obs.Counter
	remoteMax    obs.Gauge // highest node id addressed (Max semantics)
	delivered    obs.Counter
	faultDropped obs.Counter
	duplicated   obs.Counter
	reordered    obs.Counter
}

// Arrival describes one delivered copy of a faulted message: an extra
// delay on top of the fault-free arrival time, and whether the copy is
// released from the per-destination FIFO order (so it may overtake
// earlier traffic into the same node).
type Arrival struct {
	Delay     sim.Time
	Unordered bool
}

// Verdict is a fault plane's ruling on one message: how many copies
// arrive (0 = dropped, 1 = normal, 2 = duplicated) and how each copy
// travels. The fixed-size array keeps judging allocation-free on the
// delivery hot path.
type Verdict struct {
	Copies [2]Arrival
	N      int
}

// FaultPlane interposes on the fabric's delivery path. Judge is called
// once per remote payload at send time with the source and destination
// node ids and the simulated send instant; it must be deterministic
// (any randomness seeded, never host state) because the fabric replays
// byte-identically from a seed. Snapshot/RestoreState capture whatever
// the plane needs (RNG position, per-link counters) so net.Cluster
// snapshots can rewind the plane along with the nodes.
//
// Remote atomics (RMWRemote) are deliberately NOT judged: they model
// Telegraphos' synchronous locked transactions, which either complete
// or fail visibly at the issuing CPU — they are the reliable control
// channel the recovery protocols in internal/msg and internal/coll
// stand on.
type FaultPlane interface {
	Judge(src, dst int, at sim.Time) Verdict
	SnapshotState() any
	RestoreState(state any) error
}

// Cluster is a set of machines on a shared clock, connected by a
// Fabric.
type Cluster struct {
	Clock  *sim.Clock
	Events *sim.EventQueue
	Nodes  []*machine.Machine
	Fabric *Fabric
	// Obs is the cluster-level metrics registry: the fabric's traffic
	// counters under "net.*". Per-node counters live in each node's own
	// registry (Nodes[i].Obs).
	Obs *obs.Registry
	// Tracer is the cluster-wide trace spine shared by every node and
	// the fabric; nil until EnableTrace.
	Tracer *obs.Trace
}

// NewCluster builds n nodes from cfg and wires their engines to a
// shared fabric. n must fit the machine's remote window.
func NewCluster(n int, cfg machine.Config, link LinkConfig) (*Cluster, error) {
	if n < 1 || n > machine.MaxNodes {
		return nil, fmt.Errorf("net: cluster size %d out of range 1..%d", n, machine.MaxNodes)
	}
	if link.Bandwidth == 0 {
		return nil, fmt.Errorf("net: zero link bandwidth")
	}
	clock := sim.NewClock()
	// One shared queue serves every node: size it for the whole cluster
	// (per-node completions plus in-flight fabric packets).
	events := sim.NewEventQueueSize(n * machine.EventQueueHint)
	c := &Cluster{Clock: clock, Events: events}
	c.Fabric = &Fabric{cluster: c, link: link}
	c.Obs = obs.NewRegistry()
	c.Fabric.RegisterMetrics(c.Obs)
	for i := 0; i < n; i++ {
		m, err := machine.NewWithClock(cfg, clock, events)
		if err != nil {
			return nil, fmt.Errorf("net: node %d: %w", i, err)
		}
		m.NodeID = i
		m.Engine.SetRemoteHandler(&nodePort{fabric: c.Fabric, src: i})
		c.Nodes = append(c.Nodes, m)
	}
	return c, nil
}

// MustNewCluster is NewCluster that panics on error.
func MustNewCluster(n int, cfg machine.Config, link LinkConfig) *Cluster {
	c, err := NewCluster(n, cfg, link)
	if err != nil {
		panic(err)
	}
	return c
}

// EnableTrace turns on the structured trace spine cluster-wide: ONE
// shared trace (max <= 0 means obs.DefaultTraceCap) attached to every
// node's bus/scheduler/kernel and to the fabric, so syscalls, bus
// transactions, DMA windows, link deliveries and fault verdicts from
// all nodes interleave on one timeline. Returns the trace for export.
func (c *Cluster) EnableTrace(max int, policy obs.Policy) *obs.Trace {
	tr := obs.NewTrace(max, policy)
	c.AttachTracer(tr)
	return tr
}

// AttachTracer attaches an existing trace to every node and the
// fabric, or detaches with nil.
func (c *Cluster) AttachTracer(tr *obs.Trace) {
	c.Tracer = tr
	for _, m := range c.Nodes {
		m.AttachTracer(tr)
	}
	c.Fabric.SetTracer(tr)
}

// Run interleaves every node's scheduler, one instruction slot per node
// per round, until all processes on all nodes finish or the slot budget
// runs out. Per-node policies keep each node's scheduling independent.
func (c *Cluster) Run(policies []proc.Policy, maxSlots uint64) error {
	if len(policies) != len(c.Nodes) {
		return fmt.Errorf("net: %d policies for %d nodes", len(policies), len(c.Nodes))
	}
	granted := uint64(0)
	for {
		progress := false
		for i, m := range c.Nodes {
			if granted >= maxSlots {
				return fmt.Errorf("net: cluster slot budget (%d) exhausted", maxSlots)
			}
			if m.Runner.StepPolicy(policies[i]) {
				progress = true
				granted++
			}
		}
		if !progress {
			// No node has a runnable process. If any process is merely
			// blocked, advance shared idle time to the earliest wakeup
			// or pending event; otherwise everything finished.
			earliest := sim.Never
			blocked := false
			for _, m := range c.Nodes {
				if t, ok := m.Runner.EarliestWakeup(); ok {
					blocked = true
					if t < earliest {
						earliest = t
					}
				}
			}
			if !blocked {
				return nil
			}
			if next := c.Events.NextAt(); next < earliest {
				earliest = next
			}
			if earliest == sim.Never {
				return proc.ErrDeadlock
			}
			c.Clock.AdvanceTo(earliest)
			c.Events.RunUntil(c.Clock.Now())
		}
	}
}

// RunRoundRobin runs every node under a quantum-q round-robin policy.
func (c *Cluster) RunRoundRobin(q int, maxSlots uint64) error {
	policies := make([]proc.Policy, len(c.Nodes))
	for i := range policies {
		policies[i] = proc.NewRoundRobin(q)
	}
	return c.Run(policies, maxSlots)
}

// Settle fires all outstanding events (in-flight transfers and
// deliveries) and advances the shared clock past the last one.
func (c *Cluster) Settle() sim.Time {
	t := c.Events.Drain(c.Clock.Now())
	c.Clock.AdvanceTo(t)
	return c.Clock.Now()
}

// Fabric is the interconnect: it implements dma.RemoteHandler for every
// node's engine. Delivery into one node is FIFO: a message cannot
// overtake an earlier message to the same node (the wire serializes).
type Fabric struct {
	cluster  *Cluster
	link     LinkConfig
	lastInto map[int]sim.Time // per-destination FIFO point
	ctr      counters
	plane    FaultPlane
	free     []*delivery // pooled in-flight payload records
	tr       *obs.Trace  // nil = tracing disabled
}

// Stats returns a snapshot of the counters.
func (f *Fabric) Stats() FabricStats {
	return FabricStats{
		Messages:     f.ctr.messages.Value(),
		Bytes:        f.ctr.bytes.Value(),
		Dropped:      f.ctr.dropped.Value(),
		RemoteMax:    int(f.ctr.remoteMax.Value()),
		Delivered:    f.ctr.delivered.Value(),
		FaultDropped: f.ctr.faultDropped.Value(),
		Duplicated:   f.ctr.duplicated.Value(),
		Reordered:    f.ctr.reordered.Value(),
	}
}

// RegisterMetrics registers the fabric's counters with the cluster-wide
// registry.
func (f *Fabric) RegisterMetrics(r *obs.Registry) {
	r.RegisterCounter("net.messages", &f.ctr.messages)
	r.RegisterCounter("net.bytes", &f.ctr.bytes)
	r.RegisterCounter("net.dropped", &f.ctr.dropped)
	r.RegisterGauge("net.remote_max", &f.ctr.remoteMax)
	r.RegisterCounter("net.delivered", &f.ctr.delivered)
	r.RegisterCounter("net.fault_dropped", &f.ctr.faultDropped)
	r.RegisterCounter("net.duplicated", &f.ctr.duplicated)
	r.RegisterCounter("net.reordered", &f.ctr.reordered)
}

// SetTracer attaches (or detaches, with nil) the structured trace
// spine. Enabled, every remote payload emits a CatLink span from send
// to landing, and every fault-plane verdict that changes the delivery
// emits a CatFault instant.
func (f *Fabric) SetTracer(t *obs.Trace) { f.tr = t }

// SetFaultPlane attaches (or, with nil, detaches) a fault plane. With
// no plane — or a plane whose Judge always returns the identity verdict
// {N: 1, Copies[0]: {0, false}} — the fabric's behaviour is bit-for-bit
// identical to a fabric without the hook: same arrival times, same
// event-queue scheduling order. The fault path is pay-for-what-you-use.
func (f *Fabric) SetFaultPlane(p FaultPlane) { f.plane = p }

// FaultPlane returns the attached plane (nil when none) so cluster
// snapshots can capture and rewind its state.
func (f *Fabric) FaultPlane() FaultPlane { return f.plane }

// nodePort is the per-node face of the fabric: each node's DMA engine
// gets its own port so the fabric learns the SOURCE of every payload
// (dma.RemoteHandler only names the destination). Per-link fault plans
// and per-link scripts need it.
type nodePort struct {
	fabric *Fabric
	src    int
}

func (p *nodePort) Deliver(node int, addr phys.Addr, data []byte, at sim.Time) error {
	return p.fabric.deliver(p.src, node, addr, data, at)
}

func (p *nodePort) RMWRemote(node int, addr phys.Addr, op int, size phys.AccessSize, val uint64) (uint64, error) {
	return p.fabric.RMWRemote(node, addr, op, size, val)
}

// delivery is one in-flight payload. Records are pooled on the fabric
// and reused once the payload lands, so the steady-state delivery path
// does not allocate: the fire closure is built once per record and
// captures only the record itself.
type delivery struct {
	f    *Fabric
	node int
	addr phys.Addr
	buf  []byte
	fire func(sim.Time)
}

func (f *Fabric) getDelivery() *delivery {
	if n := len(f.free); n > 0 {
		d := f.free[n-1]
		f.free = f.free[:n-1]
		return d
	}
	d := &delivery{f: f}
	d.fire = func(sim.Time) { d.f.land(d) }
	return d
}

// land writes an arrived payload into the destination's memory and
// returns the record to the pool. Memory size was checked at send time;
// a failure here is a model bug.
func (f *Fabric) land(d *delivery) {
	dst := f.cluster.Nodes[d.node]
	if err := dst.Mem.WriteBytes(d.addr, d.buf); err != nil {
		panic(err)
	}
	f.ctr.delivered.Inc()
	// Receive interrupt: wake any process sleeping on this range.
	dst.Kernel.NotifyRemoteWrite(d.addr, len(d.buf))
	d.buf = d.buf[:0]
	f.free = append(f.free, d)
}

// enqueue schedules one copy for arrival at `arrive`. Ordered copies
// respect the per-destination FIFO floor (and raise it); unordered
// copies — a fault plane's reordered duplicates — skip the floor, so
// they may overtake earlier traffic into the same node.
func (f *Fabric) enqueue(node int, addr phys.Addr, data []byte, arrive sim.Time, ordered bool) {
	if ordered {
		if f.lastInto == nil {
			f.lastInto = make(map[int]sim.Time)
		}
		if prev := f.lastInto[node]; arrive < prev {
			arrive = prev // FIFO: no overtaking into the same node
		}
		f.lastInto[node] = arrive
	}
	d := f.getDelivery()
	d.node, d.addr = node, addr
	d.buf = append(d.buf[:0], data...)
	// Fire-and-forget: arrival events are never cancelled, so use the
	// queue's pooled no-handle path.
	f.cluster.Events.ScheduleFunc(arrive, d.fire)
}

// RMWRemote implements dma.RemoteAtomicHandler: an atomic operation on
// another node's memory. The issuing CPU stalls for the full round trip
// (request latency + operation + reply latency), accounted on the
// shared clock here.
func (f *Fabric) RMWRemote(node int, addr phys.Addr, op int, size phys.AccessSize, val uint64) (uint64, error) {
	if node < 0 || node >= len(f.cluster.Nodes) {
		f.ctr.dropped.Inc()
		return 0, fmt.Errorf("net: remote atomic to nonexistent node %d", node)
	}
	// Request travels, the remote engine applies the operation, the
	// reply travels back.
	f.cluster.Clock.Advance(2 * f.link.Latency)
	f.ctr.messages.Add(2)
	f.ctr.bytes.Add(16) // request + reply words
	old, err := dma.ApplyAtomic(f.cluster.Nodes[node].Mem, addr, op, size, val)
	if err != nil {
		f.ctr.dropped.Inc()
		return 0, err
	}
	return old, nil
}

// Deliver implements dma.RemoteHandler: the payload arrives in the
// destination node's memory after link latency plus serialization.
//
// Tie-break rule: when two messages compute the SAME arrival tick for
// the same node (e.g. two zero-length remote writes issued back to
// back, or a FIFO floor that lifts a later message onto an earlier
// one's arrival time), they land in the order their arrival events were
// scheduled — the shared event queue breaks equal-time ties by schedule
// sequence, i.e. fabric issue order. Combined with the per-destination
// FIFO floor this makes delivery order into any one node a pure
// function of issue order, pinned by TestSameTickDeliveryOrder.
//
// Deliver is the source-anonymous entry point (src = -1, used by tests
// that poke the fabric directly); engine traffic arrives through each
// node's nodePort, which stamps the true source for per-link faults.
func (f *Fabric) Deliver(node int, addr phys.Addr, data []byte, at sim.Time) error {
	return f.deliver(-1, node, addr, data, at)
}

func (f *Fabric) deliver(src, node int, addr phys.Addr, data []byte, at sim.Time) error {
	if node < 0 || node >= len(f.cluster.Nodes) {
		f.ctr.dropped.Inc()
		return fmt.Errorf("net: delivery to nonexistent node %d", node)
	}
	dst := f.cluster.Nodes[node]
	if uint64(addr)+uint64(len(data)) > uint64(dst.Mem.Size()) {
		f.ctr.dropped.Inc()
		return fmt.Errorf("net: delivery to node %d at %v overruns its memory", node, addr)
	}
	f.ctr.messages.Inc()
	f.ctr.bytes.Add(uint64(len(data)))
	f.ctr.remoteMax.Max(int64(node))
	arrive := at + f.link.Latency +
		sim.Time(uint64(len(data))*uint64(sim.Second)/f.link.Bandwidth)
	if f.plane == nil {
		if f.tr != nil {
			f.tr.Span(at, arrive-at, obs.CatLink, "deliver",
				int32(node), -1, uint64(addr), uint64(len(data)), uint64(int64(src)))
		}
		f.enqueue(node, addr, data, arrive, true)
		return nil
	}
	v := f.plane.Judge(src, node, at)
	if v.N <= 0 {
		f.ctr.faultDropped.Inc()
		if f.tr != nil {
			f.tr.Instant(at, obs.CatFault, "drop",
				int32(node), -1, uint64(addr), uint64(len(data)), uint64(int64(src)))
		}
		return nil
	}
	if v.N > len(v.Copies) {
		v.N = len(v.Copies)
	}
	if v.N > 1 {
		f.ctr.duplicated.Add(uint64(v.N - 1))
		if f.tr != nil {
			f.tr.Instant(at, obs.CatFault, "dup",
				int32(node), -1, uint64(addr), uint64(v.N), uint64(int64(src)))
		}
	}
	for i := 0; i < v.N; i++ {
		a := v.Copies[i]
		if a.Unordered {
			f.ctr.reordered.Inc()
			if f.tr != nil {
				f.tr.Instant(at, obs.CatFault, "reorder",
					int32(node), -1, uint64(addr), uint64(a.Delay), uint64(int64(src)))
			}
		}
		if f.tr != nil {
			f.tr.Span(at, arrive+a.Delay-at, obs.CatLink, "deliver",
				int32(node), -1, uint64(addr), uint64(len(data)), uint64(int64(src)))
		}
		f.enqueue(node, addr, data, arrive+a.Delay, !a.Unordered)
	}
	return nil
}
