package net

// Cluster snapshot/restore: the multi-node analogue of
// machine.Snapshot. A quiescent cluster (every process Done on every
// node, the shared event queue drained) is captured as the per-node
// machine snapshots plus the fabric's own state — FIFO floors, traffic
// counters, and the attached fault plane's opaque state (RNG position,
// per-link counters) — so template pooling works for cluster
// experiments too: warm one cluster, snapshot, and rewind between
// cells instead of rebuilding N machines.
//
// The engine-side wrinkle: dma.Engine.Snapshot refuses while a remote
// handler is attached (in-flight link traffic lives outside one
// machine). The cluster snapshot settles first — so nothing is in
// flight — then detaches each node's port around the per-machine
// snapshot and reattaches it. Restore rewinds the fabric alongside the
// nodes, so a post-restore run replays byte-identically, faults and
// all (TestClusterSnapshotRestoreFidelity).

import (
	"fmt"

	"uldma/internal/machine"
	"uldma/internal/sim"
)

// ClusterSnapshot is a complete quiescent-cluster state.
type ClusterSnapshot struct {
	nodes    []*machine.Snapshot
	lastInto map[int]sim.Time
	ctr      counters
	plane    any // fault-plane state; nil when no plane was attached
}

// Snapshot settles the cluster and captures it. It fails if any node
// cannot be quiesced (a process still live — see machine.Snapshot).
func (c *Cluster) Snapshot() (*ClusterSnapshot, error) {
	c.Settle()
	s := &ClusterSnapshot{ctr: c.Fabric.ctr}
	if len(c.Fabric.lastInto) > 0 {
		s.lastInto = make(map[int]sim.Time, len(c.Fabric.lastInto))
		for k, v := range c.Fabric.lastInto {
			s.lastInto[k] = v
		}
	}
	if p := c.Fabric.plane; p != nil {
		s.plane = p.SnapshotState()
	}
	for i, m := range c.Nodes {
		m.Engine.SetRemoteHandler(nil)
		ms, err := m.Snapshot()
		m.Engine.SetRemoteHandler(&nodePort{fabric: c.Fabric, src: i})
		if err != nil {
			return nil, fmt.Errorf("net: snapshot node %d: %w", i, err)
		}
		s.nodes = append(s.nodes, ms)
	}
	return s, nil
}

// Restore rewinds the cluster in place to a snapshot taken from it:
// every node is machine-restored (post-snapshot processes discarded),
// and the fabric's FIFO floors, counters and fault-plane state are
// rewound with them. The snapshot must come from this cluster (machine
// restore matches process records by identity).
func (c *Cluster) Restore(s *ClusterSnapshot) error {
	if len(s.nodes) != len(c.Nodes) {
		return fmt.Errorf("net: restore: snapshot has %d nodes, cluster has %d", len(s.nodes), len(c.Nodes))
	}
	c.Settle()
	for i, m := range c.Nodes {
		if err := m.Restore(s.nodes[i]); err != nil {
			return fmt.Errorf("net: restore node %d: %w", i, err)
		}
	}
	c.Fabric.ctr = s.ctr
	c.Fabric.lastInto = nil
	if len(s.lastInto) > 0 {
		c.Fabric.lastInto = make(map[int]sim.Time, len(s.lastInto))
		for k, v := range s.lastInto {
			c.Fabric.lastInto[k] = v
		}
	}
	if p := c.Fabric.plane; p != nil && s.plane != nil {
		if err := p.RestoreState(s.plane); err != nil {
			return fmt.Errorf("net: restore fault plane: %w", err)
		}
	}
	return nil
}