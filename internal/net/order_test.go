package net

import (
	"bytes"
	"testing"

	"uldma/internal/phys"
)

// TestSameTickDeliveryOrder pins the fabric's tie-break rule (see
// Fabric.Deliver): when two messages into the same node compute the
// SAME arrival tick, they land in fabric issue order — the shared event
// queue breaks equal-time ties by schedule sequence. The test makes
// both messages target the same byte, so whichever lands second is
// visible afterwards.
func TestSameTickDeliveryOrder(t *testing.T) {
	const addr = phys.Addr(0x80000)
	land := func(payloads ...[]byte) byte {
		t.Helper()
		c := MustNewCluster(2, clusterCfg(), Gigabit())
		for _, p := range payloads {
			// Same send instant + same length = same computed arrival.
			if err := c.Fabric.Deliver(1, addr, p, 0); err != nil {
				t.Fatal(err)
			}
		}
		c.Settle()
		v, err := c.Nodes[1].Mem.Read(addr, phys.Size8)
		if err != nil {
			t.Fatal(err)
		}
		return byte(v)
	}
	if got := land([]byte{0xaa}, []byte{0xbb}); got != 0xbb {
		t.Fatalf("equal-tick deliveries landed out of issue order: final byte %#x, want 0xbb", got)
	}
	if got := land([]byte{0xbb}, []byte{0xaa}); got != 0xaa {
		t.Fatalf("equal-tick deliveries landed out of issue order: final byte %#x, want 0xaa", got)
	}

	// FIFO-floor variant: a long message followed by a short one whose
	// raw arrival would be EARLIER. The per-destination floor lifts the
	// short message onto the long one's arrival tick, and the tie then
	// resolves in issue order — the short message lands second.
	c := MustNewCluster(2, clusterCfg(), Gigabit())
	long := bytes.Repeat([]byte{0x11}, 4096)
	if err := c.Fabric.Deliver(1, addr, long, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Fabric.Deliver(1, addr, []byte{0x22}, 0); err != nil {
		t.Fatal(err)
	}
	c.Settle()
	v, err := c.Nodes[1].Mem.Read(addr, phys.Size8)
	if err != nil {
		t.Fatal(err)
	}
	if byte(v) != 0x22 {
		t.Fatalf("floor-lifted short message did not land after the long one: final byte %#x", v)
	}
}

// TestFabricDeliveryZeroAllocs pins the pooled delivery path: once the
// record pool and FIFO map are warm, shipping a payload through the
// fabric and landing it allocates nothing on the host.
func TestFabricDeliveryZeroAllocs(t *testing.T) {
	c := MustNewCluster(2, clusterCfg(), Gigabit())
	payload := bytes.Repeat([]byte{0x5a}, 64)
	ship := func() {
		if err := c.Fabric.Deliver(1, 0x80000, payload, c.Clock.Now()); err != nil {
			t.Fatal(err)
		}
		c.Settle()
	}
	for i := 0; i < 8; i++ {
		ship() // warm the delivery pool, event-queue free list, FIFO map
	}
	if avg := testing.AllocsPerRun(200, ship); avg > 0 {
		t.Fatalf("fabric delivery allocates %.2f times per payload, want 0", avg)
	}
	if c.Fabric.Stats().Delivered == 0 {
		t.Fatal("no deliveries landed")
	}
}
