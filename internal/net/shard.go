package net

// The sharded cluster engine: a conservative parallel discrete-event
// simulation of a NOW far larger than the machine-accurate Cluster can
// carry. Nodes are dealt to shards, each shard owns a sim.Shard (its
// own clock + event queue), and shards advance concurrently inside
// safe time windows granted by a conservative synchronizer whose
// lookahead is the minimum cross-shard link latency: a message sent at
// time t cannot arrive before t + lookahead, so once the globally
// earliest pending event is known, everything up to that instant plus
// the lookahead can run with no coordination at all.
//
// The load-bearing property is BYTE-DETERMINISM ACROSS LAYOUTS: the
// same (nodes, seed, workload) produces an identical run — identical
// fingerprint, totals and merged trace — at ANY shard count and ANY
// worker count. Four disciplines buy that invariance, and each is
// relied on by TestShardEquivalence/TestScaleShardParity:
//
//  1. Per-NODE random streams, split from the world seed by node ID
//     (sim.SplitSeed), never per-shard — re-partitioning must not
//     re-deal anyone's dice.
//  2. ALL inter-node messages — even between two nodes of the same
//     shard — are buffered into per-shard outboxes and exchanged only
//     at window barriers, where they are sorted by the canonical key
//     (Arrive, Src, per-source Seq) before being scheduled. Delivery
//     interleaving is therefore a pure function of message content.
//  3. The window horizon is computed from the GLOBAL earliest pending
//     event (min over every shard queue), so the window sequence — and
//     with it flush chronology — does not depend on the partition.
//  4. Model events must be node-local: an event on node n may touch
//     only n's state and send messages. Cross-node interaction happens
//     exclusively through Send, which is what makes same-instant
//     events of different nodes commute.
//
// The engine itself is event-level: nodes are modelled by callbacks,
// which is why it is not bound by machine.MaxNodes and can carry
// thousands of nodes. Those callbacks may be flat cost constants (the
// `scale` experiment) — or they may drive full machine.Machine worlds
// hosted on the shards (HostedMachines in shardmachine.go, the
// `scalemachine` experiment), in which case every delivery pays real
// TLB walks, write-buffer drains and DMA-engine FSM transitions. A
// hosted handler advances the shared shard clock while charging CPU
// time, so each machine keeps its own monotonic time floor and the
// shard clock is reset per event (sim.Shard.RunWindow).

import (
	"fmt"
	"sort"
	"sync"

	"uldma/internal/obs"
	"uldma/internal/sim"
)

// ShardedConfig sizes a sharded cluster.
type ShardedConfig struct {
	// Nodes is the cluster size. Not bounded by machine.MaxNodes: the
	// sharded engine models nodes at event level.
	Nodes int
	// Shards is the partition width. Nodes are dealt contiguously:
	// shard i owns [i*Nodes/Shards, (i+1)*Nodes/Shards).
	Shards int
	// Link is the interconnect; Link.Latency is the default lookahead.
	Link LinkConfig
	// Seed is the world seed; per-node streams are split from it.
	Seed uint64
	// QueueHint pre-sizes each shard's event queue (<= 0: a default).
	QueueHint int
	// Lookahead overrides the synchronizer lookahead. Zero selects the
	// minimum link latency (Link.Latency, or the matrix minimum when
	// Latency is set); larger values are rejected because a window wider
	// than the true minimum message delay would let a cross-shard
	// message land inside an already-running window.
	Lookahead sim.Time
	// Latency, when non-nil, gives each ordered node pair its own
	// one-way wire latency (a pure function of (src, dst): topology,
	// never state). Link.Latency is ignored for the wire when set;
	// Link.Bandwidth still serializes every egress port. Construction
	// scans the full pair matrix once to find the global minimum (the
	// synchronizer lookahead — the window formula deliberately stays
	// global so the window sequence, which is part of the fingerprint,
	// remains layout-invariant) and a per-shard-pair minimum matrix
	// used as a causality floor on every flushed message.
	Latency func(src, dst int) sim.Time
	// Adaptive opts into per-shard window horizons: instead of one
	// global bound (earliest pending event + global minimum latency),
	// each shard advances to the earliest instant any OTHER shard's
	// pending work could still influence it, computed from the metric
	// closure of the per-shard-pair latency floors. With a latency
	// matrix whose pairs are far apart, distant shards get much wider
	// windows (fewer barriers); with uniform latency it degenerates to
	// exactly the global bound. The window SEQUENCE becomes layout-
	// dependent, so same-instant deliveries are ordered by message
	// content (sim.EventQueue.SchedulePri) instead of barrier order,
	// and Windows is excluded from the fingerprint. Incompatible with
	// a fault plane: the plane's draw sequence follows barrier
	// composition, which adaptive windows make layout-dependent.
	Adaptive bool
}

// SMsg is one inter-node message in the sharded engine. It carries no
// payload bytes — the event-level model needs sizes and tags, not
// data — so sending never copies buffers.
type SMsg struct {
	Src, Dst int
	Kind     uint8  // model-defined message class
	Bytes    uint64 // modelled payload size (serialization + accounting)
	Arg      uint64 // model-defined tag (e.g. RPC sequence number)
	Sent     sim.Time
	Arrive   sim.Time
	// Seq is the per-SOURCE send sequence number. (Arrive, Src, Seq)
	// is the canonical flush sort key: strictly total (Seq is unique
	// per source) and computed from message content only, so barrier
	// scheduling order cannot depend on shard layout.
	Seq uint64
}

// SDeliver is the model's receive hook, invoked on the destination
// node's shard when a message lands. It must follow the node-local
// rule: touch only Dst's state, and interact with other nodes only
// via Send/At.
type SDeliver func(m SMsg, now sim.Time)

// ShardState lets a model participate in Snapshot/Restore: whatever it
// returns from SnapshotState is handed back to RestoreState. Same
// contract as the fault-plane hook on the machine-accurate cluster.
type ShardState interface {
	SnapshotState() any
	RestoreState(state any) error
}

// shardCtr is one shard's private traffic counters. Each shard's cells
// are touched only by that shard's goroutine during windows (delivered,
// bytes on the destination; sent on the source) and read only at
// barriers, so they need no atomics.
type shardCtr struct {
	sent      obs.Counter
	delivered obs.Counter
	bytes     obs.Counter
}

// sdelivery is one in-flight flushed message: a pooled record whose
// fire closure is built once. Records are taken from the destination
// shard's free list by the coordinator during flush and returned by
// the destination shard's goroutine when they land — safe without
// locks because coordinator and shard phases strictly alternate.
type sdelivery struct {
	c     *ShardedCluster
	shard int // destination shard (owner of the pool slot)
	m     SMsg
	fire  func(sim.Time)
}

// ShardedTotals is a cluster-wide roll-up of the per-shard counters,
// taken at a barrier (or after Run returns).
type ShardedTotals struct {
	Sent      uint64   // messages sent
	Delivered uint64   // messages landed
	Bytes     uint64   // payload bytes landed
	Events    uint64   // events fired across all shards
	Windows   uint64   // synchronizer windows executed
	Finish    sim.Time // latest shard clock
}

// ShardedCluster is the sharded engine instance.
type ShardedCluster struct {
	cfg       ShardedConfig
	lookahead sim.Time

	shards    []*sim.Shard
	nodeShard []int32 // node -> owning shard
	first     []int   // shard -> first owned node (len Shards+1)

	// Per-node state. Entries are touched only by the owning shard.
	rng    []sim.Rand // split per-node streams
	egress []sim.Time // per-source NIC serialization point
	eseq   []uint64   // per-source send sequence

	// Per-shard state.
	outbox [][]SMsg       // messages sent during the shard's window
	free   [][]*sdelivery // pooled delivery records, per dst shard
	ctr    []shardCtr
	traces []*obs.Trace // nil until EnableTrace

	pending []SMsg // flush scratch: gathered + sorted outboxes

	deliver SDeliver
	state   ShardState // optional model snapshot hook

	// plane is the optional fault injector on cross-shard links. Every
	// flushed message is judged exactly once, in the canonical
	// (Arrive, Src, Seq) order, on the coordinator — the flushed set per
	// barrier and its sort are layout-invariant, so the injector's draw
	// sequence (and therefore any (plan, seed) replay) is byte-identical
	// at every shard and worker count.
	plane      FaultPlane
	faultDrops uint64 // messages the plane deleted
	faultDups  uint64 // extra copies the plane injected

	// pairMin[i][j] is the minimum wire latency from any node of shard i
	// to any node of shard j (nil when ShardedConfig.Latency is unset —
	// then every pair floors at Link.Latency). latMin/latMax bound the
	// whole matrix; latMin is the synchronizer lookahead default.
	pairMin        [][]sim.Time
	latMin, latMax sim.Time

	// cfloor (adaptive mode only) is the metric closure of the
	// shard-pair floors: cfloor[j][i] bounds from below the latency of
	// ANY causal chain from a pending event on shard j to an arrival on
	// shard i, over any number of intermediate hops. cfloor[i][i] is the
	// cheapest round trip (or the intra-shard pair floor), never zero.
	cfloor [][]sim.Time

	horizons    []sim.Time // per-shard inclusive window bounds (all equal unless Adaptive)
	lastHorizon sim.Time   // causality floor for flushed arrivals
	lastH       []sim.Time // adaptive: per-shard exclusive causality floors
	windows     uint64
}

// NewShardedCluster validates cfg and builds the world. The model must
// then install a receive hook with SetDeliver and prime initial events
// with At before calling Run.
func NewShardedCluster(cfg ShardedConfig) (*ShardedCluster, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("net: sharded cluster needs at least 1 node, got %d", cfg.Nodes)
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("net: sharded cluster needs at least 1 shard, got %d", cfg.Shards)
	}
	if cfg.Shards > cfg.Nodes {
		return nil, fmt.Errorf("net: %d shards for %d nodes — a shard must own at least one node", cfg.Shards, cfg.Nodes)
	}
	if cfg.Link.Bandwidth == 0 {
		return nil, fmt.Errorf("net: zero link bandwidth")
	}
	if cfg.Link.Latency <= 0 {
		return nil, fmt.Errorf("net: sharded cluster needs positive link latency (it is the synchronizer lookahead)")
	}
	hint := cfg.QueueHint
	if hint <= 0 {
		hint = 256
	}
	c := &ShardedCluster{
		cfg:       cfg,
		shards:    make([]*sim.Shard, cfg.Shards),
		nodeShard: make([]int32, cfg.Nodes),
		first:     make([]int, cfg.Shards+1),
		rng:       make([]sim.Rand, cfg.Nodes),
		egress:    make([]sim.Time, cfg.Nodes),
		eseq:      make([]uint64, cfg.Nodes),
		outbox:    make([][]SMsg, cfg.Shards),
		free:      make([][]*sdelivery, cfg.Shards),
		ctr:       make([]shardCtr, cfg.Shards),
		horizons:  make([]sim.Time, cfg.Shards),
	}
	for s := 0; s < cfg.Shards; s++ {
		c.shards[s] = sim.NewShard(s, hint)
		c.first[s] = s * cfg.Nodes / cfg.Shards
	}
	c.first[cfg.Shards] = cfg.Nodes
	for s := 0; s < cfg.Shards; s++ {
		for n := c.first[s]; n < c.first[s+1]; n++ {
			c.nodeShard[n] = int32(s)
		}
	}
	for n := 0; n < cfg.Nodes; n++ {
		c.rng[n].SetState(sim.SplitSeed(cfg.Seed, uint64(n)))
	}
	c.latMin, c.latMax = cfg.Link.Latency, cfg.Link.Latency
	if cfg.Latency != nil {
		// One full pair scan at construction: the global minimum becomes
		// the lookahead, the per-shard-pair minima become flush-time
		// causality floors. The scan is O(nodes²) of a pure function —
		// amortized over the whole run, and the only place the matrix is
		// ever materialized (flush keeps just the Shards×Shards minima).
		c.pairMin = make([][]sim.Time, cfg.Shards)
		for i := range c.pairMin {
			row := make([]sim.Time, cfg.Shards)
			for j := range row {
				row[j] = sim.Never
			}
			c.pairMin[i] = row
		}
		c.latMin, c.latMax = sim.Never, 0
		for s := 0; s < cfg.Nodes; s++ {
			row := c.pairMin[c.nodeShard[s]]
			for d := 0; d < cfg.Nodes; d++ {
				if d == s {
					continue
				}
				l := cfg.Latency(s, d)
				if l <= 0 {
					return nil, fmt.Errorf("net: latency matrix gives %v for pair (%d,%d); every wire latency must be positive", l, s, d)
				}
				if ds := c.nodeShard[d]; l < row[ds] {
					row[ds] = l
				}
				if l < c.latMin {
					c.latMin = l
				}
				if l > c.latMax {
					c.latMax = l
				}
			}
		}
		if c.latMin == sim.Never {
			// A single-node world has no pairs; fall back to the link.
			c.latMin, c.latMax = cfg.Link.Latency, cfg.Link.Latency
		}
	}
	la := cfg.Lookahead
	if la == 0 {
		la = c.latMin
	}
	if la < 0 || la > c.latMin {
		return nil, fmt.Errorf("net: lookahead %v exceeds minimum link latency %v", la, c.latMin)
	}
	c.lookahead = la
	if cfg.Adaptive {
		// Metric closure of the shard-pair floors (Floyd–Warshall over
		// Shards² entries, run once). The direct floor is pairMin when a
		// latency matrix is set (diagonal = intra-shard pair minimum,
		// Never for a single-node shard with no intra pairs) and the
		// uniform link latency otherwise.
		n := cfg.Shards
		c.cfloor = make([][]sim.Time, n)
		for i := range c.cfloor {
			row := make([]sim.Time, n)
			for j := range row {
				if c.pairMin != nil {
					row[j] = c.pairMin[i][j]
				} else {
					row[j] = cfg.Link.Latency
				}
			}
			c.cfloor[i] = row
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				if c.cfloor[i][k] == sim.Never {
					continue
				}
				for j := 0; j < n; j++ {
					if c.cfloor[k][j] == sim.Never {
						continue
					}
					if via := c.cfloor[i][k] + c.cfloor[k][j]; via < c.cfloor[i][j] {
						c.cfloor[i][j] = via
					}
				}
			}
		}
		c.lastH = make([]sim.Time, n)
	}
	return c, nil
}

// Config returns the configuration the cluster was built with.
func (c *ShardedCluster) Config() ShardedConfig { return c.cfg }

// Lookahead returns the synchronizer lookahead in effect.
func (c *ShardedCluster) Lookahead() sim.Time { return c.lookahead }

// LatencyBounds returns the minimum and maximum one-way wire latency
// over all ordered node pairs (equal to Link.Latency twice when no
// latency matrix is configured).
func (c *ShardedCluster) LatencyBounds() (min, max sim.Time) { return c.latMin, c.latMax }

// ShardPairFloor returns the causality floor for messages from shard i
// to shard j: the minimum wire latency over the owned node pairs.
func (c *ShardedCluster) ShardPairFloor(i, j int) sim.Time {
	if c.pairMin == nil {
		return c.cfg.Link.Latency
	}
	return c.pairMin[i][j]
}

// SetFaultPlane attaches a fault injector to the cluster's links. Every
// message is judged once at outbox flush, in canonical order, on the
// coordinator — see the plane field for why that replays byte-
// identically at every layout. Install before Run; a nil plane (or one
// whose plan is empty — fault.Injector short-circuits to one clean
// copy before drawing) leaves the run bit-for-bit unchanged.
func (c *ShardedCluster) SetFaultPlane(p FaultPlane) { c.plane = p }

// FaultStats reports how many messages the fault plane deleted and how
// many extra copies it injected (both zero when no plane is attached).
func (c *ShardedCluster) FaultStats() (drops, dups uint64) { return c.faultDrops, c.faultDups }

// ShardOf returns the shard owning node n.
func (c *ShardedCluster) ShardOf(n int) int { return int(c.nodeShard[n]) }

// Rand returns node n's private random stream. Split per node from the
// world seed, so it is identical under every shard layout. Must only
// be used from node n's own events (or before Run).
func (c *ShardedCluster) Rand(n int) *sim.Rand { return &c.rng[n] }

// Now returns the clock of the shard owning node n — the only notion
// of "current time" a node-local event may consult.
func (c *ShardedCluster) Now(n int) sim.Time { return c.shards[c.nodeShard[n]].Clock.Now() }

// NodeEnv returns the clock and event queue of the shard owning node n
// — what machine.NewHosted / NewFromSnapshotHosted mount a shard-hosted
// machine on. Anything scheduled on the queue must follow the
// node-local rule: touch only node n's state.
func (c *ShardedCluster) NodeEnv(n int) (*sim.Clock, *sim.EventQueue) {
	s := c.shards[c.nodeShard[n]]
	return s.Clock, s.Events
}

// SetDeliver installs the model's receive hook.
func (c *ShardedCluster) SetDeliver(fn SDeliver) { c.deliver = fn }

// SetStateHook installs the model's snapshot/restore participant.
func (c *ShardedCluster) SetStateHook(h ShardState) { c.state = h }

// At schedules a node-local model event for node n at time at, on n's
// shard queue. Call only from n's own events (or from the coordinator
// before Run / between windows): the fn will run on n's shard and must
// follow the node-local rule.
func (c *ShardedCluster) At(n int, at sim.Time, fn func(now sim.Time)) {
	c.shards[c.nodeShard[n]].Events.ScheduleFunc(at, fn)
}

// Send transmits an event-level message from src to dst. The source
// NIC serializes: a message occupies src's egress port for its
// serialization time, so back-to-back sends queue behind each other
// (the per-SOURCE analogue of the machine fabric's wire model). The
// arrival lands no earlier than departure + link latency, which is
// what the synchronizer's lookahead guarantee rests on.
//
// Send must be called from src's own events (or before Run). The
// message is buffered in the executing shard's outbox and scheduled at
// the next barrier — even when dst shares src's shard, so that
// delivery interleaving is identical under every layout.
func (c *ShardedCluster) Send(src, dst int, kind uint8, bytes, arg uint64, now sim.Time) {
	dep := now
	if c.egress[src] > dep {
		dep = c.egress[src]
	}
	dep += sim.Time(bytes * uint64(sim.Second) / c.cfg.Link.Bandwidth)
	c.egress[src] = dep
	c.eseq[src]++
	lat := c.cfg.Link.Latency
	if c.cfg.Latency != nil {
		lat = c.cfg.Latency(src, dst)
	}
	sh := c.nodeShard[src]
	c.ctr[sh].sent.Inc()
	c.outbox[sh] = append(c.outbox[sh], SMsg{
		Src: src, Dst: dst, Kind: kind, Bytes: bytes, Arg: arg,
		Sent: now, Arrive: dep + lat, Seq: c.eseq[src],
	})
}

// getDelivery takes a pooled record for destination shard ds. Called
// only by the coordinator during flush.
func (c *ShardedCluster) getDelivery(ds int) *sdelivery {
	pool := c.free[ds]
	if n := len(pool); n > 0 {
		d := pool[n-1]
		c.free[ds] = pool[:n-1]
		return d
	}
	d := &sdelivery{c: c, shard: ds}
	d.fire = func(now sim.Time) { d.c.land(d, now) }
	return d
}

// land fires on the destination shard when a flushed message arrives:
// counters, optional trace span, return the record, then the model's
// receive hook.
func (c *ShardedCluster) land(d *sdelivery, now sim.Time) {
	m := d.m
	ctr := &c.ctr[d.shard]
	ctr.delivered.Inc()
	ctr.bytes.Add(m.Bytes)
	if tr := c.traces; tr != nil {
		if t := tr[d.shard]; t != nil {
			t.Span(m.Sent, m.Arrive-m.Sent, obs.CatLink, "deliver",
				int32(m.Dst), -1, uint64(int64(m.Src)), m.Bytes, m.Seq)
		}
	}
	c.free[d.shard] = append(c.free[d.shard], d)
	c.deliver(m, now)
}

// flush is the barrier exchange: gather every shard's outbox in fixed
// shard-index order, sort by the canonical content key, and schedule
// each message on its destination shard. Runs on the coordinator with
// every shard parked.
func (c *ShardedCluster) flush() {
	c.pending = c.pending[:0]
	for s := range c.outbox {
		c.pending = append(c.pending, c.outbox[s]...)
		c.outbox[s] = c.outbox[s][:0]
	}
	if len(c.pending) == 0 {
		return
	}
	p := c.pending
	sort.Slice(p, func(i, j int) bool {
		if p[i].Arrive != p[j].Arrive {
			return p[i].Arrive < p[j].Arrive
		}
		if p[i].Src != p[j].Src {
			return p[i].Src < p[j].Src
		}
		return p[i].Seq < p[j].Seq
	})
	for i := range p {
		m := p[i]
		ss, ds := int(c.nodeShard[m.Src]), int(c.nodeShard[m.Dst])
		floor := c.lastHorizon
		if c.cfg.Adaptive {
			// Adaptive windows are exclusive of their bound, so an
			// arrival exactly AT the destination's floor has not been
			// run past yet.
			floor = c.lastH[ds]
		}
		if m.Arrive < floor {
			// The lookahead contract was violated: a message would land
			// inside a window that already ran. Always a model bug (a
			// Send from another node's event, or a latency floor beaten).
			panic(fmt.Sprintf("net: sharded causality violation: arrival %v before horizon %v (src %d dst %d)",
				m.Arrive, floor, m.Src, m.Dst))
		}
		if c.pairMin != nil && m.Arrive-m.Sent < c.pairMin[ss][ds] {
			// A message beat the latency matrix's own floor for its shard
			// pair: the Latency function returned inconsistent values (it
			// must be pure) or a model bypassed Send.
			panic(fmt.Sprintf("net: sharded latency-floor violation: wire time %v under shard-pair floor %v (src %d dst %d)",
				m.Arrive-m.Sent, c.pairMin[ss][ds], m.Src, m.Dst))
		}
		verdict := Verdict{N: 1}
		if c.plane != nil {
			verdict = c.plane.Judge(m.Src, m.Dst, m.Sent)
		}
		if verdict.N == 0 {
			c.faultDrops++
			continue
		}
		if verdict.N > 1 {
			c.faultDups += uint64(verdict.N - 1)
		}
		for k := 0; k < verdict.N; k++ {
			cm := m
			cm.Arrive += verdict.Copies[k].Delay
			d := c.getDelivery(ds)
			d.m = cm
			if c.cfg.Adaptive {
				// Different layouts flush the same messages at different
				// barriers, so same-instant delivery order must come from
				// message content, not scheduling order: deliveries rank
				// after same-instant local events (high bit) and among
				// themselves by the canonical (Src, Seq) key.
				c.shards[ds].Events.SchedulePri(cm.Arrive, deliveryPri(cm.Src, cm.Seq), d.fire)
			} else {
				c.shards[ds].Events.ScheduleFunc(cm.Arrive, d.fire)
			}
		}
	}
}

// deliveryPri packs a flushed message's canonical identity into one
// priority word: the high bit puts deliveries after pri-0 local events
// at the same instant, then source node, then per-source sequence.
func deliveryPri(src int, seq uint64) uint64 {
	return 1<<63 | uint64(src)<<40 | seq&(1<<40-1)
}

// Run drives the synchronizer until every shard is idle and every
// outbox is empty, using up to workers goroutines per window (workers
// <= 1 runs shards serially on the caller's goroutine — byte-identical
// by construction). maxWindows bounds runaway models.
func (c *ShardedCluster) Run(workers int, maxWindows uint64) error {
	if c.deliver == nil {
		return fmt.Errorf("net: sharded cluster has no deliver hook (SetDeliver)")
	}
	if c.cfg.Adaptive && c.plane != nil {
		return fmt.Errorf("net: adaptive windows are incompatible with a fault plane (the plane's draw sequence follows barrier composition, which adaptive windows make layout-dependent)")
	}
	if workers > len(c.shards) {
		workers = len(c.shards)
	}

	var (
		work chan int
		wg   sync.WaitGroup
	)
	if workers > 1 {
		// Persistent pool: one channel of shard indices, reused every
		// window. The horizons entries are written strictly before the
		// sends and read after the receives, so the channel carries the
		// happens-before edge; WaitGroup is the window barrier.
		work = make(chan int, len(c.shards))
		for w := 0; w < workers; w++ {
			go func() {
				for idx := range work {
					c.shards[idx].RunWindow(c.horizons[idx])
					wg.Done()
				}
			}()
		}
		defer close(work)
	}

	next := make([]sim.Time, len(c.shards))
	for {
		c.flush()
		min := sim.Never
		for i, s := range c.shards {
			next[i] = s.Events.NextAt()
			if next[i] < min {
				min = next[i]
			}
		}
		if min == sim.Never {
			return nil
		}
		if c.windows >= maxWindows {
			return fmt.Errorf("net: sharded window budget (%d) exhausted", maxWindows)
		}
		if c.cfg.Adaptive {
			c.adaptiveBounds(next)
		} else {
			horizon := min + c.lookahead
			for i := range c.horizons {
				c.horizons[i] = horizon
			}
		}
		if workers > 1 {
			for idx, s := range c.shards {
				if s.Events.NextAt() <= c.horizons[idx] {
					wg.Add(1)
					work <- idx
				}
			}
			wg.Wait()
		} else {
			for idx, s := range c.shards {
				s.RunWindow(c.horizons[idx])
			}
		}
		c.windows++
		if c.cfg.Adaptive {
			for i := range c.lastH {
				// Arrivals into shard i are provably >= horizons[i]+1 (the
				// exclusive bound); the floor only ever rises.
				if h := c.horizons[i] + 1; h > c.lastH[i] {
					c.lastH[i] = h
				}
			}
		} else {
			c.lastHorizon = c.horizons[0]
		}
	}
}

// adaptiveBounds computes each shard's window bound for this round:
// the earliest instant at which any shard's earliest pending event
// could still influence it, over any chain of messages (the metric
// closure cfloor), minus one — RunWindow is inclusive and an arrival
// exactly at the influence instant may still be in flight. The global
// minimum's owner always gets at least its own next event (every
// closure entry is positive), so every round makes progress.
func (c *ShardedCluster) adaptiveBounds(next []sim.Time) {
	for i := range c.horizons {
		h := sim.Never
		for j := range next {
			if next[j] == sim.Never || c.cfloor[j][i] == sim.Never {
				continue
			}
			if t := next[j] + c.cfloor[j][i]; t < h {
				h = t
			}
		}
		if h == sim.Never {
			// Nothing pending anywhere can ever reach this shard: it may
			// drain completely.
			c.horizons[i] = sim.Never
		} else {
			c.horizons[i] = h - 1
		}
	}
}

// EnableTrace attaches one trace spine per shard (capPerShard <= 0
// selects obs.DefaultTraceCap) and returns them. For a merged timeline
// that is byte-identical across shard layouts the caps must be large
// enough that no ring wraps: which events a full ring retains depends
// on how many landed on that shard, which IS layout-dependent.
func (c *ShardedCluster) EnableTrace(capPerShard int) []*obs.Trace {
	c.traces = make([]*obs.Trace, len(c.shards))
	for i := range c.traces {
		c.traces[i] = obs.NewTrace(capPerShard, obs.Ring)
	}
	return c.traces
}

// MergedEvents merges the per-shard trace spines into one canonical
// timeline (obs.MergeEvents). Empty when tracing is disabled.
func (c *ShardedCluster) MergedEvents() []obs.Event {
	if c.traces == nil {
		return nil
	}
	streams := make([][]obs.Event, len(c.traces))
	for i, t := range c.traces {
		streams[i] = t.Events()
	}
	return obs.MergeEvents(streams...)
}

// TraceEmitted sums the per-shard linear emission counters.
func (c *ShardedCluster) TraceEmitted() uint64 {
	var n uint64
	for _, t := range c.traces {
		if t != nil {
			n += t.Emitted()
		}
	}
	return n
}

// Totals rolls up the per-shard counters. Call at a barrier (between
// Run calls); every component of the result is layout-invariant.
func (c *ShardedCluster) Totals() ShardedTotals {
	var t ShardedTotals
	for i := range c.ctr {
		t.Sent += c.ctr[i].sent.Value()
		t.Delivered += c.ctr[i].delivered.Value()
		t.Bytes += c.ctr[i].bytes.Value()
	}
	for _, s := range c.shards {
		t.Events += s.Fired
		// Reached, not Clock.Now(): a hosted machine handler leaves the
		// shard clock wherever its last CPU charge ended, which need not
		// be the run's maximum. Reached is a per-event property of the
		// node that fired, so its max is layout-invariant.
		if s.Reached > t.Finish {
			t.Finish = s.Reached
		}
	}
	t.Windows = c.windows
	return t
}

// fpMix folds one word into a running fingerprint (SplitMix64-style
// finalizer over an accumulating state).
func fpMix(h, v uint64) uint64 {
	h += v + 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// Fingerprint digests the cluster's layout-INVARIANT state: per-node
// stream positions, egress points and send sequences (in node order),
// summed counters, total events fired, windows, finish time and trace
// emission count. Deliberately excluded: per-queue scheduling
// sequence numbers and per-shard clocks, which depend on the partition
// without affecting any observable result. Equal fingerprints across
// shard×worker layouts are the engine's determinism pin.
func (c *ShardedCluster) Fingerprint() uint64 {
	h := uint64(len(c.rng))
	for n := range c.rng {
		h = fpMix(h, c.rng[n].State())
		h = fpMix(h, uint64(c.egress[n]))
		h = fpMix(h, c.eseq[n])
	}
	t := c.Totals()
	h = fpMix(h, t.Sent)
	h = fpMix(h, t.Delivered)
	h = fpMix(h, t.Bytes)
	h = fpMix(h, t.Events)
	if !c.cfg.Adaptive {
		// Adaptive window bounds depend on the partition, so the window
		// COUNT is layout-dependent there — every other component stays
		// invariant and keeps the determinism pin meaningful.
		h = fpMix(h, t.Windows)
	}
	h = fpMix(h, uint64(t.Finish))
	h = fpMix(h, c.TraceEmitted())
	return h
}

// ShardedSnapshot is a quiescent capture of a sharded cluster, in the
// settle-then-capture discipline of ClusterSnapshot: every queue
// drained, every outbox flushed. Restoring onto a cluster built with
// the SAME config rewinds it to the captured instant, so a template
// world can be constructed once and re-primed per measurement cell.
type ShardedSnapshot struct {
	nodes, shards int

	rngState []uint64
	egress   []sim.Time
	eseq     []uint64

	clocks  []sim.Time
	seqs    []uint64
	fired   []uint64
	reached []sim.Time

	sent, delivered, bytes []uint64

	lastHorizon sim.Time
	lastH       []sim.Time // adaptive per-shard floors (nil otherwise)
	windows     uint64

	faultDrops, faultDups uint64
	plane                 any // FaultPlane state payload

	traces []*obs.TraceState // nil when tracing disabled
	model  any               // ShardState hook payload
}

// Snapshot captures the cluster. It refuses a non-quiescent world:
// pending events or unflushed outboxes mean in-flight closures that no
// snapshot can re-create.
func (c *ShardedCluster) Snapshot() (*ShardedSnapshot, error) {
	for _, s := range c.shards {
		if s.Events.Len() != 0 {
			return nil, fmt.Errorf("net: sharded snapshot with %d pending events on shard %d", s.Events.Len(), s.ID)
		}
	}
	for i, ob := range c.outbox {
		if len(ob) != 0 {
			return nil, fmt.Errorf("net: sharded snapshot with %d unflushed messages on shard %d", len(ob), i)
		}
	}
	sn := &ShardedSnapshot{
		nodes: c.cfg.Nodes, shards: c.cfg.Shards,
		rngState:    make([]uint64, len(c.rng)),
		egress:      append([]sim.Time(nil), c.egress...),
		eseq:        append([]uint64(nil), c.eseq...),
		clocks:      make([]sim.Time, len(c.shards)),
		seqs:        make([]uint64, len(c.shards)),
		fired:       make([]uint64, len(c.shards)),
		reached:     make([]sim.Time, len(c.shards)),
		sent:        make([]uint64, len(c.shards)),
		delivered:   make([]uint64, len(c.shards)),
		bytes:       make([]uint64, len(c.shards)),
		lastHorizon: c.lastHorizon,
		lastH:       append([]sim.Time(nil), c.lastH...),
		windows:     c.windows,
		faultDrops:  c.faultDrops,
		faultDups:   c.faultDups,
	}
	for n := range c.rng {
		sn.rngState[n] = c.rng[n].State()
	}
	for i, s := range c.shards {
		sn.clocks[i] = s.Clock.Now()
		sn.seqs[i] = s.Events.SnapshotSeq()
		sn.fired[i] = s.Fired
		sn.reached[i] = s.Reached
		sn.sent[i] = c.ctr[i].sent.Value()
		sn.delivered[i] = c.ctr[i].delivered.Value()
		sn.bytes[i] = c.ctr[i].bytes.Value()
	}
	if c.plane != nil {
		sn.plane = c.plane.SnapshotState()
	}
	if c.traces != nil {
		sn.traces = make([]*obs.TraceState, len(c.traces))
		for i, t := range c.traces {
			sn.traces[i] = t.State()
		}
	}
	if c.state != nil {
		sn.model = c.state.SnapshotState()
	}
	return sn, nil
}

// Restore rewinds the cluster to a snapshot taken from a cluster of
// the same shape (nodes and shards must match; the snapshot stores
// per-shard state positionally).
func (c *ShardedCluster) Restore(sn *ShardedSnapshot) error {
	if sn.nodes != c.cfg.Nodes || sn.shards != c.cfg.Shards {
		return fmt.Errorf("net: restore: snapshot of %d nodes/%d shards onto %d nodes/%d shards",
			sn.nodes, sn.shards, c.cfg.Nodes, c.cfg.Shards)
	}
	if sn.traces != nil && c.traces == nil {
		return fmt.Errorf("net: restore: snapshot has traces but tracing is disabled")
	}
	for n := range c.rng {
		c.rng[n].SetState(sn.rngState[n])
	}
	copy(c.egress, sn.egress)
	copy(c.eseq, sn.eseq)
	for i, s := range c.shards {
		s.Clock.Reset(sn.clocks[i])
		s.Events.Reset(sn.seqs[i])
		s.Fired = sn.fired[i]
		s.Reached = sn.reached[i]
		c.ctr[i].sent = obs.Counter(sn.sent[i])
		c.ctr[i].delivered = obs.Counter(sn.delivered[i])
		c.ctr[i].bytes = obs.Counter(sn.bytes[i])
		c.outbox[i] = c.outbox[i][:0]
	}
	if (sn.lastH != nil) != (c.lastH != nil) {
		return fmt.Errorf("net: restore: adaptive-mode snapshot mismatch")
	}
	c.lastHorizon = sn.lastHorizon
	copy(c.lastH, sn.lastH)
	c.windows = sn.windows
	c.faultDrops = sn.faultDrops
	c.faultDups = sn.faultDups
	if c.plane != nil && sn.plane != nil {
		if err := c.plane.RestoreState(sn.plane); err != nil {
			return fmt.Errorf("net: restore fault plane: %w", err)
		}
	}
	if sn.traces != nil {
		for i, ts := range sn.traces {
			if err := c.traces[i].RestoreState(ts); err != nil {
				return fmt.Errorf("net: restore shard %d trace: %w", i, err)
			}
		}
	}
	if c.state != nil && sn.model != nil {
		if err := c.state.RestoreState(sn.model); err != nil {
			return fmt.Errorf("net: restore model state: %w", err)
		}
	}
	return nil
}
