package net

import (
	"fmt"
	"reflect"
	"testing"

	"uldma/internal/obs"
	"uldma/internal/sim"
)

// gossip is a toy sharded workload for the determinism tests: every
// node periodically fires a message with a random hop budget at a
// random peer; receivers decrement the budget and forward. It touches
// every invariance-critical path — per-node RNG draws on both send and
// receive, egress serialization, same-instant cross-node traffic —
// while staying strictly node-local.
type gossip struct {
	c     *ShardedCluster
	nodes int
	got   []uint64 // per node: messages received (node-local)
}

func newGossip(nodes, shards int, seed uint64) (*gossip, *ShardedCluster) {
	c, err := NewShardedCluster(ShardedConfig{
		Nodes: nodes, Shards: shards, Link: Gigabit(), Seed: seed,
	})
	if err != nil {
		panic(err)
	}
	g := &gossip{c: c, nodes: nodes, got: make([]uint64, nodes)}
	c.SetDeliver(g.deliver)
	c.SetStateHook(g)
	return g, c
}

// prime schedules every node's initial burst. Several nodes fire at
// the SAME instant on purpose: same-time events of different nodes are
// exactly where a layout-dependence bug would show.
func (g *gossip) prime() {
	for n := 0; n < g.nodes; n++ {
		n := n
		at := sim.Time(1+n%3) * sim.Microsecond
		g.c.At(n, at, func(now sim.Time) { g.burst(n, now) })
	}
}

func (g *gossip) burst(n int, now sim.Time) {
	rng := g.c.Rand(n)
	for i := 0; i < 3; i++ {
		dst := rng.Intn(g.nodes - 1)
		if dst >= n {
			dst++
		}
		hops := rng.Uint64() % 4
		g.c.Send(n, dst, 1, 16+rng.Uint64()%64, hops, now)
	}
}

func (g *gossip) deliver(m SMsg, now sim.Time) {
	g.got[m.Dst]++
	if m.Arg == 0 {
		return
	}
	rng := g.c.Rand(m.Dst)
	dst := rng.Intn(g.nodes - 1)
	if dst >= m.Dst {
		dst++
	}
	g.c.Send(m.Dst, dst, 1, m.Bytes, m.Arg-1, now)
}

func (g *gossip) SnapshotState() any {
	return append([]uint64(nil), g.got...)
}

func (g *gossip) RestoreState(state any) error {
	s, ok := state.([]uint64)
	if !ok || len(s) != len(g.got) {
		return fmt.Errorf("gossip: bad state")
	}
	copy(g.got, s)
	return nil
}

// run executes the gossip to quiescence and returns the world's
// observable outcome: fingerprint, totals, per-node receive counts and
// the merged trace.
func (g *gossip) run(t *testing.T, workers int) (uint64, ShardedTotals, []uint64, []obs.Event) {
	t.Helper()
	if err := g.c.Run(workers, 1<<20); err != nil {
		t.Fatalf("run: %v", err)
	}
	return g.c.Fingerprint(), g.c.Totals(), g.got, g.c.MergedEvents()
}

// TestShardEquivalence is the tentpole pin: the sharded run is
// byte-identical to the single-queue run (shards=1) for every shard
// and worker count — same fingerprint, same totals, same per-node
// receive counts, same merged trace events.
func TestShardEquivalence(t *testing.T) {
	const nodes, seed = 24, 99
	ref, refC := newGossip(nodes, 1, seed)
	refC.EnableTrace(1 << 14) // big enough that no ring wraps
	ref.prime()
	refFP, refTotals, refGot, refTrace := ref.run(t, 1)
	if refTotals.Delivered == 0 || refTotals.Windows == 0 {
		t.Fatalf("degenerate reference run: %+v", refTotals)
	}

	for _, shards := range []int{2, 4, 8} {
		for _, workers := range []int{1, 4, 8} {
			name := fmt.Sprintf("shards=%d/workers=%d", shards, workers)
			g, c := newGossip(nodes, shards, seed)
			c.EnableTrace(1 << 14)
			g.prime()
			fp, totals, got, trace := g.run(t, workers)
			if fp != refFP {
				t.Errorf("%s: fingerprint %016x, reference %016x", name, fp, refFP)
			}
			if totals != refTotals {
				t.Errorf("%s: totals %+v, reference %+v", name, totals, refTotals)
			}
			if !reflect.DeepEqual(got, refGot) {
				t.Errorf("%s: per-node receive counts diverge from reference", name)
			}
			if !reflect.DeepEqual(trace, refTrace) {
				t.Errorf("%s: merged trace (%d events) diverges from reference (%d events)",
					name, len(trace), len(refTrace))
			}
		}
	}
}

// TestShardSnapshotRestore pins cross-shard snapshot/restore fidelity:
// capture a quiescent mid-run world, run a second phase, rewind, run
// the second phase again — both passes must be byte-identical, and the
// restored world must not leak post-snapshot state.
func TestShardSnapshotRestore(t *testing.T) {
	const nodes, shards, seed = 16, 4, 7
	g, c := newGossip(nodes, shards, seed)
	c.EnableTrace(1 << 14)
	g.prime()
	if err := c.Run(4, 1<<20); err != nil {
		t.Fatalf("phase 1: %v", err)
	}
	sn, err := c.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	fpAtSnap := c.Fingerprint()

	phase2 := func(workers int) uint64 {
		for n := 0; n < nodes; n += 2 {
			n := n
			c.At(n, c.Now(n)+sim.Microsecond, func(now sim.Time) { g.burst(n, now) })
		}
		if err := c.Run(workers, 1<<20); err != nil {
			t.Fatalf("phase 2: %v", err)
		}
		return c.Fingerprint()
	}
	first := phase2(1)
	if first == fpAtSnap {
		t.Fatal("phase 2 changed nothing — test is vacuous")
	}
	if err := c.Restore(sn); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if fp := c.Fingerprint(); fp != fpAtSnap {
		t.Fatalf("restored fingerprint %016x, snapshot had %016x", fp, fpAtSnap)
	}
	if second := phase2(4); second != first {
		t.Fatalf("replayed phase 2 fingerprint %016x, first pass %016x", second, first)
	}
}

// Snapshot must refuse a non-quiescent world.
func TestShardSnapshotRefusesInFlight(t *testing.T) {
	g, c := newGossip(8, 2, 1)
	g.prime()
	if _, err := c.Snapshot(); err == nil {
		t.Fatal("Snapshot() accepted a world with pending events")
	}
}

func TestShardedConfigValidation(t *testing.T) {
	base := ShardedConfig{Nodes: 8, Shards: 2, Link: Gigabit(), Seed: 1}
	if _, err := NewShardedCluster(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*ShardedConfig)
	}{
		{"zero nodes", func(c *ShardedConfig) { c.Nodes = 0 }},
		{"zero shards", func(c *ShardedConfig) { c.Shards = 0 }},
		{"more shards than nodes", func(c *ShardedConfig) { c.Shards = 9 }},
		{"zero bandwidth", func(c *ShardedConfig) { c.Link.Bandwidth = 0 }},
		{"zero latency", func(c *ShardedConfig) { c.Link.Latency = 0 }},
		{"lookahead above latency", func(c *ShardedConfig) { c.Lookahead = c.Link.Latency + 1 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if _, err := NewShardedCluster(cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// The partition must cover every node exactly once, contiguously.
func TestShardPartition(t *testing.T) {
	c, err := NewShardedCluster(ShardedConfig{Nodes: 10, Shards: 3, Link: Gigabit(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for n := 0; n < 10; n++ {
		s := c.ShardOf(n)
		if s < prev || s > prev+1 || s >= 3 {
			t.Fatalf("node %d on shard %d after shard %d — not a contiguous partition", n, s, prev)
		}
		prev = s
	}
	if c.ShardOf(0) != 0 || c.ShardOf(9) != 2 {
		t.Fatalf("partition does not span the shard range")
	}
}

// Run without a deliver hook is a model wiring bug and must error.
func TestShardedRunNeedsDeliver(t *testing.T) {
	c, err := NewShardedCluster(ShardedConfig{Nodes: 4, Shards: 2, Link: Gigabit(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(1, 100); err == nil {
		t.Fatal("Run without SetDeliver succeeded")
	}
}
