package net

import (
	"fmt"
	"reflect"
	"testing"

	"uldma/internal/sim"
)

// rackLatency is a two-rack topology: cheap wires inside a rack, a
// 10x more expensive hop across. The spread is what adaptive windows
// exploit — the global lookahead is pinned to the 2µs intra-rack floor,
// while cross-rack influence is provably 20µs away.
func rackLatency(nodes int) func(src, dst int) sim.Time {
	half := nodes / 2
	return func(src, dst int) sim.Time {
		if (src < half) == (dst < half) {
			return 2 * sim.Microsecond
		}
		return 20 * sim.Microsecond
	}
}

func newRackGossip(nodes, shards int, seed uint64, adaptive bool) (*gossip, *ShardedCluster) {
	c, err := NewShardedCluster(ShardedConfig{
		Nodes: nodes, Shards: shards, Link: Gigabit(), Seed: seed,
		Latency: rackLatency(nodes), Adaptive: adaptive,
	})
	if err != nil {
		panic(err)
	}
	g := &gossip{c: c, nodes: nodes, got: make([]uint64, nodes)}
	c.SetDeliver(g.deliver)
	c.SetStateHook(g)
	return g, c
}

// TestAdaptiveShardParity is the adaptive engine's determinism pin:
// with per-shard horizons the window SEQUENCE depends on the layout,
// but everything observable — fingerprint (which excludes the window
// count in adaptive mode), per-node receive counts, totals — must stay
// byte-identical at every shard and worker count.
func TestAdaptiveShardParity(t *testing.T) {
	const nodes, seed = 24, 7
	ref, refC := newRackGossip(nodes, 1, seed, true)
	ref.prime()
	refFP, refTotals, refGot, _ := ref.run(t, 1)
	_ = refC
	if refTotals.Delivered == 0 {
		t.Fatalf("degenerate reference run: %+v", refTotals)
	}

	for _, shards := range []int{1, 4, 8} {
		for _, workers := range []int{1, 4, 8} {
			name := fmt.Sprintf("shards=%d/workers=%d", shards, workers)
			g, _ := newRackGossip(nodes, shards, seed, true)
			g.prime()
			fp, totals, got, _ := g.run(t, workers)
			if fp != refFP {
				t.Errorf("%s: fingerprint %016x, reference %016x", name, fp, refFP)
			}
			if !reflect.DeepEqual(got, refGot) {
				t.Errorf("%s: per-node receive counts diverged", name)
			}
			// The window count is the one legitimately layout-dependent
			// total; everything else must match exactly.
			totals.Windows = refTotals.Windows
			if totals != refTotals {
				t.Errorf("%s: totals %+v, reference %+v", name, totals, refTotals)
			}
		}
	}
}

// TestAdaptiveFewerBarriers pins the point of the whole exercise: on a
// topology with spread-out latency floors, per-shard horizons need
// fewer synchronizer barriers than the global-minimum window, while
// moving exactly the same traffic.
func TestAdaptiveFewerBarriers(t *testing.T) {
	const nodes, seed, shards = 24, 7, 8
	base, _ := newRackGossip(nodes, shards, seed, false)
	base.prime()
	_, baseTotals, _, _ := base.run(t, 1)

	ad, _ := newRackGossip(nodes, shards, seed, true)
	ad.prime()
	_, adTotals, _, _ := ad.run(t, 1)

	if adTotals.Sent != baseTotals.Sent || adTotals.Delivered != baseTotals.Delivered ||
		adTotals.Bytes != baseTotals.Bytes || adTotals.Events != baseTotals.Events {
		t.Errorf("adaptive moved different traffic: %+v vs %+v", adTotals, baseTotals)
	}
	if adTotals.Windows >= baseTotals.Windows {
		t.Errorf("adaptive used %d windows, global lookahead %d — no barrier savings",
			adTotals.Windows, baseTotals.Windows)
	}
}

// TestAdaptiveUniformMatchesGlobal: with no latency matrix every floor
// is the link latency, the closure is flat, and the per-shard bound
// degenerates to the global one — traffic and per-node state match the
// non-adaptive engine exactly.
func TestAdaptiveUniformMatchesGlobal(t *testing.T) {
	const nodes, seed, shards = 24, 99, 4
	mk := func(adaptive bool) (*gossip, *ShardedCluster) {
		c, err := NewShardedCluster(ShardedConfig{
			Nodes: nodes, Shards: shards, Link: Gigabit(), Seed: seed, Adaptive: adaptive,
		})
		if err != nil {
			t.Fatal(err)
		}
		g := &gossip{c: c, nodes: nodes, got: make([]uint64, nodes)}
		c.SetDeliver(g.deliver)
		return g, c
	}
	base, _ := mk(false)
	base.prime()
	_, baseTotals, baseGot, _ := base.run(t, 1)
	ad, _ := mk(true)
	ad.prime()
	_, adTotals, adGot, _ := ad.run(t, 1)
	if !reflect.DeepEqual(adGot, baseGot) {
		t.Error("per-node receive counts diverged from the global engine")
	}
	adTotals.Windows = baseTotals.Windows
	if adTotals != baseTotals {
		t.Errorf("totals %+v, global engine %+v", adTotals, baseTotals)
	}
}

// TestAdaptiveSnapshotRestore rewinds an adaptive world mid-life and
// requires a byte-identical rerun (per-shard causality floors are part
// of the snapshot).
func TestAdaptiveSnapshotRestore(t *testing.T) {
	const nodes, seed, shards = 24, 7, 4
	g, c := newRackGossip(nodes, shards, seed, true)
	g.prime()
	if err := c.Run(1, 1<<20); err != nil {
		t.Fatal(err)
	}
	sn, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Second life from the captured instant.
	for n := 0; n < nodes; n++ {
		n := n
		c.At(n, c.Now(n)+sim.Millisecond, func(now sim.Time) { g.burst(n, now) })
	}
	if err := c.Run(1, 1<<20); err != nil {
		t.Fatal(err)
	}
	fp1 := c.Fingerprint()
	got1 := append([]uint64(nil), g.got...)

	if err := c.Restore(sn); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < nodes; n++ {
		n := n
		c.At(n, c.Now(n)+sim.Millisecond, func(now sim.Time) { g.burst(n, now) })
	}
	if err := c.Run(1, 1<<20); err != nil {
		t.Fatal(err)
	}
	if fp2 := c.Fingerprint(); fp2 != fp1 {
		t.Errorf("rewound rerun fingerprint %016x != %016x", fp2, fp1)
	}
	if !reflect.DeepEqual(g.got, got1) {
		t.Error("rewound rerun receive counts diverged")
	}
}

// nullPlane is a fault plane that touches nothing; its mere presence
// must be rejected by the adaptive engine (the plane's draw sequence
// follows barrier composition, which adaptive windows make
// layout-dependent).
type nullPlane struct{}

func (nullPlane) Judge(src, dst int, at sim.Time) Verdict { return Verdict{N: 1} }
func (nullPlane) SnapshotState() any                      { return nil }
func (nullPlane) RestoreState(any) error                  { return nil }

func TestAdaptiveRejectsFaultPlane(t *testing.T) {
	g, c := newRackGossip(8, 2, 1, true)
	g.prime()
	c.SetFaultPlane(nullPlane{})
	if err := c.Run(1, 1<<20); err == nil {
		t.Fatal("adaptive Run accepted a fault plane")
	}
}
