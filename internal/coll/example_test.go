package coll_test

import (
	"fmt"
	"log"

	"uldma/internal/coll"
	userdma "uldma/internal/core"
	"uldma/internal/net"
	"uldma/internal/proc"
)

// Example sums each workstation's rank+1 across a three-node cluster
// with a user-level all-reduce (fetch_and_add over the fabric + remote
// writes for the release).
func Example() {
	cluster := net.MustNewCluster(3, userdma.ConfigFor(userdma.ExtShadow{}), net.Gigabit())
	var comms []*coll.Comm
	procs := make([]*proc.Process, 3)
	for i := 0; i < 3; i++ {
		i := i
		procs[i] = cluster.Nodes[i].NewProcess(fmt.Sprintf("rank%d", i),
			func(c *proc.Context) error {
				total, err := comms[i].AllReduceSum(c, uint64(i+1))
				if err != nil {
					return err
				}
				if i == 0 {
					fmt.Println("global sum:", total)
				}
				return nil
			})
	}
	var err error
	if comms, err = coll.New(cluster, procs); err != nil {
		log.Fatal(err)
	}
	if err := cluster.RunRoundRobin(4, 1_000_000); err != nil {
		log.Fatal(err)
	}
	// Output:
	// global sum: 6
}
