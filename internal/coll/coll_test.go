package coll

import (
	"fmt"
	"testing"

	userdma "uldma/internal/core"
	"uldma/internal/net"
	"uldma/internal/proc"
)

// world wires an n-rank communicator whose rank bodies are set after
// construction.
type world struct {
	cluster *net.Cluster
	procs   []*proc.Process
	comms   []*Comm
	bodies  []func(c *proc.Context, comm *Comm) error
}

func newWorld(t *testing.T, n int) *world {
	t.Helper()
	cluster, err := net.NewCluster(n, userdma.ConfigFor(userdma.ExtShadow{}), net.Gigabit())
	if err != nil {
		t.Fatal(err)
	}
	w := &world{cluster: cluster, bodies: make([]func(*proc.Context, *Comm) error, n)}
	for i := 0; i < n; i++ {
		i := i
		w.procs = append(w.procs, cluster.Nodes[i].NewProcess(fmt.Sprintf("rank%d", i),
			func(c *proc.Context) error { return w.bodies[i](c, w.comms[i]) }))
	}
	if w.comms, err = New(cluster, w.procs); err != nil {
		t.Fatal(err)
	}
	return w
}

func (w *world) run(t *testing.T) {
	t.Helper()
	if err := w.cluster.RunRoundRobin(4, 1<<62); err != nil {
		t.Fatal(err)
	}
	for i, p := range w.procs {
		if p.Err() != nil {
			t.Fatalf("rank %d: %v", i, p.Err())
		}
	}
}

// TestBarrierSynchronizes: no rank may observe another rank still in an
// earlier phase after leaving the barrier. The shared phase vector is
// plain Go state — updated strictly between instructions, so it is a
// sound witness.
func TestBarrierSynchronizes(t *testing.T) {
	const n, rounds = 3, 5
	w := newWorld(t, n)
	phase := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		w.bodies[i] = func(c *proc.Context, comm *Comm) error {
			for r := 1; r <= rounds; r++ {
				// Staggered pre-barrier work.
				c.Spin(int64(1000 * (i + 1) * r))
				phase[i] = r
				if err := comm.Barrier(c); err != nil {
					return err
				}
				// After the barrier, EVERY rank must have reached phase r.
				for j := 0; j < n; j++ {
					if phase[j] < r {
						return fmt.Errorf("rank %d left barrier %d while rank %d is at phase %d",
							i, r, j, phase[j])
					}
				}
			}
			return nil
		}
	}
	w.run(t)
}

func TestAllReduceSum(t *testing.T) {
	const n, rounds = 4, 3
	w := newWorld(t, n)
	results := make([][]uint64, n)
	for i := 0; i < n; i++ {
		i := i
		w.bodies[i] = func(c *proc.Context, comm *Comm) error {
			for r := 0; r < rounds; r++ {
				v := uint64((i + 1) * (r + 1)) // distinct contributions per round
				total, err := comm.AllReduceSum(c, v)
				if err != nil {
					return err
				}
				results[i] = append(results[i], total)
			}
			return nil
		}
	}
	w.run(t)
	for r := 0; r < rounds; r++ {
		want := uint64(0)
		for i := 0; i < n; i++ {
			want += uint64((i + 1) * (r + 1))
		}
		for i := 0; i < n; i++ {
			if results[i][r] != want {
				t.Fatalf("rank %d round %d: total %d, want %d", i, r, results[i][r], want)
			}
		}
	}
}

func TestBroadcast(t *testing.T) {
	const n = 3
	w := newWorld(t, n)
	got := make([]uint64, n)
	for i := 0; i < n; i++ {
		i := i
		w.bodies[i] = func(c *proc.Context, comm *Comm) error {
			v := uint64(0xdead) // ignored except at the root
			if comm.Rank() == 0 {
				v = 0x5eed
			}
			out, err := comm.Broadcast(c, v)
			if err != nil {
				return err
			}
			got[i] = out
			// Then a second broadcast to prove epochs advance.
			if comm.Rank() == 0 {
				v = 0xf00d
			}
			out, err = comm.Broadcast(c, v)
			if err != nil {
				return err
			}
			if out != 0xf00d {
				return fmt.Errorf("second broadcast = %#x", out)
			}
			return nil
		}
	}
	w.run(t)
	for i, v := range got {
		if v != 0x5eed {
			t.Fatalf("rank %d received %#x", i, v)
		}
	}
	if w.comms[0].Rank() != 0 || w.comms[0].Size() != n {
		t.Fatal("comm accessors wrong")
	}
}

func TestAllReduceMax(t *testing.T) {
	const n, rounds = 4, 3
	w := newWorld(t, n)
	results := make([][]uint32, n)
	for i := 0; i < n; i++ {
		i := i
		w.bodies[i] = func(c *proc.Context, comm *Comm) error {
			for r := 0; r < rounds; r++ {
				// Rotate which rank holds the max each round.
				v := uint32(10*i + 1)
				if (i+r)%n == 0 {
					v = uint32(1000 + r)
				}
				max, err := comm.AllReduceMax(c, v)
				if err != nil {
					return err
				}
				results[i] = append(results[i], max)
			}
			return nil
		}
	}
	w.run(t)
	for r := 0; r < rounds; r++ {
		want := uint32(1000 + r)
		for i := 0; i < n; i++ {
			if results[i][r] != want {
				t.Fatalf("rank %d round %d: max %d, want %d", i, r, results[i][r], want)
			}
		}
	}
}

// TestAllReduceMaxContended: eight ranks race ascending contributions
// under single-slot round-robin, forcing the CAS-raise loop through its
// lost-race retries.
func TestAllReduceMaxContended(t *testing.T) {
	const n = 8
	cluster, err := net.NewCluster(n, userdma.ConfigFor(userdma.ExtShadow{}), net.Gigabit())
	if err != nil {
		t.Fatal(err)
	}
	var comms []*Comm
	procs := make([]*proc.Process, n)
	results := make([]uint32, n)
	for i := 0; i < n; i++ {
		i := i
		procs[i] = cluster.Nodes[i].NewProcess(fmt.Sprintf("rank%d", i), func(c *proc.Context) error {
			max, err := comms[i].AllReduceMax(c, uint32(100+i))
			if err != nil {
				return err
			}
			results[i] = max
			return nil
		})
	}
	if comms, err = New(cluster, procs); err != nil {
		t.Fatal(err)
	}
	if err := cluster.RunRoundRobin(1, 1<<62); err != nil {
		t.Fatal(err)
	}
	for i, p := range procs {
		if p.Err() != nil {
			t.Fatalf("rank %d: %v", i, p.Err())
		}
		if results[i] != 100+n-1 {
			t.Fatalf("rank %d max = %d, want %d", i, results[i], 100+n-1)
		}
	}
}

// TestMixedCollectiveSequence interleaves barriers, reductions and
// broadcasts in one program — the epoch machinery must stay in step.
func TestMixedCollectiveSequence(t *testing.T) {
	const n = 3
	w := newWorld(t, n)
	finals := make([]uint64, n)
	for i := 0; i < n; i++ {
		i := i
		w.bodies[i] = func(c *proc.Context, comm *Comm) error {
			if err := comm.Barrier(c); err != nil {
				return err
			}
			sum, err := comm.AllReduceSum(c, uint64(i+1)) // 1+2+3 = 6
			if err != nil {
				return err
			}
			v := uint64(0)
			if comm.Rank() == 0 {
				v = sum * 10 // root rebroadcasts the scaled sum
			}
			out, err := comm.Broadcast(c, v)
			if err != nil {
				return err
			}
			if err := comm.Barrier(c); err != nil {
				return err
			}
			finals[i] = out
			return nil
		}
	}
	w.run(t)
	for i, v := range finals {
		if v != 60 {
			t.Fatalf("rank %d final = %d, want 60", i, v)
		}
	}
}

func TestNewValidation(t *testing.T) {
	cluster, err := net.NewCluster(2, userdma.ConfigFor(userdma.ExtShadow{}), net.Gigabit())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(cluster, nil); err == nil {
		t.Fatal("zero ranks accepted")
	}
	procs := make([]*proc.Process, 3) // more ranks than nodes
	if _, err := New(cluster, procs); err == nil {
		t.Fatal("too many ranks accepted")
	}
}
