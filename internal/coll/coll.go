// Package coll provides NOW collective operations — barrier, all-reduce,
// broadcast — built exclusively on the paper's user-level primitives:
// fetch_and_add on a coordinator cell (atomic over the fabric, §3.5)
// for arrival counting, and single-word remote writes for release
// notification and result distribution. After setup there are no kernel
// crossings and no message-passing layer underneath: this is the
// "shared-memory abstraction on a Network of Workstations" usage the
// paper cites Telegraphos and SCI for.
//
// Topology: one rank per cluster node (rank i on node i). Rank 0's node
// hosts the coordinator cells. The release path is epoch-based: the
// last-arriving rank publishes the new epoch (and any result) to every
// rank's local notify page with remote writes; ranks spin on their own
// local memory — never across the wire.
package coll

import (
	"fmt"

	userdma "uldma/internal/core"
	"uldma/internal/net"
	"uldma/internal/phys"
	"uldma/internal/proc"
	"uldma/internal/vm"
)

// Virtual layout inside every rank's process.
const (
	vaCoord  = vm.VAddr(0x0070_0000) // coordinator cells (local on rank 0, remote window elsewhere)
	vaNotify = vm.VAddr(0x0071_0000) // this rank's local notify page
	vaPeers  = vm.VAddr(0x0072_0000) // remote windows onto every rank's notify page
)

// Coordinator cell offsets (on rank 0's cells page).
const (
	cellArrived = 0 // arrival counter (fetch_and_add)
	cellAccum   = 8 // all-reduce accumulator
)

// Notify page offsets (per rank, local).
const (
	noteEpoch  = 0 // completed-collective epoch
	noteResult = 8 // all-reduce / broadcast payload
)

// Comm is one rank's handle on the communicator.
type Comm struct {
	rank, size int
	pageSize   uint64
	epoch      uint64
}

// Rank returns this communicator handle's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.size }

// New wires a communicator over the cluster: procs[i] must live on
// cluster node i (one rank per node). It performs all setup-time kernel
// work and returns one Comm per rank.
func New(cluster *net.Cluster, procs []*proc.Process) ([]*Comm, error) {
	size := len(procs)
	if size < 1 || size > len(cluster.Nodes) {
		return nil, fmt.Errorf("coll: %d ranks for %d nodes", size, len(cluster.Nodes))
	}
	pageSize := cluster.Nodes[0].Cfg.PageSize

	// Rank 0 hosts the coordinator cells.
	coordMachine := cluster.Nodes[0]
	coordFrame, err := coordMachine.Kernel.AllocPage(procs[0].AddressSpace(), vaCoord, vm.Read|vm.Write)
	if err != nil {
		return nil, fmt.Errorf("coll: coordinator cells: %w", err)
	}
	if err := userdma.SetupAtomics(coordMachine, procs[0], vaCoord); err != nil {
		return nil, err
	}

	// Every rank: a local notify page...
	notifyFrames := make([]phys.Addr, size)
	for i := 0; i < size; i++ {
		m := cluster.Nodes[i]
		frame, err := m.Kernel.AllocPage(procs[i].AddressSpace(), vaNotify, vm.Read|vm.Write)
		if err != nil {
			return nil, fmt.Errorf("coll: rank %d notify page: %w", i, err)
		}
		notifyFrames[i] = frame
	}
	for i := 0; i < size; i++ {
		m := cluster.Nodes[i]
		// ...a window onto the coordinator cells (remote atomics for
		// ranks off node 0)...
		if i != 0 {
			if err := m.Kernel.MapRemote(procs[i], vaCoord, 0, coordFrame); err != nil {
				return nil, err
			}
			if err := userdma.SetupAtomics(m, procs[i], vaCoord); err != nil {
				return nil, err
			}
		}
		// ...and windows onto every rank's notify page (any rank can be
		// the releaser).
		for j := 0; j < size; j++ {
			va := vaPeers + vm.VAddr(uint64(j)*pageSize)
			if err := m.Kernel.MapRemote(procs[i], va, j, notifyFrames[j]); err != nil {
				return nil, fmt.Errorf("coll: rank %d window to rank %d: %w", i, j, err)
			}
		}
	}

	comms := make([]*Comm, size)
	for i := range comms {
		comms[i] = &Comm{rank: i, size: size, pageSize: pageSize}
	}
	return comms, nil
}

// peerNote returns the VA of rank j's notify cell at offset off, through
// this rank's peer windows.
func peerNote(j int, off vm.VAddr, pageSize uint64) vm.VAddr {
	return vaPeers + vm.VAddr(uint64(j)*pageSize) + off
}

// Barrier blocks until every rank has entered it. The classic
// counter-plus-epoch scheme: arrive with fetch_and_add on the
// coordinator; the last arrival resets the counter and publishes the
// new epoch to everyone's local notify page.
func (c *Comm) Barrier(ctx *proc.Context) error {
	_, err := c.reduceInternal(ctx, 0, false)
	return err
}

// AllReduceSum adds v into the collective accumulator and returns the
// total across all ranks once everyone has contributed.
func (c *Comm) AllReduceSum(ctx *proc.Context, v uint64) (uint64, error) {
	return c.reduceInternal(ctx, v, true)
}

func (c *Comm) reduceInternal(ctx *proc.Context, v uint64, withResult bool) (uint64, error) {
	c.epoch++
	if withResult {
		if _, err := userdma.FetchAdd(ctx, vaCoord+cellAccum, v); err != nil {
			return 0, err
		}
	}
	old, err := userdma.FetchAdd(ctx, vaCoord+cellArrived, 1)
	if err != nil {
		return 0, err
	}
	if int(old) == c.size-1 {
		// Last arrival: collect, reset, release everyone.
		var total uint64
		if withResult {
			if total, err = userdma.FetchStore(ctx, vaCoord+cellAccum, 0); err != nil {
				return 0, err
			}
		}
		if _, err := userdma.FetchStore(ctx, vaCoord+cellArrived, 0); err != nil {
			return 0, err
		}
		for j := 0; j < c.size; j++ {
			if withResult {
				if err := ctx.Store(peerNote(j, noteResult, c.pageSize), phys.Size64, total); err != nil {
					return 0, err
				}
			}
			if err := ctx.Store(peerNote(j, noteEpoch, c.pageSize), phys.Size64, c.epoch); err != nil {
				return 0, err
			}
		}
		if err := ctx.MB(); err != nil {
			return 0, err
		}
	}
	// Everyone (including the releaser) waits for the epoch to land in
	// LOCAL memory — the spin never crosses the fabric.
	for {
		e, err := ctx.Load(vaNotify+noteEpoch, phys.Size64)
		if err != nil {
			return 0, err
		}
		if e >= c.epoch {
			break
		}
		ctx.Spin(400)
	}
	if !withResult {
		return 0, nil
	}
	return ctx.Load(vaNotify+noteResult, phys.Size64)
}

// AllReduceMax returns the maximum of the ranks' 32-bit contributions.
// The combine step is a compare_and_swap loop on the coordinator cell —
// the canonical lock-free maximum, exercising the third §3.5 primitive.
func (c *Comm) AllReduceMax(ctx *proc.Context, v uint32) (uint32, error) {
	// Raise the shared cell to at least v.
	for {
		old, swapped, err := userdma.CompareSwap(ctx, vaCoord+cellAccum, 0, v)
		if err != nil {
			return 0, err
		}
		if swapped || old >= v {
			break
		}
		// Cell holds a smaller non-zero value: try to replace it.
		if _, swapped, err = userdma.CompareSwap(ctx, vaCoord+cellAccum, old, v); err != nil {
			return 0, err
		} else if swapped {
			break
		}
		ctx.Spin(100) // lost the race; re-read and retry
	}
	// Synchronize and distribute like a sum-reduce, but the releaser
	// reads the max with a swap-to-zero (which also resets the cell).
	c.epoch++
	old, err := userdma.FetchAdd(ctx, vaCoord+cellArrived, 1)
	if err != nil {
		return 0, err
	}
	if int(old) == c.size-1 {
		max, err := userdma.FetchStore(ctx, vaCoord+cellAccum, 0)
		if err != nil {
			return 0, err
		}
		if _, err := userdma.FetchStore(ctx, vaCoord+cellArrived, 0); err != nil {
			return 0, err
		}
		for j := 0; j < c.size; j++ {
			if err := ctx.Store(peerNote(j, noteResult, c.pageSize), phys.Size64, max); err != nil {
				return 0, err
			}
			if err := ctx.Store(peerNote(j, noteEpoch, c.pageSize), phys.Size64, c.epoch); err != nil {
				return 0, err
			}
		}
		if err := ctx.MB(); err != nil {
			return 0, err
		}
	}
	for {
		e, err := ctx.Load(vaNotify+noteEpoch, phys.Size64)
		if err != nil {
			return 0, err
		}
		if e >= c.epoch {
			break
		}
		ctx.Spin(400)
	}
	out, err := ctx.Load(vaNotify+noteResult, phys.Size64)
	return uint32(out), err
}

// Broadcast distributes v from rank 0 to every rank (returned by all).
// Non-root callers pass any value; the root's value wins.
func (c *Comm) Broadcast(ctx *proc.Context, v uint64) (uint64, error) {
	c.epoch++
	if c.rank == 0 {
		for j := 0; j < c.size; j++ {
			if err := ctx.Store(peerNote(j, noteResult, c.pageSize), phys.Size64, v); err != nil {
				return 0, err
			}
			if err := ctx.Store(peerNote(j, noteEpoch, c.pageSize), phys.Size64, c.epoch); err != nil {
				return 0, err
			}
		}
		if err := ctx.MB(); err != nil {
			return 0, err
		}
	}
	for {
		e, err := ctx.Load(vaNotify+noteEpoch, phys.Size64)
		if err != nil {
			return 0, err
		}
		if e >= c.epoch {
			break
		}
		ctx.Spin(400)
	}
	return ctx.Load(vaNotify+noteResult, phys.Size64)
}
