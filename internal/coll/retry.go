package coll

// Fault-tolerant collectives. The base Comm's release path is a
// single-word remote write per rank — the cheapest possible notify, but
// on a faulty link it can be LOST, leaving a rank spinning on its local
// epoch cell forever. Resilient keeps the same fast path and adds a
// bounded fallback built on the one primitive the fault plane never
// touches: remote atomics (net.FaultPlane documents why — they model
// Telegraphos' synchronous locked transactions, the reliable control
// channel).
//
// Protocol: the releaser publishes the epoch and result to coordinator
// cells with fetch_and_store (reliable) BEFORE firing the best-effort
// notify writes. A waiter spins locally for SpinSlots slots; if the
// notify never lands it probes the coordinator cells with fetch_and_add
// of 0 (an atomic read over the fabric), up to Retries times. Result
// cells are stable while stale: epoch N's cells cannot be overwritten
// until every rank has entered collective N+1, which requires every
// rank to have finished N first.

import (
	"errors"

	userdma "uldma/internal/core"
	"uldma/internal/phys"
	"uldma/internal/proc"
)

// Published coordinator cells (reliable copies of the notify payload).
const (
	cellEpoch  = 16 // last released epoch
	cellResult = 24 // that epoch's result value
)

// noteCheck is the extra notify word binding (epoch, result): the
// epoch and result notify writes are judged INDEPENDENTLY by a fault
// plane, so a waiter can observe the new epoch while the result write
// was dropped — and would silently read a stale result. The check word
// commits to both; on mismatch the waiter distrusts the local copy and
// takes the reliable probe path.
const noteCheck = 16

// mix binds an epoch to its result value (SplitMix64 finalizer over
// both words). A stale value from any other epoch cannot match.
func mix(epoch, result uint64) uint64 {
	z := epoch*0x9e3779b97f4a7c15 + result
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ErrGaveUp reports that a resilient collective exhausted its probe
// budget without observing the release epoch.
var ErrGaveUp = errors.New("coll: release not observed within the retry budget")

// ResilientStats counts recovery activity.
type ResilientStats struct {
	// Fallbacks is the number of waits whose local spin timed out (a
	// notify write was presumably lost).
	Fallbacks uint64
	// Probes is the number of reliable coordinator reads issued.
	Probes uint64
}

// Resilient wraps a Comm with bounded-retry collectives that survive
// lost, duplicated and reordered notify writes. Zero-valued knobs get
// defaults; on a fault-free fabric the fast path is identical to the
// base Comm's (local spin, no extra fabric traffic).
type Resilient struct {
	c *Comm
	// SpinSlots bounds the local notify spin before falling back to the
	// reliable probe path (default 200).
	SpinSlots int
	// Retries bounds the reliable probes per wait (default 32).
	Retries int

	stats ResilientStats
}

// NewResilient wraps comm. Each rank wraps its own Comm handle.
func NewResilient(comm *Comm) *Resilient { return &Resilient{c: comm} }

// Stats returns the recovery counters.
func (r *Resilient) Stats() ResilientStats { return r.stats }

// Rank returns the wrapped communicator's rank.
func (r *Resilient) Rank() int { return r.c.rank }

// Size returns the number of ranks.
func (r *Resilient) Size() int { return r.c.size }

// Barrier blocks until every rank has entered it, surviving lost
// release notifications.
func (r *Resilient) Barrier(ctx *proc.Context) error {
	_, err := r.collective(ctx, 0, false)
	return err
}

// AllReduceSum adds v into the collective accumulator and returns the
// total across all ranks, surviving lost release notifications.
func (r *Resilient) AllReduceSum(ctx *proc.Context, v uint64) (uint64, error) {
	return r.collective(ctx, v, true)
}

func (r *Resilient) collective(ctx *proc.Context, v uint64, withResult bool) (uint64, error) {
	c := r.c
	c.epoch++
	if withResult {
		if _, err := userdma.FetchAdd(ctx, vaCoord+cellAccum, v); err != nil {
			return 0, err
		}
	}
	old, err := userdma.FetchAdd(ctx, vaCoord+cellArrived, 1)
	if err != nil {
		return 0, err
	}
	if int(old) == c.size-1 {
		// Last arrival: collect, reset, publish reliably, then notify.
		var total uint64
		if withResult {
			if total, err = userdma.FetchStore(ctx, vaCoord+cellAccum, 0); err != nil {
				return 0, err
			}
		}
		if _, err := userdma.FetchStore(ctx, vaCoord+cellArrived, 0); err != nil {
			return 0, err
		}
		// Authoritative copies first — result before epoch, so any probe
		// that sees the new epoch also sees its result.
		if _, err := userdma.FetchStore(ctx, vaCoord+cellResult, total); err != nil {
			return 0, err
		}
		if _, err := userdma.FetchStore(ctx, vaCoord+cellEpoch, c.epoch); err != nil {
			return 0, err
		}
		// Best-effort notify writes: single-word remote stores, judged by
		// any attached fault plane and possibly lost. The check word lets
		// waiters detect a torn (partially delivered) notify.
		for j := 0; j < c.size; j++ {
			if withResult {
				if err := ctx.Store(peerNote(j, noteResult, c.pageSize), phys.Size64, total); err != nil {
					return 0, err
				}
				if err := ctx.Store(peerNote(j, noteCheck, c.pageSize), phys.Size64, mix(c.epoch, total)); err != nil {
					return 0, err
				}
			}
			if err := ctx.Store(peerNote(j, noteEpoch, c.pageSize), phys.Size64, c.epoch); err != nil {
				return 0, err
			}
		}
		if err := ctx.MB(); err != nil {
			return 0, err
		}
	}
	return r.await(ctx, withResult)
}

// await waits for the current epoch's release: fast local spin first,
// then the bounded reliable-probe fallback.
func (r *Resilient) await(ctx *proc.Context, withResult bool) (uint64, error) {
	c := r.c
	spins := r.SpinSlots
	if spins <= 0 {
		spins = 200
	}
	retries := r.Retries
	if retries <= 0 {
		retries = 32
	}
	local := func() (bool, uint64, error) {
		e, err := ctx.Load(vaNotify+noteEpoch, phys.Size64)
		if err != nil || e < c.epoch {
			return false, 0, err
		}
		if !withResult {
			return true, 0, nil
		}
		out, err := ctx.Load(vaNotify+noteResult, phys.Size64)
		if err != nil {
			return false, 0, err
		}
		chk, err := ctx.Load(vaNotify+noteCheck, phys.Size64)
		if err != nil {
			return false, 0, err
		}
		if chk != mix(c.epoch, out) {
			// Torn notify: the epoch write landed but the result (or
			// check) write was lost — the local copy is stale. Keep
			// waiting; the probe fallback reads the reliable cells.
			return false, 0, nil
		}
		return true, out, nil
	}
	for i := 0; i < spins; i++ {
		ok, out, err := local()
		if err != nil || ok {
			return out, err
		}
		ctx.Spin(400)
	}
	// The notify write was (presumably) lost: fall back to reading the
	// published cells over the reliable atomic channel.
	r.stats.Fallbacks++
	for attempt := 0; attempt < retries; attempt++ {
		r.stats.Probes++
		e, err := userdma.FetchAdd(ctx, vaCoord+cellEpoch, 0)
		if err != nil {
			return 0, err
		}
		if e >= c.epoch {
			if !withResult {
				return 0, nil
			}
			return userdma.FetchAdd(ctx, vaCoord+cellResult, 0)
		}
		// Not released yet (slow peers, not a lost notify): give the
		// fast path another bounded chance between probes.
		for i := 0; i < spins; i++ {
			ok, out, lerr := local()
			if lerr != nil || ok {
				return out, lerr
			}
			ctx.Spin(400)
		}
	}
	return 0, ErrGaveUp
}
