package coll

import (
	"errors"
	"fmt"
	"testing"

	"uldma/internal/fault"
	"uldma/internal/proc"
	"uldma/internal/sim"
)

// TestResilientUnderHeavyDrop: with 80% of notify writes lost (plus
// duplicates and reordering), the resilient collectives still complete
// with exact results — the bounded fallback reads the published cells
// over the reliable atomic channel.
func TestResilientUnderHeavyDrop(t *testing.T) {
	const n, rounds = 3, 5
	w := newWorld(t, n)
	w.cluster.Fabric.SetFaultPlane(fault.New(fault.Plan{Default: fault.LinkFaults{
		Drop:      0.8,
		Dup:       0.1,
		Reorder:   0.3,
		ReorderBy: 20 * sim.Microsecond,
	}}, 11))
	results := make([][]uint64, n)
	wrapped := make([]*Resilient, n)
	for i := 0; i < n; i++ {
		i := i
		w.bodies[i] = func(c *proc.Context, comm *Comm) error {
			r := NewResilient(comm)
			wrapped[i] = r
			for round := 0; round < rounds; round++ {
				if err := r.Barrier(c); err != nil {
					return fmt.Errorf("round %d barrier: %w", round, err)
				}
				total, err := r.AllReduceSum(c, uint64((i+1)*(round+1)))
				if err != nil {
					return fmt.Errorf("round %d reduce: %w", round, err)
				}
				results[i] = append(results[i], total)
			}
			return nil
		}
	}
	w.run(t)
	for round := 0; round < rounds; round++ {
		want := uint64(0)
		for i := 0; i < n; i++ {
			want += uint64((i + 1) * (round + 1))
		}
		for i := 0; i < n; i++ {
			if results[i][round] != want {
				t.Fatalf("rank %d round %d: total %d, want %d", i, round, results[i][round], want)
			}
		}
	}
	var fallbacks uint64
	for _, r := range wrapped {
		fallbacks += r.Stats().Fallbacks
	}
	if fallbacks == 0 {
		t.Fatal("no wait ever fell back — the drop plan did not exercise recovery")
	}
}

// TestResilientFaultFree: on a clean fabric the wrapper behaves exactly
// like the base Comm — fast path only, no probes.
func TestResilientFaultFree(t *testing.T) {
	const n = 3
	w := newWorld(t, n)
	wrapped := make([]*Resilient, n)
	for i := 0; i < n; i++ {
		i := i
		w.bodies[i] = func(c *proc.Context, comm *Comm) error {
			r := NewResilient(comm)
			wrapped[i] = r
			if err := r.Barrier(c); err != nil {
				return err
			}
			total, err := r.AllReduceSum(c, uint64(i+1))
			if err != nil {
				return err
			}
			if total != n*(n+1)/2 {
				return fmt.Errorf("total = %d", total)
			}
			return nil
		}
	}
	w.run(t)
	for i, r := range wrapped {
		if s := r.Stats(); s.Fallbacks != 0 || s.Probes != 0 {
			t.Fatalf("rank %d paid recovery traffic on a clean fabric: %+v", i, s)
		}
	}
}

// TestResilientGivesUp: the retry budget is a real bound — a waiter
// whose peer never arrives stops with ErrGaveUp instead of spinning
// forever.
func TestResilientGivesUp(t *testing.T) {
	const n = 2
	w := newWorld(t, n)
	var gaveUp error
	w.bodies[0] = func(c *proc.Context, comm *Comm) error {
		r := NewResilient(comm)
		r.SpinSlots, r.Retries = 4, 2
		gaveUp = r.Barrier(c)
		return nil // the error is the expected outcome under test
	}
	w.bodies[1] = func(c *proc.Context, comm *Comm) error {
		return nil // never enters the collective
	}
	w.run(t)
	if !errors.Is(gaveUp, ErrGaveUp) {
		t.Fatalf("barrier against an absent peer returned %v, want ErrGaveUp", gaveUp)
	}
}
